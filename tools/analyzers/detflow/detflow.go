// Package detflow implements the interprocedural determinism-taint
// analyzer. Where the per-function `determinism` analyzer flags direct
// uses of the wall clock, the global math/rand source, and map-ordered
// emission inside a single function body, detflow follows the whole
// program's call graph: a helper that wraps time.Now, a function value
// that captures it, or a map-range body that reaches an emission three
// calls down are all reported at the sim-visible function where the
// nondeterminism enters.
//
// Three interprocedural rules:
//
//  1. wall clock: a sim-visible function whose call chain reaches a
//     forbidden time package function (chain rendered in the message);
//  2. global rand: likewise for global-source math/rand functions;
//  3. map-order emission: a call inside a map-iteration body whose
//     resolved targets transitively emit (Send/After/Multicast/Record*)
//     leaks iteration order into the event stream even though no
//     emission name appears syntactically in the range body.
//
// Scope matches the determinism analyzer: packages outside the trusted
// runtime segments (rtnet, simnet, env, cmd, faults, compute), non-test
// functions only. Taint does not cross interfaces declared by trusted
// packages (env.Context.Now is the sanctioned clock boundary).
package detflow

import (
	"predis/tools/analyzers/analysis"
)

// Analyzer is the interprocedural determinism-taint check.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "interprocedural determinism taint: wall clocks, global math/rand, " +
		"and map-iteration order reaching sim-visible emission through call chains",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.PathHasSegment(pass.PkgPath, analysis.TrustedSegments...) {
		return nil
	}
	prog := pass.Program()
	wall := prog.Propagate(analysis.FactWallClock, analysis.DirectWallClock, analysis.StandardFollow)
	grand := prog.Propagate(analysis.FactGlobalRand, analysis.DirectGlobalRand, analysis.StandardFollow)
	emit := prog.Propagate(analysis.FactEmission, analysis.DirectEmission, analysis.StandardFollow)

	for _, n := range prog.Nodes() {
		if n.Pkg.PkgPath != pass.PkgPath || n.IsTest {
			continue
		}
		reportSourceTaint(pass, prog, n, wall, "wall clock")
		reportSourceTaint(pass, prog, n, grand, "global math/rand")
		reportMapOrderEmission(pass, n, emit)
	}
	return nil
}

// simVisible reports whether the function with the given node is in
// determinism scope (its package is outside the trusted segments and it
// is not a test helper).
func simVisible(n *analysis.FuncNode) bool {
	return !n.IsTest && !analysis.PathHasSegment(n.Pkg.PkgPath, analysis.TrustedSegments...)
}

// reportSourceTaint reports n when it is the sim-visible function where
// the taint enters: either the source is direct (a call or captured
// value inside n), or the taint arrives from a callee that is itself
// not sim-visible (so the deeper function was not reportable and n is
// the first in-scope frame on the chain). Chains that pass through
// another sim-visible function are reported at that deeper function
// instead, keeping one finding per entry point.
func reportSourceTaint(pass *analysis.Pass, prog *analysis.Program, n *analysis.FuncNode, t *analysis.Taint, what string) {
	if !t.Tainted(n) {
		return
	}
	if t.Direct(n) == "" {
		// Taint arrived through a callee. Report here only when no
		// resolved tainted callee is itself sim-visible (otherwise the
		// deeper function owns the finding).
		for _, site := range n.Calls {
			for _, key := range site.Targets {
				if callee := prog.Node(key); callee != nil && simVisible(callee) && t.Tainted(callee) {
					return
				}
			}
		}
	}
	pass.Reportf(n.Pos, "%s reaches sim-visible code: %s (via %s)",
		what, n.Obj.Name(), t.Chain(n))
}

// reportMapOrderEmission flags call sites inside map-iteration bodies
// whose resolved targets transitively emit. Sites whose own name is an
// emission (ctx.Send directly in the range body) are the per-function
// determinism analyzer's territory and are skipped here.
func reportMapOrderEmission(pass *analysis.Pass, n *analysis.FuncNode, emit *analysis.Taint) {
	for _, site := range n.Calls {
		if site.RangeIdx < 0 || site.Kind == analysis.CallRef {
			continue
		}
		if analysis.IsEmissionName(site.Name) {
			continue // direct emission: determinism analyzer reports it
		}
		for _, key := range site.Targets {
			if emit.TaintedKey(key) {
				pass.Reportf(site.Pos,
					"call to %s inside map iteration reaches emission (%s): map order becomes sim-visible",
					site.Name, emit.ChainKey(key))
				break
			}
		}
	}
}
