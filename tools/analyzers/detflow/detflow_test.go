package detflow_test

import (
	"testing"

	"predis/tools/analyzers/analysis"
	"predis/tools/analyzers/determinism"
	"predis/tools/analyzers/detflow"
)

func TestDetflowFixture(t *testing.T) {
	analysis.RunFixture(t, "../testdata",
		[]*analysis.Analyzer{detflow.Analyzer}, "./detflow/...")
}

// TestPerFunctionAnalyzerMissesFixture pins the acceptance property:
// the fixture's violations are invisible to the per-function
// determinism analyzer (its pass over the same packages reports
// nothing), so each detflow finding is a genuine cross-function case.
func TestPerFunctionAnalyzerMissesFixture(t *testing.T) {
	pkgs, err := analysis.Load("../testdata", "./detflow/...")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{determinism.Analyzer})
	if err != nil {
		t.Fatalf("running determinism: %v", err)
	}
	for _, d := range diags {
		t.Errorf("per-function determinism unexpectedly caught: %s", d)
	}
	if t.Failed() {
		return
	}
	diags, err = analysis.Run(pkgs, []*analysis.Analyzer{detflow.Analyzer})
	if err != nil {
		t.Fatalf("running detflow: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("detflow found nothing in its own fixture")
	}
}
