package hotalloc_test

import (
	"testing"

	"predis/tools/analyzers/analysis"
	"predis/tools/analyzers/hotalloc"
)

func TestHotallocFixture(t *testing.T) {
	analysis.RunFixture(t, "../testdata",
		[]*analysis.Analyzer{hotalloc.Analyzer}, "./hotalloc")
}
