// Package hotalloc implements the hot-path allocation guard. Functions
// carrying a `//predis:hotpath` directive are roots of the zero-alloc
// region the alloc_test.go benchmarks assert over (the simnet event
// queue, the wire encode fast path, the erasure kernels). The analyzer
// walks everything statically reachable from those roots — static calls
// and locally-bound function values, stopping at `//predis:coldpath`
// functions and test helpers — and reports every potential allocation
// site in the region:
//
//   - escaping composites (&T{...}, slice/map literals), make, new
//   - interface boxing of non-pointer-shaped values
//   - string<->[]byte conversions and non-constant string concatenation
//   - capturing closures and method values (which box their receivers)
//
// A single site can be waived with a same-line `//predis:allocok`
// comment (free-list misses, amortized slab refills). Calls into
// functions outside the load are checked against their imported
// "allocates" vetx facts, so per-package unit mode keeps seeing through
// dependency boundaries.
//
// Unlike the runtime benchmarks this is a static guarantee: a new
// allocation anywhere under a hot root fails `make lint` even when no
// benchmark exercises that branch.
package hotalloc

import (
	"predis/tools/analyzers/analysis"
)

// Analyzer is the hot-path allocation guard.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "allocation guard for call trees rooted at //predis:hotpath functions: " +
		"flags composites, boxing, string conversions, and closures that would " +
		"break the zero-alloc contract",
	Run: run,
}

func run(pass *analysis.Pass) error {
	prog := pass.Program()
	var roots []*analysis.FuncNode
	for _, n := range prog.Nodes() {
		if n.HotRoot {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	follow := analysis.AllocFollowIn(prog)
	reached := prog.Reachable(roots, follow)

	for _, n := range prog.Nodes() {
		if n.Pkg.PkgPath != pass.PkgPath {
			continue
		}
		if _, ok := reached[n]; !ok || n.Cold || n.IsTest {
			continue
		}
		for _, a := range n.Allocs {
			if a.Waived {
				continue
			}
			pass.Reportf(a.Pos, "%s (%s) on hot path %s",
				a.Kind, a.Detail, analysis.RootChain(reached, n))
		}
		// External callees known (via imported facts) to allocate.
		for _, site := range n.Calls {
			if site.Kind != analysis.CallStatic && site.Kind != analysis.CallBound {
				continue
			}
			for _, key := range site.Targets {
				if prog.Node(key) != nil {
					continue // in-load: its own sites are reported above
				}
				if _, cold := prog.Facts().Get(analysis.FactColdPath, key); cold {
					continue // traversal stops at cold boundaries
				}
				if w, ok := prog.Facts().Get(analysis.FactAllocates, key); ok {
					pass.Reportf(site.Pos, "call to %s allocates (%s) on hot path %s",
						site.Name, w, analysis.RootChain(reached, n))
				}
			}
		}
	}
	return nil
}
