// Package lockorder is the fixture for the lockorder analyzer.
package lockorder

import "sync"

type handler struct {
	mu   sync.Mutex   // want "sync.Mutex field in sim-visible handler state"
	rw   sync.RWMutex // want "sync.RWMutex field in sim-visible handler state"
	once sync.Once    // allowed: registration guard
	n    int
}

type embedded struct {
	sync.Mutex // want "sync.Mutex field in sim-visible handler state"
}

func (h *handler) receive() {
	h.mu.Lock() // want "sync mutex Lock in sim-visible code"
	h.n++
	h.mu.Unlock()
	h.rw.RLock() // want "sync mutex RLock in sim-visible code"
	h.rw.RUnlock()
	h.once.Do(func() {}) // allowed
}

func (e *embedded) receive() {
	e.Lock() // want "sync mutex Lock in sim-visible code"
	e.Unlock()
}

func localLock() {
	var mu sync.Mutex
	mu.Lock() // want "sync mutex Lock in sim-visible code"
	defer mu.Unlock()
}
