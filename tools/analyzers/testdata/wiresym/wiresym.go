// Package wiresym is the fixture for the wiresym analyzer: Ping is fully
// covered, Pong lacks test coverage, Orphan is never registered, and one
// registration has an unresolvable decoder.
package wiresym

import "predis/internal/wire"

// Fixture type tags (never actually registered at runtime).
const (
	typePing wire.Type = wire.TypeRangeTest + 101
	typePong wire.Type = wire.TypeRangeTest + 102
	typeOpaq wire.Type = wire.TypeRangeTest + 103
)

// Ping is registered and round-tripped in tests: fully symmetric.
type Ping struct{ N uint64 }

var _ wire.Message = (*Ping)(nil)

func (m *Ping) Type() wire.Type            { return typePing }
func (m *Ping) WireSize() int              { return wire.FrameOverhead + 8 }
func (m *Ping) EncodeBody(e *wire.Encoder) { e.U64(m.N) }

func decodePing(d *wire.Decoder) (wire.Message, error) {
	return &Ping{N: d.U64()}, d.Err()
}

// Pong is registered but no test constructs it.
type Pong struct{ N uint64 }

var _ wire.Message = (*Pong)(nil)

func (m *Pong) Type() wire.Type            { return typePong }
func (m *Pong) WireSize() int              { return wire.FrameOverhead + 8 }
func (m *Pong) EncodeBody(e *wire.Encoder) { e.U64(m.N) }

func decodePong(d *wire.Decoder) (wire.Message, error) {
	m := &Pong{N: d.U64()}
	return m, d.Err()
}

// Orphan implements wire.Message but is never registered; it could be
// sent yet never decoded.
type Orphan struct{} // want "Orphan implements wire.Message but is never passed to wire.Register"

var _ wire.Message = (*Orphan)(nil)

func (m *Orphan) Type() wire.Type            { return typePong + 50 }
func (m *Orphan) WireSize() int              { return wire.FrameOverhead }
func (m *Orphan) EncodeBody(e *wire.Encoder) {}

// decodeOpaque hides the concrete message type from the analyzer.
func decodeOpaque(d *wire.Decoder) (wire.Message, error) {
	var m wire.Message
	return m, d.Err()
}

// RegisterFixtureMessages registers the fixture types (never called).
func RegisterFixtureMessages() {
	wire.Register(typePing, "fixture.ping", decodePing)
	wire.Register(typePong, "fixture.pong", decodePong)     // want "registered message Pong is never constructed in this package's tests"
	wire.Register(typeOpaq, "fixture.opaque", decodeOpaque) // want "cannot determine which message type this registration decodes"
}
