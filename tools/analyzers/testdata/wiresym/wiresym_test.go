package wiresym

import (
	"testing"

	"predis/internal/wire"
)

// TestPingRoundtrip covers Ping (and only Ping): Pong must be flagged.
func TestPingRoundtrip(t *testing.T) {
	m := &Ping{N: 7}
	if _, err := wire.Roundtrip(m); err != nil {
		t.Fatal(err)
	}
}
