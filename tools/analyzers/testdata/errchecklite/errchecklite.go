// Package errchecklite is the fixture for the errchecklite analyzer.
package errchecklite

import (
	"fmt"

	"predis/internal/ledger"
	"predis/internal/wire"
)

func dropped(m wire.Message, lg *ledger.Ledger, e ledger.Entry) {
	wire.Roundtrip(m)   // want "error returned by wire.Roundtrip is dropped"
	wire.Unmarshal(nil) // want "error returned by wire.Unmarshal is dropped"
	lg.Append(e)        // want "error returned by ledger.Append is dropped"
	defer lg.Append(e)  // want "error returned by ledger.Append is dropped"
}

func handled(m wire.Message, lg *ledger.Ledger, e ledger.Entry) error {
	// Allowed: the error is consumed or explicitly discarded.
	if _, err := wire.Roundtrip(m); err != nil {
		return err
	}
	if err := lg.Append(e); err != nil {
		return err
	}
	_ = wire.Marshal(m) // Marshal returns no error: out of scope
	fmt.Println("done") // error-returning, but not an audited package
	return nil
}
