// Package determinism is the positive/negative fixture for the
// determinism analyzer: every line marked `want` must be flagged, and
// nothing else may be.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

type node struct{ id uint32 }

type ctx struct{}

func (ctx) Send(to uint32, m any)                {}
func (ctx) After(d time.Duration, fn func()) any { return nil }
func (ctx) Now() time.Time                       { return time.Time{} }
func (ctx) Rand() *rand.Rand                     { return nil }

// RecordCommit stands in for a stats sink.
func RecordCommit(n int) {}

func wallClock() {
	_ = time.Now()                                   // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)                     // want "time.Sleep"
	_ = time.Since(time.Time{})                      // want "time.Since"
	<-time.After(time.Second)                        // want "time.After"
	_ = time.NewTimer(time.Second)                   // want "time.NewTimer"
	t := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC) // allowed: pure constructor
	_ = t.Add(time.Second)                           // allowed: arithmetic
	_ = time.Duration(5) * time.Second               // allowed
}

func globalRand(c ctx) {
	_ = rand.Intn(10)                  // want "global math/rand.Intn"
	_ = rand.Int63()                   // want "global math/rand.Int63"
	_ = rand.Float64()                 // want "global math/rand.Float64"
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand.Shuffle"
	// Allowed: instance construction from a seed and use of a seeded
	// source (the env contract's Rand()).
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(10)
	_ = c.Rand()
}

func rawGoroutine(c ctx) {
	go func() {}()        // want "raw goroutine in sim-visible code"
	c.After(0, func() {}) // allowed: scheduled on the node's executor
}

func mapOrderEmission(c ctx, subs map[uint32]bool, m any) {
	for id := range subs { // want "map iteration order feeds Send"
		c.Send(id, m)
	}
	for id := range subs { // want "map iteration order feeds After"
		_ = id
		c.After(time.Millisecond, func() {})
	}
	for range subs { // want "map iteration order feeds Record"
		RecordCommit(1)
	}
	// Allowed: collect, sort, emit outside the map loop.
	ids := make([]uint32, 0, len(subs))
	for id := range subs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c.Send(id, m)
	}
	// Allowed: map iteration with no emission in the body.
	total := 0
	for range subs {
		total++
	}
	_ = total
	// Allowed: ranging over a slice while emitting.
	for _, id := range ids {
		c.Send(id, m)
	}
}
