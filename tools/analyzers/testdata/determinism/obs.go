// obs.go — observability-flavoured fixture cases. The obs package is
// deliberately in scope for the determinism analyzers (it is sim-visible
// even though it only observes): recorders must take the virtual clock
// as an argument, never read a wall clock themselves, and exporters must
// emit in sorted order so trace/metric files are byte-identical across
// same-seed runs.
package determinism

import (
	"sort"
	"time"
)

// obsTracer stands in for the obs package's lifecycle tracer: recorders
// are Record*-prefixed so map-order emission into them is flagged.
type obsTracer struct{}

func (obsTracer) RecordSpan(stage int, key uint64, at time.Time) {}

// obsRegistry stands in for the metrics registry.
type obsRegistry struct{}

func (obsRegistry) RecordGauge(node uint32, v float64) {}

func obsWallClockSpan(tr obsTracer, c ctx) {
	tr.RecordSpan(1, 7, time.Now()) // want "time.Now reads the wall clock"
	tr.RecordSpan(1, 7, c.Now())    // allowed: virtual clock from the context
}

func obsMapOrderExport(tr obsTracer, spans map[uint64]time.Time) {
	for key, at := range spans { // want "map iteration order feeds Record"
		tr.RecordSpan(1, key, at)
	}
	// Allowed: collect, sort, emit — the obs exporters' actual shape.
	keys := make([]uint64, 0, len(spans))
	for k := range spans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		tr.RecordSpan(1, k, spans[k])
	}
}

func obsSamplerPublish(reg obsRegistry, c ctx, util map[uint32]float64) {
	for id, v := range util { // want "map iteration order feeds Record"
		reg.RecordGauge(id, v)
	}
	// Allowed: a sampler tick re-armed through the context's scheduler.
	c.After(100*time.Millisecond, func() {})
	// Allowed: sorted publication.
	ids := make([]uint32, 0, len(util))
	for id := range util {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		reg.RecordGauge(id, util[id])
	}
}
