// Package callgraph exercises the call-graph builder's edge cases:
// interface dispatch (CHA), method values bound to locals, closures
// capturing receivers, and recursive cycles. The callgraph_test.go in
// the analysis package asserts over the graph built from this file.
package callgraph

import "time"

type ticker interface{ tick() int64 }

type wallTicker struct{}

func (wallTicker) tick() int64 { return time.Now().UnixNano() }

type fixedTicker struct{ v int64 }

func (f fixedTicker) tick() int64 { return f.v }

// viaIface dispatches through the interface: CHA must produce edges to
// both implementations, and wall-clock taint must flow back.
func viaIface(t ticker) int64 { return t.tick() }

// viaMethodValue binds a method value to a local and calls it; the
// bound edge must resolve to wallTicker.tick.
func viaMethodValue(w wallTicker) int64 {
	f := w.tick
	return f()
}

type holder struct{ t wallTicker }

// viaClosure returns a literal capturing the receiver: the literal's
// calls merge into this node, and the capture is an allocation site.
func (h *holder) viaClosure() func() int64 {
	return func() int64 { return h.t.tick() }
}

// pingPong and pong are mutually recursive with a clock at the bottom:
// the taint fixpoint must terminate and taint both.
func pingPong(n int) int64 {
	if n <= 0 {
		return time.Now().UnixNano()
	}
	return pong(n - 1)
}

func pong(n int) int64 { return pingPong(n) }

// clean only ever reaches the fixed ticker: no taint.
func clean(f fixedTicker) int64 { return f.tick() }

var _ = viaIface
var _ = viaMethodValue
var _ = (*holder).viaClosure
var _ = pong
var _ = clean
