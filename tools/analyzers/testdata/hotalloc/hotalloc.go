// Package hotalloc is the fixture for the hot-path allocation guard:
// roots are marked //predis:hotpath, and every unwaived allocation in
// functions statically reachable from them must be flagged — including
// allocations several calls below the root, which a per-function check
// cannot connect to the zero-alloc contract.
package hotalloc

// event is a pooled record.
type event struct{ at int64 }

type sim struct {
	free []*event
	sink any
	buf  []byte
}

// take pops the free list, falling back to the heap; the fallback is a
// sanctioned free-list miss.
func (s *sim) take() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free = s.free[:n-1]
		return ev
	}
	return &event{} //predis:allocok free-list miss, steady state reuses
}

// spare grabs a fresh event unconditionally: an unwaived allocation one
// call below the root.
func (s *sim) spare() *event {
	return new(event) // want "new"
}

// record boxes its argument into the any-typed sink: an allocation two
// frames below the root, invisible to any per-function check of the
// root itself.
func (s *sim) record(at int64) {
	s.sink = at // want "interface boxing"
}

// grow refills the free list; reached from a hot root, so the make is
// flagged.
func (s *sim) grow() {
	s.free = append(s.free, make([]*event, 4)...) // want "make"
}

// schedule is a hot-path root.
//
//predis:hotpath
func (s *sim) schedule(at int64) *event {
	ev := s.take()
	ev.at = at
	s.record(at)
	_ = s.spare()
	s.grow()
	_ = s.dump()
	return ev
}

// encode appends a frame; the conversion allocates.
func (s *sim) encode(name string) {
	s.buf = append(s.buf, []byte(name)...) // want "string conversion"
}

// flush is a hot root calling through a locally bound method value (the
// binding itself boxes the receiver, and the callee's allocation is
// still found through the bound edge).
//
//predis:hotpath
func (s *sim) flush() {
	enc := s.encode // want "method value"
	enc("frame")
}

// later returns a deferred action; the literal captures s and at, which
// heap-allocates the closure on the hot path.
//
//predis:hotpath
func (s *sim) later(at int64) func() {
	return func() { s.record(at) } // want "capturing closure"
}

// dump renders debug state. It is marked cold, so its allocations are
// sanctioned even though schedule (a hot root) calls it.
//
//predis:coldpath
func (s *sim) dump() string {
	return string(s.buf) + "!"
}

// rebuild allocates freely but is unreachable from any hot root.
func (s *sim) rebuild() {
	s.free = make([]*event, 0, 64)
	s.sink = "rebuilt"
}

var _ = (*sim).schedule
var _ = (*sim).flush
var _ = (*sim).later
var _ = (*sim).rebuild
