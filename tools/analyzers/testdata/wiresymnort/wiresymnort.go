// Package wiresymnort exercises the "package never calls wire.Roundtrip"
// arm of the wiresym analyzer: it registers a message but has no
// round-trip test at all.
package wiresymnort

import "predis/internal/wire"

const typeBare wire.Type = wire.TypeRangeTest + 120

// Bare is registered but the package has no round-trip test.
type Bare struct{}

var _ wire.Message = (*Bare)(nil)

func (m *Bare) Type() wire.Type            { return typeBare }
func (m *Bare) WireSize() int              { return wire.FrameOverhead }
func (m *Bare) EncodeBody(e *wire.Encoder) {}

func decodeBare(d *wire.Decoder) (wire.Message, error) {
	return &Bare{}, d.Err()
}

// RegisterFixtureMessages registers the fixture type (never called).
func RegisterFixtureMessages() {
	wire.Register(typeBare, "fixture.bare", decodeBare) // want "registered message Bare has no round-trip coverage"
}
