// Package env is a stand-in for the runtime-context package: the
// purecompute analyzer matches it by import-path segment, exactly as it
// matches the real internal/env.
package env

import "time"

// Context mimics the runtime context surface offloaded closures must
// never touch.
type Context interface {
	Send(to uint32, m any)
	Now() time.Time
}
