// Package purecompute is the positive/negative fixture for the
// purecompute analyzer: every line marked `want` must be flagged, and
// nothing else may be.
package purecompute

import (
	"math/rand"
	"time"

	"predis/internal/compute"
	fixenv "predis/tools/analyzers/testdata/purecompute/env"
	fixexec "predis/tools/analyzers/testdata/purecompute/exec"
)

// header stands in for a message header with a lazily-memoized Hash and
// a worker-safe stateless variant.
type header struct{ hash [32]byte }

func (h *header) Hash() [32]byte          { return h.hash }
func (h *header) HashStateless() [32]byte { return h.hash }
func (h *header) Digest() [32]byte        { return h.hash }

func okOffloads(p *compute.Pool, hdr header) {
	// Allowed: pure derivation from values captured at launch time.
	f := compute.Go(p, func() [32]byte { return hdr.HashStateless() })
	_ = f.Force() // joins happen on the event loop; Force outside a closure is fine
	p.Map(4, func(i int) { _ = hdr.HashStateless() })
}

func badContext(p *compute.Pool, ctx fixenv.Context, hdr header) {
	compute.Go(p, func() int {
		ctx.Send(1, hdr) // want "touches env state"
		return 0
	})
}

func badClockAndRand(p *compute.Pool) {
	compute.Go(p, func() int64 {
		_ = time.Now()        // want "pure compute may not read clocks"
		return rand.Int63n(9) // want "pure compute may not consume RNGs"
	})
	p.Map(2, func(i int) {
		time.Sleep(time.Millisecond) // want "pure compute may not read clocks"
	})
}

func badMemoizers(p *compute.Pool, hdr *header) {
	compute.Go(p, func() [32]byte {
		_ = hdr.Digest()  // want "memoizes lazily"
		return hdr.Hash() // want "memoizes lazily"
	})
	// Allowed outside closures: the event loop owns the memo fields.
	_ = hdr.Hash()
	_ = hdr.Digest()
}

func badNesting(p *compute.Pool, hdr header) {
	compute.Go(p, func() int {
		p.Map(2, func(i int) {}) // want "can deadlock the pool"
		go func() {}()           // want "workers must not spawn goroutines"
		return 0
	})
	compute.Go[int](p, func() int { // explicit instantiation is matched too
		compute.Go(p, func() int { return 0 }) // want "offload only from the event loop"
		return 0
	})
}

func badMVCache(p *compute.Pool, cache *fixexec.MVCache, snap fixexec.Snapshot) {
	out := make([]uint64, 4)
	p.Map(4, func(i int) {
		out[i] = snap.Get(uint64(i))        // allowed: Snapshot is the worker-safe read path
		cache.Merge(i, []uint64{uint64(i)}) // want "merge only at event-loop join points"
		_ = cache.Version(uint64(i))        // want "merge only at event-loop join points"
	})
	compute.Go(p, func() int {
		cache.Merge(0, nil) // want "merge only at event-loop join points"
		return 0
	})
	// Allowed on the event loop: merges happen at join points.
	cache.Merge(0, out)
	_ = cache.Version(0)
}
