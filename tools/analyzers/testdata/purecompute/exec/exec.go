// Package exec is a fixture stand-in for the execution plane's state
// types: the event-loop-only multi-version cache and the worker-readable
// snapshot. The analyzer matches the MVCache type by name plus the
// "exec" path segment, exactly as it matches the real
// predis/internal/exec package.
package exec

// MVCache stands in for the multi-version state cache; its methods may
// only run on the event loop.
type MVCache struct{ vals map[uint64]uint64 }

// Merge applies one level's writes.
func (c *MVCache) Merge(level int, keys []uint64) {
	for _, k := range keys {
		c.vals[k] = uint64(level)
	}
}

// Version returns a key's writer level.
func (c *MVCache) Version(key uint64) int { return int(c.vals[key]) }

// Snapshot stands in for the immutable worker-readable state view.
type Snapshot struct{ base map[uint64]uint64 }

// Get reads a key; safe from offloaded kernels.
func (s Snapshot) Get(key uint64) uint64 { return s.base[key] }
