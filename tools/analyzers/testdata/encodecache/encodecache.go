// Package encodecache is the fixture for the encodecache analyzer:
// Wrapped re-marshals its payload inside EncodeBody and WireSize (both
// flagged); Cached routes the same payload through wire.EncCache (clean);
// helper code outside the codec methods may call wire.Marshal freely.
package encodecache

import "predis/internal/wire"

const (
	typeInner   wire.Type = wire.TypeRangeTest + 201
	typeWrapped wire.Type = wire.TypeRangeTest + 202
	typeCached  wire.Type = wire.TypeRangeTest + 203
)

// Inner is a payload message nested inside the carriers below.
type Inner struct{ N uint64 }

func (m *Inner) Type() wire.Type            { return typeInner }
func (m *Inner) WireSize() int              { return wire.FrameOverhead + 8 }
func (m *Inner) EncodeBody(e *wire.Encoder) { e.U64(m.N) }

// Wrapped re-encodes its payload on every frame: the pattern the
// analyzer exists to catch.
type Wrapped struct{ Payload *Inner }

func (m *Wrapped) Type() wire.Type { return typeWrapped }

func (m *Wrapped) WireSize() int {
	return wire.FrameOverhead + 4 + len(wire.Marshal(m.Payload)) // want "wire.Marshal inside WireSize re-encodes the nested payload"
}

func (m *Wrapped) EncodeBody(e *wire.Encoder) {
	e.VarBytes(wire.Marshal(m.Payload)) // want "wire.Marshal inside EncodeBody re-encodes the nested payload"
}

// Cached is the sanctioned shape: the payload frame is memoized in an
// EncCache and both codec methods read the cache.
type Cached struct {
	Payload    *Inner
	payloadEnc wire.EncCache
}

func (m *Cached) Type() wire.Type { return typeCached }

func (m *Cached) WireSize() int {
	return wire.FrameOverhead + 4 + m.payloadEnc.FrameSize(m.Payload)
}

func (m *Cached) EncodeBody(e *wire.Encoder) {
	e.VarBytes(m.payloadEnc.Frame(m.Payload))
}

// Snapshot marshals outside the codec methods — allowed (ledger export,
// hashing, tests all do this legitimately).
func Snapshot(m *Cached) []byte { return wire.Marshal(m) }

// MarshalAppendInBody exercises the MarshalAppend variant of the check.
type MarshalAppendInBody struct{ Payload *Inner }

func (m *MarshalAppendInBody) Type() wire.Type { return typeCached + 10 }
func (m *MarshalAppendInBody) WireSize() int   { return wire.FrameOverhead }
func (m *MarshalAppendInBody) EncodeBody(e *wire.Encoder) {
	e.VarBytes(wire.MarshalAppend(nil, m.Payload)) // want "wire.MarshalAppend inside EncodeBody re-encodes the nested payload"
}
