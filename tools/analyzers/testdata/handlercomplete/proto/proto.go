// Package proto is the fixture for the handler-exhaustiveness check: a
// dispatching package (it switches on wire.Message) that registers one
// message type its receive path never handles.
package proto

import (
	wire "predis/tools/analyzers/testdata/handlercomplete/wire"
)

// Ping is handled by the main switch.
type Ping struct{}

// Kind implements wire.Message.
func (*Ping) Kind() uint16 { return 1 }

// Pong implements wire.Message but no switch or assertion in this
// package ever matches it: a decoded Pong would be silently dropped.
type Pong struct{} // want "no receive type switch in this package handles it"

// Kind implements wire.Message.
func (*Pong) Kind() uint16 { return 2 }

// Blob is a payload message: it rides inside other messages and is
// extracted by type assertion rather than a switch case.
type Blob struct{ Data []byte }

// Kind implements wire.Message.
func (*Blob) Kind() uint16 { return 3 }

// Node dispatches received messages.
type Node struct {
	pings int
	blobs int
}

// Receive is the main dispatch path: a case per handled kind plus the
// mandatory default.
func (n *Node) Receive(m wire.Message) {
	switch m.(type) {
	case *Ping:
		n.pings++
	default:
		// Unknown kind observed, not dropped.
	}
}

// onPayload extracts a payload message by assertion — the sanctioned
// pattern for messages that ride inside proposals.
func (n *Node) onPayload(m wire.Message) {
	if b, ok := m.(*Blob); ok {
		n.blobs += len(b.Data)
	}
}

// peek dispatches without a default case: unknown message kinds would
// vanish without a trace.
func peek(m wire.Message) bool {
	switch m.(type) { // want "without default case"
	case *Ping:
		return true
	}
	return false
}

var _ = (*Node).Receive
var _ = (*Node).onPayload
var _ = peek
