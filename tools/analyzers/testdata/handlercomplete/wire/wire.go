// Package wire is the message-contract stand-in for the
// handlercomplete fixture: the analyzer resolves the sibling wire
// package of a fixture dispatch package the same way it resolves the
// real predis/internal/wire.
package wire

// Message is the fixture's wire message contract.
type Message interface {
	Kind() uint16
}
