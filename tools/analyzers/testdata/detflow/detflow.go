// Package detflow is the fixture for the interprocedural
// determinism-taint analyzer. Every flagged case here passes the
// per-function determinism analyzer (no forbidden call is syntactically
// visible at the reported site) and is caught only by following the
// call graph.
package detflow

import (
	"sort"
	"time"

	fixenv "predis/tools/analyzers/testdata/detflow/env"
)

// --- wall clock smuggled as a captured function value ---

// useCapturedClock takes time.Now as a value; the per-function analyzer
// only inspects call expressions with a time.* selector, so clock() is
// invisible to it.
func useCapturedClock() int64 { // want "wall clock reaches sim-visible code"
	clock := time.Now
	return clock().UnixNano()
}

// --- taint through a cross-package helper ---

// stampViaHelper reaches the wall clock through a helper in the exempt
// env fixture package, which per-function analysis never inspects.
func stampViaHelper() int64 { // want "wall clock reaches sim-visible code"
	return fixenv.WallStamp()
}

// jitterViaHelper likewise reaches the global math/rand source.
func jitterViaHelper() int { // want "global math/rand reaches sim-visible code"
	return fixenv.Jitter()
}

// --- map-iteration order reaching emission through a helper ---

// Context mimics the runtime send surface.
type Context interface {
	Send(to int, payload string)
}

type node struct{ ctx Context }

// emit forwards to the context send; it is one call away from the
// emission, which is all it takes to hide from a syntactic range check.
func (n *node) emit(to int, payload string) {
	n.ctx.Send(to, payload)
}

// flushAll iterates a map and emits per key through the helper: map
// order becomes the send order. The per-function analyzer only flags
// emission-named calls syntactically inside the range body.
func (n *node) flushAll(pending map[int]string) {
	for to, p := range pending {
		n.emit(to, p) // want "map iteration reaches emission"
	}
}

// flushSorted is the sanctioned pattern: collect, sort, emit — no map
// range encloses the emitting call.
func (n *node) flushSorted(pending map[int]string) {
	keys := make([]int, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		n.emit(k, pending[k])
	}
}

// --- sanctioned boundary: time through a trusted interface ---

// tick reads time through the Clock interface declared in the exempt
// env package: that is the sanctioned contract boundary (the analogue
// of env.Context.Now), so no taint flows and nothing is reported, even
// though the concrete implementation wraps the wall clock.
func tick(c fixenv.Clock) int64 {
	return c.Now()
}

var _ = useCapturedClock
var _ = stampViaHelper
var _ = jitterViaHelper
var _ = (*node).flushAll
var _ = (*node).flushSorted
var _ = tick
