// Package env plays the trusted-runtime role for the detflow fixture:
// its import path carries the exempt "env" segment, so the per-function
// determinism analyzer never looks at it — which is exactly how a
// wall-clock read hides from per-function analysis behind one call.
// detflow follows taint out of it into sim-visible callers.
package env

import (
	"math/rand"
	"time"
)

// WallStamp reads the wall clock (legitimate inside env; tainting for
// sim-visible callers).
func WallStamp() int64 { return time.Now().UnixNano() }

// Jitter draws from the global math/rand source.
func Jitter() int { return rand.Intn(16) }

// Clock is the sanctioned time boundary, mirroring env.Context: taint
// must NOT flow through calls dispatched via this interface.
type Clock interface {
	Now() int64
}

// SysClock implements Clock over the wall clock.
type SysClock struct{}

// Now implements Clock.
func (SysClock) Now() int64 { return WallStamp() }
