package purecompute_test

import (
	"testing"

	"predis/tools/analyzers/analysis"
	"predis/tools/analyzers/purecompute"
)

func TestPurecomputeFixture(t *testing.T) {
	analysis.RunFixture(t, "../testdata",
		[]*analysis.Analyzer{purecompute.Analyzer}, "./purecompute")
}
