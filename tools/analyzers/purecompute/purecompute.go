// Package purecompute enforces the compute-plane purity contract: a
// closure handed to the worker pool (compute.Go, Pool.Map) runs off the
// event loop, so it may only derive values from immutable data captured
// at launch time. Anything else — simulator state, the runtime context,
// clocks, RNGs, lazily-memoizing accessors — either races with the event
// loop or makes the result depend on scheduling, breaking the
// worker-count-invariance guarantee (same replay hashes for -workers 0,
// 1, 4, ...).
//
// The check is syntactic over the function-literal argument at the
// offload call site (helpers the literal calls are not traversed; they
// are covered when the analyzer visits their own package if they offload
// themselves). Inside an offloaded literal it rejects:
//
//   - any use of a value whose type comes from internal/env or
//     internal/simnet (the runtime context and the simulator);
//   - wall-clock reads (time.Now and friends) and math/rand;
//   - calls to the lazily-memoizing accessors Hash, Digest, VerifyBody,
//     and Force — workers must use the *Stateless variants and leave
//     memo installation to the event-loop join point;
//   - nested Pool.Map or compute.Go calls — a worker blocking in a join
//     while its helpers sit behind other blocked workers deadlocks the
//     pool;
//   - raw go statements (workers must not spawn goroutines);
//   - any method call on the execution plane's multi-version cache
//     (exec.MVCache) — levels merge only at event-loop join points;
//     kernels read state through the immutable exec.Snapshot.
package purecompute

import (
	"go/ast"
	"go/types"
	"strings"

	"predis/tools/analyzers/analysis"
)

// Analyzer is the compute-plane purity check.
var Analyzer = &analysis.Analyzer{
	Name: "purecompute",
	Doc: "forbid simnet/env state, clocks, RNGs, memoizing accessors, and " +
		"nested offloads inside closures handed to the compute pool",
	Run: run,
}

// memoizers are method names whose call sites write lazily-memoized
// fields; calling them from a worker races with the event loop. The
// *Stateless variants (HashStateless, ...) are the worker-safe spellings.
var memoizers = map[string]string{
	"Hash":       "HashStateless",
	"Digest":     "a stateless digest helper",
	"VerifyBody": "the precomputed spec joined on the event loop",
	"Force":      "forcing only at event-loop join points",
}

// forbiddenTime are time package functions that read the wall clock.
var forbiddenTime = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Syntax {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, lit := range offloadedLiterals(pass, call) {
				checkLiteral(pass, lit)
			}
			return true
		})
	}
	return nil
}

// offloadedLiterals returns the function literals that call hands to the
// compute pool: the task argument of compute.Go(p, fn) and the body
// argument of (*compute.Pool).Map(n, fn).
func offloadedLiterals(pass *analysis.Pass, call *ast.CallExpr) []*ast.FuncLit {
	var lits []*ast.FuncLit
	add := func(arg ast.Expr) {
		if lit, ok := arg.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.IndexExpr: // compute.Go[T](p, fn) with explicit instantiation
		if sel, ok := fun.X.(*ast.SelectorExpr); ok && isComputeGo(pass, sel) && len(call.Args) == 2 {
			add(call.Args[1])
		}
	case *ast.SelectorExpr:
		if isComputeGo(pass, fun) && len(call.Args) == 2 { // inferred compute.Go(p, fn)
			add(call.Args[1])
		}
		if fun.Sel.Name == "Map" && isPoolType(pass.Info.Types[fun.X].Type) && len(call.Args) == 2 {
			add(call.Args[1])
		}
	}
	return lits
}

// isComputeGo reports whether sel names the compute package's Go.
func isComputeGo(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Go" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pathHasComputeSegment(pn.Imported().Path())
}

// isPoolType reports whether t is (a pointer to) compute.Pool.
func isPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && pathHasComputeSegment(obj.Pkg().Path())
}

// pathHasComputeSegment matches both the real module path
// (predis/internal/compute) and fixture stand-ins (…/computefix/compute).
func pathHasComputeSegment(path string) bool {
	return analysis.PathHasSegment(path, "compute")
}

// isMVCacheType reports whether t is (a pointer to) exec.MVCache, the
// execution plane's multi-version state cache. Its methods mutate
// event-loop-owned state, so offloaded kernels may never call them
// (they read through the immutable exec.Snapshot instead).
func isMVCacheType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "MVCache" && obj.Pkg() != nil &&
		analysis.PathHasSegment(obj.Pkg().Path(), "exec")
}

// forbiddenStatePkg reports whether a type is declared in internal/env or
// internal/simnet (fixture equivalents: any path segment env/simnet).
func forbiddenStatePkg(t types.Type) string {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	switch {
	case analysis.PathHasSegment(path, "env"):
		return "env"
	case analysis.PathHasSegment(path, "simnet"):
		return "simnet"
	}
	return ""
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

func checkLiteral(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"go statement inside an offloaded closure; workers must not spawn goroutines")
		case *ast.Ident:
			obj := pass.Info.Uses[n]
			if obj == nil {
				return true
			}
			if v, ok := obj.(*types.Var); ok {
				if pkg := forbiddenStatePkg(v.Type()); pkg != "" {
					pass.Reportf(n.Pos(),
						"offloaded closure touches %s state (%s); capture immutable values at launch time instead",
						pkg, n.Name)
				}
			}
		case *ast.CallExpr:
			checkClosureCall(pass, n)
		}
		return true
	})
}

func checkClosureCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Nested offloads deadlock the pool.
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Map" && isPoolType(pass.Info.Types[fun.X].Type) {
			pass.Reportf(call.Pos(),
				"Pool.Map inside an offloaded closure can deadlock the pool; fork-join only from the event loop")
			return
		}
		if isComputeGo(pass, fun) {
			pass.Reportf(call.Pos(),
				"compute.Go inside an offloaded closure; offload only from the event loop")
			return
		}
	case *ast.IndexExpr:
		if sel, ok := fun.X.(*ast.SelectorExpr); ok && isComputeGo(pass, sel) {
			pass.Reportf(call.Pos(),
				"compute.Go inside an offloaded closure; offload only from the event loop")
			return
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Package-level calls: clocks and RNGs.
	if id, isIdent := sel.X.(*ast.Ident); isIdent {
		if pn, isPkg := pass.Info.Uses[id].(*types.PkgName); isPkg {
			switch pn.Imported().Path() {
			case "time":
				if forbiddenTime[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"time.%s inside an offloaded closure; pure compute may not read clocks",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(call.Pos(),
					"math/rand inside an offloaded closure; pure compute may not consume RNGs")
			}
			return
		}
	}
	// Method calls on the multi-version cache mutate event-loop-owned
	// execution state; kernels read through the immutable Snapshot and
	// merge only at event-loop join points.
	if tv, okType := pass.Info.Types[sel.X]; okType && isMVCacheType(tv.Type) {
		pass.Reportf(call.Pos(),
			"MVCache.%s inside an offloaded closure; merge only at event-loop join points (use the read-only Snapshot)",
			sel.Sel.Name)
		return
	}
	// Method calls: lazily-memoizing accessors race with the event loop.
	if tv, okType := pass.Info.Types[sel.X]; okType && tv.Type != nil {
		if repl, bad := memoizers[sel.Sel.Name]; bad && !strings.HasSuffix(sel.Sel.Name, "Stateless") {
			// Only methods (receiver is a value, not a package) reach here.
			pass.Reportf(call.Pos(),
				"%s() memoizes lazily and may race with the event loop inside an offloaded closure; use %s",
				sel.Sel.Name, repl)
		}
	}
}
