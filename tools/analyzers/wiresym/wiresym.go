// Package wiresym enforces wire-format symmetry: every message type a
// package registers with wire.Register must be a real wire.Message whose
// decoder is identifiable, every wire.Message the package defines must be
// registered, and every registered message must be exercised by the
// package's round-trip tests (constructed in a _test.go file of a package
// that calls wire.Roundtrip).
//
// The simulator's CopyOnDeliver mode and the TCP runtime both funnel all
// traffic through Marshal/Unmarshal, so an asymmetric codec is a live
// correctness bug: a message that encodes what its decoder does not read
// diverges silently between simulated and real deployments.
package wiresym

import (
	"go/ast"
	"go/token"
	"go/types"

	"predis/tools/analyzers/analysis"
)

// WirePath is the import path of the wire package whose registry the
// analyzer audits.
const WirePath = "predis/internal/wire"

// Analyzer is the wire-symmetry check.
var Analyzer = &analysis.Analyzer{
	Name: "wiresym",
	Doc: "every registered wire message must implement wire.Message, be " +
		"decodable, and be covered by an in-package round-trip test",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.PkgPath == WirePath {
		return nil // the registry itself has nothing to register
	}
	wirePkg := pass.Lookup(WirePath)
	if wirePkg == nil {
		return nil // package does not participate in the wire protocol
	}
	ifaceObj := wirePkg.Scope().Lookup("Message")
	if ifaceObj == nil {
		return nil
	}
	msgIface, ok := ifaceObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}

	// Pass 1 (non-test files): find wire.Register calls and resolve each
	// to the concrete message type its decoder returns.
	registered := make(map[*types.TypeName]ast.Node) // type -> Register call
	for _, f := range pass.Syntax {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				return true
			}
			if !isWireFunc(pass, call.Fun, "Register") {
				return true
			}
			tn := decoderMessageType(pass, call.Args[2], msgIface)
			if tn == nil {
				pass.Reportf(call.Pos(),
					"cannot determine which message type this registration decodes; "+
						"the decoder must return a named *T implementing wire.Message")
				return true
			}
			registered[tn] = call
			return true
		})
	}

	// Pass 2: every package-level named type (declared outside tests)
	// implementing wire.Message must be registered.
	scope := pass.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if isTestPos(pass, tn.Pos()) {
			continue // test-only fixtures register conditionally; skip
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if !types.Implements(types.NewPointer(named), msgIface) {
			continue
		}
		if _, ok := registered[tn]; !ok {
			pass.Reportf(tn.Pos(),
				"%s implements wire.Message but is never passed to wire.Register; "+
					"an unregistered message cannot be decoded on delivery", name)
		}
	}

	if len(registered) == 0 {
		return nil
	}

	// Pass 3 (test files): round-trip coverage. Collect the message types
	// constructed in tests and whether wire.Roundtrip is called at all.
	constructed := make(map[*types.TypeName]bool)
	roundtrips := false
	for _, f := range pass.Syntax {
		if !pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isWireFunc(pass, n.Fun, "Roundtrip") {
					roundtrips = true
					// A concrete *T passed to Roundtrip counts as
					// coverage even when T is built by a helper rather
					// than a composite literal.
					if len(n.Args) == 1 {
						if tv, ok := pass.Info.Types[n.Args[0]]; ok {
							if tn := namedTypeName(tv.Type); tn != nil {
								constructed[tn] = true
							}
						}
					}
				}
			case *ast.CompositeLit:
				if tv, ok := pass.Info.Types[n]; ok {
					if tn := namedTypeName(tv.Type); tn != nil {
						constructed[tn] = true
					}
				}
			}
			return true
		})
	}
	for tn, call := range registered {
		if !roundtrips {
			pass.Reportf(call.Pos(),
				"registered message %s has no round-trip coverage: no test in this "+
					"package calls wire.Roundtrip", tn.Name())
			continue
		}
		if !constructed[tn] {
			pass.Reportf(call.Pos(),
				"registered message %s is never constructed in this package's tests; "+
					"add it to the round-trip test table", tn.Name())
		}
	}
	return nil
}

// isWireFunc reports whether fun resolves to predis/internal/wire.<name>.
func isWireFunc(pass *analysis.Pass, fun ast.Expr, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == WirePath
}

// decoderMessageType resolves the decode-function argument of a
// wire.Register call to the named message type it returns: every
// `return &T{...}, ...` (or `return v, ...` with v of type *T) in the
// decoder's body nominates T; the first T implementing wire.Message in
// this package wins.
func decoderMessageType(pass *analysis.Pass, arg ast.Expr, msgIface *types.Interface) *types.TypeName {
	var fn *types.Func
	switch a := arg.(type) {
	case *ast.Ident:
		fn, _ = pass.Info.Uses[a].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.Info.Uses[a.Sel].(*types.Func)
	case *ast.FuncLit:
		return funcLitMessageType(pass, a, msgIface)
	}
	if fn == nil {
		return nil
	}
	// Find the decoder's declaration in this package's syntax.
	for _, f := range pass.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fn.Name() || fd.Recv != nil {
				continue
			}
			if pass.Info.Defs[fd.Name] != fn {
				continue
			}
			return returnedMessageType(pass, fd.Body, msgIface)
		}
	}
	return nil
}

func funcLitMessageType(pass *analysis.Pass, lit *ast.FuncLit, msgIface *types.Interface) *types.TypeName {
	return returnedMessageType(pass, lit.Body, msgIface)
}

func returnedMessageType(pass *analysis.Pass, body *ast.BlockStmt, msgIface *types.Interface) *types.TypeName {
	if body == nil {
		return nil
	}
	var found *types.TypeName
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		tv, ok := pass.Info.Types[ret.Results[0]]
		if !ok {
			return true
		}
		tn := namedTypeName(tv.Type)
		if tn == nil || tn.Pkg() != pass.Types {
			return true
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || !types.Implements(types.NewPointer(named), msgIface) {
			return true
		}
		found = tn
		return false
	})
	return found
}

// namedTypeName unwraps pointers and returns the *types.TypeName of a
// named type, or nil.
func namedTypeName(t types.Type) *types.TypeName {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// isTestPos reports whether a position lies in a _test.go file.
func isTestPos(pass *analysis.Pass, pos token.Pos) bool {
	name := pass.Fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
