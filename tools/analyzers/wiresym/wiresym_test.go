package wiresym_test

import (
	"testing"

	"predis/tools/analyzers/analysis"
	"predis/tools/analyzers/wiresym"
)

func TestWiresymFixture(t *testing.T) {
	analysis.RunFixture(t, "../testdata",
		[]*analysis.Analyzer{wiresym.Analyzer}, "./wiresym", "./wiresymnort")
}
