// Package suite lists every predis-lint analyzer in one place so the
// command, the Makefile target, and the fixture tests agree on the set.
package suite

import (
	"predis/tools/analyzers/analysis"
	"predis/tools/analyzers/determinism"
	"predis/tools/analyzers/detflow"
	"predis/tools/analyzers/encodecache"
	"predis/tools/analyzers/errchecklite"
	"predis/tools/analyzers/handlercomplete"
	"predis/tools/analyzers/hotalloc"
	"predis/tools/analyzers/lockorder"
	"predis/tools/analyzers/purecompute"
	"predis/tools/analyzers/wiresym"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		detflow.Analyzer,
		encodecache.Analyzer,
		errchecklite.Analyzer,
		handlercomplete.Analyzer,
		hotalloc.Analyzer,
		lockorder.Analyzer,
		purecompute.Analyzer,
		wiresym.Analyzer,
	}
}

// ByName returns the named analyzers (comma-free names, as listed by
// All); unknown names yield nil entries filtered out by the caller.
func ByName(names []string) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, n := range names {
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
			}
		}
	}
	return out
}
