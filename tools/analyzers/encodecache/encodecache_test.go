package encodecache_test

import (
	"testing"

	"predis/tools/analyzers/analysis"
	"predis/tools/analyzers/encodecache"
)

func TestEncodecacheFixture(t *testing.T) {
	analysis.RunFixture(t, "../testdata",
		[]*analysis.Analyzer{encodecache.Analyzer}, "./encodecache")
}
