// Package encodecache flags re-marshaling of nested messages inside
// codec methods. A wire.Marshal (or wire.MarshalAppend) call inside an
// EncodeBody or WireSize method re-encodes the nested payload every time
// the enclosing message is framed — and consensus messages are framed
// once per phase per recipient, so a bundle-carrying proposal pays the
// full payload encode O(n_c) times per round. The encode-once cache
// (wire.EncCache) exists precisely for this: marshal the payload once,
// emit the cached frame with Frame/FrameSize, and invalidate on
// mutation.
package encodecache

import (
	"go/ast"

	"predis/tools/analyzers/analysis"
)

// WirePath is the import path of the codec package.
const WirePath = "predis/internal/wire"

// Analyzer is the encode-once check.
var Analyzer = &analysis.Analyzer{
	Name: "encodecache",
	Doc: "EncodeBody/WireSize must not call wire.Marshal on nested payloads; " +
		"route the encoding through wire.EncCache so it runs once, not once " +
		"per phase per recipient",
	Run: run,
}

// checkedMethods are the codec entry points that run on every frame (and,
// for WireSize, on every simulated Send).
var checkedMethods = map[string]bool{
	"EncodeBody": true,
	"WireSize":   true,
}

func run(pass *analysis.Pass) error {
	if pass.PkgPath == WirePath {
		// The codec itself implements Marshal and the EncCache fallback.
		return nil
	}
	for _, f := range pass.Syntax {
		if pass.IsTestFile(f) {
			continue // benchmarks/tests may marshal freely
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !checkedMethods[fd.Name.Name] || fd.Body == nil {
				continue
			}
			method := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := wireMarshalCall(pass, call)
				if !ok {
					return true
				}
				pass.Reportf(call.Pos(),
					"wire.%s inside %s re-encodes the nested payload on every frame; "+
						"cache the encoding with wire.EncCache (Frame/FrameSize) instead",
					name, method)
				return true
			})
		}
	}
	return nil
}

// wireMarshalCall reports whether the call resolves to
// predis/internal/wire.Marshal or .MarshalAppend, returning the function
// name.
func wireMarshalCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Marshal" && name != "MarshalAppend" {
		return "", false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != WirePath {
		return "", false
	}
	return name, true
}
