package lockorder_test

import (
	"testing"

	"predis/tools/analyzers/analysis"
	"predis/tools/analyzers/lockorder"
)

func TestLockorderFixture(t *testing.T) {
	analysis.RunFixture(t, "../testdata",
		[]*analysis.Analyzer{lockorder.Analyzer}, "./lockorder")
}
