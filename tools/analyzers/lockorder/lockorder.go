// Package lockorder enforces the no-locks half of the env contract: the
// runtime serializes every callback into a handler, so sim-visible
// protocol code has no business acquiring mutexes. A lock acquired inside
// a simnet event callback either does nothing (uncontended, single
// goroutine) or couples the handler to a goroutine the simulator does not
// schedule — and blocking an event callback on such a lock stalls the
// event loop and reorders event delivery relative to a lock-free run.
//
// The analyzer flags, in sim-visible packages:
//   - calls that acquire a sync mutex (Lock, RLock, TryLock, TryRLock),
//     including through embedded fields;
//   - struct fields of type sync.Mutex or sync.RWMutex (state that
//     invites such calls).
//
// Scope: everything except import-path segments {rtnet, simnet, env,
// cmd, wire, ledger}. rtnet/simnet/env are the runtimes; wire's registry
// mutex and ledger's store mutex are shared with the real-time runtime by
// design and never contended inside the simulator (registration and
// recovery happen at setup). sync.Once for message registration remains
// allowed everywhere.
package lockorder

import (
	"go/ast"
	"go/types"

	"predis/tools/analyzers/analysis"
)

// Analyzer is the lock-acquisition check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "forbid mutex acquisition (and mutex-typed state) in sim-visible " +
		"packages; handler callbacks are already serialized by the runtime",
	Run: run,
}

var exemptSegments = []string{"rtnet", "simnet", "env", "cmd", "wire", "ledger"}

var acquireMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

func run(pass *analysis.Pass) error {
	if analysis.PathHasSegment(pass.PkgPath, exemptSegments...) {
		return nil
	}
	for _, f := range pass.Syntax {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkAcquire(pass, n)
			case *ast.StructType:
				checkFields(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkAcquire flags calls to sync mutex acquisition methods, resolving
// through embedded fields via the selection machinery.
func checkAcquire(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !acquireMethods[sel.Sel.Name] {
		return
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return
	}
	pass.Reportf(call.Pos(),
		"sync mutex %s in sim-visible code: callbacks are serialized by the "+
			"runtime; a lock here can only stall the event loop and reorder "+
			"event delivery", sel.Sel.Name)
}

// checkFields flags sync.Mutex / sync.RWMutex struct fields.
func checkFields(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
			continue
		}
		if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
			continue
		}
		pass.Reportf(field.Pos(),
			"sync.%s field in sim-visible handler state: the runtime already "+
				"serializes callbacks; move shared-with-goroutine state behind a "+
				"runtime boundary (rtnet) instead", obj.Name())
	}
}
