package determinism_test

import (
	"testing"

	"predis/tools/analyzers/analysis"
	"predis/tools/analyzers/determinism"
)

func TestDeterminismFixture(t *testing.T) {
	analysis.RunFixture(t, "../testdata",
		[]*analysis.Analyzer{determinism.Analyzer}, "./determinism")
}
