// Package determinism enforces the simnet determinism contract on
// sim-visible code: every package that can execute inside the
// discrete-event simulator must derive all time from env.Context.Now,
// all randomness from env.Context.Rand, all concurrency from
// env.Context.After, and must never let Go's unordered map iteration
// decide the order of message emission, event scheduling, or stats
// recording.
//
// Scope: every package except those with an import-path segment in
// {rtnet, simnet, env, cmd, faults, compute} — the real-time runtime,
// the simulator itself, the runtime interface (which wraps wall-clock
// machinery), command binaries, the fault injector (which owns a seeded
// rand.Rand by construction), and the compute plane (whose worker pool
// is goroutine-based by design; its own purecompute analyzer polices
// what may run on those goroutines). _test.go files are exempt: tests
// may use wall-clock timeouts because they run outside the simulator.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"predis/tools/analyzers/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, global math/rand, raw goroutines, and " +
		"map-ordered message emission in sim-visible packages",
	Run: run,
}

// exemptSegments are import-path segments that place a package outside
// the sim-visible scope.
var exemptSegments = []string{"rtnet", "simnet", "env", "cmd", "faults", "compute"}

// forbiddenTime are time package functions that read or act on the wall
// clock. Pure constructors/converters (Date, Unix, Duration arithmetic,
// ParseDuration, ...) stay allowed.
var forbiddenTime = map[string]string{
	"Now":       "env.Context.Now",
	"Sleep":     "env.Context.After",
	"Since":     "env.Context.Now and Sub",
	"Until":     "env.Context.Now and Sub",
	"After":     "env.Context.After",
	"AfterFunc": "env.Context.After",
	"Tick":      "env.Context.After",
	"NewTimer":  "env.Context.After",
	"NewTicker": "env.Context.After",
}

// allowedRand are math/rand package-level constructors that do not touch
// the global source; everything else at package level does.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// emissionFuncs are callee names whose invocation inside a map-range body
// makes iteration order observable: message sends, event scheduling, and
// stats recording.
func isEmission(name string) bool {
	switch name {
	case "Send", "After", "Multicast":
		return true
	}
	return strings.HasPrefix(name, "Record")
}

func run(pass *analysis.Pass) error {
	if analysis.PathHasSegment(pass.PkgPath, exemptSegments...) {
		return nil
	}
	for _, f := range pass.Syntax {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"raw goroutine in sim-visible code; schedule work with env.Context.After "+
						"so the simulator serializes it deterministically")
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// packageOf returns the imported package a selector's base identifier
// refers to, or nil when the base is not a package name.
func packageOf(pass *analysis.Pass, expr ast.Expr) *types.Package {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg := packageOf(pass, sel.X)
	if pkg == nil {
		return
	}
	switch pkg.Path() {
	case "time":
		if repl, bad := forbiddenTime[sel.Sel.Name]; bad {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in sim-visible code; use %s (virtual time)",
				sel.Sel.Name, repl)
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"global math/rand.%s is seeded outside the simulation; use the node's "+
					"seeded env.Context.Rand (or a *rand.Rand derived from a config seed)",
				sel.Sel.Name)
		}
	}
}

// checkRange flags `range` over a map whose body emits messages,
// schedules events, or records stats: map order would leak into the
// simulation schedule.
func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	reported := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		default:
			return true
		}
		if isEmission(name) {
			pass.Reportf(rng.Pos(),
				"map iteration order feeds %s; collect the keys, sort them, and iterate "+
					"the sorted slice so the schedule is seed-stable", name)
			reported = true // one report per range statement is enough
			return false
		}
		return true
	})
}
