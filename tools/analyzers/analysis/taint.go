// Forward dataflow over the call graph: per-function summary bits
// ("facts") seeded at direct sites and propagated caller-ward to a
// fixpoint. Cycles (mutual recursion) terminate because facts are
// monotone booleans over a finite node set — the worklist re-enqueues a
// caller only when its fact set actually grows.
package analysis

import (
	"go/token"
	"strings"
)

// Standard fact names. These are the summaries cached as vetx-style
// facts in `go vet -vettool` mode, so that per-package unit checking
// sees through dependency packages whose bodies are not reloaded.
const (
	// FactWallClock: the function (transitively) reads the wall clock
	// via the forbidden time package functions.
	FactWallClock = "wallclock"
	// FactGlobalRand: the function (transitively) draws from the global
	// math/rand source.
	FactGlobalRand = "globalrand"
	// FactEmission: the function (transitively) emits sim-visible
	// events: a call named Send/After/Multicast/Record*.
	FactEmission = "emission"
	// FactAllocates: the function (transitively, through static calls,
	// cold paths excluded) performs an unwaived heap allocation.
	FactAllocates = "allocates"
	// FactColdPath: the function carries a predis:coldpath directive.
	FactColdPath = "coldpath"
)

// WallClockSources are the time package functions that read or act on
// the wall clock (shared with the per-function determinism analyzer's
// intent; pure constructors stay allowed).
var WallClockSources = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// AllowedRandConstructors are math/rand package-level functions that do
// not touch the global source.
var AllowedRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// IsWallClockKey reports whether a callee key is a forbidden time
// package function, returning its short name.
func IsWallClockKey(key string) (string, bool) {
	name, ok := strings.CutPrefix(key, "time.")
	if !ok || !WallClockSources[name] {
		return "", false
	}
	return "time." + name, true
}

// IsGlobalRandKey reports whether a callee key is a global-source
// math/rand (or math/rand/v2) package-level function.
func IsGlobalRandKey(key string) (string, bool) {
	for _, prefix := range []string{"math/rand/v2.", "math/rand."} {
		if name, ok := strings.CutPrefix(key, prefix); ok {
			if !strings.Contains(name, ")") && !AllowedRandConstructors[name] {
				return prefix + name, true
			}
			return "", false
		}
	}
	return "", false
}

// IsEmissionName reports whether a call site name is an emission:
// message sends, event scheduling, stats recording. Name-based, exactly
// like the per-function determinism analyzer.
func IsEmissionName(name string) bool {
	switch name {
	case "Send", "After", "Multicast":
		return true
	}
	return strings.HasPrefix(name, "Record")
}

// Taint is the result of one fact's propagation over the program.
type Taint struct {
	prog *Program
	fact string
	// hops maps a tainted node to how taint reached it.
	hops map[*FuncNode]taintHop
}

type taintHop struct {
	// direct describes a source inside the function itself ("" when the
	// taint arrived through a callee).
	direct string
	pos    token.Pos
	// via is the callee key the taint arrived through.
	via string
}

// FollowFunc decides whether taint may flow from a callee reached at
// site back into caller n. Policy layers use it to stop at trusted
// boundaries (exempt-package interfaces, cold paths).
type FollowFunc func(n *FuncNode, site *CallSite, calleeKey string) bool

// DirectFunc inspects one node and reports a direct source description
// ("" if none) with its position.
type DirectFunc func(n *FuncNode) (string, token.Pos)

// Propagate computes the fixpoint of fact over the program: direct
// seeds each node, then taint flows callee->caller along every edge
// follow admits. External facts (imported vetx summaries) participate
// as always-tainted callee keys.
func (p *Program) Propagate(fact string, direct DirectFunc, follow FollowFunc) *Taint {
	t := &Taint{prog: p, fact: fact, hops: make(map[*FuncNode]taintHop)}
	var work []*FuncNode

	// Seed: direct sources and edges to external tainted keys.
	for _, n := range p.Nodes() {
		if desc, pos := direct(n); desc != "" {
			t.hops[n] = taintHop{direct: desc, pos: pos}
			work = append(work, n)
			continue
		}
		for _, site := range n.Calls {
			for _, key := range site.Targets {
				if p.nodes[key] != nil {
					continue // internal: handled by propagation
				}
				if _, ok := p.facts.Get(fact, key); ok && (follow == nil || follow(n, site, key)) {
					t.hops[n] = taintHop{via: key, pos: site.Pos}
					work = append(work, n)
					break
				}
			}
			if _, tainted := t.hops[n]; tainted {
				break
			}
		}
	}

	// Fixpoint: a newly tainted callee taints its callers.
	for len(work) > 0 {
		callee := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range p.CallersOf(callee.Key) {
			if _, done := t.hops[caller]; done {
				continue
			}
			admitted := false
			var at token.Pos
			for _, site := range caller.Calls {
				for _, key := range site.Targets {
					if key == callee.Key && (follow == nil || follow(caller, site, key)) {
						admitted = true
						at = site.Pos
						break
					}
				}
				if admitted {
					break
				}
			}
			if admitted {
				t.hops[caller] = taintHop{via: callee.Key, pos: at}
				work = append(work, caller)
			}
		}
	}
	return t
}

// Tainted reports whether n carries the fact.
func (t *Taint) Tainted(n *FuncNode) bool {
	_, ok := t.hops[n]
	return ok
}

// TaintedKey reports whether the function with the given key carries
// the fact, consulting external facts for functions outside the load.
func (t *Taint) TaintedKey(key string) bool {
	if n := t.prog.nodes[key]; n != nil {
		return t.Tainted(n)
	}
	_, ok := t.prog.facts.Get(t.fact, key)
	return ok
}

// Direct returns the description of n's own source site, or "".
func (t *Taint) Direct(n *FuncNode) string { return t.hops[n].direct }

// Chain renders the witness path from n to the source, e.g.
// "emit -> flush -> ctx.Send". Cycles are cut; length is capped.
func (t *Taint) Chain(n *FuncNode) string {
	var parts []string
	seen := make(map[string]bool)
	cur := n
	for steps := 0; steps < 12; steps++ {
		hop, ok := t.hops[cur]
		if !ok {
			break
		}
		if hop.direct != "" {
			parts = append(parts, hop.direct)
			break
		}
		if seen[hop.via] {
			break
		}
		seen[hop.via] = true
		next := t.prog.nodes[hop.via]
		if next == nil {
			// External function: splice in its recorded witness.
			if w, ok := t.prog.facts.Get(t.fact, hop.via); ok && w != "" {
				parts = append(parts, shortKey(hop.via)+" -> "+w)
			} else {
				parts = append(parts, shortKey(hop.via))
			}
			break
		}
		parts = append(parts, shortKey(hop.via))
		cur = next
	}
	return strings.Join(parts, " -> ")
}

// ChainKey renders the witness path for the function with the given
// key, prefixed by the function's own short name. External functions
// render their recorded fact witness.
func (t *Taint) ChainKey(key string) string {
	if n := t.prog.nodes[key]; n != nil {
		if rest := t.Chain(n); rest != "" {
			return shortKey(key) + " -> " + rest
		}
		return shortKey(key)
	}
	if w, ok := t.prog.facts.Get(t.fact, key); ok && w != "" {
		return shortKey(key) + " -> " + w
	}
	return shortKey(key)
}

// shortKey strips the package path from a node key for readable chains:
// "(*predis/internal/simnet.Network).schedule" -> "(*Network).schedule".
func shortKey(key string) string {
	pkg := PkgOfKey(key)
	if i := strings.LastIndex(pkg, "/"); i >= 0 {
		// Keep the last path segment as a package hint.
		return strings.Replace(key, pkg, pkg[i+1:], 1)
	}
	return key
}

// PathStep records how a node was reached in a forward traversal.
type PathStep struct {
	From *FuncNode // caller (nil for roots)
	Pos  token.Pos // call site in From
}

// Reachable walks the graph forward from roots along the edges follow
// admits and returns every reached node with its discovery step. The
// traversal is deterministic (node order, then call order).
func (p *Program) Reachable(roots []*FuncNode, follow FollowFunc) map[*FuncNode]PathStep {
	out := make(map[*FuncNode]PathStep)
	var queue []*FuncNode
	for _, r := range roots {
		if _, ok := out[r]; !ok {
			out[r] = PathStep{}
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, site := range n.Calls {
			for _, key := range site.Targets {
				callee := p.nodes[key]
				if callee == nil {
					continue
				}
				if _, ok := out[callee]; ok {
					continue
				}
				if follow != nil && !follow(n, site, key) {
					continue
				}
				out[callee] = PathStep{From: n, Pos: site.Pos}
				queue = append(queue, callee)
			}
		}
	}
	return out
}

// RootChain renders the call path from a hot root down to n:
// "Send -> schedule -> alloc".
func RootChain(reached map[*FuncNode]PathStep, n *FuncNode) string {
	var parts []string
	for cur := n; cur != nil; {
		parts = append(parts, shortKey(cur.Key))
		step, ok := reached[cur]
		if !ok {
			break
		}
		cur = step.From
		if len(parts) > 12 {
			break
		}
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " -> ")
}
