package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	// Syntax holds compiled files followed by in-package test files.
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info

	lookup func(path string) *types.Package
}

// listedPkg mirrors the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath  string
	Name        string
	Dir         string
	Standard    bool
	DepOnly     bool
	GoFiles     []string
	TestGoFiles []string
	Imports     []string
	TestImports []string
	ImportMap   map[string]string
	Error       *struct{ Err string }

	syntax []*ast.File // parsed compiled files (lazily)
}

// loader type-checks packages from source. The hermetic build environment
// has no pre-compiled export data and no x/tools, so the loader does what
// x/tools' "source" importer does: it asks `go list` for the file sets of
// every (transitive) dependency — standard library included — and runs
// go/types over them in dependency order, memoizing results.
type loader struct {
	dir    string // directory to run `go list` in (any dir inside the module)
	fset   *token.FileSet
	listed map[string]*listedPkg
	types  map[string]*types.Package // memoized pure (non-test) packages
	active map[string]bool           // import-cycle guard
}

// Load lists patterns in dir (a directory inside the target module),
// type-checks them and all dependencies from source, and returns the
// matched packages with their in-package test files merged in.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld := &loader{
		dir:    dir,
		fset:   token.NewFileSet(),
		listed: make(map[string]*listedPkg),
		types:  make(map[string]*types.Package),
		active: make(map[string]bool),
	}
	if err := ld.list(append([]string{"-deps"}, patterns...)); err != nil {
		return nil, err
	}

	// Targets are the pattern matches; everything else came in via -deps.
	var targets []*listedPkg
	for _, lp := range ld.listed {
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	// Test files may import packages outside the -deps closure (testing,
	// net/http/httptest, ...); list those too.
	missing := make(map[string]bool)
	for _, lp := range targets {
		for _, imp := range lp.TestImports {
			if imp != "C" && ld.listed[imp] == nil {
				missing[imp] = true
			}
		}
	}
	if len(missing) > 0 {
		args := []string{"-deps"}
		for imp := range missing {
			args = append(args, imp)
		}
		if err := ld.list(args); err != nil {
			return nil, err
		}
	}

	// Pure pass first: every target is available to importers (including
	// its own test dependencies) before any test-augmented check runs.
	for _, lp := range targets {
		if _, err := ld.check(lp.ImportPath); err != nil {
			return nil, err
		}
	}

	pkgs := make([]*Package, 0, len(targets))
	for _, lp := range targets {
		pkg, err := ld.checkWithTests(lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sortPackages(pkgs)
	return pkgs, nil
}

func sortPackages(pkgs []*Package) {
	for i := 1; i < len(pkgs); i++ {
		for j := i; j > 0 && pkgs[j].PkgPath < pkgs[j-1].PkgPath; j-- {
			pkgs[j], pkgs[j-1] = pkgs[j-1], pkgs[j]
		}
	}
}

// list runs `go list -e -json <args>` and merges the results.
func (ld *loader) list(args []string) error {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = ld.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("go list: %w", err)
	}
	dec := json.NewDecoder(out)
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return fmt.Errorf("go list: decoding output: %w (stderr: %s)", err, stderr.String())
		}
		if prev, ok := ld.listed[lp.ImportPath]; ok {
			// Keep target status if either listing granted it.
			if !lp.DepOnly {
				prev.DepOnly = false
			}
			continue
		}
		cp := lp
		ld.listed[lp.ImportPath] = &cp
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return nil
}

// parse parses the package's compiled Go files (memoized).
func (ld *loader) parse(lp *listedPkg) ([]*ast.File, error) {
	if lp.syntax != nil {
		return lp.syntax, nil
	}
	files, err := ld.parseFiles(lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	lp.syntax = files
	return files, nil
}

func (ld *loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name),
			nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks the package (without test files), memoized.
func (ld *loader) check(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.types[path]; ok {
		return pkg, nil
	}
	lp, ok := ld.listed[path]
	if !ok {
		return nil, fmt.Errorf("load: package %q not in go list output", path)
	}
	if lp.Error != nil && !lp.Standard {
		return nil, fmt.Errorf("load: %s: %s", path, lp.Error.Err)
	}
	if ld.active[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	ld.active[path] = true
	defer delete(ld.active, path)

	files, err := ld.parse(lp)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	pkg, _, err := ld.typeCheck(lp, files, nil)
	if err != nil {
		return nil, err
	}
	ld.types[path] = pkg
	return pkg, nil
}

// checkWithTests re-checks a target package with its in-package test
// files appended and full type information recorded.
func (ld *loader) checkWithTests(lp *listedPkg) (*Package, error) {
	files, err := ld.parse(lp)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", lp.ImportPath, err)
	}
	if len(lp.TestGoFiles) > 0 {
		testFiles, err := ld.parseFiles(lp.Dir, lp.TestGoFiles)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %w", lp.ImportPath, err)
		}
		files = append(append([]*ast.File{}, files...), testFiles...)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, hardErr, err := ld.typeCheck(lp, files, info)
	if err != nil {
		return nil, err
	}
	if hardErr != nil {
		return nil, fmt.Errorf("load: %s: %w", lp.ImportPath, hardErr)
	}
	return &Package{
		PkgPath: lp.ImportPath,
		Name:    lp.Name,
		Dir:     lp.Dir,
		Fset:    ld.fset,
		Syntax:  files,
		Types:   pkg,
		Info:    info,
		lookup: func(path string) *types.Package {
			return ld.types[path]
		},
	}, nil
}

// typeCheck runs go/types over the files. Errors in standard-library
// packages are tolerated (the checker still produces a usable package;
// exotic runtime-internal constructs are not our lint targets); errors in
// module packages are returned so the caller can surface them.
func (ld *loader) typeCheck(lp *listedPkg, files []*ast.File, info *types.Info) (*types.Package, error, error) {
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := lp.ImportMap[path]; ok && mapped != "" {
				path = mapped
			}
			return ld.check(path)
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
		FakeImportC: true,
	}
	pkg, _ := conf.Check(lp.ImportPath, ld.fset, files, info)
	if pkg == nil {
		return nil, nil, fmt.Errorf("load: %s: %v", lp.ImportPath, firstErr)
	}
	if lp.Standard {
		return pkg, nil, nil
	}
	return pkg, firstErr, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
