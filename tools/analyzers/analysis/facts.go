// Vetx-style facts: per-function summaries serialized to the .vetx file
// the `go vet -vettool` protocol already threads between packages. In
// unit-checking mode the go command analyzes one package at a time, in
// dependency order, handing each unit the fact files of its imports —
// exactly the shape a summary-based interprocedural analysis needs. The
// standalone driver (whole program loaded at once) computes the same
// summaries in memory and never touches disk.
//
// The format is deliberately simple and deterministic: JSON object
// fact-name -> (function key -> witness string), keys sorted by
// encoding/json's map ordering, so fact files are byte-stable for a
// given package state.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
)

// FactSet holds per-function summaries keyed by fact name then function
// key (types.Func FullName). The witness string describes how the fact
// arose, for diagnostics ("time.Now", "boxing at codec.go:41").
type FactSet struct {
	m map[string]map[string]string
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{m: make(map[string]map[string]string)}
}

// Get returns the witness for (fact, key) and whether it is present.
func (fs *FactSet) Get(fact, key string) (string, bool) {
	w, ok := fs.m[fact][key]
	return w, ok
}

// Put records a fact.
func (fs *FactSet) Put(fact, key, witness string) {
	inner, ok := fs.m[fact]
	if !ok {
		inner = make(map[string]string)
		fs.m[fact] = inner
	}
	inner[key] = witness
}

// Merge adds every fact from other (other wins on conflicts).
func (fs *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	for fact, inner := range other.m {
		for key, w := range inner {
			fs.Put(fact, key, w)
		}
	}
}

// Len returns the total number of recorded facts.
func (fs *FactSet) Len() int {
	n := 0
	for _, inner := range fs.m {
		n += len(inner)
	}
	return n
}

// Encode serializes the set (deterministically: JSON sorts map keys).
func (fs *FactSet) Encode() ([]byte, error) {
	return json.Marshal(fs.m)
}

// DecodeFacts parses a fact file produced by Encode. Empty input (the
// placeholder vetx the driver writes for non-module packages) yields an
// empty set.
func DecodeFacts(data []byte) (*FactSet, error) {
	fs := NewFactSet()
	if len(data) == 0 {
		return fs, nil
	}
	if err := json.Unmarshal(data, &fs.m); err != nil {
		return nil, fmt.Errorf("facts: %w", err)
	}
	if fs.m == nil {
		fs.m = make(map[string]map[string]string)
	}
	return fs, nil
}

// ExportFacts computes the standard summaries for every non-test
// function of the program's packages and returns them as a fact set
// suitable for the unit's .vetx output. The policies mirror the
// analyzers that consume the facts (see StandardFollow).
func ExportFacts(p *Program) *FactSet {
	out := NewFactSet()
	wall := p.Propagate(FactWallClock, DirectWallClock, StandardFollow)
	rand := p.Propagate(FactGlobalRand, DirectGlobalRand, StandardFollow)
	emit := p.Propagate(FactEmission, DirectEmission, StandardFollow)
	alloc := p.Propagate(FactAllocates, DirectAllocIn(p), AllocFollowIn(p))
	for _, n := range p.Nodes() {
		if n.IsTest {
			continue
		}
		if n.Cold {
			out.Put(FactColdPath, n.Key, "predis:coldpath")
		}
		for _, t := range []*Taint{wall, rand, emit, alloc} {
			if t.fact == FactAllocates && n.Cold {
				// A cold function's allocations are sanctioned; exporting
				// the fact would make remote callers flag calls into it
				// even though traversal stops at cold boundaries.
				continue
			}
			if t.Tainted(n) {
				out.Put(t.fact, n.Key, t.Chain(n))
			}
		}
	}
	return out
}

// TrustedSegments are import-path segments of packages that sit outside
// the sim-visible determinism scope: the real-time runtime, the
// simulator, the runtime interface, command binaries, the seeded fault
// injector, and the compute plane. Interface methods declared by these
// packages (env.Context.Now, env.Timer, ...) are sanctioned contract
// boundaries: their implementations legitimately wrap the wall clock
// and are audited separately, so taint never flows through them.
var TrustedSegments = []string{"rtnet", "simnet", "env", "cmd", "faults", "compute"}

// StandardFollow is the determinism-taint traversal policy: follow
// every edge except interface dispatch through an interface declared in
// a trusted runtime package.
func StandardFollow(n *FuncNode, site *CallSite, calleeKey string) bool {
	if site.Kind == CallIface && site.IfacePkg != "" &&
		PathHasSegment(site.IfacePkg, TrustedSegments...) {
		return false
	}
	return true
}

// AllocFollowIn is the hot-path traversal policy for prog: static and
// locally-bound calls only (dynamic dispatch leaves the statically
// guarded region), never into predis:coldpath functions.
func AllocFollowIn(p *Program) FollowFunc {
	return func(n *FuncNode, site *CallSite, calleeKey string) bool {
		if site.Kind != CallStatic && site.Kind != CallBound {
			return false
		}
		if callee := p.Node(calleeKey); callee != nil {
			return !callee.Cold && !callee.IsTest
		}
		_, cold := p.Facts().Get(FactColdPath, calleeKey)
		return !cold
	}
}

// directSource seeds a fact from call or capture sites whose callee key
// match recognizes. Captured values are flagged like calls: taking
// time.Now as a func value smuggles the wall clock past any per-call
// check.
func directSource(n *FuncNode, match func(key string) (string, bool)) (string, token.Pos) {
	for _, site := range n.Calls {
		for _, key := range site.Targets {
			if desc, ok := match(key); ok {
				if site.Kind == CallRef {
					desc += " (captured as a function value)"
				}
				return desc, site.Pos
			}
		}
	}
	return "", token.NoPos
}

// DirectWallClock seeds FactWallClock: a call to — or a captured value
// of — a forbidden time package function.
func DirectWallClock(n *FuncNode) (string, token.Pos) {
	return directSource(n, IsWallClockKey)
}

// DirectGlobalRand seeds FactGlobalRand: use of a global-source
// math/rand package-level function.
func DirectGlobalRand(n *FuncNode) (string, token.Pos) {
	return directSource(n, IsGlobalRandKey)
}

// DirectEmission seeds FactEmission: an emission-named call site.
func DirectEmission(n *FuncNode) (string, token.Pos) {
	for _, site := range n.Calls {
		if site.Kind != CallRef && IsEmissionName(site.Name) {
			return site.Name, site.Pos
		}
	}
	return "", token.NoPos
}

// DirectAllocIn seeds FactAllocates for prog: the first unwaived
// allocation site of a non-cold function.
func DirectAllocIn(p *Program) DirectFunc {
	return func(n *FuncNode) (string, token.Pos) {
		if n.Cold {
			return "", token.NoPos
		}
		for _, a := range n.Allocs {
			if !a.Waived {
				pos := n.Pkg.Fset.Position(a.Pos)
				return fmt.Sprintf("%s (%s) at %s:%d", a.Kind, a.Detail,
					shortFile(pos.Filename), pos.Line), a.Pos
			}
		}
		return "", token.NoPos
	}
}

func shortFile(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}
