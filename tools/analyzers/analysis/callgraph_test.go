package analysis

import (
	"strings"
	"testing"
)

const cgPkg = "predis/tools/analyzers/testdata/callgraph"

// loadCallgraphFixture builds the Program over the callgraph fixture.
func loadCallgraphFixture(t *testing.T) *Program {
	t.Helper()
	pkgs, err := Load("../testdata", "./callgraph")
	if err != nil {
		t.Fatalf("loading callgraph fixture: %v", err)
	}
	return NewProgram(pkgs, nil)
}

func mustNode(t *testing.T, p *Program, key string) *FuncNode {
	t.Helper()
	n := p.Node(key)
	if n == nil {
		var have []string
		for _, o := range p.Nodes() {
			have = append(have, o.Key)
		}
		t.Fatalf("node %q missing; have:\n  %s", key, strings.Join(have, "\n  "))
	}
	return n
}

func TestCallGraphInterfaceDispatchCHA(t *testing.T) {
	p := loadCallgraphFixture(t)
	n := mustNode(t, p, cgPkg+".viaIface")

	var iface *CallSite
	for _, c := range n.Calls {
		if c.Kind == CallIface && c.Name == "tick" {
			iface = c
		}
	}
	if iface == nil {
		t.Fatalf("viaIface has no interface call site; calls: %+v", n.Calls)
	}
	want := []string{
		"(" + cgPkg + ".fixedTicker).tick",
		"(" + cgPkg + ".wallTicker).tick",
	}
	if len(iface.Targets) != len(want) {
		t.Fatalf("CHA targets = %v, want %v", iface.Targets, want)
	}
	for i, w := range want {
		if iface.Targets[i] != w {
			t.Errorf("CHA target[%d] = %q, want %q", i, iface.Targets[i], w)
		}
	}

	// Reverse index: both implementations list viaIface as a caller.
	for _, impl := range want {
		found := false
		for _, c := range p.CallersOf(impl) {
			if c.Key == n.Key {
				found = true
			}
		}
		if !found {
			t.Errorf("CallersOf(%s) does not include viaIface", impl)
		}
	}
}

func TestCallGraphMethodValueBinding(t *testing.T) {
	p := loadCallgraphFixture(t)
	n := mustNode(t, p, cgPkg+".viaMethodValue")

	var bound *CallSite
	for _, c := range n.Calls {
		if c.Kind == CallBound {
			bound = c
		}
	}
	if bound == nil {
		t.Fatalf("viaMethodValue has no bound call site; calls: %+v", n.Calls)
	}
	wantTarget := "(" + cgPkg + ".wallTicker).tick"
	if len(bound.Targets) != 1 || bound.Targets[0] != wantTarget {
		t.Fatalf("bound targets = %v, want [%s]", bound.Targets, wantTarget)
	}

	// The binding is also a method value allocation (boxes the receiver).
	foundMV := false
	for _, a := range n.Allocs {
		if a.Kind == AllocMethodValue {
			foundMV = true
		}
	}
	if !foundMV {
		t.Errorf("viaMethodValue records no method-value allocation; allocs: %+v", n.Allocs)
	}
}

func TestCallGraphClosureCapturesReceiver(t *testing.T) {
	p := loadCallgraphFixture(t)
	n := mustNode(t, p, "(*"+cgPkg+".holder).viaClosure")

	// The literal's call to h.t.tick merges into viaClosure.
	wantCallee := "(" + cgPkg + ".wallTicker).tick"
	found := false
	for _, c := range n.Calls {
		for _, tgt := range c.Targets {
			if tgt == wantCallee {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("closure body call not merged into viaClosure; calls: %+v", n.Calls)
	}

	// The capture of h is an allocation site.
	foundClosure := false
	for _, a := range n.Allocs {
		if a.Kind == AllocClosure && strings.Contains(a.Detail, "h") {
			foundClosure = true
		}
	}
	if !foundClosure {
		t.Errorf("receiver capture not recorded as closure allocation; allocs: %+v", n.Allocs)
	}
}

func TestTaintFixpointTerminatesOnRecursion(t *testing.T) {
	p := loadCallgraphFixture(t)
	wall := p.Propagate(FactWallClock, DirectWallClock, StandardFollow)

	for _, fn := range []string{"pingPong", "pong"} {
		n := mustNode(t, p, cgPkg+"."+fn)
		if !wall.Tainted(n) {
			t.Errorf("%s not tainted through the recursive cycle", fn)
		}
		if chain := wall.Chain(n); chain == "" {
			t.Errorf("%s has an empty witness chain", fn)
		}
	}
}

func TestTaintThroughIfaceAndBoundEdges(t *testing.T) {
	p := loadCallgraphFixture(t)
	wall := p.Propagate(FactWallClock, DirectWallClock, StandardFollow)

	for _, fn := range []string{"viaIface", "viaMethodValue"} {
		if !wall.Tainted(mustNode(t, p, cgPkg+"."+fn)) {
			t.Errorf("%s not tainted", fn)
		}
	}
	if !wall.Tainted(mustNode(t, p, "(*"+cgPkg+".holder).viaClosure")) {
		t.Errorf("viaClosure not tainted through merged literal")
	}
	if wall.Tainted(mustNode(t, p, cgPkg+".clean")) {
		t.Errorf("clean tainted: static call to fixedTicker.tick must not reach the clock")
	}
}

func TestFactsRoundtripThroughEncode(t *testing.T) {
	p := loadCallgraphFixture(t)
	facts := ExportFacts(p)
	if facts.Len() == 0 {
		t.Fatal("fixture exported no facts")
	}
	if _, ok := facts.Get(FactWallClock, cgPkg+".pingPong"); !ok {
		t.Error("pingPong wallclock fact not exported")
	}

	enc, err := facts.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeFacts(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Len() != facts.Len() {
		t.Fatalf("roundtrip lost facts: %d != %d", dec.Len(), facts.Len())
	}
	enc2, err := dec.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(enc) != string(enc2) {
		t.Error("fact encoding is not byte-stable across a roundtrip")
	}

	// A program built elsewhere sees the imported facts as external
	// taint seeds.
	empty := NewProgram(nil, dec)
	wall := empty.Propagate(FactWallClock, DirectWallClock, StandardFollow)
	if !wall.TaintedKey(cgPkg + ".pingPong") {
		t.Error("imported fact not visible through TaintedKey")
	}
}
