// Interprocedural layer: a whole-program call graph over the packages a
// Run loads, built from syntax + go/types with no SSA. Three edge kinds
// connect function nodes:
//
//   - static: the callee is a known *types.Func (package function,
//     concrete method, or a promoted method resolved through embedding);
//   - bound: the callee is a local variable that was assigned a function
//     value in the same function (f := time.Now; f() — the per-function
//     analyzers provably miss these);
//   - iface: the callee is an interface method, resolved CHA-style to
//     every concrete method of every named type in the loaded packages
//     that implements the interface.
//
// Function literals are merged into their enclosing declared function:
// a closure's calls, allocations, and map ranges belong to the function
// that lexically contains it. This over-approximates (a literal that is
// never invoked still contributes) exactly the way the per-function
// determinism analyzer already does, and it makes closures capturing
// receivers fall out for free.
//
// Value references to functions (taking time.Now or a method value as a
// func value) become ref edges: for taint purposes, capturing a
// forbidden source is as bad as calling it, and the capture site is the
// only place a syntax-level analysis can see it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive comments recognized by the engine.
const (
	// DirectiveHotPath marks a function as a hot-path root: everything
	// statically reachable from it must not allocate (hotalloc).
	DirectiveHotPath = "predis:hotpath"
	// DirectiveColdPath marks a function as deliberately outside the
	// zero-alloc contract (slow paths, refills, error handling);
	// traversal stops at it.
	DirectiveColdPath = "predis:coldpath"
	// DirectiveAllocOK waives one allocation site (same line).
	DirectiveAllocOK = "predis:allocok"
)

// CallKind classifies one outgoing edge of a function node.
type CallKind uint8

const (
	// CallStatic is a direct call to a known function or concrete method.
	CallStatic CallKind = iota
	// CallBound is a call through a local variable whose function-value
	// assignments were all resolved within the same function.
	CallBound
	// CallIface is an interface method call; Targets holds the CHA
	// resolution over the loaded packages.
	CallIface
	// CallDynamic is a call through a value the engine cannot resolve
	// (parameter, struct field, channel receive, ...). No targets.
	CallDynamic
	// CallRef is not a call: the function's value was taken. For taint
	// the capture counts as a potential call.
	CallRef
)

// CallSite is one outgoing edge (or function-value capture).
type CallSite struct {
	Pos  token.Pos
	Kind CallKind
	// Name is the callee name as written at the site (selector or
	// identifier); emission detection is name-based, like the
	// per-function determinism analyzer.
	Name string
	// Targets are resolved callee keys (types.Func FullName). Static and
	// bound sites have exactly the known candidates; iface sites have
	// the CHA set; dynamic sites have none.
	Targets []string
	// IfacePkg is the import path of the package that declares the
	// interface, for iface sites on a named interface ("" otherwise).
	// Policy layers use it to stop at trusted runtime boundaries
	// (env.Context and friends).
	IfacePkg string
	// RangeIdx is the index into the owner's Ranges of the innermost
	// enclosing map-iteration statement, or -1.
	RangeIdx int
}

// AllocKind classifies one potential heap allocation.
type AllocKind string

const (
	AllocComposite   AllocKind = "escaping composite"   // &T{...}, slice/map literal
	AllocMake        AllocKind = "make"                 // make(map/chan/slice)
	AllocNew         AllocKind = "new"                  // new(T)
	AllocBox         AllocKind = "interface boxing"     // concrete non-pointer value -> interface
	AllocStringConv  AllocKind = "string conversion"    // string<->[]byte/[]rune
	AllocConcat      AllocKind = "string concatenation" // s1 + s2
	AllocClosure     AllocKind = "capturing closure"    // func literal with free variables
	AllocMethodValue AllocKind = "method value"         // x.M as a value (boxes receiver)
)

// AllocSite is one potential allocation inside a function.
type AllocSite struct {
	Pos    token.Pos
	Kind   AllocKind
	Detail string
	// Waived is set when the site's line carries a predis:allocok
	// directive.
	Waived bool
}

// MapRange is one `range` statement over a map that binds at least one
// non-blank variable (iteration order observable in the body).
type MapRange struct {
	Pos token.Pos
}

// FuncNode is one declared function or method of a loaded package,
// closures merged in.
type FuncNode struct {
	Key    string // types.Func FullName: pkg-qualified, method receivers included
	Obj    *types.Func
	Pkg    *Package
	Decl   *ast.FuncDecl
	Pos    token.Pos
	IsTest bool // declared in a _test.go file

	HotRoot bool // predis:hotpath
	Cold    bool // predis:coldpath

	Calls  []*CallSite
	Allocs []AllocSite
	Ranges []MapRange
}

// Program is the whole-program view over one Run's loaded packages plus
// any imported vetx-style facts for functions outside the load.
type Program struct {
	pkgs    []*Package
	nodes   map[string]*FuncNode
	order   []*FuncNode            // deterministic iteration order
	callers map[string][]*FuncNode // callee key -> caller nodes (deduped)
	facts   *FactSet               // external summaries; never nil
}

// NewProgram builds the call graph over pkgs. facts may be nil.
func NewProgram(pkgs []*Package, facts *FactSet) *Program {
	if facts == nil {
		facts = NewFactSet()
	}
	p := &Program{
		pkgs:  pkgs,
		nodes: make(map[string]*FuncNode),
		facts: facts,
	}
	b := &graphBuilder{prog: p}
	for _, pkg := range pkgs {
		b.scanPackage(pkg)
	}
	b.resolveIfaceSites()
	p.finish()
	return p
}

// Facts returns the external fact set the program was built with.
func (p *Program) Facts() *FactSet { return p.facts }

// Node returns the function node with the given key, or nil.
func (p *Program) Node(key string) *FuncNode { return p.nodes[key] }

// FuncOf returns the node for a declared function object, or nil.
func (p *Program) FuncOf(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	return p.nodes[funcKey(obj)]
}

// Nodes returns every function node in deterministic (key) order.
func (p *Program) Nodes() []*FuncNode { return p.order }

// CallersOf returns the nodes with at least one edge to key.
func (p *Program) CallersOf(key string) []*FuncNode { return p.callers[key] }

// finish computes deterministic orders and the reverse edge index.
func (p *Program) finish() {
	p.order = make([]*FuncNode, 0, len(p.nodes))
	for _, n := range p.nodes {
		p.order = append(p.order, n)
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i].Key < p.order[j].Key })
	p.callers = make(map[string][]*FuncNode)
	for _, n := range p.order {
		seen := make(map[string]bool)
		for _, c := range n.Calls {
			for _, t := range c.Targets {
				if !seen[t] {
					seen[t] = true
					p.callers[t] = append(p.callers[t], n)
				}
			}
		}
	}
}

// funcKey is the node key for a function object. FullName is stable and
// pkg-qualified: "pkg.F", "(pkg.T).M", "(*pkg.T).M".
func funcKey(obj *types.Func) string { return obj.FullName() }

// PkgOfKey extracts the import path from a node key. Keys take the
// forms "pkg/path.Func", "(pkg/path.T).M", and "(*pkg/path.T).M".
func PkgOfKey(key string) string {
	s := key
	if strings.HasPrefix(s, "(") {
		if end := strings.Index(s, ")"); end > 0 {
			s = s[1:end]
		}
		s = strings.TrimPrefix(s, "*")
	}
	if i := strings.LastIndex(s, "."); i >= 0 {
		s = s[:i]
	}
	return s
}

// --- builder ---

type ifaceSite struct {
	site  *CallSite
	iface *types.Interface
	name  string
}

type graphBuilder struct {
	prog       *Program
	ifaceSites []ifaceSite
	// concrete named types of all loaded packages, for CHA.
	chaTypes []*types.Named
	chaCache map[string][]string
}

func (b *graphBuilder) scanPackage(pkg *Package) {
	// CHA candidate types: every package-level non-interface named type.
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named.TypeParams().Len() > 0 {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		b.chaTypes = append(b.chaTypes, named)
	}

	for _, f := range pkg.Syntax {
		isTest := pkg.IsTestFile(f)
		waived := allocOKLines(pkg.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &FuncNode{
				Key:    funcKey(obj),
				Obj:    obj,
				Pkg:    pkg,
				Decl:   fd,
				Pos:    fd.Pos(),
				IsTest: isTest,
			}
			n.HotRoot, n.Cold = funcDirectives(fd)
			b.prog.nodes[n.Key] = n
			fs := &funcScanner{b: b, pkg: pkg, node: n, waived: waived, rangeIdx: -1}
			fs.bindLocals(fd.Body)
			fs.scan(fd.Body)
		}
	}
}

// IsTestFile mirrors Pass.IsTestFile for a loaded package.
func (pkg *Package) IsTestFile(f *ast.File) bool {
	name := pkg.Fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// funcDirectives reads predis:hotpath / predis:coldpath from a func
// declaration's doc comment.
func funcDirectives(fd *ast.FuncDecl) (hot, cold bool) {
	if fd.Doc == nil {
		return false, false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		switch {
		case strings.HasPrefix(text, DirectiveHotPath):
			hot = true
		case strings.HasPrefix(text, DirectiveColdPath):
			cold = true
		}
	}
	return hot, cold
}

// allocOKLines collects the line numbers carrying predis:allocok.
func allocOKLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, DirectiveAllocOK) {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// resolveIfaceSites fills in CHA targets for every interface call site.
func (b *graphBuilder) resolveIfaceSites() {
	b.chaCache = make(map[string][]string)
	for _, is := range b.ifaceSites {
		is.site.Targets = b.chaResolve(is.iface, is.name)
	}
}

// chaResolve returns the keys of every concrete method named name on a
// loaded named type implementing iface, sorted for determinism.
func (b *graphBuilder) chaResolve(iface *types.Interface, name string) []string {
	cacheKey := types.TypeString(iface, nil) + "\x00" + name
	if got, ok := b.chaCache[cacheKey]; ok {
		return got
	}
	seen := make(map[string]bool)
	var out []string
	for _, named := range b.chaTypes {
		recv := types.Type(named)
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), name)
		if fn, ok := obj.(*types.Func); ok {
			key := funcKey(fn)
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
	}
	sort.Strings(out)
	b.chaCache[cacheKey] = out
	return out
}

// funcScanner walks one declared function's body (closures included).
type funcScanner struct {
	b        *graphBuilder
	pkg      *Package
	node     *FuncNode
	waived   map[int]bool
	rangeIdx int
	// bound maps local variables to the function keys assigned to them
	// within this function body.
	bound map[*types.Var][]string
	// litDepth > 0 while inside a func literal (for closure captures).
	litStack []*ast.FuncLit
}

// bindLocals pre-scans the body for `v := fn` / `v = fn` assignments of
// resolvable function values, so later `v()` calls become bound edges.
func (fs *funcScanner) bindLocals(body *ast.BlockStmt) {
	fs.bound = make(map[*types.Var][]string)
	ast.Inspect(body, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var v *types.Var
			if def, ok := fs.pkg.Info.Defs[id].(*types.Var); ok {
				v = def
			} else if use, ok := fs.pkg.Info.Uses[id].(*types.Var); ok {
				v = use
			}
			if v == nil {
				continue
			}
			if fn := resolveFuncExpr(fs.pkg.Info, as.Rhs[i]); fn != nil {
				fs.bound[v] = append(fs.bound[v], funcKey(fn))
			}
		}
		return true
	})
}

// resolveFuncExpr returns the function object an expression denotes
// (package function, or method value), or nil.
func resolveFuncExpr(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	case *ast.ParenExpr:
		return resolveFuncExpr(info, e.X)
	}
	return nil
}

func (fs *funcScanner) addCall(site *CallSite) {
	site.RangeIdx = fs.rangeIdx
	fs.node.Calls = append(fs.node.Calls, site)
}

func (fs *funcScanner) addAlloc(pos token.Pos, kind AllocKind, detail string) {
	line := fs.pkg.Fset.Position(pos).Line
	fs.node.Allocs = append(fs.node.Allocs, AllocSite{
		Pos:    pos,
		Kind:   kind,
		Detail: detail,
		Waived: fs.waived[line],
	})
}

// scan walks a statement/expression tree collecting call sites, value
// references, allocation sites, and map ranges.
func (fs *funcScanner) scan(n ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		fs.scanCall(n)
		return
	case *ast.FuncLit:
		fs.scanFuncLit(n)
		return
	case *ast.RangeStmt:
		fs.scanRange(n)
		return
	case *ast.Ident:
		fs.refIdent(n)
		return
	case *ast.SelectorExpr:
		fs.refSelector(n)
		return
	case *ast.CompositeLit:
		fs.scanComposite(n, false)
		return
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if cl, ok := n.X.(*ast.CompositeLit); ok {
				fs.scanComposite(cl, true)
				return
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := fs.pkg.Info.Types[n]; ok {
				if bt, ok := tv.Type.Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 && tv.Value == nil {
					fs.addAlloc(n.Pos(), AllocConcat, "string +")
				}
			}
		}
	case *ast.AssignStmt:
		// Flag boxing on plain assignments var = concrete.
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Rhs {
				fs.checkBox(n.Rhs[i], fs.lhsType(n.Lhs[i]))
			}
		}
	case *ast.ReturnStmt:
		if fs.currentResults() != nil && len(n.Results) == fs.currentResults().Len() {
			for i, r := range n.Results {
				fs.checkBox(r, fs.currentResults().At(i).Type())
			}
		}
	}
	fs.walkChildren(n)
}

func (fs *funcScanner) walkChildren(n ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		fs.scan(c)
		return false
	})
}

// currentResults returns the result tuple of the innermost function
// (literal or the declared function) for return-boxing checks.
func (fs *funcScanner) currentResults() *types.Tuple {
	if len(fs.litStack) > 0 {
		lit := fs.litStack[len(fs.litStack)-1]
		if tv, ok := fs.pkg.Info.Types[lit]; ok {
			if sig, ok := tv.Type.(*types.Signature); ok {
				return sig.Results()
			}
		}
		return nil
	}
	if fs.node.Obj != nil {
		return fs.node.Obj.Type().(*types.Signature).Results()
	}
	return nil
}

func (fs *funcScanner) lhsType(e ast.Expr) types.Type {
	if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
		return nil
	}
	if tv, ok := fs.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (fs *funcScanner) scanFuncLit(lit *ast.FuncLit) {
	// Closure capture check: any free variable makes the literal a heap
	// allocation at its creation site.
	if free := freeVars(fs.pkg.Info, lit); len(free) > 0 {
		fs.addAlloc(lit.Pos(), AllocClosure, "captures "+strings.Join(free, ", "))
	}
	fs.litStack = append(fs.litStack, lit)
	fs.walkChildren(lit.Body)
	fs.litStack = fs.litStack[:len(fs.litStack)-1]
}

// freeVars lists the variables a literal references that are declared
// outside it (receivers and enclosing locals; package-level vars do not
// force a closure allocation by themselves but captured locals do —
// package-level objects are excluded).
func freeVars(info *types.Info, lit *ast.FuncLit) []string {
	var out []string
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
			out = append(out, v.Name())
		}
		return true
	})
	sort.Strings(out)
	return out
}

func (fs *funcScanner) scanRange(rng *ast.RangeStmt) {
	fs.scan(rng.X)
	tv, ok := fs.pkg.Info.Types[rng.X]
	isMap := false
	if ok {
		_, isMap = tv.Type.Underlying().(*types.Map)
	}
	bindsVar := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return e != nil && (!ok || id.Name != "_")
	}
	if isMap && (bindsVar(rng.Key) || bindsVar(rng.Value)) {
		prev := fs.rangeIdx
		fs.node.Ranges = append(fs.node.Ranges, MapRange{Pos: rng.Pos()})
		fs.rangeIdx = len(fs.node.Ranges) - 1
		fs.walkChildren(rng.Body)
		fs.rangeIdx = prev
		return
	}
	fs.walkChildren(rng.Body)
}

func (fs *funcScanner) scanComposite(cl *ast.CompositeLit, addressed bool) {
	tv, ok := fs.pkg.Info.Types[cl]
	if ok {
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Map:
			fs.addAlloc(cl.Pos(), AllocComposite, types.TypeString(tv.Type, relQualifier(fs.pkg))+" literal")
		default:
			if addressed {
				fs.addAlloc(cl.Pos(), AllocComposite, "&"+types.TypeString(tv.Type, relQualifier(fs.pkg))+"{...}")
			}
		}
	}
	// Elements may contain calls/closures/nested literals.
	for _, el := range cl.Elts {
		fs.scan(el)
	}
}

func relQualifier(pkg *Package) types.Qualifier {
	return func(p *types.Package) string {
		if p == pkg.Types {
			return ""
		}
		return p.Name()
	}
}

func (fs *funcScanner) scanCall(call *ast.CallExpr) {
	info := fs.pkg.Info
	// Conversion? T(x) — flag string<->bytes, then scan the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			fs.checkStringConv(call, tv.Type)
			fs.scan(call.Args[0])
		}
		return
	}

	// Builtins.
	if id := calleeIdent(call.Fun); id != nil {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				fs.addAlloc(call.Pos(), AllocMake, exprString(call))
			case "new":
				fs.addAlloc(call.Pos(), AllocNew, exprString(call))
			}
			for _, a := range call.Args {
				fs.scan(a)
			}
			return
		}
	}

	site := &CallSite{Pos: call.Pos(), Kind: CallDynamic}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		site.Name = fun.Name
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			site.Kind = CallStatic
			site.Targets = []string{funcKey(obj)}
		case *types.Var:
			if targets := fs.bound[obj]; len(targets) > 0 {
				site.Kind = CallBound
				site.Targets = append([]string(nil), targets...)
			}
		}
	case *ast.SelectorExpr:
		site.Name = fun.Sel.Name
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				site.Kind = CallIface
				if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
					site.IfacePkg = named.Obj().Pkg().Path()
				}
				fs.b.ifaceSites = append(fs.b.ifaceSites, ifaceSite{site: site, iface: iface, name: fun.Sel.Name})
			} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				site.Kind = CallStatic
				site.Targets = []string{funcKey(fn)}
			}
			fs.scan(fun.X) // receiver expression may itself allocate/call
		} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			// Package-qualified function.
			site.Kind = CallStatic
			site.Targets = []string{funcKey(fn)}
		} else {
			// Func-typed struct field or similar: dynamic.
			fs.scan(fun.X)
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: body is merged; no edge needed.
		fs.scanFuncLit(fun)
		site = nil
	default:
		fs.scan(call.Fun)
	}
	if site != nil {
		fs.addCall(site)
	}

	// Arguments: boxing check against parameter types, then recurse.
	var sig *types.Signature
	if tv, ok := info.Types[call.Fun]; ok {
		sig, _ = tv.Type.Underlying().(*types.Signature)
	}
	for i, a := range call.Args {
		if sig != nil {
			fs.checkBox(a, paramType(sig, i, call.Ellipsis.IsValid()))
		}
		fs.scan(a)
	}
}

func calleeIdent(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// paramType returns the declared type of argument i (variadic-aware).
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if ellipsis {
			return last // passed as a slice, no per-element boxing
		}
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i < params.Len() {
		return params.At(i).Type()
	}
	return nil
}

// checkBox flags an implicit concrete->interface conversion of a value
// that is not pointer-shaped (pointers, funcs, maps, chans fit in the
// interface word and do not allocate).
func (fs *funcScanner) checkBox(arg ast.Expr, to types.Type) {
	if to == nil {
		return
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := fs.pkg.Info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	from := tv.Type
	if from == types.Typ[types.UntypedNil] {
		return
	}
	switch from.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		return
	}
	if bt, ok := from.Underlying().(*types.Basic); ok && bt.Kind() == types.UnsafePointer {
		return
	}
	fs.addAlloc(arg.Pos(), AllocBox,
		types.TypeString(from, relQualifier(fs.pkg))+" to "+types.TypeString(to, relQualifier(fs.pkg)))
}

func (fs *funcScanner) checkStringConv(call *ast.CallExpr, to types.Type) {
	tv, ok := fs.pkg.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	from := tv.Type
	if isString(to) && isByteOrRuneSlice(from) {
		fs.addAlloc(call.Pos(), AllocStringConv, "[]byte to string")
	} else if isByteOrRuneSlice(to) && isString(from) {
		fs.addAlloc(call.Pos(), AllocStringConv, "string to []byte")
	}
}

func isString(t types.Type) bool {
	bt, ok := t.Underlying().(*types.Basic)
	return ok && bt.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	bt, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (bt.Kind() == types.Byte || bt.Kind() == types.Rune || bt.Kind() == types.Uint8 || bt.Kind() == types.Int32)
}

// refIdent records a value reference to a function (address taken).
func (fs *funcScanner) refIdent(id *ast.Ident) {
	if fn, ok := fs.pkg.Info.Uses[id].(*types.Func); ok {
		fs.addCall(&CallSite{Pos: id.Pos(), Kind: CallRef, Name: id.Name, Targets: []string{funcKey(fn)}})
	}
}

// refSelector records pkg.Fn / x.Method value references. A method
// value additionally allocates (boxes its receiver).
func (fs *funcScanner) refSelector(sel *ast.SelectorExpr) {
	info := fs.pkg.Info
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
			fs.addCall(&CallSite{Pos: sel.Pos(), Kind: CallRef, Name: sel.Sel.Name, Targets: []string{funcKey(fn)}})
			fs.addAlloc(sel.Pos(), AllocMethodValue, exprString(sel))
		}
		fs.scan(sel.X)
		return
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		fs.addCall(&CallSite{Pos: sel.Pos(), Kind: CallRef, Name: sel.Sel.Name, Targets: []string{funcKey(fn)}})
		return
	}
	fs.scan(sel.X)
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return fmt.Sprintf("%T", e)
	}
}
