// Package analysis is a self-contained, stdlib-only re-implementation of
// the slice of golang.org/x/tools/go/analysis that predis-lint needs: an
// Analyzer value with a Run function over a type-checked package, a Pass
// carrying syntax plus type information, and positioned diagnostics.
//
// The build environment for this repository is hermetic (no module
// downloads), so the real x/tools packages are unavailable; the API here
// mirrors theirs closely enough that the analyzers in ../determinism,
// ../wiresym, ../lockorder, and ../errchecklite could be ported to the
// upstream framework by changing only imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run executes the check over one package, reporting findings through
	// pass.Reportf. It returns an error only for operational failures
	// (diagnostics are not errors).
	Run func(pass *Pass) error
}

// Diagnostic is one finding, attributed to an analyzer and a position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries everything an Analyzer.Run needs for one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// PkgPath is the package's import path.
	PkgPath string
	// Syntax holds the parsed files: the package's compiled Go files plus
	// its in-package _test.go files (tests participate so checks like
	// wiresym can verify round-trip coverage).
	Syntax []*ast.File
	// Types is the type-checked package (including test files).
	Types *types.Package
	// Info is the type information for Syntax.
	Info *types.Info

	// lookup resolves a dependency package by import path from the
	// loader's cache (nil when not loaded).
	lookup func(path string) *types.Package

	diags *[]Diagnostic
	prog  func() *Program
}

// Program returns the whole-program interprocedural view (call graph,
// taint engine, imported facts) over every package of the current Run,
// built lazily on first use and shared by all analyzers of the run.
func (p *Pass) Program() *Program { return p.prog() }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Lookup returns the type-checked dependency with the given import path,
// or nil when the current package does not (transitively) depend on it.
func (p *Pass) Lookup(path string) *types.Package {
	if p.lookup == nil {
		return nil
	}
	return p.lookup(path)
}

// IsTestFile reports whether the given syntax file is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// Run executes the analyzers over the loaded packages and returns all
// diagnostics sorted by position. Analyzer errors abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithFacts(pkgs, analyzers, nil)
}

// RunWithFacts is Run with imported vetx-style facts made available to
// interprocedural analyzers through Pass.Program (unit-checking mode
// hands each package the summaries of its dependencies this way).
func RunWithFacts(pkgs []*Package, analyzers []*Analyzer, facts *FactSet) ([]Diagnostic, error) {
	var diags []Diagnostic
	// One shared whole-program view per run, built only if an analyzer
	// asks for it.
	var prog *Program
	lazyProg := func() *Program {
		if prog == nil {
			prog = NewProgram(pkgs, facts)
		}
		return prog
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				PkgPath:  pkg.PkgPath,
				Syntax:   pkg.Syntax,
				Types:    pkg.Types,
				Info:     pkg.Info,
				lookup:   pkg.lookup,
				diags:    &diags,
				prog:     lazyProg,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// PathHasSegment reports whether any slash-separated segment of the import
// path equals one of the given segments. Analyzers use it for scope rules
// ("everything except rtnet, simnet, env, cmd") that must hold both for
// the real module ("predis/internal/rtnet") and for test fixtures
// ("fixtures/determinism").
func PathHasSegment(path string, segments ...string) bool {
	for _, part := range strings.Split(path, "/") {
		for _, s := range segments {
			if part == s {
				return true
			}
		}
	}
	return false
}
