package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// RunFixture is this framework's analysistest.Run: it loads the fixture
// package(s) matched by patterns inside moduleDir (a standalone test
// module, typically tools/analyzers/testdata), runs the analyzers, and
// matches every diagnostic against `// want "regexp"` comments in the
// fixture sources.
//
// Rules, mirroring x/tools analysistest:
//   - a line with `// want "re1" "re2"` expects exactly the given number
//     of diagnostics on that line, each matching one regexp (in order of
//     reported message);
//   - a diagnostic on a line without a matching want is an error;
//   - a want with no matching diagnostic is an error.
func RunFixture(t *testing.T, moduleDir string, analyzers []*Analyzer, patterns ...string) {
	t.Helper()
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		t.Fatalf("fixture module dir: %v", err)
	}
	pkgs, err := Load(abs, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v in %s", patterns, abs)
	}
	diags, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		seen := make(map[string]bool)
		for _, f := range pkg.Syntax {
			name := pkg.Fset.Position(f.Package).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			fileWants, err := parseWants(name)
			if err != nil {
				t.Fatalf("parsing want comments: %v", err)
			}
			for k, v := range fileWants {
				wants[k] = v
			}
		}
	}

	got := make(map[key][]Diagnostic)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d)
	}

	for k, ds := range got {
		ws := wants[k]
		if len(ds) != len(ws) {
			for _, d := range ds {
				t.Errorf("%s: unexpected or miscounted diagnostic (%d want(s) on line): %s",
					d.Pos, len(ws), d.Message)
			}
			continue
		}
		for i, d := range ds {
			if !ws[i].MatchString(d.Message) {
				t.Errorf("%s: diagnostic %q does not match want /%s/", d.Pos, d.Message, ws[i])
			}
		}
	}
	for k, ws := range wants {
		if len(got[k]) == 0 {
			for _, w := range ws {
				t.Errorf("%s:%d: expected diagnostic matching /%s/, got none", k.file, k.line, w)
			}
		}
	}
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants scans one source file for want comments.
func parseWants(filename string) (map[struct {
	file string
	line int
}][]*regexp.Regexp, error) {
	type key = struct {
		file string
		line int
	}
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	out := make(map[key][]*regexp.Regexp)
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var res []*regexp.Regexp
		rest := m[1]
		for {
			rest = strings.TrimSpace(rest)
			if !strings.HasPrefix(rest, `"`) {
				break
			}
			end := strings.Index(rest[1:], `"`)
			if end < 0 {
				return nil, fmt.Errorf("%s:%d: unterminated want pattern", filename, i+1)
			}
			pat := rest[1 : 1+end]
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", filename, i+1, pat, err)
			}
			res = append(res, re)
			rest = rest[2+end:]
		}
		if len(res) == 0 {
			return nil, fmt.Errorf("%s:%d: want comment without quoted patterns", filename, i+1)
		}
		out[key{filename, i + 1}] = res
	}
	return out, nil
}
