// Package handlercomplete checks dispatch exhaustiveness for wire
// messages. A protocol package that dispatches on wire.Message with a
// type switch must handle every message type it defines: a new message
// kind (PR 6's equivocation evidence, refetch/quarantine traffic) that
// is registered for decoding but missing from the receive switch would
// otherwise be decoded and silently dropped at runtime — invisible to
// tests that never send it.
//
// Rules, per package:
//
//  1. Scope gate: the package contains at least one type switch whose
//     operand is (or implements) wire.Message. Packages that only
//     define passive record types (types, txpool, topology) are out of
//     scope.
//  2. Every non-test named type in the package implementing
//     wire.Message must appear as a case in some wire.Message type
//     switch of the package, or be extracted via a type assertion on a
//     wire.Message-typed operand (the payload pattern: consensus
//     payloads ride inside proposal messages and are asserted out).
//  3. Every wire.Message type switch carries a default case, so
//     foreign or future message kinds are observed, not ignored.
package handlercomplete

import (
	"go/ast"
	"go/types"

	"predis/tools/analyzers/analysis"
)

// WirePath is the import path of the wire package that defines Message.
const WirePath = "predis/internal/wire"

// Analyzer is the handler-exhaustiveness check.
var Analyzer = &analysis.Analyzer{
	Name: "handlercomplete",
	Doc: "every wire.Message type defined in a dispatching package must be " +
		"matched by a case in that package's receive type switches, and every " +
		"such switch must have a default case",
	Run: run,
}

func run(pass *analysis.Pass) error {
	iface := messageInterface(pass)
	if iface == nil {
		return nil
	}

	// handled collects the types matched by switch cases or extracted by
	// type assertions on wire.Message operands. Test files are excluded
	// throughout: a partial switch in a test sink asserts on a subset of
	// traffic by design and is not a dispatch path.
	handled := make(map[types.Type]bool)
	var switches []*ast.TypeSwitchStmt
	for _, f := range pass.Syntax {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSwitchStmt:
				if operandIsMessage(pass, n, iface) {
					switches = append(switches, n)
					collectCases(pass, n, handled)
				}
			case *ast.TypeAssertExpr:
				if n.Type == nil {
					return true // x.(type) inside a switch, handled above
				}
				if tv, ok := pass.Info.Types[n.X]; ok && types.Implements(tv.Type, iface) {
					if tt, ok := pass.Info.Types[n.Type]; ok {
						handled[deref(tt.Type)] = true
					}
				}
			}
			return true
		})
	}
	if len(switches) == 0 {
		return nil // package does not dispatch wire messages
	}

	// Rule 3: every dispatch switch needs a default case.
	for _, sw := range switches {
		if !hasDefault(sw) {
			pass.Reportf(sw.Pos(), "wire.Message type switch without default case: unknown message kinds would be silently ignored")
		}
	}

	// Rule 2: every local message type must be handled somewhere.
	scope := pass.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named.TypeParams().Len() > 0 {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if pass.Fset != nil && isTestDecl(pass, tn) {
			continue
		}
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		if !handled[named] {
			pass.Reportf(tn.Pos(), "message type %s implements wire.Message but no receive type switch in this package handles it", name)
		}
	}
	return nil
}

// messageInterface resolves wire.Message for the current package, or
// for a fixture package that defines its own wire/ subpackage. Returns
// nil when the package has no path to a wire.Message interface.
func messageInterface(pass *analysis.Pass) *types.Interface {
	for _, path := range []string{WirePath, wireFixturePath(pass.PkgPath)} {
		if path == "" {
			continue
		}
		pkg := pass.Lookup(path)
		if pkg == nil && pass.Types.Path() == path {
			pkg = pass.Types
		}
		if pkg == nil {
			continue
		}
		if tn, ok := pkg.Scope().Lookup("Message").(*types.TypeName); ok {
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
	}
	return nil
}

// wireFixturePath maps a testdata fixture package to its sibling wire
// package ("a/b/handlercomplete/proto" -> "a/b/handlercomplete/wire"),
// letting fixtures exercise the analyzer without importing the real
// module wire package.
func wireFixturePath(pkgPath string) string {
	if !analysis.PathHasSegment(pkgPath, "testdata") {
		return ""
	}
	if i := lastSlash(pkgPath); i >= 0 {
		return pkgPath[:i] + "/wire"
	}
	return ""
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// operandIsMessage reports whether the switch's operand is typed as (or
// implements) the message interface.
func operandIsMessage(pass *analysis.Pass, sw *ast.TypeSwitchStmt, iface *types.Interface) bool {
	var operand ast.Expr
	switch st := sw.Assign.(type) {
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			if ta, ok := st.Rhs[0].(*ast.TypeAssertExpr); ok {
				operand = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := st.X.(*ast.TypeAssertExpr); ok {
			operand = ta.X
		}
	}
	if operand == nil {
		return false
	}
	tv, ok := pass.Info.Types[operand]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, iface) || types.Identical(tv.Type.Underlying(), iface)
}

// collectCases records the named types matched by the switch's cases.
func collectCases(pass *analysis.Pass, sw *ast.TypeSwitchStmt, handled map[types.Type]bool) {
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil {
				handled[deref(tv.Type)] = true
			}
		}
	}
}

// deref maps *T to T so pointer and value cases count the same.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// hasDefault reports whether the switch has a default clause.
func hasDefault(sw *ast.TypeSwitchStmt) bool {
	for _, stmt := range sw.Body.List {
		if cc, ok := stmt.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// isTestDecl reports whether the type is declared in a _test.go file.
func isTestDecl(pass *analysis.Pass, tn *types.TypeName) bool {
	pos := pass.Fset.Position(tn.Pos())
	return hasSuffix(pos.Filename, "_test.go")
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
