package handlercomplete_test

import (
	"testing"

	"predis/tools/analyzers/analysis"
	"predis/tools/analyzers/handlercomplete"
)

func TestHandlercompleteFixture(t *testing.T) {
	analysis.RunFixture(t, "../testdata",
		[]*analysis.Analyzer{handlercomplete.Analyzer}, "./handlercomplete/...")
}
