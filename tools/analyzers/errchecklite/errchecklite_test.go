package errchecklite_test

import (
	"testing"

	"predis/tools/analyzers/analysis"
	"predis/tools/analyzers/errchecklite"
)

func TestErrcheckliteFixture(t *testing.T) {
	analysis.RunFixture(t, "../testdata",
		[]*analysis.Analyzer{errchecklite.Analyzer}, "./errchecklite")
}
