// Package errchecklite is a narrow dropped-error check for the I/O paths
// where a silently discarded error corrupts either the replayed ledger or
// the wire protocol: calls into predis/internal/wire,
// predis/internal/rtnet, and predis/internal/ledger whose error result is
// dropped on the floor.
//
// "Lite" scoping keeps it signal-only:
//   - only bare expression statements (and go/defer statements) are
//     flagged; an explicit `_ = conn.Close()` documents intent and passes;
//   - only callees defined in the three audited packages count, so
//     fmt.Println and friends stay out of scope;
//   - _test.go files are exempt.
package errchecklite

import (
	"go/ast"
	"go/types"

	"predis/tools/analyzers/analysis"
)

// AuditedPackages are the import paths whose error results must not be
// dropped.
var AuditedPackages = map[string]bool{
	"predis/internal/wire":   true,
	"predis/internal/rtnet":  true,
	"predis/internal/ledger": true,
}

// Analyzer is the dropped-error check.
var Analyzer = &analysis.Analyzer{
	Name: "errchecklite",
	Doc: "forbid dropping errors returned by wire, rtnet, and ledger I/O " +
		"(assign to _ explicitly when discarding is intended)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Syntax {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDropped(pass, call)
				}
			case *ast.GoStmt:
				checkDropped(pass, n.Call)
			case *ast.DeferStmt:
				checkDropped(pass, n.Call)
			}
			return true
		})
	}
	return nil
}

func checkDropped(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call.Fun)
	if fn == nil || fn.Pkg() == nil || !AuditedPackages[fn.Pkg().Path()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	if res.Len() == 0 {
		return
	}
	last := res.At(res.Len() - 1).Type()
	if !isErrorType(last) {
		return
	}
	pass.Reportf(call.Pos(),
		"error returned by %s.%s is dropped; handle it or assign it to _ "+
			"explicitly", fn.Pkg().Name(), fn.Name())
}

func calleeFunc(pass *analysis.Pass, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.ParenExpr:
		return calleeFunc(pass, fun.X)
	}
	return nil
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}
