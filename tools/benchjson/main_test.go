package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: predis
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimnetSendDrain-4    	  100000	        73.21 ns/op	       0 B/op	       0 allocs/op
BenchmarkWireMarshal-4        	    5000	     15299 ns/op	1674.46 MB/s	   27288 B/op	       2 allocs/op
BenchmarkFig5WAN              	       1	123456789 ns/op	     21000 peak_fig5wan
some test log line
PASS
ok  	predis	1.234s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Pkg != "predis" {
		t.Fatalf("header: %+v", doc)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("cpu: %q", doc.CPU)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(doc.Results))
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkSimnetSendDrain" { // -4 suffix stripped
		t.Fatalf("name: %q", r.Name)
	}
	if r.Iterations != 100000 || r.NsPerOp != 73.21 {
		t.Fatalf("result 0: %+v", r)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Fatalf("allocs: %+v", r.AllocsPerOp)
	}
	m := doc.Results[1]
	if m.MBPerSec == nil || *m.MBPerSec != 1674.46 {
		t.Fatalf("mb/s: %+v", m)
	}
	if m.BytesPerOp == nil || *m.BytesPerOp != 27288 {
		t.Fatalf("B/op: %+v", m)
	}
	f := doc.Results[2]
	if f.Name != "BenchmarkFig5WAN" || f.Extra["peak_fig5wan"] != 21000 {
		t.Fatalf("custom metric: %+v", f)
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	doc, err := Parse(strings.NewReader("Benchmark this is not a result\nnothing here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("parsed garbage: %+v", doc.Results)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":         "BenchmarkX",
		"BenchmarkX":           "BenchmarkX",
		"BenchmarkSplit-Y":     "BenchmarkSplit-Y",
		"BenchmarkSplit-Y-16":  "BenchmarkSplit-Y",
		"BenchmarkTrailing-":   "BenchmarkTrailing-",
		"Benchmark-12abc":      "Benchmark-12abc",
		"BenchmarkNoSuffix-0x": "BenchmarkNoSuffix-0x",
	} {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
