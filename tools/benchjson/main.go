// Command benchjson converts `go test -bench` text output into a stable
// JSON document so kernel benchmark results can be committed and diffed
// (BENCH_kernels.json, emitted by `make bench`).
//
// Usage:
//
//	go test -bench=. -benchmem | go run ./tools/benchjson -o BENCH_kernels.json
//
// It parses the standard benchmark line format
//
//	BenchmarkName-8   1000   1234 ns/op   56.7 MB/s   128 B/op   2 allocs/op
//
// plus the goos/goarch/pkg/cpu header lines, and ignores everything
// else (PASS/ok lines, test logs). The output is deterministic for a
// given input: results appear in input order and no timestamps are
// recorded.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    *float64           `json:"mb_per_s,omitempty"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stderr))
}

func run(argv []string, in io.Reader, errw io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(errw)
	out := fs.String("o", "BENCH_kernels.json", "output JSON path (- for stdout)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	doc, err := Parse(in)
	if err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 1
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(errw, "benchjson: no benchmark lines found in input")
		return 1
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 1
	}
	return 0
}

// Parse reads `go test -bench` output and collects header context plus
// every benchmark result line.
func Parse(in io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	return doc, sc.Err()
}

// parseLine parses one benchmark result line; it reports false for
// lines that merely start with "Benchmark" (e.g. log output).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: trimProcSuffix(fields[0]), Iterations: iters}
	sawNs := false
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
		case "MB/s":
			mv := v
			r.MBPerSec = &mv
		case "B/op":
			bv := int64(v)
			r.BytesPerOp = &bv
		case "allocs/op":
			av := int64(v)
			r.AllocsPerOp = &av
		default:
			// Custom metrics from b.ReportMetric (e.g. peak_fig5wan).
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	if !sawNs {
		return Result{}, false
	}
	return r, true
}

// trimProcSuffix strips the -GOMAXPROCS suffix from a benchmark name so
// the JSON keys are stable across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
