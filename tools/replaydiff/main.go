// Command replaydiff is the cross-process determinism gate for the
// compute plane: it builds cmd/predis-bench with the race detector,
// runs the quickstart experiment in two separate processes — once fully
// inline (-workers 0) and once offloaded and point-parallel
// (-workers 4 -parallel 2) — and asserts that the delivery replay hash
// AND the entire terminal output (modulo the wall-clock timing line)
// are byte-identical. Any scheduling leakage from the worker pool into
// simulation results shows up here as a diff, in a different process
// than the one that produced the reference, with the race detector
// watching the pool the whole time.
//
// Usage: go run ./tools/replaydiff [experiment-id] [extra flags...]
//
// The default experiment is quickstart; any further arguments are passed
// to predis-bench verbatim in both runs, so e.g.
// `go run ./tools/replaydiff quickstart -mode stream` gates the
// streaming-commit schedule the same way.
//
// Exit status 0 means the two runs matched and at least one delivery
// was folded into the hash; anything else is a failure with the diff on
// stderr.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
)

// timingLine matches predis-bench's per-experiment wall-clock footer,
// the only legitimately nondeterministic line in its output.
var timingLine = regexp.MustCompile(`^\([a-z0-9]+ in [0-9.]+s\)$`)

// replayLine captures the "replay <id> <sha256> <n>" line emitted by
// predis-bench -replay.
var replayLine = regexp.MustCompile(`^replay ([a-z0-9]+) ([0-9a-f]{64}) ([0-9]+)$`)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "replaydiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	id := "quickstart"
	var extra []string
	if len(args) > 0 {
		id = args[0]
		extra = args[1:]
	}

	dir, err := os.MkdirTemp("", "replaydiff")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "predis-bench")

	build := exec.Command("go", "build", "-race", "-o", bin, "./cmd/predis-bench")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build -race predis-bench: %w", err)
	}

	runs := []struct {
		name string
		args []string
	}{
		{"workers=0", append([]string{"-quick", "-seed", "1", "-replay", "-workers", "0"}, append(extra, id)...)},
		{"workers=4,parallel=2", append([]string{"-quick", "-seed", "1", "-replay", "-workers", "4", "-parallel", "2"}, append(extra, id)...)},
	}
	outs := make([]string, len(runs))
	hashes := make([]string, len(runs))
	for i, r := range runs {
		cmd := exec.Command(bin, r.args...)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("%s %s: %w", id, r.name, err)
		}
		out, hash, n, err := scrub(string(raw))
		if err != nil {
			return fmt.Errorf("%s %s: %w", id, r.name, err)
		}
		fmt.Printf("replaydiff: %s %-22s hash=%s deliveries=%d\n", id, r.name, hash[:16], n)
		outs[i], hashes[i] = out, hash
	}

	if hashes[0] != hashes[1] {
		return fmt.Errorf("replay hash diverged: %s vs %s", hashes[0], hashes[1])
	}
	if outs[0] != outs[1] {
		fmt.Fprintln(os.Stderr, "--- terminal output diverged ---")
		diffLines(os.Stderr, outs[0], outs[1])
		return fmt.Errorf("terminal output diverged between %s and %s", runs[0].name, runs[1].name)
	}
	fmt.Printf("replaydiff: OK — %s is byte-identical across processes at %s and %s\n",
		id, runs[0].name, runs[1].name)
	return nil
}

// scrub drops the timing footer, extracts the replay line, and requires
// a non-zero delivery count (a hash over nothing proves nothing).
func scrub(raw string) (out, hash string, n uint64, err error) {
	var kept []string
	for _, line := range strings.Split(raw, "\n") {
		if timingLine.MatchString(line) {
			continue
		}
		if m := replayLine.FindStringSubmatch(line); m != nil {
			hash = m[2]
			fmt.Sscanf(m[3], "%d", &n)
		}
		kept = append(kept, line)
	}
	if hash == "" {
		return "", "", 0, fmt.Errorf("no replay line in output (is -replay supported for this experiment?)")
	}
	if n == 0 {
		return "", "", 0, fmt.Errorf("replay trace folded zero deliveries")
	}
	return strings.Join(kept, "\n"), hash, n, nil
}

// diffLines prints the first few differing lines of two outputs.
func diffLines(w *os.File, a, b string) {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	shown := 0
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			fmt.Fprintf(w, "line %d:\n  A: %s\n  B: %s\n", i+1, x, y)
			if shown++; shown >= 5 {
				fmt.Fprintln(w, "  ... (further diffs elided)")
				return
			}
		}
	}
}
