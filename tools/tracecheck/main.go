// Command tracecheck validates a Chrome trace-event JSON file emitted by
// predis-bench -trace: the file must parse, and every pipeline stage must
// have recorded at least one complete ("X") span event. It is the
// verifier behind `make trace-smoke`.
//
// Usage: tracecheck <trace.json>
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"predis/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		return 2
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		return 1
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s does not parse as Chrome trace JSON: %v\n", os.Args[1], err)
		return 1
	}
	if len(doc.TraceEvents) == 0 {
		fmt.Fprintf(os.Stderr, "tracecheck: %s contains no trace events\n", os.Args[1])
		return 1
	}
	spans := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" {
			spans[e.Name]++
		}
	}
	missing := 0
	required := 0
	for i, name := range obs.StageNames {
		if obs.Stage(i).Optional() {
			continue // streaming-only stages are absent from block-mode traces
		}
		required++
		if spans[name] == 0 {
			fmt.Fprintf(os.Stderr, "tracecheck: stage %q has no spans\n", name)
			missing++
		}
	}
	if missing > 0 {
		return 1
	}
	fmt.Printf("tracecheck: %s OK — %d events, all %d pipeline stages present (",
		os.Args[1], len(doc.TraceEvents), required)
	for i, name := range obs.StageNames {
		if obs.Stage(i).Optional() && spans[name] == 0 {
			continue
		}
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("%s=%d", name, spans[name])
	}
	fmt.Println(")")
	return 0
}
