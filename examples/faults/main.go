// Faults: two Byzantine scenarios from the paper, end to end.
//
// Scenario 1 — forking attack (§III-E): a malicious producer signs two
// conflicting bundles at the same height. The first honest node to see
// both multicasts the evidence and every honest node bans the producer;
// later bundles from it are rejected and leaders stop cutting its chain.
//
// Scenario 2 — silent leader (§III-D): the view-0 leader neither produces
// bundles nor proposes. Followers' bundle timers expire, a view change
// elects the next leader, and the system resumes committing.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"os"
	"time"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/node"
	"predis/internal/simnet"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

func main() {
	if err := forkingAttack(); err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
	fmt.Println()
	if err := silentLeader(); err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
}

// forkingAttack drives the core data structures directly: it forges an
// equivocation and shows detection, evidence verification, and banning.
func forkingAttack() error {
	fmt.Println("scenario 1: forking attack (conflicting bundles)")
	const nc, f = 4, 1
	suite := crypto.NewEd25519Suite(nc, 11)
	mp, err := core.NewMempool(core.Params{
		NC: nc, F: f, BundleSize: 10, Signer: suite.Signer(1),
	})
	if err != nil {
		return err
	}

	// The malicious producer (node 0) signs two different bundles that
	// both extend the genesis of its chain.
	mkTxs := func(base uint64) []*types.Transaction {
		out := make([]*types.Transaction, 3)
		for i := range out {
			out[i] = types.NewTransaction(99, base+uint64(i), 512, 0)
		}
		return out
	}
	tips := make(core.TipList, nc)
	tips[0] = 1
	a := core.PackBundle(suite.Signer(0), 0, nil, mkTxs(1), tips)
	b := core.PackBundle(suite.Signer(0), 0, nil, mkTxs(100), tips)

	if res, _, _, err := mp.AddBundle(a, true); err != nil || res != core.Added {
		return fmt.Errorf("first bundle: res=%v err=%v", res, err)
	}
	fmt.Printf("  honest node accepted bundle %s at height 1\n", a.Header.Hash().Short())

	res, evidence, _, err := mp.AddBundle(b, true)
	if err != nil || res != core.Conflicting {
		return fmt.Errorf("conflict not detected: res=%v err=%v", res, err)
	}
	fmt.Printf("  conflicting bundle %s detected → evidence built\n", b.Header.Hash().Short())
	if !evidence.Verify(suite.Signer(2)) {
		return fmt.Errorf("evidence failed verification at a third party")
	}
	fmt.Println("  any node can verify the evidence; producer 0 is banned")
	if !mp.Banned(0) {
		return fmt.Errorf("producer not banned")
	}
	next := core.PackBundle(suite.Signer(0), 0, &a.Header, mkTxs(200), tips)
	if _, _, _, err := mp.AddBundle(next, true); err == nil {
		return fmt.Errorf("banned producer's bundle accepted")
	}
	fmt.Println("  follow-up bundle from the banned producer rejected ✓")
	return nil
}

// silentLeader runs a live network whose first leader is silent.
func silentLeader() error {
	fmt.Println("scenario 2: silent leader → view change")
	const (
		nc       = 4
		f        = 1
		duration = 6 * time.Second
	)
	node.RegisterAllMessages()
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: 5,
	})
	suite := crypto.NewEd25519Suite(nc, 12)

	commits := make([]int, nc)
	nodes := make([]*node.Node, nc)
	for i := 0; i < nc; i++ {
		i := i
		fault := core.FaultNone
		if i == 0 {
			fault = core.FaultSilent // the view-0 leader says nothing
		}
		n, err := node.New(node.Config{
			Mode:           node.ModePredis,
			Engine:         node.EnginePBFT,
			NC:             nc,
			F:              f,
			Self:           wire.NodeID(i),
			Signer:         suite.Signer(i),
			BundleSize:     25,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    time.Second,
			Fault:          fault,
			ReplyToClients: true,
			OnCommit: func(height uint64, txs []*types.Transaction) {
				commits[i] += len(txs)
			},
		})
		if err != nil {
			return err
		}
		nodes[i] = n
		net.AddNode(wire.NodeID(i), n)
	}
	net.AddNode(300, workload.NewClient(workload.ClientConfig{
		Self:     300,
		Targets:  []wire.NodeID{1, 2, 3}, // honest nodes only
		Policy:   workload.RoundRobin,
		Rate:     300,
		TxSize:   types.DefaultTxSize,
		F:        f,
		Epoch:    simnet.Epoch,
		GenStart: simnet.Epoch.Add(50 * time.Millisecond),
		GenStop:  simnet.Epoch.Add(duration),
	}))

	fmt.Println("  node 0 leads view 0 but is silent; followers must replace it…")
	net.Start()
	net.Run(duration + time.Second)

	type viewer interface{ View() uint64 }
	v := nodes[1].Engine().(viewer).View()
	fmt.Printf("  node 1 is now in view %d (0 would mean no view change)\n", v)
	if v == 0 {
		return fmt.Errorf("no view change happened")
	}
	for i := 1; i < nc; i++ {
		fmt.Printf("  node %d committed %d txs\n", i, commits[i])
		if commits[i] == 0 {
			return fmt.Errorf("node %d made no progress after the view change", i)
		}
	}
	fmt.Println("  liveness restored under the next leader ✓")
	return nil
}
