// Faults: four failure scenarios from the paper, end to end.
//
// Scenario 1 — forking attack (§III-E): a malicious producer signs two
// conflicting bundles at the same height. The first honest node to see
// both multicasts the evidence and every honest node bans the producer;
// later bundles from it are rejected and leaders stop cutting its chain.
//
// Scenario 2 — silent leader (§III-D): the view-0 leader neither produces
// bundles nor proposes. Followers' bundle timers expire, a view change
// elects the next leader, and the system resumes committing.
//
// Scenario 3 — relayer crash (§IV-C/IV-F): a zone's relayer fail-stops
// under a declarative fault schedule. Heartbeats expire, the consensus
// distributors promote a replacement for the orphaned stripes, and when
// the crashed node restarts it re-runs the subscription bootstrap and
// catches up the blocks it missed. The example prints the timeline.
//
// Scenario 4 — corrupting relayer (§IV-B): the network forges every
// stripe a relayer sends during an attack window. Subscribers reject the
// stripes on Merkle-proof verification, refetch the damaged bundles from
// alternate holders, and quarantine the repeat offender behind a TTL
// blacklist; the zone keeps completing blocks throughout, and once the
// TTL lapses the (honest) node is re-admitted.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/faults"
	"predis/internal/multizone"
	"predis/internal/node"
	"predis/internal/simnet"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

func main() {
	if err := forkingAttack(); err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
	fmt.Println()
	if err := silentLeader(); err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
	fmt.Println()
	if err := relayerCrash(); err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
	fmt.Println()
	if err := corruptingRelayer(); err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
}

// forkingAttack drives the core data structures directly: it forges an
// equivocation and shows detection, evidence verification, and banning.
func forkingAttack() error {
	fmt.Println("scenario 1: forking attack (conflicting bundles)")
	const nc, f = 4, 1
	suite := crypto.NewEd25519Suite(nc, 11)
	mp, err := core.NewMempool(core.Params{
		NC: nc, F: f, BundleSize: 10, Signer: suite.Signer(1),
	})
	if err != nil {
		return err
	}

	// The malicious producer (node 0) signs two different bundles that
	// both extend the genesis of its chain.
	mkTxs := func(base uint64) []*types.Transaction {
		out := make([]*types.Transaction, 3)
		for i := range out {
			out[i] = types.NewTransaction(99, base+uint64(i), 512, 0)
		}
		return out
	}
	tips := make(core.TipList, nc)
	tips[0] = 1
	a := core.PackBundle(suite.Signer(0), 0, nil, mkTxs(1), tips)
	b := core.PackBundle(suite.Signer(0), 0, nil, mkTxs(100), tips)

	if res, _, _, err := mp.AddBundle(a, true); err != nil || res != core.Added {
		return fmt.Errorf("first bundle: res=%v err=%v", res, err)
	}
	fmt.Printf("  honest node accepted bundle %s at height 1\n", a.Header.Hash().Short())

	res, evidence, _, err := mp.AddBundle(b, true)
	if err != nil || res != core.Conflicting {
		return fmt.Errorf("conflict not detected: res=%v err=%v", res, err)
	}
	fmt.Printf("  conflicting bundle %s detected → evidence built\n", b.Header.Hash().Short())
	if !evidence.Verify(suite.Signer(2)) {
		return fmt.Errorf("evidence failed verification at a third party")
	}
	fmt.Println("  any node can verify the evidence; producer 0 is banned")
	if !mp.Banned(0) {
		return fmt.Errorf("producer not banned")
	}
	next := core.PackBundle(suite.Signer(0), 0, &a.Header, mkTxs(200), tips)
	if _, _, _, err := mp.AddBundle(next, true); err == nil {
		return fmt.Errorf("banned producer's bundle accepted")
	}
	fmt.Println("  follow-up bundle from the banned producer rejected ✓")
	return nil
}

// silentLeader runs a live network whose first leader is silent.
func silentLeader() error {
	fmt.Println("scenario 2: silent leader → view change")
	const (
		nc       = 4
		f        = 1
		duration = 6 * time.Second
	)
	node.RegisterAllMessages()
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: 5,
	})
	suite := crypto.NewEd25519Suite(nc, 12)

	commits := make([]int, nc)
	nodes := make([]*node.Node, nc)
	for i := 0; i < nc; i++ {
		i := i
		fault := core.FaultNone
		if i == 0 {
			fault = core.FaultSilent // the view-0 leader says nothing
		}
		n, err := node.New(node.Config{
			Mode:           node.ModePredis,
			Engine:         node.EnginePBFT,
			NC:             nc,
			F:              f,
			Self:           wire.NodeID(i),
			Signer:         suite.Signer(i),
			BundleSize:     25,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    time.Second,
			Fault:          fault,
			ReplyToClients: true,
			OnCommit: func(height uint64, txs []*types.Transaction) {
				commits[i] += len(txs)
			},
		})
		if err != nil {
			return err
		}
		nodes[i] = n
		net.AddNode(wire.NodeID(i), n)
	}
	net.AddNode(300, workload.NewClient(workload.ClientConfig{
		Self:     300,
		Targets:  []wire.NodeID{1, 2, 3}, // honest nodes only
		Policy:   workload.RoundRobin,
		Rate:     300,
		TxSize:   types.DefaultTxSize,
		F:        f,
		Epoch:    simnet.Epoch,
		GenStart: simnet.Epoch.Add(50 * time.Millisecond),
		GenStop:  simnet.Epoch.Add(duration),
	}))

	fmt.Println("  node 0 leads view 0 but is silent; followers must replace it…")
	net.Start()
	net.Run(duration + time.Second)

	type viewer interface{ View() uint64 }
	v := nodes[1].Engine().(viewer).View()
	fmt.Printf("  node 1 is now in view %d (0 would mean no view change)\n", v)
	if v == 0 {
		return fmt.Errorf("no view change happened")
	}
	for i := 1; i < nc; i++ {
		fmt.Printf("  node %d committed %d txs\n", i, commits[i])
		if commits[i] == 0 {
			return fmt.Errorf("node %d made no progress after the view change", i)
		}
	}
	fmt.Println("  liveness restored under the next leader ✓")
	return nil
}

// relayerCrash runs one Multi-Zone zone over a P-PBFT group, crashes the
// zone's first relayer through a scripted fault window, and narrates the
// recovery: heartbeat expiry, stripe re-election, re-subscription after
// restart, and chain catch-up.
func relayerCrash() error {
	fmt.Println("scenario 3: relayer crash → re-election → catch-up")
	const (
		nc, f    = 4, 1
		perZone  = 6
		rate     = 300.0
		duration = 12 * time.Second
	)
	crashAt, restartAt := 4*time.Second, 7*time.Second

	node.RegisterAllMessages()
	multizone.RegisterMessages()
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: 21,
	})
	suite := crypto.NewSimSuite(nc, 31)
	striper, err := multizone.NewStriper(nc, f)
	if err != nil {
		return err
	}
	for i := 0; i < nc; i++ {
		host, err := multizone.NewConsensusHost(multizone.HostConfig{
			NC: nc, F: f, Self: wire.NodeID(i),
			Signer:         suite.Signer(i),
			Engine:         node.EnginePBFT,
			BundleSize:     25,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    time.Second,
			Striper:        striper,
			ReplyToClients: true,
		})
		if err != nil {
			return err
		}
		net.AddNode(wire.NodeID(i), host)
	}
	fullID := func(k int) wire.NodeID { return wire.NodeID(100 + k) }
	fulls := make([]*multizone.FullNode, perZone)
	for k := 0; k < perZone; k++ {
		peers := make([]wire.NodeID, 0, perZone-1)
		for p := 0; p < perZone; p++ {
			if p != k {
				peers = append(peers, fullID(p))
			}
		}
		fn, err := multizone.NewFullNode(multizone.FullNodeConfig{
			Self: fullID(k), Zone: 0, JoinSeq: uint64(k),
			NC: nc, F: f,
			Striper:        striper,
			Signer:         suite.Signer(0),
			ZonePeers:      peers,
			AliveInterval:  200 * time.Millisecond,
			DigestInterval: time.Second,
		})
		if err != nil {
			return err
		}
		fulls[k] = fn
		net.AddNode(fullID(k), &multizone.Delayed{Inner: fn, Delay: time.Duration(k) * 20 * time.Millisecond})
	}
	victim := fullID(0) // first joiner: claims stripes, relays

	inj := faults.Install(net, faults.Schedule{Seed: 21, Actions: []faults.Action{
		faults.CrashWindow{Node: victim, From: crashAt, To: restartAt},
	}})

	targets := make([]wire.NodeID, nc)
	for i := range targets {
		targets[i] = wire.NodeID(i)
	}
	net.AddNode(400, workload.NewClient(workload.ClientConfig{
		Self: 400, Targets: targets, Policy: workload.RoundRobin,
		Rate: rate, TxSize: types.DefaultTxSize, F: f,
		Epoch:    simnet.Epoch,
		GenStart: simnet.Epoch.Add(300 * time.Millisecond),
		GenStop:  simnet.Epoch.Add(duration),
	}))

	// Timeline probe: every second, report who relays and where the
	// victim's chain head is relative to the zone.
	relayers := func() []wire.NodeID {
		var ids []wire.NodeID
		for _, fn := range fulls {
			if fn.IsRelayer() {
				ids = append(ids, fn.ID())
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}
	for s := 1; s <= int(duration/time.Second); s++ {
		at := time.Duration(s) * time.Second
		net.At(at, func() {
			var live uint64
			for _, fn := range fulls {
				if fn.ID() != victim && fn.LastHeight() > live {
					live = fn.LastHeight()
				}
			}
			v := fulls[0]
			state := "up"
			switch {
			case net.Crashed(victim):
				state = "CRASHED"
			case v.CatchingUp():
				state = "catching up"
			}
			fmt.Printf("  t=%2.0fs  relayers=%v  victim head=%3d (%s)  live head=%3d\n",
				at.Seconds(), relayers(), v.LastHeight(), state, live)
		})
	}

	fmt.Printf("  victim %d is the zone's first relayer; crash window [%v, %v)\n",
		victim, crashAt, restartAt)
	net.Start()
	net.Run(duration)

	fmt.Println("  fault schedule trace:")
	fmt.Print(indent(inj.TraceString(), "    "))

	var live uint64
	for _, fn := range fulls {
		if fn.ID() != victim && fn.LastHeight() > live {
			live = fn.LastHeight()
		}
	}
	v := fulls[0]
	if v.LastHeight()+3 < live {
		return fmt.Errorf("victim stuck at height %d, live head %d", v.LastHeight(), live)
	}
	if v.CatchingUp() {
		return fmt.Errorf("catch-up still in flight at end of run")
	}
	fmt.Printf("  restarted relayer back at head %d (live %d), relayer=%v ✓\n",
		v.LastHeight(), live, v.IsRelayer())
	return nil
}

// corruptingRelayer shows the Byzantine data-plane hardening (§IV-B):
// reject on verification, refetch from alternates, quarantine the
// offender, keep completing blocks.
func corruptingRelayer() error {
	fmt.Println("scenario 4: corrupting relayer → reject → refetch → quarantine")
	const (
		nc, f    = 4, 1
		perZone  = 6
		rate     = 300.0
		duration = 12 * time.Second
	)
	attackFrom, attackTo := 4*time.Second, 7*time.Second

	node.RegisterAllMessages()
	multizone.RegisterMessages()
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: 23,
	})
	suite := crypto.NewSimSuite(nc, 31)
	striper, err := multizone.NewStriper(nc, f)
	if err != nil {
		return err
	}
	for i := 0; i < nc; i++ {
		host, err := multizone.NewConsensusHost(multizone.HostConfig{
			NC: nc, F: f, Self: wire.NodeID(i),
			Signer:         suite.Signer(i),
			Engine:         node.EnginePBFT,
			BundleSize:     25,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    time.Second,
			Striper:        striper,
			ReplyToClients: true,
		})
		if err != nil {
			return err
		}
		net.AddNode(wire.NodeID(i), host)
	}
	fullID := func(k int) wire.NodeID { return wire.NodeID(100 + k) }
	fulls := make([]*multizone.FullNode, perZone)
	for k := 0; k < perZone; k++ {
		peers := make([]wire.NodeID, 0, perZone-1)
		for p := 0; p < perZone; p++ {
			if p != k {
				peers = append(peers, fullID(p))
			}
		}
		fn, err := multizone.NewFullNode(multizone.FullNodeConfig{
			Self: fullID(k), Zone: 0, JoinSeq: uint64(k),
			NC: nc, F: f,
			Striper:        striper,
			Signer:         suite.Signer(0),
			ZonePeers:      peers,
			AliveInterval:  200 * time.Millisecond,
			DigestInterval: time.Second,
		})
		if err != nil {
			return err
		}
		fulls[k] = fn
		net.AddNode(fullID(k), &multizone.Delayed{Inner: fn, Delay: time.Duration(k) * 20 * time.Millisecond})
	}
	evil := fullID(0) // first joiner: claims stripes, so its forgeries fan out widest

	inj := faults.Install(net, faults.Schedule{Seed: 23, Actions: []faults.Action{
		faults.CorruptStripe{Node: evil, From: attackFrom, To: attackTo},
	}})

	targets := make([]wire.NodeID, nc)
	for i := range targets {
		targets[i] = wire.NodeID(i)
	}
	net.AddNode(400, workload.NewClient(workload.ClientConfig{
		Self: 400, Targets: targets, Policy: workload.RoundRobin,
		Rate: rate, TxSize: types.DefaultTxSize, F: f,
		Epoch:    simnet.Epoch,
		GenStart: simnet.Epoch.Add(300 * time.Millisecond),
		GenStop:  simnet.Epoch.Add(duration),
	}))

	fmt.Printf("  node %d's outgoing stripes are forged during [%v, %v)\n",
		evil, attackFrom, attackTo)
	net.Start()
	net.Run(duration)

	fmt.Println("  fault schedule trace:")
	fmt.Print(indent(inj.TraceString(), "    "))

	var rejected, refetches, quarantines uint64
	for _, fn := range fulls {
		rj, rf, q, _ := fn.ByzStats()
		rejected += rj
		refetches += rf
		quarantines += q
	}
	if rejected == 0 || refetches == 0 || quarantines == 0 {
		return fmt.Errorf("attack went unpunished: rejected=%d refetches=%d quarantines=%d",
			rejected, refetches, quarantines)
	}
	var low, high uint64 = ^uint64(0), 0
	for _, fn := range fulls {
		h := fn.LastHeight()
		if h < low {
			low = h
		}
		if h > high {
			high = h
		}
	}
	fmt.Printf("  rejected=%d refetched=%d quarantined=%d; zone heads span [%d, %d] ✓\n",
		rejected, refetches, quarantines, low, high)
	return nil
}

// indent prefixes every line of s.
func indent(s, pre string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += pre + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += pre + s[start:] + "\n"
	}
	return out
}
