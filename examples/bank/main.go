// Bank: a payment ledger replicated with Predis-on-PBFT (P-PBFT). Each
// transaction encodes a transfer between accounts derived from its
// identity; every replica applies committed transfers to its own balance
// table, and the program verifies at the end that all four replicas
// computed identical balances — the state-machine-replication guarantee
// built on Theorem 3.3 (identical candidate blocks).
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"os"
	"time"

	"predis/internal/crypto"
	"predis/internal/node"
	"predis/internal/simnet"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

const accounts = 16

// ledger is one replica's application state.
type ledger struct {
	balances [accounts]int64
	applied  int
}

// apply executes one transaction as a transfer: the payer, payee, and
// amount are derived deterministically from the transaction identity, so
// every replica computes the same transition without any payload parsing.
func (l *ledger) apply(tx *types.Transaction) {
	h := tx.Hash()
	payer := int(h[0]) % accounts
	payee := int(h[1]) % accounts
	amount := int64(h[2]%9) + 1
	l.balances[payer] -= amount
	l.balances[payee] += amount
	l.applied++
}

// digest summarizes the balance table for cross-replica comparison.
func (l *ledger) digest() crypto.Hash {
	e := make([]byte, 0, accounts*8)
	for _, b := range l.balances {
		v := uint64(b)
		e = append(e, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return crypto.HashBytes(e)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bank:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		nc       = 4
		f        = 1
		duration = 3 * time.Second
	)
	node.RegisterAllMessages()
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: 7,
	})
	suite := crypto.NewEd25519Suite(nc, 99)

	ledgers := make([]*ledger, nc)
	for i := 0; i < nc; i++ {
		i := i
		ledgers[i] = &ledger{}
		n, err := node.New(node.Config{
			Mode:           node.ModePredis,
			Engine:         node.EnginePBFT,
			NC:             nc,
			F:              f,
			Self:           wire.NodeID(i),
			Signer:         suite.Signer(i),
			BundleSize:     50,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    time.Second,
			ReplyToClients: true,
			OnCommit: func(height uint64, txs []*types.Transaction) {
				for _, tx := range txs {
					ledgers[i].apply(tx)
				}
			},
		})
		if err != nil {
			return err
		}
		net.AddNode(wire.NodeID(i), n)
	}

	for k := 0; k < 2; k++ {
		net.AddNode(wire.NodeID(200+k), workload.NewClient(workload.ClientConfig{
			Self:     wire.NodeID(200 + k),
			Targets:  []wire.NodeID{0, 1, 2, 3},
			Policy:   workload.RoundRobin,
			Rate:     400,
			TxSize:   types.DefaultTxSize,
			F:        f,
			Epoch:    simnet.Epoch,
			GenStart: simnet.Epoch.Add(50 * time.Millisecond),
			GenStop:  simnet.Epoch.Add(duration),
		}))
	}

	fmt.Println("bank: replicating transfers over P-PBFT…")
	net.Start()
	net.Run(duration + 2*time.Second)

	ref := ledgers[0].digest()
	for i := 1; i < nc; i++ {
		if ledgers[i].applied != ledgers[0].applied {
			return fmt.Errorf("replica %d applied %d transfers, replica 0 applied %d",
				i, ledgers[i].applied, ledgers[0].applied)
		}
		if ledgers[i].digest() != ref {
			return fmt.Errorf("replica %d diverged from replica 0", i)
		}
	}
	fmt.Printf("all %d replicas applied %d transfers and agree (state digest %s)\n",
		nc, ledgers[0].applied, ref.Short())
	fmt.Println("sample balances at replica 0:")
	for a := 0; a < 4; a++ {
		fmt.Printf("  account %2d: %+d\n", a, ledgers[0].balances[a])
	}
	if ledgers[0].applied == 0 {
		return fmt.Errorf("nothing committed")
	}
	return nil
}
