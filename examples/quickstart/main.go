// Quickstart: a four-node Predis-on-HotStuff (P-HS) network running in the
// deterministic simulator. Clients offer 1,000 tx/s for three simulated
// seconds; the program prints committed blocks and the final
// throughput/latency summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"predis/internal/crypto"
	"predis/internal/node"
	"predis/internal/simnet"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		nc       = 4
		f        = 1
		duration = 3 * time.Second
	)
	node.RegisterAllMessages()

	// A 100 Mbps network with the paper's LAN emulation (25 ms links).
	net := simnet.New(simnet.Config{
		Uplink:   simnet.Mbps100,
		Downlink: simnet.Mbps100,
		Latency:  simnet.LANLatency(),
		Seed:     1,
	})
	collector := workload.NewCollector(simnet.Epoch, simnet.Epoch.Add(duration))

	// Real ed25519 keys: the examples run the production crypto path.
	suite := crypto.NewEd25519Suite(nc, 2024)
	for i := 0; i < nc; i++ {
		i := i
		n, err := node.New(node.Config{
			Mode:           node.ModePredis,
			Engine:         node.EngineHotStuff,
			NC:             nc,
			F:              f,
			Self:           wire.NodeID(i),
			Signer:         suite.Signer(i),
			BundleSize:     50,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    time.Second,
			ReplyToClients: true,
			OnCommit: func(height uint64, txs []*types.Transaction) {
				if i == 0 { // one replica narrates
					fmt.Printf("  block %-3d committed with %3d txs at t=%v\n",
						height, len(txs), net.Elapsed().Round(time.Millisecond))
					collector.RecordNodeCommit(net.Now(), len(txs))
				}
			},
		})
		if err != nil {
			return err
		}
		net.AddNode(wire.NodeID(i), n)
	}

	client := workload.NewClient(workload.ClientConfig{
		Self:      wire.NodeID(100),
		Targets:   []wire.NodeID{0, 1, 2, 3},
		Policy:    workload.RoundRobin,
		Rate:      1000,
		TxSize:    types.DefaultTxSize,
		F:         f,
		Epoch:     simnet.Epoch,
		GenStart:  simnet.Epoch.Add(50 * time.Millisecond),
		GenStop:   simnet.Epoch.Add(duration),
		Collector: collector,
	})
	net.AddNode(100, client)

	fmt.Println("quickstart: 4-node P-HS, 1000 tx/s offered for 3s (simulated)")
	net.Start()
	net.Run(duration + time.Second) // drain in-flight work

	sub, confirmed, committed, blocks := collector.Counts()
	lat := collector.Latency()
	fmt.Printf("\nsubmitted=%d confirmed=%d committed=%d blocks=%d\n",
		sub, confirmed, committed, blocks)
	fmt.Printf("throughput=%.0f tx/s  latency: mean=%v p50=%v p99=%v\n",
		collector.Throughput(), lat.Mean.Round(time.Millisecond),
		lat.P50.Round(time.Millisecond), lat.P99.Round(time.Millisecond))
	if confirmed == 0 {
		return fmt.Errorf("no transactions confirmed")
	}
	return nil
}
