// Multizone: a two-zone Multi-Zone network over P-PBFT. Full nodes join
// one by one, run the subscription protocol (Algorithm 1), elect relayers,
// exchange erasure-coded stripes, and reconstruct every committed block
// from the tiny Predis block plus their local bundle chains. The program
// prints the relayer topology that emerged and each zone's block
// completion progress.
//
//	go run ./examples/multizone
package main

import (
	"fmt"
	"os"
	"time"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/multizone"
	"predis/internal/node"
	"predis/internal/simnet"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multizone:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		nc       = 4
		f        = 1
		zones    = 2
		perZone  = 5
		duration = 6 * time.Second
	)
	node.RegisterAllMessages()
	multizone.RegisterMessages()

	striper, err := multizone.NewStriper(nc, f)
	if err != nil {
		return err
	}
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: 3,
	})
	suite := crypto.NewEd25519Suite(nc, 55)

	var committed int
	for i := 0; i < nc; i++ {
		i := i
		host, err := multizone.NewConsensusHost(multizone.HostConfig{
			NC: nc, F: f, Self: wire.NodeID(i),
			Signer:         suite.Signer(i),
			Engine:         node.EnginePBFT,
			BundleSize:     50,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    time.Second,
			Striper:        striper,
			OnCommit: func(height uint64, txs int) {
				if i == 0 {
					committed += txs
				}
			},
		})
		if err != nil {
			return err
		}
		net.AddNode(wire.NodeID(i), host)
	}

	// Full nodes: zone z gets IDs 100+z*100+k; they join 80 ms apart.
	fullID := func(z, k int) wire.NodeID { return wire.NodeID(100 + z*100 + k) }
	fulls := make(map[wire.NodeID]*multizone.FullNode)
	for z := 0; z < zones; z++ {
		var zonePeers []wire.NodeID
		for k := 0; k < perZone; k++ {
			zonePeers = append(zonePeers, fullID(z, k))
		}
		for k := 0; k < perZone; k++ {
			self := fullID(z, k)
			peers := make([]wire.NodeID, 0, perZone-1)
			for _, p := range zonePeers {
				if p != self {
					peers = append(peers, p)
				}
			}
			fn, err := multizone.NewFullNode(multizone.FullNodeConfig{
				Self: self, Zone: z, JoinSeq: uint64(z*perZone + k),
				NC: nc, F: f,
				Striper:        striper,
				Signer:         suite.Signer(0),
				ZonePeers:      peers,
				BackupPeers:    []wire.NodeID{fullID((z+1)%zones, k)},
				AliveInterval:  250 * time.Millisecond,
				DigestInterval: time.Second,
				OnBlockComplete: func(blk *core.PredisBlock, txs int) {
					if self == fullID(z, perZone-1) { // last joiner narrates
						fmt.Printf("  zone %d ordinary node %d rebuilt block %d (%d txs) at t=%v\n",
							z, self, blk.Height, txs, net.Elapsed().Round(10*time.Millisecond))
					}
				},
			})
			if err != nil {
				return err
			}
			fulls[self] = fn
			delay := time.Duration(z*perZone+k) * 80 * time.Millisecond
			net.AddNode(self, &multizone.Delayed{Inner: fn, Delay: delay})
		}
	}

	net.AddNode(900, workload.NewClient(workload.ClientConfig{
		Self:     900,
		Targets:  []wire.NodeID{0, 1, 2, 3},
		Policy:   workload.RoundRobin,
		Rate:     600,
		TxSize:   types.DefaultTxSize,
		F:        f,
		Epoch:    simnet.Epoch,
		GenStart: simnet.Epoch.Add(time.Duration(zones*perZone)*80*time.Millisecond + 100*time.Millisecond),
		GenStop:  simnet.Epoch.Add(duration),
	}))

	fmt.Printf("multizone: %d zones × %d full nodes over %d consensus nodes\n", zones, perZone, nc)
	net.Start()
	net.Run(duration + 2*time.Second)

	fmt.Printf("\nconsensus committed %d txs; relayer topology that emerged:\n", committed)
	for z := 0; z < zones; z++ {
		fmt.Printf("  zone %d:\n", z)
		for k := 0; k < perZone; k++ {
			fn := fulls[fullID(z, k)]
			stripes, bundles, blocks := fn.Stats()
			role := "ordinary"
			if fn.IsRelayer() {
				role = fmt.Sprintf("relayer%v", fn.RelayedStripes())
			}
			fmt.Printf("    node %-3d %-12s stripes=%-5d bundles=%-4d blocks=%d\n",
				fullID(z, k), role, stripes, bundles, blocks)
			if blocks == 0 {
				return fmt.Errorf("node %d completed no blocks", fullID(z, k))
			}
		}
	}
	return nil
}
