// Kernel micro-benchmarks for the hot paths on the simulator's profile:
// event scheduling and delivery (simnet), message framing (wire),
// Reed–Solomon striping (erasure), Merkle tree construction, and
// signature checking. `make bench` runs these and converts the output to
// BENCH_kernels.json via tools/benchjson so kernel regressions are
// tracked alongside the figure-level benchmarks in bench_test.go.
//
// Sizes follow the paper's configuration: 512-byte transactions
// (§V "every transaction has a size of 512 B"), 50-tx bundles, and the
// largest consensus group in the sweeps (n_c = 25, f = 3) for the
// erasure kernels.
package predis

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/erasure"
	"predis/internal/merkle"
	"predis/internal/simnet"
	"predis/internal/types"
	"predis/internal/wire"
)

// benchBlob is a minimal registered message carrying an opaque payload,
// sized like a sealed 50-tx bundle. It keeps the kernel benchmarks
// self-contained: codec and simulator costs are measured without
// dragging protocol state machines into the loop.
type benchBlob struct {
	Seq     uint64
	Payload []byte
}

const benchBlobType = wire.TypeRangeTest + 0x40

func (m *benchBlob) Type() wire.Type { return benchBlobType }
func (m *benchBlob) WireSize() int {
	return wire.FrameOverhead + 8 + 4 + len(m.Payload)
}
func (m *benchBlob) EncodeBody(e *wire.Encoder) {
	e.U64(m.Seq)
	e.VarBytes(m.Payload)
}

func decodeBenchBlob(d *wire.Decoder) (wire.Message, error) {
	m := &benchBlob{}
	m.Seq = d.U64()
	m.Payload = d.VarBytes()
	return m, d.Err()
}

var benchRegisterOnce sync.Once

func registerBenchBlob() {
	benchRegisterOnce.Do(func() {
		wire.Register(benchBlobType, "bench.blob", decodeBenchBlob)
	})
}

func benchPayload(n int) []byte {
	p := make([]byte, n)
	rng := rand.New(rand.NewSource(42))
	rng.Read(p)
	return p
}

const bundleBytes = 50 * types.DefaultTxSize // one sealed bundle

// BenchmarkSimnetSendDrain measures one Send plus the full event-queue
// cycle behind it (schedule, 4-ary heap push/pop, NIC serialization
// bookkeeping, delivery dispatch, event recycle). Steady state is
// allocation-free; the benchmark's allocs/op pins that.
func BenchmarkSimnetSendDrain(b *testing.B) {
	registerBenchBlob()
	n := simnet.New(simnet.Config{
		Uplink:   simnet.Mbps100,
		Downlink: simnet.Mbps100,
		Latency:  simnet.UniformLatency(time.Millisecond),
	})
	var sctx env.Context
	received := 0
	n.AddNode(0, &env.HandlerFunc{OnStart: func(ctx env.Context) { sctx = ctx }})
	n.AddNode(1, &env.HandlerFunc{OnReceive: func(from wire.NodeID, m wire.Message) { received++ }})
	n.Start()
	msg := &benchBlob{Seq: 1, Payload: benchPayload(bundleBytes)}
	// Warm-up: grow the heap slice, free list, and link-byte map.
	for i := 0; i < 64; i++ {
		sctx.Send(1, msg)
		n.RunUntilIdle(0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sctx.Send(1, msg)
		n.RunUntilIdle(0)
	}
	if received == 0 {
		b.Fatal("no deliveries")
	}
}

// BenchmarkSimnetTimerChurn measures arming and firing one timer through
// the event queue — the other high-frequency scheduling path (bundle
// intervals, view timeouts, alive probes).
func BenchmarkSimnetTimerChurn(b *testing.B) {
	n := simnet.New(simnet.Config{})
	fired := 0
	fn := func() { fired++ }
	for i := 0; i < 64; i++ {
		n.At(n.Elapsed()+time.Microsecond, fn)
		n.RunUntilIdle(0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.At(n.Elapsed()+time.Microsecond, fn)
		n.RunUntilIdle(0)
	}
	if fired == 0 {
		b.Fatal("timer never fired")
	}
}

// BenchmarkWireMarshal frames a bundle-sized message.
func BenchmarkWireMarshal(b *testing.B) {
	registerBenchBlob()
	msg := &benchBlob{Seq: 7, Payload: benchPayload(bundleBytes)}
	b.SetBytes(int64(msg.WireSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := wire.Marshal(msg)
		if len(frame) != msg.WireSize() {
			b.Fatal("frame size mismatch")
		}
	}
}

// BenchmarkWireUnmarshal decodes the same frame back.
func BenchmarkWireUnmarshal(b *testing.B) {
	registerBenchBlob()
	msg := &benchBlob{Seq: 7, Payload: benchPayload(bundleBytes)}
	frame := wire.Marshal(msg)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, n, err := wire.Unmarshal(frame)
		if err != nil || n != len(frame) || out == nil {
			b.Fatalf("unmarshal: %v", err)
		}
	}
}

// BenchmarkWireRoundtrip is the simulator's copy-on-deliver path
// (marshal into pooled scratch, decode with copying).
func BenchmarkWireRoundtrip(b *testing.B) {
	registerBenchBlob()
	msg := &benchBlob{Seq: 7, Payload: benchPayload(bundleBytes)}
	b.SetBytes(int64(msg.WireSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Roundtrip(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkErasureEncode stripes one bundle at the paper's largest sweep
// point: n_c = 25, f = 3 → (22, 3) Reed–Solomon.
func BenchmarkErasureEncode(b *testing.B) {
	c, err := erasure.New(22, 3)
	if err != nil {
		b.Fatal(err)
	}
	payload := benchPayload(bundleBytes)
	shards := c.Split(payload)
	b.SetBytes(bundleBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkErasureReconstruct recovers f lost shards from the survivors,
// hitting the memoized decode matrix after the first iteration — the
// steady state Multi-Zone sees when the same relayer subset keeps
// answering.
func BenchmarkErasureReconstruct(b *testing.B) {
	c, err := erasure.New(22, 3)
	if err != nil {
		b.Fatal(err)
	}
	payload := benchPayload(bundleBytes)
	full := c.Split(payload)
	if err := c.Encode(full); err != nil {
		b.Fatal(err)
	}
	work := make([][]byte, len(full))
	b.SetBytes(bundleBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, full)
		work[0], work[5], work[23] = nil, nil, nil // two data + one parity
		if err := c.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerkleRoot50 builds the transaction-list Merkle root of one
// 50-tx bundle, the per-bundle hashing cost on the sealing path.
func BenchmarkMerkleRoot50(b *testing.B) {
	leaves := make([][]byte, 50)
	for i := range leaves {
		leaves[i] = benchPayload(types.DefaultTxSize)
	}
	b.SetBytes(bundleBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if merkle.Root(leaves).IsZero() {
			b.Fatal("zero root")
		}
	}
}

// BenchmarkEd25519SignVerify measures one real signature issue+check,
// the unit cost behind full-crypto (non-Sim) deployments.
func BenchmarkEd25519SignVerify(b *testing.B) {
	s := crypto.NewEd25519Suite(4, 1).Signer(0)
	h := crypto.HashBytes([]byte("bench digest"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := s.Sign(h)
		if !s.Verify(0, h, sig) {
			b.Fatal("verify failed")
		}
	}
}

// BenchmarkHashConcatShort measures the Merkle node combiner's digest
// path (two 32-byte children plus domain prefix — the stack-buffer fast
// path in crypto.HashConcat).
func BenchmarkHashConcatShort(b *testing.B) {
	l := crypto.HashBytes([]byte("left"))
	r := crypto.HashBytes([]byte("right"))
	prefix := []byte{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if crypto.HashConcat(prefix, l[:], r[:]).IsZero() {
			b.Fatal("zero digest")
		}
	}
}
