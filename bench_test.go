// Package predis's root test file hosts the benchmark harness required by
// the reproduction: one testing.B benchmark per figure in the paper's
// evaluation (§V). Each benchmark regenerates its figure's series through
// internal/harness in quick mode and prints the tables, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation at laptop scale. cmd/predis-bench runs
// the same experiments at full scale.
package predis

import (
	"testing"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/harness"
	"predis/internal/microblock"
	"predis/internal/stats"
)

// runExperiment executes one registered experiment in quick mode and logs
// its tables.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := harness.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(harness.Options{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Logf("\n%s", t.Render())
			}
			reportHeadline(b, id, tables)
		}
	}
}

// reportHeadline extracts one scalar per figure as a benchmark metric so
// regressions show up in plain benchstat output.
func reportHeadline(b *testing.B, id string, tables []*stats.Table) {
	if len(tables) == 0 || len(tables[0].Series) == 0 {
		return
	}
	best := 0.0
	for _, s := range tables[0].Series {
		for _, p := range s.Points {
			if p.Y > best {
				best = p.Y
			}
		}
	}
	b.ReportMetric(best, "peak_"+id)
}

// BenchmarkFig4aPBFTBundleBatch regenerates Fig. 4(a): PBFT vs P-PBFT
// throughput-latency with bundle/batch size variants (WAN, nc = 4).
func BenchmarkFig4aPBFTBundleBatch(b *testing.B) { runExperiment(b, "fig4a") }

// BenchmarkFig4bHotStuffBundleBatch regenerates Fig. 4(b): HotStuff vs
// P-HS with bundle/batch size variants.
func BenchmarkFig4bHotStuffBundleBatch(b *testing.B) { runExperiment(b, "fig4b") }

// BenchmarkFig4cPBFTScalability regenerates Fig. 4(c): PBFT vs P-PBFT
// saturated throughput at nc ∈ {4, 8, 16}.
func BenchmarkFig4cPBFTScalability(b *testing.B) { runExperiment(b, "fig4c") }

// BenchmarkFig4dHotStuffScalability regenerates Fig. 4(d): HotStuff vs
// P-HS saturated throughput at nc ∈ {4, 8, 16}.
func BenchmarkFig4dHotStuffScalability(b *testing.B) { runExperiment(b, "fig4d") }

// BenchmarkFig5WAN regenerates Fig. 5(a,b): Predis vs Narwhal vs Stratus
// in the WAN environment.
func BenchmarkFig5WAN(b *testing.B) { runExperiment(b, "fig5wan") }

// BenchmarkFig5LAN regenerates Fig. 5(c,d): the same comparison in the
// emulated LAN.
func BenchmarkFig5LAN(b *testing.B) { runExperiment(b, "fig5lan") }

// BenchmarkFig6Faults regenerates Fig. 6: Predis throughput/latency with
// silent and partial-sender Byzantine nodes at nc = 8.
func BenchmarkFig6Faults(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7Throughput regenerates Fig. 7: consensus throughput under
// star vs Multi-Zone distribution as full nodes grow.
func BenchmarkFig7Throughput(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Propagation regenerates Fig. 8: block propagation latency
// for star, random(FEG), and Multi-Zone topologies across block sizes.
func BenchmarkFig8Propagation(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkProposalSize quantifies the §III-F / §V-A block-size claim:
// a Predis block stays Θ(n_c) while id-list proposals grow linearly. The
// reported metrics are the proposal bytes at n_c = 80 mapping 50,000
// transactions (paper: ≤2.5 KB vs ~30 KB).
func BenchmarkProposalSize(b *testing.B) {
	const nc = 80
	cuts := make([]core.Cut, nc)
	for i := range cuts {
		// 50,000 txs / 50 per bundle / 80 chains ≈ 13 bundles per chain.
		cuts[i] = core.Cut{Height: 13, Head: crypto.HashBytes([]byte{byte(i)})}
	}
	blk := &core.PredisBlock{Height: 1, Cuts: cuts, Sig: make([]byte, crypto.SignatureSize)}

	ids := make([]crypto.Hash, 1000) // both systems' default id cap
	for i := range ids {
		ids[i] = crypto.HashBytes([]byte{byte(i), byte(i >> 8)})
	}
	idList := &microblock.IDList{Height: 1, IDs: ids}

	var predisSize, idListSize int
	for i := 0; i < b.N; i++ {
		predisSize = blk.WireSize()
		idListSize = idList.WireSize()
	}
	b.ReportMetric(float64(predisSize), "predis_block_B")
	b.ReportMetric(float64(idListSize), "idlist_B")
	if predisSize >= idListSize {
		b.Fatalf("Predis block (%d B) should be far below the id list (%d B)", predisSize, idListSize)
	}
}

// BenchmarkAblationCertificates isolates the paper's key design choice:
// replacing certificate collection (RBC/PAB) with chained tip lists.
// It measures P-HS (no certificates) against Narwhal-style RBC and
// Stratus-style PAB on the identical engine and network, reporting mean
// client latency for each.
func BenchmarkAblationCertificates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		type variant struct {
			name string
			sys  harness.System
		}
		for _, v := range []variant{
			{"predis_tiplist_ms", harness.SysPHS},
			{"narwhal_rbc_ms", harness.SysNarwhal},
			{"stratus_pab_ms", harness.SysStratus},
		} {
			res, err := harness.RunPoint(harness.PointSpec{
				System:   v.sys,
				NC:       4,
				Offered:  4000,
				Duration: 3e9, // 3s
				Seed:     int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(res.Latency.Mean)/1e6, v.name)
			}
		}
	}
}
