// End-to-end wall-clock benchmarks over whole experiments, complementing
// the kernel micro-benchmarks in bench_kernels_test.go: the perf
// trajectory of this repository is tracked at both granularities.
//
// Each experiment runs at compute-pool worker counts 0 (inline
// reference), 1, and 4, so BENCH_e2e.json (emitted by `make bench-e2e`
// via tools/benchjson) records the compute plane's wall-clock effect
// alongside the per-op numbers. Results and replay hashes are identical
// for every worker count — only wall-clock may differ — so the ratio
// between the workers=0 and workers=4 rows of the same experiment *is*
// the offload speedup. The "cpus" metric records how much hardware
// parallelism was available: on a single-CPU host the best possible
// ratio is parity (the pool cannot beat physics), and the recorded
// numbers are only meaningful relative to it.
package predis

import (
	"fmt"
	"runtime"
	"testing"

	"predis/internal/compute"
	"predis/internal/harness"
)

// benchE2E runs one whole experiment per iteration on a pool with the
// given worker count.
func benchE2E(b *testing.B, id string, workers int) {
	b.Helper()
	e, err := harness.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	pool := compute.NewPool(workers)
	defer pool.Close()
	opts := harness.Options{Quick: true, Seed: 1, Compute: pool}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

// e2eWorkerCounts are the pool sizes every end-to-end benchmark sweeps.
var e2eWorkerCounts = []int{0, 1, 4}

// BenchmarkE2EQuickstartQuick times the full quickstart pipeline
// (P-PBFT consensus + Multi-Zone distribution) in quick mode.
func BenchmarkE2EQuickstartQuick(b *testing.B) {
	for _, w := range e2eWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchE2E(b, "quickstart", w)
		})
	}
}

// BenchmarkE2EFig8Quick times the Fig. 8 experiment (Multi-Zone vs
// star vs random topologies under sweeping full-node counts) in quick
// mode — the most stripe-/erasure-heavy experiment in the registry.
func BenchmarkE2EFig8Quick(b *testing.B) {
	for _, w := range e2eWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchE2E(b, "fig8", w)
		})
	}
}
