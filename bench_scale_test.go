package predis_test

// Scale benchmarks: how much does one simulated second of a large-population
// deployment cost in wall-clock time and allocations?
//
// BenchmarkScaleNaive1k is the pre-aggregation shape: one workload.Client
// per logical client (a timer per client per tick, a pending map per
// client) and star fan-out from per-source copies of the attached-node
// list. BenchmarkScaleFlow1k/10k drive the same offered load through one
// aggregated Poisson flow per thousands of logical clients and a shared
// child-index multicast tree. The allocs/op ratio between the two 1k rows
// is the headline tracked in BENCH_scale.json (make bench-scale).

import (
	"testing"
	"time"

	"predis/internal/simnet"
	"predis/internal/topology"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"

	"predis/internal/env"
)

// countingRoot absorbs submitted transactions and counts them; it stands in
// for the consensus core so the benchmark measures population cost, not
// consensus cost.
type countingRoot struct {
	txs uint64
}

func (r *countingRoot) Start(ctx env.Context) {}

func (r *countingRoot) Receive(from wire.NodeID, m wire.Message) {
	switch m.(type) {
	case *types.SubmitTx:
		r.txs++
	default:
	}
}

// runScaleNaive simulates one virtual second of a 1000-node population the
// pre-aggregation way: 1000 star sinks fanned out to from 4 sources, and
// 1000 individual clients each running its own tick timer.
func runScaleNaive(b *testing.B, nodes, clients int) {
	topology.RegisterMessages()
	types.RegisterMessages()
	const sources = 4
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.UniformLatency(2 * time.Millisecond),
		Seed:    1,
	})
	root := &countingRoot{}
	net.AddNode(0, root)

	attached := make([][]wire.NodeID, sources)
	for i := 0; i < nodes; i++ {
		id := wire.NodeID(100 + i)
		attached[i%sources] = append(attached[i%sources], id)
		net.AddNode(id, topology.NewSink(nil))
	}
	srcs := make([]*topology.StarSource, sources)
	for i := range srcs {
		srcs[i] = topology.NewStarSource(attached[i])
		net.AddNode(wire.NodeID(1+i), &starShell{src: srcs[i]})
	}

	end := simnet.Epoch.Add(time.Second)
	for k := 0; k < clients; k++ {
		cl := workload.NewClient(workload.ClientConfig{
			Self:     wire.NodeID(10000 + k),
			Targets:  []wire.NodeID{0},
			Policy:   workload.FirstOnly,
			Rate:     2, // 2 tx/s per logical client
			TxSize:   types.DefaultTxSize,
			Epoch:    simnet.Epoch,
			GenStart: simnet.Epoch,
			GenStop:  end,
		})
		net.AddNode(wire.NodeID(10000+k), cl)
	}
	net.Start()
	// One block published per 250ms of the simulated second.
	for blk := 1; blk <= 4; blk++ {
		for i, src := range srcs {
			src.Publish(uint64(blk), wire.NodeID(1+i), 64<<10)
		}
		net.Run(time.Duration(blk) * 250 * time.Millisecond)
	}
	net.RunUntilIdle(0)
	if root.txs == 0 {
		b.Fatal("no transactions reached the root")
	}
}

// starShell adapts a StarSource to env.Handler.
type starShell struct {
	src *topology.StarSource
}

func (s *starShell) Start(ctx env.Context)                    { s.src.Start(ctx) }
func (s *starShell) Receive(from wire.NodeID, m wire.Message) {}

func BenchmarkScaleNaive1k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runScaleNaive(b, 1000, 1000)
	}
}

// runScaleFlow simulates the same offered load the aggregated way: one
// workload.Flow standing in for all logical clients (one timer per tick
// total) and a shared-slice 8-ary multicast tree fanning the same four
// 64 KB blocks over the same population.
func runScaleFlow(b *testing.B, nodes, clients int) {
	topology.RegisterMessages()
	types.RegisterMessages()
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.UniformLatency(2 * time.Millisecond),
		Seed:    1,
	})
	order := make([]wire.NodeID, nodes+1)
	for i := range order {
		order[i] = wire.NodeID(i) // position 0 (id 0) is the root
	}
	tree := topology.NewTree(order, 8)
	root := &flowRoot{relay: topology.NewTreeRelay(tree, nil)}
	net.AddNode(order[0], root)
	for _, id := range order[1:] {
		net.AddNode(id, topology.NewTreeRelay(tree, nil))
	}

	end := simnet.Epoch.Add(time.Second)
	net.AddNode(wire.NodeID(1<<20), workload.NewFlow(workload.FlowConfig{
		Self:        wire.NodeID(1 << 20),
		FirstClient: wire.NodeID(1<<20 + 1),
		Clients:     clients,
		Targets:     order[:1],
		Policy:      workload.FirstOnly,
		Rate:        2 * float64(clients), // same aggregate 2 tx/s per logical client
		TxSize:      types.DefaultTxSize,
		Epoch:       simnet.Epoch,
		GenStart:    simnet.Epoch,
		GenStop:     end,
		Seed:        1,
	}))
	net.Start()
	for blk := 1; blk <= 4; blk++ {
		root.relay.Publish(uint64(blk), order[0], 64<<10)
		net.Run(time.Duration(blk) * 250 * time.Millisecond)
	}
	net.RunUntilIdle(0)
	if root.txs == 0 {
		b.Fatal("no transactions reached the root")
	}
}

// flowRoot is the tree root plus transaction sink.
type flowRoot struct {
	relay *topology.TreeRelay
	txs   uint64
}

func (r *flowRoot) Start(ctx env.Context) { r.relay.Start(ctx) }

func (r *flowRoot) Receive(from wire.NodeID, m wire.Message) {
	switch m.(type) {
	case *types.SubmitTx:
		r.txs++
	default:
		r.relay.Receive(from, m)
	}
}

func BenchmarkScaleFlow1k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runScaleFlow(b, 1000, 1000)
	}
}

func BenchmarkScaleFlow10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runScaleFlow(b, 10000, 10000)
	}
}
