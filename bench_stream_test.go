// Wall-clock benchmarks for streaming commit (bench_stream_test.go →
// BENCH_stream.json via `make bench-stream`), complementing the virtual-
// time latency contrast the latfloor experiment reports: these rows track
// what the streaming machinery itself costs the simulator host. Each
// point also reports the virtual-time confirmed-latency mean, so the
// committed JSON records the block-vs-stream latency cut alongside the
// wall-clock numbers it was paid for with.
package predis

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"predis/internal/compute"
	"predis/internal/harness"
)

// benchStreamPoint runs one P-PBFT measurement point per iteration —
// the latfloor LAN configuration at 2000 tx/s — in block or streaming
// mode on a pool with the given worker count.
func benchStreamPoint(b *testing.B, stream bool, workers int) {
	b.Helper()
	pool := compute.NewPool(workers)
	defer pool.Close()
	spec := harness.PointSpec{
		System:         harness.SysPPBFT,
		NC:             4,
		F:              1,
		Offered:        2000,
		Duration:       2 * time.Second,
		Seed:           1,
		BundleInterval: 50 * time.Millisecond,
		Compute:        pool,
	}
	if stream {
		spec.Stream = true
		spec.Pipeline = 16
	}
	var mean time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := harness.RunPoint(spec)
		if err != nil {
			b.Fatal(err)
		}
		mean = res.Latency.Mean
	}
	b.ReportMetric(float64(mean)/float64(time.Millisecond), "confirmed-mean-ms")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

// BenchmarkStreamPoint contrasts block and streaming commit on the same
// deployment: the mode dimension is the virtual-time latency cut, the
// workers dimension the compute-offload effect on wall-clock.
func BenchmarkStreamPoint(b *testing.B) {
	for _, mode := range []string{"block", "stream"} {
		for _, workers := range []int{0, 4} {
			b.Run(fmt.Sprintf("mode=%s/workers=%d", mode, workers), func(b *testing.B) {
				benchStreamPoint(b, mode == "stream", workers)
			})
		}
	}
}

// BenchmarkStreamLatfloor runs the whole quick latfloor grid per
// iteration — the experiment CI and quick_results.txt regenerate — so
// its wall-clock cost is tracked like the other experiment benchmarks.
func BenchmarkStreamLatfloor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.LatencyFloor(harness.Options{
			Quick: true, Seed: 1, Workers: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

// BenchmarkStreamQuickstart runs the streaming quickstart — the full
// Multi-Zone pipeline with speculative distribution and spec-buffer
// settlement — per iteration.
func BenchmarkStreamQuickstart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Quickstart(harness.Options{
			Quick: true, Seed: 1, Stream: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}
