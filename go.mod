module predis

go 1.22
