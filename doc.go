// Package predis is a from-scratch Go reproduction of "A Data Flow
// Framework with High Throughput and Low Latency for Permissioned
// Blockchains" (ICDCS 2023): the Predis data production strategy and the
// Multi-Zone data distribution topology, together with every substrate
// their evaluation depends on.
//
// The public surface of the repository is organized as follows.
//
// Protocol cores (deterministic state machines behind env.Context):
//
//   - internal/core — Predis: parallel bundle chains, tip lists, the
//     cutting rule, constant-size Predis blocks, ban lists, bundle fetch.
//   - internal/pbft, internal/hotstuff — the two leader-based BFT engines
//     the paper applies Predis to.
//   - internal/microblock — the Narwhal (RBC) and Stratus (PAB) shared
//     mempool baselines of Fig. 5.
//   - internal/multizone — zones, relayer election, erasure-coded stripe
//     dissemination, block reconstruction (Fig. 7/8).
//   - internal/topology, internal/gossip — the star and random/FEG
//     distribution baselines.
//
// Runtimes:
//
//   - internal/simnet — a deterministic discrete-event simulator with
//     per-NIC bandwidth serialization, latency matrices, and fault
//     injection; every figure is measured here.
//   - internal/rtnet — the same handlers over real TCP (cmd/predis-node).
//
// Substrates: internal/wire (binary codec with wire-size accounting),
// internal/crypto (ed25519 + simulation signers), internal/merkle,
// internal/erasure (Reed–Solomon over GF(2^8)), internal/types,
// internal/ledger (committed-block store).
//
// Measurement: internal/workload (open-loop clients, latency collection),
// internal/harness (one experiment per paper figure), internal/stats.
//
// The benchmarks in this package (bench_test.go) regenerate every figure
// of the paper's evaluation; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package predis
