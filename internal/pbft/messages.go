// Package pbft implements Practical Byzantine Fault Tolerance (Castro &
// Liskov, OSDI'99) as a leader-based consensus engine over the env runtime:
// pre-prepare / prepare / commit quorums, sequential proposals, and a view
// change protocol for leader replacement.
//
// It stands in for BFT-SMaRt in the paper's evaluation: BFT-SMaRt's
// Mod-SMaRt ordering core is PBFT-shaped (leader-driven three-phase commit
// with view synchronization), and the paper uses it purely as a block
// ordering substrate. The engine is content-agnostic: payloads come from a
// consensus.Application, which is either the baseline transaction-batch
// app (vanilla PBFT) or the Predis app (P-PBFT).
package pbft

import (
	"sync"

	"predis/internal/crypto"
	"predis/internal/wire"
)

// Message type tags.
const (
	TypePrePrepare    = wire.TypeRangePBFT + 1
	TypePrepare       = wire.TypeRangePBFT + 2
	TypeCommit        = wire.TypeRangePBFT + 3
	TypeViewChange    = wire.TypeRangePBFT + 4
	TypeNewView       = wire.TypeRangePBFT + 5
	TypeStatusRequest = wire.TypeRangePBFT + 6
	TypeStatusReply   = wire.TypeRangePBFT + 7
	TypeProposalProof = wire.TypeRangePBFT + 8
	TypeEvidence      = wire.TypeRangePBFT + 9
)

// voteKind distinguishes the digests signed in each phase so a prepare
// signature can never be replayed as a commit.
type voteKind byte

const (
	kindPrePrepare voteKind = 1
	kindPrepare    voteKind = 2
	kindCommit     voteKind = 3
	kindViewChange voteKind = 4
	kindNewView    voteKind = 5
	kindStatus     voteKind = 6
)

// voteDigest derives the signing digest for a phase vote.
func voteDigest(kind voteKind, view, seq uint64, d crypto.Hash) crypto.Hash {
	e := wire.NewEncoder(1 + 8 + 8 + 32)
	e.U8(byte(kind))
	e.U64(view)
	e.U64(seq)
	e.Bytes32(d)
	return crypto.HashBytes(e.Bytes())
}

// PrePrepare is the leader's proposal for (view, seq). The payload is a
// nested application message (a transaction batch or a Predis block).
type PrePrepare struct {
	View    uint64
	Seq     uint64
	Digest  crypto.Hash
	Payload wire.Message
	Leader  wire.NodeID
	Sig     []byte

	// payloadEnc memoizes the marshaled Payload frame so proposing to n
	// replicas across three phases encodes the block once, not O(n) times
	// — and so WireSize stops re-walking the payload on every Send.
	payloadEnc wire.EncCache
}

var _ wire.Message = (*PrePrepare)(nil)

// Type implements wire.Message.
func (m *PrePrepare) Type() wire.Type { return TypePrePrepare }

// WireSize implements wire.Message.
func (m *PrePrepare) WireSize() int {
	return wire.FrameOverhead + 8 + 8 + 32 + 4 + 4 + m.payloadEnc.FrameSize(m.Payload) + wire.SizeVarBytes(m.Sig)
}

// EncodeBody implements wire.Message.
func (m *PrePrepare) EncodeBody(e *wire.Encoder) {
	e.U64(m.View)
	e.U64(m.Seq)
	e.Bytes32(m.Digest)
	e.Node(m.Leader)
	e.VarBytes(m.payloadEnc.Frame(m.Payload))
	e.VarBytes(m.Sig)
}

func decodePrePrepare(d *wire.Decoder) (wire.Message, error) {
	m := &PrePrepare{View: d.U64(), Seq: d.U64(), Digest: d.Bytes32(), Leader: d.Node()}
	raw := d.VarBytes()
	if err := d.Err(); err != nil {
		return nil, err
	}
	payload, _, err := wire.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	m.Payload = payload
	// The decoder copied raw out of the input, so the cache can own it:
	// a relayed or re-encoded pre-prepare reuses the received bytes.
	m.payloadEnc.Prime(raw)
	m.Sig = d.VarBytes()
	return m, d.Err()
}

// signDigest returns what the leader signs for a pre-prepare.
func (m *PrePrepare) signDigest() crypto.Hash {
	return voteDigest(kindPrePrepare, m.View, m.Seq, m.Digest)
}

// Equivocate implements the fault injector's Equivocator interface: it
// returns a conflicting pre-prepare for the same (view, seq) — a distinct
// digest derived from the original, correctly signed by signer, carrying
// the same payload. Victims accept it as authentic, but its digest can
// never validate against the application, and the two signed digests
// together are self-authenticating equivocation evidence.
func (m *PrePrepare) Equivocate(signer crypto.Signer) wire.Message {
	fork := &PrePrepare{
		View:    m.View,
		Seq:     m.Seq,
		Digest:  crypto.HashBytes(m.Digest[:]),
		Payload: m.Payload,
		Leader:  m.Leader,
	}
	fork.Sig = signer.Sign(fork.signDigest())
	return fork
}

// Prepare is a phase-2 vote.
type Prepare struct {
	View    uint64
	Seq     uint64
	Digest  crypto.Hash
	Replica wire.NodeID
	Sig     []byte
}

var _ wire.Message = (*Prepare)(nil)

// Type implements wire.Message.
func (m *Prepare) Type() wire.Type { return TypePrepare }

// WireSize implements wire.Message.
func (m *Prepare) WireSize() int {
	return wire.FrameOverhead + 8 + 8 + 32 + 4 + wire.SizeVarBytes(m.Sig)
}

// EncodeBody implements wire.Message.
func (m *Prepare) EncodeBody(e *wire.Encoder) {
	e.U64(m.View)
	e.U64(m.Seq)
	e.Bytes32(m.Digest)
	e.Node(m.Replica)
	e.VarBytes(m.Sig)
}

func decodePrepare(d *wire.Decoder) (wire.Message, error) {
	m := &Prepare{View: d.U64(), Seq: d.U64(), Digest: d.Bytes32(), Replica: d.Node(), Sig: d.VarBytes()}
	return m, d.Err()
}

func (m *Prepare) signDigest() crypto.Hash {
	return voteDigest(kindPrepare, m.View, m.Seq, m.Digest)
}

// Commit is a phase-3 vote.
type Commit struct {
	View    uint64
	Seq     uint64
	Digest  crypto.Hash
	Replica wire.NodeID
	Sig     []byte
}

var _ wire.Message = (*Commit)(nil)

// Type implements wire.Message.
func (m *Commit) Type() wire.Type { return TypeCommit }

// WireSize implements wire.Message.
func (m *Commit) WireSize() int {
	return wire.FrameOverhead + 8 + 8 + 32 + 4 + wire.SizeVarBytes(m.Sig)
}

// EncodeBody implements wire.Message.
func (m *Commit) EncodeBody(e *wire.Encoder) {
	e.U64(m.View)
	e.U64(m.Seq)
	e.Bytes32(m.Digest)
	e.Node(m.Replica)
	e.VarBytes(m.Sig)
}

func decodeCommit(d *wire.Decoder) (wire.Message, error) {
	m := &Commit{View: d.U64(), Seq: d.U64(), Digest: d.Bytes32(), Replica: d.Node(), Sig: d.VarBytes()}
	return m, d.Err()
}

func (m *Commit) signDigest() crypto.Hash {
	return voteDigest(kindCommit, m.View, m.Seq, m.Digest)
}

// PreparedEntry reports an instance the sender prepared but has not
// executed, so the new leader can re-propose it. Unlike full PBFT we carry
// the payload itself instead of a 2f+1-signature proof; view changes are
// rare in the evaluation and the simplification does not change the
// protocol's quorum logic (see DESIGN.md).
type PreparedEntry struct {
	Seq     uint64
	View    uint64
	Digest  crypto.Hash
	Payload wire.Message

	// payloadEnc memoizes the marshaled Payload, shared across the
	// view-change broadcast fan-out.
	payloadEnc wire.EncCache
}

func (p *PreparedEntry) encodedSize() int {
	return 8 + 8 + 32 + 4 + p.payloadEnc.FrameSize(p.Payload)
}

func (p *PreparedEntry) encodeTo(e *wire.Encoder) {
	e.U64(p.Seq)
	e.U64(p.View)
	e.Bytes32(p.Digest)
	e.VarBytes(p.payloadEnc.Frame(p.Payload))
}

func decodePreparedEntry(d *wire.Decoder) (*PreparedEntry, error) {
	p := &PreparedEntry{Seq: d.U64(), View: d.U64(), Digest: d.Bytes32()}
	raw := d.VarBytes()
	if err := d.Err(); err != nil {
		return nil, err
	}
	payload, _, err := wire.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	p.Payload = payload
	p.payloadEnc.Prime(raw)
	return p, nil
}

// ViewChange asks to move to NewViewNum. LastExec lets the new leader pick
// the resume point; Prepared carries instances that must be re-proposed.
type ViewChange struct {
	NewViewNum uint64
	LastExec   uint64
	Prepared   []*PreparedEntry
	Replica    wire.NodeID
	Sig        []byte
}

var _ wire.Message = (*ViewChange)(nil)

// Type implements wire.Message.
func (m *ViewChange) Type() wire.Type { return TypeViewChange }

// WireSize implements wire.Message.
func (m *ViewChange) WireSize() int {
	n := wire.FrameOverhead + 8 + 8 + 4 + 4 + wire.SizeVarBytes(m.Sig)
	for _, p := range m.Prepared {
		n += p.encodedSize()
	}
	return n
}

// EncodeBody implements wire.Message.
func (m *ViewChange) EncodeBody(e *wire.Encoder) {
	e.U64(m.NewViewNum)
	e.U64(m.LastExec)
	e.U32(uint32(len(m.Prepared)))
	for _, p := range m.Prepared {
		p.encodeTo(e)
	}
	e.Node(m.Replica)
	e.VarBytes(m.Sig)
}

func decodeViewChange(d *wire.Decoder) (wire.Message, error) {
	m := &ViewChange{NewViewNum: d.U64(), LastExec: d.U64()}
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining() {
		return nil, wire.ErrTruncated
	}
	for i := 0; i < n; i++ {
		p, err := decodePreparedEntry(d)
		if err != nil {
			return nil, err
		}
		m.Prepared = append(m.Prepared, p)
	}
	m.Replica = d.Node()
	m.Sig = d.VarBytes()
	return m, d.Err()
}

func (m *ViewChange) signDigest() crypto.Hash {
	// Bind the variable parts: view, lastExec, and the prepared digests.
	e := wire.NewEncoder(32 + 16 + len(m.Prepared)*48)
	e.U64(m.NewViewNum)
	e.U64(m.LastExec)
	for _, p := range m.Prepared {
		e.U64(p.Seq)
		e.U64(p.View)
		e.Bytes32(p.Digest)
	}
	return voteDigest(kindViewChange, m.NewViewNum, m.LastExec, crypto.HashBytes(e.Bytes()))
}

// NewView announces a view change's outcome. Re-proposals arrive as fresh
// PrePrepares in the new view immediately after.
type NewView struct {
	View     uint64
	LastExec uint64
	Leader   wire.NodeID
	Sig      []byte
}

var _ wire.Message = (*NewView)(nil)

// Type implements wire.Message.
func (m *NewView) Type() wire.Type { return TypeNewView }

// WireSize implements wire.Message.
func (m *NewView) WireSize() int {
	return wire.FrameOverhead + 8 + 8 + 4 + wire.SizeVarBytes(m.Sig)
}

// EncodeBody implements wire.Message.
func (m *NewView) EncodeBody(e *wire.Encoder) {
	e.U64(m.View)
	e.U64(m.LastExec)
	e.Node(m.Leader)
	e.VarBytes(m.Sig)
}

func decodeNewView(d *wire.Decoder) (wire.Message, error) {
	m := &NewView{View: d.U64(), LastExec: d.U64(), Leader: d.Node(), Sig: d.VarBytes()}
	return m, d.Err()
}

func (m *NewView) signDigest() crypto.Hash {
	return voteDigest(kindNewView, m.View, m.LastExec, crypto.ZeroHash)
}

// StatusRequest asks peers for their view/execution status. A restarted
// replica broadcasts it to resynchronize its view: while it was down the
// cluster may have completed view changes it never saw, and onPrePrepare
// rejects proposals from any view but its own.
type StatusRequest struct {
	Replica wire.NodeID
}

var _ wire.Message = (*StatusRequest)(nil)

// Type implements wire.Message.
func (m *StatusRequest) Type() wire.Type { return TypeStatusRequest }

// WireSize implements wire.Message.
func (m *StatusRequest) WireSize() int { return wire.FrameOverhead + 4 }

// EncodeBody implements wire.Message.
func (m *StatusRequest) EncodeBody(e *wire.Encoder) { e.Node(m.Replica) }

func decodeStatusRequest(d *wire.Decoder) (wire.Message, error) {
	m := &StatusRequest{Replica: d.Node()}
	return m, d.Err()
}

// StatusReply reports the sender's current view and last executed
// sequence number, signed so a restarted replica can safely adopt the
// (f+1)-th largest reported view (at least one honest replica is there).
type StatusReply struct {
	View     uint64
	LastExec uint64
	Replica  wire.NodeID
	Sig      []byte
}

var _ wire.Message = (*StatusReply)(nil)

// Type implements wire.Message.
func (m *StatusReply) Type() wire.Type { return TypeStatusReply }

// WireSize implements wire.Message.
func (m *StatusReply) WireSize() int {
	return wire.FrameOverhead + 8 + 8 + 4 + wire.SizeVarBytes(m.Sig)
}

// EncodeBody implements wire.Message.
func (m *StatusReply) EncodeBody(e *wire.Encoder) {
	e.U64(m.View)
	e.U64(m.LastExec)
	e.Node(m.Replica)
	e.VarBytes(m.Sig)
}

func decodeStatusReply(d *wire.Decoder) (wire.Message, error) {
	m := &StatusReply{View: d.U64(), LastExec: d.U64(), Replica: d.Node(), Sig: d.VarBytes()}
	return m, d.Err()
}

func (m *StatusReply) signDigest() crypto.Hash {
	return voteDigest(kindStatus, m.View, m.LastExec, crypto.ZeroHash)
}

// ProposalProof relays one leader-signed proposal half so peers holding a
// conflicting half can assemble Evidence. A replica broadcasts it when
// verified peer votes name a different digest than the leader-signed
// proposal it holds for a slot: one vote is suspicion, not proof, so the
// replica publishes its half instead of accusing. The proof carries no
// reporter signature — its only load-bearing content is the leader's own
// signature, which every receiver re-verifies.
type ProposalProof struct {
	View   uint64
	Seq    uint64
	Digest crypto.Hash
	Leader wire.NodeID
	Sig    []byte // the leader's pre-prepare signature over (View, Seq, Digest)
}

var _ wire.Message = (*ProposalProof)(nil)

// Type implements wire.Message.
func (m *ProposalProof) Type() wire.Type { return TypeProposalProof }

// WireSize implements wire.Message.
func (m *ProposalProof) WireSize() int {
	return wire.FrameOverhead + 8 + 8 + 32 + 4 + wire.SizeVarBytes(m.Sig)
}

// EncodeBody implements wire.Message.
func (m *ProposalProof) EncodeBody(e *wire.Encoder) {
	e.U64(m.View)
	e.U64(m.Seq)
	e.Bytes32(m.Digest)
	e.Node(m.Leader)
	e.VarBytes(m.Sig)
}

func decodeProposalProof(d *wire.Decoder) (wire.Message, error) {
	m := &ProposalProof{View: d.U64(), Seq: d.U64(), Digest: d.Bytes32(), Leader: d.Node(), Sig: d.VarBytes()}
	return m, d.Err()
}

// Evidence proves leader equivocation: two distinct digests for the same
// (view, seq), both carrying the leader's valid pre-prepare signature. It
// is self-authenticating — receivers verify both signatures against the
// view's leader — so any replica may originate it, and every honest
// replica that verifies it counts the equivocation and votes the faulty
// leader out.
type Evidence struct {
	View    uint64
	Seq     uint64
	Leader  wire.NodeID
	DigestA crypto.Hash
	SigA    []byte
	DigestB crypto.Hash
	SigB    []byte
}

var _ wire.Message = (*Evidence)(nil)

// Type implements wire.Message.
func (m *Evidence) Type() wire.Type { return TypeEvidence }

// WireSize implements wire.Message.
func (m *Evidence) WireSize() int {
	return wire.FrameOverhead + 8 + 8 + 4 + 32 + wire.SizeVarBytes(m.SigA) + 32 + wire.SizeVarBytes(m.SigB)
}

// EncodeBody implements wire.Message.
func (m *Evidence) EncodeBody(e *wire.Encoder) {
	e.U64(m.View)
	e.U64(m.Seq)
	e.Node(m.Leader)
	e.Bytes32(m.DigestA)
	e.VarBytes(m.SigA)
	e.Bytes32(m.DigestB)
	e.VarBytes(m.SigB)
}

func decodeEvidence(d *wire.Decoder) (wire.Message, error) {
	m := &Evidence{
		View: d.U64(), Seq: d.U64(), Leader: d.Node(),
		DigestA: d.Bytes32(), SigA: d.VarBytes(),
		DigestB: d.Bytes32(), SigB: d.VarBytes(),
	}
	return m, d.Err()
}

var registerOnce sync.Once

// RegisterMessages registers PBFT message types; idempotent.
func RegisterMessages() {
	registerOnce.Do(func() {
		wire.Register(TypePrePrepare, "pbft.preprepare", decodePrePrepare)
		wire.Register(TypePrepare, "pbft.prepare", decodePrepare)
		wire.Register(TypeCommit, "pbft.commit", decodeCommit)
		wire.Register(TypeViewChange, "pbft.viewchange", decodeViewChange)
		wire.Register(TypeNewView, "pbft.newview", decodeNewView)
		wire.Register(TypeStatusRequest, "pbft.status_req", decodeStatusRequest)
		wire.Register(TypeStatusReply, "pbft.status_reply", decodeStatusReply)
		wire.Register(TypeProposalProof, "pbft.proposal_proof", decodeProposalProof)
		wire.Register(TypeEvidence, "pbft.evidence", decodeEvidence)
	})
}
