package pbft

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"predis/internal/consensus"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/obs"
	"predis/internal/wire"
)

// Config parameterizes an Engine.
type Config struct {
	// N is the number of replicas; IDs must be 0..N-1.
	N int
	// Self is this replica's ID.
	Self wire.NodeID
	// App supplies and consumes payloads.
	App consensus.Application
	// Signer signs and verifies protocol messages.
	Signer crypto.Signer
	// ViewTimeout is the base leader-suspicion timeout; it doubles on
	// consecutive failed view changes. Default 2s.
	ViewTimeout time.Duration
	// ReproposeInterval is how often an idle leader re-asks the app for a
	// proposal. Default 10ms.
	ReproposeInterval time.Duration
	// Pipeline is the maximum number of in-flight instances (sequence
	// numbers past lastExec the leader may have proposed but not yet
	// executed). The default 1 is classic single-slot PBFT. Streaming
	// commit mode raises it so the leader keeps ordering new cuts while
	// earlier slots run their prepare/commit rounds; execution stays
	// strictly sequential, and replicas chain-validate a slot against the
	// in-flight parent payload instead of waiting for it to execute.
	Pipeline int
	// Trace, when non-nil, records the block_proposed (proposal learned →
	// prepare quorum) and prepare_commit (prepare quorum → execution)
	// lifecycle stages on this replica's timeline. Nil disables tracing.
	Trace *obs.Tracer
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ViewTimeout <= 0 {
		out.ViewTimeout = 2 * time.Second
	}
	if out.ReproposeInterval <= 0 {
		out.ReproposeInterval = 10 * time.Millisecond
	}
	if out.Pipeline <= 0 {
		out.Pipeline = 1
	}
	return out
}

// instance is one consensus slot (sequence number).
type instance struct {
	view    uint64
	seq     uint64
	digest  crypto.Hash
	payload wire.Message

	prepares map[wire.NodeID]struct{}
	commits  map[wire.NodeID]struct{}

	validated    bool // app accepted the payload
	invalid      bool // app rejected the payload permanently
	pendingValid bool // app returned ErrPending
	sentPrepare  bool
	sentCommit   bool
	prepared     bool
	commitQuorum bool

	// ppDigest/ppSig hold the leader-signed proposal seen for this slot
	// (nil ppSig until one arrives). A second leader-signed digest, or a
	// ProposalProof naming one, is equivocation evidence.
	ppDigest crypto.Hash
	ppSig    []byte
	// proofSent throttles the ProposalProof broadcast to once per slot.
	proofSent bool
}

// Engine is a PBFT replica. It implements consensus.Engine and is driven
// entirely from its env executor.
type Engine struct {
	cfg  Config
	ctx  env.Context
	f    int
	quo  int // 2f+1
	view uint64

	lastExec    uint64
	lastPayload wire.Message // payload executed at lastExec (parent link)
	instances   map[uint64]*instance

	// view change state
	inViewChange bool
	proposedView uint64
	viewChanges  map[uint64]map[wire.NodeID]*ViewChange
	vcBackoff    int

	suspicion env.Timer
	repropose env.Timer

	// statusViews collects view claims from StatusReply messages after a
	// restart; nil while no status sync is running.
	statusViews map[wire.NodeID]uint64

	peers []wire.NodeID

	// evidenced marks slots whose leader equivocation this replica has
	// already proven, so one attack counts (and broadcasts) once.
	evidenced map[uint64]bool

	// stats
	committed     uint64
	viewChanged   uint64
	restarts      uint64
	equivocations uint64
}

var _ consensus.Engine = (*Engine)(nil)
var _ consensus.FastForwarder = (*Engine)(nil)
var _ env.Restartable = (*Engine)(nil)

// New builds a PBFT replica engine.
func New(cfg Config) (*Engine, error) {
	c := cfg.withDefaults()
	if c.N < 1 || int(c.Self) >= c.N {
		return nil, fmt.Errorf("pbft: bad N=%d Self=%d", c.N, c.Self)
	}
	if c.App == nil || c.Signer == nil {
		return nil, errors.New("pbft: App and Signer are required")
	}
	peers := make([]wire.NodeID, c.N)
	for i := range peers {
		peers[i] = wire.NodeID(i)
	}
	return &Engine{
		cfg:         c,
		f:           consensus.FaultBound(c.N),
		quo:         consensus.Quorum(c.N),
		instances:   make(map[uint64]*instance),
		viewChanges: make(map[uint64]map[wire.NodeID]*ViewChange),
		evidenced:   make(map[uint64]bool),
		peers:       peers,
	}, nil
}

// View returns the current view number.
func (e *Engine) View() uint64 { return e.view }

// LastExecuted returns the highest executed sequence number.
func (e *Engine) LastExecuted() uint64 { return e.lastExec }

// Stats returns (blocks committed, view changes completed).
func (e *Engine) Stats() (committed, viewChanges uint64) {
	return e.committed, e.viewChanged
}

// Equivocations returns how many leader equivocations this replica has
// proven, first-hand or through received evidence.
func (e *Engine) Equivocations() uint64 { return e.equivocations }

// Leader returns the current view's leader.
func (e *Engine) Leader() wire.NodeID { return consensus.LeaderOf(e.view, e.cfg.N) }

func (e *Engine) isLeader() bool { return e.Leader() == e.cfg.Self }

// Start implements env.Handler.
func (e *Engine) Start(ctx env.Context) {
	e.ctx = ctx
	e.armRepropose()
	e.tryPropose()
}

// Poke implements consensus.Engine: application state changed, so retry
// pending validations, executions, and proposals; arm leader suspicion if
// we now have work but see no progress.
func (e *Engine) Poke() {
	if e.ctx == nil {
		return
	}
	for _, seq := range e.sortedSeqs() {
		if inst := e.instances[seq]; inst != nil && inst.pendingValid {
			e.validateInstance(inst)
		}
	}
	e.tryExecute() // a freshly validated instance may now be executable
	e.tryPropose()
	if !e.isLeader() && !e.inViewChange && e.suspicion == nil && e.hasPendingWork() {
		e.armSuspicion()
	}
}

// hasPendingWork consults the app when it reports work; engines never
// suspect a leader that has nothing to order.
func (e *Engine) hasPendingWork() bool {
	if wr, ok := e.cfg.App.(consensus.WorkReporter); ok {
		return wr.HasPendingWork()
	}
	return false
}

func (e *Engine) armRepropose() {
	e.repropose = e.ctx.After(e.cfg.ReproposeInterval, func() {
		e.tryPropose()
		e.armRepropose()
	})
}

func (e *Engine) armSuspicion() {
	timeout := e.cfg.ViewTimeout << uint(e.vcBackoff)
	e.suspicion = e.ctx.After(timeout, func() {
		e.suspicion = nil
		if e.hasPendingWork() || len(e.instances) > 0 {
			e.startViewChange(e.view + 1)
		}
	})
}

func (e *Engine) resetSuspicion() {
	if e.suspicion != nil {
		e.suspicion.Stop()
		e.suspicion = nil
	}
	e.vcBackoff = 0
}

// tryPropose issues pre-prepares when this replica leads and is not mid
// view change, filling the pipeline window: classic PBFT (Pipeline=1)
// allows one in-flight instance; streaming mode lets the leader keep
// proposing later slots, each extending the previous in-flight payload,
// while earlier slots run their vote rounds.
func (e *Engine) tryPropose() {
	if e.ctx == nil || !e.isLeader() || e.inViewChange {
		return
	}
	parent := e.lastPayload
	for seq := e.lastExec + 1; seq <= e.lastExec+uint64(e.cfg.Pipeline); seq++ {
		if inst, ok := e.instances[seq]; ok && inst.view >= e.view {
			if inst.payload == nil {
				return // votes-only slot: no payload to chain the next slot onto
			}
			parent = inst.payload
			continue // already proposed / in flight
		}
		payload, digest, ok := e.cfg.App.BuildProposal(seq, parent)
		if !ok {
			return
		}
		e.proposeAt(seq, digest, payload)
		parent = payload
	}
}

// proposeAt broadcasts a pre-prepare for (view, seq) with the payload.
func (e *Engine) proposeAt(seq uint64, digest crypto.Hash, payload wire.Message) {
	pp := &PrePrepare{View: e.view, Seq: seq, Digest: digest, Payload: payload, Leader: e.cfg.Self}
	pp.Sig = e.cfg.Signer.Sign(pp.signDigest())
	inst := e.getInstance(seq, e.view, digest)
	inst.payload = payload
	inst.validated = true // leader trusts its own proposal
	inst.ppDigest = digest
	inst.ppSig = pp.Sig
	e.cfg.Trace.Begin(obs.StageBlockProposed, obs.BlockKey(seq), e.cfg.Self, e.ctx.Now())
	env.Multicast(e.ctx, e.peers, pp)
	// The leader's pre-prepare doubles as its prepare.
	e.recordPrepare(inst, e.cfg.Self)
}

func (e *Engine) getInstance(seq, view uint64, digest crypto.Hash) *instance {
	inst, ok := e.instances[seq]
	if ok && inst.view == view && inst.digest == digest {
		return inst
	}
	if ok && (inst.view >= view || inst.commitQuorum) {
		return inst // caller must check digest; committed slots never reset
	}
	// New instance, or a re-proposal in a higher view supersedes the old.
	if ok {
		e.evictInstance(inst)
	}
	inst = &instance{
		view:     view,
		seq:      seq,
		digest:   digest,
		prepares: make(map[wire.NodeID]struct{}),
		commits:  make(map[wire.NodeID]struct{}),
	}
	e.instances[seq] = inst
	return inst
}

// evictInstance tells a ProposalEvicter application that the engine is
// dropping an uncommitted in-flight payload (view change or supersession),
// so speculative side effects keyed to it can be retracted. Committed
// slots and payload-less (votes-only) slots are never reported.
func (e *Engine) evictInstance(inst *instance) {
	if inst == nil || inst.payload == nil || inst.commitQuorum {
		return
	}
	if ev, ok := e.cfg.App.(consensus.ProposalEvicter); ok {
		ev.OnProposalEvicted(inst.seq, inst.payload)
	}
}

// sortedSeqs returns the live instance sequence numbers in ascending
// order, so map iteration never leaks into message send order.
func (e *Engine) sortedSeqs() []uint64 {
	seqs := make([]uint64, 0, len(e.instances))
	for seq := range e.instances {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// Receive implements env.Handler.
func (e *Engine) Receive(from wire.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *PrePrepare:
		e.onPrePrepare(from, msg)
	case *Prepare:
		e.onPrepare(from, msg)
	case *Commit:
		e.onCommit(from, msg)
	case *ViewChange:
		e.onViewChange(from, msg)
	case *NewView:
		e.onNewView(from, msg)
	case *StatusRequest:
		e.onStatusRequest(from, msg)
	case *StatusReply:
		e.onStatusReply(from, msg)
	case *ProposalProof:
		e.onProposalProof(from, msg)
	case *Evidence:
		e.onEvidence(from, msg)
	default:
		e.ctx.Logf("pbft: unexpected message %s from %d", wire.TypeName(m.Type()), from)
	}
}

func (e *Engine) onPrePrepare(from wire.NodeID, m *PrePrepare) {
	if m.View != e.view || e.inViewChange {
		return
	}
	if m.Leader != e.Leader() || from != m.Leader {
		return
	}
	if m.Seq <= e.lastExec {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Leader), m.signDigest(), m.Sig) {
		e.ctx.Logf("pbft: bad pre-prepare signature from %d", from)
		return
	}
	inst := e.getInstance(m.Seq, m.View, m.Digest)
	if inst.ppSig != nil && inst.view == m.View && inst.ppDigest != m.Digest {
		// Two leader-signed digests for one slot: first-hand proof of
		// equivocation. Publish it and vote the leader out.
		e.foundEquivocation(m.View, m.Seq, m.Leader, inst.ppDigest, inst.ppSig, m.Digest, m.Sig)
		return
	}
	if inst.digest != m.Digest {
		// The slot holds a different digest. If that state came only from
		// (possibly Byzantine) votes — no payload, not prepared — the
		// authenticated leader proposal supersedes it. Otherwise this is
		// an equivocating leader and we ignore the second proposal.
		if inst.payload != nil || inst.prepared || inst.commitQuorum {
			return
		}
		delete(e.instances, m.Seq)
		inst = e.getInstance(m.Seq, m.View, m.Digest)
	}
	if inst.ppSig == nil && inst.view == m.View {
		inst.ppDigest = m.Digest
		inst.ppSig = m.Sig
	}
	// block_proposed: this replica learned an authenticated proposal for
	// the height (first learn wins; re-proposals are idempotent).
	e.cfg.Trace.Begin(obs.StageBlockProposed, obs.BlockKey(m.Seq), e.cfg.Self, e.ctx.Now())
	if inst.payload == nil {
		inst.payload = m.Payload
	}
	// The leader's pre-prepare counts as its prepare vote.
	e.recordPrepare(inst, m.Leader)
	e.validateInstance(inst)
}

// validateInstance asks the app to validate and, on success, emits this
// replica's prepare vote.
func (e *Engine) validateInstance(inst *instance) {
	if inst.validated || inst.invalid || inst.payload == nil {
		e.maybeVote(inst)
		return
	}
	parent := e.lastPayload
	if inst.seq != e.lastExec+1 {
		// PBFT is sequential by default: validate against the parent
		// payload only once the parent has executed (Poke/tryExecute
		// retries). With a pipeline window the parent slot may still be in
		// flight — chain validation through its payload, which is safe
		// because the slot's digest binds the payload to that parent.
		pinst := e.instances[inst.seq-1]
		if e.cfg.Pipeline <= 1 || pinst == nil || !pinst.validated || pinst.payload == nil {
			inst.pendingValid = true
			return
		}
		parent = pinst.payload
	}
	digest, err := e.cfg.App.ValidateProposal(inst.seq, inst.payload, parent)
	switch {
	case err == nil:
		if digest != inst.digest {
			e.ctx.Logf("pbft: app digest mismatch at seq %d", inst.seq)
			inst.invalid = true
			return
		}
		inst.validated = true
		inst.pendingValid = false
		e.maybeVote(inst)
	case errors.Is(err, consensus.ErrPending):
		inst.pendingValid = true
	default:
		inst.invalid = true
		inst.pendingValid = false
	}
}

func (e *Engine) maybeVote(inst *instance) {
	if !inst.validated || inst.sentPrepare || e.inViewChange || inst.view != e.view {
		return
	}
	inst.sentPrepare = true
	p := &Prepare{View: inst.view, Seq: inst.seq, Digest: inst.digest, Replica: e.cfg.Self}
	p.Sig = e.cfg.Signer.Sign(p.signDigest())
	env.Multicast(e.ctx, e.peers, p)
	e.recordPrepare(inst, e.cfg.Self)
}

func (e *Engine) recordPrepare(inst *instance, replica wire.NodeID) {
	inst.prepares[replica] = struct{}{}
	if !inst.prepared && len(inst.prepares) >= e.quo {
		inst.prepared = true
		// Prepare quorum reached: close block_proposed, open
		// prepare_commit (quorum → execution) on this replica.
		now := e.ctx.Now()
		e.cfg.Trace.End(obs.StageBlockProposed, obs.BlockKey(inst.seq), e.cfg.Self, now)
		e.cfg.Trace.Begin(obs.StagePrepareCommit, obs.BlockKey(inst.seq), e.cfg.Self, now)
		e.sendCommit(inst)
	}
}

func (e *Engine) sendCommit(inst *instance) {
	if inst.sentCommit {
		return
	}
	inst.sentCommit = true
	c := &Commit{View: inst.view, Seq: inst.seq, Digest: inst.digest, Replica: e.cfg.Self}
	c.Sig = e.cfg.Signer.Sign(c.signDigest())
	env.Multicast(e.ctx, e.peers, c)
	e.recordCommit(inst, e.cfg.Self)
}

func (e *Engine) onPrepare(from wire.NodeID, m *Prepare) {
	if m.Seq <= e.lastExec || m.Replica != from {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Replica), m.signDigest(), m.Sig) {
		return
	}
	inst := e.getInstance(m.Seq, m.View, m.Digest)
	if inst.view != m.View || inst.digest != m.Digest {
		e.suspectEquivocation(inst, m.View, m.Digest)
		return
	}
	e.recordPrepare(inst, m.Replica)
}

func (e *Engine) onCommit(from wire.NodeID, m *Commit) {
	if m.Seq <= e.lastExec || m.Replica != from {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Replica), m.signDigest(), m.Sig) {
		return
	}
	inst := e.getInstance(m.Seq, m.View, m.Digest)
	if inst.view != m.View || inst.digest != m.Digest {
		e.suspectEquivocation(inst, m.View, m.Digest)
		return
	}
	e.recordCommit(inst, m.Replica)
}

// suspectEquivocation fires when a signature-verified peer vote names a
// different digest than the leader-signed proposal this replica holds for
// the slot. One vote is suspicion, not proof — the voter could be lying —
// so the replica broadcasts its leader-signed half as a ProposalProof;
// any peer holding the conflicting half assembles Evidence, which is
// proof.
func (e *Engine) suspectEquivocation(inst *instance, view uint64, digest crypto.Hash) {
	if inst.proofSent || inst.ppSig == nil || inst.view != view || inst.ppDigest == digest {
		return
	}
	if e.evidenced[inst.seq] {
		return
	}
	inst.proofSent = true
	env.Multicast(e.ctx, e.peers, &ProposalProof{
		View: inst.view, Seq: inst.seq, Digest: inst.ppDigest,
		Leader: consensus.LeaderOf(inst.view, e.cfg.N), Sig: inst.ppSig,
	})
}

// foundEquivocation runs when this replica holds both halves of an
// equivocation proof: count it once, broadcast the self-authenticating
// evidence, and vote the leader out.
func (e *Engine) foundEquivocation(view, seq uint64, leader wire.NodeID, dA crypto.Hash, sA []byte, dB crypto.Hash, sB []byte) {
	if !e.evidenced[seq] {
		e.evidenced[seq] = true
		e.equivocations++
		ev := &Evidence{View: view, Seq: seq, Leader: leader, DigestA: dA, SigA: sA, DigestB: dB, SigB: sB}
		env.Multicast(e.ctx, e.peers, ev)
		e.ctx.Logf("pbft: leader %d equivocated at (view %d, seq %d)", leader, view, seq)
	}
	e.startViewChange(view + 1)
}

func (e *Engine) onProposalProof(from wire.NodeID, m *ProposalProof) {
	if m.Leader != consensus.LeaderOf(m.View, e.cfg.N) || m.Seq <= e.lastExec {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Leader), voteDigest(kindPrePrepare, m.View, m.Seq, m.Digest), m.Sig) {
		return
	}
	inst, ok := e.instances[m.Seq]
	if !ok || inst.ppSig == nil || inst.view != m.View || inst.ppDigest == m.Digest {
		return // no conflicting half here; nothing to prove
	}
	e.foundEquivocation(m.View, m.Seq, m.Leader, inst.ppDigest, inst.ppSig, m.Digest, m.Sig)
}

func (e *Engine) onEvidence(from wire.NodeID, m *Evidence) {
	if m.DigestA == m.DigestB || m.Leader != consensus.LeaderOf(m.View, e.cfg.N) {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Leader), voteDigest(kindPrePrepare, m.View, m.Seq, m.DigestA), m.SigA) {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Leader), voteDigest(kindPrePrepare, m.View, m.Seq, m.DigestB), m.SigB) {
		return
	}
	if !e.evidenced[m.Seq] {
		e.evidenced[m.Seq] = true
		e.equivocations++
		e.ctx.Logf("pbft: evidence of leader %d equivocating at (view %d, seq %d)", m.Leader, m.View, m.Seq)
	}
	if m.View >= e.view {
		e.startViewChange(m.View + 1)
	}
}

func (e *Engine) recordCommit(inst *instance, replica wire.NodeID) {
	inst.commits[replica] = struct{}{}
	if !inst.commitQuorum && len(inst.commits) >= e.quo {
		inst.commitQuorum = true
		e.tryExecute()
	}
}

// tryExecute delivers committed instances in sequence order. An instance
// with a commit quorum but unvalidated payload (missing bundles) waits
// until the app can validate it — Poke retries.
func (e *Engine) tryExecute() {
	for {
		inst, ok := e.instances[e.lastExec+1]
		if !ok || !inst.commitQuorum {
			return
		}
		if !inst.validated {
			if inst.payload == nil {
				return
			}
			e.validateInstance(inst)
			if !inst.validated {
				return
			}
		}
		delete(e.instances, inst.seq)
		delete(e.evidenced, inst.seq)
		e.lastExec = inst.seq
		e.lastPayload = inst.payload
		e.committed++
		e.resetSuspicion()
		e.cfg.Trace.End(obs.StagePrepareCommit, obs.BlockKey(inst.seq), e.cfg.Self, e.ctx.Now())
		e.cfg.App.OnCommit(inst.seq, inst.payload)
		e.tryPropose()
	}
}

// --- view change ---

func (e *Engine) startViewChange(newView uint64) {
	if newView <= e.view || (e.inViewChange && newView <= e.proposedView) {
		return
	}
	e.inViewChange = true
	e.proposedView = newView
	e.vcBackoff++
	e.resetTimersForViewChange()

	vc := &ViewChange{NewViewNum: newView, LastExec: e.lastExec, Replica: e.cfg.Self}
	for _, seq := range e.sortedSeqs() {
		if inst := e.instances[seq]; inst.prepared && inst.payload != nil {
			vc.Prepared = append(vc.Prepared, &PreparedEntry{
				Seq: inst.seq, View: inst.view, Digest: inst.digest, Payload: inst.payload,
			})
		}
	}
	vc.Sig = e.cfg.Signer.Sign(vc.signDigest())
	env.Multicast(e.ctx, e.peers, vc)
	e.storeViewChange(vc)
	// If the next leader never assembles the new view, escalate.
	timeout := e.cfg.ViewTimeout << uint(e.vcBackoff)
	e.suspicion = e.ctx.After(timeout, func() {
		e.suspicion = nil
		e.startViewChange(e.proposedView + 1)
	})
}

func (e *Engine) resetTimersForViewChange() {
	if e.suspicion != nil {
		e.suspicion.Stop()
		e.suspicion = nil
	}
}

func (e *Engine) storeViewChange(vc *ViewChange) {
	byReplica, ok := e.viewChanges[vc.NewViewNum]
	if !ok {
		byReplica = make(map[wire.NodeID]*ViewChange)
		e.viewChanges[vc.NewViewNum] = byReplica
	}
	byReplica[vc.Replica] = vc
}

func (e *Engine) onViewChange(from wire.NodeID, m *ViewChange) {
	if m.Replica != from || m.NewViewNum <= e.view {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Replica), m.signDigest(), m.Sig) {
		return
	}
	e.storeViewChange(m)
	count := len(e.viewChanges[m.NewViewNum])
	// Join a view change once f+1 replicas demand it (we cannot all be
	// wrong), even if our own timer has not fired.
	if count > e.f && (!e.inViewChange || e.proposedView < m.NewViewNum) {
		e.startViewChange(m.NewViewNum)
	}
	if count >= e.quo && consensus.LeaderOf(m.NewViewNum, e.cfg.N) == e.cfg.Self && m.NewViewNum > e.view {
		e.becomeLeader(m.NewViewNum)
	}
}

// becomeLeader finalizes a view change with this replica as leader: it
// announces NewView and re-proposes prepared instances.
func (e *Engine) becomeLeader(newView uint64) {
	vcs := e.viewChanges[newView]
	e.adoptView(newView)
	nv := &NewView{View: newView, LastExec: e.lastExec, Leader: e.cfg.Self}
	nv.Sig = e.cfg.Signer.Sign(nv.signDigest())
	env.Multicast(e.ctx, e.peers, nv)

	// Re-propose the highest-view prepared payload per pending sequence.
	// Iterate in replica order so ties resolve deterministically.
	replicas := make([]wire.NodeID, 0, len(vcs))
	for r := range vcs {
		replicas = append(replicas, r)
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i] < replicas[j] })
	best := make(map[uint64]*PreparedEntry)
	for _, r := range replicas {
		for _, p := range vcs[r].Prepared {
			if cur, ok := best[p.Seq]; !ok || p.View > cur.View {
				best[p.Seq] = p
			}
		}
	}
	for seq := e.lastExec + 1; ; seq++ {
		p, ok := best[seq]
		if !ok {
			break
		}
		e.proposeAt(seq, p.Digest, p.Payload)
	}
	e.tryPropose()
}

func (e *Engine) onNewView(from wire.NodeID, m *NewView) {
	if m.View <= e.view || m.Leader != from {
		return
	}
	if consensus.LeaderOf(m.View, e.cfg.N) != m.Leader {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Leader), m.signDigest(), m.Sig) {
		return
	}
	e.adoptView(m.View)
}

// --- crash recovery ---

// FastForward implements consensus.FastForwarder: the application learned
// (and executed) committed blocks through its catch-up protocol, so skip
// the engine past them. Instances at or below the new height are dropped;
// later pending instances revalidate against the new parent payload.
func (e *Engine) FastForward(height uint64, payload wire.Message) {
	if height <= e.lastExec {
		return
	}
	e.lastExec = height
	e.lastPayload = payload
	for seq := range e.instances {
		if seq <= height {
			delete(e.instances, seq)
		}
	}
	e.resetSuspicion()
	e.Poke()
}

// OnRestart implements env.Restartable. A crashed replica loses every
// pending timer (the repropose chain re-arms inside its own callback, so
// a crash kills it permanently) and may have missed view changes. Re-arm
// the timer chain, drop half-finished view-change state, and broadcast a
// StatusRequest to resynchronize the view.
func (e *Engine) OnRestart() {
	if e.ctx == nil {
		return
	}
	e.restarts++
	if e.repropose != nil {
		e.repropose.Stop()
	}
	e.armRepropose()
	if e.suspicion != nil {
		e.suspicion.Stop()
		e.suspicion = nil
	}
	e.vcBackoff = 0
	e.inViewChange = false
	e.proposedView = e.view
	e.statusViews = make(map[wire.NodeID]uint64)
	env.Multicast(e.ctx, e.peers, &StatusRequest{Replica: e.cfg.Self})
	e.Poke()
}

func (e *Engine) onStatusRequest(from wire.NodeID, m *StatusRequest) {
	if m.Replica != from {
		return
	}
	sr := &StatusReply{View: e.view, LastExec: e.lastExec, Replica: e.cfg.Self}
	sr.Sig = e.cfg.Signer.Sign(sr.signDigest())
	e.ctx.Send(from, sr)
}

// onStatusReply adopts the (f+1)-th largest reported view once enough
// replies arrive: at least one honest replica is at or beyond that view,
// and honest replicas only reach a view through a valid view change.
func (e *Engine) onStatusReply(from wire.NodeID, m *StatusReply) {
	if e.statusViews == nil || m.Replica != from {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Replica), m.signDigest(), m.Sig) {
		return
	}
	e.statusViews[from] = m.View
	if len(e.statusViews) < e.f+1 {
		return
	}
	views := make([]uint64, 0, len(e.statusViews))
	for _, v := range e.statusViews {
		views = append(views, v)
	}
	sort.Slice(views, func(i, j int) bool { return views[i] > views[j] })
	candidate := views[e.f]
	if candidate > e.view {
		e.adoptView(candidate)
		e.Poke()
	}
}

// adoptView moves to a new view, clearing per-view vote state on
// non-committed instances so re-proposals start clean.
func (e *Engine) adoptView(newView uint64) {
	e.view = newView
	e.inViewChange = false
	e.proposedView = newView
	e.viewChanged++
	e.resetTimersForViewChange()
	e.vcBackoff = 0
	// Ascending-seq order: eviction callbacks can emit messages (spec
	// discards), so map iteration order must not leak into the schedule.
	for _, seq := range e.sortedSeqs() {
		inst := e.instances[seq]
		if inst.commitQuorum {
			continue // committed instances survive view changes
		}
		// Drop stale vote state; the new leader re-proposes.
		e.evictInstance(inst)
		delete(e.instances, seq)
	}
	for v := range e.viewChanges {
		if v <= newView {
			delete(e.viewChanges, v)
		}
	}
}
