package pbft

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"predis/internal/consensus"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/obs"
	"predis/internal/wire"
)

// Config parameterizes an Engine.
type Config struct {
	// N is the number of replicas; IDs must be 0..N-1.
	N int
	// Self is this replica's ID.
	Self wire.NodeID
	// App supplies and consumes payloads.
	App consensus.Application
	// Signer signs and verifies protocol messages.
	Signer crypto.Signer
	// ViewTimeout is the base leader-suspicion timeout; it doubles on
	// consecutive failed view changes. Default 2s.
	ViewTimeout time.Duration
	// ReproposeInterval is how often an idle leader re-asks the app for a
	// proposal. Default 10ms.
	ReproposeInterval time.Duration
	// Trace, when non-nil, records the block_proposed (proposal learned →
	// prepare quorum) and prepare_commit (prepare quorum → execution)
	// lifecycle stages on this replica's timeline. Nil disables tracing.
	Trace *obs.Tracer
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ViewTimeout <= 0 {
		out.ViewTimeout = 2 * time.Second
	}
	if out.ReproposeInterval <= 0 {
		out.ReproposeInterval = 10 * time.Millisecond
	}
	return out
}

// instance is one consensus slot (sequence number).
type instance struct {
	view    uint64
	seq     uint64
	digest  crypto.Hash
	payload wire.Message

	prepares map[wire.NodeID]struct{}
	commits  map[wire.NodeID]struct{}

	validated    bool // app accepted the payload
	invalid      bool // app rejected the payload permanently
	pendingValid bool // app returned ErrPending
	sentPrepare  bool
	sentCommit   bool
	prepared     bool
	commitQuorum bool
}

// Engine is a PBFT replica. It implements consensus.Engine and is driven
// entirely from its env executor.
type Engine struct {
	cfg  Config
	ctx  env.Context
	f    int
	quo  int // 2f+1
	view uint64

	lastExec    uint64
	lastPayload wire.Message // payload executed at lastExec (parent link)
	instances   map[uint64]*instance

	// view change state
	inViewChange bool
	proposedView uint64
	viewChanges  map[uint64]map[wire.NodeID]*ViewChange
	vcBackoff    int

	suspicion env.Timer
	repropose env.Timer

	// statusViews collects view claims from StatusReply messages after a
	// restart; nil while no status sync is running.
	statusViews map[wire.NodeID]uint64

	peers []wire.NodeID

	// stats
	committed   uint64
	viewChanged uint64
	restarts    uint64
}

var _ consensus.Engine = (*Engine)(nil)
var _ consensus.FastForwarder = (*Engine)(nil)
var _ env.Restartable = (*Engine)(nil)

// New builds a PBFT replica engine.
func New(cfg Config) (*Engine, error) {
	c := cfg.withDefaults()
	if c.N < 1 || int(c.Self) >= c.N {
		return nil, fmt.Errorf("pbft: bad N=%d Self=%d", c.N, c.Self)
	}
	if c.App == nil || c.Signer == nil {
		return nil, errors.New("pbft: App and Signer are required")
	}
	peers := make([]wire.NodeID, c.N)
	for i := range peers {
		peers[i] = wire.NodeID(i)
	}
	return &Engine{
		cfg:         c,
		f:           consensus.FaultBound(c.N),
		quo:         consensus.Quorum(c.N),
		instances:   make(map[uint64]*instance),
		viewChanges: make(map[uint64]map[wire.NodeID]*ViewChange),
		peers:       peers,
	}, nil
}

// View returns the current view number.
func (e *Engine) View() uint64 { return e.view }

// LastExecuted returns the highest executed sequence number.
func (e *Engine) LastExecuted() uint64 { return e.lastExec }

// Stats returns (blocks committed, view changes completed).
func (e *Engine) Stats() (committed, viewChanges uint64) {
	return e.committed, e.viewChanged
}

// Leader returns the current view's leader.
func (e *Engine) Leader() wire.NodeID { return consensus.LeaderOf(e.view, e.cfg.N) }

func (e *Engine) isLeader() bool { return e.Leader() == e.cfg.Self }

// Start implements env.Handler.
func (e *Engine) Start(ctx env.Context) {
	e.ctx = ctx
	e.armRepropose()
	e.tryPropose()
}

// Poke implements consensus.Engine: application state changed, so retry
// pending validations, executions, and proposals; arm leader suspicion if
// we now have work but see no progress.
func (e *Engine) Poke() {
	if e.ctx == nil {
		return
	}
	for _, seq := range e.sortedSeqs() {
		if inst := e.instances[seq]; inst != nil && inst.pendingValid {
			e.validateInstance(inst)
		}
	}
	e.tryExecute() // a freshly validated instance may now be executable
	e.tryPropose()
	if !e.isLeader() && !e.inViewChange && e.suspicion == nil && e.hasPendingWork() {
		e.armSuspicion()
	}
}

// hasPendingWork consults the app when it reports work; engines never
// suspect a leader that has nothing to order.
func (e *Engine) hasPendingWork() bool {
	if wr, ok := e.cfg.App.(consensus.WorkReporter); ok {
		return wr.HasPendingWork()
	}
	return false
}

func (e *Engine) armRepropose() {
	e.repropose = e.ctx.After(e.cfg.ReproposeInterval, func() {
		e.tryPropose()
		e.armRepropose()
	})
}

func (e *Engine) armSuspicion() {
	timeout := e.cfg.ViewTimeout << uint(e.vcBackoff)
	e.suspicion = e.ctx.After(timeout, func() {
		e.suspicion = nil
		if e.hasPendingWork() || len(e.instances) > 0 {
			e.startViewChange(e.view + 1)
		}
	})
}

func (e *Engine) resetSuspicion() {
	if e.suspicion != nil {
		e.suspicion.Stop()
		e.suspicion = nil
	}
	e.vcBackoff = 0
}

// tryPropose issues the next pre-prepare when this replica leads, is not
// mid view change, and has no in-flight instance.
func (e *Engine) tryPropose() {
	if e.ctx == nil || !e.isLeader() || e.inViewChange {
		return
	}
	seq := e.lastExec + 1
	if inst, ok := e.instances[seq]; ok && inst.view >= e.view {
		return // already proposed / in flight
	}
	payload, digest, ok := e.cfg.App.BuildProposal(seq, e.lastPayload)
	if !ok {
		return
	}
	e.proposeAt(seq, digest, payload)
}

// proposeAt broadcasts a pre-prepare for (view, seq) with the payload.
func (e *Engine) proposeAt(seq uint64, digest crypto.Hash, payload wire.Message) {
	pp := &PrePrepare{View: e.view, Seq: seq, Digest: digest, Payload: payload, Leader: e.cfg.Self}
	pp.Sig = e.cfg.Signer.Sign(pp.signDigest())
	inst := e.getInstance(seq, e.view, digest)
	inst.payload = payload
	inst.validated = true // leader trusts its own proposal
	e.cfg.Trace.Begin(obs.StageBlockProposed, obs.BlockKey(seq), e.cfg.Self, e.ctx.Now())
	env.Multicast(e.ctx, e.peers, pp)
	// The leader's pre-prepare doubles as its prepare.
	e.recordPrepare(inst, e.cfg.Self)
}

func (e *Engine) getInstance(seq, view uint64, digest crypto.Hash) *instance {
	inst, ok := e.instances[seq]
	if ok && inst.view == view && inst.digest == digest {
		return inst
	}
	if ok && (inst.view >= view || inst.commitQuorum) {
		return inst // caller must check digest; committed slots never reset
	}
	// New instance, or a re-proposal in a higher view supersedes the old.
	inst = &instance{
		view:     view,
		seq:      seq,
		digest:   digest,
		prepares: make(map[wire.NodeID]struct{}),
		commits:  make(map[wire.NodeID]struct{}),
	}
	e.instances[seq] = inst
	return inst
}

// sortedSeqs returns the live instance sequence numbers in ascending
// order, so map iteration never leaks into message send order.
func (e *Engine) sortedSeqs() []uint64 {
	seqs := make([]uint64, 0, len(e.instances))
	for seq := range e.instances {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// Receive implements env.Handler.
func (e *Engine) Receive(from wire.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *PrePrepare:
		e.onPrePrepare(from, msg)
	case *Prepare:
		e.onPrepare(from, msg)
	case *Commit:
		e.onCommit(from, msg)
	case *ViewChange:
		e.onViewChange(from, msg)
	case *NewView:
		e.onNewView(from, msg)
	case *StatusRequest:
		e.onStatusRequest(from, msg)
	case *StatusReply:
		e.onStatusReply(from, msg)
	default:
		e.ctx.Logf("pbft: unexpected message %s from %d", wire.TypeName(m.Type()), from)
	}
}

func (e *Engine) onPrePrepare(from wire.NodeID, m *PrePrepare) {
	if m.View != e.view || e.inViewChange {
		return
	}
	if m.Leader != e.Leader() || from != m.Leader {
		return
	}
	if m.Seq <= e.lastExec {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Leader), m.signDigest(), m.Sig) {
		e.ctx.Logf("pbft: bad pre-prepare signature from %d", from)
		return
	}
	inst := e.getInstance(m.Seq, m.View, m.Digest)
	if inst.digest != m.Digest {
		// The slot holds a different digest. If that state came only from
		// (possibly Byzantine) votes — no payload, not prepared — the
		// authenticated leader proposal supersedes it. Otherwise this is
		// an equivocating leader and we ignore the second proposal.
		if inst.payload != nil || inst.prepared || inst.commitQuorum {
			return
		}
		delete(e.instances, m.Seq)
		inst = e.getInstance(m.Seq, m.View, m.Digest)
	}
	// block_proposed: this replica learned an authenticated proposal for
	// the height (first learn wins; re-proposals are idempotent).
	e.cfg.Trace.Begin(obs.StageBlockProposed, obs.BlockKey(m.Seq), e.cfg.Self, e.ctx.Now())
	if inst.payload == nil {
		inst.payload = m.Payload
	}
	// The leader's pre-prepare counts as its prepare vote.
	e.recordPrepare(inst, m.Leader)
	e.validateInstance(inst)
}

// validateInstance asks the app to validate and, on success, emits this
// replica's prepare vote.
func (e *Engine) validateInstance(inst *instance) {
	if inst.validated || inst.invalid || inst.payload == nil {
		e.maybeVote(inst)
		return
	}
	if inst.seq != e.lastExec+1 {
		// PBFT is sequential: validate against the parent payload only
		// once the parent has executed. Poke/tryExecute retries.
		inst.pendingValid = true
		return
	}
	digest, err := e.cfg.App.ValidateProposal(inst.seq, inst.payload, e.lastPayload)
	switch {
	case err == nil:
		if digest != inst.digest {
			e.ctx.Logf("pbft: app digest mismatch at seq %d", inst.seq)
			inst.invalid = true
			return
		}
		inst.validated = true
		inst.pendingValid = false
		e.maybeVote(inst)
	case errors.Is(err, consensus.ErrPending):
		inst.pendingValid = true
	default:
		inst.invalid = true
		inst.pendingValid = false
	}
}

func (e *Engine) maybeVote(inst *instance) {
	if !inst.validated || inst.sentPrepare || e.inViewChange || inst.view != e.view {
		return
	}
	inst.sentPrepare = true
	p := &Prepare{View: inst.view, Seq: inst.seq, Digest: inst.digest, Replica: e.cfg.Self}
	p.Sig = e.cfg.Signer.Sign(p.signDigest())
	env.Multicast(e.ctx, e.peers, p)
	e.recordPrepare(inst, e.cfg.Self)
}

func (e *Engine) recordPrepare(inst *instance, replica wire.NodeID) {
	inst.prepares[replica] = struct{}{}
	if !inst.prepared && len(inst.prepares) >= e.quo {
		inst.prepared = true
		// Prepare quorum reached: close block_proposed, open
		// prepare_commit (quorum → execution) on this replica.
		now := e.ctx.Now()
		e.cfg.Trace.End(obs.StageBlockProposed, obs.BlockKey(inst.seq), e.cfg.Self, now)
		e.cfg.Trace.Begin(obs.StagePrepareCommit, obs.BlockKey(inst.seq), e.cfg.Self, now)
		e.sendCommit(inst)
	}
}

func (e *Engine) sendCommit(inst *instance) {
	if inst.sentCommit {
		return
	}
	inst.sentCommit = true
	c := &Commit{View: inst.view, Seq: inst.seq, Digest: inst.digest, Replica: e.cfg.Self}
	c.Sig = e.cfg.Signer.Sign(c.signDigest())
	env.Multicast(e.ctx, e.peers, c)
	e.recordCommit(inst, e.cfg.Self)
}

func (e *Engine) onPrepare(from wire.NodeID, m *Prepare) {
	if m.Seq <= e.lastExec || m.Replica != from {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Replica), m.signDigest(), m.Sig) {
		return
	}
	inst := e.getInstance(m.Seq, m.View, m.Digest)
	if inst.view != m.View || inst.digest != m.Digest {
		return
	}
	e.recordPrepare(inst, m.Replica)
}

func (e *Engine) onCommit(from wire.NodeID, m *Commit) {
	if m.Seq <= e.lastExec || m.Replica != from {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Replica), m.signDigest(), m.Sig) {
		return
	}
	inst := e.getInstance(m.Seq, m.View, m.Digest)
	if inst.view != m.View || inst.digest != m.Digest {
		return
	}
	e.recordCommit(inst, m.Replica)
}

func (e *Engine) recordCommit(inst *instance, replica wire.NodeID) {
	inst.commits[replica] = struct{}{}
	if !inst.commitQuorum && len(inst.commits) >= e.quo {
		inst.commitQuorum = true
		e.tryExecute()
	}
}

// tryExecute delivers committed instances in sequence order. An instance
// with a commit quorum but unvalidated payload (missing bundles) waits
// until the app can validate it — Poke retries.
func (e *Engine) tryExecute() {
	for {
		inst, ok := e.instances[e.lastExec+1]
		if !ok || !inst.commitQuorum {
			return
		}
		if !inst.validated {
			if inst.payload == nil {
				return
			}
			e.validateInstance(inst)
			if !inst.validated {
				return
			}
		}
		delete(e.instances, inst.seq)
		e.lastExec = inst.seq
		e.lastPayload = inst.payload
		e.committed++
		e.resetSuspicion()
		e.cfg.Trace.End(obs.StagePrepareCommit, obs.BlockKey(inst.seq), e.cfg.Self, e.ctx.Now())
		e.cfg.App.OnCommit(inst.seq, inst.payload)
		e.tryPropose()
	}
}

// --- view change ---

func (e *Engine) startViewChange(newView uint64) {
	if newView <= e.view || (e.inViewChange && newView <= e.proposedView) {
		return
	}
	e.inViewChange = true
	e.proposedView = newView
	e.vcBackoff++
	e.resetTimersForViewChange()

	vc := &ViewChange{NewViewNum: newView, LastExec: e.lastExec, Replica: e.cfg.Self}
	for _, seq := range e.sortedSeqs() {
		if inst := e.instances[seq]; inst.prepared && inst.payload != nil {
			vc.Prepared = append(vc.Prepared, &PreparedEntry{
				Seq: inst.seq, View: inst.view, Digest: inst.digest, Payload: inst.payload,
			})
		}
	}
	vc.Sig = e.cfg.Signer.Sign(vc.signDigest())
	env.Multicast(e.ctx, e.peers, vc)
	e.storeViewChange(vc)
	// If the next leader never assembles the new view, escalate.
	timeout := e.cfg.ViewTimeout << uint(e.vcBackoff)
	e.suspicion = e.ctx.After(timeout, func() {
		e.suspicion = nil
		e.startViewChange(e.proposedView + 1)
	})
}

func (e *Engine) resetTimersForViewChange() {
	if e.suspicion != nil {
		e.suspicion.Stop()
		e.suspicion = nil
	}
}

func (e *Engine) storeViewChange(vc *ViewChange) {
	byReplica, ok := e.viewChanges[vc.NewViewNum]
	if !ok {
		byReplica = make(map[wire.NodeID]*ViewChange)
		e.viewChanges[vc.NewViewNum] = byReplica
	}
	byReplica[vc.Replica] = vc
}

func (e *Engine) onViewChange(from wire.NodeID, m *ViewChange) {
	if m.Replica != from || m.NewViewNum <= e.view {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Replica), m.signDigest(), m.Sig) {
		return
	}
	e.storeViewChange(m)
	count := len(e.viewChanges[m.NewViewNum])
	// Join a view change once f+1 replicas demand it (we cannot all be
	// wrong), even if our own timer has not fired.
	if count > e.f && (!e.inViewChange || e.proposedView < m.NewViewNum) {
		e.startViewChange(m.NewViewNum)
	}
	if count >= e.quo && consensus.LeaderOf(m.NewViewNum, e.cfg.N) == e.cfg.Self && m.NewViewNum > e.view {
		e.becomeLeader(m.NewViewNum)
	}
}

// becomeLeader finalizes a view change with this replica as leader: it
// announces NewView and re-proposes prepared instances.
func (e *Engine) becomeLeader(newView uint64) {
	vcs := e.viewChanges[newView]
	e.adoptView(newView)
	nv := &NewView{View: newView, LastExec: e.lastExec, Leader: e.cfg.Self}
	nv.Sig = e.cfg.Signer.Sign(nv.signDigest())
	env.Multicast(e.ctx, e.peers, nv)

	// Re-propose the highest-view prepared payload per pending sequence.
	// Iterate in replica order so ties resolve deterministically.
	replicas := make([]wire.NodeID, 0, len(vcs))
	for r := range vcs {
		replicas = append(replicas, r)
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i] < replicas[j] })
	best := make(map[uint64]*PreparedEntry)
	for _, r := range replicas {
		for _, p := range vcs[r].Prepared {
			if cur, ok := best[p.Seq]; !ok || p.View > cur.View {
				best[p.Seq] = p
			}
		}
	}
	for seq := e.lastExec + 1; ; seq++ {
		p, ok := best[seq]
		if !ok {
			break
		}
		e.proposeAt(seq, p.Digest, p.Payload)
	}
	e.tryPropose()
}

func (e *Engine) onNewView(from wire.NodeID, m *NewView) {
	if m.View <= e.view || m.Leader != from {
		return
	}
	if consensus.LeaderOf(m.View, e.cfg.N) != m.Leader {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Leader), m.signDigest(), m.Sig) {
		return
	}
	e.adoptView(m.View)
}

// --- crash recovery ---

// FastForward implements consensus.FastForwarder: the application learned
// (and executed) committed blocks through its catch-up protocol, so skip
// the engine past them. Instances at or below the new height are dropped;
// later pending instances revalidate against the new parent payload.
func (e *Engine) FastForward(height uint64, payload wire.Message) {
	if height <= e.lastExec {
		return
	}
	e.lastExec = height
	e.lastPayload = payload
	for seq := range e.instances {
		if seq <= height {
			delete(e.instances, seq)
		}
	}
	e.resetSuspicion()
	e.Poke()
}

// OnRestart implements env.Restartable. A crashed replica loses every
// pending timer (the repropose chain re-arms inside its own callback, so
// a crash kills it permanently) and may have missed view changes. Re-arm
// the timer chain, drop half-finished view-change state, and broadcast a
// StatusRequest to resynchronize the view.
func (e *Engine) OnRestart() {
	if e.ctx == nil {
		return
	}
	e.restarts++
	if e.repropose != nil {
		e.repropose.Stop()
	}
	e.armRepropose()
	if e.suspicion != nil {
		e.suspicion.Stop()
		e.suspicion = nil
	}
	e.vcBackoff = 0
	e.inViewChange = false
	e.proposedView = e.view
	e.statusViews = make(map[wire.NodeID]uint64)
	env.Multicast(e.ctx, e.peers, &StatusRequest{Replica: e.cfg.Self})
	e.Poke()
}

func (e *Engine) onStatusRequest(from wire.NodeID, m *StatusRequest) {
	if m.Replica != from {
		return
	}
	sr := &StatusReply{View: e.view, LastExec: e.lastExec, Replica: e.cfg.Self}
	sr.Sig = e.cfg.Signer.Sign(sr.signDigest())
	e.ctx.Send(from, sr)
}

// onStatusReply adopts the (f+1)-th largest reported view once enough
// replies arrive: at least one honest replica is at or beyond that view,
// and honest replicas only reach a view through a valid view change.
func (e *Engine) onStatusReply(from wire.NodeID, m *StatusReply) {
	if e.statusViews == nil || m.Replica != from {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Replica), m.signDigest(), m.Sig) {
		return
	}
	e.statusViews[from] = m.View
	if len(e.statusViews) < e.f+1 {
		return
	}
	views := make([]uint64, 0, len(e.statusViews))
	for _, v := range e.statusViews {
		views = append(views, v)
	}
	sort.Slice(views, func(i, j int) bool { return views[i] > views[j] })
	candidate := views[e.f]
	if candidate > e.view {
		e.adoptView(candidate)
		e.Poke()
	}
}

// adoptView moves to a new view, clearing per-view vote state on
// non-committed instances so re-proposals start clean.
func (e *Engine) adoptView(newView uint64) {
	e.view = newView
	e.inViewChange = false
	e.proposedView = newView
	e.viewChanged++
	e.resetTimersForViewChange()
	e.vcBackoff = 0
	for seq, inst := range e.instances {
		if inst.commitQuorum {
			continue // committed instances survive view changes
		}
		// Drop stale vote state; the new leader re-proposes.
		delete(e.instances, seq)
	}
	for v := range e.viewChanges {
		if v <= newView {
			delete(e.viewChanges, v)
		}
	}
}
