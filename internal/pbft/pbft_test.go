package pbft

import (
	"errors"
	"testing"
	"time"

	"predis/internal/consensus"
	"predis/internal/crypto"
	"predis/internal/faults"
	"predis/internal/simnet"
	"predis/internal/wire"
)

// echoApp proposes numbered payloads and records commits; it drives the
// engine without any real data plane.
type echoApp struct {
	next     uint64
	max      uint64
	commits  []uint64
	pendOnce map[uint64]bool // heights that return ErrPending on first try
	rejectAt uint64          // height whose validation always fails (0 = none)
	wantWork bool            // report pending work (arms leader suspicion)
}

// payloadMsg is a minimal consensus payload.
type payloadMsg struct {
	N uint64
}

const payloadType = wire.TypeRangeTest + 0x20

func (p *payloadMsg) Type() wire.Type            { return payloadType }
func (p *payloadMsg) WireSize() int              { return wire.FrameOverhead + 8 }
func (p *payloadMsg) EncodeBody(e *wire.Encoder) { e.U64(p.N) }

func registerPayload() {
	if !wire.Registered(payloadType) {
		wire.Register(payloadType, "pbft-test-payload", func(d *wire.Decoder) (wire.Message, error) {
			return &payloadMsg{N: d.U64()}, d.Err()
		})
	}
}

func (a *echoApp) BuildProposal(height uint64, parent wire.Message) (wire.Message, crypto.Hash, bool) {
	if a.next >= a.max {
		return nil, crypto.ZeroHash, false
	}
	a.next++
	p := &payloadMsg{N: height}
	return p, digestOf(p), true
}

func digestOf(p *payloadMsg) crypto.Hash {
	e := wire.NewEncoder(8)
	e.U64(p.N)
	return crypto.HashBytes(e.Bytes())
}

func (a *echoApp) ValidateProposal(height uint64, payload, parent wire.Message) (crypto.Hash, error) {
	p, ok := payload.(*payloadMsg)
	if !ok {
		return crypto.ZeroHash, errors.New("bad payload")
	}
	if a.rejectAt != 0 && height == a.rejectAt {
		return crypto.ZeroHash, errors.New("rejected by app")
	}
	if a.pendOnce[height] {
		delete(a.pendOnce, height)
		return crypto.ZeroHash, consensus.ErrPending
	}
	return digestOf(p), nil
}

func (a *echoApp) OnCommit(height uint64, payload wire.Message) {
	a.commits = append(a.commits, height)
}

func (a *echoApp) HasPendingWork() bool { return a.wantWork && len(a.commits) < int(a.max) }

type rig struct {
	net     *simnet.Network
	engines []*Engine
	apps    []*echoApp
}

func newPBFTRig(t *testing.T, n int, maxBlocks uint64) *rig {
	t.Helper()
	registerPayload()
	RegisterMessages()
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(5 * time.Millisecond), Seed: 3})
	suite := crypto.NewSimSuite(n, 5)
	r := &rig{net: net}
	for i := 0; i < n; i++ {
		app := &echoApp{max: maxBlocks, pendOnce: map[uint64]bool{}}
		e, err := New(Config{
			N: n, Self: wire.NodeID(i), App: app, Signer: suite.Signer(i),
			ViewTimeout: 500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.apps = append(r.apps, app)
		r.engines = append(r.engines, e)
		net.AddNode(wire.NodeID(i), e)
	}
	return r
}

func TestQuorumHelpers(t *testing.T) {
	cases := []struct{ n, f, q int }{{4, 1, 3}, {7, 2, 5}, {10, 3, 7}, {1, 0, 1}}
	for _, c := range cases {
		if consensus.FaultBound(c.n) != c.f {
			t.Fatalf("FaultBound(%d) = %d, want %d", c.n, consensus.FaultBound(c.n), c.f)
		}
		if consensus.Quorum(c.n) != c.q {
			t.Fatalf("Quorum(%d) = %d, want %d", c.n, consensus.Quorum(c.n), c.q)
		}
	}
	if consensus.LeaderOf(5, 4) != 1 {
		t.Fatal("LeaderOf rotation wrong")
	}
}

func TestPBFTCommitsInOrder(t *testing.T) {
	r := newPBFTRig(t, 4, 10)
	r.net.Start()
	r.net.Run(3 * time.Second)
	for i, app := range r.apps {
		if len(app.commits) != 10 {
			t.Fatalf("node %d committed %d blocks, want 10", i, len(app.commits))
		}
		for j, h := range app.commits {
			if h != uint64(j+1) {
				t.Fatalf("node %d commit order broken: %v", i, app.commits)
			}
		}
	}
	committed, vcs := r.engines[0].Stats()
	if committed != 10 || vcs != 0 {
		t.Fatalf("stats = (%d, %d)", committed, vcs)
	}
	if r.engines[0].LastExecuted() != 10 {
		t.Fatalf("LastExecuted = %d", r.engines[0].LastExecuted())
	}
}

func TestPBFTPendingValidationRetries(t *testing.T) {
	r := newPBFTRig(t, 4, 3)
	// Node 2's validation of height 2 pends once; a poke after bundle
	// arrival would normally retry, here the commit of height 1 plus
	// subsequent pokes retry it.
	r.apps[2].pendOnce[2] = true
	r.net.Start()
	// Poke periodically like a data plane would.
	poker := r.engines[2]
	var rearm func()
	deadline := simnet.Epoch.Add(2 * time.Second)
	rearm = func() {
		poker.Poke()
		if r.net.Now().Before(deadline) {
			r.net.Now() // no-op; keep closure simple
		}
	}
	_ = rearm
	r.net.Run(1 * time.Second)
	poker.Poke()
	r.net.Run(3 * time.Second)
	if len(r.apps[2].commits) != 3 {
		t.Fatalf("node 2 committed %d blocks, want 3", len(r.apps[2].commits))
	}
}

func TestPBFTSilentLeaderViewChange(t *testing.T) {
	r := newPBFTRig(t, 4, 5)
	r.net.Crash(0) // leader of view 0 never speaks
	// Followers report pending work so they arm suspicion timers.
	for i := 1; i < 4; i++ {
		r.apps[i].wantWork = true
	}
	r.net.Start()
	for i := 1; i < 4; i++ {
		r.engines[i].Poke()
	}
	r.net.Run(10 * time.Second)
	for i := 1; i < 4; i++ {
		if len(r.apps[i].commits) == 0 {
			t.Fatalf("node %d made no progress after leader crash", i)
		}
		if r.engines[i].View() == 0 {
			t.Fatalf("node %d never changed view", i)
		}
	}
}

func TestPBFTRejectedProposalNotVoted(t *testing.T) {
	r := newPBFTRig(t, 4, 2)
	// All non-leader replicas reject height 1: no quorum forms for it, and
	// because the leader keeps believing in it, nothing commits.
	for i := 1; i < 4; i++ {
		r.apps[i].rejectAt = 1
	}
	r.net.Start()
	r.net.Run(300 * time.Millisecond)
	for i := 1; i < 4; i++ {
		if len(r.apps[i].commits) != 0 {
			t.Fatalf("node %d committed a rejected proposal", i)
		}
	}
}

func TestPBFTMessageCodecs(t *testing.T) {
	registerPayload()
	RegisterMessages()
	suite := crypto.NewSimSuite(4, 5)
	payload := &payloadMsg{N: 7}
	pp := &PrePrepare{View: 1, Seq: 2, Digest: digestOf(payload), Payload: payload, Leader: 1}
	pp.Sig = suite.Signer(1).Sign(pp.signDigest())
	got, err := wire.Roundtrip(pp)
	if err != nil {
		t.Fatal(err)
	}
	gp := got.(*PrePrepare)
	if gp.View != 1 || gp.Seq != 2 || gp.Payload.(*payloadMsg).N != 7 {
		t.Fatalf("PrePrepare roundtrip: %+v", gp)
	}
	if !suite.Signer(0).Verify(1, gp.signDigest(), gp.Sig) {
		t.Fatal("pre-prepare signature lost in roundtrip")
	}
	if len(wire.Marshal(pp)) != pp.WireSize() {
		t.Fatal("PrePrepare WireSize mismatch")
	}

	p := &Prepare{View: 1, Seq: 2, Digest: pp.Digest, Replica: 3, Sig: make([]byte, 64)}
	if got, err := wire.Roundtrip(p); err != nil || got.(*Prepare).Replica != 3 {
		t.Fatalf("Prepare roundtrip: %v", err)
	}
	cm := &Commit{View: 1, Seq: 2, Digest: pp.Digest, Replica: 3, Sig: make([]byte, 64)}
	if got, err := wire.Roundtrip(cm); err != nil || got.(*Commit).Seq != 2 {
		t.Fatalf("Commit roundtrip: %v", err)
	}

	vc := &ViewChange{
		NewViewNum: 3, LastExec: 5, Replica: 2,
		Prepared: []*PreparedEntry{{Seq: 6, View: 2, Digest: pp.Digest, Payload: payload}},
	}
	vc.Sig = suite.Signer(2).Sign(vc.signDigest())
	got2, err := wire.Roundtrip(vc)
	if err != nil {
		t.Fatal(err)
	}
	gv := got2.(*ViewChange)
	if gv.NewViewNum != 3 || len(gv.Prepared) != 1 || gv.Prepared[0].Payload.(*payloadMsg).N != 7 {
		t.Fatalf("ViewChange roundtrip: %+v", gv)
	}
	if !suite.Signer(0).Verify(2, gv.signDigest(), gv.Sig) {
		t.Fatal("view-change signature mismatch after roundtrip")
	}
	if len(wire.Marshal(vc)) != vc.WireSize() {
		t.Fatal("ViewChange WireSize mismatch")
	}

	nv := &NewView{View: 3, LastExec: 5, Leader: 3, Sig: make([]byte, 64)}
	if got, err := wire.Roundtrip(nv); err != nil || got.(*NewView).View != 3 {
		t.Fatalf("NewView roundtrip: %v", err)
	}
	if len(wire.Marshal(nv)) != nv.WireSize() {
		t.Fatal("NewView WireSize mismatch")
	}

	sr := &StatusRequest{Replica: 2}
	if got, err := wire.Roundtrip(sr); err != nil || *got.(*StatusRequest) != *sr {
		t.Fatalf("StatusRequest roundtrip: %v", err)
	}
	if len(wire.Marshal(sr)) != sr.WireSize() {
		t.Fatal("StatusRequest WireSize mismatch")
	}

	st := &StatusReply{View: 4, LastExec: 17, Replica: 1, Sig: make([]byte, 64)}
	got3, err := wire.Roundtrip(st)
	if err != nil {
		t.Fatalf("StatusReply roundtrip: %v", err)
	}
	if g := got3.(*StatusReply); g.View != st.View || g.LastExec != st.LastExec || g.Replica != st.Replica {
		t.Fatal("StatusReply fields changed in roundtrip")
	}
	if len(wire.Marshal(st)) != st.WireSize() {
		t.Fatal("StatusReply WireSize mismatch")
	}
}

func TestVoteDigestDomainSeparation(t *testing.T) {
	d := crypto.HashBytes([]byte("digest"))
	if voteDigest(kindPrepare, 1, 2, d) == voteDigest(kindCommit, 1, 2, d) {
		t.Fatal("prepare and commit digests must differ")
	}
	if voteDigest(kindPrepare, 1, 2, d) == voteDigest(kindPrepare, 1, 3, d) {
		t.Fatal("different seq must give different digests")
	}
}

func TestPBFTConfigValidation(t *testing.T) {
	suite := crypto.NewSimSuite(4, 5)
	app := &echoApp{}
	if _, err := New(Config{N: 0, App: app, Signer: suite.Signer(0)}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := New(Config{N: 4, Self: 4, App: app, Signer: suite.Signer(0)}); err == nil {
		t.Fatal("Self out of range accepted")
	}
	if _, err := New(Config{N: 4, Self: 0, Signer: suite.Signer(0)}); err == nil {
		t.Fatal("nil app accepted")
	}
	if _, err := New(Config{N: 4, Self: 0, App: app}); err == nil {
		t.Fatal("nil signer accepted")
	}
}

func TestPBFTByzantineVoteCannotPoisonSlot(t *testing.T) {
	// A forged Prepare with a bogus digest arriving before the leader's
	// pre-prepare must not prevent the real proposal from being accepted.
	r := newPBFTRig(t, 4, 1)
	r.net.Start()
	// Inject a bogus prepare directly into node 2's engine before anything
	// else: it creates a poisoned slot for seq 1.
	e2 := r.engines[2]
	suite := crypto.NewSimSuite(4, 5)
	bogus := &Prepare{View: 0, Seq: 1, Digest: crypto.HashBytes([]byte("junk")), Replica: 3}
	bogus.Sig = suite.Signer(3).Sign(bogus.signDigest())
	e2.Receive(3, bogus)
	r.net.Run(2 * time.Second)
	if len(r.apps[2].commits) != 1 {
		t.Fatalf("node 2 committed %d blocks, want 1 (slot poisoned?)", len(r.apps[2].commits))
	}
}

func TestPBFTEvidenceCodecs(t *testing.T) {
	registerPayload()
	RegisterMessages()
	suite := crypto.NewSimSuite(4, 5)
	dA := crypto.HashBytes([]byte("digest-a"))
	dB := crypto.HashBytes([]byte("digest-b"))

	pp := &ProposalProof{View: 2, Seq: 9, Digest: dA, Leader: 2,
		Sig: suite.Signer(2).Sign(voteDigest(kindPrePrepare, 2, 9, dA))}
	got, err := wire.Roundtrip(pp)
	if err != nil {
		t.Fatal(err)
	}
	gp := got.(*ProposalProof)
	if gp.View != 2 || gp.Seq != 9 || gp.Digest != dA || gp.Leader != 2 {
		t.Fatalf("ProposalProof roundtrip: %+v", gp)
	}
	if !suite.Signer(0).Verify(2, voteDigest(kindPrePrepare, 2, 9, dA), gp.Sig) {
		t.Fatal("proposal-proof leader signature lost in roundtrip")
	}
	if len(wire.Marshal(pp)) != pp.WireSize() {
		t.Fatal("ProposalProof WireSize mismatch")
	}

	ev := &Evidence{View: 2, Seq: 9, Leader: 2,
		DigestA: dA, SigA: suite.Signer(2).Sign(voteDigest(kindPrePrepare, 2, 9, dA)),
		DigestB: dB, SigB: suite.Signer(2).Sign(voteDigest(kindPrePrepare, 2, 9, dB))}
	got2, err := wire.Roundtrip(ev)
	if err != nil {
		t.Fatal(err)
	}
	ge := got2.(*Evidence)
	if ge.DigestA != dA || ge.DigestB != dB || ge.View != 2 || ge.Seq != 9 {
		t.Fatalf("Evidence roundtrip: %+v", ge)
	}
	if !suite.Signer(0).Verify(2, voteDigest(kindPrePrepare, 2, 9, dB), ge.SigB) {
		t.Fatal("evidence signature lost in roundtrip")
	}
	if len(wire.Marshal(ev)) != ev.WireSize() {
		t.Fatal("Evidence WireSize mismatch")
	}
}

func TestPBFTEvidenceMustVerifyBothHalves(t *testing.T) {
	registerPayload()
	RegisterMessages()
	suite := crypto.NewSimSuite(4, 5)
	app := &echoApp{max: 1}
	e, err := New(Config{N: 4, Self: 1, App: app, Signer: suite.Signer(1)})
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(simnet.Config{Seed: 1})
	net.AddNode(1, e)
	net.Start()

	dA := crypto.HashBytes([]byte("a"))
	dB := crypto.HashBytes([]byte("b"))
	sign := func(d crypto.Hash) []byte {
		return suite.Signer(0).Sign(voteDigest(kindPrePrepare, 0, 1, d))
	}
	// Forged second half: must not count.
	e.Receive(3, &Evidence{View: 0, Seq: 1, Leader: 0,
		DigestA: dA, SigA: sign(dA), DigestB: dB, SigB: []byte("garbage")})
	// Identical digests: not an equivocation.
	e.Receive(3, &Evidence{View: 0, Seq: 1, Leader: 0,
		DigestA: dA, SigA: sign(dA), DigestB: dA, SigB: sign(dA)})
	// Wrong leader for the view: must not count.
	e.Receive(3, &Evidence{View: 0, Seq: 1, Leader: 2,
		DigestA: dA, SigA: sign(dA), DigestB: dB, SigB: sign(dB)})
	if e.Equivocations() != 0 {
		t.Fatalf("bogus evidence counted: %d", e.Equivocations())
	}

	// Authentic evidence: counts once, triggers a view change past the
	// equivocator's view, and a duplicate does not double-count.
	authentic := &Evidence{View: 0, Seq: 1, Leader: 0,
		DigestA: dA, SigA: sign(dA), DigestB: dB, SigB: sign(dB)}
	e.Receive(3, authentic)
	e.Receive(2, authentic)
	if e.Equivocations() != 1 {
		t.Fatalf("Equivocations = %d, want 1", e.Equivocations())
	}
	// A lone replica cannot complete the change (no NewView quorum), but
	// verified evidence must at least start one past the faulty view.
	if !e.inViewChange || e.proposedView == 0 {
		t.Fatal("verified evidence must propose a view change")
	}
}

func TestPBFTEquivocatingLeaderDetectedAndOutrun(t *testing.T) {
	// The view-0 leader equivocates to victims 2 and 3 under a scripted
	// fault window: victims receive correctly-signed conflicting
	// pre-prepares. The detection protocol (ProposalProof exchange →
	// Evidence broadcast → view change) must expose the attack on every
	// replica and move consensus to an honest leader, so commits continue.
	r := newPBFTRig(t, 4, 8)
	suite := crypto.NewSimSuite(4, 5)
	faults.Install(r.net, faults.Schedule{Seed: 9, Actions: []faults.Action{
		faults.EquivocateLeader{Node: 0, Signer: suite.Signer(0),
			Victims: []wire.NodeID{2, 3}, From: 0, To: 2 * time.Second},
	}})
	r.net.Start()
	r.net.Run(10 * time.Second)

	detected := 0
	for i, e := range r.engines {
		if e.Equivocations() > 0 {
			detected++
		}
		if e.View() == 0 {
			t.Fatalf("node %d never left the equivocator's view", i)
		}
	}
	if detected < 3 {
		t.Fatalf("only %d replicas proved the equivocation, want >= 3", detected)
	}
	for i, app := range r.apps {
		if len(app.commits) == 0 {
			t.Fatalf("node %d never committed after the attack", i)
		}
	}
}
