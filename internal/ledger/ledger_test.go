package ledger

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"predis/internal/crypto"
)

// chainOf builds n hash-linked entries.
func chainOf(n int, salt byte) []Entry {
	out := make([]Entry, n)
	parent := crypto.ZeroHash
	for i := range out {
		h := crypto.HashBytes([]byte{salt, byte(i), byte(i >> 8)})
		out[i] = Entry{
			Height:  uint64(i) + 1,
			Hash:    h,
			Parent:  parent,
			TxRoot:  crypto.HashBytes([]byte{0xee, byte(i)}),
			TxCount: uint32(10 + i),
			TxHashes: []crypto.Hash{
				crypto.HashBytes([]byte{1, byte(i)}),
				crypto.HashBytes([]byte{2, byte(i)}),
			},
		}
		parent = h
	}
	return out
}

func TestAppendAndQuery(t *testing.T) {
	l := New()
	for _, e := range chainOf(5, 1) {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	head, ok := l.Head()
	if !ok || head.Height != 5 {
		t.Fatalf("Head = %+v ok=%v", head, ok)
	}
	e3, err := l.Get(3)
	if err != nil || e3.Height != 3 {
		t.Fatalf("Get(3) = %+v, %v", e3, err)
	}
	byHash, err := l.GetByHash(e3.Hash)
	if err != nil || byHash.Height != 3 {
		t.Fatalf("GetByHash = %+v, %v", byHash, err)
	}
	if _, err := l.Get(0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(0) err = %v", err)
	}
	if _, err := l.Get(6); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(6) err = %v", err)
	}
	if _, err := l.GetByHash(crypto.HashBytes([]byte("nope"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetByHash(unknown) err = %v", err)
	}
	if got := l.TotalTxs(); got != 10+11+12+13+14 {
		t.Fatalf("TotalTxs = %d", got)
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRejectsBrokenChains(t *testing.T) {
	l := New()
	chain := chainOf(3, 2)
	if err := l.Append(chain[1]); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order err = %v", err)
	}
	bad := chain[0]
	bad.Parent = crypto.HashBytes([]byte("not zero"))
	if err := l.Append(bad); !errors.Is(err, ErrBadParent) {
		t.Fatalf("bad genesis parent err = %v", err)
	}
	if err := l.Append(chain[0]); err != nil {
		t.Fatal(err)
	}
	wrongParent := chain[1]
	wrongParent.Parent = crypto.HashBytes([]byte("fork"))
	if err := l.Append(wrongParent); !errors.Is(err, ErrBadParent) {
		t.Fatalf("fork err = %v", err)
	}
	if err := l.Append(chain[1]); err != nil {
		t.Fatal(err)
	}
}

func TestFilePersistenceRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	chain := chainOf(8, 3)
	for _, e := range chain {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 8 {
		t.Fatalf("reloaded Len = %d", re.Len())
	}
	if err := re.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	e5, err := re.Get(5)
	if err != nil || e5.TxCount != 14 || len(e5.TxHashes) != 2 {
		t.Fatalf("reloaded Get(5) = %+v, %v", e5, err)
	}
	// Appending continues seamlessly after reload.
	next := Entry{Height: 9, Hash: crypto.HashBytes([]byte("nine")), Parent: chain[7].Hash, TxCount: 1}
	if err := re.Append(next); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ledger")
	l, err := Open(path, WithSync())
	if err != nil {
		t.Fatal(err)
	}
	chain := chainOf(4, 4)
	for _, e := range chain {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a torn write: chop off the last 7 bytes.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 3 {
		t.Fatalf("after torn tail Len = %d, want 3", re.Len())
	}
	// The torn block can be re-appended cleanly.
	if err := re.Append(chain[3]); err != nil {
		t.Fatal(err)
	}
	if re.Len() != 4 {
		t.Fatalf("Len after repair = %d", re.Len())
	}
}

func TestCorruptMiddleRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range chainOf(4, 5) {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 0xff // corrupt a middle record's bytes
	os.WriteFile(path, raw, 0o644)
	re, err := Open(path)
	if err == nil {
		// The flip may land in a hash field: then the chain check catches it.
		defer re.Close()
		if re.Len() == 4 && re.VerifyChain() == nil {
			t.Fatal("corruption went completely undetected")
		}
		return
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestEmptyLedger(t *testing.T) {
	l := New()
	if _, ok := l.Head(); ok {
		t.Fatal("empty ledger has a head")
	}
	if l.Len() != 0 || l.TotalTxs() != 0 {
		t.Fatal("empty ledger non-zero")
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err) // Close without file is a no-op
	}
}

// TestAppendFailedWriteLeavesMemoryUnchanged is the regression test for
// the commit/persist divergence bug: Append used to mutate the in-memory
// chain before the file write, so a write error produced a ledger whose
// Len()/Head() claimed a block the disk never recorded — and a restart
// silently lost it. With the fix, a failed write must leave memory
// exactly at the last durable record, and a reopen must agree.
func TestAppendFailedWriteLeavesMemoryUnchanged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "divergence.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	chain := chainOf(3, 9)
	for _, e := range chain[:2] {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	preHead, _ := l.Head()

	// Inject a write failure: close the backing fd out from under Append.
	if err := l.file.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(chain[2]); err == nil {
		t.Fatal("Append must surface the write error")
	}
	if l.Len() != 2 {
		t.Fatalf("failed write advanced memory: Len = %d, want 2", l.Len())
	}
	if head, ok := l.Head(); !ok || head.Hash != preHead.Hash {
		t.Fatalf("failed write changed Head: %+v", head)
	}
	if _, err := l.GetByHash(chain[2].Hash); err == nil {
		t.Fatal("failed write indexed the unwritten block")
	}
	l.file = nil // already closed; skip the double close

	// A restart sees exactly the pre-failure state and can resume.
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", re.Len())
	}
	if head, ok := re.Head(); !ok || head.Hash != preHead.Hash {
		t.Fatalf("reopened Head = %+v, want %+v", head, preHead)
	}
	if err := re.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	if err := re.Append(chain[2]); err != nil {
		t.Fatalf("resume after failed write: %v", err)
	}
}

// TestReopenAfterTornTailMatchesPreFailureState pairs the torn-write
// truncation with the divergence fix: after a torn tail the reopened
// ledger must agree with what Append had durably acknowledged, entry by
// entry.
func TestReopenAfterTornTailMatchesPreFailureState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tornstate.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	chain := chainOf(5, 11)
	for _, e := range chain {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-13], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 4 {
		t.Fatalf("Len = %d, want 4", re.Len())
	}
	for i := 0; i < 4; i++ {
		got, err := re.Get(uint64(i) + 1)
		if err != nil {
			t.Fatal(err)
		}
		want := chain[i]
		if got.Hash != want.Hash || got.Parent != want.Parent ||
			got.TxRoot != want.TxRoot || got.StateRoot != want.StateRoot ||
			got.TxCount != want.TxCount {
			t.Fatalf("entry %d diverged: %+v vs %+v", i+1, got, want)
		}
	}
	if err := re.VerifyChain(); err != nil {
		t.Fatal(err)
	}
}

// TestStateRootPersisted checks the execution-plane column survives the
// disk roundtrip.
func TestStateRootPersisted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "root.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	e := Entry{
		Height:    1,
		Hash:      crypto.HashBytes([]byte("b1")),
		StateRoot: crypto.HashBytes([]byte("state after b1")),
		TxCount:   3,
	}
	if err := l.Append(e); err != nil {
		t.Fatal(err)
	}
	l.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Get(1)
	if err != nil || got.StateRoot != e.StateRoot {
		t.Fatalf("StateRoot lost across reload: %+v, %v", got, err)
	}
}
