// Package ledger is the committed-block store a full node maintains (§II:
// "a full node maintains the history of the ledger and stands at the
// service of clients"). It records the hash-linked chain of committed
// blocks — height, block hash, parent hash, transaction root and count,
// plus optionally the transaction hashes — in memory with an optional
// append-only file behind it, so a node can restart and resume from its
// persisted history.
//
// The store is independent of consensus flavor: P-PBFT, P-HS, and the
// baselines all produce a hash-linked sequence the ledger can record.
package ledger

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"predis/internal/crypto"
	"predis/internal/wire"
)

// Entry is one committed block's record.
type Entry struct {
	Height uint64
	Hash   crypto.Hash
	Parent crypto.Hash
	TxRoot crypto.Hash
	// StateRoot commits to the account state after executing this block
	// (internal/exec); zero when the node runs without an executor.
	StateRoot crypto.Hash
	TxCount   uint32
	// TxHashes is present when the ledger stores bodies.
	TxHashes []crypto.Hash
}

// encodedSize returns the record body size on disk.
func (e *Entry) encodedSize() int {
	return 8 + 32 + 32 + 32 + 32 + 4 + 4 + 32*len(e.TxHashes)
}

func (e *Entry) encodeTo(enc *wire.Encoder) {
	enc.U64(e.Height)
	enc.Bytes32(e.Hash)
	enc.Bytes32(e.Parent)
	enc.Bytes32(e.TxRoot)
	enc.Bytes32(e.StateRoot)
	enc.U32(e.TxCount)
	enc.U32(uint32(len(e.TxHashes)))
	for _, h := range e.TxHashes {
		enc.Bytes32(h)
	}
}

func decodeEntry(d *wire.Decoder) (*Entry, error) {
	e := &Entry{
		Height:    d.U64(),
		Hash:      d.Bytes32(),
		Parent:    d.Bytes32(),
		TxRoot:    d.Bytes32(),
		StateRoot: d.Bytes32(),
		TxCount:   d.U32(),
	}
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining()/32 {
		return nil, wire.ErrTruncated
	}
	e.TxHashes = make([]crypto.Hash, n)
	for i := range e.TxHashes {
		e.TxHashes[i] = d.Bytes32()
	}
	return e, d.Err()
}

// Errors.
var (
	ErrOutOfOrder = errors.New("ledger: append out of order")
	ErrBadParent  = errors.New("ledger: parent hash does not match head")
	ErrNotFound   = errors.New("ledger: no such block")
	ErrCorrupt    = errors.New("ledger: corrupt record")
)

// Ledger is the store. Safe for concurrent use: protocol handlers append
// from their executor while other goroutines (CLIs, servers) read.
type Ledger struct {
	mu      sync.RWMutex
	entries []Entry
	byHash  map[crypto.Hash]int
	file    *os.File
	sync    bool
}

// Option configures a Ledger.
type Option func(*Ledger)

// WithSync fsyncs after every append (durable but slower).
func WithSync() Option {
	return func(l *Ledger) { l.sync = true }
}

// New creates an in-memory ledger.
func New(opts ...Option) *Ledger {
	l := &Ledger{byHash: make(map[crypto.Hash]int)}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Open creates (or reloads) a file-backed ledger at path. Records already
// on disk are loaded and validated; a trailing partial record (torn write)
// is truncated away.
func Open(path string, opts ...Option) (*Ledger, error) {
	l := New(opts...)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: open %s: %w", path, err)
	}
	l.file = f
	valid, err := l.reload()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// reload parses the file and returns the length of its valid prefix.
func (l *Ledger) reload() (int64, error) {
	data, err := io.ReadAll(l.file)
	if err != nil {
		return 0, err
	}
	off := int64(0)
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < 4 {
			break // torn length prefix
		}
		d := wire.NewDecoder(rest)
		recLen := int(d.U32())
		if recLen <= 0 || recLen > len(rest)-4 {
			break // torn record
		}
		e, err := decodeEntry(wire.NewDecoder(rest[4 : 4+recLen]))
		if err != nil {
			break
		}
		if err := l.appendMem(*e); err != nil {
			return 0, fmt.Errorf("%w at offset %d: %v", ErrCorrupt, off, err)
		}
		off += int64(4 + recLen)
	}
	return off, nil
}

// Close releases the backing file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	err := l.file.Close()
	l.file = nil
	return err
}

// checkLink validates that e extends the in-memory chain. It does not
// mutate anything.
func (l *Ledger) checkLink(e *Entry) error {
	if e.Height != uint64(len(l.entries))+1 {
		return fmt.Errorf("%w: height %d, want %d", ErrOutOfOrder, e.Height, len(l.entries)+1)
	}
	if len(l.entries) == 0 {
		if !e.Parent.IsZero() {
			return fmt.Errorf("%w: first block must have zero parent", ErrBadParent)
		}
	} else if prev := l.entries[len(l.entries)-1]; e.Parent != prev.Hash {
		return fmt.Errorf("%w: height %d", ErrBadParent, e.Height)
	}
	return nil
}

// commitMem appends a link-checked entry to the in-memory chain.
func (l *Ledger) commitMem(e Entry) {
	l.entries = append(l.entries, e)
	l.byHash[e.Hash] = len(l.entries) - 1
}

// appendMem validates chain linkage and appends in memory (reload path:
// the record is already durable).
func (l *Ledger) appendMem(e Entry) error {
	if err := l.checkLink(&e); err != nil {
		return err
	}
	l.commitMem(e)
	return nil
}

// Append records a committed block. Blocks must arrive in chain order.
//
// Durability runs ahead of visibility: the record is encoded and written
// (and optionally fsynced) before the in-memory chain advances, so a
// failed write leaves Len()/Head() — and therefore every reader and the
// node's notion of its own history — exactly where the last durable
// record left them. The previous ordering mutated memory first, and a
// write error silently produced a node that believed in a block its
// restart would never see.
func (l *Ledger) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkLink(&e); err != nil {
		return err
	}
	if l.file != nil {
		enc := wire.NewEncoder(4 + e.encodedSize())
		at := enc.Skip(4)
		e.encodeTo(enc)
		enc.PatchU32(at, uint32(enc.Len()-4))
		if _, err := l.file.Write(enc.Bytes()); err != nil {
			return fmt.Errorf("ledger: write: %w", err)
		}
		if l.sync {
			if err := l.file.Sync(); err != nil {
				return fmt.Errorf("ledger: fsync: %w", err)
			}
		}
	}
	l.commitMem(e)
	return nil
}

// Len returns the number of committed blocks.
func (l *Ledger) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Head returns the latest entry; ok=false when empty.
func (l *Ledger) Head() (Entry, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.entries) == 0 {
		return Entry{}, false
	}
	return l.entries[len(l.entries)-1], true
}

// Get returns the entry at a height (1-based).
func (l *Ledger) Get(height uint64) (Entry, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if height == 0 || height > uint64(len(l.entries)) {
		return Entry{}, fmt.Errorf("%w: height %d of %d", ErrNotFound, height, len(l.entries))
	}
	return l.entries[height-1], nil
}

// GetByHash returns the entry with the given block hash.
func (l *Ledger) GetByHash(h crypto.Hash) (Entry, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	i, ok := l.byHash[h]
	if !ok {
		return Entry{}, fmt.Errorf("%w: hash %s", ErrNotFound, h.Short())
	}
	return l.entries[i], nil
}

// TotalTxs sums transaction counts across the chain.
func (l *Ledger) TotalTxs() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var n uint64
	for _, e := range l.entries {
		n += uint64(e.TxCount)
	}
	return n
}

// VerifyChain re-checks every parent link; it is cheap insurance after a
// reload from disk.
func (l *Ledger) VerifyChain() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	prev := crypto.ZeroHash
	for i, e := range l.entries {
		if e.Height != uint64(i)+1 {
			return fmt.Errorf("%w: height %d at index %d", ErrCorrupt, e.Height, i)
		}
		if e.Parent != prev {
			return fmt.Errorf("%w: parent link broken at height %d", ErrCorrupt, e.Height)
		}
		prev = e.Hash
	}
	return nil
}
