package merkle

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"predis/internal/crypto"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := NewTree(nil)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Root().IsZero() {
		t.Fatal("empty tree root must be zero")
	}
	if Root(nil) != crypto.ZeroHash {
		t.Fatal("Root(nil) must be zero")
	}
	if _, err := tr.Proof(0); err == nil {
		t.Fatal("Proof on empty tree must fail")
	}
}

func TestSingleLeaf(t *testing.T) {
	ls := leaves(1)
	tr := NewTree(ls)
	if tr.Root() != HashLeaf(ls[0]) {
		t.Fatal("single-leaf root must be the leaf hash")
	}
	proof, err := tr.Proof(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) != 0 {
		t.Fatalf("single-leaf proof length = %d", len(proof))
	}
	if !Verify(tr.Root(), ls[0], 0, 1, proof) {
		t.Fatal("single-leaf proof rejected")
	}
}

func TestRootMatchesTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 50, 100} {
		ls := leaves(n)
		if Root(ls) != NewTree(ls).Root() {
			t.Fatalf("n=%d: streaming Root differs from Tree root", n)
		}
	}
}

func TestRootOfHashesMatches(t *testing.T) {
	ls := leaves(13)
	hs := make([]crypto.Hash, len(ls))
	for i, l := range ls {
		hs[i] = HashLeaf(l)
	}
	if RootOfHashes(hs) != Root(ls) {
		t.Fatal("RootOfHashes differs from Root")
	}
	if NewTreeFromHashes(hs).Root() != Root(ls) {
		t.Fatal("NewTreeFromHashes differs from Root")
	}
}

func TestProofsAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13, 16, 17, 31, 50} {
		ls := leaves(n)
		tr := NewTree(ls)
		root := tr.Root()
		for i := 0; i < n; i++ {
			proof, err := tr.Proof(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !Verify(root, ls[i], i, n, proof) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
			if got := ProofSize(n, i); got != len(proof)*crypto.HashSize {
				t.Fatalf("n=%d i=%d: ProofSize=%d want %d", n, i, got, len(proof)*crypto.HashSize)
			}
		}
	}
}

func TestProofRejectsWrongLeaf(t *testing.T) {
	ls := leaves(10)
	tr := NewTree(ls)
	proof, _ := tr.Proof(3)
	if Verify(tr.Root(), []byte("forged"), 3, 10, proof) {
		t.Fatal("forged leaf accepted")
	}
	if Verify(tr.Root(), ls[3], 4, 10, proof) {
		t.Fatal("wrong index accepted")
	}
	// Note: the leaf total is not authenticated by the proof itself; callers
	// commit to it externally (bundle headers carry the tx count). A total
	// implying a different tree shape is rejected via proof length:
	if Verify(tr.Root(), ls[3], 3, 5, proof) {
		t.Fatal("total implying shorter proof accepted")
	}
}

func TestProofRejectsTamperedPath(t *testing.T) {
	ls := leaves(16)
	tr := NewTree(ls)
	proof, _ := tr.Proof(5)
	proof[1][0] ^= 0xff
	if Verify(tr.Root(), ls[5], 5, 16, proof) {
		t.Fatal("tampered proof accepted")
	}
}

func TestProofRejectsWrongLength(t *testing.T) {
	ls := leaves(8)
	tr := NewTree(ls)
	proof, _ := tr.Proof(2)
	if Verify(tr.Root(), ls[2], 2, 8, proof[:len(proof)-1]) {
		t.Fatal("short proof accepted")
	}
	longer := append(append([]crypto.Hash{}, proof...), crypto.Hash{})
	if Verify(tr.Root(), ls[2], 2, 8, longer) {
		t.Fatal("padded proof accepted")
	}
}

func TestVerifyBadIndices(t *testing.T) {
	ls := leaves(4)
	tr := NewTree(ls)
	proof, _ := tr.Proof(0)
	if Verify(tr.Root(), ls[0], -1, 4, proof) {
		t.Fatal("negative index accepted")
	}
	if Verify(tr.Root(), ls[0], 0, 0, nil) {
		t.Fatal("zero total accepted")
	}
}

func TestLeafDomainSeparation(t *testing.T) {
	// The root of [a,b] must differ from the leaf hash of hashNode-style
	// concatenation; more simply, a leaf equal to an interior encoding must
	// not collide. We check the prefixes produce different digests.
	data := []byte("payload")
	if HashLeaf(data) == crypto.HashBytes(data) {
		t.Fatal("leaf hashing must be domain separated from plain hashing")
	}
}

func TestDifferentOrderDifferentRoot(t *testing.T) {
	a := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	b := [][]byte{[]byte("b"), []byte("a"), []byte("c")}
	if Root(a) == Root(b) {
		t.Fatal("leaf order must affect the root")
	}
}

func TestQuickProofRoundtrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}
	f := func(raw [][]byte, pick uint8) bool {
		if len(raw) == 0 {
			return true
		}
		i := int(pick) % len(raw)
		tr := NewTree(raw)
		proof, err := tr.Proof(i)
		if err != nil {
			return false
		}
		return Verify(tr.Root(), raw[i], i, len(raw), proof)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRoot50(b *testing.B) {
	// 50 transactions per bundle is the paper's default bundle size.
	ls := leaves(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Root(ls)
	}
}

func BenchmarkProofVerify(b *testing.B) {
	ls := leaves(1024)
	tr := NewTree(ls)
	proof, _ := tr.Proof(511)
	root := tr.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(root, ls[511], 511, 1024, proof) {
			b.Fatal("verify failed")
		}
	}
}
