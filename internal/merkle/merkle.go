// Package merkle implements a binary Merkle tree with inclusion proofs.
//
// The tree is used in two places in the data flow framework:
//
//   - each bundle header carries the Merkle root of its transaction list so
//     a Predis block commits to transactions without carrying them;
//   - each bundle header carries the Merkle root of its erasure-coded
//     stripes so Multi-Zone relayers can verify a stripe in isolation
//     (§IV-D: "the sender should attach the bundle header and a Merkle
//     proof of the stripe").
//
// Leaves and interior nodes are hashed with distinct domain-separation
// prefixes to rule out second-preimage attacks that reinterpret an interior
// node as a leaf. Odd nodes are promoted to the next level unchanged (no
// duplication), so the tree of n leaves has the canonical shape for any n.
package merkle

import (
	"errors"
	"math/bits"

	"predis/internal/crypto"
)

var (
	leafPrefix = []byte{0x00}
	nodePrefix = []byte{0x01}
)

// ErrIndexOutOfRange is returned by Proof for a leaf index outside the tree.
var ErrIndexOutOfRange = errors.New("merkle: leaf index out of range")

// HashLeaf returns the domain-separated digest of a leaf payload.
func HashLeaf(data []byte) crypto.Hash {
	return crypto.HashConcat(leafPrefix, data)
}

// HashLeaves fills dst[i] = HashLeaf(leaves[i]) and returns dst,
// allocating it when nil. It is the batched leaf kernel: one call per
// stripe set or transaction list, and — because each index writes only
// its own slot — a natural unit to fork-join over a compute pool.
func HashLeaves(dst []crypto.Hash, leaves [][]byte) []crypto.Hash {
	if dst == nil {
		dst = make([]crypto.Hash, len(leaves))
	}
	for i, l := range leaves {
		dst[i] = HashLeaf(l)
	}
	return dst
}

// hashNode combines two child digests.
func hashNode(l, r crypto.Hash) crypto.Hash {
	return crypto.HashConcat(nodePrefix, l[:], r[:])
}

// Root computes the Merkle root of the given leaf payloads without
// materializing the whole tree. The root of zero leaves is the zero hash.
func Root(leaves [][]byte) crypto.Hash {
	if len(leaves) == 0 {
		return crypto.ZeroHash
	}
	level := make([]crypto.Hash, len(leaves))
	for i, l := range leaves {
		level[i] = HashLeaf(l)
	}
	return rootOfLevel(level)
}

// RootOfHashes computes the Merkle root over pre-hashed leaves. The caller
// must have produced the digests with HashLeaf.
func RootOfHashes(leaves []crypto.Hash) crypto.Hash {
	if len(leaves) == 0 {
		return crypto.ZeroHash
	}
	level := make([]crypto.Hash, len(leaves))
	copy(level, leaves)
	return rootOfLevel(level)
}

func rootOfLevel(level []crypto.Hash) crypto.Hash {
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // promote odd node
			}
		}
		level = next
	}
	return level[0]
}

// Tree is a fully materialized Merkle tree supporting proof generation.
type Tree struct {
	levels [][]crypto.Hash // levels[0] = leaf digests, last = [root]
	n      int
}

// NewTree builds a tree over the leaf payloads.
func NewTree(leaves [][]byte) *Tree {
	return NewTreeFromHashes(HashLeaves(nil, leaves))
}

// NewTreeFromHashes builds a tree over pre-hashed leaves (see HashLeaf).
func NewTreeFromHashes(hashes []crypto.Hash) *Tree {
	t := &Tree{n: len(hashes)}
	if len(hashes) == 0 {
		return t
	}
	level := make([]crypto.Hash, len(hashes))
	copy(level, hashes)
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]crypto.Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// Len returns the number of leaves.
func (t *Tree) Len() int { return t.n }

// Root returns the tree's root, or the zero hash for an empty tree.
func (t *Tree) Root() crypto.Hash {
	if t.n == 0 {
		return crypto.ZeroHash
	}
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// Proof returns the sibling path for leaf i, ordered leaf-to-root. Promoted
// odd nodes contribute no sibling at that level.
func (t *Tree) Proof(i int) ([]crypto.Hash, error) {
	if i < 0 || i >= t.n {
		return nil, ErrIndexOutOfRange
	}
	proof := make([]crypto.Hash, 0, bits.Len(uint(t.n)))
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		sib := idx ^ 1
		if sib < len(level) {
			proof = append(proof, level[sib])
		}
		idx >>= 1
	}
	return proof, nil
}

// ProofSize returns the wire size in bytes of a proof for a tree of n
// leaves at leaf index i (each element is one digest).
func ProofSize(n, i int) int {
	count := 0
	idx := i
	for n > 1 {
		if idx^1 < n {
			count++
		}
		idx >>= 1
		n = (n + 1) / 2
	}
	return count * crypto.HashSize
}

// Verify checks that leaf payload data sits at index i of a tree with the
// given total leaf count and root.
func Verify(root crypto.Hash, data []byte, i, total int, proof []crypto.Hash) bool {
	return VerifyHash(root, HashLeaf(data), i, total, proof)
}

// VerifyHash checks a proof against a pre-hashed leaf.
func VerifyHash(root crypto.Hash, leaf crypto.Hash, i, total int, proof []crypto.Hash) bool {
	if i < 0 || i >= total || total <= 0 {
		return false
	}
	h := leaf
	idx, n, p := i, total, 0
	for n > 1 {
		if idx^1 < n { // sibling exists at this level
			if p >= len(proof) {
				return false
			}
			if idx&1 == 0 {
				h = hashNode(h, proof[p])
			} else {
				h = hashNode(proof[p], h)
			}
			p++
		}
		idx >>= 1
		n = (n + 1) / 2
	}
	return p == len(proof) && h == root
}
