// Package consensus defines the contract between BFT consensus engines
// (internal/pbft, internal/hotstuff) and the applications that feed them
// proposals (the baseline transaction-batch app in internal/txpool and the
// Predis app in internal/core).
//
// The engine owns ordering: it decides when the local node should propose,
// validates ordering-level rules (views, quorums, signatures), and delivers
// committed payloads in strict height order. The application owns content:
// it builds proposal payloads, validates their semantic rules, and executes
// them at commit.
package consensus

import (
	"errors"

	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/wire"
)

// ErrPending signals that a proposal cannot be validated *yet* — typically
// because referenced bundles have not arrived (§III-B check 3). The engine
// must not vote, must not treat the proposal as invalid, and should retry
// validation when the application calls Poke on it.
var ErrPending = errors.New("consensus: proposal validation pending on missing data")

// Application supplies and consumes proposal payloads.
//
// All methods are called from the node's serialized executor, so
// implementations need no locking. Payload messages must be treated as
// immutable.
// Proposals form a chain: every payload at height h has a parent payload at
// height h−1 (nil at height 1). Sequential engines (PBFT) pass the last
// *executed* payload as the parent; pipelined engines (chained HotStuff)
// pass the payload of the parent block in their block tree, which may be
// uncommitted. Applications must therefore build and validate relative to
// the parent payload, not to committed state.
type Application interface {
	// BuildProposal asks the application for the payload of the block at
	// the given height extending parent (nil for the first block). It
	// returns the payload, its digest (the value replicas sign), and
	// ok=false when there is nothing to propose yet; the engine will
	// retry after Poke or on its re-proposal timer.
	BuildProposal(height uint64, parent wire.Message) (payload wire.Message, digest crypto.Hash, ok bool)

	// ValidateProposal checks a payload proposed by the leader for the
	// given height against its parent payload and returns its digest. A
	// nil error means the replica may vote. ErrPending means "cannot
	// decide yet"; any other error means the payload is invalid and must
	// not be voted for.
	ValidateProposal(height uint64, payload, parent wire.Message) (crypto.Hash, error)

	// OnCommit delivers a committed payload. Engines call it exactly once
	// per height, in strictly increasing height order.
	OnCommit(height uint64, payload wire.Message)
}

// WorkReporter is an optional Application extension. Engines use it to arm
// leader-suspicion timers only when the application actually has pending
// work (§III-D: a node suspects the leader when bundles arrive but no block
// follows). Without it, engines never suspect an idle leader.
type WorkReporter interface {
	// HasPendingWork reports whether uncommitted application work exists
	// (queued transactions or unconfirmed bundles).
	HasPendingWork() bool
}

// ProposalEvicter is an optional Application extension for streaming
// commit mode. Engines call it when they abandon a proposal payload that
// will never commit under the current history — PBFT deletes in-flight
// instances on a view change, chained HotStuff prunes forks abandoned by
// the committed chain — so the application can retract any speculative
// side effects (Predis tells Multi-Zone distributors to push a spec
// discard to full nodes). Eviction is advisory: the same payload may be
// re-proposed later and commit, so implementations must key retraction by
// payload identity, not by slot. Engines never call it for payloads they
// have already delivered via OnCommit.
type ProposalEvicter interface {
	// OnProposalEvicted reports that the engine dropped the payload it
	// was ordering at the given height without committing it.
	OnProposalEvicted(height uint64, payload wire.Message)
}

// Engine is the surface a node uses to drive a consensus instance.
type Engine interface {
	env.Handler
	// Poke tells the engine that application state changed: a pending
	// validation may now succeed, or a proposal can now be built. Engines
	// must tolerate spurious pokes.
	Poke()
}

// FastForwarder is an optional Engine extension for crash recovery. When
// an application learns committed blocks out of band (the Predis catch-up
// protocol fetches them from f+1 peers after a restart), it fast-forwards
// the engine past those heights so the engine does not wait for commit
// quorums that finished while the node was down. payload is the payload
// executed at height, which becomes the parent link for height+1.
// Implementations must ignore calls with height ≤ their last executed
// height.
type FastForwarder interface {
	FastForward(height uint64, payload wire.Message)
}

// LeaderOf returns the round-robin leader index for a view among n
// replicas. Both PBFT (view) and HotStuff (view/round) use this schedule.
func LeaderOf(view uint64, n int) wire.NodeID {
	return wire.NodeID(view % uint64(n))
}

// Quorum returns the vote quorum 2f+1 for n = 3f+1 replicas; more
// generally n − f with f = (n−1)/3.
func Quorum(n int) int {
	f := (n - 1) / 3
	return n - f
}

// FaultBound returns f = (n−1)/3, the number of Byzantine replicas the
// configuration tolerates.
func FaultBound(n int) int { return (n - 1) / 3 }
