package consensus

import "testing"

func TestLeaderRotation(t *testing.T) {
	n := 4
	seen := make(map[uint32]bool)
	for v := uint64(0); v < 8; v++ {
		l := LeaderOf(v, n)
		seen[uint32(l)] = true
		if int(l) >= n {
			t.Fatalf("leader %d out of range", l)
		}
	}
	if len(seen) != n {
		t.Fatalf("rotation visited %d leaders, want %d", len(seen), n)
	}
	if LeaderOf(0, 4) != 0 || LeaderOf(5, 4) != 1 {
		t.Fatal("round-robin schedule wrong")
	}
}

func TestQuorumAndFaultBound(t *testing.T) {
	cases := []struct{ n, f, q int }{
		{1, 0, 1}, {2, 0, 2}, {3, 0, 3},
		{4, 1, 3}, {5, 1, 4}, {6, 1, 5},
		{7, 2, 5}, {10, 3, 7}, {13, 4, 9},
		{16, 5, 11}, {80, 26, 54},
	}
	for _, c := range cases {
		if got := FaultBound(c.n); got != c.f {
			t.Errorf("FaultBound(%d) = %d, want %d", c.n, got, c.f)
		}
		if got := Quorum(c.n); got != c.q {
			t.Errorf("Quorum(%d) = %d, want %d", c.n, got, c.q)
		}
	}
	// Quorum intersection: any two quorums of n−f nodes intersect in at
	// least f+1 nodes, so at least one honest node is in both.
	for n := 4; n <= 100; n++ {
		f := FaultBound(n)
		q := Quorum(n)
		if 2*q-n < f+1 {
			t.Fatalf("n=%d: quorum intersection %d < f+1=%d", n, 2*q-n, f+1)
		}
	}
}

func TestErrPendingIdentity(t *testing.T) {
	if ErrPending == nil || ErrPending.Error() == "" {
		t.Fatal("ErrPending must be a real sentinel")
	}
}
