// Package types holds the data types shared by every layer of the stack:
// transactions, transaction batches, and the client-facing submit/reply
// messages. Protocol-specific structures (bundles, Predis blocks, consensus
// votes) live with their protocols.
package types

import (
	"encoding/binary"
	"fmt"
	"time"

	"predis/internal/crypto"
	"predis/internal/wire"
)

// DefaultTxSize is the paper's transaction size (§V: "every transaction has
// 512 bytes").
const DefaultTxSize = 512

// txFixedLen is the number of bytes of real fields in an encoded
// transaction (header plus the op kind byte); the remainder up to Size —
// after the op payload — is deterministic zero padding standing in for
// the client's payload and signature.
const txFixedLen = 4 + 8 + 4 + 8 + 1

// MinTxSize is the smallest representable transaction.
const MinTxSize = txFixedLen

// Transaction is a client request. The payload is synthetic: benchmarks
// need transactions of a given wire size, not meaningful bodies, so the
// encoded form carries (Client, Seq, Size, Submitted), an optional
// semantic operation, and deterministic padding up to Size. Its identity
// is the hash of the real fields, op included.
type Transaction struct {
	// Client identifies the submitting client (a node ID in the runtime).
	Client wire.NodeID
	// Seq is the client-local sequence number; (Client, Seq) is unique.
	Seq uint64
	// Size is the full encoded size of the transaction in bytes.
	Size uint32
	// Submitted is the submission time as nanoseconds since the simulation
	// epoch; carried on the wire so any replica can compute end-to-end
	// latency for measurement.
	Submitted int64
	// Op is the semantic operation the execution plane applies at commit;
	// the zero value (OpOpaque) keeps the transaction a pure payload.
	Op Op

	hash    crypto.Hash
	hashSet bool
}

// NewTransaction builds a transaction with the given identity and size.
// Sizes below MinTxSize are raised to it.
func NewTransaction(client wire.NodeID, seq uint64, size uint32, submitted time.Duration) *Transaction {
	if size < MinTxSize {
		size = MinTxSize
	}
	return &Transaction{Client: client, Seq: seq, Size: size, Submitted: int64(submitted)}
}

// Hash returns the transaction identity, computed lazily and cached. It
// covers the real fields only (padding is deterministic).
func (t *Transaction) Hash() crypto.Hash {
	if !t.hashSet {
		t.hash = t.HashStateless()
		t.hashSet = true
	}
	return t.hash
}

// HashStateless computes the transaction identity without reading or
// writing the memo, so it is safe to call from compute-pool workers
// while the event loop concurrently memoizes Hash() on the same
// transaction (the memo fields are disjoint from the identity fields).
// The identity covers the op: two transactions differing only in their
// semantic effect must not collide.
func (t *Transaction) HashStateless() crypto.Hash {
	var arr [txFixedLen + maxOpPayload]byte
	b := arr[:0]
	b = binary.BigEndian.AppendUint32(b, uint32(t.Client))
	b = binary.BigEndian.AppendUint64(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Size)
	b = binary.BigEndian.AppendUint64(b, uint64(t.Submitted))
	b = append(b, byte(t.Op.Kind))
	b = t.Op.appendPayload(b)
	return crypto.HashBytes(b)
}

// WithOp attaches a semantic operation, growing Size when the op payload
// does not fit the declared wire size. Call it before the first Hash():
// the op is part of the transaction's identity.
func (t *Transaction) WithOp(op Op) *Transaction {
	t.Op = op
	if min := txFixedLen + op.payloadLen(); int(t.Size) < min {
		t.Size = uint32(min)
	}
	return t
}

// PrimeHash installs a hash computed elsewhere (a compute-pool worker
// via HashStateless) into the memo. Call it only from the goroutine
// that owns the transaction's memo — in the simulator, the event loop
// at a deterministic join point — and only with the value
// HashStateless returns; an already-set memo is left untouched.
func (t *Transaction) PrimeHash(h crypto.Hash) {
	if !t.hashSet {
		t.hash = h
		t.hashSet = true
	}
}

// EncodedSize returns the wire size of the transaction body (no frame).
func (t *Transaction) EncodedSize() int { return int(t.Size) }

// zeroPad is a shared read-only buffer for transaction padding, so
// EncodeTo never allocates a throwaway zero slice per transaction (the
// encode path runs once per tx per hop — it is the hottest serializer
// in the system).
var zeroPad = make([]byte, 4096)

// EncodeTo appends the transaction to an encoder.
//
//predis:hotpath
func (t *Transaction) EncodeTo(e *wire.Encoder) {
	e.Node(t.Client)
	e.U64(t.Seq)
	e.U32(t.Size)
	e.U64(uint64(t.Submitted))
	e.U8(uint8(t.Op.Kind))
	var arr [maxOpPayload]byte
	e.Raw(t.Op.appendPayload(arr[:0]))
	pad := int(t.Size) - txFixedLen - t.Op.payloadLen()
	for pad > 0 {
		n := pad
		if n > len(zeroPad) {
			n = len(zeroPad)
		}
		e.Raw(zeroPad[:n])
		pad -= n
	}
}

// DecodeTx reads one transaction from a decoder.
func DecodeTx(d *wire.Decoder) (*Transaction, error) {
	t := &Transaction{
		Client:    d.Node(),
		Seq:       d.U64(),
		Size:      d.U32(),
		Submitted: int64(d.U64()),
	}
	kind := OpKind(d.U8())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if kind >= opKindEnd {
		return nil, fmt.Errorf("types: unknown op kind %d", kind)
	}
	op, err := decodeOpPayload(kind, d)
	if err != nil {
		return nil, err
	}
	t.Op = op
	if t.Size < MinTxSize {
		return nil, fmt.Errorf("types: transaction size %d below minimum %d", t.Size, MinTxSize)
	}
	pad := int(t.Size) - txFixedLen - op.payloadLen()
	if pad < 0 {
		return nil, fmt.Errorf("types: op payload overflows declared size %d", t.Size)
	}
	d.Pad(pad)
	return t, d.Err()
}

// EncodeTxs appends a length-prefixed transaction list.
func EncodeTxs(e *wire.Encoder, txs []*Transaction) {
	e.U32(uint32(len(txs)))
	for _, t := range txs {
		t.EncodeTo(e)
	}
}

// DecodeTxs reads a length-prefixed transaction list.
func DecodeTxs(d *wire.Decoder) ([]*Transaction, error) {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining()/MinTxSize {
		return nil, fmt.Errorf("types: tx count %d exceeds buffer", n)
	}
	out := make([]*Transaction, 0, n)
	for i := 0; i < n; i++ {
		t, err := DecodeTx(d)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// SizeTxs returns the encoded size of a transaction list.
func SizeTxs(txs []*Transaction) int {
	n := 4
	for _, t := range txs {
		n += t.EncodedSize()
	}
	return n
}

// TxHashes returns the identity hashes of a transaction list.
func TxHashes(txs []*Transaction) []crypto.Hash {
	out := make([]crypto.Hash, len(txs))
	for i, t := range txs {
		out[i] = t.Hash()
	}
	return out
}

// TotalBytes sums the encoded sizes of a transaction list.
func TotalBytes(txs []*Transaction) int {
	n := 0
	for _, t := range txs {
		n += t.EncodedSize()
	}
	return n
}
