package types

import (
	"sync"

	"predis/internal/wire"
)

// Message type tags for the client plane.
const (
	TypeSubmitTx   = wire.TypeRangeClient + 1
	TypeBlockReply = wire.TypeRangeClient + 2
)

// SubmitTx carries one transaction from a client to a node.
type SubmitTx struct {
	Tx *Transaction
	// Target optionally names the consensus node that should pack this
	// transaction (§IV-D's second dissemination strategy); NoNode means
	// the receiving node decides.
	Target wire.NodeID
}

var _ wire.Message = (*SubmitTx)(nil)

// Type implements wire.Message.
func (m *SubmitTx) Type() wire.Type { return TypeSubmitTx }

// WireSize implements wire.Message.
func (m *SubmitTx) WireSize() int {
	return wire.FrameOverhead + 4 + m.Tx.EncodedSize()
}

// EncodeBody implements wire.Message.
func (m *SubmitTx) EncodeBody(e *wire.Encoder) {
	e.Node(m.Target)
	m.Tx.EncodeTo(e)
}

func decodeSubmitTx(d *wire.Decoder) (wire.Message, error) {
	target := d.Node()
	tx, err := DecodeTx(d)
	if err != nil {
		return nil, err
	}
	return &SubmitTx{Tx: tx, Target: target}, d.Err()
}

// BlockReply tells a client that a block containing some of its
// transactions committed. Replies are batched per (client, block): each
// replica sends one reply listing the client's committed sequence numbers,
// and the client counts a transaction as done after f+1 matching replies
// (the standard BFT reply rule). The reply consumes bandwidth like any
// other message, reproducing the paper's note that replying to clients
// competes with bundle production (§III-F).
type BlockReply struct {
	// Height is the committed block height.
	Height uint64
	// Replica is the responding consensus node.
	Replica wire.NodeID
	// Seqs lists the client's transaction sequence numbers in the block.
	Seqs []uint64
}

var _ wire.Message = (*BlockReply)(nil)

// Type implements wire.Message.
func (m *BlockReply) Type() wire.Type { return TypeBlockReply }

// WireSize implements wire.Message.
func (m *BlockReply) WireSize() int {
	return wire.FrameOverhead + 8 + 4 + wire.SizeU64Slice(m.Seqs)
}

// EncodeBody implements wire.Message.
func (m *BlockReply) EncodeBody(e *wire.Encoder) {
	e.U64(m.Height)
	e.Node(m.Replica)
	e.U64Slice(m.Seqs)
}

func decodeBlockReply(d *wire.Decoder) (wire.Message, error) {
	m := &BlockReply{Height: d.U64(), Replica: d.Node(), Seqs: d.U64Slice()}
	return m, d.Err()
}

var registerOnce sync.Once

// RegisterMessages registers the client-plane message types. Safe to call
// from multiple packages; registration happens once.
func RegisterMessages() {
	registerOnce.Do(func() {
		wire.Register(TypeSubmitTx, "client.submit", decodeSubmitTx)
		wire.Register(TypeBlockReply, "client.reply", decodeBlockReply)
	})
}
