package types

import (
	"testing"
	"testing/quick"
	"time"

	"predis/internal/wire"
)

func TestTransactionHashIdentity(t *testing.T) {
	a := NewTransaction(1, 2, 512, time.Second)
	b := NewTransaction(1, 2, 512, time.Second)
	if a.Hash() != b.Hash() {
		t.Fatal("identical transactions must hash equal")
	}
	c := NewTransaction(1, 3, 512, time.Second)
	if a.Hash() == c.Hash() {
		t.Fatal("different seq must hash differently")
	}
	d := NewTransaction(2, 2, 512, time.Second)
	if a.Hash() == d.Hash() {
		t.Fatal("different client must hash differently")
	}
}

func TestTransactionMinSize(t *testing.T) {
	tx := NewTransaction(1, 1, 1, 0)
	if tx.Size != MinTxSize {
		t.Fatalf("Size = %d, want raised to %d", tx.Size, MinTxSize)
	}
}

func TestTransactionEncodedSizeExact(t *testing.T) {
	for _, size := range []uint32{MinTxSize, 100, 512, 4096} {
		tx := NewTransaction(3, 7, size, 5*time.Millisecond)
		e := wire.NewEncoder(int(size))
		tx.EncodeTo(e)
		if e.Len() != int(tx.Size) {
			t.Fatalf("size %d: encoded %d bytes", size, e.Len())
		}
		d := wire.NewDecoder(e.Bytes())
		got, err := DecodeTx(d)
		if err != nil {
			t.Fatal(err)
		}
		if got.Client != tx.Client || got.Seq != tx.Seq || got.Size != tx.Size || got.Submitted != tx.Submitted {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", got, tx)
		}
		if got.Hash() != tx.Hash() {
			t.Fatal("hash changed across roundtrip")
		}
	}
}

func TestTxListRoundtrip(t *testing.T) {
	txs := make([]*Transaction, 50)
	for i := range txs {
		txs[i] = NewTransaction(wire.NodeID(i%4), uint64(i), 512, time.Duration(i))
	}
	e := wire.NewEncoder(SizeTxs(txs))
	EncodeTxs(e, txs)
	if e.Len() != SizeTxs(txs) {
		t.Fatalf("SizeTxs = %d, encoded %d", SizeTxs(txs), e.Len())
	}
	got, err := DecodeTxs(wire.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(txs) {
		t.Fatalf("decoded %d txs", len(got))
	}
	for i := range got {
		if got[i].Hash() != txs[i].Hash() {
			t.Fatalf("tx %d hash mismatch", i)
		}
	}
	if TotalBytes(txs) != 50*512 {
		t.Fatalf("TotalBytes = %d", TotalBytes(txs))
	}
	if len(TxHashes(txs)) != 50 {
		t.Fatal("TxHashes length")
	}
}

func TestDecodeTxsLyingCount(t *testing.T) {
	e := wire.NewEncoder(8)
	e.U32(1 << 30) // absurd count
	if _, err := DecodeTxs(wire.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("lying count must fail")
	}
}

func TestDecodeTxRejectsTinySize(t *testing.T) {
	e := wire.NewEncoder(32)
	e.Node(1)
	e.U64(1)
	e.U32(2) // below MinTxSize
	e.U64(0)
	if _, err := DecodeTx(wire.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("undersized transaction must be rejected")
	}
}

func TestClientMessagesRoundtrip(t *testing.T) {
	RegisterMessages()
	sub := &SubmitTx{Tx: NewTransaction(9, 4, 512, time.Second), Target: 2}
	got, err := wire.Roundtrip(sub)
	if err != nil {
		t.Fatal(err)
	}
	gs := got.(*SubmitTx)
	if gs.Target != 2 || gs.Tx.Hash() != sub.Tx.Hash() {
		t.Fatal("SubmitTx roundtrip mismatch")
	}
	if len(wire.Marshal(sub)) != sub.WireSize() {
		t.Fatal("SubmitTx WireSize mismatch")
	}

	rep := &BlockReply{Height: 7, Replica: 1, Seqs: []uint64{1, 5, 9}}
	got2, err := wire.Roundtrip(rep)
	if err != nil {
		t.Fatal(err)
	}
	gr := got2.(*BlockReply)
	if gr.Height != 7 || gr.Replica != 1 || len(gr.Seqs) != 3 || gr.Seqs[2] != 9 {
		t.Fatalf("BlockReply roundtrip mismatch: %+v", gr)
	}
	if len(wire.Marshal(rep)) != rep.WireSize() {
		t.Fatal("BlockReply WireSize mismatch")
	}
}

func TestQuickTxRoundtrip(t *testing.T) {
	f := func(client uint32, seq uint64, size uint32, sub int64) bool {
		size = MinTxSize + size%8192
		tx := &Transaction{Client: wire.NodeID(client), Seq: seq, Size: size, Submitted: sub}
		e := wire.NewEncoder(int(size))
		tx.EncodeTo(e)
		got, err := DecodeTx(wire.NewDecoder(e.Bytes()))
		if err != nil {
			return false
		}
		return got.Hash() == tx.Hash() && e.Len() == int(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
