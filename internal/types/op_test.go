package types

import (
	"testing"
	"time"

	"predis/internal/wire"
)

func opRoundtrip(t *testing.T, tx *Transaction) *Transaction {
	t.Helper()
	e := wire.NewEncoder(int(tx.Size))
	tx.EncodeTo(e)
	if e.Len() != int(tx.Size) {
		t.Fatalf("encoded %d bytes, Size %d", e.Len(), tx.Size)
	}
	got, err := DecodeTx(wire.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != tx.Hash() {
		t.Fatal("hash changed across roundtrip")
	}
	return got
}

func TestTransferOpRoundtrip(t *testing.T) {
	tx := NewTransaction(3, 9, 512, time.Second).
		WithOp(Op{Kind: OpTransfer, From: 17, To: 4, Amount: 25})
	got := opRoundtrip(t, tx)
	if got.Op.Kind != OpTransfer || got.Op.From != 17 || got.Op.To != 4 || got.Op.Amount != 25 {
		t.Fatalf("transfer op mismatch: %+v", got.Op)
	}
}

func TestRMWOpRoundtrip(t *testing.T) {
	op := Op{
		Kind:   OpRMW,
		Reads:  []uint64{1, 2, 3},
		Writes: []uint64{7, 8},
		Delta:  40,
	}
	tx := NewTransaction(1, 1, 512, 0).WithOp(op)
	got := opRoundtrip(t, tx)
	g := got.Op
	if g.Kind != OpRMW || len(g.Reads) != 3 || len(g.Writes) != 2 ||
		g.Reads[2] != 3 || g.Writes[1] != 8 || g.Delta != 40 {
		t.Fatalf("rmw op mismatch: %+v", g)
	}
}

func TestWithOpGrowsUndersizedTransaction(t *testing.T) {
	tx := NewTransaction(1, 1, MinTxSize, 0).
		WithOp(Op{Kind: OpTransfer, From: 1, To: 2, Amount: 3})
	if int(tx.Size) != txFixedLen+24 {
		t.Fatalf("Size = %d, want %d", tx.Size, txFixedLen+24)
	}
	opRoundtrip(t, tx)
}

func TestOpChangesHashIdentity(t *testing.T) {
	plain := NewTransaction(1, 2, 512, time.Second)
	moved := NewTransaction(1, 2, 512, time.Second).
		WithOp(Op{Kind: OpTransfer, From: 1, To: 2, Amount: 3})
	if plain.Hash() == moved.Hash() {
		t.Fatal("op must be part of the transaction identity")
	}
	other := NewTransaction(1, 2, 512, time.Second).
		WithOp(Op{Kind: OpTransfer, From: 1, To: 2, Amount: 4})
	if moved.Hash() == other.Hash() {
		t.Fatal("different amounts must hash differently")
	}
}

func TestDecodeTxRejectsOversizedKeySets(t *testing.T) {
	e := wire.NewEncoder(64)
	e.Node(1)
	e.U64(1)
	e.U32(512)
	e.U64(0)
	e.U8(uint8(OpRMW))
	e.U8(MaxOpKeys + 1) // reads
	e.U8(0)             // writes
	if _, err := DecodeTx(wire.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("oversized rmw read set must be rejected")
	}
}

func TestDecodeTxRejectsPayloadOverflowingSize(t *testing.T) {
	// A transfer payload (24 bytes) cannot fit a Size of txFixedLen.
	tx := NewTransaction(1, 1, 512, 0).
		WithOp(Op{Kind: OpTransfer, From: 1, To: 2, Amount: 3})
	e := wire.NewEncoder(int(tx.Size))
	tx.EncodeTo(e)
	raw := append([]byte(nil), e.Bytes()...)
	// Patch the declared Size field (offset 12) down to the bare header.
	raw[12], raw[13], raw[14], raw[15] = 0, 0, 0, byte(txFixedLen)
	if _, err := DecodeTx(wire.NewDecoder(raw)); err == nil {
		t.Fatal("op payload overflowing declared size must be rejected")
	}
}

func TestDecodeTxRejectsNonzeroPadding(t *testing.T) {
	tx := NewTransaction(1, 1, 512, 0)
	e := wire.NewEncoder(int(tx.Size))
	tx.EncodeTo(e)
	raw := append([]byte(nil), e.Bytes()...)
	raw[len(raw)-1] = 0xa5
	if _, err := DecodeTx(wire.NewDecoder(raw)); err == nil {
		t.Fatal("nonzero padding must be rejected as non-canonical")
	}
}

func TestOpReadWriteSets(t *testing.T) {
	transfer := Op{Kind: OpTransfer, From: 5, To: 6, Amount: 1}
	if r := transfer.ReadKeys(nil); len(r) != 2 || r[0] != 5 || r[1] != 6 {
		t.Fatalf("transfer reads = %v", r)
	}
	if w := transfer.WriteKeys(nil); len(w) != 2 {
		t.Fatalf("transfer writes = %v", w)
	}
	self := Op{Kind: OpTransfer, From: 5, To: 5, Amount: 1}
	if w := self.WriteKeys(nil); len(w) != 1 {
		t.Fatalf("self-transfer writes = %v", w)
	}
	rmw := Op{Kind: OpRMW, Reads: []uint64{1}, Writes: []uint64{2}, Delta: 1}
	if r := rmw.ReadKeys(nil); len(r) != 2 {
		t.Fatalf("rmw reads = %v (writes are implicitly read)", r)
	}
	if w := rmw.WriteKeys(nil); len(w) != 1 || w[0] != 2 {
		t.Fatalf("rmw writes = %v", w)
	}
	var opaque Op
	if !opaque.IsNoop() || len(opaque.ReadKeys(nil)) != 0 || len(opaque.WriteKeys(nil)) != 0 {
		t.Fatal("opaque op must declare empty sets")
	}
}

// TestEncodeToZeroAlloc pins the shared-zero-padding fix: encoding a
// full-size transaction into a pre-grown encoder must not allocate (the
// old code built a fresh ~500-byte zero slice per encode).
func TestEncodeToZeroAlloc(t *testing.T) {
	txs := []*Transaction{
		NewTransaction(1, 1, DefaultTxSize, time.Second),
		NewTransaction(2, 2, DefaultTxSize, time.Second).
			WithOp(Op{Kind: OpTransfer, From: 9, To: 3, Amount: 5}),
		NewTransaction(3, 3, 4096, time.Second).
			WithOp(Op{Kind: OpRMW, Reads: []uint64{1, 2}, Writes: []uint64{3}, Delta: 1}),
	}
	for _, tx := range txs {
		tx := tx
		e := wire.NewEncoder(int(tx.Size))
		tx.EncodeTo(e) // pre-grow the buffer
		if n := testing.AllocsPerRun(200, func() {
			e.Reset()
			tx.EncodeTo(e)
		}); n != 0 {
			t.Fatalf("EncodeTo allocates %.1f times per run (size %d)", n, tx.Size)
		}
	}
}

// FuzzDecodeTx throws arbitrary bytes at the transaction decoder: it
// must never panic, and any successfully decoded transaction must
// re-encode to exactly the consumed bytes (canonical encoding, op
// payload and zero padding included).
func FuzzDecodeTx(f *testing.F) {
	seed := func(tx *Transaction) {
		e := wire.NewEncoder(int(tx.Size))
		tx.EncodeTo(e)
		f.Add(append([]byte(nil), e.Bytes()...))
	}
	seed(NewTransaction(1, 1, DefaultTxSize, time.Second))
	seed(NewTransaction(2, 7, 64, 0).
		WithOp(Op{Kind: OpTransfer, From: 11, To: 3, Amount: 400}))
	seed(NewTransaction(3, 9, DefaultTxSize, time.Millisecond).
		WithOp(Op{Kind: OpRMW, Reads: []uint64{5, 6}, Writes: []uint64{7, 8}, Delta: 2}))
	seed(NewTransaction(4, 1, MinTxSize, 0))
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, err := DecodeTx(wire.NewDecoder(data))
		if err != nil {
			return
		}
		e := wire.NewEncoder(int(tx.Size))
		tx.EncodeTo(e)
		if len(data) < e.Len() {
			t.Fatalf("decoded a %d-byte tx from %d bytes", e.Len(), len(data))
		}
		for i, b := range e.Bytes() {
			if data[i] != b {
				t.Fatalf("re-encode differs at byte %d: %#02x vs %#02x", i, b, data[i])
			}
		}
	})
}
