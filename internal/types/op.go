package types

import (
	"fmt"

	"predis/internal/wire"
)

// OpKind selects a transaction's semantic operation. The paper's
// evaluation uses opaque fixed-size payloads; the execution plane
// (internal/exec) gives transactions account semantics so committed
// blocks can be applied to a state machine.
type OpKind uint8

// Operation kinds.
const (
	// OpOpaque is a payload-only transaction with no state effect (the
	// paper's synthetic 512-byte transaction). The executor skips it.
	OpOpaque OpKind = iota
	// OpTransfer moves Amount from account From to account To. It
	// aborts deterministically — with no writes — when From's balance
	// is short.
	OpTransfer
	// OpRMW reads the Reads accounts and adds Delta to each of the
	// Writes accounts (a read-modify-write: every written account is
	// implicitly read).
	OpRMW
	// opKindEnd bounds the valid kinds for decoding.
	opKindEnd
)

// MaxOpKeys bounds each of an OpRMW's declared key sets; larger sets
// are rejected on decode so adversarial frames cannot inflate conflict
// analysis.
const MaxOpKeys = 8

// maxOpPayload is the largest encoded op payload: an OpRMW with full
// read and write sets (count bytes + keys + delta).
const maxOpPayload = 2 + 8*2*MaxOpKeys + 8

// Op is a transaction's semantic operation with its declared read and
// write sets. The zero value is OpOpaque.
type Op struct {
	Kind OpKind
	// From, To, Amount parameterize OpTransfer.
	From, To uint64
	Amount   uint64
	// Reads, Writes, Delta parameterize OpRMW.
	Reads  []uint64
	Writes []uint64
	Delta  uint64
}

// payloadLen returns the encoded payload size after the kind byte.
func (o *Op) payloadLen() int {
	switch o.Kind {
	case OpTransfer:
		return 24
	case OpRMW:
		return 2 + 8*(len(o.Reads)+len(o.Writes)) + 8
	default:
		return 0
	}
}

// appendPayload appends the op payload (everything after the kind byte)
// to b. It is the single encoding definition: EncodeTo and HashStateless
// both feed from it, so wire identity and hash identity cannot drift.
func (o *Op) appendPayload(b []byte) []byte {
	switch o.Kind {
	case OpTransfer:
		b = appendU64(b, o.From)
		b = appendU64(b, o.To)
		b = appendU64(b, o.Amount)
	case OpRMW:
		b = append(b, uint8(len(o.Reads)), uint8(len(o.Writes)))
		for _, k := range o.Reads {
			b = appendU64(b, k)
		}
		for _, k := range o.Writes {
			b = appendU64(b, k)
		}
		b = appendU64(b, o.Delta)
	}
	return b
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// decodeOpPayload reads the payload for a kind already decoded.
func decodeOpPayload(kind OpKind, d *wire.Decoder) (Op, error) {
	op := Op{Kind: kind}
	switch kind {
	case OpOpaque:
	case OpTransfer:
		op.From = d.U64()
		op.To = d.U64()
		op.Amount = d.U64()
	case OpRMW:
		nr, nw := int(d.U8()), int(d.U8())
		if err := d.Err(); err != nil {
			return Op{}, err
		}
		if nr > MaxOpKeys || nw > MaxOpKeys {
			return Op{}, fmt.Errorf("types: rmw key sets %d/%d exceed %d", nr, nw, MaxOpKeys)
		}
		if nr > 0 {
			op.Reads = make([]uint64, nr)
			for i := range op.Reads {
				op.Reads[i] = d.U64()
			}
		}
		if nw > 0 {
			op.Writes = make([]uint64, nw)
			for i := range op.Writes {
				op.Writes[i] = d.U64()
			}
		}
		op.Delta = d.U64()
	default:
		return Op{}, fmt.Errorf("types: unknown op kind %d", kind)
	}
	return op, d.Err()
}

// IsNoop reports whether the op has no state effect.
func (o *Op) IsNoop() bool { return o.Kind == OpOpaque }

// ReadKeys appends the declared read set to buf (which may be a reused
// scratch slice). Written accounts are implicitly read: a transfer reads
// both balances and an RMW reads its write set before adding Delta.
func (o *Op) ReadKeys(buf []uint64) []uint64 {
	switch o.Kind {
	case OpTransfer:
		return append(buf, o.From, o.To)
	case OpRMW:
		buf = append(buf, o.Reads...)
		return append(buf, o.Writes...)
	}
	return buf
}

// WriteKeys appends the declared write set to buf.
func (o *Op) WriteKeys(buf []uint64) []uint64 {
	switch o.Kind {
	case OpTransfer:
		if o.From == o.To {
			return append(buf, o.From)
		}
		return append(buf, o.From, o.To)
	case OpRMW:
		return append(buf, o.Writes...)
	}
	return buf
}
