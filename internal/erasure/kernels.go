package erasure

import "encoding/binary"

// Table-driven GF(2^8) kernels. The scalar mulRowAdd/mulRowSet in gf.go
// pay a log/exp lookup pair plus a zero check per byte; the kernels here
// index one precomputed 256-entry product row per coefficient, hoist the
// bounds check out of the inner loop, and XOR word-wide when the
// coefficient is 1. gf.go's scalar versions are kept as the reference
// implementation the cross-check tests compare against (and the cold
// matrix algebra still uses them).

// mulTable[c][x] = c·x in GF(2^8). 64 KiB, filled by initTables.
var mulTable [256][256]byte

// initMulTable fills mulTable; must run after the exp/log tables are
// ready (initTables calls it last).
func initMulTable() {
	for c := 1; c < 256; c++ {
		row := &mulTable[c]
		for x := 1; x < 256; x++ {
			row[x] = gfExp[int(gfLog[c])+int(gfLog[x])]
		}
	}
}

// mulAndAdd computes dst[i] ^= c·src[i] over len(src) bytes.
//
//predis:hotpath
func mulAndAdd(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		xorBytes(dst, src)
		return
	}
	mt := &mulTable[c]
	dst = dst[:len(src)] // hoist the bounds check
	for i, s := range src {
		dst[i] ^= mt[s]
	}
}

// mulSet computes dst[i] = c·src[i] over len(src) bytes.
//
//predis:hotpath
func mulSet(dst, src []byte, c byte) {
	switch c {
	case 0:
		clearBytes(dst[:len(src)])
		return
	case 1:
		copy(dst, src)
		return
	}
	mt := &mulTable[c]
	dst = dst[:len(src)]
	for i, s := range src {
		dst[i] = mt[s]
	}
}

// xorBytes computes dst[i] ^= src[i] over len(src) bytes, word-wide.
//
//predis:hotpath
func xorBytes(dst, src []byte) {
	dst = dst[:len(src)]
	i := 0
	for ; i+8 <= len(src); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// clearBytes zeroes b (compiles to a memclr).
//
//predis:hotpath
func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
