package erasure

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the coder.
var (
	ErrInvalidParams = errors.New("erasure: data and parity shard counts must be positive and total ≤ 256")
	ErrShardCount    = errors.New("erasure: wrong number of shards")
	ErrShardSize     = errors.New("erasure: shards have inconsistent sizes")
	ErrTooFewShards  = errors.New("erasure: not enough shards to reconstruct")
	ErrShortData     = errors.New("erasure: shard size must be positive")
)

var tablesOnce sync.Once

// Coder encodes data into data+parity shards and reconstructs missing
// shards from any `data` survivors. A Coder's parameters and encoding
// matrix are immutable and it is safe for concurrent use; the decode
// cache below is a sync.Map so concurrent Reconstruct calls stay safe.
type Coder struct {
	data, parity int
	// enc is the (data+parity)×data encoding matrix whose top square is the
	// identity, so shards[0:data] are the data verbatim (systematic code).
	enc *matrix
	// decCache memoizes inverted decode sub-matrices keyed by the shard
	// index set the reconstruction read from. Loss patterns repeat
	// (Multi-Zone reassembles from whichever n_c−f relayers answer, and
	// the same subset keeps answering), so the Gauss–Jordan inversion —
	// the dominant per-Reconstruct cost at paper shard counts — runs
	// once per distinct survivor set.
	decCache sync.Map // string(survivor row indices) → *matrix
}

// New creates a coder producing `data` data shards and `parity` parity
// shards. In Multi-Zone a bundle is encoded with data = n_c − f and
// parity = f so that any n_c − f of the n_c stripes reconstruct it.
func New(data, parity int) (*Coder, error) {
	if data <= 0 || parity < 0 || data+parity > 256 {
		return nil, fmt.Errorf("%w: data=%d parity=%d", ErrInvalidParams, data, parity)
	}
	tablesOnce.Do(initTables)
	n := data + parity
	vm := vandermonde(n, data)
	top := vm.subMatrix(0, data, 0, data)
	topInv, ok := top.invert()
	if !ok {
		// A Vandermonde top square over distinct points is always
		// invertible; reaching here is a programming error.
		return nil, errors.New("erasure: vandermonde top square singular")
	}
	return &Coder{data: data, parity: parity, enc: vm.mul(topInv)}, nil
}

// DataShards returns the number of data shards.
func (c *Coder) DataShards() int { return c.data }

// ParityShards returns the number of parity shards.
func (c *Coder) ParityShards() int { return c.parity }

// TotalShards returns data+parity.
func (c *Coder) TotalShards() int { return c.data + c.parity }

// Encode fills shards[data:] (parity) from shards[:data] (data). All shards
// must be non-nil and the same length.
func (c *Coder) Encode(shards [][]byte) error {
	if err := c.checkShards(shards, true); err != nil {
		return err
	}
	for p := 0; p < c.parity; p++ {
		out := shards[c.data+p]
		row := c.enc.row(c.data + p)
		mulSet(out, shards[0], row[0])
		for d := 1; d < c.data; d++ {
			mulAndAdd(out, shards[d], row[d])
		}
	}
	return nil
}

// EncodeBatch encodes many shard sets with a single walk of the
// encoding matrix: the parity-row loop is hoisted outside the batch
// loop, so each row's coefficient vector is resolved once per batch
// rather than once per set, and the row kernels run back to back over
// contiguous shard memory. Every set must satisfy Encode's contract;
// the result is byte-identical to calling Encode on each set.
func (c *Coder) EncodeBatch(batch [][][]byte) error {
	for _, shards := range batch {
		if err := c.checkShards(shards, true); err != nil {
			return err
		}
	}
	for p := 0; p < c.parity; p++ {
		row := c.enc.row(c.data + p)
		for _, shards := range batch {
			out := shards[c.data+p]
			mulSet(out, shards[0], row[0])
			for d := 1; d < c.data; d++ {
				mulAndAdd(out, shards[d], row[d])
			}
		}
	}
	return nil
}

// Reconstruct fills in nil shards in place. At least `data` shards must be
// present. Present shards are never modified.
func (c *Coder) Reconstruct(shards [][]byte) error {
	return c.reconstruct(shards, true)
}

// ReconstructData is Reconstruct restricted to the data shards: missing
// parity shards are left nil. Callers that only Join the payload back
// together (bundle reassembly) skip the parity recompute entirely —
// with f parity shards lost that saves f full matrix rows of GF math
// per bundle.
func (c *Coder) ReconstructData(shards [][]byte) error {
	return c.reconstruct(shards, false)
}

func (c *Coder) reconstruct(shards [][]byte, parity bool) error {
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.TotalShards())
	}
	size := -1
	present := 0
	for _, s := range shards {
		if s == nil {
			continue
		}
		present++
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSize
		}
	}
	if present == len(shards) {
		return nil // nothing missing
	}
	if present < c.data {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, present, c.data)
	}
	if !parity {
		missingData := false
		for d := 0; d < c.data; d++ {
			if shards[d] == nil {
				missingData = true
				break
			}
		}
		if !missingData {
			return nil // all data present; parity not wanted
		}
	}
	if size <= 0 {
		return ErrShortData
	}

	// The decode matrix is determined by which rows feed the
	// reconstruction — the first `data` present shards.
	idx := make([]byte, 0, c.data)
	srcRows := make([][]byte, 0, c.data)
	for i := 0; i < c.TotalShards() && len(idx) < c.data; i++ {
		if shards[i] == nil {
			continue
		}
		idx = append(idx, byte(i))
		srcRows = append(srcRows, shards[i])
	}
	dec, err := c.decodeMatrix(idx)
	if err != nil {
		return err
	}

	// Recover missing data shards: dataShard[d] = dec.row(d) · srcRows.
	for d := 0; d < c.data; d++ {
		if shards[d] != nil {
			continue
		}
		out := make([]byte, size)
		row := dec.row(d)
		for k := 0; k < c.data; k++ {
			mulAndAdd(out, srcRows[k], row[k])
		}
		shards[d] = out
	}
	if !parity {
		return nil
	}
	// Recompute missing parity shards from the (now complete) data shards.
	for p := 0; p < c.parity; p++ {
		i := c.data + p
		if shards[i] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.enc.row(i)
		for k := 0; k < c.data; k++ {
			mulAndAdd(out, shards[k], row[k])
		}
		shards[i] = out
	}
	return nil
}

// decodeMatrix returns the inverse of the encoding sub-matrix formed by
// the given survivor row indices, memoized per distinct index set. The
// returned matrix is shared and must be treated as read-only.
func (c *Coder) decodeMatrix(idx []byte) (*matrix, error) {
	key := string(idx)
	if v, ok := c.decCache.Load(key); ok {
		return v.(*matrix), nil
	}
	sub := newMatrix(c.data, c.data)
	for r, i := range idx {
		copy(sub.row(r), c.enc.row(int(i)))
	}
	dec, ok := sub.invert()
	if !ok {
		return nil, errors.New("erasure: decode matrix singular")
	}
	c.decCache.Store(key, dec)
	return dec, nil
}

// Verify recomputes parity from the data shards and reports whether every
// parity shard matches. All shards must be present.
func (c *Coder) Verify(shards [][]byte) (bool, error) {
	if err := c.checkShards(shards, true); err != nil {
		return false, err
	}
	size := len(shards[0])
	buf := make([]byte, size)
	for p := 0; p < c.parity; p++ {
		row := c.enc.row(c.data + p)
		mulSet(buf, shards[0], row[0])
		for d := 1; d < c.data; d++ {
			mulAndAdd(buf, shards[d], row[d])
		}
		got := shards[c.data+p]
		for i := range buf {
			if buf[i] != got[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

func (c *Coder) checkShards(shards [][]byte, all bool) error {
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.TotalShards())
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			if all {
				return fmt.Errorf("%w: shard %d is nil", ErrShardSize, i)
			}
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSize
		}
	}
	if size <= 0 {
		return ErrShortData
	}
	return nil
}

// Split pads data to a multiple of the shard count and slices it into
// data+parity equal shards (parity shards allocated but not yet encoded).
// It returns the shards; the original length must be remembered by the
// caller (Join takes it back).
func (c *Coder) Split(data []byte) [][]byte {
	shardSize := (len(data) + c.data - 1) / c.data
	if shardSize == 0 {
		shardSize = 1
	}
	shards := make([][]byte, c.TotalShards())
	padded := make([]byte, shardSize*c.data)
	copy(padded, data)
	for d := 0; d < c.data; d++ {
		shards[d] = padded[d*shardSize : (d+1)*shardSize]
	}
	for p := 0; p < c.parity; p++ {
		shards[c.data+p] = make([]byte, shardSize)
	}
	return shards
}

// Join reassembles the original byte string of length outLen from the data
// shards.
func (c *Coder) Join(shards [][]byte, outLen int) ([]byte, error) {
	if len(shards) < c.data {
		return nil, ErrShardCount
	}
	out := make([]byte, 0, outLen)
	for d := 0; d < c.data && len(out) < outLen; d++ {
		if shards[d] == nil {
			return nil, fmt.Errorf("%w: data shard %d missing", ErrTooFewShards, d)
		}
		out = append(out, shards[d]...)
	}
	if len(out) < outLen {
		return nil, fmt.Errorf("erasure: shards hold %d bytes, need %d", len(out), outLen)
	}
	return out[:outLen], nil
}

// StripeSize returns the stripe length for a payload of the given size.
func (c *Coder) StripeSize(payloadLen int) int {
	s := (payloadLen + c.data - 1) / c.data
	if s == 0 {
		s = 1
	}
	return s
}
