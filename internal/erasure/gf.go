// Package erasure implements systematic Reed–Solomon erasure coding over
// GF(2^8), the substrate Multi-Zone uses to split bundles into stripes
// (§IV-D). A bundle encoded with parameters (data=n_c−f, parity=f) can be
// reconstructed from any n_c−f of its n_c stripes, which is exactly the
// availability bound the paper relies on.
//
// The implementation follows the classic Plank construction: an extended
// Vandermonde matrix is reduced so its top square is the identity, making
// the code systematic (data shards appear verbatim), and decoding inverts
// the sub-matrix corresponding to the surviving shards.
package erasure

// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11d is the
// Rijndael-ish polynomial used by most storage RS codes).
const gfPoly = 0x11d

var (
	gfExp [512]byte // exp table, doubled to avoid mod in mul
	gfLog [256]byte
)

// initTables fills the exp/log tables. It runs once from New via sync.Once
// in rs.go rather than init(), per the no-init style rule.
func initTables() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	initMulTable()
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b; b must be nonzero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse; a must be nonzero.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfExpPow returns a**n for field element a.
func gfExpPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	logA := int(gfLog[a])
	return gfExp[(logA*n)%255]
}

// mulRowAdd computes dst[i] ^= c * src[i] for all i. It is the inner loop of
// both encoding and decoding.
func mulRowAdd(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// mulRowSet computes dst[i] = c * src[i] for all i.
func mulRowSet(dst, src []byte, c byte) {
	if c == 0 {
		for i := range dst[:len(src)] {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = gfExp[logC+int(gfLog[s])]
		}
	}
}

// matrix is a dense byte matrix, rows × cols.
type matrix struct {
	rows, cols int
	d          []byte
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, d: make([]byte, rows*cols)}
}

func (m *matrix) at(r, c int) byte     { return m.d[r*m.cols+c] }
func (m *matrix) set(r, c int, v byte) { m.d[r*m.cols+c] = v }
func (m *matrix) row(r int) []byte     { return m.d[r*m.cols : (r+1)*m.cols] }
func (m *matrix) swapRows(a, b int) {
	if a == b {
		return
	}
	ra, rb := m.row(a), m.row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// vandermonde builds the rows×cols matrix with entry (r,c) = r**c.
func vandermonde(rows, cols int) *matrix {
	m := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gfExpPow(byte(r), c))
		}
	}
	return m
}

// mul returns m × other.
func (m *matrix) mul(other *matrix) *matrix {
	if m.cols != other.rows {
		panic("erasure: matrix dimension mismatch")
	}
	out := newMatrix(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		orow := out.row(r)
		for k := 0; k < m.cols; k++ {
			mulRowAdd(orow, other.row(k), m.at(r, k))
		}
	}
	return out
}

// subMatrix copies rows [r0,r1) and cols [c0,c1).
func (m *matrix) subMatrix(r0, r1, c0, c1 int) *matrix {
	out := newMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.row(r-r0), m.row(r)[c0:c1])
	}
	return out
}

// invert returns the inverse of a square matrix via Gauss–Jordan
// elimination, or false when singular.
func (m *matrix) invert() (*matrix, bool) {
	if m.rows != m.cols {
		panic("erasure: invert on non-square matrix")
	}
	n := m.rows
	// Work on an augmented copy [m | I].
	work := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		copy(work.row(r)[:n], m.row(r))
		work.set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		work.swapRows(col, pivot)
		// Scale pivot row to 1.
		inv := gfInv(work.at(col, col))
		prow := work.row(col)
		mulRowSet(prow, append([]byte(nil), prow...), inv)
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			c := work.at(r, col)
			if c != 0 {
				mulRowAdd(work.row(r), prow, c)
			}
		}
	}
	return work.subMatrix(0, n, n, 2*n), true
}

// identity returns the n×n identity matrix.
func identity(n int) *matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}
