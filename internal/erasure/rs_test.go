package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCoder(t testing.TB, data, parity int) *Coder {
	t.Helper()
	c, err := New(data, parity)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestNewInvalidParams(t *testing.T) {
	cases := []struct{ data, parity int }{
		{0, 1}, {-1, 2}, {3, -1}, {200, 57},
	}
	for _, c := range cases {
		if _, err := New(c.data, c.parity); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("New(%d,%d) err = %v, want ErrInvalidParams", c.data, c.parity, err)
		}
	}
	if _, err := New(200, 56); err != nil {
		t.Fatalf("New(200,56) should be valid: %v", err)
	}
}

func TestGFFieldAxioms(t *testing.T) {
	tablesOnce.Do(initTables)
	// Inverses and distributivity over a sample of the field.
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatal("multiplication not commutative")
		}
		left := gfMul(a, b^c)
		right := gfMul(a, b) ^ gfMul(a, c)
		if left != right {
			t.Fatalf("distributivity failed for %d,%d,%d", a, b, c)
		}
		if b != 0 && gfMul(gfDiv(a, b), b) != a {
			t.Fatalf("div/mul inverse failed for %d/%d", a, b)
		}
	}
}

func TestGFExpPow(t *testing.T) {
	tablesOnce.Do(initTables)
	if gfExpPow(0, 0) != 1 || gfExpPow(0, 5) != 0 || gfExpPow(7, 0) != 1 {
		t.Fatal("gfExpPow edge cases wrong")
	}
	// a^n computed by repeated multiplication must match.
	for _, a := range []byte{2, 3, 29, 255} {
		acc := byte(1)
		for n := 0; n < 300; n++ {
			if got := gfExpPow(a, n); got != acc {
				t.Fatalf("gfExpPow(%d,%d) = %d, want %d", a, n, got, acc)
			}
			acc = gfMul(acc, a)
		}
	}
}

func TestMatrixInvertIdentity(t *testing.T) {
	tablesOnce.Do(initTables)
	m := identity(5)
	inv, ok := m.invert()
	if !ok {
		t.Fatal("identity reported singular")
	}
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if inv.at(r, c) != want {
				t.Fatalf("inv(I)[%d][%d] = %d", r, c, inv.at(r, c))
			}
		}
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	tablesOnce.Do(initTables)
	m := newMatrix(2, 2) // all zeros
	if _, ok := m.invert(); ok {
		t.Fatal("zero matrix reported invertible")
	}
}

func TestEncodeSystematic(t *testing.T) {
	c := mustCoder(t, 4, 2)
	r := rand.New(rand.NewSource(2))
	orig := randBytes(r, 1000)
	shards := c.Split(orig)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	joined, err := c.Join(shards, len(orig))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(joined, orig) {
		t.Fatal("systematic property violated: data shards must hold the payload")
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v", ok, err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	c := mustCoder(t, 4, 2)
	shards := c.Split(randBytes(rand.New(rand.NewSource(3)), 512))
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[1][7] ^= 0x55
	ok, err := c.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("corrupted shard passed Verify")
	}
}

func TestReconstructAllLossPatterns(t *testing.T) {
	// n_c = 8, f = 2 → data 6, parity 2: every loss pattern of ≤2 shards
	// must reconstruct.
	c := mustCoder(t, 6, 2)
	r := rand.New(rand.NewSource(4))
	orig := randBytes(r, 3000)
	base := c.Split(orig)
	if err := c.Encode(base); err != nil {
		t.Fatal(err)
	}
	n := c.TotalShards()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			shards := make([][]byte, n)
			for k := range shards {
				shards[k] = append([]byte(nil), base[k]...)
			}
			shards[i] = nil
			shards[j] = nil
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("loss {%d,%d}: %v", i, j, err)
			}
			for k := range shards {
				if !bytes.Equal(shards[k], base[k]) {
					t.Fatalf("loss {%d,%d}: shard %d wrong after reconstruct", i, j, k)
				}
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c := mustCoder(t, 4, 2)
	base := c.Split(randBytes(rand.New(rand.NewSource(5)), 100))
	if err := c.Encode(base); err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, len(base))
	copy(shards, base)
	shards[0], shards[1], shards[2] = nil, nil, nil // only 3 left, need 4
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestReconstructNoMissing(t *testing.T) {
	c := mustCoder(t, 3, 2)
	base := c.Split([]byte("hello reed solomon"))
	if err := c.Encode(base); err != nil {
		t.Fatal(err)
	}
	if err := c.Reconstruct(base); err != nil {
		t.Fatalf("Reconstruct with nothing missing: %v", err)
	}
}

func TestShardCountAndSizeErrors(t *testing.T) {
	c := mustCoder(t, 3, 2)
	if err := c.Encode(make([][]byte, 4)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("short shard list: %v", err)
	}
	shards := [][]byte{{1, 2}, {3, 4}, {5, 6}, {7}, {9, 10}}
	if err := c.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("uneven shards: %v", err)
	}
	if err := c.Reconstruct(make([][]byte, 3)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("reconstruct wrong count: %v", err)
	}
}

func TestSplitTinyPayload(t *testing.T) {
	c := mustCoder(t, 4, 2)
	shards := c.Split([]byte{0xab})
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	out, err := c.Join(shards, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 0xab {
		t.Fatalf("tiny payload roundtrip: % x", out)
	}
}

func TestStripeSize(t *testing.T) {
	c := mustCoder(t, 4, 2)
	cases := []struct{ in, want int }{{0, 1}, {1, 1}, {4, 1}, {5, 2}, {100, 25}, {101, 26}}
	for _, tc := range cases {
		if got := c.StripeSize(tc.in); got != tc.want {
			t.Errorf("StripeSize(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestJoinErrors(t *testing.T) {
	c := mustCoder(t, 3, 1)
	if _, err := c.Join([][]byte{{1}}, 3); !errors.Is(err, ErrShardCount) {
		t.Fatalf("Join with too few shards: %v", err)
	}
	shards := c.Split([]byte("abcdef"))
	shards[1] = nil
	if _, err := c.Join(shards, 6); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("Join with missing data shard: %v", err)
	}
	shards2 := c.Split([]byte("abcdef"))
	if _, err := c.Join(shards2, 100); err == nil {
		t.Fatal("Join demanding more bytes than shards hold must fail")
	}
}

// TestQuickRoundtrip is the core property: for random payloads, parameters,
// and loss patterns of ≤ parity shards, decode(encode(x)) == x. This mirrors
// Multi-Zone's requirement that any n_c−f of n_c stripes rebuild a bundle.
func TestQuickRoundtrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(6))}
	f := func(payload []byte, dataRaw, parityRaw, lossSeed uint8) bool {
		data := 1 + int(dataRaw)%10
		parity := 1 + int(parityRaw)%5
		c, err := New(data, parity)
		if err != nil {
			return false
		}
		shards := c.Split(payload)
		if err := c.Encode(shards); err != nil {
			return false
		}
		// Drop up to `parity` random shards.
		r := rand.New(rand.NewSource(int64(lossSeed)))
		for _, i := range r.Perm(c.TotalShards())[:parity] {
			shards[i] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		out, err := c.Join(shards, len(payload))
		if err != nil {
			return false
		}
		return bytes.Equal(out, payload)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Benchmarks for the §V-B claim that encoding/decoding a bundle costs
// microseconds. A bundle is 50 transactions × 512 B = 25,600 B; with
// n_c = 8 (data 6, parity 2) stripes are ~4.3 KB.
func BenchmarkEncodeBundle(b *testing.B) {
	c := mustCoder(b, 6, 2)
	payload := randBytes(rand.New(rand.NewSource(7)), 50*512)
	shards := c.Split(payload)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructBundle(b *testing.B) {
	c := mustCoder(b, 6, 2)
	payload := randBytes(rand.New(rand.NewSource(8)), 50*512)
	base := c.Split(payload)
	if err := c.Encode(base); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, len(base))
		copy(shards, base)
		shards[0], shards[5] = nil, nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
