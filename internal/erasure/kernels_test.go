package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestKernelsMatchScalar cross-checks the table-driven mulAndAdd/mulSet
// kernels against the scalar log/exp reference (mulRowAdd/mulRowSet)
// over every coefficient and awkward slice lengths (word-remainder
// tails, length 0/1).
func TestKernelsMatchScalar(t *testing.T) {
	tablesOnce.Do(initTables)
	rng := rand.New(rand.NewSource(2024))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 63, 64, 65, 1000} {
		src := make([]byte, n)
		base := make([]byte, n)
		rng.Read(src)
		rng.Read(base)
		for c := 0; c < 256; c++ {
			wantAdd := append([]byte(nil), base...)
			gotAdd := append([]byte(nil), base...)
			mulRowAdd(wantAdd, src, byte(c))
			mulAndAdd(gotAdd, src, byte(c))
			if !bytes.Equal(wantAdd, gotAdd) {
				t.Fatalf("mulAndAdd(c=%d, n=%d) diverges from scalar reference", c, n)
			}
			wantSet := append([]byte(nil), base...)
			gotSet := append([]byte(nil), base...)
			mulRowSet(wantSet, src, byte(c))
			mulSet(gotSet, src, byte(c))
			if !bytes.Equal(wantSet, gotSet) {
				t.Fatalf("mulSet(c=%d, n=%d) diverges from scalar reference", c, n)
			}
		}
	}
}

// scalarReconstruct is the pre-cache, pre-kernel reference decoder: it
// rebuilds and inverts the decode matrix on every call and uses the
// scalar row operations. The fast path must agree with it bit-for-bit.
func scalarReconstruct(c *Coder, shards [][]byte) error {
	size := -1
	for _, s := range shards {
		if s != nil {
			size = len(s)
			break
		}
	}
	sub := newMatrix(c.data, c.data)
	srcRows := make([][]byte, 0, c.data)
	for i, got := 0, 0; i < c.TotalShards() && got < c.data; i++ {
		if shards[i] == nil {
			continue
		}
		copy(sub.row(got), c.enc.row(i))
		srcRows = append(srcRows, shards[i])
		got++
	}
	dec, ok := sub.invert()
	if !ok {
		return ErrTooFewShards
	}
	for d := 0; d < c.data; d++ {
		if shards[d] != nil {
			continue
		}
		out := make([]byte, size)
		for k := 0; k < c.data; k++ {
			mulRowAdd(out, srcRows[k], dec.row(d)[k])
		}
		shards[d] = out
	}
	for p := 0; p < c.parity; p++ {
		i := c.data + p
		if shards[i] != nil {
			continue
		}
		out := make([]byte, size)
		for k := 0; k < c.data; k++ {
			mulRowAdd(out, shards[k], c.enc.row(i)[k])
		}
		shards[i] = out
	}
	return nil
}

// lossSubsets enumerates every subset of {0..n-1} of size k.
func lossSubsets(n, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}

// TestReconstructAllLossSubsets decodes with every possible (n−k)-subset
// of losses at small n and cross-checks the cached fast path against the
// scalar reference decoder.
func TestReconstructAllLossSubsets(t *testing.T) {
	for _, p := range []struct{ data, parity int }{
		{2, 1}, {3, 2}, {4, 2}, {5, 3},
	} {
		c, err := New(p.data, p.parity)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(p.data*100 + p.parity)))
		payload := make([]byte, 257) // odd length exercises padding
		rng.Read(payload)
		full := c.Split(payload)
		if err := c.Encode(full); err != nil {
			t.Fatal(err)
		}
		n := c.TotalShards()
		for lost := 1; lost <= p.parity; lost++ {
			for _, subset := range lossSubsets(n, lost) {
				fast := make([][]byte, n)
				ref := make([][]byte, n)
				for i := range full {
					fast[i] = append([]byte(nil), full[i]...)
					ref[i] = append([]byte(nil), full[i]...)
				}
				for _, i := range subset {
					fast[i], ref[i] = nil, nil
				}
				if err := c.Reconstruct(fast); err != nil {
					t.Fatalf("(%d,%d) lose %v: %v", p.data, p.parity, subset, err)
				}
				if err := scalarReconstruct(c, ref); err != nil {
					t.Fatalf("(%d,%d) scalar lose %v: %v", p.data, p.parity, subset, err)
				}
				for i := range full {
					if !bytes.Equal(fast[i], ref[i]) {
						t.Fatalf("(%d,%d) lose %v: shard %d diverges from scalar reference",
							p.data, p.parity, subset, i)
					}
					if !bytes.Equal(fast[i], full[i]) {
						t.Fatalf("(%d,%d) lose %v: shard %d not recovered", p.data, p.parity, subset, i)
					}
				}
			}
		}
	}
}

// TestReconstructRandomizedCrossCheck hammers the matrix cache with
// randomized (seeded) loss patterns at paper-scale parameters, checking
// the cached fast path against the scalar reference each round. Repeats
// of the same survivor set exercise cache hits; fresh sets exercise
// misses.
func TestReconstructRandomizedCrossCheck(t *testing.T) {
	c, err := New(22, 3) // n_c = 25, f = 3 — the paper's largest sweep point
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, 4096)
	rng.Read(payload)
	full := c.Split(payload)
	if err := c.Encode(full); err != nil {
		t.Fatal(err)
	}
	n := c.TotalShards()
	for round := 0; round < 200; round++ {
		lost := 1 + rng.Intn(c.parity)
		fast := make([][]byte, n)
		ref := make([][]byte, n)
		for i := range full {
			fast[i] = append([]byte(nil), full[i]...)
			ref[i] = append([]byte(nil), full[i]...)
		}
		for k := 0; k < lost; k++ {
			i := rng.Intn(n)
			fast[i], ref[i] = nil, nil
		}
		if err := c.Reconstruct(fast); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := scalarReconstruct(c, ref); err != nil {
			t.Fatalf("round %d scalar: %v", round, err)
		}
		for i := range full {
			if !bytes.Equal(fast[i], ref[i]) {
				t.Fatalf("round %d: shard %d diverges from scalar reference", round, i)
			}
		}
	}
}

// TestDecodeMatrixCacheReuse pins that repeated reconstructions with the
// same survivor set hit the cache (same *matrix) and different sets do
// not collide.
func TestDecodeMatrixCacheReuse(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := c.decodeMatrix([]byte{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.decodeMatrix([]byte{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("same survivor set did not hit the decode-matrix cache")
	}
	m3, err := c.decodeMatrix([]byte{0, 1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Fatal("different survivor sets shared a cache entry")
	}
}
