package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// makeSets builds n encode-ready shard sets (data filled from a seeded
// RNG, parity zeroed) for a coder with the given geometry.
func makeSets(t *testing.T, c *Coder, n, shardSize int, seed int64) [][][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sets := make([][][]byte, n)
	for s := range sets {
		shards := make([][]byte, c.TotalShards())
		for i := range shards {
			shards[i] = make([]byte, shardSize)
			if i < c.DataShards() {
				rng.Read(shards[i])
			}
		}
		sets[s] = shards
	}
	return sets
}

// TestEncodeBatchMatchesEncode: EncodeBatch must produce byte-identical
// parity to calling Encode on each set individually, across geometries.
func TestEncodeBatchMatchesEncode(t *testing.T) {
	geoms := []struct{ data, parity int }{{3, 1}, {6, 2}, {10, 4}}
	for _, g := range geoms {
		c, err := New(g.data, g.parity)
		if err != nil {
			t.Fatal(err)
		}
		batch := makeSets(t, c, 5, 97, int64(g.data*100+g.parity))
		// Reference: per-set Encode over deep copies of the data shards.
		ref := make([][][]byte, len(batch))
		for s, shards := range batch {
			cp := make([][]byte, len(shards))
			for i, sh := range shards {
				cp[i] = append([]byte(nil), sh...)
			}
			if err := c.Encode(cp); err != nil {
				t.Fatalf("(%d,%d) Encode set %d: %v", g.data, g.parity, s, err)
			}
			ref[s] = cp
		}
		if err := c.EncodeBatch(batch); err != nil {
			t.Fatalf("(%d,%d) EncodeBatch: %v", g.data, g.parity, err)
		}
		for s := range batch {
			for i := range batch[s] {
				if !bytes.Equal(batch[s][i], ref[s][i]) {
					t.Fatalf("(%d,%d) set %d shard %d: EncodeBatch differs from Encode",
						g.data, g.parity, s, i)
				}
			}
		}
	}
}

// TestEncodeBatchEmpty: an empty batch is a no-op, not an error.
func TestEncodeBatchEmpty(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EncodeBatch(nil); err != nil {
		t.Fatalf("EncodeBatch(nil) = %v, want nil", err)
	}
	if err := c.EncodeBatch([][][]byte{}); err != nil {
		t.Fatalf("EncodeBatch(empty) = %v, want nil", err)
	}
}

// TestEncodeBatchValidatesUpFront: a malformed set anywhere in the batch
// fails the whole call before any parity is written, so earlier valid
// sets are not half-encoded.
func TestEncodeBatchValidatesUpFront(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := makeSets(t, c, 3, 64, 7)
	batch[2][5] = batch[2][5][:32] // inconsistent shard size in the last set
	if err := c.EncodeBatch(batch); !errors.Is(err, ErrShardSize) {
		t.Fatalf("EncodeBatch with bad set = %v, want ErrShardSize", err)
	}
	for i := c.DataShards(); i < c.TotalShards(); i++ {
		if !bytes.Equal(batch[0][i], make([]byte, 64)) {
			t.Fatalf("set 0 parity shard %d written despite failed validation", i)
		}
	}
	batch2 := makeSets(t, c, 2, 64, 8)
	batch2[1] = batch2[1][:3] // wrong shard count
	if err := c.EncodeBatch(batch2); !errors.Is(err, ErrShardCount) {
		t.Fatalf("EncodeBatch with short set = %v, want ErrShardCount", err)
	}
}
