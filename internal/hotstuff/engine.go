package hotstuff

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"predis/internal/consensus"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/obs"
	"predis/internal/wire"
)

// Config parameterizes an Engine.
type Config struct {
	// N is the number of replicas; IDs must be 0..N-1.
	N int
	// Self is this replica's ID.
	Self wire.NodeID
	// App supplies and consumes payloads.
	App consensus.Application
	// Signer signs and verifies protocol messages.
	Signer crypto.Signer
	// ViewTimeout is the base pacemaker timeout; it doubles per
	// consecutive timeout. Default 2s.
	ViewTimeout time.Duration
	// ReproposeInterval is how often an idle leader re-asks the app for a
	// proposal. Default 10ms.
	ReproposeInterval time.Duration
	// Trace, when non-nil, records the block_proposed (proposal learned →
	// QC formed) and prepare_commit (QC → execution) lifecycle stages on
	// this replica's timeline. Nil disables tracing.
	Trace *obs.Tracer
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ViewTimeout <= 0 {
		out.ViewTimeout = 2 * time.Second
	}
	if out.ReproposeInterval <= 0 {
		out.ReproposeInterval = 10 * time.Millisecond
	}
	return out
}

// blockEnt is a node in the local block tree.
type blockEnt struct {
	block     *Block
	hash      crypto.Hash
	validated bool
	invalid   bool
	committed bool
}

// Engine is a chained-HotStuff replica implementing consensus.Engine.
type Engine struct {
	cfg Config
	ctx env.Context
	f   int
	quo int

	curView       uint64
	lastVotedView uint64
	highQC        *QC
	lockedQC      *QC

	blocks map[crypto.Hash]*blockEnt

	// execHead is the hash of the last executed block; execHeight its
	// height. Committed-but-unexecuted blocks (pending app validation)
	// queue behind it in chain order.
	execHead   crypto.Hash
	execHeight uint64

	// commitQueue holds committed blocks awaiting execution, oldest first.
	commitQueue []*blockEnt

	// votes collected by this replica as next leader, per block hash.
	votes map[crypto.Hash]*QC // keyed by voteDigest(view, block)

	// newViews collected per view.
	newViews map[uint64]map[wire.NodeID]*QC

	proposedInView uint64 // last view in which we proposed

	// seenProp records the first authenticated proposal block per view; a
	// second distinct leader-signed block, or a QC certifying a different
	// block of the view, is equivocation evidence.
	seenProp map[uint64]*Block
	// evidenced marks views whose equivocation this replica has proven,
	// so one attack counts (and broadcasts) once.
	evidenced map[uint64]bool

	pacemaker env.Timer
	repropose env.Timer
	backoff   int

	peers []wire.NodeID

	// stats
	committed     uint64
	timeouts      uint64
	equivocations uint64
}

var _ consensus.Engine = (*Engine)(nil)

// New builds a HotStuff replica.
func New(cfg Config) (*Engine, error) {
	c := cfg.withDefaults()
	if c.N < 1 || int(c.Self) >= c.N {
		return nil, fmt.Errorf("hotstuff: bad N=%d Self=%d", c.N, c.Self)
	}
	if c.App == nil || c.Signer == nil {
		return nil, errors.New("hotstuff: App and Signer are required")
	}
	peers := make([]wire.NodeID, c.N)
	for i := range peers {
		peers[i] = wire.NodeID(i)
	}
	e := &Engine{
		cfg:       c,
		f:         consensus.FaultBound(c.N),
		quo:       consensus.Quorum(c.N),
		curView:   1,
		highQC:    GenesisQC(),
		lockedQC:  GenesisQC(),
		blocks:    make(map[crypto.Hash]*blockEnt),
		votes:     make(map[crypto.Hash]*QC),
		newViews:  make(map[uint64]map[wire.NodeID]*QC),
		seenProp:  make(map[uint64]*Block),
		evidenced: make(map[uint64]bool),
		peers:     peers,
	}
	// Seed the tree with the implicit genesis block.
	e.blocks[crypto.ZeroHash] = &blockEnt{
		block:     &Block{Height: 0, View: 0, Justify: GenesisQC()},
		hash:      crypto.ZeroHash,
		validated: true,
		committed: true,
	}
	return e, nil
}

// View returns the current view.
func (e *Engine) View() uint64 { return e.curView }

// LastExecuted returns the height of the last executed block.
func (e *Engine) LastExecuted() uint64 { return e.execHeight }

// Stats returns (blocks committed, pacemaker timeouts).
func (e *Engine) Stats() (committed, timeouts uint64) { return e.committed, e.timeouts }

// Equivocations returns how many leader equivocations this replica has
// proven, first-hand or through received evidence.
func (e *Engine) Equivocations() uint64 { return e.equivocations }

// Leader returns the leader of the current view.
func (e *Engine) Leader() wire.NodeID { return consensus.LeaderOf(e.curView, e.cfg.N) }

func (e *Engine) leaderOf(view uint64) wire.NodeID { return consensus.LeaderOf(view, e.cfg.N) }

func (e *Engine) isLeader() bool { return e.Leader() == e.cfg.Self }

// Start implements env.Handler.
func (e *Engine) Start(ctx env.Context) {
	e.ctx = ctx
	e.armRepropose()
	e.tryPropose()
}

// Poke implements consensus.Engine.
func (e *Engine) Poke() {
	if e.ctx == nil {
		return
	}
	e.tryExecute()
	e.retryPendingVotes()
	e.tryPropose()
	if e.pacemaker == nil && e.hasPendingWork() {
		e.armPacemaker()
	}
}

func (e *Engine) hasPendingWork() bool {
	if wr, ok := e.cfg.App.(consensus.WorkReporter); ok {
		return wr.HasPendingWork()
	}
	return false
}

func (e *Engine) armRepropose() {
	e.repropose = e.ctx.After(e.cfg.ReproposeInterval, func() {
		e.tryPropose()
		e.armRepropose()
	})
}

func (e *Engine) armPacemaker() {
	timeout := e.cfg.ViewTimeout << uint(e.backoff)
	view := e.curView
	e.pacemaker = e.ctx.After(timeout, func() {
		e.pacemaker = nil
		if e.curView != view {
			return // progress happened; a fresh timer was armed
		}
		if !e.hasPendingWork() && len(e.commitQueue) == 0 {
			return
		}
		e.onTimeout()
	})
}

func (e *Engine) resetPacemaker() {
	if e.pacemaker != nil {
		e.pacemaker.Stop()
		e.pacemaker = nil
	}
}

// onTimeout advances the view and tells the new leader.
func (e *Engine) onTimeout() {
	e.timeouts++
	e.backoff++
	e.advanceView(e.curView + 1)
	nv := &NewViewMsg{View: e.curView, HighQC: e.highQC, Replica: e.cfg.Self}
	nv.Sig = e.cfg.Signer.Sign(nv.signDigest())
	leader := e.Leader()
	if leader == e.cfg.Self {
		e.onNewView(e.cfg.Self, nv)
	} else {
		e.ctx.Send(leader, nv)
	}
}

// advanceView moves to the given view (monotonic) and re-arms the
// pacemaker when work remains.
func (e *Engine) advanceView(view uint64) {
	if view <= e.curView {
		return
	}
	e.curView = view
	e.resetPacemaker()
	if e.hasPendingWork() || len(e.commitQueue) > 0 {
		e.armPacemaker()
	}
}

// tryPropose proposes in the current view when this replica leads it and
// has not proposed yet. The new block extends highQC's block.
func (e *Engine) tryPropose() {
	if e.ctx == nil || !e.isLeader() || e.proposedInView >= e.curView {
		return
	}
	// Liveness precondition: leading view v requires either the QC of
	// v−1 or a quorum of NewView(v) messages.
	if !(e.highQC.View == e.curView-1 || len(e.newViews[e.curView]) >= e.quo) {
		return
	}
	parentEnt := e.blocks[e.highQC.Block]
	if parentEnt == nil {
		return // should not happen: highQC implies we saw the block
	}
	height := parentEnt.block.Height + 1
	payload, _, ok := e.cfg.App.BuildProposal(height, parentEnt.block.Payload)
	if !ok {
		return
	}
	b := &Block{
		Height:  height,
		View:    e.curView,
		Parent:  e.highQC.Block,
		Justify: e.highQC,
		Payload: payload,
		Leader:  e.cfg.Self,
	}
	b.Sig = e.cfg.Signer.Sign(b.Hash())
	e.proposedInView = e.curView
	prop := &Proposal{Block: b}
	env.Multicast(e.ctx, e.peers, prop)
	e.onProposal(e.cfg.Self, prop)
}

// Receive implements env.Handler.
func (e *Engine) Receive(from wire.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *Proposal:
		e.onProposal(from, msg)
	case *Vote:
		e.onVote(from, msg)
	case *NewViewMsg:
		e.onNewView(from, msg)
	case *Evidence:
		e.onEvidence(from, msg)
	default:
		e.ctx.Logf("hotstuff: unexpected message %s from %d", wire.TypeName(m.Type()), from)
	}
}

func (e *Engine) onProposal(from wire.NodeID, m *Proposal) {
	b := m.Block
	if b.Leader != e.leaderOf(b.View) || (from != b.Leader && from != e.cfg.Self) {
		return
	}
	hash := b.Hash()
	if _, seen := e.blocks[hash]; seen {
		return
	}
	if !e.cfg.Signer.Verify(int(b.Leader), hash, b.Sig) {
		return
	}
	// Record the first authenticated proposal per view — before the
	// justify/parent checks, so a forged variant that cannot extend the
	// chain is still remembered as the leader's signed word. A second,
	// distinct leader-signed block for the view is first-hand proof of
	// equivocation.
	if prev, ok := e.seenProp[b.View]; ok {
		if prev.Hash() != hash {
			e.foundEquivocation(b.View, b.Leader, prev, b)
			return
		}
	} else {
		e.seenProp[b.View] = b
	}
	if !b.Justify.Verify(e.cfg.Signer, e.cfg.N, e.quo) {
		return
	}
	if b.Justify.Block != b.Parent {
		return // a block must extend the block its QC certifies
	}
	parent, ok := e.blocks[b.Parent]
	if !ok || b.Height != parent.block.Height+1 {
		// Unknown parent (we fell behind) — chained HotStuff recovers via
		// subsequent QCs; without the parent we cannot validate.
		return
	}
	ent := &blockEnt{block: b, hash: hash}
	e.blocks[hash] = ent

	// block_proposed: this replica learned an authenticated proposal for
	// the height (first learn wins).
	e.cfg.Trace.Begin(obs.StageBlockProposed, obs.BlockKey(b.Height), e.cfg.Self, e.ctx.Now())
	e.processQC(b.Justify)
	e.advanceView(b.View) // seeing a valid proposal for view v synchronizes us into it
	e.tryVote(ent)
	e.tryPropose() // the parent we were waiting for may have arrived
}

// tryVote applies the chained-HotStuff voting rule and the application's
// semantic validation; on success it sends a vote to the next leader.
func (e *Engine) tryVote(ent *blockEnt) {
	b := ent.block
	if b.View < e.curView || b.View <= e.lastVotedView || ent.invalid {
		return
	}
	// Safety rule: extend the locked block, or see a higher QC.
	if !(b.Justify.View > e.lockedQC.View || e.extendsLocked(b)) {
		return
	}
	if !ent.validated {
		parent := e.blocks[b.Parent]
		if parent == nil {
			return
		}
		_, err := e.cfg.App.ValidateProposal(b.Height, b.Payload, parent.block.Payload)
		switch {
		case err == nil:
			ent.validated = true
		case errors.Is(err, consensus.ErrPending):
			return // Poke retries via retryPendingVotes
		default:
			ent.invalid = true
			return
		}
	}
	e.lastVotedView = b.View
	vote := &Vote{View: b.View, Block: ent.hash, Replica: e.cfg.Self}
	vote.Sig = e.cfg.Signer.Sign(voteDigest(vote.View, vote.Block))
	next := e.leaderOf(b.View + 1)
	if next == e.cfg.Self {
		e.onVote(e.cfg.Self, vote)
	} else {
		e.ctx.Send(next, vote)
	}
}

// retryPendingVotes revisits blocks whose validation was pending (missing
// bundles) and votes if the view is still current. Blocks are visited in
// (view, hash) order so map iteration never affects the wire.
func (e *Engine) retryPendingVotes() {
	pending := make([]*blockEnt, 0, 4)
	for _, ent := range e.blocks {
		if ent.block != nil && !ent.validated && !ent.invalid && !ent.committed && ent.block.View >= e.curView {
			pending = append(pending, ent)
		}
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].block.View != pending[j].block.View {
			return pending[i].block.View < pending[j].block.View
		}
		return bytes.Compare(pending[i].hash[:], pending[j].hash[:]) < 0
	})
	for _, ent := range pending {
		e.tryVote(ent)
	}
}

// OnRestart implements env.Restartable: a crash suppressed the repropose
// and pacemaker timer chains (they re-arm inside their own callbacks), so
// re-arm them. The restarted replica stays consensus-passive until its
// application fast-forwards it or the chain reaches it again; full
// HotStuff restart recovery would additionally need block-tree sync and
// is out of scope (see EXPERIMENTS.md).
func (e *Engine) OnRestart() {
	if e.ctx == nil {
		return
	}
	if e.repropose != nil {
		e.repropose.Stop()
	}
	e.armRepropose()
	e.resetPacemaker()
	e.backoff = 0
	if e.hasPendingWork() || len(e.commitQueue) > 0 {
		e.armPacemaker()
	}
	e.Poke()
}

func (e *Engine) extendsLocked(b *Block) bool {
	if e.lockedQC.IsGenesis() {
		return true
	}
	// Walk ancestors until we pass the locked block's height.
	locked, ok := e.blocks[e.lockedQC.Block]
	if !ok {
		return true
	}
	cur := b
	for {
		if cur.Parent == e.lockedQC.Block {
			return true
		}
		parent, ok := e.blocks[cur.Parent]
		if !ok || parent.block.Height <= locked.block.Height {
			return false
		}
		cur = parent.block
	}
}

func (e *Engine) onVote(from wire.NodeID, m *Vote) {
	if m.Replica != from {
		return
	}
	if e.leaderOf(m.View+1) != e.cfg.Self {
		return // not the collector for this view
	}
	if int(m.Replica) >= e.cfg.N {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Replica), voteDigest(m.View, m.Block), m.Sig) {
		return
	}
	key := voteDigest(m.View, m.Block) // bind view+block so forged views cannot poison a QC
	qc := e.votes[key]
	if qc == nil {
		qc = &QC{View: m.View, Block: m.Block}
		e.votes[key] = qc
	}
	for _, id := range qc.Signers {
		if id == m.Replica {
			return // duplicate
		}
	}
	qc.Signers = append(qc.Signers, m.Replica)
	qc.Sigs = append(qc.Sigs, m.Sig)
	if len(qc.Signers) >= e.quo {
		delete(e.votes, key)
		e.processQC(qc)
		e.advanceView(qc.View + 1)
		e.backoff = 0
		e.tryPropose()
	}
}

func (e *Engine) onNewView(from wire.NodeID, m *NewViewMsg) {
	if m.Replica != from || int(m.Replica) >= e.cfg.N {
		return
	}
	if e.leaderOf(m.View) != e.cfg.Self || m.View < e.curView {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Replica), m.signDigest(), m.Sig) {
		return
	}
	if !m.HighQC.Verify(e.cfg.Signer, e.cfg.N, e.quo) {
		return
	}
	e.processQC(m.HighQC)
	byReplica, ok := e.newViews[m.View]
	if !ok {
		byReplica = make(map[wire.NodeID]*QC)
		e.newViews[m.View] = byReplica
	}
	byReplica[m.Replica] = m.HighQC
	if len(byReplica) >= e.quo {
		e.advanceView(m.View)
		e.tryPropose()
	}
}

// foundEquivocation runs when this replica holds two leader-signed blocks
// for one view: count it once, broadcast the self-authenticating
// evidence, and abandon the view.
func (e *Engine) foundEquivocation(view uint64, leader wire.NodeID, a, b *Block) {
	if !e.evidenced[view] {
		e.evidenced[view] = true
		e.equivocations++
		ev := &Evidence{
			View: view, Leader: leader,
			BlockA: a.Hash(), SigA: a.Sig,
			BlockB: b.Hash(), SigB: b.Sig,
			Conflict: GenesisQC(),
		}
		env.Multicast(e.ctx, e.peers, ev)
		e.ctx.Logf("hotstuff: leader %d equivocated in view %d", leader, view)
	}
	e.viewChangeTo(view + 1)
}

// foundQCConflict runs when a quorum certified a different block than the
// authenticated proposal this replica received for the same view — the
// leader showed different blocks to different replicas. The leader-signed
// proposal half plus the conflicting certificate form the evidence.
func (e *Engine) foundQCConflict(prop *Block, qc *QC) {
	if e.evidenced[qc.View] {
		return
	}
	e.evidenced[qc.View] = true
	e.equivocations++
	ev := &Evidence{
		View: qc.View, Leader: e.leaderOf(qc.View),
		BlockA: prop.Hash(), SigA: prop.Sig,
		Conflict: qc,
	}
	env.Multicast(e.ctx, e.peers, ev)
	e.ctx.Logf("hotstuff: view %d QC conflicts with leader %d's proposal", qc.View, e.leaderOf(qc.View))
}

// viewChangeTo abandons the current view in favour of a later one and
// tells its leader, exactly as a pacemaker timeout does — equivocation
// evidence is a proof-backed timeout.
func (e *Engine) viewChangeTo(view uint64) {
	if view <= e.curView {
		return
	}
	e.advanceView(view)
	nv := &NewViewMsg{View: e.curView, HighQC: e.highQC, Replica: e.cfg.Self}
	nv.Sig = e.cfg.Signer.Sign(nv.signDigest())
	if leader := e.Leader(); leader == e.cfg.Self {
		e.onNewView(e.cfg.Self, nv)
	} else {
		e.ctx.Send(leader, nv)
	}
}

func (e *Engine) onEvidence(from wire.NodeID, m *Evidence) {
	if m.Leader != e.leaderOf(m.View) || e.evidenced[m.View] {
		return
	}
	if !e.cfg.Signer.Verify(int(m.Leader), m.BlockA, m.SigA) {
		return
	}
	viaQC := m.Conflict != nil && !m.Conflict.IsGenesis()
	switch {
	case len(m.SigB) > 0:
		if m.BlockB == m.BlockA || !e.cfg.Signer.Verify(int(m.Leader), m.BlockB, m.SigB) {
			return
		}
	case viaQC:
		if m.Conflict.View != m.View || m.Conflict.Block == m.BlockA ||
			!m.Conflict.Verify(e.cfg.Signer, e.cfg.N, e.quo) {
			return
		}
	default:
		return // no second half; not evidence
	}
	e.evidenced[m.View] = true
	e.equivocations++
	e.ctx.Logf("hotstuff: evidence of leader %d equivocating in view %d", m.Leader, m.View)
	if viaQC {
		e.processQC(m.Conflict) // a valid QC is useful state regardless
	}
	e.viewChangeTo(m.View + 1)
}

// processQC folds a certificate into local state: raise highQC, update the
// lock (two-chain), and commit (three-chain).
func (e *Engine) processQC(qc *QC) {
	if qc.IsGenesis() {
		return
	}
	if prev, ok := e.seenProp[qc.View]; ok && prev.Hash() != qc.Block {
		e.foundQCConflict(prev, qc)
	}
	if qc.View > e.highQC.View {
		e.highQC = qc
	}
	// b'' = block certified by qc; b' = parent; b = grandparent.
	b2, ok := e.blocks[qc.Block]
	if !ok {
		return
	}
	// The QC is HotStuff's prepare-quorum analogue: close block_proposed
	// for the certified height, open prepare_commit (QC → execution).
	// End/Begin are idempotent, so re-derived QCs never distort spans.
	now := e.ctx.Now()
	e.cfg.Trace.End(obs.StageBlockProposed, obs.BlockKey(b2.block.Height), e.cfg.Self, now)
	e.cfg.Trace.Begin(obs.StagePrepareCommit, obs.BlockKey(b2.block.Height), e.cfg.Self, now)
	b1, ok := e.blocks[b2.block.Parent]
	if !ok || b1.block.Height == b2.block.Height {
		return
	}
	// Two-chain lock: adopt the certified block's justify (the QC of b')
	// whenever it is newer than the current lock.
	if b2.block.Justify.View > e.lockedQC.View {
		e.lockedQC = b2.block.Justify
	}
	b0, ok := e.blocks[b1.block.Parent]
	if !ok {
		return
	}
	// Three-chain commit: consecutive views b–b'–b'' commit b.
	if b2.block.View == b1.block.View+1 && b1.block.View == b0.block.View+1 {
		e.commitUpTo(b0)
	}
}

// commitUpTo marks b0 and all uncommitted ancestors committed, queues them
// in chain order, and tries to execute.
func (e *Engine) commitUpTo(b0 *blockEnt) {
	if b0.committed {
		return
	}
	var chain []*blockEnt
	cur := b0
	for !cur.committed {
		chain = append(chain, cur)
		parent, ok := e.blocks[cur.block.Parent]
		if !ok {
			break
		}
		cur = parent
	}
	// chain is newest→oldest; append oldest-first to the queue.
	for i := len(chain) - 1; i >= 0; i-- {
		chain[i].committed = true
		e.commitQueue = append(e.commitQueue, chain[i])
	}
	e.tryExecute()
}

// tryExecute delivers committed blocks in chain order, gating each on
// application validation (a replica may learn a block committed before it
// can reconstruct it, e.g. with bundles still in flight).
func (e *Engine) tryExecute() {
	for len(e.commitQueue) > 0 {
		ent := e.commitQueue[0]
		if ent.block.Parent != e.execHead {
			// Should not happen: commit order follows the chain.
			e.ctx.Logf("hotstuff: commit queue out of order at height %d", ent.block.Height)
			return
		}
		if !ent.validated {
			parent := e.blocks[ent.block.Parent]
			_, err := e.cfg.App.ValidateProposal(ent.block.Height, ent.block.Payload, parent.block.Payload)
			if err != nil {
				if !errors.Is(err, consensus.ErrPending) {
					// A committed block the app rejects outright would be a
					// quorum of faulty validators; log loudly.
					e.ctx.Logf("hotstuff: committed block failed validation: %v", err)
				}
				return
			}
			ent.validated = true
		}
		e.commitQueue = e.commitQueue[1:]
		e.execHead = ent.hash
		e.execHeight = ent.block.Height
		e.committed++
		e.resetPacemaker()
		e.cfg.Trace.End(obs.StagePrepareCommit, obs.BlockKey(ent.block.Height), e.cfg.Self, e.ctx.Now())
		e.cfg.App.OnCommit(ent.block.Height, ent.block.Payload)
		e.evictSiblings(ent)
		e.pruneBelow(ent.block.Height)
		if e.hasPendingWork() || len(e.commitQueue) > 0 {
			e.armPacemaker()
		}
	}
}

// evictSiblings reports fork blocks abandoned by the execution of a
// competing block at the same height to a ProposalEvicter application, so
// speculative side effects keyed to them can be retracted. Every fork
// block is visited exactly once — at its own height's execution — and
// siblings are walked in hash order so the callback's side effects
// (spec-discard messages) never depend on map iteration.
func (e *Engine) evictSiblings(executed *blockEnt) {
	ev, ok := e.cfg.App.(consensus.ProposalEvicter)
	if !ok {
		return
	}
	var losers []*blockEnt
	for _, ent := range e.blocks {
		if ent.block != nil && ent.block.Height == executed.block.Height &&
			ent.hash != executed.hash && !ent.committed && ent.block.Payload != nil {
			losers = append(losers, ent)
		}
	}
	sort.Slice(losers, func(i, j int) bool {
		return bytes.Compare(losers[i].hash[:], losers[j].hash[:]) < 0
	})
	for _, ent := range losers {
		ev.OnProposalEvicted(ent.block.Height, ent.block.Payload)
	}
}

// pruneBelow drops block-tree entries well below the executed height to
// bound memory; a margin is kept for late votes and ancestor walks.
// Uncommitted entries pruned here were already reported to the
// ProposalEvicter when their height executed, so no callback fires.
func (e *Engine) pruneBelow(height uint64) {
	const margin = 64
	if height <= margin {
		return
	}
	floor := height - margin
	for h, ent := range e.blocks {
		if ent.block.Height < floor && h != crypto.ZeroHash && ent.hash != e.execHead {
			delete(e.blocks, h)
		}
	}
	for v := range e.newViews {
		if v+margin < e.curView {
			delete(e.newViews, v)
		}
	}
	for v := range e.seenProp {
		if v+margin < e.curView {
			delete(e.seenProp, v)
		}
	}
	for v := range e.evidenced {
		if v+margin < e.curView {
			delete(e.evidenced, v)
		}
	}
}
