// Package hotstuff implements chained HotStuff (Yin et al., PODC'19) as an
// event-driven consensus engine over the env runtime: pipelined proposals,
// quorum certificates, the two-chain lock / three-chain commit rule, and a
// NewView pacemaker with exponential backoff.
//
// Quorum certificates carry an explicit list of signature shares, matching
// the relab/hotstuff artifact the paper evaluates (which uses list-based
// ECDSA certificates rather than threshold signatures), so QC wire size is
// Θ(n) like the system under study.
package hotstuff

import (
	"sync"

	"predis/internal/crypto"
	"predis/internal/wire"
)

// Message type tags.
const (
	TypeProposal = wire.TypeRangeHotStuff + 1
	TypeVote     = wire.TypeRangeHotStuff + 2
	TypeNewView  = wire.TypeRangeHotStuff + 3
	TypeEvidence = wire.TypeRangeHotStuff + 4
)

// voteDigest is what replicas sign to vote for a block in a view.
func voteDigest(view uint64, block crypto.Hash) crypto.Hash {
	e := wire.NewEncoder(8 + 32)
	e.U64(view)
	e.Bytes32(block)
	return crypto.HashBytes(e.Bytes())
}

// QC is a quorum certificate: n−f signature shares over (View, Block).
type QC struct {
	View    uint64
	Block   crypto.Hash
	Signers []wire.NodeID
	Sigs    [][]byte
}

// GenesisQC certifies the implicit genesis block.
func GenesisQC() *QC { return &QC{} }

// IsGenesis reports whether this is the genesis certificate.
func (q *QC) IsGenesis() bool { return q.View == 0 && q.Block.IsZero() }

// EncodedSize returns the QC's wire size.
func (q *QC) EncodedSize() int {
	n := 8 + 32 + 4
	for _, s := range q.Sigs {
		n += 4 + wire.SizeVarBytes(s)
	}
	return n
}

// EncodeTo appends the QC.
func (q *QC) EncodeTo(e *wire.Encoder) {
	e.U64(q.View)
	e.Bytes32(q.Block)
	e.U32(uint32(len(q.Signers)))
	for i, id := range q.Signers {
		e.Node(id)
		e.VarBytes(q.Sigs[i])
	}
}

// DecodeQC reads a QC.
func DecodeQC(d *wire.Decoder) (*QC, error) {
	q := &QC{View: d.U64(), Block: d.Bytes32()}
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining()/8 {
		return nil, wire.ErrTruncated
	}
	q.Signers = make([]wire.NodeID, n)
	q.Sigs = make([][]byte, n)
	for i := 0; i < n; i++ {
		q.Signers[i] = d.Node()
		q.Sigs[i] = d.VarBytes()
	}
	return q, d.Err()
}

// Verify checks the certificate: at least quorum distinct signers, each
// share valid over (View, Block). The genesis QC is always valid.
func (q *QC) Verify(signer crypto.Signer, n int, quorum int) bool {
	if q.IsGenesis() {
		return true
	}
	if len(q.Signers) < quorum || len(q.Signers) != len(q.Sigs) {
		return false
	}
	digest := voteDigest(q.View, q.Block)
	seen := make(map[wire.NodeID]struct{}, len(q.Signers))
	for i, id := range q.Signers {
		if int(id) >= n {
			return false
		}
		if _, dup := seen[id]; dup {
			return false
		}
		seen[id] = struct{}{}
		if !signer.Verify(int(id), digest, q.Sigs[i]) {
			return false
		}
	}
	return true
}

// Block is a chained-HotStuff block: each proposal extends the block
// certified by its Justify QC.
type Block struct {
	// Height is the chain position (1 + parent height); the application's
	// commit sequence.
	Height uint64
	// View in which the block was proposed.
	View uint64
	// Parent is the hash of the parent block (zero for blocks extending
	// genesis).
	Parent crypto.Hash
	// Justify certifies the parent.
	Justify *QC
	// Payload is the application content.
	Payload wire.Message
	// Leader is the proposer.
	Leader wire.NodeID
	// Sig is the leader's signature over Hash().
	Sig []byte

	// payloadEnc memoizes the marshaled Payload frame: proposing to n
	// replicas (and hashing, and re-proposing) encodes the block payload
	// once instead of once per phase per recipient.
	payloadEnc wire.EncCache
	// hash memoizes Hash(); valid once hashSet. Safe because every
	// identity field (everything but Sig, which Hash excludes) is set
	// before the first Hash call and blocks are immutable once built.
	hash    crypto.Hash
	hashSet bool
}

// Hash returns the block identity (header fields + payload digest binding
// via the encoded payload, excluding the signature). The digest is
// memoized: verification paths call Hash repeatedly per block.
func (b *Block) Hash() crypto.Hash {
	if b.hashSet {
		return b.hash
	}
	e := wire.NewEncoder(128)
	e.U64(b.Height)
	e.U64(b.View)
	e.Bytes32(b.Parent)
	e.U64(b.Justify.View)
	e.Bytes32(b.Justify.Block)
	e.Node(b.Leader)
	e.Bytes32(crypto.HashBytes(b.payloadEnc.Frame(b.Payload)))
	b.hash = crypto.HashBytes(e.Bytes())
	b.hashSet = true
	return b.hash
}

// Proposal carries a block from its leader to all replicas.
type Proposal struct {
	Block *Block
}

var _ wire.Message = (*Proposal)(nil)

// Type implements wire.Message.
func (m *Proposal) Type() wire.Type { return TypeProposal }

// WireSize implements wire.Message.
func (m *Proposal) WireSize() int {
	b := m.Block
	return wire.FrameOverhead + 8 + 8 + 32 + b.Justify.EncodedSize() +
		4 + 4 + b.payloadEnc.FrameSize(b.Payload) + wire.SizeVarBytes(b.Sig)
}

// EncodeBody implements wire.Message.
func (m *Proposal) EncodeBody(e *wire.Encoder) {
	b := m.Block
	e.U64(b.Height)
	e.U64(b.View)
	e.Bytes32(b.Parent)
	b.Justify.EncodeTo(e)
	e.Node(b.Leader)
	e.VarBytes(b.payloadEnc.Frame(b.Payload))
	e.VarBytes(b.Sig)
}

func decodeProposal(d *wire.Decoder) (wire.Message, error) {
	b := &Block{Height: d.U64(), View: d.U64(), Parent: d.Bytes32()}
	qc, err := DecodeQC(d)
	if err != nil {
		return nil, err
	}
	b.Justify = qc
	b.Leader = d.Node()
	raw := d.VarBytes()
	if err := d.Err(); err != nil {
		return nil, err
	}
	payload, _, err := wire.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	b.Payload = payload
	// The decoder copied raw, so the cache can own it: relaying or
	// re-hashing the block reuses the received payload bytes.
	b.payloadEnc.Prime(raw)
	b.Sig = d.VarBytes()
	return &Proposal{Block: b}, d.Err()
}

// Equivocate implements the fault injector's Equivocator interface: it
// returns a proposal for the same view whose block disagrees with the
// original (different parent link), re-signed by signer as the original
// leader. Receivers accept the signature, but the block cannot extend the
// chain its Justify certifies, so victims refuse to vote for it — and the
// conflicting signed block is equivocation evidence.
func (m *Proposal) Equivocate(signer crypto.Signer) wire.Message {
	b := m.Block
	fork := &Block{
		Height:  b.Height,
		View:    b.View,
		Parent:  b.Parent,
		Justify: b.Justify,
		Payload: b.Payload,
		Leader:  b.Leader,
	}
	fork.Parent[0] ^= 0xff
	fork.Sig = signer.Sign(fork.Hash())
	return &Proposal{Block: fork}
}

// Evidence proves leader equivocation in a view: an authenticated
// proposal block (BlockA, leader-signed by SigA) plus either a second
// leader-signed block (BlockB/SigB) or a quorum certificate for a
// different block of the same view (Conflict). Both halves are verified
// by every receiver, so the message needs no reporter signature.
type Evidence struct {
	View     uint64
	Leader   wire.NodeID
	BlockA   crypto.Hash
	SigA     []byte
	BlockB   crypto.Hash
	SigB     []byte // empty when Conflict carries the second half
	Conflict *QC    // genesis when SigB carries the second half
}

var _ wire.Message = (*Evidence)(nil)

// Type implements wire.Message.
func (m *Evidence) Type() wire.Type { return TypeEvidence }

// WireSize implements wire.Message.
func (m *Evidence) WireSize() int {
	return wire.FrameOverhead + 8 + 4 + 32 + wire.SizeVarBytes(m.SigA) +
		32 + wire.SizeVarBytes(m.SigB) + m.Conflict.EncodedSize()
}

// EncodeBody implements wire.Message.
func (m *Evidence) EncodeBody(e *wire.Encoder) {
	e.U64(m.View)
	e.Node(m.Leader)
	e.Bytes32(m.BlockA)
	e.VarBytes(m.SigA)
	e.Bytes32(m.BlockB)
	e.VarBytes(m.SigB)
	m.Conflict.EncodeTo(e)
}

func decodeEvidence(d *wire.Decoder) (wire.Message, error) {
	m := &Evidence{
		View: d.U64(), Leader: d.Node(),
		BlockA: d.Bytes32(), SigA: d.VarBytes(),
		BlockB: d.Bytes32(), SigB: d.VarBytes(),
	}
	qc, err := DecodeQC(d)
	if err != nil {
		return nil, err
	}
	m.Conflict = qc
	return m, d.Err()
}

// Vote is a replica's signature share for a block, sent to the next view's
// leader (HotStuff's all-to-one voting).
type Vote struct {
	View    uint64
	Block   crypto.Hash
	Replica wire.NodeID
	Sig     []byte
}

var _ wire.Message = (*Vote)(nil)

// Type implements wire.Message.
func (m *Vote) Type() wire.Type { return TypeVote }

// WireSize implements wire.Message.
func (m *Vote) WireSize() int {
	return wire.FrameOverhead + 8 + 32 + 4 + wire.SizeVarBytes(m.Sig)
}

// EncodeBody implements wire.Message.
func (m *Vote) EncodeBody(e *wire.Encoder) {
	e.U64(m.View)
	e.Bytes32(m.Block)
	e.Node(m.Replica)
	e.VarBytes(m.Sig)
}

func decodeVote(d *wire.Decoder) (wire.Message, error) {
	m := &Vote{View: d.U64(), Block: d.Bytes32(), Replica: d.Node(), Sig: d.VarBytes()}
	return m, d.Err()
}

// NewViewMsg tells the next leader a replica has timed out of a view (or
// finished it), carrying the replica's highest QC.
type NewViewMsg struct {
	View    uint64 // the view being entered
	HighQC  *QC
	Replica wire.NodeID
	Sig     []byte
}

var _ wire.Message = (*NewViewMsg)(nil)

// Type implements wire.Message.
func (m *NewViewMsg) Type() wire.Type { return TypeNewView }

// WireSize implements wire.Message.
func (m *NewViewMsg) WireSize() int {
	return wire.FrameOverhead + 8 + m.HighQC.EncodedSize() + 4 + wire.SizeVarBytes(m.Sig)
}

// EncodeBody implements wire.Message.
func (m *NewViewMsg) EncodeBody(e *wire.Encoder) {
	e.U64(m.View)
	m.HighQC.EncodeTo(e)
	e.Node(m.Replica)
	e.VarBytes(m.Sig)
}

func decodeNewView(d *wire.Decoder) (wire.Message, error) {
	m := &NewViewMsg{View: d.U64()}
	qc, err := DecodeQC(d)
	if err != nil {
		return nil, err
	}
	m.HighQC = qc
	m.Replica = d.Node()
	m.Sig = d.VarBytes()
	return m, d.Err()
}

// signDigest is what a replica signs on a NewView.
func (m *NewViewMsg) signDigest() crypto.Hash {
	return voteDigest(m.View, crypto.HashConcat([]byte("newview"), m.HighQC.Block[:]))
}

var registerOnce sync.Once

// RegisterMessages registers HotStuff message types; idempotent.
func RegisterMessages() {
	registerOnce.Do(func() {
		wire.Register(TypeProposal, "hotstuff.proposal", decodeProposal)
		wire.Register(TypeVote, "hotstuff.vote", decodeVote)
		wire.Register(TypeNewView, "hotstuff.newview", decodeNewView)
		wire.Register(TypeEvidence, "hotstuff.evidence", decodeEvidence)
	})
}
