package hotstuff

import (
	"errors"
	"testing"
	"time"

	"predis/internal/consensus"
	"predis/internal/crypto"
	"predis/internal/faults"
	"predis/internal/simnet"
	"predis/internal/wire"
)

// chainApp proposes numbered payloads; validation checks the parent link so
// pipelining bugs surface as failures.
type chainApp struct {
	produced uint64
	max      uint64
	commits  []uint64
	wantWork bool
	pendOnce map[uint64]bool
}

type payloadMsg struct {
	Height uint64
	Parent uint64
}

const payloadType = wire.TypeRangeTest + 0x30

func (p *payloadMsg) Type() wire.Type { return payloadType }
func (p *payloadMsg) WireSize() int   { return wire.FrameOverhead + 16 }
func (p *payloadMsg) EncodeBody(e *wire.Encoder) {
	e.U64(p.Height)
	e.U64(p.Parent)
}

func registerPayload() {
	if !wire.Registered(payloadType) {
		wire.Register(payloadType, "hs-test-payload", func(d *wire.Decoder) (wire.Message, error) {
			return &payloadMsg{Height: d.U64(), Parent: d.U64()}, d.Err()
		})
	}
}

func (a *chainApp) BuildProposal(height uint64, parent wire.Message) (wire.Message, crypto.Hash, bool) {
	if a.produced >= a.max {
		return nil, crypto.ZeroHash, false
	}
	a.produced++
	var parentHeight uint64
	if parent != nil {
		parentHeight = parent.(*payloadMsg).Height
	}
	p := &payloadMsg{Height: height, Parent: parentHeight}
	return p, crypto.HashBytes(wire.Marshal(p)), true
}

func (a *chainApp) ValidateProposal(height uint64, payload, parent wire.Message) (crypto.Hash, error) {
	p, ok := payload.(*payloadMsg)
	if !ok {
		return crypto.ZeroHash, errors.New("bad payload type")
	}
	if p.Height != height {
		return crypto.ZeroHash, errors.New("height mismatch")
	}
	var parentHeight uint64
	if parent != nil {
		parentHeight = parent.(*payloadMsg).Height
	}
	if p.Parent != parentHeight {
		return crypto.ZeroHash, errors.New("parent link mismatch")
	}
	if a.pendOnce != nil && a.pendOnce[height] {
		delete(a.pendOnce, height)
		return crypto.ZeroHash, consensus.ErrPending
	}
	return crypto.HashBytes(wire.Marshal(p)), nil
}

func (a *chainApp) OnCommit(height uint64, payload wire.Message) {
	a.commits = append(a.commits, height)
}

func (a *chainApp) HasPendingWork() bool { return a.wantWork && len(a.commits) < int(a.max) }

type rig struct {
	net     *simnet.Network
	engines []*Engine
	apps    []*chainApp
}

func newHSRig(t *testing.T, n int, maxBlocks uint64) *rig {
	t.Helper()
	registerPayload()
	RegisterMessages()
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(5 * time.Millisecond), Seed: 11})
	suite := crypto.NewSimSuite(n, 13)
	r := &rig{net: net}
	for i := 0; i < n; i++ {
		app := &chainApp{max: maxBlocks}
		e, err := New(Config{
			N: n, Self: wire.NodeID(i), App: app, Signer: suite.Signer(i),
			ViewTimeout: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.apps = append(r.apps, app)
		r.engines = append(r.engines, e)
		net.AddNode(wire.NodeID(i), e)
	}
	return r
}

func TestHotStuffCommitsChainInOrder(t *testing.T) {
	// Every replica can propose up to 20 blocks; leaders rotate per view.
	// With pipelining the committed sequence must still be 1,2,3,… at
	// every replica.
	r := newHSRig(t, 4, 20)
	for _, a := range r.apps {
		a.wantWork = true
	}
	r.net.Start()
	r.net.Run(10 * time.Second)
	minLen := 1 << 30
	for i, app := range r.apps {
		if len(app.commits) == 0 {
			t.Fatalf("node %d committed nothing", i)
		}
		for j, h := range app.commits {
			if h != uint64(j+1) {
				t.Fatalf("node %d commit order broken: %v", i, app.commits[:j+1])
			}
		}
		if len(app.commits) < minLen {
			minLen = len(app.commits)
		}
	}
	if minLen < 3 {
		t.Fatalf("pipeline barely moved: min commits %d", minLen)
	}
}

func TestHotStuffLeaderRotation(t *testing.T) {
	r := newHSRig(t, 4, 8)
	for _, a := range r.apps {
		a.wantWork = true
	}
	r.net.Start()
	r.net.Run(10 * time.Second)
	// Multiple distinct proposers must have produced blocks (produced>0 on
	// more than one app), showing views rotate.
	producers := 0
	for _, a := range r.apps {
		if a.produced > 0 {
			producers++
		}
	}
	if producers < 2 {
		t.Fatalf("only %d producers; leader rotation broken", producers)
	}
}

func TestHotStuffCrashedLeaderTimeout(t *testing.T) {
	// Note: n = 7, not 4. A 3-chain commit of the block at view v needs
	// the leaders of views v..v+3 alive (proposers of v..v+2 plus the
	// vote collectors of v+1..v+3). With round-robin rotation and n = 4,
	// a single crashed replica intersects every window of 4 consecutive
	// views, so basic chained HotStuff cannot commit at all — a known
	// property of the protocol (production systems use leader reputation
	// or 2-chain variants). At n = 7 a live window exists and progress
	// resumes after pacemaker timeouts.
	r := newHSRig(t, 7, 10)
	for _, a := range r.apps {
		a.wantWork = true
	}
	// Crash the leader of view 1 before start.
	r.net.Crash(1)
	r.net.Start()
	for i := range r.engines {
		if i != 1 {
			r.engines[i].Poke()
		}
	}
	r.net.Run(15 * time.Second)
	for i, app := range r.apps {
		if i == 1 {
			continue
		}
		if len(app.commits) == 0 {
			t.Fatalf("node %d made no progress with crashed leader", i)
		}
	}
	if _, timeouts := r.engines[0].Stats(); timeouts == 0 {
		t.Fatal("no pacemaker timeouts recorded despite crashed leader")
	}
}

func TestHotStuffPendingValidation(t *testing.T) {
	r := newHSRig(t, 4, 6)
	for _, a := range r.apps {
		a.wantWork = true
	}
	r.apps[2].pendOnce = map[uint64]bool{2: true}
	r.net.Start()
	r.net.Run(5 * time.Second)
	// Node 2 must catch up despite the pended validation.
	if len(r.apps[2].commits) < 2 {
		t.Fatalf("node 2 commits: %v", r.apps[2].commits)
	}
	for j, h := range r.apps[2].commits {
		if h != uint64(j+1) {
			t.Fatalf("node 2 order broken: %v", r.apps[2].commits)
		}
	}
}

func TestQCVerify(t *testing.T) {
	suite := crypto.NewSimSuite(4, 21)
	block := crypto.HashBytes([]byte("block"))
	digest := voteDigest(3, block)
	qc := &QC{View: 3, Block: block}
	for i := 0; i < 3; i++ {
		qc.Signers = append(qc.Signers, wire.NodeID(i))
		qc.Sigs = append(qc.Sigs, suite.Signer(i).Sign(digest))
	}
	if !qc.Verify(suite.Signer(3), 4, 3) {
		t.Fatal("valid QC rejected")
	}
	if qc.Verify(suite.Signer(3), 4, 4) {
		t.Fatal("QC below quorum accepted")
	}
	// Duplicate signer must not count.
	dup := &QC{View: 3, Block: block,
		Signers: []wire.NodeID{0, 0, 1},
		Sigs:    [][]byte{qc.Sigs[0], qc.Sigs[0], qc.Sigs[1]},
	}
	if dup.Verify(suite.Signer(3), 4, 3) {
		t.Fatal("QC with duplicate signer accepted")
	}
	// Corrupt share.
	bad := &QC{View: 3, Block: block,
		Signers: append([]wire.NodeID(nil), qc.Signers...),
		Sigs:    [][]byte{qc.Sigs[0], qc.Sigs[1], append([]byte(nil), qc.Sigs[2]...)},
	}
	bad.Sigs[2][0] ^= 1
	if bad.Verify(suite.Signer(3), 4, 3) {
		t.Fatal("QC with corrupt share accepted")
	}
	// Signer index out of range.
	oor := &QC{View: 3, Block: block,
		Signers: []wire.NodeID{0, 1, 9},
		Sigs:    [][]byte{qc.Sigs[0], qc.Sigs[1], qc.Sigs[2]},
	}
	if oor.Verify(suite.Signer(3), 4, 3) {
		t.Fatal("QC with out-of-range signer accepted")
	}
	if !GenesisQC().Verify(suite.Signer(0), 4, 3) {
		t.Fatal("genesis QC rejected")
	}
}

func TestHotStuffMessageCodecs(t *testing.T) {
	registerPayload()
	RegisterMessages()
	suite := crypto.NewSimSuite(4, 21)
	payload := &payloadMsg{Height: 4, Parent: 3}
	qc := &QC{View: 2, Block: crypto.HashBytes([]byte("parent"))}
	for i := 0; i < 3; i++ {
		qc.Signers = append(qc.Signers, wire.NodeID(i))
		qc.Sigs = append(qc.Sigs, suite.Signer(i).Sign(voteDigest(qc.View, qc.Block)))
	}
	b := &Block{Height: 4, View: 3, Parent: qc.Block, Justify: qc, Payload: payload, Leader: 3}
	b.Sig = suite.Signer(3).Sign(b.Hash())
	prop := &Proposal{Block: b}
	got, err := wire.Roundtrip(prop)
	if err != nil {
		t.Fatal(err)
	}
	gb := got.(*Proposal).Block
	if gb.Hash() != b.Hash() {
		t.Fatal("block hash changed across roundtrip")
	}
	if !gb.Justify.Verify(suite.Signer(0), 4, 3) {
		t.Fatal("justify QC broken after roundtrip")
	}
	if len(wire.Marshal(prop)) != prop.WireSize() {
		t.Fatalf("Proposal WireSize %d vs %d", prop.WireSize(), len(wire.Marshal(prop)))
	}

	v := &Vote{View: 3, Block: b.Hash(), Replica: 2, Sig: make([]byte, 64)}
	if got, err := wire.Roundtrip(v); err != nil || got.(*Vote).Replica != 2 {
		t.Fatalf("Vote roundtrip: %v", err)
	}
	if len(wire.Marshal(v)) != v.WireSize() {
		t.Fatal("Vote WireSize mismatch")
	}

	nv := &NewViewMsg{View: 9, HighQC: qc, Replica: 1}
	nv.Sig = suite.Signer(1).Sign(nv.signDigest())
	got2, err := wire.Roundtrip(nv)
	if err != nil {
		t.Fatal(err)
	}
	gn := got2.(*NewViewMsg)
	if gn.View != 9 || !suite.Signer(0).Verify(1, gn.signDigest(), gn.Sig) {
		t.Fatal("NewViewMsg roundtrip broken")
	}
	if len(wire.Marshal(nv)) != nv.WireSize() {
		t.Fatal("NewViewMsg WireSize mismatch")
	}
}

func TestHotStuffConfigValidation(t *testing.T) {
	suite := crypto.NewSimSuite(4, 21)
	app := &chainApp{}
	if _, err := New(Config{N: 0, App: app, Signer: suite.Signer(0)}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := New(Config{N: 4, Self: 9, App: app, Signer: suite.Signer(0)}); err == nil {
		t.Fatal("Self out of range accepted")
	}
	if _, err := New(Config{N: 4, Self: 0, Signer: suite.Signer(0)}); err == nil {
		t.Fatal("nil app accepted")
	}
	if _, err := New(Config{N: 4, Self: 0, App: app}); err == nil {
		t.Fatal("nil signer accepted")
	}
}

func TestHotStuffEvidenceCodecs(t *testing.T) {
	registerPayload()
	RegisterMessages()
	suite := crypto.NewSimSuite(4, 21)
	mk := func(tag byte) *Block {
		b := &Block{Height: 1, View: 3, Justify: GenesisQC(),
			Payload: &payloadMsg{Height: 1, Parent: uint64(tag)}, Leader: 3}
		b.Sig = suite.Signer(3).Sign(b.Hash())
		return b
	}
	a, b := mk(0), mk(1)

	// Second-half-by-signature form: two leader-signed blocks, genesis QC.
	ev := &Evidence{View: 3, Leader: 3,
		BlockA: a.Hash(), SigA: a.Sig,
		BlockB: b.Hash(), SigB: b.Sig,
		Conflict: GenesisQC(),
	}
	got, err := wire.Roundtrip(ev)
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*Evidence)
	if g.View != 3 || g.BlockA != a.Hash() || g.BlockB != b.Hash() || !g.Conflict.IsGenesis() {
		t.Fatalf("evidence fields changed across roundtrip: %+v", g)
	}
	if !suite.Signer(0).Verify(3, g.BlockA, g.SigA) || !suite.Signer(0).Verify(3, g.BlockB, g.SigB) {
		t.Fatal("evidence signatures broken after roundtrip")
	}
	if len(wire.Marshal(ev)) != ev.WireSize() {
		t.Fatalf("Evidence WireSize %d vs %d", ev.WireSize(), len(wire.Marshal(ev)))
	}

	// Conflict-QC form: one leader-signed block plus a quorum certificate
	// for a different block of the same view.
	other := crypto.HashBytes([]byte("certified elsewhere"))
	qc := &QC{View: 3, Block: other}
	for i := 0; i < 3; i++ {
		qc.Signers = append(qc.Signers, wire.NodeID(i))
		qc.Sigs = append(qc.Sigs, suite.Signer(i).Sign(voteDigest(qc.View, qc.Block)))
	}
	ev2 := &Evidence{View: 3, Leader: 3, BlockA: a.Hash(), SigA: a.Sig, Conflict: qc}
	got2, err := wire.Roundtrip(ev2)
	if err != nil {
		t.Fatal(err)
	}
	g2 := got2.(*Evidence)
	if len(g2.SigB) != 0 || !g2.Conflict.Verify(suite.Signer(0), 4, 3) {
		t.Fatal("conflict QC broken after roundtrip")
	}
	if len(wire.Marshal(ev2)) != ev2.WireSize() {
		t.Fatalf("Evidence WireSize %d vs %d", ev2.WireSize(), len(wire.Marshal(ev2)))
	}
}

func TestHotStuffEvidenceMustVerifyBothHalves(t *testing.T) {
	registerPayload()
	RegisterMessages()
	suite := crypto.NewSimSuite(4, 17)
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(time.Millisecond), Seed: 2})
	e, err := New(Config{N: 4, Self: 1, App: &chainApp{}, Signer: suite.Signer(1),
		ViewTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	net.AddNode(1, e)
	net.Start()

	mk := func(view uint64, tag byte) *Block {
		b := &Block{Height: 1, View: view, Justify: GenesisQC(),
			Payload: &payloadMsg{Height: 1, Parent: uint64(tag)}, Leader: wire.NodeID(view % 4)}
		b.Sig = suite.Signer(int(b.Leader)).Sign(b.Hash())
		return b
	}
	a, b := mk(3, 0), mk(3, 1)

	// Forged second signature.
	forged := &Evidence{View: 3, Leader: 3, BlockA: a.Hash(), SigA: a.Sig,
		BlockB: b.Hash(), SigB: suite.Signer(2).Sign(b.Hash()), Conflict: GenesisQC()}
	e.onEvidence(2, forged)
	// Identical halves are not a conflict.
	same := &Evidence{View: 3, Leader: 3, BlockA: a.Hash(), SigA: a.Sig,
		BlockB: a.Hash(), SigB: a.Sig, Conflict: GenesisQC()}
	e.onEvidence(2, same)
	// Leader field must match the view's actual leader.
	wrongLeader := &Evidence{View: 3, Leader: 2, BlockA: a.Hash(), SigA: a.Sig,
		BlockB: b.Hash(), SigB: b.Sig, Conflict: GenesisQC()}
	e.onEvidence(2, wrongLeader)
	// No second half at all.
	half := &Evidence{View: 3, Leader: 3, BlockA: a.Hash(), SigA: a.Sig, Conflict: GenesisQC()}
	e.onEvidence(2, half)
	// Conflict-QC form with the wrong view, the same block, or too few
	// shares: all rejected.
	other := crypto.HashBytes([]byte("other"))
	badViewQC := &QC{View: 4, Block: other}
	sameBlockQC := &QC{View: 3, Block: a.Hash()}
	thinQC := &QC{View: 3, Block: other}
	for i := 0; i < 3; i++ {
		badViewQC.Signers = append(badViewQC.Signers, wire.NodeID(i))
		badViewQC.Sigs = append(badViewQC.Sigs, suite.Signer(i).Sign(voteDigest(4, other)))
		sameBlockQC.Signers = append(sameBlockQC.Signers, wire.NodeID(i))
		sameBlockQC.Sigs = append(sameBlockQC.Sigs, suite.Signer(i).Sign(voteDigest(3, a.Hash())))
	}
	thinQC.Signers = []wire.NodeID{0}
	thinQC.Sigs = [][]byte{suite.Signer(0).Sign(voteDigest(3, other))}
	for _, qc := range []*QC{badViewQC, sameBlockQC, thinQC} {
		e.onEvidence(2, &Evidence{View: 3, Leader: 3, BlockA: a.Hash(), SigA: a.Sig, Conflict: qc})
	}
	if e.Equivocations() != 0 {
		t.Fatalf("bogus evidence accepted: %d", e.Equivocations())
	}
	if e.View() != 1 {
		t.Fatalf("bogus evidence moved the view to %d", e.View())
	}

	// Authentic two-signature evidence: counted once, and the view jumps
	// past the equivocated one (hotstuff's evidence path advances the view
	// directly, like a pacemaker timeout).
	real := &Evidence{View: 3, Leader: 3, BlockA: a.Hash(), SigA: a.Sig,
		BlockB: b.Hash(), SigB: b.Sig, Conflict: GenesisQC()}
	e.onEvidence(2, real)
	if e.Equivocations() != 1 {
		t.Fatalf("authentic evidence not counted: %d", e.Equivocations())
	}
	if e.View() != 4 {
		t.Fatalf("view = %d after evidence for view 3, want 4", e.View())
	}
	e.onEvidence(0, real) // replay must not double-count
	if e.Equivocations() != 1 {
		t.Fatal("replayed evidence double-counted")
	}

	// Authentic conflict-QC evidence for a later view counts too.
	a7 := mk(7, 0)
	qc7 := &QC{View: 7, Block: other}
	for i := 0; i < 3; i++ {
		qc7.Signers = append(qc7.Signers, wire.NodeID(i))
		qc7.Sigs = append(qc7.Sigs, suite.Signer(i).Sign(voteDigest(7, other)))
	}
	e.onEvidence(2, &Evidence{View: 7, Leader: 3, BlockA: a7.Hash(), SigA: a7.Sig, Conflict: qc7})
	if e.Equivocations() != 2 {
		t.Fatalf("conflict-QC evidence not counted: %d", e.Equivocations())
	}
	if e.View() != 8 {
		t.Fatalf("view = %d after evidence for view 7, want 8", e.View())
	}
}

func TestHotStuffEquivocatingLeaderDetectedAndOutrun(t *testing.T) {
	// The leader of view 1 shows node 2 a forked block (different parent
	// link, valid signature) while everyone else sees the real one. Node 2
	// refuses to vote for the fork, but as the collector of view-1 votes it
	// assembles a QC for the real block, catches the conflict with the
	// signed fork it was shown, and broadcasts evidence that every replica
	// verifies. n = 7 for the same liveness reason as the crashed-leader
	// test: the victim cannot extend a chain whose root it never received,
	// so commits must flow through windows that avoid it.
	r := newHSRig(t, 7, 10)
	for _, a := range r.apps {
		a.wantWork = true
	}
	suite := crypto.NewSimSuite(7, 13) // same seed as the rig
	faults.Install(r.net, faults.Schedule{Seed: 3, Actions: []faults.Action{
		faults.EquivocateLeader{Node: 1, Signer: suite.Signer(1),
			Victims: []wire.NodeID{2}, From: 0, To: 2 * time.Second},
	}})
	r.net.Start()
	r.net.Run(15 * time.Second)

	detected := 0
	for _, e := range r.engines {
		if e.Equivocations() > 0 {
			detected++
		}
	}
	if detected < 5 {
		t.Fatalf("only %d/7 replicas proved the equivocation", detected)
	}
	// The honest majority must keep committing in spite of the attack.
	for i, app := range r.apps {
		if i == 2 {
			continue // the victim's chain root never arrived; consensus catch-up is out of scope
		}
		if len(app.commits) == 0 {
			t.Fatalf("node %d committed nothing", i)
		}
	}
}
