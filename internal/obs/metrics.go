package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"predis/internal/wire"
)

// Counter is a monotonically increasing count. All methods are nil-safe so
// components can hold an optional counter without guarding every hot-path
// increment.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram: bounds are upper-inclusive bucket
// edges; observations above the last bound land in the implicit +Inf
// bucket. Buckets are allocated once at registration; Observe is a single
// scan of a small slice (allocation-free).
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	count  uint64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(durMS(d)) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Buckets returns (bounds, cumulative-free per-bucket counts); the counts
// slice has one extra element for the +Inf bucket. Callers must not mutate
// the returned slices.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	if h == nil {
		return nil, nil
	}
	return h.bounds, h.counts
}

// DefaultLatencyBucketsMS is a sensible fixed-bucket layout for stage and
// message latencies in milliseconds.
var DefaultLatencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// metricKey scopes a metric to one node. wire.NoNode scopes a metric to
// the whole simulation.
type metricKey struct {
	name string
	node wire.NodeID
}

// Registry is a per-simulation registry of per-node metrics. Lookup
// happens once at wiring time (Counter/Gauge/Histogram return stable
// pointers); the hot path is a plain field update. Not safe for
// concurrent use — the simulator serializes all callbacks.
type Registry struct {
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]*Gauge),
		hists:    make(map[metricKey]*Histogram),
	}
}

// Counter returns the named counter for a node, creating it on first use.
// Nil registries return nil (recording becomes a no-op).
func (r *Registry) Counter(name string, node wire.NodeID) *Counter {
	if r == nil {
		return nil
	}
	k := metricKey{name, node}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the named gauge for a node, creating it on first use.
func (r *Registry) Gauge(name string, node wire.NodeID) *Gauge {
	if r == nil {
		return nil
	}
	k := metricKey{name, node}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the named histogram for a node, creating it with the
// given bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, node wire.NodeID, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey{name, node}
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.hists[k] = h
	}
	return h
}

// metricRow is one exported line.
type metricRow struct {
	name  string
	node  wire.NodeID
	field string
	value string
}

// rows flattens every metric into sorted rows: counters and gauges emit a
// single "value" field; histograms emit count, sum, and one "le:<bound>"
// field per bucket. Sorting by (name, node, field-order) makes the dump
// independent of map iteration and therefore byte-stable across runs.
func (r *Registry) rows() []metricRow {
	if r == nil {
		return nil
	}
	out := make([]metricRow, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	keys := make([]metricKey, 0, len(r.counters))
	for k := range r.counters {
		keys = append(keys, k)
	}
	sortMetricKeys(keys)
	for _, k := range keys {
		out = append(out, metricRow{k.name, k.node, "value",
			strconv.FormatUint(r.counters[k].Value(), 10)})
	}
	keys = keys[:0]
	for k := range r.gauges {
		keys = append(keys, k)
	}
	sortMetricKeys(keys)
	for _, k := range keys {
		out = append(out, metricRow{k.name, k.node, "value", formatFloat(r.gauges[k].Value())})
	}
	keys = keys[:0]
	for k := range r.hists {
		keys = append(keys, k)
	}
	sortMetricKeys(keys)
	for _, k := range keys {
		h := r.hists[k]
		out = append(out, metricRow{k.name, k.node, "count", strconv.FormatUint(h.count, 10)})
		out = append(out, metricRow{k.name, k.node, "sum", formatFloat(h.sum)})
		for i, b := range h.bounds {
			out = append(out, metricRow{k.name, k.node, "le:" + formatFloat(b),
				strconv.FormatUint(h.counts[i], 10)})
		}
		out = append(out, metricRow{k.name, k.node, "le:+Inf",
			strconv.FormatUint(h.counts[len(h.bounds)], 10)})
	}
	return out
}

func sortMetricKeys(keys []metricKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].node < keys[j].node
	})
}

// WriteCSV dumps every metric as `metric,node,field,value` rows in sorted
// order. A node of wire.NoNode renders as "-" (simulation-wide metrics).
func (r *Registry) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "metric,node,field,value\n"); err != nil {
		return err
	}
	for _, row := range r.rows() {
		node := "-"
		if row.node != wire.NoNode {
			node = strconv.FormatUint(uint64(row.node), 10)
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%s\n", row.name, node, row.field, row.value); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float deterministically with up to 4 decimals,
// trimming trailing zeros ("1.5", "0.3333", "12").
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 4, 64)
	// Trim trailing zeros and a dangling decimal point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
