// Package obs is the deterministic observability layer: virtual-time
// metrics (counters, gauges, fixed-bucket histograms), a block/transaction
// lifecycle tracer, and a simnet NIC/queue sampler.
//
// Everything in this package obeys the simnet determinism contract
// (enforced statically by predis-lint):
//
//   - all timestamps come from the hosting runtime's virtual clock
//     (env.Context.Now / simnet.Network.Now) — never the wall clock;
//   - recording is allocation-light and purely passive: no sends, no
//     timers, no mutation of simulation state, so an instrumented run
//     delivers byte-for-byte the same messages as an uninstrumented one
//     (the replay hash of internal/harness does not change);
//   - every export (Chrome trace JSON, CSV) is emitted in sorted order,
//     so two same-seed runs produce byte-identical files.
//
// Like every protocol component, obs types are driven from the single
// simulator goroutine and are not safe for concurrent use.
//
// # Pipeline stages
//
// The tracer models the Predis data path as seven stages, each recorded
// as a span on the observing node's timeline:
//
//	submit             client submit → transaction arrives at a consensus node
//	bundle_sealed      first queued tx → bundle packed and signed (producer)
//	block_proposed     proposal learned → prepare quorum / QC (per replica)
//	prepare_commit     prepare quorum / QC → block executed (per replica)
//	executed           committed block applied by the execution plane (per node)
//	stripe_distributed first stripe sent → bundle reassembled (per full node)
//	fullnode_delivered block committed → block completed (per full node)
//
// The executed stage is a zero-width marker: execution happens inside
// the commit handler at a single virtual instant, so the span records
// when the state machine advanced, not a duration. The last two stages
// are cross-node: the start anchor is recorded by the distributor
// (Tracer.Mark) and each full node closes its own span against that
// anchor (Tracer.SpanSinceMark).
package obs

import (
	"time"

	"predis/internal/wire"
)

// Stage identifies one pipeline stage.
type Stage uint8

// The seven block-mode pipeline stages, in data-flow order, plus the
// streaming-mode speculative-distribution stage. spec_distributed is
// appended after the original seven (not inserted at its data-flow
// position between prepare_commit and fullnode_delivered) so existing
// stage indices — and with them every export and table rendered from a
// block-mode run — are unchanged.
const (
	StageSubmit Stage = iota
	StageBundleSealed
	StageBlockProposed
	StagePrepareCommit
	StageExecuted
	StageStripeDistributed
	StageFullNodeDelivered
	// StageSpecDistributed spans a cursor block's speculative push
	// (distributor ships it at proposal time, before final order) to its
	// finalization on a full node. Blocks evicted by a view change never
	// finalize; their spans are terminated with Tracer.Discard instead of
	// leaking open. Only streaming mode records this stage.
	StageSpecDistributed
	numStages
)

// StageNames lists the stage names in declaration order (the order used in
// exports and tables).
var StageNames = [...]string{
	"submit",
	"bundle_sealed",
	"block_proposed",
	"prepare_commit",
	"executed",
	"stripe_distributed",
	"fullnode_delivered",
	"spec_distributed",
}

// Optional reports whether the stage only fires in some operating modes
// (streaming commit); verifiers like tools/tracecheck require at least one
// span for every non-optional stage but tolerate absent optional ones.
func (s Stage) Optional() bool { return s == StageSpecDistributed }

// String returns the export name of the stage.
func (s Stage) String() string {
	if int(s) < len(StageNames) {
		return StageNames[s]
	}
	return "unknown"
}

// Stages returns all pipeline stages in data-flow order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// TxKey builds a span key for a transaction: the submitting client's ID
// and its per-client sequence number.
func TxKey(client wire.NodeID, seq uint64) uint64 {
	return uint64(client)<<40 | seq&(1<<40-1)
}

// BundleKey builds a span key for a bundle: producer chain and height.
func BundleKey(producer wire.NodeID, height uint64) uint64 {
	return uint64(producer)<<40 | height&(1<<40-1)
}

// BlockKey builds a span key for a consensus block height.
func BlockKey(height uint64) uint64 { return height }

// durMS renders a duration as milliseconds with fixed precision, for
// deterministic CSV output.
func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
