package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"time"
)

// ChromeSimPID is the pseudo process ID under which simulation-wide
// counter tracks (event-queue depth, aggregate delivery rate) appear in
// the Chrome trace viewer, clearly separated from real node IDs.
const ChromeSimPID = 1 << 30

// WriteChrome writes the recorded spans — and, when sampler is non-nil,
// its NIC/queue counter tracks — as Chrome trace-event JSON (the format
// consumed by chrome://tracing and https://ui.perfetto.dev). Every node is
// a process; every pipeline stage is a thread within it; stage spans are
// complete ("X") events and sampler tracks are counter ("C") events.
//
// Emission order is fully sorted (metadata by pid/tid, spans via
// Tracer.Spans, counters by tick then node), so two runs that record the
// same data produce byte-identical files.
func (t *Tracer) WriteChrome(w io.Writer, sampler *Sampler) error {
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{w: bw}
	cw.raw(`{"traceEvents":[`)

	spans := t.Spans()
	epoch := t.Epoch()

	// Metadata: name each node process and each stage thread that occurs.
	type pidTid struct {
		pid uint64
		tid int
	}
	pids := map[uint64]bool{}
	threads := map[pidTid]bool{}
	for _, sp := range spans {
		pids[uint64(sp.Node)] = true
		threads[pidTid{uint64(sp.Node), int(sp.Stage) + 1}] = true
	}
	if sampler != nil && len(sampler.Samples()) > 0 {
		pids[ChromeSimPID] = true
		for _, ns := range sampler.Samples()[0].Nodes {
			pids[uint64(ns.Node)] = true
		}
	}
	sortedPids := make([]uint64, 0, len(pids))
	for pid := range pids {
		sortedPids = append(sortedPids, pid)
	}
	sort.Slice(sortedPids, func(i, j int) bool { return sortedPids[i] < sortedPids[j] })
	for _, pid := range sortedPids {
		name := "node " + strconv.FormatUint(pid, 10)
		if pid == ChromeSimPID {
			name = "simulator"
		}
		cw.event(`{"name":"process_name","ph":"M","pid":` + strconv.FormatUint(pid, 10) +
			`,"tid":0,"args":{"name":"` + name + `"}}`)
	}
	sortedThreads := make([]pidTid, 0, len(threads))
	for th := range threads {
		sortedThreads = append(sortedThreads, th)
	}
	sort.Slice(sortedThreads, func(i, j int) bool {
		if sortedThreads[i].pid != sortedThreads[j].pid {
			return sortedThreads[i].pid < sortedThreads[j].pid
		}
		return sortedThreads[i].tid < sortedThreads[j].tid
	})
	for _, th := range sortedThreads {
		cw.event(`{"name":"thread_name","ph":"M","pid":` + strconv.FormatUint(th.pid, 10) +
			`,"tid":` + strconv.Itoa(th.tid) +
			`,"args":{"name":"` + Stage(th.tid-1).String() + `"}}`)
	}

	// Complete events, one per closed span, in Spans() order (sorted by
	// start time, node, stage, key — deterministic). Discarded spans
	// (speculation abandoned on view change) carry a flag so the viewer
	// can tell abandoned work from completed work; the flag is omitted on
	// completed spans, keeping block-mode trace files unchanged.
	for _, sp := range spans {
		args := `"args":{"key":` + strconv.FormatUint(sp.Key, 10)
		if sp.Discarded {
			args += `,"discarded":1`
		}
		cw.event(`{"name":"` + sp.Stage.String() +
			`","cat":"stage","ph":"X","ts":` + chromeTS(epoch, sp.Start) +
			`,"dur":` + chromeDur(sp.Duration()) +
			`,"pid":` + strconv.FormatUint(uint64(sp.Node), 10) +
			`,"tid":` + strconv.Itoa(int(sp.Stage)+1) +
			`,` + args + `}}`)
	}

	// Counter events from the sampler: simulator-wide track first, then
	// per-node NIC utilization, per tick in time order.
	if sampler != nil {
		simPID := strconv.Itoa(ChromeSimPID)
		for _, sm := range sampler.Samples() {
			ts := chromeTS(epoch, sm.At)
			cw.event(`{"name":"event queue","ph":"C","ts":` + ts +
				`,"pid":` + simPID + `,"args":{"depth":` + strconv.Itoa(sm.QueueLen) + `}}`)
			cw.event(`{"name":"delivery","ph":"C","ts":` + ts +
				`,"pid":` + simPID + `,"args":{"msgs_per_tick":` + strconv.FormatUint(sm.Delivered, 10) +
				`,"bytes_per_tick":` + strconv.FormatUint(sm.SentBytes, 10) + `}}`)
			for _, ns := range sm.Nodes {
				cw.event(`{"name":"nic","ph":"C","ts":` + ts +
					`,"pid":` + strconv.FormatUint(uint64(ns.Node), 10) +
					`,"args":{"up_util":` + formatFloat(ns.UpUtil) +
					`,"down_util":` + formatFloat(ns.DownUtil) + `}}`)
			}
		}
	}

	cw.raw("]}\n")
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

// chromeWriter emits comma-separated JSON array elements, remembering
// whether a separator is due and latching the first write error.
type chromeWriter struct {
	w     io.Writer
	wrote bool
	err   error
}

func (c *chromeWriter) raw(s string) {
	if c.err != nil {
		return
	}
	_, c.err = io.WriteString(c.w, s)
}

func (c *chromeWriter) event(s string) {
	if c.wrote {
		c.raw(",\n")
	} else {
		c.raw("\n")
	}
	c.wrote = true
	c.raw(s)
}

// chromeTS renders an absolute time as microseconds since the epoch with
// nanosecond precision — deterministic for identical inputs.
func chromeTS(epoch, at time.Time) string {
	return formatMicros(at.Sub(epoch))
}

// chromeDur renders a duration in microseconds.
func chromeDur(d time.Duration) string { return formatMicros(d) }

func formatMicros(d time.Duration) string {
	micros := d.Nanoseconds() / 1000
	frac := d.Nanoseconds() % 1000
	if frac == 0 {
		return strconv.FormatInt(micros, 10)
	}
	s := strconv.FormatInt(micros, 10) + "." + pad3(frac)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	return s
}

func pad3(v int64) string {
	s := strconv.FormatInt(v, 10)
	for len(s) < 3 {
		s = "0" + s
	}
	return s
}
