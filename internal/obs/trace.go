package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"predis/internal/stats"
	"predis/internal/wire"
)

// Span is one recorded stage interval on one node's timeline.
type Span struct {
	Stage Stage
	Key   uint64
	Node  wire.NodeID
	Start time.Time
	End   time.Time
	open  bool
}

// Duration returns the span length.
func (s *Span) Duration() time.Duration { return s.End.Sub(s.Start) }

type spanKey struct {
	stage Stage
	key   uint64
	node  wire.NodeID
}

type markKey struct {
	stage Stage
	key   uint64
}

// Tracer records block/transaction lifecycle spans. One tracer serves a
// whole simulation: every node records onto it with its own virtual-time
// stamps, and exports interleave all nodes on a shared timeline.
//
// Recording policies (all idempotent so re-proposals, duplicate messages,
// and retries never distort a span):
//
//   - Begin: first call wins for a given (stage, key, node);
//   - End: closes the open span; later calls are ignored;
//   - Span: one-shot Begin+End; first call wins;
//   - Mark: global per-(stage, key) anchor; earliest time wins;
//   - SpanSinceMark: closes a span from the anchor to now on the calling
//     node's timeline.
//
// A nil *Tracer is a valid no-op recorder, so components can hold one
// unconditionally.
type Tracer struct {
	epoch time.Time
	byKey map[spanKey]*Span
	order []*Span
	marks map[markKey]time.Time
}

// NewTracer builds a tracer anchored at the simulation epoch (timestamps
// in exports are offsets from it).
func NewTracer(epoch time.Time) *Tracer {
	return &Tracer{
		epoch: epoch,
		byKey: make(map[spanKey]*Span),
		marks: make(map[markKey]time.Time),
	}
}

// Epoch returns the anchor time (zero on nil).
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Begin opens the (stage, key) span on node's timeline. The first call
// wins; re-begins are ignored.
func (t *Tracer) Begin(stage Stage, key uint64, node wire.NodeID, at time.Time) {
	if t == nil {
		return
	}
	sk := spanKey{stage, key, node}
	if _, ok := t.byKey[sk]; ok {
		return
	}
	sp := &Span{Stage: stage, Key: key, Node: node, Start: at, open: true}
	t.byKey[sk] = sp
	t.order = append(t.order, sp)
}

// End closes the open (stage, key) span on node's timeline. Ends without
// a matching Begin, and ends after the span closed, are ignored.
func (t *Tracer) End(stage Stage, key uint64, node wire.NodeID, at time.Time) {
	if t == nil {
		return
	}
	sp, ok := t.byKey[spanKey{stage, key, node}]
	if !ok || !sp.open {
		return
	}
	sp.End = at
	sp.open = false
}

// Span records a complete span in one call. The first call for a given
// (stage, key, node) wins.
func (t *Tracer) Span(stage Stage, key uint64, node wire.NodeID, start, end time.Time) {
	if t == nil {
		return
	}
	sk := spanKey{stage, key, node}
	if _, ok := t.byKey[sk]; ok {
		return
	}
	sp := &Span{Stage: stage, Key: key, Node: node, Start: start, End: end}
	t.byKey[sk] = sp
	t.order = append(t.order, sp)
}

// Mark records the global start anchor for a cross-node stage (stripe
// dissemination, block delivery). The earliest mark wins, so whichever
// distributor ships the first stripe anchors the stage.
func (t *Tracer) Mark(stage Stage, key uint64, at time.Time) {
	if t == nil {
		return
	}
	mk := markKey{stage, key}
	if prev, ok := t.marks[mk]; ok && !at.Before(prev) {
		return
	}
	t.marks[mk] = at
}

// SpanSinceMark closes a span from the (stage, key) anchor to end on
// node's timeline. Without an anchor (e.g. content recovered through
// catch-up after the mark aged out) the span is zero-length at end.
func (t *Tracer) SpanSinceMark(stage Stage, key uint64, node wire.NodeID, end time.Time) {
	if t == nil {
		return
	}
	start, ok := t.marks[markKey{stage, key}]
	if !ok || start.After(end) {
		start = end
	}
	t.Span(stage, key, node, start, end)
}

// SpanCount returns how many spans were recorded (open and closed).
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	return len(t.order)
}

// Spans returns every closed span sorted by (start, node, stage, key) —
// a deterministic order given deterministic recordings. Open spans
// (begun, never ended) are excluded.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.order))
	for _, sp := range t.order {
		if !sp.open {
			out = append(out, *sp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// StageDurations returns the closed-span durations of one stage, sorted
// ascending (ready for percentiles). It scans the raw recording order
// rather than the sorted Spans() view: the duration multiset is
// order-independent, and the final ascending sort makes the result
// deterministic without paying for a full span sort per stage.
func (t *Tracer) StageDurations(stage Stage) []time.Duration {
	if t == nil {
		return nil
	}
	var out []time.Duration
	for _, sp := range t.order {
		if !sp.open && sp.Stage == stage {
			out = append(out, sp.Duration())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StageSummary summarizes one stage's closed spans.
func (t *Tracer) StageSummary(stage Stage) stats.Summary {
	return stats.Summarize(t.StageDurations(stage))
}

// WriteStageCSV writes the per-stage latency breakdown as CSV, one row
// per pipeline stage in data-flow order.
func (t *Tracer) WriteStageCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "stage,count,mean_ms,p50_ms,p90_ms,p99_ms,max_ms\n"); err != nil {
		return err
	}
	for _, stage := range Stages() {
		s := t.StageSummary(stage)
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%s,%s,%s,%s\n",
			stage, s.Count,
			formatFloat(durMS(s.Mean)), formatFloat(durMS(s.P50)),
			formatFloat(durMS(s.P90)), formatFloat(durMS(s.P99)),
			formatFloat(durMS(s.Max))); err != nil {
			return err
		}
	}
	return nil
}

// StageTable renders the per-stage latency breakdown as a stats.Table for
// terminal output: one row per stage (X = position in the pipeline), one
// column per statistic.
func (t *Tracer) StageTable() *stats.Table {
	title := "Stage latency breakdown (rows:"
	for i, name := range StageNames {
		title += fmt.Sprintf(" %d=%s", i+1, name)
	}
	title += ")"
	tbl := &stats.Table{Title: title, XLabel: "stage"}
	count := &stats.Series{Name: "count"}
	mean := &stats.Series{Name: "mean_ms"}
	p50 := &stats.Series{Name: "p50_ms"}
	p90 := &stats.Series{Name: "p90_ms"}
	p99 := &stats.Series{Name: "p99_ms"}
	for _, stage := range Stages() {
		s := t.StageSummary(stage)
		x := float64(stage) + 1
		count.Add(x, float64(s.Count))
		mean.Add(x, durMS(s.Mean))
		p50.Add(x, durMS(s.P50))
		p90.Add(x, durMS(s.P90))
		p99.Add(x, durMS(s.P99))
	}
	tbl.Series = []*stats.Series{count, mean, p50, p90, p99}
	return tbl
}
