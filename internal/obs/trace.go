package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"predis/internal/stats"
	"predis/internal/wire"
)

// Span is one recorded stage interval on one node's timeline.
type Span struct {
	Stage Stage
	Key   uint64
	Node  wire.NodeID
	Start time.Time
	End   time.Time
	// Discarded marks a span terminated by Tracer.Discard: the tracked
	// work was abandoned (a speculatively distributed cursor block evicted
	// by a view change) rather than completed. Discarded spans appear in
	// exports flagged as such but are excluded from latency statistics.
	Discarded bool
	open      bool
}

// Duration returns the span length.
func (s *Span) Duration() time.Duration { return s.End.Sub(s.Start) }

type spanKey struct {
	stage Stage
	key   uint64
	node  wire.NodeID
}

type markKey struct {
	stage Stage
	key   uint64
}

// Tracer records block/transaction lifecycle spans. One tracer serves a
// whole simulation: every node records onto it with its own virtual-time
// stamps, and exports interleave all nodes on a shared timeline.
//
// Recording policies (all idempotent so re-proposals, duplicate messages,
// and retries never distort a span):
//
//   - Begin: first call wins for a given (stage, key, node);
//   - End: closes the open span; later calls are ignored;
//   - Span: one-shot Begin+End; first call wins;
//   - Mark: global per-(stage, key) anchor; earliest time wins;
//   - SpanSinceMark: closes a span from the anchor to now on the calling
//     node's timeline.
//
// A nil *Tracer is a valid no-op recorder, so components can hold one
// unconditionally.
type Tracer struct {
	epoch time.Time
	byKey map[spanKey]*Span
	order []*Span
	marks map[markKey]time.Time
}

// NewTracer builds a tracer anchored at the simulation epoch (timestamps
// in exports are offsets from it).
func NewTracer(epoch time.Time) *Tracer {
	return &Tracer{
		epoch: epoch,
		byKey: make(map[spanKey]*Span),
		marks: make(map[markKey]time.Time),
	}
}

// Epoch returns the anchor time (zero on nil).
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Begin opens the (stage, key) span on node's timeline. The first call
// wins; re-begins are ignored.
func (t *Tracer) Begin(stage Stage, key uint64, node wire.NodeID, at time.Time) {
	if t == nil {
		return
	}
	sk := spanKey{stage, key, node}
	if _, ok := t.byKey[sk]; ok {
		return
	}
	sp := &Span{Stage: stage, Key: key, Node: node, Start: at, open: true}
	t.byKey[sk] = sp
	t.order = append(t.order, sp)
}

// End closes the open (stage, key) span on node's timeline. Ends without
// a matching Begin, and ends after the span closed, are ignored.
func (t *Tracer) End(stage Stage, key uint64, node wire.NodeID, at time.Time) {
	if t == nil {
		return
	}
	sp, ok := t.byKey[spanKey{stage, key, node}]
	if !ok || !sp.open {
		return
	}
	sp.End = at
	sp.open = false
}

// Span records a complete span in one call. The first call for a given
// (stage, key, node) wins.
func (t *Tracer) Span(stage Stage, key uint64, node wire.NodeID, start, end time.Time) {
	if t == nil {
		return
	}
	sk := spanKey{stage, key, node}
	if _, ok := t.byKey[sk]; ok {
		return
	}
	sp := &Span{Stage: stage, Key: key, Node: node, Start: start, End: end}
	t.byKey[sk] = sp
	t.order = append(t.order, sp)
}

// Mark records the global start anchor for a cross-node stage (stripe
// dissemination, block delivery). The earliest mark wins, so whichever
// distributor ships the first stripe anchors the stage.
func (t *Tracer) Mark(stage Stage, key uint64, at time.Time) {
	if t == nil {
		return
	}
	mk := markKey{stage, key}
	if prev, ok := t.marks[mk]; ok && !at.Before(prev) {
		return
	}
	t.marks[mk] = at
}

// SpanSinceMark closes a span from the (stage, key) anchor to end on
// node's timeline. Without an anchor (e.g. content recovered through
// catch-up after the mark aged out) the span is zero-length at end.
func (t *Tracer) SpanSinceMark(stage Stage, key uint64, node wire.NodeID, end time.Time) {
	if t == nil {
		return
	}
	start, ok := t.marks[markKey{stage, key}]
	if !ok || start.After(end) {
		start = end
	}
	t.Span(stage, key, node, start, end)
}

// Discard terminates the (stage, key) span on node's timeline as
// abandoned: the span closes at `at` with Discarded set, so it neither
// leaks open (open spans vanish from Spans() and every export) nor
// pollutes the stage's latency statistics. Without a matching Begin, a
// zero-length discarded span anchored at the stage's Mark (or at `at`
// when no anchor exists) is recorded, so speculative work that was only
// anchored remotely still shows up in drop accounting. Discarding an
// already-closed span is ignored — completion wins.
func (t *Tracer) Discard(stage Stage, key uint64, node wire.NodeID, at time.Time) {
	if t == nil {
		return
	}
	sk := spanKey{stage, key, node}
	if sp, ok := t.byKey[sk]; ok {
		if !sp.open {
			return
		}
		sp.End = at
		sp.open = false
		sp.Discarded = true
		return
	}
	start, ok := t.marks[markKey{stage, key}]
	if !ok || start.After(at) {
		start = at
	}
	sp := &Span{Stage: stage, Key: key, Node: node, Start: start, End: at, Discarded: true}
	t.byKey[sk] = sp
	t.order = append(t.order, sp)
}

// DiscardedCount returns how many spans of the stage were terminated via
// Discard.
func (t *Tracer) DiscardedCount(stage Stage) int {
	if t == nil {
		return 0
	}
	n := 0
	for _, sp := range t.order {
		if sp.Discarded && sp.Stage == stage {
			n++
		}
	}
	return n
}

// SpanCount returns how many spans were recorded (open and closed).
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	return len(t.order)
}

// Spans returns every closed span sorted by (start, node, stage, key) —
// a deterministic order given deterministic recordings. Open spans
// (begun, never ended) are excluded.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.order))
	for _, sp := range t.order {
		if !sp.open {
			out = append(out, *sp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// StageDurations returns the closed-span durations of one stage, sorted
// ascending (ready for percentiles). It scans the raw recording order
// rather than the sorted Spans() view: the duration multiset is
// order-independent, and the final ascending sort makes the result
// deterministic without paying for a full span sort per stage. Discarded
// spans are excluded — an abandoned speculation's lifetime is drop
// accounting, not stage latency.
func (t *Tracer) StageDurations(stage Stage) []time.Duration {
	if t == nil {
		return nil
	}
	var out []time.Duration
	for _, sp := range t.order {
		if !sp.open && !sp.Discarded && sp.Stage == stage {
			out = append(out, sp.Duration())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StageSummary summarizes one stage's closed spans.
func (t *Tracer) StageSummary(stage Stage) stats.Summary {
	return stats.Summarize(t.StageDurations(stage))
}

// stageHistogram folds one stage's closed durations into a streaming
// histogram; p50/p90 in tables and CSV come from it (≤5% bucket error)
// while mean/p99/max stay exact via Summarize.
func (t *Tracer) stageHistogram(stage Stage) *stats.Histogram {
	h := &stats.Histogram{}
	for _, d := range t.StageDurations(stage) {
		h.Observe(d)
	}
	return h
}

// stageSilent reports whether a stage recorded nothing at all — no closed
// spans and no discards — so mode-dependent stages (spec_distributed only
// fires in streaming mode) can be dropped from tables and CSV instead of
// rendering all-zero rows.
func (t *Tracer) stageSilent(stage Stage) bool {
	for _, sp := range t.order {
		if sp.Stage == stage && (!sp.open || sp.Discarded) {
			return false
		}
	}
	return true
}

// WriteStageCSV writes the per-stage latency breakdown as CSV, one row
// per pipeline stage in data-flow order. Optional (mode-dependent) stages
// that recorded nothing are omitted; always-on stages render zero rows so
// their absence stays visible.
func (t *Tracer) WriteStageCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "stage,count,mean_ms,p50_ms,p90_ms,p99_ms,max_ms\n"); err != nil {
		return err
	}
	for _, stage := range Stages() {
		if stage.Optional() && t.stageSilent(stage) {
			continue
		}
		s := t.StageSummary(stage)
		h := t.stageHistogram(stage)
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%s,%s,%s,%s\n",
			stage, s.Count,
			formatFloat(durMS(s.Mean)), formatFloat(durMS(h.Percentile(50))),
			formatFloat(durMS(h.Percentile(90))), formatFloat(durMS(s.P99)),
			formatFloat(durMS(s.Max))); err != nil {
			return err
		}
	}
	return nil
}

// StageTable renders the per-stage latency breakdown as a stats.Table for
// terminal output: one row per stage (X = position in the pipeline), one
// column per statistic. Optional stages that recorded nothing — closed
// spans and discards both zero — are omitted, so block-mode runs never
// render the streaming-only spec_distributed row; always-on stages keep
// their zero rows, matching the historical output. Mean and p99 are
// exact (Summarize); p50/p90 come from the streaming stats.Histogram.
func (t *Tracer) StageTable() *stats.Table {
	title := "Stage latency breakdown (rows:"
	tbl := &stats.Table{XLabel: "stage"}
	count := &stats.Series{Name: "count"}
	mean := &stats.Series{Name: "mean_ms"}
	p50 := &stats.Series{Name: "p50_ms"}
	p90 := &stats.Series{Name: "p90_ms"}
	p99 := &stats.Series{Name: "p99_ms"}
	for _, stage := range Stages() {
		if stage.Optional() && t.stageSilent(stage) {
			continue
		}
		s := t.StageSummary(stage)
		h := t.stageHistogram(stage)
		x := float64(stage) + 1
		title += fmt.Sprintf(" %d=%s", int(stage)+1, stage)
		count.Add(x, float64(s.Count))
		mean.Add(x, durMS(s.Mean))
		p50.Add(x, durMS(h.Percentile(50)))
		p90.Add(x, durMS(h.Percentile(90)))
		p99.Add(x, durMS(s.P99))
	}
	title += ")"
	tbl.Title = title
	tbl.Series = []*stats.Series{count, mean, p50, p90, p99}
	return tbl
}
