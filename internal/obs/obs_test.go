package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"predis/internal/env"
	"predis/internal/simnet"
	"predis/internal/wire"
)

var epoch = simnet.Epoch

func at(d time.Duration) time.Time { return epoch.Add(d) }

func TestStageNamesCoverAllStages(t *testing.T) {
	if len(StageNames) != int(numStages) {
		t.Fatalf("StageNames has %d entries, want %d", len(StageNames), numStages)
	}
	for _, s := range Stages() {
		if s.String() == "unknown" {
			t.Fatalf("stage %d has no name", s)
		}
	}
	if Stage(250).String() != "unknown" {
		t.Fatal("out-of-range stage must render unknown")
	}
}

func TestKeyPacking(t *testing.T) {
	if TxKey(1, 0) == TxKey(0, 1) {
		t.Fatal("TxKey collides across client/seq")
	}
	if TxKey(3, 7) != BundleKey(3, 7) {
		// Same packing scheme — fine, but they are used on different stages
		// so they never share a (stage, key) slot.
		t.Log("TxKey and BundleKey share packing (expected)")
	}
	if BlockKey(42) != 42 {
		t.Fatal("BlockKey must be identity")
	}
}

func TestTracerBeginEndPolicies(t *testing.T) {
	tr := NewTracer(epoch)

	// First Begin wins; re-begins are ignored.
	tr.Begin(StageSubmit, 1, 5, at(10*time.Millisecond))
	tr.Begin(StageSubmit, 1, 5, at(20*time.Millisecond))
	tr.End(StageSubmit, 1, 5, at(30*time.Millisecond))
	// Later Ends are ignored.
	tr.End(StageSubmit, 1, 5, at(99*time.Millisecond))

	// End without Begin is ignored.
	tr.End(StageBundleSealed, 2, 5, at(40*time.Millisecond))

	// Open spans (no End) are excluded from export.
	tr.Begin(StageBlockProposed, 3, 5, at(50*time.Millisecond))

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d closed spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Stage != StageSubmit || sp.Key != 1 || sp.Node != 5 {
		t.Fatalf("unexpected span %+v", sp)
	}
	if sp.Duration() != 20*time.Millisecond {
		t.Fatalf("duration = %v, want 20ms (first Begin, first End win)", sp.Duration())
	}
	if tr.SpanCount() != 2 { // one closed + one open
		t.Fatalf("SpanCount = %d, want 2", tr.SpanCount())
	}
}

func TestTracerSpanFirstWins(t *testing.T) {
	tr := NewTracer(epoch)
	tr.Span(StagePrepareCommit, 9, 1, at(time.Millisecond), at(2*time.Millisecond))
	tr.Span(StagePrepareCommit, 9, 1, at(time.Millisecond), at(9*time.Millisecond))
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Duration() != time.Millisecond {
		t.Fatalf("Span must be first-wins: %+v", spans)
	}
}

func TestTracerMarkAndSpanSinceMark(t *testing.T) {
	tr := NewTracer(epoch)
	// Earliest mark wins even when recorded later.
	tr.Mark(StageStripeDistributed, 7, at(30*time.Millisecond))
	tr.Mark(StageStripeDistributed, 7, at(10*time.Millisecond))
	tr.Mark(StageStripeDistributed, 7, at(20*time.Millisecond))
	tr.SpanSinceMark(StageStripeDistributed, 7, 3, at(50*time.Millisecond))
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Duration() != 40*time.Millisecond {
		t.Fatalf("SpanSinceMark must anchor at earliest mark: %+v", spans)
	}

	// Missing anchor → zero-length span at end (content recovered via
	// catch-up after the mark aged out).
	tr2 := NewTracer(epoch)
	tr2.SpanSinceMark(StageFullNodeDelivered, 8, 4, at(time.Second))
	spans = tr2.Spans()
	if len(spans) != 1 || spans[0].Duration() != 0 {
		t.Fatalf("anchorless SpanSinceMark must be zero-length: %+v", spans)
	}
}

// TestTracerDiscard is the regression test for the speculative-span leak:
// a bundle or cursor block that is speculatively distributed but never
// finalized used to leave its span open forever — invisible in Spans(),
// uncounted in drop accounting. Discard terminates such spans as
// abandoned: they export (flagged), they count in DiscardedCount, and
// they stay out of StageDurations.
func TestTracerDiscard(t *testing.T) {
	tr := NewTracer(epoch)

	// A speculation that finalizes normally.
	tr.Begin(StageSpecDistributed, 1, 100, at(10*time.Millisecond))
	tr.End(StageSpecDistributed, 1, 100, at(30*time.Millisecond))
	// A speculation evicted by a view change: begun, never finalized.
	tr.Begin(StageSpecDistributed, 2, 100, at(12*time.Millisecond))
	tr.Discard(StageSpecDistributed, 2, 100, at(40*time.Millisecond))
	// Discard after completion is ignored — completion wins.
	tr.Discard(StageSpecDistributed, 1, 100, at(99*time.Millisecond))
	// Discard with only a remote Mark anchor (the distributor marked the
	// push; this node never began a span) still records the drop.
	tr.Mark(StageSpecDistributed, 3, at(20*time.Millisecond))
	tr.Discard(StageSpecDistributed, 3, 101, at(50*time.Millisecond))
	// Discard with no prior state at all: zero-length drop record.
	tr.Discard(StageSpecDistributed, 4, 102, at(60*time.Millisecond))

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d closed spans, want 4 (no span may leak open): %+v", len(spans), spans)
	}
	if got := tr.DiscardedCount(StageSpecDistributed); got != 3 {
		t.Fatalf("DiscardedCount = %d, want 3", got)
	}
	for _, sp := range spans {
		switch sp.Key {
		case 1:
			if sp.Discarded {
				t.Fatal("completed span 1 must not be discarded (completion wins)")
			}
		case 2:
			if !sp.Discarded || sp.Duration() != 28*time.Millisecond {
				t.Fatalf("span 2 must be discarded with its open lifetime: %+v", sp)
			}
		case 3:
			if !sp.Discarded || sp.Duration() != 30*time.Millisecond {
				t.Fatalf("span 3 must anchor at the mark: %+v", sp)
			}
		case 4:
			if !sp.Discarded || sp.Duration() != 0 {
				t.Fatalf("span 4 must be a zero-length drop record: %+v", sp)
			}
		}
	}

	// Latency statistics see only the completed span.
	durs := tr.StageDurations(StageSpecDistributed)
	if len(durs) != 1 || durs[0] != 20*time.Millisecond {
		t.Fatalf("StageDurations must exclude discards: %v", durs)
	}

	// The Chrome export flags exactly the discarded spans.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), `"discarded":1`); got != 3 {
		t.Fatalf("Chrome export flags %d discarded spans, want 3", got)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export with discards does not parse: %v", err)
	}

	// Stage tables and CSV omit stages that recorded nothing, so
	// block-mode output never grows a spec_distributed row.
	empty := NewTracer(epoch)
	empty.Span(StageSubmit, 1, 1, at(0), at(time.Millisecond))
	tblTitle := empty.StageTable().Title
	if strings.Contains(tblTitle, "spec_distributed") {
		t.Fatalf("silent stage leaked into table title: %q", tblTitle)
	}
	var csv bytes.Buffer
	if err := empty.WriteStageCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(csv.String(), "spec_distributed") {
		t.Fatalf("silent stage leaked into CSV: %q", csv.String())
	}
	// ...but a discard alone is enough to surface the stage.
	if !strings.Contains(tr.StageTable().Title, "spec_distributed") {
		t.Fatal("stage with discards must appear in the table")
	}
}

func TestNilRecorders(t *testing.T) {
	var tr *Tracer
	tr.Begin(StageSubmit, 1, 1, at(0))
	tr.End(StageSubmit, 1, 1, at(0))
	tr.Span(StageSubmit, 1, 1, at(0), at(0))
	tr.Mark(StageSubmit, 1, at(0))
	tr.SpanSinceMark(StageSubmit, 1, 1, at(0))
	tr.Discard(StageSubmit, 1, 1, at(0))
	if tr.Spans() != nil || tr.SpanCount() != 0 || tr.DiscardedCount(StageSubmit) != 0 {
		t.Fatal("nil tracer must be inert")
	}
	if got := tr.StageSummary(StageSubmit); got.Count != 0 {
		t.Fatal("nil tracer summary must be empty")
	}

	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must be inert")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge must be inert")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must be inert")
	}
	var r *Registry
	if r.Counter("x", 0) != nil || r.Gauge("x", 0) != nil || r.Histogram("x", 0, nil) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 10, 25} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bucket shapes: %v %v", bounds, counts)
	}
	want := []uint64{2, 1, 2, 1} // ≤1: {0.5,1}; ≤5: {3}; ≤10: {7,10}; +Inf: {25}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 6 || h.Sum() != 46.5 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	// Re-registration returns the same histogram, ignoring new bounds.
	if r.Histogram("lat", 1, []float64{99}) != h {
		t.Fatal("histogram identity must be stable")
	}
}

func TestRegistryCSVDeterministic(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter("msgs", 2).Add(7) },
			func() { r.Counter("msgs", 1).Inc() },
			func() { r.Gauge("depth", wire.NoNode).Set(3.5) },
			func() { r.Histogram("lat", 1, []float64{1, 10}).Observe(4) },
		}
		for _, i := range order {
			ops[i]()
		}
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	if a != b {
		t.Fatalf("registry CSV depends on insertion order:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{
		"metric,node,field,value\n",
		"msgs,1,value,1\n",
		"msgs,2,value,7\n",
		"depth,-,value,3.5\n",
		"lat,1,count,1\n",
		"lat,1,le:+Inf,0\n",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("CSV missing %q:\n%s", want, a)
		}
	}
}

func TestStageCSV(t *testing.T) {
	tr := NewTracer(epoch)
	for i, s := range Stages() {
		d := time.Duration(i+1) * time.Millisecond
		tr.Span(s, 1, 1, at(0), at(d))
	}
	var buf bytes.Buffer
	if err := tr.WriteStageCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+int(numStages) {
		t.Fatalf("stage CSV has %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "submit,1,1,") {
		t.Fatalf("first stage row: %q", lines[1])
	}
	if !strings.HasPrefix(lines[int(StageFullNodeDelivered)+1], "fullnode_delivered,1,7,") {
		t.Fatalf("fullnode_delivered row: %q", lines[int(StageFullNodeDelivered)+1])
	}
	if !strings.HasPrefix(lines[int(StageSpecDistributed)+1], "spec_distributed,1,8,") {
		t.Fatalf("spec_distributed row: %q", lines[int(StageSpecDistributed)+1])
	}
	tbl := tr.StageTable()
	out := tbl.Render()
	for _, want := range []string{"stage", "count", "p99_ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stage table missing %q:\n%s", want, out)
		}
	}
}

type pingMsg struct{ Pad uint32 }

const pingType = wire.TypeRangeTest + 0x40

func (p *pingMsg) Type() wire.Type { return pingType }
func (p *pingMsg) WireSize() int   { return wire.FrameOverhead + 4 + int(p.Pad) }
func (p *pingMsg) EncodeBody(e *wire.Encoder) {
	e.U32(p.Pad)
	e.Raw(make([]byte, p.Pad))
}

func decodePing(d *wire.Decoder) (wire.Message, error) {
	p := &pingMsg{Pad: d.U32()}
	d.Raw(int(p.Pad))
	return p, d.Err()
}

func registerPing() {
	if !wire.Registered(pingType) {
		wire.Register(pingType, "obs-ping", decodePing)
	}
}

// streamer sends a padded ping to its peer every 10ms, forever (the run
// deadline bounds it).
type streamer struct {
	ctx  env.Context
	peer wire.NodeID
}

func (s *streamer) Start(ctx env.Context) {
	s.ctx = ctx
	s.tick()
}

func (s *streamer) tick() {
	s.ctx.Send(s.peer, &pingMsg{Pad: 60_000})
	s.ctx.After(10*time.Millisecond, s.tick)
}

func (s *streamer) Receive(from wire.NodeID, m wire.Message) {}

// sink records a synthetic submit span on every delivery.
type sink struct {
	ctx env.Context
	tr  *Tracer
}

func (s *sink) Start(ctx env.Context) { s.ctx = ctx }

func (s *sink) Receive(from wire.NodeID, m wire.Message) {
	now := s.ctx.Now()
	s.tr.Span(StageSubmit, uint64(now.UnixNano()), s.ctx.ID(), now.Add(-5*time.Millisecond), now)
}

// runSampledSim runs a tiny two-node simulation with a sampler attached
// and returns the tracer, sampler, and registry it filled.
func runSampledSim(t *testing.T) (*Tracer, *Sampler, *Registry) {
	t.Helper()
	registerPing()
	net := simnet.New(simnet.Config{
		Uplink:   simnet.Mbps100,
		Downlink: simnet.Mbps100,
		Latency:  simnet.UniformLatency(5 * time.Millisecond),
		Seed:     1,
	})
	tr := NewTracer(simnet.Epoch)
	reg := NewRegistry()
	net.AddNode(0, &streamer{peer: 1})
	net.AddNode(1, &sink{tr: tr})
	s := NewSampler(net, 50*time.Millisecond, reg)
	s.Start(400 * time.Millisecond)
	net.Start()
	net.Run(400 * time.Millisecond)
	return tr, s, reg
}

func TestSamplerRecords(t *testing.T) {
	_, s, reg := runSampledSim(t)
	samples := s.Samples()
	if len(samples) != 8 {
		t.Fatalf("got %d samples, want 8 (400ms / 50ms)", len(samples))
	}
	var sawBusy bool
	for _, sm := range samples {
		for _, ns := range sm.Nodes {
			if ns.Node == 0 && ns.UpUtil > 0 {
				sawBusy = true
			}
			if ns.UpUtil < 0 || ns.DownUtil < 0 {
				t.Fatalf("negative utilization: %+v", ns)
			}
		}
	}
	if !sawBusy {
		t.Fatal("sampler never saw the streaming uplink busy")
	}
	// 60 KB every 10ms over a 100 Mbps (12.5 MB/s) uplink ≈ 48% utilization;
	// check the steady-state sample is in a sane band.
	mid := samples[4].Nodes[0]
	if mid.UpUtil < 0.2 || mid.UpUtil > 0.9 {
		t.Fatalf("steady-state up_util = %v, want ≈0.48", mid.UpUtil)
	}
	if reg.Gauge("nic_up_util", 0).Value() <= 0 {
		t.Fatal("sampler must publish NIC gauges")
	}
	if reg.Gauge("queue_depth", wire.NoNode).Value() <= 0 {
		t.Fatal("sampler must publish queue depth")
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "t_ms,node,up_util,down_util,sent_bytes,recv_bytes,queue_len\n") {
		t.Fatalf("sampler CSV header: %q", buf.String()[:60])
	}
}

// TestWriteLinkCSV checks the per-link byte export: the streamer's 0→1
// traffic must appear as a positive row, and two identical runs must
// produce byte-identical output.
func TestWriteLinkCSV(t *testing.T) {
	run := func() string {
		_, s, _ := runSampledSim(t)
		var buf bytes.Buffer
		if err := s.WriteLinkCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := run()
	if !strings.HasPrefix(a, "from,to,bytes\n") {
		t.Fatalf("link CSV header: %q", a)
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(a), "\n")[1:] {
		var from, to, bytes uint64
		if _, err := fmt.Sscanf(line, "%d,%d,%d", &from, &to, &bytes); err != nil {
			t.Fatalf("malformed link row %q: %v", line, err)
		}
		if from == 0 && to == 1 {
			found = true
			if bytes == 0 {
				t.Fatal("0→1 link carried traffic but reports zero bytes")
			}
		}
	}
	if !found {
		t.Fatalf("link CSV missing the 0→1 streamer link:\n%s", a)
	}
	if b := run(); a != b {
		t.Fatal("WriteLinkCSV output differs across identical runs")
	}
}

func TestWriteChromeParsesAndIsDeterministic(t *testing.T) {
	run := func() string {
		tr, s, _ := runSampledSim(t)
		for i, st := range Stages() {
			tr.Span(st, uint64(i), wire.NodeID(i), at(time.Duration(i)*time.Millisecond),
				at(time.Duration(i+2)*time.Millisecond))
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf, s); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := run()
	b := run()
	if a != b {
		t.Fatal("WriteChrome output differs across identical runs")
	}

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  uint64  `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(a), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	var counters int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			seen[ev.Name] = true
		}
		if ev.Ph == "C" {
			counters++
		}
	}
	for _, name := range StageNames {
		if !seen[name] {
			t.Fatalf("trace missing stage %q", name)
		}
	}
	if counters == 0 {
		t.Fatal("trace missing sampler counter events")
	}
}

func TestWriteChromeNoSampler(t *testing.T) {
	tr := NewTracer(epoch)
	tr.Span(StageSubmit, 1, 1, at(0), at(time.Millisecond))
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
}

func TestFormatMicros(t *testing.T) {
	cases := map[time.Duration]string{
		0:                                        "0",
		time.Microsecond:                         "1",
		1500 * time.Nanosecond:                   "1.5",
		time.Millisecond:                         "1000",
		2*time.Millisecond + 250*time.Nanosecond: "2000.25",
	}
	for in, want := range cases {
		if got := formatMicros(in); got != want {
			t.Fatalf("formatMicros(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1:       "1",
		1.5:     "1.5",
		0.3333:  "0.3333",
		12.3400: "12.34",
		-0.5:    "-0.5",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
