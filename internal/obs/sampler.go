package obs

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"predis/internal/simnet"
	"predis/internal/wire"
)

// NodeSample is one node's NIC state over one sampling interval.
type NodeSample struct {
	Node wire.NodeID
	// UpUtil and DownUtil are the fraction of the interval each NIC spent
	// serializing. Values can transiently exceed 1: the simulator reserves
	// serialization time ahead when a burst queues, and the busy-time delta
	// lands in the interval the burst was sent.
	UpUtil, DownUtil float64
	// SentBytes and RecvBytes are the bytes serialized out of / into the
	// node during the interval.
	SentBytes, RecvBytes uint64
}

// Sample is one periodic observation of the whole network.
type Sample struct {
	At time.Time
	// QueueLen is the instantaneous event-queue depth (pending timers and
	// in-flight messages).
	QueueLen int
	// Delivered and SentBytes are deltas over the interval.
	Delivered uint64
	SentBytes uint64
	// Nodes holds per-node NIC samples in ascending node-ID order.
	Nodes []NodeSample
}

// Sampler periodically reads NIC busy time, per-node byte counters, and
// event-queue depth from a simnet.Network. Sampling is purely passive —
// the tick callbacks read state and never send, so an instrumented run
// delivers exactly the same messages as an uninstrumented one (sampler
// events do change event sequence numbers, but sequence numbers only
// tie-break events scheduled at the same instant in scheduling order,
// which sampling preserves).
//
// Ticks are pre-scheduled by Start for a bounded horizon so that
// RunUntilIdle-style draining still terminates.
type Sampler struct {
	net      *simnet.Network
	interval time.Duration
	reg      *Registry

	samples []Sample
	// Per-node previous readings, indexed by the network's dense node
	// index (simnet interns IDs at registration), so the per-tick sweep is
	// a flat-array walk instead of four map lookups per node. Grown lazily
	// on each tick since nodes may register after the sampler is built.
	lastUp   []time.Duration
	lastDown []time.Duration
	lastSent []uint64
	lastRecv []uint64

	lastDelivered uint64
	lastBytes     uint64
}

// NewSampler builds a sampler over net. interval is the sampling period;
// reg, when non-nil, additionally receives per-node NIC gauges and a
// simulation-wide queue-depth gauge on every tick.
func NewSampler(net *simnet.Network, interval time.Duration, reg *Registry) *Sampler {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &Sampler{
		net:      net,
		interval: interval,
		reg:      reg,
	}
}

// Start schedules sampling ticks at every interval boundary in (0, horizon]
// (horizon measured from the simulation epoch). All ticks are scheduled up
// front, so the sampler never keeps an idle network alive.
func (s *Sampler) Start(horizon time.Duration) {
	if s == nil {
		return
	}
	for at := s.interval; at <= horizon; at += s.interval {
		s.net.At(at, s.tick)
	}
}

// tick records one sample. The sweep walks the network's dense node
// table in ascending-ID order via the memoized index permutation, so a
// 10⁴-node population costs one flat-slice pass, not 4n map lookups.
func (s *Sampler) tick() {
	now := s.net.Now()
	order := s.net.SortedIndexes()
	if n := s.net.NodeCount(); len(s.lastUp) < n {
		s.lastUp = append(s.lastUp, make([]time.Duration, n-len(s.lastUp))...)
		s.lastDown = append(s.lastDown, make([]time.Duration, n-len(s.lastDown))...)
		s.lastSent = append(s.lastSent, make([]uint64, n-len(s.lastSent))...)
		s.lastRecv = append(s.lastRecv, make([]uint64, n-len(s.lastRecv))...)
	}
	sm := Sample{
		At:        now,
		QueueLen:  s.net.QueueLen(),
		Delivered: s.net.Delivered() - s.lastDelivered,
		SentBytes: s.net.BytesSent() - s.lastBytes,
		Nodes:     make([]NodeSample, 0, len(order)),
	}
	s.lastDelivered = s.net.Delivered()
	s.lastBytes = s.net.BytesSent()
	iv := float64(s.interval)
	for _, idx := range order {
		id, up, down, sent, recv := s.net.NodeStatsAt(idx)
		ns := NodeSample{
			Node:      id,
			UpUtil:    float64(up-s.lastUp[idx]) / iv,
			DownUtil:  float64(down-s.lastDown[idx]) / iv,
			SentBytes: sent - s.lastSent[idx],
			RecvBytes: recv - s.lastRecv[idx],
		}
		s.lastUp[idx] = up
		s.lastDown[idx] = down
		s.lastSent[idx] = sent
		s.lastRecv[idx] = recv
		sm.Nodes = append(sm.Nodes, ns)
		s.reg.Gauge("nic_up_util", id).Set(ns.UpUtil)
		s.reg.Gauge("nic_down_util", id).Set(ns.DownUtil)
	}
	s.reg.Gauge("queue_depth", wire.NoNode).Set(float64(sm.QueueLen))
	s.samples = append(s.samples, sm)
}

// Samples returns every recorded sample in time order. Callers must not
// mutate the returned slice.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	return s.samples
}

// WriteLinkCSV dumps the network's cumulative per-link byte totals as
// `from,to,bytes`, one row per directed link that carried traffic, in
// ascending (from, to) order.
func (s *Sampler) WriteLinkCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "from,to,bytes\n"); err != nil {
		return err
	}
	if s == nil {
		return nil
	}
	for _, l := range s.net.LinkLoads() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d\n", l.From, l.To, l.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps one row per (tick, node):
// `t_ms,node,up_util,down_util,sent_bytes,recv_bytes,queue_len` with the
// simulation-wide fields repeated on a node of "-" per tick.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "t_ms,node,up_util,down_util,sent_bytes,recv_bytes,queue_len\n"); err != nil {
		return err
	}
	if s == nil {
		return nil
	}
	epoch := simnet.Epoch
	for _, sm := range s.samples {
		t := formatFloat(durMS(sm.At.Sub(epoch)))
		if _, err := fmt.Fprintf(w, "%s,-,,,%d,,%d\n", t, sm.SentBytes, sm.QueueLen); err != nil {
			return err
		}
		for _, ns := range sm.Nodes {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%d,%d,\n",
				t, strconv.FormatUint(uint64(ns.Node), 10),
				formatFloat(ns.UpUtil), formatFloat(ns.DownUtil),
				ns.SentBytes, ns.RecvBytes); err != nil {
				return err
			}
		}
	}
	return nil
}
