package rtnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/node"
	"predis/internal/types"
	"predis/internal/wire"
)

// echoHandler counts receptions; used for plumbing tests.
type echoHandler struct {
	mu  sync.Mutex
	ctx env.Context
	got []wire.Message
}

func (h *echoHandler) Start(ctx env.Context) { h.ctx = ctx }
func (h *echoHandler) Receive(from wire.NodeID, m wire.Message) {
	h.mu.Lock()
	h.got = append(h.got, m)
	h.mu.Unlock()
}

func (h *echoHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.got)
}

func TestRuntimeDelivery(t *testing.T) {
	node.RegisterAllMessages()
	ha, hb := &echoHandler{}, &echoHandler{}

	ra, err := New(Config{Self: 0, Listen: "127.0.0.1:0"}, ha)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Start(); err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	rb, err := New(Config{
		Self: 1, Listen: "127.0.0.1:0",
		Peers: map[wire.NodeID]string{0: ra.Addr().String()},
	}, hb)
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Start(); err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	// b → a over real TCP.
	tx := types.NewTransaction(1, 7, 512, 0)
	hb.ctx.Send(0, &types.SubmitTx{Tx: tx, Target: 0})
	deadline := time.Now().Add(3 * time.Second)
	for ha.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ha.count() != 1 {
		t.Fatal("message not delivered over TCP")
	}
	got := ha.got[0].(*types.SubmitTx)
	if got.Tx.Hash() != tx.Hash() {
		t.Fatal("transaction corrupted in transit")
	}
}

func TestRuntimeSelfSendAndTimer(t *testing.T) {
	node.RegisterAllMessages()
	h := &echoHandler{}
	r, err := New(Config{Self: 3}, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	fired := make(chan struct{})
	r.Inject(9, &types.BlockReply{Height: 1, Replica: 9})
	h.ctx.Send(3, &types.BlockReply{Height: 2, Replica: 3}) // self-send
	tm := h.ctx.After(10*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
	deadline := time.Now().Add(time.Second)
	for h.count() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if h.count() < 2 {
		t.Fatalf("got %d messages, want 2", h.count())
	}
}

func TestRuntimeUnknownPeerDrops(t *testing.T) {
	h := &echoHandler{}
	r, err := New(Config{Self: 0}, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h.ctx.Send(42, &types.BlockReply{}) // no address: silently dropped
}

// TestPBFTOverTCP runs a full 4-node P-PBFT deployment over real loopback
// TCP: the same node assembly as the simulator tests, driven by rtnet.
func TestPBFTOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	node.RegisterAllMessages()
	const nc = 4
	suite := crypto.NewSimSuite(nc, 51)

	var (
		mu      sync.Mutex
		commits = make([]int, nc)
	)
	runtimes := make([]*Runtime, nc)
	nodes := make([]*node.Node, nc)

	// New binds the listener, so addresses are known before Start: create
	// everything, exchange addresses, then start.
	for i := 0; i < nc; i++ {
		i := i
		n, err := node.New(node.Config{
			Mode: node.ModePredis, Engine: node.EnginePBFT,
			NC: nc, F: 1, Self: wire.NodeID(i),
			Signer:         suite.Signer(i),
			BundleSize:     10,
			BundleInterval: 10 * time.Millisecond,
			ViewTimeout:    2 * time.Second,
			OnCommit: func(height uint64, txs []*types.Transaction) {
				mu.Lock()
				commits[i] += len(txs)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		r, err := New(Config{Self: wire.NodeID(i), Listen: "127.0.0.1:0"}, n)
		if err != nil {
			t.Fatal(err)
		}
		runtimes[i] = r
	}
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			if i != j {
				runtimes[i].AddPeer(wire.NodeID(j), runtimes[j].Addr().String())
			}
		}
	}
	for i := 0; i < nc; i++ {
		if err := runtimes[i].Start(); err != nil {
			t.Fatal(err)
		}
		defer runtimes[i].Close()
	}

	// Submit transactions to every node.
	for k := 0; k < 40; k++ {
		tx := types.NewTransaction(1000, uint64(k+1), 512, 0)
		runtimes[k%nc].Inject(1000, &types.SubmitTx{Tx: tx})
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := commits[0] >= 40 && commits[1] >= 40 && commits[2] >= 40 && commits[3] >= 40
		mu.Unlock()
		if done {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	t.Fatalf("commits after deadline: %v (want ≥ 40 everywhere)", commits)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Self: 0}, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	h := &echoHandler{}
	r, err := New(Config{Self: 0, Listen: "127.0.0.1:0"}, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	r.Close()
	r.Close() // idempotent
}

func ExampleRuntime() {
	fmt.Println("see cmd/predis-node for a complete deployment")
	// Output: see cmd/predis-node for a complete deployment
}

// TestListenerRestartDeliveryResumes kills a listening runtime, restarts a
// fresh one on the same address, and asserts the sender's redial backoff
// reconnects so delivery resumes. This is the real-time analogue of the
// simulator's Crash/Restart hooks: frames sent while the listener is down
// are lost (the env contract permits loss), but the redial loop must find
// the reborn listener without intervention.
func TestListenerRestartDeliveryResumes(t *testing.T) {
	node.RegisterAllMessages()
	ha := &echoHandler{}
	ra, err := New(Config{Self: 0, Listen: "127.0.0.1:0"}, ha)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Start(); err != nil {
		t.Fatal(err)
	}
	addr := ra.Addr().String()

	hb := &echoHandler{}
	rb, err := New(Config{
		Self:  1,
		Peers: map[wire.NodeID]string{0: addr},
		// Tight redial so the test converges fast; jitter stays on to
		// exercise the seeded draw.
		Redial: env.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond,
			Factor: 2, Jitter: 0.25},
	}, hb)
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Start(); err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	send := func(seq uint64) { hb.ctx.Send(0, &types.BlockReply{Height: seq, Replica: 1}) }

	// Phase 1: normal delivery.
	send(1)
	deadline := time.Now().Add(3 * time.Second)
	for ha.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ha.count() == 0 {
		t.Fatal("initial delivery failed")
	}

	// Phase 2: kill the listener. In-flight sends now fail and the
	// writeLoop enters its redial backoff.
	ra.Close()
	send(2) // triggers the write error that tears the stale conn down

	// Phase 3: restart a fresh runtime on the SAME address.
	ha2 := &echoHandler{}
	ra2, err := New(Config{Self: 0, Listen: addr}, ha2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra2.Start(); err != nil {
		t.Fatal(err)
	}
	defer ra2.Close()

	// Phase 4: keep sending until one lands; the redial loop must
	// reconnect within the backoff cap.
	deadline = time.Now().Add(5 * time.Second)
	seq := uint64(3)
	for ha2.count() == 0 && time.Now().Before(deadline) {
		send(seq)
		seq++
		time.Sleep(25 * time.Millisecond)
	}
	if ha2.count() == 0 {
		t.Fatal("delivery did not resume after listener restart")
	}
	t.Logf("delivery resumed after %d post-restart sends", seq-3)
}
