// Package rtnet is the real-time runtime: it hosts an env.Handler over TCP
// so the same protocol state machines that run in the simulator drive real
// deployments (cmd/predis-node, cmd/predis-client).
//
// Wire format per connection: a 4-byte big-endian hello carrying the
// sender's NodeID, then a stream of wire.Marshal frames. All callbacks
// into the handler are serialized by a mutex, honoring the env contract;
// timers run through time.AfterFunc and take the same lock.
//
// Lifecycle: New binds the listener (so Addr is known immediately and
// peers can be registered with AddPeer before any traffic), Start launches
// the accept loop and calls the handler's Start, Close tears everything
// down and waits for the runtime's goroutines.
package rtnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"predis/internal/env"
	"predis/internal/wire"
)

// Config parameterizes a runtime.
type Config struct {
	// Self is this node's ID.
	Self wire.NodeID
	// Listen is the TCP address to accept peers on; empty means
	// client-only (no inbound connections).
	Listen string
	// Peers maps node IDs to dialable addresses; more can be added with
	// AddPeer before Start. Outbound connections are dialed lazily on
	// first Send and redialed with backoff.
	Peers map[wire.NodeID]string
	// Seed drives the handler's Rand.
	Seed int64
	// LogWriter receives Logf output when non-nil.
	LogWriter io.Writer
	// SendQueue bounds per-peer outbound queues (default 4096 messages);
	// overflow drops, which the env contract allows.
	SendQueue int
	// DialTimeout bounds connection attempts (default 3s).
	DialTimeout time.Duration
	// Redial is the backoff policy for outbound redials. The zero value
	// selects env.DefaultBackoff(100ms) capped at 5s: 100ms doubling to
	// 1.6s nominal with ±25% jitter, hard-capped at 5s, so a flapping
	// peer is not hammered and reconnecting peers do not stampede in
	// lockstep.
	Redial env.Backoff
}

// Runtime hosts one handler.
type Runtime struct {
	cfg     Config
	handler env.Handler

	mu  sync.Mutex // serializes every handler callback
	rng *rand.Rand

	listener net.Listener

	connMu  sync.Mutex
	peers   map[wire.NodeID]string
	conns   map[wire.NodeID]*peerConn
	inbound map[net.Conn]struct{}

	stop chan struct{}
	wg   sync.WaitGroup

	started bool
	closed  bool
}

type peerConn struct {
	id    wire.NodeID
	addr  string
	queue chan []byte
}

// New creates a runtime for the handler and binds the listener (when
// configured); call Start to begin processing.
func New(cfg Config, h env.Handler) (*Runtime, error) {
	if h == nil {
		return nil, errors.New("rtnet: handler is required")
	}
	if cfg.SendQueue <= 0 {
		cfg.SendQueue = 4096
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.Redial.Base <= 0 {
		cfg.Redial = env.DefaultBackoff(100 * time.Millisecond)
		cfg.Redial.Max = 5 * time.Second
	}
	r := &Runtime{
		cfg:     cfg,
		handler: h,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.Self+1)*0x5851f42d4c957f2d)),
		peers:   make(map[wire.NodeID]string),
		conns:   make(map[wire.NodeID]*peerConn),
		inbound: make(map[net.Conn]struct{}),
		stop:    make(chan struct{}),
	}
	for id, addr := range cfg.Peers {
		r.peers[id] = addr
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("rtnet: listen %s: %w", cfg.Listen, err)
		}
		r.listener = ln
	}
	return r, nil
}

// AddPeer registers (or updates) a peer address. Call before traffic to
// that peer starts; an existing connection is not redialed.
func (r *Runtime) AddPeer(id wire.NodeID, addr string) {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	r.peers[id] = addr
}

// Start launches the accept loop and invokes the handler's Start. It is
// an error to call it twice.
func (r *Runtime) Start() error {
	if r.started {
		return errors.New("rtnet: already started")
	}
	r.started = true
	if r.listener != nil {
		r.wg.Add(1)
		go r.acceptLoop(r.listener)
	}
	r.mu.Lock()
	r.handler.Start((*rtContext)(r))
	r.mu.Unlock()
	return nil
}

// Addr returns the bound listen address (useful with ":0"), or nil for a
// client-only runtime.
func (r *Runtime) Addr() net.Addr {
	if r.listener == nil {
		return nil
	}
	return r.listener.Addr()
}

// Close shuts the runtime down and waits for its goroutines. Idempotent.
func (r *Runtime) Close() {
	r.connMu.Lock()
	if r.closed {
		r.connMu.Unlock()
		return
	}
	r.closed = true
	close(r.stop)
	if r.listener != nil {
		_ = r.listener.Close()
	}
	for c := range r.inbound {
		_ = c.Close()
	}
	for _, pc := range r.conns {
		close(pc.queue)
	}
	r.conns = make(map[wire.NodeID]*peerConn)
	r.connMu.Unlock()
	r.wg.Wait()
}

func (r *Runtime) logf(format string, args ...any) {
	if w := r.cfg.LogWriter; w != nil {
		fmt.Fprintf(w, "rtnet[%d] "+format+"\n", append([]any{r.cfg.Self}, args...)...)
	}
}

// acceptLoop accepts inbound peers.
func (r *Runtime) acceptLoop(ln net.Listener) {
	defer r.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed (or fatal error): stop accepting
		}
		r.connMu.Lock()
		if r.closed {
			r.connMu.Unlock()
			_ = c.Close()
			return
		}
		r.inbound[c] = struct{}{}
		r.connMu.Unlock()
		r.wg.Add(1)
		go r.readLoop(c)
	}
}

// readLoop reads the hello then dispatches frames to the handler.
func (r *Runtime) readLoop(c net.Conn) {
	defer r.wg.Done()
	defer func() {
		r.connMu.Lock()
		delete(r.inbound, c)
		r.connMu.Unlock()
		_ = c.Close()
	}()
	var hello [4]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		return
	}
	from := wire.NodeID(binary.BigEndian.Uint32(hello[:]))
	header := make([]byte, wire.FrameOverhead)
	for {
		if _, err := io.ReadFull(c, header); err != nil {
			return
		}
		bodyLen := int(binary.BigEndian.Uint32(header[2:6]))
		if bodyLen > wire.MaxBodyLen {
			r.logf("oversize frame from %d", from)
			return
		}
		frame := make([]byte, wire.FrameOverhead+bodyLen)
		copy(frame, header)
		if _, err := io.ReadFull(c, frame[wire.FrameOverhead:]); err != nil {
			return
		}
		msg, _, err := wire.Unmarshal(frame)
		if err != nil {
			r.logf("decode from %d: %v", from, err)
			continue
		}
		select {
		case <-r.stop:
			return
		default:
		}
		r.mu.Lock()
		r.handler.Receive(from, msg)
		r.mu.Unlock()
	}
}

// peer returns (creating if needed) the outbound connection state.
func (r *Runtime) peer(id wire.NodeID) *peerConn {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	if r.closed {
		return nil
	}
	if pc, ok := r.conns[id]; ok {
		return pc
	}
	addr, ok := r.peers[id]
	if !ok {
		return nil
	}
	pc := &peerConn{id: id, addr: addr, queue: make(chan []byte, r.cfg.SendQueue)}
	r.conns[id] = pc
	r.wg.Add(1)
	go r.writeLoop(pc)
	return pc
}

// writeLoop dials (with the configured redial backoff) and drains the
// peer's queue.
func (r *Runtime) writeLoop(pc *peerConn) {
	defer r.wg.Done()
	var c net.Conn
	defer func() {
		if c != nil {
			_ = c.Close()
		}
	}()
	// Per-loop jitter source: writeLoop runs on its own goroutine, so it
	// must not share the handler's rng. Seeded per (self, peer) pair so
	// two runtimes redialing the same peer stay decorrelated.
	rng := rand.New(rand.NewSource(r.cfg.Seed ^
		int64(r.cfg.Self+1)*0x5851f42d4c957f2d ^ int64(pc.id+1)*0x2545f4914f6cdd1d))
	attempt := 0
	for frame := range pc.queue {
		for c == nil {
			select {
			case <-r.stop:
				return
			default:
			}
			conn, err := net.DialTimeout("tcp", pc.addr, r.cfg.DialTimeout)
			if err != nil {
				delay := r.cfg.Redial.Delay(attempt, rng)
				attempt++
				r.logf("dial %d@%s: %v (retry in %v)", pc.id, pc.addr, err, delay)
				select {
				case <-time.After(delay):
				case <-r.stop:
					return
				}
				continue
			}
			var hello [4]byte
			binary.BigEndian.PutUint32(hello[:], uint32(r.cfg.Self))
			if _, err := conn.Write(hello[:]); err != nil {
				_ = conn.Close()
				continue
			}
			c = conn
			attempt = 0
		}
		if _, err := c.Write(frame); err != nil {
			r.logf("write to %d: %v", pc.id, err)
			_ = c.Close()
			c = nil
			// The frame is lost; the env contract permits message loss.
		}
	}
}

// rtContext implements env.Context over the runtime.
type rtContext Runtime

var _ env.Context = (*rtContext)(nil)

// ID implements env.Context.
func (c *rtContext) ID() wire.NodeID { return c.cfg.Self }

// Now implements env.Context.
func (c *rtContext) Now() time.Time { return time.Now() }

// Rand implements env.Context.
func (c *rtContext) Rand() *rand.Rand { return c.rng }

// Logf implements env.Context.
func (c *rtContext) Logf(format string, args ...any) {
	(*Runtime)(c).logf(format, args...)
}

// Send implements env.Context.
func (c *rtContext) Send(to wire.NodeID, m wire.Message) {
	r := (*Runtime)(c)
	if to == c.cfg.Self {
		// Local delivery must not run inline (the caller holds the lock);
		// hand it to a timer goroutine.
		c.After(0, func() { r.handler.Receive(to, m) })
		return
	}
	pc := r.peer(to)
	if pc == nil {
		r.logf("send to unknown peer %d", to)
		return
	}
	frame := wire.Marshal(m)
	select {
	case pc.queue <- frame:
	default:
		r.logf("queue to %d full; dropping %s", to, wire.TypeName(m.Type()))
	}
}

// After implements env.Context.
func (c *rtContext) After(d time.Duration, fn func()) env.Timer {
	r := (*Runtime)(c)
	t := &rtTimer{}
	t.t = time.AfterFunc(d, func() {
		select {
		case <-r.stop:
			return
		default:
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if !t.stopped {
			fn()
		}
	})
	return t
}

type rtTimer struct {
	t       *time.Timer
	stopped bool
}

// Stop implements env.Timer.
func (t *rtTimer) Stop() bool {
	t.stopped = true
	return t.t.Stop()
}

// Inject delivers a message to the handler as if it arrived from the given
// node; tools use it to bridge non-runtime inputs.
func (r *Runtime) Inject(from wire.NodeID, m wire.Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handler.Receive(from, m)
}
