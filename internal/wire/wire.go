// Package wire defines the message plumbing shared by every protocol in the
// framework: node identifiers, the Message interface, a compact binary
// encoding, and a registry that maps message type tags to decoders.
//
// Every message knows its WireSize, the number of bytes it occupies on the
// wire. The discrete-event simulator charges exactly WireSize bytes against
// link bandwidth, and the TCP runtime marshals messages with the same codec,
// so simulated and real deployments agree on bandwidth consumption.
package wire

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a node in the system. IDs are assigned densely from 0 by
// the runtime that constructs the network.
type NodeID uint32

// NoNode is a sentinel for "no node".
const NoNode NodeID = ^NodeID(0)

// Type tags a concrete message so receivers can decode it. Type spaces for
// the different protocol packages are partitioned in ranges; see the
// Type* range constants.
type Type uint16

// Type ranges, one block per protocol package. Starting at 1 so the zero
// Type is always invalid.
const (
	TypeRangeCore     Type = 0x0100 // bundles, Predis blocks, fetch
	TypeRangePBFT     Type = 0x0200
	TypeRangeHotStuff Type = 0x0300
	TypeRangeNarwhal  Type = 0x0400
	TypeRangeStratus  Type = 0x0500
	TypeRangeZone     Type = 0x0600 // Multi-Zone control and data plane
	TypeRangeGossip   Type = 0x0700
	TypeRangeClient   Type = 0x0800 // client submit / reply
	TypeRangeTxPool   Type = 0x0900 // baseline batch proposals
	TypeRangeFaults   Type = 0x7d00 // adversarial frames from the fault injector
	TypeRangeTest     Type = 0x7f00
)

// Message is a unit of network communication. Implementations must be
// treated as immutable once sent: the simulator delivers the same pointer to
// every recipient.
type Message interface {
	// Type returns the registered type tag of this message.
	Type() Type
	// WireSize returns the number of bytes this message occupies on the
	// wire, including its type tag and length framing.
	WireSize() int
	// EncodeBody appends the message body (everything after the frame
	// header) to the encoder.
	EncodeBody(e *Encoder)
}

// FrameOverhead is the per-message framing cost: a 2-byte type tag and a
// 4-byte body length.
const FrameOverhead = 6

// Defective marks adversarial messages whose frames cannot be decoded: the
// encoded body deliberately disagrees with what the decoder reads. A real
// runtime can never hand such a frame to a handler — decode fails first —
// so delivery paths that skip the codec for speed (the simulator's default
// zero-copy mode) check this marker and degrade to a counted drop instead.
type Defective interface {
	Message
	// Defective reports whether this message's frame fails to decode.
	Defective() bool
}

// DecodeFunc decodes a message body previously written by EncodeBody.
type DecodeFunc func(d *Decoder) (Message, error)

type registration struct {
	name   string
	decode DecodeFunc
}

var (
	registryMu sync.RWMutex
	registry   = make(map[Type]registration)
)

// Register associates a message type tag with a human-readable name and a
// decoder. It must be called once per type, typically from a package-level
// Register* function invoked by the runtime during setup; duplicate
// registration of the same tag panics because it is a programming error.
func Register(t Type, name string, decode DecodeFunc) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if prev, ok := registry[t]; ok {
		panic(fmt.Sprintf("wire: type %#04x already registered as %q", uint16(t), prev.name))
	}
	registry[t] = registration{name: name, decode: decode}
}

// Registered reports whether a decoder exists for the given type tag.
func Registered(t Type) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[t]
	return ok
}

// TypeName returns the registered name for a type tag, or a hex placeholder
// when the tag is unknown.
func TypeName(t Type) string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	if r, ok := registry[t]; ok {
		return r.name
	}
	return fmt.Sprintf("unknown(%#04x)", uint16(t))
}

// RegisteredTypes returns all registered type tags in ascending order. It is
// intended for diagnostics and tests.
func RegisteredTypes() []Type {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Type, 0, len(registry))
	for t := range registry {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Errors returned by the codec.
var (
	ErrUnknownType = errors.New("wire: unknown message type")
	ErrTruncated   = errors.New("wire: truncated message")
	ErrOversize    = errors.New("wire: declared body length exceeds limit")
	ErrTrailing    = errors.New("wire: trailing bytes after message body")
)

// MaxBodyLen bounds decoded message bodies; anything larger is rejected as
// corrupt. 64 MiB comfortably exceeds the largest block in the evaluation
// (40 MB, Fig. 8).
const MaxBodyLen = 64 << 20

// Marshal encodes a message into a self-delimiting frame:
//
//	[type:2][bodyLen:4][body]
func Marshal(m Message) []byte {
	return MarshalAppend(make([]byte, 0, m.WireSize()), m)
}

// Unmarshal decodes one frame from the front of data and returns the message
// and the number of bytes consumed.
func Unmarshal(data []byte) (Message, int, error) {
	if len(data) < FrameOverhead {
		return nil, 0, ErrTruncated
	}
	d := NewDecoder(data)
	t := Type(d.U16())
	bodyLen := int(d.U32())
	if bodyLen > MaxBodyLen {
		return nil, 0, ErrOversize
	}
	if len(data) < FrameOverhead+bodyLen {
		return nil, 0, ErrTruncated
	}
	registryMu.RLock()
	r, ok := registry[t]
	registryMu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %#04x", ErrUnknownType, uint16(t))
	}
	bd := NewDecoder(data[FrameOverhead : FrameOverhead+bodyLen])
	m, err := r.decode(bd)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: decode %s: %w", r.name, err)
	}
	if err := bd.Err(); err != nil {
		return nil, 0, fmt.Errorf("wire: decode %s: %w", r.name, err)
	}
	// Encoding is canonical: a frame whose declared body is longer than
	// what the decoder consumed is corrupt (or padded by an adversary to
	// skew bandwidth accounting), not merely generous.
	if bd.Remaining() > 0 {
		return nil, 0, fmt.Errorf("%w: %s has %d", ErrTrailing, r.name, bd.Remaining())
	}
	return m, FrameOverhead + bodyLen, nil
}

// Roundtrip marshals then unmarshals a message. It began life as a test
// helper but is also the simulator's copy-on-deliver path, so the
// intermediate frame lives in a pooled scratch buffer: decoding copies
// every retained byte, which makes immediate reuse safe. The decode side
// allocates the fresh message by design, which is why this is a cold
// path even though dispatch calls it under CopyOnDeliver.
//
//predis:coldpath
func Roundtrip(m Message) (Message, error) {
	e := getEncoder()
	out, buf, err := RoundtripAppend(e.buf, m)
	e.buf = buf
	putEncoder(e)
	return out, err
}
