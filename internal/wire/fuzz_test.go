package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal throws arbitrary bytes at the frame decoder. Unmarshal
// guards every receive path (the TCP runtime feeds it raw socket reads,
// and the simulator's copy-on-deliver mode round-trips through it), so a
// panic or an out-of-bounds read here is remotely triggerable by any
// peer. The invariants:
//
//   - Unmarshal never panics, whatever the input.
//   - On success it consumes exactly one frame, within the input.
//   - The decoded message re-marshals to the exact consumed bytes (the
//     codec is positional with length-prefixed slices, so encoding is
//     canonical) and WireSize agrees with the frame length.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal(sampleMsg()))
	f.Add(Marshal(&testMsg{}))
	// Truncated frame: valid header, body cut short.
	whole := Marshal(sampleMsg())
	f.Add(whole[:len(whole)-3])
	f.Add(whole[:FrameOverhead])
	// Unknown type tag, zero-length body.
	f.Add([]byte{0x7f, 0xee, 0, 0, 0, 0})
	// Oversize declared body length.
	e := NewEncoder(FrameOverhead)
	e.U16(uint16(testMsgType))
	e.U32(MaxBodyLen + 1)
	f.Add(append([]byte{}, e.Bytes()...))
	// Lying length prefix inside the body: VarBytes claims more than the
	// frame holds.
	e2 := NewEncoder(64)
	e2.U16(uint16(testMsgType))
	e2.U32(30)
	e2.U8(1)
	e2.U16(2)
	e2.U32(3)
	e2.U64(4)
	e2.F64(5)
	e2.Bool(true)
	e2.Node(6)
	b := e2.Bytes()
	f.Add(append(append([]byte{}, b...), 0xff, 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Unmarshal(data)
		if err != nil {
			if m != nil || n != 0 {
				t.Fatalf("failed Unmarshal leaked m=%v n=%d", m, n)
			}
			return
		}
		if n < FrameOverhead || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if m.WireSize() != n {
			t.Fatalf("WireSize %d, frame length %d", m.WireSize(), n)
		}
		if again := Marshal(m); !bytes.Equal(again, data[:n]) {
			t.Fatalf("re-marshal differs:\n got % x\nwant % x", again, data[:n])
		}
	})
}
