package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// testMsg is a kitchen-sink message exercising every codec primitive.
type testMsg struct {
	A     uint8
	B     uint16
	C     uint32
	D     uint64
	F     float64
	Flag  bool
	Node  NodeID
	H     [32]byte
	Blob  []byte
	Name  string
	Us    []uint64
	Nodes []NodeID
}

const testMsgType = TypeRangeTest + 1

func (m *testMsg) Type() Type { return testMsgType }

func (m *testMsg) WireSize() int {
	return FrameOverhead + 1 + 2 + 4 + 8 + 8 + 1 + 4 + 32 +
		SizeVarBytes(m.Blob) + SizeString(m.Name) + SizeU64Slice(m.Us) + SizeNodeSlice(m.Nodes)
}

func (m *testMsg) EncodeBody(e *Encoder) {
	e.U8(m.A)
	e.U16(m.B)
	e.U32(m.C)
	e.U64(m.D)
	e.F64(m.F)
	e.Bool(m.Flag)
	e.Node(m.Node)
	e.Bytes32(m.H)
	e.VarBytes(m.Blob)
	e.String(m.Name)
	e.U64Slice(m.Us)
	e.NodeSlice(m.Nodes)
}

func decodeTestMsg(d *Decoder) (Message, error) {
	m := &testMsg{
		A:     d.U8(),
		B:     d.U16(),
		C:     d.U32(),
		D:     d.U64(),
		F:     d.F64(),
		Flag:  d.Bool(),
		Node:  d.Node(),
		H:     d.Bytes32(),
		Blob:  d.VarBytes(),
		Name:  d.String(),
		Us:    d.U64Slice(),
		Nodes: d.NodeSlice(),
	}
	return m, d.Err()
}

func init() {
	Register(testMsgType, "test", decodeTestMsg)
}

func sampleMsg() *testMsg {
	return &testMsg{
		A: 7, B: 513, C: 1 << 30, D: 1 << 60, F: 3.25, Flag: true,
		Node: 42, H: [32]byte{1, 2, 3}, Blob: []byte("hello"),
		Name: "bundle", Us: []uint64{1, 2, 3}, Nodes: []NodeID{0, 1, 2, 3},
	}
}

func TestRoundtrip(t *testing.T) {
	m := sampleMsg()
	got, err := Roundtrip(m)
	if err != nil {
		t.Fatalf("roundtrip: %v", err)
	}
	g, ok := got.(*testMsg)
	if !ok {
		t.Fatalf("roundtrip returned %T", got)
	}
	if g.A != m.A || g.B != m.B || g.C != m.C || g.D != m.D || g.F != m.F ||
		g.Flag != m.Flag || g.Node != m.Node || g.H != m.H ||
		!bytes.Equal(g.Blob, m.Blob) || g.Name != m.Name {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", g, m)
	}
	if len(g.Us) != len(m.Us) || len(g.Nodes) != len(m.Nodes) {
		t.Fatalf("slice lengths differ")
	}
}

func TestWireSizeMatchesMarshal(t *testing.T) {
	m := sampleMsg()
	raw := Marshal(m)
	if len(raw) != m.WireSize() {
		t.Fatalf("WireSize %d, marshaled %d bytes", m.WireSize(), len(raw))
	}
}

func TestWireSizeMatchesMarshalQuick(t *testing.T) {
	f := func(blob []byte, name string, us []uint64, a uint8, d uint64) bool {
		m := &testMsg{A: a, D: d, Blob: blob, Name: name, Us: us}
		return len(Marshal(m)) == m.WireSize()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	raw := Marshal(sampleMsg())
	for _, n := range []int{0, 1, FrameOverhead - 1, FrameOverhead, len(raw) - 1} {
		if _, _, err := Unmarshal(raw[:n]); !errors.Is(err, ErrTruncated) {
			t.Errorf("Unmarshal(%d bytes) err = %v, want ErrTruncated", n, err)
		}
	}
}

func TestUnmarshalUnknownType(t *testing.T) {
	e := NewEncoder(16)
	e.U16(0x7fee) // unregistered
	e.U32(0)
	if _, _, err := Unmarshal(e.Bytes()); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

func TestUnmarshalOversize(t *testing.T) {
	e := NewEncoder(16)
	e.U16(uint16(testMsgType))
	e.U32(MaxBodyLen + 1)
	if _, _, err := Unmarshal(e.Bytes()); !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
}

func TestUnmarshalConsumesOneFrame(t *testing.T) {
	raw := Marshal(sampleMsg())
	double := append(append([]byte{}, raw...), raw...)
	_, n, err := Unmarshal(double)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Fatalf("consumed %d, want %d", n, len(raw))
	}
	if _, n2, err := Unmarshal(double[n:]); err != nil || n2 != len(raw) {
		t.Fatalf("second frame: n=%d err=%v", n2, err)
	}
}

func TestDecoderErrorSticky(t *testing.T) {
	d := NewDecoder([]byte{1})
	_ = d.U64() // fails
	if d.Err() == nil {
		t.Fatal("expected error after short read")
	}
	// Subsequent reads return zero values without panicking.
	if v := d.U32(); v != 0 {
		t.Fatalf("post-error read = %d, want 0", v)
	}
	if b := d.VarBytes(); b != nil {
		t.Fatalf("post-error VarBytes = %v, want nil", b)
	}
}

func TestDecoderHugeLengthPrefix(t *testing.T) {
	// A length prefix larger than the remaining buffer must not allocate.
	e := NewEncoder(8)
	e.U32(math.MaxUint32)
	d := NewDecoder(e.Bytes())
	if b := d.VarBytes(); b != nil || d.Err() == nil {
		t.Fatalf("VarBytes on lying prefix: b=%v err=%v", b, d.Err())
	}
	d2 := NewDecoder(e.Bytes())
	if s := d2.U64Slice(); s != nil || d2.Err() == nil {
		t.Fatalf("U64Slice on lying prefix: s=%v err=%v", s, d2.Err())
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	Register(testMsgType, "dup", decodeTestMsg)
}

func TestTypeName(t *testing.T) {
	if got := TypeName(testMsgType); got != "test" {
		t.Fatalf("TypeName = %q", got)
	}
	if got := TypeName(0x7fff); got != "unknown(0x7fff)" {
		t.Fatalf("TypeName(unknown) = %q", got)
	}
}

func TestRegisteredTypesSorted(t *testing.T) {
	ts := RegisteredTypes()
	for i := 1; i < len(ts); i++ {
		if ts[i-1] >= ts[i] {
			t.Fatalf("types not strictly ascending: %v", ts)
		}
	}
	if !Registered(testMsgType) {
		t.Fatal("test type not reported as registered")
	}
}

func TestEncoderPatch(t *testing.T) {
	e := NewEncoder(8)
	e.U8(0xaa)
	at := e.Skip(4)
	e.U8(0xbb)
	e.PatchU32(at, 0xdeadbeef)
	d := NewDecoder(e.Bytes())
	if d.U8() != 0xaa || d.U32() != 0xdeadbeef || d.U8() != 0xbb {
		t.Fatalf("patched buffer wrong: % x", e.Bytes())
	}
}

func TestRawCopies(t *testing.T) {
	src := []byte{1, 2, 3, 4}
	d := NewDecoder(src)
	got := d.Raw(4)
	src[0] = 99
	if got[0] != 1 {
		t.Fatal("Raw must copy out of the decode buffer")
	}
}
