package wire

import (
	"bytes"
	"testing"
)

// TestEncCacheFrameMemoizes: the first Frame call encodes, later calls
// return the identical cached slice without re-encoding.
func TestEncCacheFrameMemoizes(t *testing.T) {
	m := sampleMsg()
	var c EncCache
	if c.Cached() {
		t.Fatal("zero-value cache claims to hold a frame")
	}
	f1 := c.Frame(m)
	if !c.Cached() {
		t.Fatal("Frame did not populate the cache")
	}
	if !bytes.Equal(f1, Marshal(m)) {
		t.Fatal("cached frame differs from Marshal")
	}
	f2 := c.Frame(m)
	if &f1[0] != &f2[0] {
		t.Fatal("second Frame call re-encoded instead of returning the cached slice")
	}
}

// TestEncCacheFrameSizeWithoutEncode: FrameSize on a cold cache memoizes
// WireSize without materializing a frame; after Frame it reports the
// encoded length.
func TestEncCacheFrameSizeWithoutEncode(t *testing.T) {
	m := sampleMsg()
	var c EncCache
	if got, want := c.FrameSize(m), m.WireSize(); got != want {
		t.Fatalf("cold FrameSize = %d, want WireSize %d", got, want)
	}
	if c.Cached() {
		t.Fatal("FrameSize must not force an encode")
	}
	f := c.Frame(m)
	if got := c.FrameSize(m); got != len(f) {
		t.Fatalf("warm FrameSize = %d, want len(frame) %d", got, len(f))
	}
}

// TestEncCacheInvalidate: Invalidate drops both frame and size, so a
// mutation of the message is reflected by the next Frame/FrameSize.
func TestEncCacheInvalidate(t *testing.T) {
	m := sampleMsg()
	var c EncCache
	_ = c.Frame(m)
	m.Blob = []byte("a much longer payload than before")
	if got := c.FrameSize(m); got == m.WireSize() {
		t.Fatal("stale cache unexpectedly matches mutated message; test setup broken")
	}
	c.Invalidate()
	if c.Cached() {
		t.Fatal("Invalidate left a cached frame")
	}
	if got, want := c.FrameSize(m), m.WireSize(); got != want {
		t.Fatalf("post-Invalidate FrameSize = %d, want %d", got, want)
	}
	if !bytes.Equal(c.Frame(m), Marshal(m)) {
		t.Fatal("post-Invalidate Frame does not match the mutated message")
	}
}

// TestEncCachePrime: a primed frame is served verbatim (the decoder's
// copy becomes the re-encode), and Invalidate + re-Prime replaces it.
func TestEncCachePrime(t *testing.T) {
	m := sampleMsg()
	raw := Marshal(m)
	var c EncCache
	c.Prime(raw)
	if !c.Cached() {
		t.Fatal("Prime did not populate the cache")
	}
	f := c.Frame(m)
	if &f[0] != &raw[0] {
		t.Fatal("Frame re-encoded instead of serving the primed frame")
	}
	if got := c.FrameSize(m); got != len(raw) {
		t.Fatalf("FrameSize = %d, want primed length %d", got, len(raw))
	}

	// Invalidate then re-Prime with a different encoding of the message.
	c.Invalidate()
	m.Name = "reprimed"
	raw2 := Marshal(m)
	c.Prime(raw2)
	f2 := c.Frame(m)
	if &f2[0] != &raw2[0] {
		t.Fatal("re-Prime after Invalidate did not install the new frame")
	}
	if got := c.FrameSize(m); got != len(raw2) {
		t.Fatalf("FrameSize after re-Prime = %d, want %d", got, len(raw2))
	}
}
