package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder appends fixed-width big-endian primitives to a byte buffer. It is
// deliberately minimal: every field has a fixed width so WireSize can be
// computed without encoding.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given capacity hint.
func NewEncoder(capacity int) *Encoder {
	if capacity < 0 {
		capacity = 0
	}
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset truncates the buffer for reuse, keeping its capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends a byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a big-endian uint16.
func (e *Encoder) U16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// F64 appends a float64 as its IEEE-754 bits.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Node appends a NodeID.
func (e *Encoder) Node(v NodeID) { e.U32(uint32(v)) }

// Raw appends bytes with no length prefix; the decoder must know the width.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Bytes32 appends a fixed 32-byte value.
func (e *Encoder) Bytes32(b [32]byte) { e.buf = append(e.buf, b[:]...) }

// VarBytes appends a uint32 length prefix followed by the bytes.
func (e *Encoder) VarBytes(b []byte) {
	e.U32(uint32(len(b)))
	e.Raw(b)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// U64Slice appends a uint32 count followed by the values.
func (e *Encoder) U64Slice(vs []uint64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// NodeSlice appends a uint32 count followed by the node IDs.
func (e *Encoder) NodeSlice(vs []NodeID) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.Node(v)
	}
}

// Skip reserves n zero bytes and returns their offset for later patching.
func (e *Encoder) Skip(n int) int {
	at := len(e.buf)
	e.buf = append(e.buf, make([]byte, n)...) //predis:allocok compiler-recognized extend pattern: no intermediate slice is materialized
	return at
}

// PatchU32 overwrites 4 bytes at a previously Skip-reserved offset.
func (e *Encoder) PatchU32(at int, v uint32) {
	binary.BigEndian.PutUint32(e.buf[at:at+4], v)
}

// Decoder reads fixed-width big-endian primitives from a byte buffer. It
// accumulates the first error; after an error every read returns zero
// values, so callers can decode a whole struct and check Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a buffer for decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(want int) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrTruncated, want, d.off, len(d.buf)-d.off)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail(n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean. Encoders only ever emit 0 or 1, so any
// other value marks a corrupt (non-canonical) frame and fails the decode;
// accepting it would let two byte-different frames decode to the same
// message.
func (d *Decoder) Bool() bool {
	b := d.U8()
	if b > 1 && d.err == nil {
		d.err = fmt.Errorf("wire: invalid bool byte %#02x at offset %d", b, d.off-1)
	}
	return b == 1
}

// U16 reads a big-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// F64 reads a float64 from its IEEE-754 bits.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Node reads a NodeID.
func (d *Decoder) Node() NodeID { return NodeID(d.U32()) }

// Bytes32 reads a fixed 32-byte value.
func (d *Decoder) Bytes32() [32]byte {
	var out [32]byte
	b := d.take(32)
	if b != nil {
		copy(out[:], b)
	}
	return out
}

// Raw reads n bytes without a length prefix. The returned slice is copied so
// the caller may retain it.
func (d *Decoder) Raw(n int) []byte {
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Pad consumes n bytes of zero padding without copying. A nonzero byte
// marks a non-canonical frame and fails the decode: padding carries no
// information, so accepting arbitrary bytes there would let two
// byte-different frames decode to the same message.
func (d *Decoder) Pad(n int) {
	if n <= 0 {
		return
	}
	b := d.take(n)
	for i, c := range b {
		if c != 0 {
			if d.err == nil {
				d.err = fmt.Errorf("wire: nonzero padding byte %#02x at offset %d",
					c, d.off-n+i)
			}
			return
		}
	}
}

// VarBytes reads a uint32 length prefix followed by that many bytes.
func (d *Decoder) VarBytes() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	if n > d.Remaining() {
		d.fail(n)
		return nil
	}
	return d.Raw(n)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.VarBytes()) }

// U64Slice reads a uint32 count followed by the values.
func (d *Decoder) U64Slice() []uint64 {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining()/8 {
		if d.err == nil {
			d.fail(n * 8)
		}
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	return out
}

// NodeSlice reads a uint32 count followed by the node IDs.
func (d *Decoder) NodeSlice() []NodeID {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining()/4 {
		if d.err == nil {
			d.fail(n * 4)
		}
		return nil
	}
	out := make([]NodeID, n)
	for i := range out {
		out[i] = d.Node()
	}
	return out
}

// Size helpers so WireSize implementations stay in lockstep with the codec.

// SizeVarBytes returns the encoded size of a length-prefixed byte slice.
func SizeVarBytes(b []byte) int { return 4 + len(b) }

// SizeString returns the encoded size of a length-prefixed string.
func SizeString(s string) int { return 4 + len(s) }

// SizeU64Slice returns the encoded size of a uint64 slice.
func SizeU64Slice(vs []uint64) int { return 4 + 8*len(vs) }

// SizeNodeSlice returns the encoded size of a NodeID slice.
func SizeNodeSlice(vs []NodeID) int { return 4 + 4*len(vs) }
