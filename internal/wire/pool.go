package wire

import (
	"fmt"
	"sync"
)

// MarshalAppend encodes m as a self-delimiting frame appended to dst and
// returns the extended slice. It is the allocation-aware sibling of
// Marshal: callers that own a reusable buffer (the TCP runtime's write
// path, the simulator's copy-on-deliver roundtrip, digest computation)
// avoid a fresh exact-size allocation per message.
//
//predis:hotpath
func MarshalAppend(dst []byte, m Message) []byte {
	e := Encoder{buf: dst}
	e.U16(uint16(m.Type()))
	lenAt := e.Skip(4)
	m.EncodeBody(&e)
	body := len(e.buf) - lenAt - 4
	e.PatchU32(lenAt, uint32(body))
	return e.buf
}

// encPool recycles scratch encoders for transient frames (marshal →
// consume → discard). Buffers above pooledBufCap are dropped instead of
// pooled so one 40 MB block doesn't pin 40 MB per P forever.
var encPool = sync.Pool{
	New: func() any { return &Encoder{buf: make([]byte, 0, 4096)} },
}

// pooledBufCap bounds the capacity of buffers returned to encPool.
const pooledBufCap = 1 << 20

// getEncoder returns a pooled scratch encoder with an empty buffer.
func getEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	return e
}

// putEncoder returns a scratch encoder to the pool.
func putEncoder(e *Encoder) {
	if cap(e.buf) > pooledBufCap {
		return
	}
	encPool.Put(e)
}

// WithFrame marshals m into a pooled scratch buffer, invokes fn with the
// encoded frame, and recycles the buffer. The frame is only valid for
// the duration of fn and must not be retained (hash it, copy it, write
// it out — then let go).
//
//predis:hotpath
func WithFrame(m Message, fn func(frame []byte)) {
	e := getEncoder()
	e.buf = MarshalAppend(e.buf, m)
	fn(e.buf)
	putEncoder(e)
}

// EncCache memoizes a message's marshaled frame so that encoding happens
// once regardless of how many recipients, phases, or size queries touch
// the message. Embed one next to a payload field and route EncodeBody /
// WireSize through Frame / FrameSize; any mutation of the cached message
// must call Invalidate.
//
// The zero value is ready to use. EncCache is intentionally excluded
// from the owner's own wire encoding — it is process-local memoization,
// not protocol state.
type EncCache struct {
	frame []byte
	size  int
}

// Frame returns the cached frame for m, encoding it on first use.
func (c *EncCache) Frame(m Message) []byte {
	if c.frame == nil {
		c.frame = Marshal(m)
		c.size = len(c.frame)
	}
	return c.frame
}

// FrameSize returns the size of the encoded frame without forcing an
// encode: the cached length when present, a memoized m.WireSize()
// otherwise (the two are equal — WireSize is exact, a property pinned by
// every package's round-trip tests). Memoizing the size matters on its
// own: the simulator calls WireSize on every Send, and payloads whose
// WireSize walks their transactions would otherwise pay O(txs) per
// phase per recipient.
func (c *EncCache) FrameSize(m Message) int {
	if c.frame != nil {
		return len(c.frame)
	}
	if c.size == 0 {
		c.size = m.WireSize()
	}
	return c.size
}

// Prime installs an already-encoded frame (e.g. the VarBytes a decoder
// just copied out of a received message) so the first re-encode is free
// too. The cache takes ownership of frame.
func (c *EncCache) Prime(frame []byte) {
	c.frame = frame
	c.size = len(frame)
}

// Invalidate drops the cached frame and size; the next Frame call
// re-encodes.
func (c *EncCache) Invalidate() {
	c.frame = nil
	c.size = 0
}

// Cached reports whether a frame is currently memoized (test hook).
func (c *EncCache) Cached() bool { return c.frame != nil }

// RoundtripAppend is Roundtrip with a caller-owned scratch buffer; it
// returns the (possibly grown) buffer for reuse. Decoding copies every
// retained byte, so the scratch can be reused immediately.
func RoundtripAppend(scratch []byte, m Message) (Message, []byte, error) {
	raw := MarshalAppend(scratch[:0], m)
	out, n, err := Unmarshal(raw)
	if err != nil {
		return nil, raw, err
	}
	if n != len(raw) {
		return nil, raw, fmt.Errorf("wire: roundtrip consumed %d of %d bytes", n, len(raw))
	}
	return out, raw, nil
}
