package core

import (
	"errors"
	"sort"

	"predis/internal/consensus"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/wire"
)

// This file implements the crash-recovery catch-up protocol (ISSUE 1
// tentpole 2). A restarted consensus node rejoins with its persistent
// state (mempool, ledger head) but has missed every block committed while
// it was down, and PBFT never resends old commits. The node therefore
// asks f+1 peers for committed blocks above its head, adopts a block at
// height h only once f+1 distinct peers returned the *same* block there
// (at least one of them is honest, and two different blocks can never
// both gather f+1 vouchers), replays each adopted block through the
// normal mempool validation path — issuing ordinary bundle fetches for
// any bodies it misses — and finally fast-forwards its consensus engine
// so it can take part in the live heights again.

var _ env.Restartable = (*Predis)(nil)

// catchupVote accumulates peer vouchers for one block hash at one height.
type catchupVote struct {
	block *PredisBlock
	peers map[wire.NodeID]bool
}

// catchupState is the in-flight recovery of one Predis instance.
type catchupState struct {
	attempt int
	timer   env.Timer
	// votes[height][hash] — vouchers survive retry rounds, so honest
	// replies accumulate across target rotations.
	votes map[uint64]map[crypto.Hash]*catchupVote
	// heads records each peer's most recent head claim; catch-up is done
	// once f+1 peers claim a head at or below ours.
	heads map[wire.NodeID]uint64
}

// CatchingUp reports whether a catch-up is in flight.
func (p *Predis) CatchingUp() bool { return p.catchup != nil }

// OnRestart implements env.Restartable: re-arm the production timer chain
// (crash suppression killed it), discard fetch state whose retry timers
// died with the crash, and start catch-up toward the live chain head.
func (p *Predis) OnRestart() {
	if p.ctx == nil {
		return
	}
	if p.produceTimer != nil {
		p.produceTimer.Stop()
	}
	p.armProduceTimer()
	for producer := range p.fetches {
		p.clearFetch(producer)
	}
	p.lastAdvertised = nil
	p.StartCatchup()
}

// StartCatchup begins (or restarts) the committed-block catch-up
// protocol. It is idempotent while a catch-up is running.
func (p *Predis) StartCatchup() {
	if p.catchup != nil {
		return
	}
	p.catchup = &catchupState{
		votes: make(map[uint64]map[crypto.Hash]*catchupVote),
		heads: make(map[wire.NodeID]uint64),
	}
	p.sendCatchupRound()
}

// catchupTargets picks f+1 peers for one request round, rotating with the
// attempt counter so an unresponsive peer cannot stall recovery.
func (p *Predis) catchupTargets(attempt int) []wire.NodeID {
	others := make([]wire.NodeID, 0, len(p.opts.Peers))
	for _, peer := range p.opts.Peers {
		if peer != p.opts.Self {
			others = append(others, peer)
		}
	}
	sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })
	k := p.mp.params.F + 1
	if k > len(others) {
		k = len(others)
	}
	out := make([]wire.NodeID, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, others[(attempt*k+i)%len(others)])
	}
	return out
}

func (p *Predis) sendCatchupRound() {
	cu := p.catchup
	if cu == nil {
		return
	}
	req := &CatchupRequest{Height: p.lastHeight}
	for _, peer := range p.catchupTargets(cu.attempt) {
		p.ctx.Send(peer, req)
	}
	cu.attempt++
	delay := p.retry.Delay(cu.attempt-1, p.ctx.Rand())
	cu.timer = p.ctx.After(delay, p.sendCatchupRound)
}

// onCatchupRequest serves committed blocks from the recent-block ring.
func (p *Predis) onCatchupRequest(from wire.NodeID, req *CatchupRequest) {
	resp := &CatchupResponse{Head: p.lastHeight}
	for h := req.Height + 1; h <= p.lastHeight; h++ {
		blk := p.recentBlock(h)
		if blk == nil {
			// The requested height left our retention window; without the
			// contiguous prefix the requester cannot validate anything we
			// send, so answer with the head only.
			resp.Blocks = nil
			break
		}
		resp.Blocks = append(resp.Blocks, blk)
		if len(resp.Blocks) >= p.opts.MaxCatchupBlocks {
			break
		}
	}
	p.ctx.Send(from, resp)
}

func (p *Predis) onCatchupResponse(from wire.NodeID, resp *CatchupResponse) {
	cu := p.catchup
	if cu == nil {
		return
	}
	cu.heads[from] = resp.Head
	for _, blk := range resp.Blocks {
		if blk == nil || blk.Height <= p.lastHeight {
			continue
		}
		byHash, ok := cu.votes[blk.Height]
		if !ok {
			byHash = make(map[crypto.Hash]*catchupVote)
			cu.votes[blk.Height] = byHash
		}
		h := blk.Hash()
		v, ok := byHash[h]
		if !ok {
			v = &catchupVote{block: blk, peers: make(map[wire.NodeID]bool)}
			byHash[h] = v
		}
		v.peers[from] = true
	}
	p.advanceCatchup()
}

// advanceCatchup applies every contiguous block that has gathered f+1
// vouchers and validates cleanly, then checks for completion. It is also
// re-entered whenever a missing bundle arrives, so a block whose bodies
// were pruned-and-refetched resumes automatically.
func (p *Predis) advanceCatchup() {
	cu := p.catchup
	if cu == nil {
		return
	}
	for {
		blk := p.quorumBlockAt(p.lastHeight + 1)
		if blk == nil {
			break
		}
		missing, err := p.mp.ValidatePredisBlock(blk, p.lastBlockHash, p.mp.Confirmed())
		if errors.Is(err, ErrBlockMissing) {
			for i := range missing {
				p.requestMissing(&missing[i])
			}
			return // resume from onBundle once the bodies arrive
		}
		if err != nil {
			// An invalid block can never have f+1 honest vouchers; this is
			// a poisoned vote set (or our state diverged). Drop the height's
			// votes and let the retry round refill them.
			p.ctx.Logf("predis: catchup block %d invalid: %v", blk.Height, err)
			delete(cu.votes, blk.Height)
			return
		}
		delete(cu.votes, blk.Height)
		p.commitBlock(blk.Height, blk)
		if ff, ok := p.engine.(consensus.FastForwarder); ok {
			ff.FastForward(blk.Height, blk)
		}
	}
	// Completion: f+1 peers report a head at or below ours, so at least
	// one honest peer agrees we reached the live chain head.
	agree := 0
	for _, head := range cu.heads {
		if head <= p.lastHeight {
			agree++
		}
	}
	if agree >= p.mp.params.F+1 {
		p.finishCatchup()
	}
}

// quorumBlockAt returns the unique block at height with ≥ f+1 vouchers,
// or nil. Two distinct blocks cannot both reach f+1: that would need an
// honest voucher for each, and honest nodes never report different
// committed blocks at one height.
func (p *Predis) quorumBlockAt(height uint64) *PredisBlock {
	cu := p.catchup
	byHash, ok := cu.votes[height]
	if !ok {
		return nil
	}
	for _, v := range byHash {
		if len(v.peers) >= p.mp.params.F+1 {
			return v.block
		}
	}
	return nil
}

func (p *Predis) finishCatchup() {
	cu := p.catchup
	if cu == nil {
		return
	}
	if cu.timer != nil {
		cu.timer.Stop()
	}
	p.catchup = nil
	p.ctx.Logf("predis: catchup complete at height %d after %d rounds", p.lastHeight, cu.attempt)
	p.poke()
}

// --- recent-block ring ---

// pushRecent records a committed block in the retention ring serving
// CatchupRequests.
func (p *Predis) pushRecent(blk *PredisBlock) {
	if p.opts.CatchupWindow <= 0 {
		return
	}
	if p.recent == nil {
		p.recent = make([]*PredisBlock, p.opts.CatchupWindow)
	}
	p.recent[int(blk.Height)%p.opts.CatchupWindow] = blk
}

// recentBlock returns the retained committed block at the given height,
// or nil when it has been evicted (or was never committed here).
func (p *Predis) recentBlock(height uint64) *PredisBlock {
	if p.opts.CatchupWindow <= 0 || len(p.recent) == 0 || height == 0 {
		return nil
	}
	blk := p.recent[int(height)%p.opts.CatchupWindow]
	if blk == nil || blk.Height != height {
		return nil
	}
	return blk
}
