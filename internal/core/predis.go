package core

import (
	"errors"
	"fmt"
	"time"

	"predis/internal/compute"
	"predis/internal/consensus"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/obs"
	"predis/internal/types"
	"predis/internal/wire"
)

// FaultMode selects a Byzantine behaviour for fault-injection experiments
// (Fig. 6).
type FaultMode int

// Fault modes.
const (
	// FaultNone is honest behaviour.
	FaultNone FaultMode = iota
	// FaultSilent reproduces Fig. 6 case 1: the node neither produces
	// bundles nor votes.
	FaultSilent
	// FaultPartial reproduces Fig. 6 case 2: the node refuses to vote and
	// sends each bundle to a random subset of n_c−f−1 peers, so the
	// remaining nodes must fetch the missing bundles.
	FaultPartial
)

// Options configures a Predis instance (the active component wrapping a
// Mempool).
type Options struct {
	// Params are the data-structure parameters.
	Params Params
	// Self is this consensus node's ID (= chain index).
	Self wire.NodeID
	// Peers lists all consensus node IDs, including Self.
	Peers []wire.NodeID
	// OnCommit, when non-nil, receives every committed block in order.
	OnCommit func(CommitInfo)
	// Disseminate overrides how freshly produced bundles leave the node.
	// Nil means multicast the BundleMsg to all consensus peers (the plain
	// Predis deployment); Multi-Zone installs stripe encoding here.
	Disseminate func(ctx env.Context, b *Bundle)
	// StripeRoot, when non-nil, computes the stripe Merkle root of a
	// bundle body so it can be committed in the header before signing
	// (required when Disseminate erasure-codes bundles).
	StripeRoot func(txs []*types.Transaction) crypto.Hash
	// OnBundleStored, when non-nil, fires for every bundle that links
	// into the mempool (own and peer bundles alike); Multi-Zone ships
	// stripes to full nodes from here.
	OnBundleStored func(b *Bundle)
	// Fault selects a Byzantine behaviour.
	Fault FaultMode
	// MaxFetchBundles bounds bundles per BundleResponse (default 64).
	MaxFetchBundles int
	// CatchupWindow is how many committed Predis blocks are retained to
	// serve crash-recovery CatchupRequests (default 1024; ≤ 0 keeps the
	// default). A restarted node that fell more than CatchupWindow blocks
	// behind its peers cannot catch up from them.
	CatchupWindow int
	// MaxCatchupBlocks bounds blocks per CatchupResponse (default 256).
	MaxCatchupBlocks int
	// Retry is the backoff policy for missing-bundle fetches and catch-up
	// rounds. The zero value selects env.DefaultBackoff(2×BundleInterval).
	Retry env.Backoff
	// Stream enables streaming commit mode (StreamChain-style): every
	// submitted transaction seals into a bundle immediately instead of
	// waiting for the BundleInterval tick, and proposals cut chains
	// eagerly at this node's own tips instead of waiting for n_c−f
	// receipt confirmations through the tip matrix — replicas that have
	// not yet received a referenced bundle fall back to the ErrPending
	// fetch-and-retry path. Off (the default) reproduces block mode
	// byte-for-byte.
	Stream bool
	// StreamDrain, in stream mode, lets BuildProposal emit a cursor block
	// with no cut advance while previously proposed cuts are still
	// uncommitted. Chained engines (HotStuff) need such drain blocks to
	// push the commit 3-chain over the tail of traffic at network speed;
	// per-instance engines (PBFT) commit each slot independently and
	// leave this off.
	StreamDrain bool
	// OnProposal, in stream mode, fires for every cursor block this node
	// builds or successfully validates — before any quorum forms — so
	// Multi-Zone distributors can begin speculative distribution. May
	// fire more than once per block (build + validate, re-proposals);
	// consumers dedupe by block hash. Never fires in block mode.
	OnProposal func(blk *PredisBlock)
	// OnEvict, in stream mode, fires when the consensus engine abandons
	// a proposed cursor block without committing it (view change, fork
	// prune) so speculative distribution can be retracted. Never fires in
	// block mode.
	OnEvict func(blk *PredisBlock)
	// Trace, when non-nil, records the bundle_sealed lifecycle stage
	// (first queued transaction → bundle packed and signed). Nil disables
	// tracing at zero cost.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives per-node counters (bundle_produced,
	// bundle_accepted, txs_committed) and the bundle_seal_ms histogram.
	// Metric pointers are resolved once at construction; nil disables.
	Metrics *obs.Registry
}

// CommitInfo describes one committed Predis block.
type CommitInfo struct {
	Height  uint64
	Block   *PredisBlock
	Bundles []*Bundle
	Txs     []*types.Transaction
}

// Predis is the per-node data production component (§III). It owns the
// mempool, packs and disseminates bundles, serves and issues bundle
// fetches, maintains the ban list, and implements consensus.Application so
// a BFT engine can order Predis blocks.
//
// It must be driven from a single serialized executor (env contract).
type Predis struct {
	opts Options
	ctx  env.Context
	mp   *Mempool

	queue []*types.Transaction
	// queueTimes parallels queue with each transaction's enqueue time, so
	// the bundle_sealed span can start at the first queued transaction.
	queueTimes     []time.Time
	produceTimer   env.Timer
	lastAdvertised TipList

	lastHeight    uint64
	lastBlockHash crypto.Hash

	// fetches tracks one outstanding fetch per producer chain.
	fetches map[wire.NodeID]*fetchState
	// retry is the shared backoff policy for fetches and catch-up rounds.
	retry env.Backoff

	// catchup is the in-flight crash-recovery state (nil when live).
	catchup *catchupState
	// recent is the committed-block retention ring serving catch-up.
	recent []*PredisBlock

	engine consensus.Engine

	// stats
	bundlesProduced uint64
	bundlesAccepted uint64
	txsCommitted    uint64

	// obs metrics (nil-safe recorders; resolved once at construction)
	mBundleProduced *obs.Counter
	mBundleAccepted *obs.Counter
	mTxsCommitted   *obs.Counter
	mSealLatency    *obs.Histogram
}

type fetchState struct {
	to      uint64 // highest height requested
	attempt int
	timer   env.Timer
}

var _ consensus.Application = (*Predis)(nil)

// NewPredis builds the component; call Start before use and SetEngine once
// the consensus engine exists.
func NewPredis(opts Options) (*Predis, error) {
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Peers) != opts.Params.NC {
		return nil, fmt.Errorf("core: %d peers for NC=%d", len(opts.Peers), opts.Params.NC)
	}
	if opts.MaxFetchBundles <= 0 {
		opts.MaxFetchBundles = 64
	}
	if opts.CatchupWindow <= 0 {
		opts.CatchupWindow = 1024
	}
	if opts.MaxCatchupBlocks <= 0 {
		opts.MaxCatchupBlocks = 256
	}
	if opts.Retry.Base <= 0 {
		opts.Retry = env.DefaultBackoff(2 * opts.Params.BundleInterval)
	}
	mp, err := NewMempool(opts.Params)
	if err != nil {
		return nil, err
	}
	if opts.OnBundleStored != nil {
		mp.SetOnLink(opts.OnBundleStored)
	}
	return &Predis{
		opts:            opts,
		mp:              mp,
		fetches:         make(map[wire.NodeID]*fetchState),
		retry:           opts.Retry,
		mBundleProduced: opts.Metrics.Counter("bundle_produced", opts.Self),
		mBundleAccepted: opts.Metrics.Counter("bundle_accepted", opts.Self),
		mTxsCommitted:   opts.Metrics.Counter("txs_committed", opts.Self),
		mSealLatency:    opts.Metrics.Histogram("bundle_seal_ms", opts.Self, obs.DefaultLatencyBucketsMS),
	}, nil
}

// Mempool exposes the underlying mempool (read-mostly; external mutation
// is limited to Ban/Unban).
func (p *Predis) Mempool() *Mempool { return p.mp }

// SetEngine wires the consensus engine for Poke notifications.
func (p *Predis) SetEngine(e consensus.Engine) { p.engine = e }

// Stats returns (bundles produced, bundles accepted from peers, txs
// committed).
func (p *Predis) Stats() (produced, accepted, committed uint64) {
	return p.bundlesProduced, p.bundlesAccepted, p.txsCommitted
}

// QueueLen returns the number of transactions awaiting bundling.
func (p *Predis) QueueLen() int { return len(p.queue) }

// LastHeight returns the last applied consensus height (via engine commit
// or catch-up replay).
func (p *Predis) LastHeight() uint64 { return p.lastHeight }

// Start arms the bundle production timer.
func (p *Predis) Start(ctx env.Context) {
	p.ctx = ctx
	p.armProduceTimer()
}

func (p *Predis) armProduceTimer() {
	if p.opts.Fault == FaultSilent {
		return
	}
	p.produceTimer = p.ctx.After(p.mp.params.BundleInterval, func() {
		p.produceBundle()
		p.armProduceTimer()
	})
}

// SubmitTx enqueues a client transaction for bundling; full bundles are
// emitted immediately (without waiting for the interval timer). In stream
// mode every submission seals immediately: the bundle-chain cursor
// advances at transaction granularity and the interval timer only paces
// heartbeats.
func (p *Predis) SubmitTx(tx *types.Transaction) {
	if p.opts.Fault == FaultSilent {
		return
	}
	p.queue = append(p.queue, tx)
	p.queueTimes = append(p.queueTimes, p.ctx.Now())
	if p.opts.Stream {
		for len(p.queue) > 0 {
			p.produceBundle()
		}
		return
	}
	for len(p.queue) >= p.mp.params.BundleSize {
		p.produceBundle()
	}
}

// HasPendingWork implements consensus.WorkReporter: there is work when
// transactions await bundling or unconfirmed non-empty bundles exist.
func (p *Predis) HasPendingWork() bool {
	return len(p.queue) > 0 || p.mp.HasUnconfirmedPayload()
}

// produceBundle packs the next bundle from the queue and disseminates it.
// With an empty queue it may emit an empty *heartbeat* bundle: tip lists
// ride on bundles, so confirming the tail of traffic requires one more
// round of tip exchange (§III-F: only bundles produced 2·ls earlier can be
// cut). Heartbeats are emitted only while unconfirmed payload exists and
// our advertised tips are stale, so an idle network quiesces.
func (p *Predis) produceBundle() {
	if p.opts.Fault == FaultSilent {
		return
	}
	if len(p.queue) == 0 {
		if !p.mp.HasUnconfirmedPayload() {
			return
		}
		tips := p.mp.Tips()
		if tipsEqual(tips, p.lastAdvertised) {
			return
		}
	}
	n := p.mp.params.BundleSize
	if n > len(p.queue) {
		n = len(p.queue)
	}
	txs := p.queue[:n:n]
	p.queue = p.queue[n:]
	var firstQueued time.Time
	if n > 0 {
		firstQueued = p.queueTimes[0]
		p.queueTimes = p.queueTimes[n:]
	}

	tips := p.mp.Tips()
	parent := p.mp.TipHeader(p.opts.Self)
	tips[p.opts.Self]++ // the producer holds the bundle it is creating
	stripeRoot := crypto.ZeroHash
	if p.opts.StripeRoot != nil {
		stripeRoot = p.opts.StripeRoot(txs)
	}
	b := PackBundleStripedPooled(compute.PoolOf(p.ctx),
		p.mp.params.Signer, p.opts.Self, parent, txs, tips, stripeRoot)
	// Self-insertion skips signature/body verification.
	if _, _, _, err := p.mp.AddBundle(b, false); err != nil {
		p.ctx.Logf("predis: self bundle rejected: %v", err)
		return
	}
	p.bundlesProduced++
	p.mBundleProduced.Inc()
	if n > 0 {
		// bundle_sealed: first queued transaction → bundle packed and
		// signed. Heartbeat bundles carry no payload and record nothing.
		now := p.ctx.Now()
		p.opts.Trace.Span(obs.StageBundleSealed,
			obs.BundleKey(p.opts.Self, b.Header.Height), p.opts.Self, firstQueued, now)
		p.mSealLatency.ObserveDuration(now.Sub(firstQueued))
	}
	p.lastAdvertised = b.Header.Tips.Clone()
	p.disseminate(b)
	p.poke()
}

func tipsEqual(a, b TipList) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (p *Predis) disseminate(b *Bundle) {
	if p.opts.Disseminate != nil {
		p.opts.Disseminate(p.ctx, b)
		return
	}
	msg := &BundleMsg{Bundle: b}
	if p.opts.Fault == FaultPartial {
		// Send to a random subset of n_c−f−1 peers (Fig. 6 case 2).
		k := p.mp.params.NC - p.mp.params.F - 1
		perm := p.ctx.Rand().Perm(len(p.opts.Peers))
		sent := 0
		for _, idx := range perm {
			peer := p.opts.Peers[idx]
			if peer == p.opts.Self || sent >= k {
				continue
			}
			p.ctx.Send(peer, msg)
			sent++
		}
		return
	}
	env.Multicast(p.ctx, p.opts.Peers, msg)
}

// Receive handles Predis data-plane messages. The node layer routes
// messages of core types here.
func (p *Predis) Receive(from wire.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *BundleMsg:
		p.onBundle(from, msg.Bundle)
	case *BundleRequest:
		p.onBundleRequest(from, msg)
	case *BundleResponse:
		for _, b := range msg.Bundles {
			p.onBundle(from, b)
		}
	case *ConflictEvidence:
		p.onEvidence(from, msg)
	case *CatchupRequest:
		p.onCatchupRequest(from, msg)
	case *CatchupResponse:
		p.onCatchupResponse(from, msg)
	default:
		p.ctx.Logf("predis: unexpected message %s from %d", wire.TypeName(m.Type()), from)
	}
}

func (p *Predis) onBundle(from wire.NodeID, b *Bundle) {
	res, ev, miss, err := p.mp.AddBundle(b, true)
	switch {
	case err != nil:
		if !errors.Is(err, ErrBannedProducer) {
			p.ctx.Logf("predis: bundle from %d rejected: %v", from, err)
		}
		return
	case res == Conflicting:
		// Spread the evidence so every honest node bans the producer.
		env.Multicast(p.ctx, p.opts.Peers, ev)
		return
	case res == Buffered:
		p.requestMissing(miss)
		return
	case res == Added:
		p.bundlesAccepted++
		p.mBundleAccepted.Inc()
		p.clearSatisfiedFetch(b.Header.Producer)
		if p.catchup != nil {
			// A catch-up block may have been waiting on this body.
			p.advanceCatchup()
		}
		p.poke()
	}
}

func (p *Predis) onBundleRequest(from wire.NodeID, req *BundleRequest) {
	if int(req.Producer) >= p.mp.params.NC || req.From == 0 || req.To < req.From {
		return
	}
	to := req.To
	if to-req.From+1 > uint64(p.opts.MaxFetchBundles) {
		to = req.From + uint64(p.opts.MaxFetchBundles) - 1
	}
	bundles := p.mp.Range(req.Producer, req.From-1, to)
	if len(bundles) == 0 {
		return
	}
	p.ctx.Send(from, &BundleResponse{Bundles: bundles})
}

func (p *Predis) onEvidence(from wire.NodeID, ev *ConflictEvidence) {
	producer := ev.A.Producer
	if p.mp.Banned(producer) {
		return // already known; do not re-flood
	}
	if !ev.Verify(p.mp.params.Signer) {
		p.ctx.Logf("predis: bogus conflict evidence from %d", from)
		return
	}
	p.mp.Ban(producer, ev)
	env.Multicast(p.ctx, p.opts.Peers, ev)
}

// requestMissing issues (or extends) the fetch for a chain's gap. The
// first attempt asks the producer itself; retries rotate over other peers
// (§III-D: missing bundles are obtainable from n_c−2f honest nodes).
func (p *Predis) requestMissing(miss *MissingRange) {
	if miss == nil {
		return
	}
	st := p.fetches[miss.Producer]
	if st != nil && st.to >= miss.To {
		return // an outstanding fetch already covers the gap
	}
	if st == nil {
		st = &fetchState{}
		p.fetches[miss.Producer] = st
	} else if st.timer != nil {
		st.timer.Stop()
	}
	st.to = miss.To
	p.sendFetch(miss.Producer, st)
}

func (p *Predis) sendFetch(producer wire.NodeID, st *fetchState) {
	from := p.mp.chains[producer].tip() + 1
	if from > st.to {
		p.clearFetch(producer)
		return
	}
	req := &BundleRequest{Producer: producer, From: from, To: st.to}
	// First attempt asks the producer plus one proven holder in parallel:
	// the cutting rule guarantees n_c−2f honest holders (§III-D), so a
	// second target hides a slow or uncooperative producer. Retries rotate
	// over the holders — peers whose advertised tip lists prove they hold
	// the gap — with capped exponential backoff, so a single unresponsive
	// peer can never stall the fetch.
	candidates := p.fetchHolders(producer, from)
	if st.attempt == 0 {
		p.ctx.Send(producer, req)
		if len(candidates) > 0 {
			p.ctx.Send(candidates[p.ctx.Rand().Intn(len(candidates))], req)
		}
	} else if len(candidates) > 0 {
		p.ctx.Send(candidates[(st.attempt-1)%len(candidates)], req)
	} else {
		p.ctx.Send(producer, req)
	}
	st.attempt++
	retry := p.retry.Delay(st.attempt-1, p.ctx.Rand())
	st.timer = p.ctx.After(retry, func() { p.sendFetch(producer, st) })
}

// fetchHolders returns the peers whose advertised tips prove they hold
// the producer's chain at height need (candidates for a bundle fetch),
// falling back to every peer when the tip matrix has no proof yet —
// tips propagate on bundles and can lag the bundles themselves.
func (p *Predis) fetchHolders(producer wire.NodeID, need uint64) []wire.NodeID {
	matrix := p.mp.TipMatrix(p.opts.Self)
	holders := make([]wire.NodeID, 0, len(p.opts.Peers))
	for _, peer := range p.opts.Peers {
		if peer == p.opts.Self || peer == producer {
			continue
		}
		if int(peer) < len(matrix) && matrix[peer][producer] >= need {
			holders = append(holders, peer)
		}
	}
	if len(holders) > 0 {
		return holders
	}
	for _, peer := range p.opts.Peers {
		if peer != p.opts.Self && peer != producer {
			holders = append(holders, peer)
		}
	}
	return holders
}

func (p *Predis) clearSatisfiedFetch(producer wire.NodeID) {
	st := p.fetches[producer]
	if st == nil {
		return
	}
	if p.mp.chains[producer].tip() >= st.to {
		p.clearFetch(producer)
	}
}

func (p *Predis) clearFetch(producer wire.NodeID) {
	if st := p.fetches[producer]; st != nil {
		if st.timer != nil {
			st.timer.Stop()
		}
		delete(p.fetches, producer)
	}
}

func (p *Predis) poke() {
	if p.engine != nil {
		p.engine.Poke()
	}
}

// --- consensus.Application ---

// parentState resolves the baseline cut vector and parent hash from a
// parent payload (nil = genesis).
func (p *Predis) parentState(parent wire.Message) ([]uint64, crypto.Hash, error) {
	if parent == nil {
		return ZeroCuts(p.mp.params.NC), crypto.ZeroHash, nil
	}
	pb, ok := parent.(*PredisBlock)
	if !ok {
		return nil, crypto.ZeroHash, fmt.Errorf("%w: parent payload is %T", ErrBlockShape, parent)
	}
	return pb.CutHeights(), pb.Hash(), nil
}

// BuildProposal implements consensus.Application: cut the chains relative
// to the parent block and pack a Predis block. Block mode cuts by the
// §III-B receipt rule; stream mode cuts eagerly at this node's own tips
// (and, with StreamDrain, emits empty drain blocks while proposed cuts
// await commit), announcing the proposal for speculative distribution.
func (p *Predis) BuildProposal(height uint64, parent wire.Message) (wire.Message, crypto.Hash, bool) {
	if p.opts.Fault != FaultNone {
		return nil, crypto.ZeroHash, false
	}
	prev, parentHash, err := p.parentState(parent)
	if err != nil {
		p.ctx.Logf("predis: build: %v", err)
		return nil, crypto.ZeroHash, false
	}
	var blk *PredisBlock
	var ok bool
	if p.opts.Stream {
		drain := p.opts.StreamDrain && p.cutsAhead(prev)
		blk, ok = p.mp.BuildPredisBlockStream(height, parentHash, prev, p.opts.Self, drain)
	} else {
		blk, ok = p.mp.BuildPredisBlock(height, parentHash, prev, p.opts.Self)
	}
	if !ok {
		return nil, crypto.ZeroHash, false
	}
	if p.opts.Stream && p.opts.OnProposal != nil {
		p.opts.OnProposal(blk)
	}
	return blk, blk.Hash(), true
}

// cutsAhead reports whether the parent chain's cuts confirm bundles the
// committed state has not: the drain gate. While true, the tail of
// ordered-but-uncommitted traffic still needs follow-up blocks to push a
// chained engine's commit rule over it; once committed cuts catch up the
// network quiesces (drain blocks themselves never advance cuts, so they
// cannot re-arm the gate).
func (p *Predis) cutsAhead(prev []uint64) bool {
	committed := p.mp.Confirmed()
	for i := range prev {
		if prev[i] > committed[i] {
			return true
		}
	}
	return false
}

// ValidateProposal implements consensus.Application.
func (p *Predis) ValidateProposal(height uint64, payload, parent wire.Message) (crypto.Hash, error) {
	if p.opts.Fault != FaultNone {
		// Faulty replicas refuse to vote (Fig. 6).
		return crypto.ZeroHash, errors.New("core: faulty replica refuses to vote")
	}
	blk, ok := payload.(*PredisBlock)
	if !ok {
		return crypto.ZeroHash, fmt.Errorf("%w: payload is %T", ErrBlockShape, payload)
	}
	if blk.Height != height {
		return crypto.ZeroHash, fmt.Errorf("%w: block height %d, consensus height %d",
			ErrBlockShape, blk.Height, height)
	}
	prev, parentHash, err := p.parentState(parent)
	if err != nil {
		return crypto.ZeroHash, err
	}
	missing, err := p.mp.ValidatePredisBlock(blk, parentHash, prev)
	if errors.Is(err, ErrBlockMissing) {
		for i := range missing {
			p.requestMissing(&missing[i])
		}
		return crypto.ZeroHash, consensus.ErrPending
	}
	if err != nil {
		return crypto.ZeroHash, err
	}
	if p.opts.Stream && p.opts.OnProposal != nil {
		p.opts.OnProposal(blk)
	}
	return blk.Hash(), nil
}

// OnProposalEvicted implements consensus.ProposalEvicter: the engine
// abandoned an ordered-but-uncommitted cursor block (view change, fork
// prune), so retract its speculative distribution. Retraction is keyed by
// payload identity, not slot: a payload that committed at its height —
// possibly through another path (catch-up, competing fork) — must never
// be retracted, so the block hash is compared against what actually
// committed there. When the committed block at an old height is no longer
// retained the eviction is conservatively dropped; full-node spec-buffer
// TTL sweeps reclaim any leak.
func (p *Predis) OnProposalEvicted(height uint64, payload wire.Message) {
	if !p.opts.Stream || p.opts.OnEvict == nil {
		return
	}
	blk, ok := payload.(*PredisBlock)
	if !ok {
		return
	}
	switch {
	case height == p.lastHeight:
		if blk.Hash() == p.lastBlockHash {
			return // this exact payload committed
		}
	case height < p.lastHeight:
		committed := p.recentBlock(height)
		if committed == nil || committed.Hash() == blk.Hash() {
			return // committed, or unverifiable — do not retract
		}
	}
	p.opts.OnEvict(blk)
}

// OnCommit implements consensus.Application.
func (p *Predis) OnCommit(height uint64, payload wire.Message) {
	blk, ok := payload.(*PredisBlock)
	if !ok {
		p.ctx.Logf("predis: commit with payload %T", payload)
		return
	}
	if height <= p.lastHeight {
		// Already applied (catch-up can race a commit quorum that finished
		// while we were replaying); commits are idempotent by height.
		return
	}
	if height != p.lastHeight+1 {
		p.ctx.Logf("predis: commit height %d, expected %d", height, p.lastHeight+1)
	}
	p.commitBlock(height, blk)
	p.poke()
}

// commitBlock applies one committed block: the shared tail of the engine
// commit path and the catch-up replay path.
func (p *Predis) commitBlock(height uint64, blk *PredisBlock) {
	bundles := p.mp.BlockBundles(blk, p.mp.Confirmed())
	txs := BlockTxs(bundles)
	p.mp.ApplyCommit(blk)
	p.lastHeight = height
	p.lastBlockHash = blk.Hash()
	p.txsCommitted += uint64(len(txs))
	p.mTxsCommitted.Add(uint64(len(txs)))
	p.pushRecent(blk)
	if p.opts.OnCommit != nil {
		p.opts.OnCommit(CommitInfo{Height: height, Block: blk, Bundles: bundles, Txs: txs})
	}
}
