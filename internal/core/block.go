package core

import (
	"errors"
	"fmt"
	"sort"

	"predis/internal/crypto"
	"predis/internal/merkle"
	"predis/internal/types"
	"predis/internal/wire"
)

// Errors from Predis block validation.
var (
	ErrBlockShape     = errors.New("core: predis block malformed")
	ErrBlockSignature = errors.New("core: predis block signature invalid")
	ErrBlockParent    = errors.New("core: predis block parent mismatch")
	ErrBlockBanned    = errors.New("core: predis block includes bundles from a banned producer")
	ErrBlockRegressed = errors.New("core: predis block cut below parent cut")
	ErrBlockHead      = errors.New("core: predis block head hash does not match local chain")
	ErrBlockRoot      = errors.New("core: predis block tx root mismatch")
	// ErrBlockMissing means locally missing bundles prevent validation;
	// callers translate it to consensus.ErrPending after issuing fetches.
	ErrBlockMissing = errors.New("core: predis block references bundles not yet received")
)

// ZeroCuts returns the all-zero baseline cut vector for nc chains (the
// state before the first block).
func ZeroCuts(nc int) []uint64 { return make([]uint64, nc) }

// CutHeights extracts the height vector from a block's cuts.
func (m *PredisBlock) CutHeights() []uint64 {
	out := make([]uint64, len(m.Cuts))
	for i, c := range m.Cuts {
		out[i] = c.Height
	}
	return out
}

// CutChains runs the cutting rule (§III-B) relative to a baseline cut
// vector prev (the parent block's cuts): for every chain, the cut is the
// highest height that at least n_c−f nodes (including this node) have
// received according to the tip matrix, clamped to what this node itself
// holds (it must possess the head header) and never below prev. Banned
// producers' chains are never advanced.
func (m *Mempool) CutChains(self wire.NodeID, prev []uint64) []Cut {
	nc, f := m.params.NC, m.params.F
	matrix := m.TipMatrix(self)
	selfTips := m.Tips()
	cuts := make([]Cut, nc)
	heights := make([]uint64, nc)
	for i := 0; i < nc; i++ {
		cut := prev[i]
		if !m.banned[i] {
			for j := 0; j < nc; j++ {
				heights[j] = matrix[j][i]
			}
			sort.Slice(heights, func(a, b int) bool { return heights[a] > heights[b] })
			// The (n_c−f)-th largest receipt height: at least n_c−f nodes
			// claim to hold everything at or below it.
			candidate := heights[nc-f-1]
			if candidate > selfTips[i] {
				candidate = selfTips[i]
			}
			if candidate > cut {
				cut = candidate
			}
		}
		c := Cut{Height: cut}
		if cut > prev[i] {
			c.Head = m.chains[i].at(cut).Header.Hash()
		}
		cuts[i] = c
	}
	return cuts
}

// BuildPredisBlock packs a Predis block at the given consensus height
// extending a parent block identified by parentHash with baseline cuts
// prev. It returns ok=false when the cut confirms no new bundles (nothing
// to propose).
func (m *Mempool) BuildPredisBlock(height uint64, parentHash crypto.Hash, prev []uint64,
	leader wire.NodeID) (*PredisBlock, bool) {
	return m.packBlock(height, parentHash, prev, m.CutChains(leader, prev), leader, false)
}

// CutChainsEager runs the streaming-mode cutting rule: every non-banned
// chain is cut at this node's own tip (clamped to never regress below
// prev) instead of at the n_c−f quorum receipt height. The leader does not
// wait for heartbeat rounds to prove dissemination; replicas that lack a
// referenced bundle fetch it during validation (ErrBlockMissing →
// consensus.ErrPending), so safety is unchanged and only proposal-time
// liveness is spent when the leader runs ahead of the swarm.
func (m *Mempool) CutChainsEager(prev []uint64) []Cut {
	nc := m.params.NC
	selfTips := m.Tips()
	cuts := make([]Cut, nc)
	for i := 0; i < nc; i++ {
		cut := prev[i]
		if !m.banned[i] && selfTips[i] > cut {
			cut = selfTips[i]
		}
		c := Cut{Height: cut}
		if cut > prev[i] {
			c.Head = m.chains[i].at(cut).Header.Hash()
		}
		cuts[i] = c
	}
	return cuts
}

// BuildPredisBlockStream packs a streaming-mode Predis block using the
// eager cutting rule. When the eager cut confirms nothing new it returns
// ok=false — unless allowEmpty is set, in which case it emits a drain
// block whose cuts equal prev (zero bundles, TxRoot of an empty leaf set).
// Drain blocks exist so pipelined engines (chained HotStuff) can push
// already-proposed cuts over their multi-block commit rule without waiting
// for new payload; ValidatePredisBlock accepts them because freshness is a
// builder-side rule only.
func (m *Mempool) BuildPredisBlockStream(height uint64, parentHash crypto.Hash, prev []uint64,
	leader wire.NodeID, allowEmpty bool) (*PredisBlock, bool) {
	return m.packBlock(height, parentHash, prev, m.CutChainsEager(prev), leader, allowEmpty)
}

// packBlock assembles, roots and signs a block over the given cuts,
// enforcing the builder-side freshness rule unless allowEmpty.
func (m *Mempool) packBlock(height uint64, parentHash crypto.Hash, prev []uint64,
	cuts []Cut, leader wire.NodeID, allowEmpty bool) (*PredisBlock, bool) {
	fresh := false
	for i, c := range cuts {
		if c.Height > prev[i] {
			fresh = true
			break
		}
	}
	if !fresh && !allowEmpty {
		return nil, false
	}
	blk := &PredisBlock{
		Height: height,
		Parent: parentHash,
		Leader: leader,
		Cuts:   cuts,
		TxRoot: m.blockRoot(prev, cuts),
	}
	blk.Sig = m.params.Signer.Sign(blk.Hash())
	return blk, true
}

// blockRoot computes the Merkle root over the header hashes of every newly
// confirmed bundle, in (chain, height) order. Header hashes commit to each
// bundle's TxRoot, so the root binds the block's full transaction set
// (Theorem 3.3's "identical candidate blocks").
func (m *Mempool) blockRoot(prev []uint64, cuts []Cut) crypto.Hash {
	var leaves []crypto.Hash
	for i, c := range cuts {
		ch := m.chains[i]
		for h := prev[i] + 1; h <= c.Height; h++ {
			hh := ch.at(h).Header.Hash()
			leaves = append(leaves, merkle.HashLeaf(hh[:]))
		}
	}
	return merkle.RootOfHashes(leaves)
}

// ValidatePredisBlock runs the replica-side checks (§III-B) against the
// expected parent hash and baseline cuts. On ErrBlockMissing the returned
// ranges say which bundles to fetch.
func (m *Mempool) ValidatePredisBlock(blk *PredisBlock, wantParent crypto.Hash,
	prev []uint64) ([]MissingRange, error) {
	if len(blk.Cuts) != m.params.NC || len(prev) != m.params.NC {
		return nil, fmt.Errorf("%w: %d cuts for %d chains", ErrBlockShape, len(blk.Cuts), m.params.NC)
	}
	if int(blk.Leader) >= m.params.NC {
		return nil, fmt.Errorf("%w: leader %d out of range", ErrBlockShape, blk.Leader)
	}
	if !m.params.Signer.Verify(int(blk.Leader), blk.Hash(), blk.Sig) {
		return nil, ErrBlockSignature
	}
	if blk.Parent != wantParent {
		return nil, ErrBlockParent
	}
	var missing []MissingRange
	for i, c := range blk.Cuts {
		ch := m.chains[i]
		if c.Height < prev[i] {
			return nil, fmt.Errorf("%w: chain %d cut %d < parent cut %d",
				ErrBlockRegressed, i, c.Height, prev[i])
		}
		if c.Height == prev[i] {
			continue // no new bundles on this chain
		}
		if m.banned[i] {
			return nil, fmt.Errorf("%w: chain %d", ErrBlockBanned, i)
		}
		if c.Height > ch.tip() {
			missing = append(missing, MissingRange{
				Producer: wire.NodeID(i), From: ch.tip() + 1, To: c.Height,
			})
			continue
		}
		if ch.at(c.Height).Header.Hash() != c.Head {
			return nil, fmt.Errorf("%w: chain %d height %d", ErrBlockHead, i, c.Height)
		}
	}
	if len(missing) > 0 {
		return missing, ErrBlockMissing
	}
	if m.blockRoot(prev, blk.Cuts) != blk.TxRoot {
		return nil, ErrBlockRoot
	}
	return nil, nil
}

// BlockBundles returns every bundle a block newly confirms relative to the
// baseline cuts prev, in (chain, height) order, or nil if some are
// missing locally.
func (m *Mempool) BlockBundles(blk *PredisBlock, prev []uint64) []*Bundle {
	var out []*Bundle
	for i, c := range blk.Cuts {
		ch := m.chains[i]
		for h := prev[i] + 1; h <= c.Height; h++ {
			b := ch.at(h)
			if b == nil {
				return nil
			}
			out = append(out, b)
		}
	}
	return out
}

// BlockTxs flattens a block's bundles into its transaction list.
func BlockTxs(bundles []*Bundle) []*types.Transaction {
	n := 0
	for _, b := range bundles {
		n += len(b.Txs)
	}
	out := make([]*types.Transaction, 0, n)
	for _, b := range bundles {
		out = append(out, b.Txs...)
	}
	return out
}

// ApplyCommit advances confirmed heights to the block's cuts and prunes.
// Blocks must be applied in chain order.
func (m *Mempool) ApplyCommit(blk *PredisBlock) {
	for i, c := range blk.Cuts {
		ch := m.chains[i]
		if c.Height <= ch.confirmed {
			continue
		}
		for h := ch.confirmed + 1; h <= c.Height; h++ {
			if b := ch.at(h); b != nil && b.Header.TxCount > 0 {
				m.liveTxBundles--
			}
		}
		m.MarkConfirmed(wire.NodeID(i), c.Height)
	}
}
