package core

import (
	"sync"

	"predis/internal/compute"
	"predis/internal/crypto"
	"predis/internal/wire"
)

// Message type tags for the Predis data plane.
const (
	TypeBundle           = wire.TypeRangeCore + 1
	TypeBundleRequest    = wire.TypeRangeCore + 2
	TypeBundleResponse   = wire.TypeRangeCore + 3
	TypeConflictEvidence = wire.TypeRangeCore + 4
	TypePredisBlock      = wire.TypeRangeCore + 5
	TypeCatchupRequest   = wire.TypeRangeCore + 6
	TypeCatchupResponse  = wire.TypeRangeCore + 7
)

// BundleMsg carries one bundle between consensus nodes.
type BundleMsg struct {
	Bundle *Bundle
}

var _ wire.Message = (*BundleMsg)(nil)

// Type implements wire.Message.
func (m *BundleMsg) Type() wire.Type { return TypeBundle }

// WireSize implements wire.Message.
func (m *BundleMsg) WireSize() int { return wire.FrameOverhead + m.Bundle.EncodedSize() }

// EncodeBody implements wire.Message.
func (m *BundleMsg) EncodeBody(e *wire.Encoder) { m.Bundle.EncodeTo(e) }

// Precompute implements compute.Speculative: when the message is scheduled
// on the network, the bundle's body verification starts on the compute
// pool so VerifyBody at delivery forces a (usually finished) future.
func (m *BundleMsg) Precompute(p *compute.Pool) { m.Bundle.Precompute(p) }

var _ compute.Speculative = (*BundleMsg)(nil)

func decodeBundleMsg(d *wire.Decoder) (wire.Message, error) {
	b, err := DecodeBundle(d)
	if err != nil {
		return nil, err
	}
	return &BundleMsg{Bundle: b}, nil
}

// BundleRequest asks a peer for bundles [From, To] on one chain (§III-D:
// missing bundles are requested from producers and other available nodes).
type BundleRequest struct {
	Producer wire.NodeID
	From, To uint64
}

var _ wire.Message = (*BundleRequest)(nil)

// Type implements wire.Message.
func (m *BundleRequest) Type() wire.Type { return TypeBundleRequest }

// WireSize implements wire.Message.
func (m *BundleRequest) WireSize() int { return wire.FrameOverhead + 4 + 8 + 8 }

// EncodeBody implements wire.Message.
func (m *BundleRequest) EncodeBody(e *wire.Encoder) {
	e.Node(m.Producer)
	e.U64(m.From)
	e.U64(m.To)
}

func decodeBundleRequest(d *wire.Decoder) (wire.Message, error) {
	m := &BundleRequest{Producer: d.Node(), From: d.U64(), To: d.U64()}
	return m, d.Err()
}

// BundleResponse returns requested bundles (possibly a subset, if the
// responder does not hold them all).
type BundleResponse struct {
	Bundles []*Bundle
}

var _ wire.Message = (*BundleResponse)(nil)

// Type implements wire.Message.
func (m *BundleResponse) Type() wire.Type { return TypeBundleResponse }

// WireSize implements wire.Message.
func (m *BundleResponse) WireSize() int {
	n := wire.FrameOverhead + 4
	for _, b := range m.Bundles {
		n += b.EncodedSize()
	}
	return n
}

// EncodeBody implements wire.Message.
func (m *BundleResponse) EncodeBody(e *wire.Encoder) {
	e.U32(uint32(len(m.Bundles)))
	for _, b := range m.Bundles {
		b.EncodeTo(e)
	}
}

func decodeBundleResponse(d *wire.Decoder) (wire.Message, error) {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining() { // each bundle is ≥ 1 byte; cheap sanity bound
		return nil, wire.ErrTruncated
	}
	out := make([]*Bundle, 0, n)
	for i := 0; i < n; i++ {
		b, err := DecodeBundle(d)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return &BundleResponse{Bundles: out}, d.Err()
}

// ConflictEvidence proves a producer equivocated: two validly signed
// headers share a producer and parent but differ (§III-A). Receivers that
// verify it add the producer to their ban list and forward the evidence.
type ConflictEvidence struct {
	A, B BundleHeader
}

var _ wire.Message = (*ConflictEvidence)(nil)

// Type implements wire.Message.
func (m *ConflictEvidence) Type() wire.Type { return TypeConflictEvidence }

// WireSize implements wire.Message.
func (m *ConflictEvidence) WireSize() int {
	return wire.FrameOverhead + m.A.EncodedSize() + m.B.EncodedSize()
}

// EncodeBody implements wire.Message.
func (m *ConflictEvidence) EncodeBody(e *wire.Encoder) {
	m.A.EncodeTo(e)
	m.B.EncodeTo(e)
}

func decodeConflictEvidence(d *wire.Decoder) (wire.Message, error) {
	a, err := DecodeBundleHeader(d)
	if err != nil {
		return nil, err
	}
	b, err := DecodeBundleHeader(d)
	if err != nil {
		return nil, err
	}
	return &ConflictEvidence{A: *a, B: *b}, d.Err()
}

// Verify checks the evidence cryptographically: both headers validly
// signed by the same producer, same parent, different identity.
func (m *ConflictEvidence) Verify(signer crypto.Signer) bool {
	if m.A.Producer != m.B.Producer {
		return false
	}
	if m.A.Parent != m.B.Parent {
		return false
	}
	ha, hb := m.A.Hash(), m.B.Hash()
	if ha == hb {
		return false
	}
	idx := int(m.A.Producer)
	return signer.Verify(idx, ha, m.A.Sig) && signer.Verify(idx, hb, m.B.Sig)
}

// Cut pins one chain in a Predis block: every bundle at height ≤ Height is
// confirmed, and Head must equal the header hash at exactly Height. A
// single hash pins the whole prefix because headers chain by parent hash
// (Theorem 3.2).
type Cut struct {
	Height uint64
	Head   crypto.Hash
}

// PredisBlock is the paper's constant-size proposal (§III-B): it carries no
// transactions, only one (height, head-hash) cut per chain plus a Merkle
// root binding the included bundles. Its size is Θ(n_c) regardless of how
// many transactions it maps to.
type PredisBlock struct {
	// Height is the consensus sequence number of this block.
	Height uint64
	// Parent is the hash of the previous Predis block (zero for the
	// first).
	Parent crypto.Hash
	// Leader is the proposing node.
	Leader wire.NodeID
	// Cuts has one entry per bundle chain, indexed by producer.
	Cuts []Cut
	// TxRoot is the Merkle root over the header hashes of every newly
	// confirmed bundle, in (chain, height) order. Header hashes commit to
	// transaction roots, so this binds the block's full transaction set.
	TxRoot crypto.Hash
	// Sig is the leader's signature over Hash().
	Sig []byte
}

var _ wire.Message = (*PredisBlock)(nil)

// Type implements wire.Message.
func (m *PredisBlock) Type() wire.Type { return TypePredisBlock }

// WireSize implements wire.Message.
func (m *PredisBlock) WireSize() int {
	return wire.FrameOverhead + 8 + 32 + 4 + 4 + len(m.Cuts)*(8+32) + 32 + wire.SizeVarBytes(m.Sig)
}

func (m *PredisBlock) encodeUnsigned(e *wire.Encoder) {
	e.U64(m.Height)
	e.Bytes32(m.Parent)
	e.Node(m.Leader)
	e.U32(uint32(len(m.Cuts)))
	for _, c := range m.Cuts {
		e.U64(c.Height)
		e.Bytes32(c.Head)
	}
	e.Bytes32(m.TxRoot)
}

// EncodeBody implements wire.Message.
func (m *PredisBlock) EncodeBody(e *wire.Encoder) {
	m.encodeUnsigned(e)
	e.VarBytes(m.Sig)
}

// DecodePredisBlockBody decodes a Predis block body (no frame); other
// packages reuse it to embed blocks in their own message types.
func DecodePredisBlockBody(d *wire.Decoder) (*PredisBlock, error) {
	m, err := decodePredisBlock(d)
	if err != nil {
		return nil, err
	}
	return m.(*PredisBlock), nil
}

func decodePredisBlock(d *wire.Decoder) (wire.Message, error) {
	m := &PredisBlock{
		Height: d.U64(),
		Parent: d.Bytes32(),
		Leader: d.Node(),
	}
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining()/40 {
		return nil, wire.ErrTruncated
	}
	m.Cuts = make([]Cut, n)
	for i := range m.Cuts {
		m.Cuts[i] = Cut{Height: d.U64(), Head: d.Bytes32()}
	}
	m.TxRoot = d.Bytes32()
	m.Sig = d.VarBytes()
	return m, d.Err()
}

// Hash returns the block identity (all fields except the signature).
func (m *PredisBlock) Hash() crypto.Hash {
	e := wire.NewEncoder(m.WireSize())
	m.encodeUnsigned(e)
	return crypto.HashBytes(e.Bytes())
}

// CatchupRequest asks a peer for committed Predis blocks above the
// sender's ledger head (crash recovery, ISSUE 1 tentpole 2). Height is
// the sender's last executed consensus height; the responder answers with
// consecutive blocks Height+1, Height+2, ...
type CatchupRequest struct {
	Height uint64
}

var _ wire.Message = (*CatchupRequest)(nil)

// Type implements wire.Message.
func (m *CatchupRequest) Type() wire.Type { return TypeCatchupRequest }

// WireSize implements wire.Message.
func (m *CatchupRequest) WireSize() int { return wire.FrameOverhead + 8 }

// EncodeBody implements wire.Message.
func (m *CatchupRequest) EncodeBody(e *wire.Encoder) { e.U64(m.Height) }

func decodeCatchupRequest(d *wire.Decoder) (wire.Message, error) {
	m := &CatchupRequest{Height: d.U64()}
	return m, d.Err()
}

// CatchupResponse returns the responder's head height plus consecutive
// committed blocks starting right above the requested height (empty when
// the responder has nothing newer, or when the requested height has
// already left its retention window).
type CatchupResponse struct {
	Head   uint64
	Blocks []*PredisBlock
}

var _ wire.Message = (*CatchupResponse)(nil)

// Type implements wire.Message.
func (m *CatchupResponse) Type() wire.Type { return TypeCatchupResponse }

// WireSize implements wire.Message.
func (m *CatchupResponse) WireSize() int {
	n := wire.FrameOverhead + 8 + 4
	for _, b := range m.Blocks {
		n += b.WireSize() - wire.FrameOverhead
	}
	return n
}

// EncodeBody implements wire.Message.
func (m *CatchupResponse) EncodeBody(e *wire.Encoder) {
	e.U64(m.Head)
	e.U32(uint32(len(m.Blocks)))
	for _, b := range m.Blocks {
		b.EncodeBody(e)
	}
}

func decodeCatchupResponse(d *wire.Decoder) (wire.Message, error) {
	m := &CatchupResponse{Head: d.U64()}
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining()/40 {
		return nil, wire.ErrTruncated
	}
	for i := 0; i < n; i++ {
		b, err := DecodePredisBlockBody(d)
		if err != nil {
			return nil, err
		}
		m.Blocks = append(m.Blocks, b)
	}
	return m, d.Err()
}

var registerOnce sync.Once

// RegisterMessages registers Predis data-plane message types; idempotent.
func RegisterMessages() {
	registerOnce.Do(func() {
		wire.Register(TypeBundle, "core.bundle", decodeBundleMsg)
		wire.Register(TypeBundleRequest, "core.bundle_req", decodeBundleRequest)
		wire.Register(TypeBundleResponse, "core.bundle_resp", decodeBundleResponse)
		wire.Register(TypeConflictEvidence, "core.conflict", decodeConflictEvidence)
		wire.Register(TypePredisBlock, "core.predis_block", decodePredisBlock)
		wire.Register(TypeCatchupRequest, "core.catchup_req", decodeCatchupRequest)
		wire.Register(TypeCatchupResponse, "core.catchup_resp", decodeCatchupResponse)
	})
}
