package core

import (
	"errors"
	"testing"
	"time"

	"predis/internal/crypto"
	"predis/internal/types"
	"predis/internal/wire"
)

// testRig builds NC mempools with per-node signers so tests can simulate
// several nodes exchanging bundles without a network.
type testRig struct {
	t     *testing.T
	suite *crypto.SignerSuite
	pools []*Mempool
	// tails tracks the latest header per producer for chained packing.
	tails []*BundleHeader
	seq   uint64
}

func newRig(t *testing.T, nc, f, bundleSize int) *testRig {
	t.Helper()
	suite := crypto.NewSimSuite(nc, 42)
	pools := make([]*Mempool, nc)
	for i := range pools {
		mp, err := NewMempool(Params{
			NC: nc, F: f, BundleSize: bundleSize, Signer: suite.Signer(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		pools[i] = mp
	}
	return &testRig{t: t, suite: suite, pools: pools, tails: make([]*BundleHeader, nc)}
}

// txs makes n fresh transactions.
func (r *testRig) txs(n int) []*types.Transaction {
	out := make([]*types.Transaction, n)
	for i := range out {
		r.seq++
		out[i] = types.NewTransaction(999, r.seq, 512, time.Duration(r.seq))
	}
	return out
}

// pack creates the next bundle for a producer using the producer's own
// mempool tips.
func (r *testRig) pack(producer int, n int) *Bundle {
	tips := r.pools[producer].Tips()
	tips[producer]++
	b := PackBundle(r.suite.Signer(producer), wire.NodeID(producer), r.tails[producer], r.txs(n), tips)
	r.tails[producer] = &b.Header
	return b
}

// give adds a bundle to a node's mempool expecting success.
func (r *testRig) give(node int, b *Bundle) {
	r.t.Helper()
	res, _, _, err := r.pools[node].AddBundle(b, true)
	if err != nil {
		r.t.Fatalf("node %d AddBundle: %v", node, err)
	}
	if res != Added && res != Duplicate {
		r.t.Fatalf("node %d AddBundle result %d", node, res)
	}
}

// giveAll adds a bundle to every node's mempool, including the producer's.
func (r *testRig) giveAll(b *Bundle) {
	for i := range r.pools {
		r.give(i, b)
	}
}

func TestParamsValidate(t *testing.T) {
	signer := crypto.NewSimSigner(0, 1)
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"valid", Params{NC: 4, F: 1, BundleSize: 50, Signer: signer}, true},
		{"zero nc", Params{NC: 0, F: 0, BundleSize: 50, Signer: signer}, false},
		{"f too big", Params{NC: 4, F: 2, BundleSize: 50, Signer: signer}, false},
		{"no bundle size", Params{NC: 4, F: 1, Signer: signer}, false},
		{"no signer", Params{NC: 4, F: 1, BundleSize: 50}, false},
		{"f zero allowed", Params{NC: 1, F: 0, BundleSize: 1, Signer: signer}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, ok=%v", err, tc.ok)
			}
		})
	}
}

func TestAddBundleBasicChain(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	for h := 1; h <= 5; h++ {
		b := r.pack(0, 3)
		r.giveAll(b)
	}
	for i, mp := range r.pools {
		tips := mp.Tips()
		if tips[0] != 5 {
			t.Fatalf("node %d tips[0] = %d, want 5", i, tips[0])
		}
		if mp.TipHeader(0).Height != 5 {
			t.Fatalf("node %d tip header height wrong", i)
		}
		if !mp.HasUnconfirmedPayload() {
			t.Fatalf("node %d should report unconfirmed payload", i)
		}
	}
}

func TestAddBundleDuplicate(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	b := r.pack(0, 2)
	r.give(1, b)
	res, _, _, err := r.pools[1].AddBundle(b, true)
	if err != nil || res != Duplicate {
		t.Fatalf("duplicate add: res=%d err=%v", res, err)
	}
}

func TestAddBundleBadSignature(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	b := r.pack(0, 2)
	b.Header.Sig = append([]byte(nil), b.Header.Sig...)
	b.Header.Sig[0] ^= 1
	if _, _, _, err := r.pools[1].AddBundle(b, true); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestAddBundleBodyMismatch(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	b := r.pack(0, 3)
	tampered := &Bundle{Header: b.Header, Txs: b.Txs[:2]}
	if _, _, _, err := r.pools[1].AddBundle(tampered, true); !errors.Is(err, ErrBadBody) {
		t.Fatalf("err = %v, want ErrBadBody", err)
	}
}

func TestAddBundleWrongProducerOrTips(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	b := r.pack(0, 1)
	b2 := *b
	b2.Header.Producer = 9
	if _, _, _, err := r.pools[1].AddBundle(&b2, true); !errors.Is(err, ErrUnknownProducer) {
		t.Fatalf("err = %v, want ErrUnknownProducer", err)
	}
	// Wrong tip list length.
	tips := make(TipList, 3)
	bad := PackBundle(r.suite.Signer(0), 0, nil, r.txs(1), tips)
	if _, _, _, err := r.pools[1].AddBundle(bad, true); !errors.Is(err, ErrBadTipsLen) {
		t.Fatalf("err = %v, want ErrBadTipsLen", err)
	}
}

func TestAddBundleOutOfOrderBuffersAndCascades(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	b1 := r.pack(0, 1)
	b2 := r.pack(0, 1)
	b3 := r.pack(0, 1)
	// Deliver out of order: 3 then 2 then 1.
	res, _, miss, err := r.pools[1].AddBundle(b3, true)
	if err != nil || res != Buffered {
		t.Fatalf("b3: res=%d err=%v", res, err)
	}
	if miss == nil || miss.From != 1 || miss.To != 2 {
		t.Fatalf("b3 missing range = %+v", miss)
	}
	res, _, _, err = r.pools[1].AddBundle(b2, true)
	if err != nil || res != Buffered {
		t.Fatalf("b2: res=%d err=%v", res, err)
	}
	res, _, _, err = r.pools[1].AddBundle(b1, true)
	if err != nil || res != Added {
		t.Fatalf("b1: res=%d err=%v", res, err)
	}
	if tips := r.pools[1].Tips(); tips[0] != 3 {
		t.Fatalf("cascade failed: tips[0] = %d, want 3", tips[0])
	}
	if r.pools[1].BufferedCount(0) != 0 {
		t.Fatal("buffered bundles remain after cascade")
	}
}

func TestAddBundleTipMonotonicity(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	b1 := r.pack(0, 1)
	r.give(1, b1)
	// Child with regressed tips must be rejected.
	tips := b1.Header.Tips.Clone()
	tips[2] = 0 // regress (parent had 0 already -> make parent have 1 first)
	// Build a parent with tips[2]=1 to make regression possible: simpler to
	// hand-craft a child with lower tips than parent.
	child := PackBundle(r.suite.Signer(0), 0, &b1.Header, r.txs(1), b1.Header.Tips)
	// Forge regressed tips by repacking with smaller list.
	reg := b1.Header.Tips.Clone()
	if reg[0] == 0 {
		t.Fatal("setup: parent tips[0] must be > 0")
	}
	reg[0] = 0
	childBad := PackBundle(r.suite.Signer(0), 0, &b1.Header, r.txs(1), reg)
	if _, _, _, err := r.pools[1].AddBundle(childBad, true); !errors.Is(err, ErrBadTips) {
		t.Fatalf("err = %v, want ErrBadTips", err)
	}
	// The well-formed child still links.
	res, _, _, err := r.pools[1].AddBundle(child, true)
	if err != nil || res != Added {
		t.Fatalf("good child: res=%d err=%v", res, err)
	}
}

func TestConflictDetectionAndBan(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	b1 := r.pack(0, 1)
	r.give(1, b1)
	// Equivocation: second bundle at the same height with same parent.
	conflict := PackBundle(r.suite.Signer(0), 0, nil, r.txs(2), b1.Header.Tips)
	if conflict.Header.Hash() == b1.Header.Hash() {
		t.Fatal("setup: conflicting bundles must differ")
	}
	res, ev, _, err := r.pools[1].AddBundle(conflict, true)
	if err != nil || res != Conflicting {
		t.Fatalf("res=%d err=%v", res, err)
	}
	if ev == nil || !ev.Verify(r.suite.Signer(1)) {
		t.Fatal("evidence missing or unverifiable")
	}
	if !r.pools[1].Banned(0) {
		t.Fatal("producer not banned after conflict")
	}
	if r.pools[1].Evidence(0) == nil {
		t.Fatal("evidence not stored")
	}
	// Further bundles from the banned producer are rejected.
	b2 := r.pack(0, 1)
	if _, _, _, err := r.pools[1].AddBundle(b2, true); !errors.Is(err, ErrBannedProducer) {
		t.Fatalf("err = %v, want ErrBannedProducer", err)
	}
	// Unban restores acceptance.
	r.pools[1].Unban(0)
	if r.pools[1].Banned(0) {
		t.Fatal("still banned after Unban")
	}
}

func TestConflictEvidenceVerifyRejectsForgeries(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	b1 := r.pack(0, 1)
	other := PackBundle(r.suite.Signer(0), 0, nil, r.txs(2), b1.Header.Tips)
	ev := &ConflictEvidence{A: b1.Header, B: other.Header}
	if !ev.Verify(r.suite.Signer(2)) {
		t.Fatal("genuine evidence rejected")
	}
	same := &ConflictEvidence{A: b1.Header, B: b1.Header}
	if same.Verify(r.suite.Signer(2)) {
		t.Fatal("identical headers accepted as conflict")
	}
	crossProducer := &ConflictEvidence{A: b1.Header, B: r.pack(1, 1).Header}
	if crossProducer.Verify(r.suite.Signer(2)) {
		t.Fatal("different producers accepted as conflict")
	}
	badSig := *other
	badSig.Header.Sig = append([]byte(nil), badSig.Header.Sig...)
	badSig.Header.Sig[3] ^= 1
	forged := &ConflictEvidence{A: b1.Header, B: badSig.Header}
	if forged.Verify(r.suite.Signer(2)) {
		t.Fatal("forged signature accepted")
	}
}

func TestMarkConfirmedPruning(t *testing.T) {
	suite := crypto.NewSimSuite(4, 1)
	mp, err := NewMempool(Params{NC: 4, F: 1, BundleSize: 10, Signer: suite.Signer(0), KeepConfirmed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var tail *BundleHeader
	for h := 1; h <= 10; h++ {
		tips := mp.Tips()
		tips[0]++
		b := PackBundle(suite.Signer(0), 0, tail, nil, tips)
		tail = &b.Header
		if _, _, _, err := mp.AddBundle(b, false); err != nil {
			t.Fatal(err)
		}
	}
	mp.MarkConfirmed(0, 8)
	if mp.ConfirmedHeight(0) != 8 {
		t.Fatalf("confirmed = %d", mp.ConfirmedHeight(0))
	}
	// KeepConfirmed=2: heights ≤ 6 pruned.
	if mp.Bundle(0, 6) != nil {
		t.Fatal("height 6 should be pruned")
	}
	if mp.Bundle(0, 7) == nil || mp.Bundle(0, 10) == nil {
		t.Fatal("heights 7..10 should remain")
	}
	if mp.Tips()[0] != 10 {
		t.Fatalf("tip = %d after pruning", mp.Tips()[0])
	}
	// Old bundles re-delivered after pruning count as duplicates.
	old := mp.Bundle(0, 7)
	res, _, _, err := mp.AddBundle(old, false)
	if err != nil || res != Duplicate {
		t.Fatalf("re-add pruned-era bundle: res=%d err=%v", res, err)
	}
}

func TestRangeQueries(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	for h := 1; h <= 5; h++ {
		r.give(1, r.pack(0, 1))
	}
	if got := r.pools[1].Range(0, 0, 5); len(got) != 5 {
		t.Fatalf("Range(0,0,5) = %d bundles", len(got))
	}
	if got := r.pools[1].Range(0, 2, 4); len(got) != 2 || got[0].Header.Height != 3 {
		t.Fatalf("Range(0,2,4) wrong: %d bundles", len(got))
	}
	if got := r.pools[1].Range(0, 2, 9); got != nil {
		t.Fatal("Range beyond tip must be nil")
	}
	if got := r.pools[1].Range(0, 4, 2); got != nil {
		t.Fatal("inverted Range must be nil")
	}
}

func TestTipMatrixSelfAndPeers(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	// Producer 1 packs two bundles; node 0 receives both.
	b1 := r.pack(1, 1)
	r.give(0, b1)
	r.give(1, b1)
	b2 := r.pack(1, 1)
	r.give(0, b2)
	r.give(1, b2)
	matrix := r.pools[0].TipMatrix(0)
	if matrix[0][1] != 2 {
		t.Fatalf("self row: matrix[0][1] = %d, want 2", matrix[0][1])
	}
	// Row 1 comes from bundle 2's tip list; its own entry is patched to its
	// height.
	if matrix[1][1] != 2 {
		t.Fatalf("producer row: matrix[1][1] = %d, want 2", matrix[1][1])
	}
	// Rows for silent producers are zero.
	for i := range matrix[2] {
		if matrix[2][i] != 0 {
			t.Fatalf("matrix[2] should be zero, got %v", matrix[2])
		}
	}
}

func TestHeaderHashExcludesSignature(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	b := r.pack(0, 1)
	h1 := b.Header.Hash()
	b.Header.Sig = []byte("different")
	if b.Header.Hash() != h1 {
		t.Fatal("signature must not affect the header hash")
	}
	// Headers are immutable once packed (Hash memoizes), so derive a
	// sibling header that differs only in Height and compare fresh.
	h2 := b.Header
	h2.hashSet = false
	h2.Height++
	if h2.Hash() == h1 {
		t.Fatal("height must affect the header hash")
	}
}

func TestMessageCodecs(t *testing.T) {
	RegisterMessages()
	r := newRig(t, 4, 1, 50)
	b := r.pack(0, 3)

	bm := &BundleMsg{Bundle: b}
	got, err := wire.Roundtrip(bm)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*BundleMsg).Bundle.Header.Hash() != b.Header.Hash() {
		t.Fatal("BundleMsg roundtrip changed the header")
	}
	if len(wire.Marshal(bm)) != bm.WireSize() {
		t.Fatal("BundleMsg WireSize mismatch")
	}

	req := &BundleRequest{Producer: 2, From: 3, To: 9}
	if got, err := wire.Roundtrip(req); err != nil || *got.(*BundleRequest) != *req {
		t.Fatalf("BundleRequest roundtrip: %v", err)
	}

	resp := &BundleResponse{Bundles: []*Bundle{b, r.pack(0, 2)}}
	got2, err := wire.Roundtrip(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.(*BundleResponse).Bundles) != 2 {
		t.Fatal("BundleResponse lost bundles")
	}
	if len(wire.Marshal(resp)) != resp.WireSize() {
		t.Fatal("BundleResponse WireSize mismatch")
	}

	other := PackBundle(r.suite.Signer(1), 1, nil, r.txs(1), make(TipList, 4))
	ev := &ConflictEvidence{A: b.Header, B: other.Header}
	got3, err := wire.Roundtrip(ev)
	if err != nil {
		t.Fatal(err)
	}
	if got3.(*ConflictEvidence).A.Hash() != b.Header.Hash() {
		t.Fatal("ConflictEvidence roundtrip changed header A")
	}
	if len(wire.Marshal(ev)) != ev.WireSize() {
		t.Fatal("ConflictEvidence WireSize mismatch")
	}

	creq := &CatchupRequest{Height: 12}
	if got, err := wire.Roundtrip(creq); err != nil || *got.(*CatchupRequest) != *creq {
		t.Fatalf("CatchupRequest roundtrip: %v", err)
	}
	if len(wire.Marshal(creq)) != creq.WireSize() {
		t.Fatal("CatchupRequest WireSize mismatch")
	}

	cuts := []Cut{{Height: 7, Head: crypto.HashBytes([]byte("cut"))}, {}, {}, {}}
	blk := &PredisBlock{Height: 5, Leader: 1, Cuts: cuts}
	blk.Sig = r.suite.Signer(1).Sign(blk.Hash())
	cresp := &CatchupResponse{Head: 9, Blocks: []*PredisBlock{blk}}
	got4, err := wire.Roundtrip(cresp)
	if err != nil {
		t.Fatalf("CatchupResponse roundtrip: %v", err)
	}
	gr := got4.(*CatchupResponse)
	if gr.Head != 9 || len(gr.Blocks) != 1 || gr.Blocks[0].Hash() != blk.Hash() {
		t.Fatal("CatchupResponse roundtrip changed the payload")
	}
	if len(wire.Marshal(cresp)) != cresp.WireSize() {
		t.Fatal("CatchupResponse WireSize mismatch")
	}
}
