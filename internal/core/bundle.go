// Package core implements Predis, the paper's data production strategy
// (§III): consensus nodes continuously pack transactions into *bundles*,
// multicast them, and store them in per-producer *parallel bundle chains*.
// At each consensus round the leader cuts the chains using tip-list
// information and proposes a tiny, constant-size *Predis block* that maps
// to all the bundles below the cut — so the volume of transactions
// confirmed per round is bounded by the nodes' aggregate bandwidth rather
// than the leader's.
package core

import (
	"fmt"
	"time"

	"predis/internal/compute"
	"predis/internal/crypto"
	"predis/internal/merkle"
	"predis/internal/types"
	"predis/internal/wire"
)

// Params configures a Predis instance. Consensus nodes must have IDs
// 0..NC-1 so a node ID doubles as a chain index.
type Params struct {
	// NC is the number of consensus nodes (and bundle chains).
	NC int
	// F is the Byzantine fault bound; usually NC = 3F+1.
	F int
	// BundleSize is the maximum number of transactions per bundle
	// (paper default: 50).
	BundleSize int
	// BundleInterval is the maximum time a producer waits before emitting
	// a partially filled bundle.
	BundleInterval time.Duration
	// KeepConfirmed is how many confirmed bundles per chain stay in the
	// mempool to serve fetch requests before pruning.
	KeepConfirmed int
	// Signer signs bundles and Predis blocks and verifies peers'.
	Signer crypto.Signer
}

// Validate checks parameter sanity.
func (p *Params) Validate() error {
	switch {
	case p.NC <= 0:
		return fmt.Errorf("core: NC must be positive, got %d", p.NC)
	case p.F < 0 || 3*p.F+1 > p.NC:
		return fmt.Errorf("core: F=%d incompatible with NC=%d (need NC ≥ 3F+1)", p.F, p.NC)
	case p.BundleSize <= 0:
		return fmt.Errorf("core: BundleSize must be positive, got %d", p.BundleSize)
	case p.Signer == nil:
		return fmt.Errorf("core: Signer is required")
	}
	return nil
}

func (p *Params) withDefaults() Params {
	out := *p
	if out.BundleInterval <= 0 {
		out.BundleInterval = 20 * time.Millisecond
	}
	if out.KeepConfirmed <= 0 {
		out.KeepConfirmed = 128
	}
	return out
}

// TipList records, per bundle chain, the highest *contiguous* bundle height
// the producer has received (§III-A, Fig. 1). Contiguity matters: a tip of
// h asserts possession of every bundle at heights ≤ h on that chain, which
// is what makes the cutting rule an availability proof.
type TipList []uint64

// Clone returns a copy.
func (t TipList) Clone() TipList { return append(TipList(nil), t...) }

// AtLeast reports whether every entry of t is ≥ the corresponding entry of
// other (the monotonicity check for child bundles, validity rule 3).
func (t TipList) AtLeast(other TipList) bool {
	if len(t) != len(other) {
		return false
	}
	for i := range t {
		if t[i] < other[i] {
			return false
		}
	}
	return true
}

// BundleHeader is the signed green part of Fig. 1: chain position, a
// commitment to the body, a commitment to the erasure-coded stripes, and
// the producer's tip list.
type BundleHeader struct {
	// Producer is the bundle chain this header extends (consensus node
	// ID, which equals the chain index).
	Producer wire.NodeID
	// Height starts at 1; the height-1 bundle has a zero Parent.
	Height uint64
	// Parent is the header hash of the previous bundle on this chain.
	Parent crypto.Hash
	// TxRoot is the Merkle root over the body's transaction hashes.
	TxRoot crypto.Hash
	// StripeRoot is the Merkle root over the bundle's erasure-coded
	// stripes (Fig. 1 "Merkle Stripe hash"); zero when the deployment
	// does not stripe bundles.
	StripeRoot crypto.Hash
	// TxCount and TxBytes describe the body for validation and
	// accounting.
	TxCount uint32
	TxBytes uint32
	// Tips is the producer's tip list at packing time.
	Tips TipList
	// Sig is the producer's signature over Hash().
	Sig []byte

	// hash memoizes Hash(): the signature is excluded from the digest, so
	// the memo is valid as soon as the unsigned fields are set, and headers
	// are immutable once packed or decoded.
	hash    crypto.Hash
	hashSet bool
}

// encodeUnsigned writes every field except the signature.
func (h *BundleHeader) encodeUnsigned(e *wire.Encoder) {
	e.Node(h.Producer)
	e.U64(h.Height)
	e.Bytes32(h.Parent)
	e.Bytes32(h.TxRoot)
	e.Bytes32(h.StripeRoot)
	e.U32(h.TxCount)
	e.U32(h.TxBytes)
	e.U64Slice(h.Tips)
}

// EncodeTo writes the full header including the signature.
func (h *BundleHeader) EncodeTo(e *wire.Encoder) {
	h.encodeUnsigned(e)
	e.VarBytes(h.Sig)
}

// DecodeBundleHeader reads a header written by EncodeTo.
func DecodeBundleHeader(d *wire.Decoder) (*BundleHeader, error) {
	h := &BundleHeader{
		Producer:   d.Node(),
		Height:     d.U64(),
		Parent:     d.Bytes32(),
		TxRoot:     d.Bytes32(),
		StripeRoot: d.Bytes32(),
		TxCount:    d.U32(),
		TxBytes:    d.U32(),
		Tips:       TipList(d.U64Slice()),
		Sig:        d.VarBytes(),
	}
	return h, d.Err()
}

// EncodedSize returns the wire size of the header.
func (h *BundleHeader) EncodedSize() int {
	return 4 + 8 + 32 + 32 + 32 + 4 + 4 + wire.SizeU64Slice(h.Tips) + wire.SizeVarBytes(h.Sig)
}

// Hash returns the header's identity: the digest of all fields except the
// signature. Theorem 3.1 (bundle header consistency) rests on this hash
// committing to TxRoot.
func (h *BundleHeader) Hash() crypto.Hash {
	if h.hashSet {
		return h.hash
	}
	h.hash = h.HashStateless()
	h.hashSet = true
	return h.hash
}

// HashStateless computes the header identity without reading or writing
// the memo, so it is safe to call from compute-pool workers on a header
// snapshot taken on the event loop (the unsigned fields are immutable
// once packed or decoded; only the memo fields mutate lazily).
func (h *BundleHeader) HashStateless() crypto.Hash {
	e := wire.NewEncoder(h.EncodedSize())
	h.encodeUnsigned(e)
	return crypto.HashBytes(e.Bytes())
}

// PrimeHash installs a hash computed elsewhere (a compute-pool worker via
// HashStateless on a snapshot of this header) into the memo. Call it only
// from the goroutine that owns the header — in the simulator, the event
// loop at a deterministic join point — and only with the value
// HashStateless returns; an already-set memo is left untouched.
func (h *BundleHeader) PrimeHash(hash crypto.Hash) {
	if !h.hashSet {
		h.hash = hash
		h.hashSet = true
	}
}

// Bundle is a header plus its transaction body.
type Bundle struct {
	Header BundleHeader
	Txs    []*types.Transaction

	// bodyOK memoizes a successful VerifyBody. Bundles are immutable once
	// packed or decoded, and the simulator hands the same *Bundle to every
	// recipient, so re-deriving the Merkle root per recipient is pure
	// waste. Failures are never cached.
	bodyOK bool
	// stripeCache holds the erasure-coded form of this bundle (stored as
	// any to keep core free of a multizone dependency). Erasure encoding
	// is deterministic in Txs, so every consensus node would compute the
	// same shards; caching them on the shared *Bundle makes the encode run
	// once network-wide instead of once per distributor.
	stripeCache any
	// spec is the speculative verification future launched by Precompute
	// when the bundle's carrying message is scheduled on the network, and
	// forced by VerifyBody at delivery. It holds only values (no memo
	// writes happen off the event loop), so forcing it is value-identical
	// to the inline computation.
	spec *compute.Future[bundleSpec]
}

// bundleSpec is everything VerifyBody needs, computed speculatively from
// immutable bundle fields by a compute-pool worker.
type bundleSpec struct {
	headerHash crypto.Hash
	txHashes   []crypto.Hash
	txRoot     crypto.Hash
	txBytes    uint32
}

// computeSpec derives the speculative verification values. It must stay a
// pure function of the snapshot header and the transactions' immutable
// identity fields: it runs on compute-pool workers concurrently with the
// event loop touching the same *Transaction memos.
func computeSpec(hdr BundleHeader, txs []*types.Transaction) bundleSpec {
	s := bundleSpec{
		headerHash: hdr.HashStateless(),
		txHashes:   make([]crypto.Hash, len(txs)),
	}
	bytes := 0
	leaves := make([]crypto.Hash, len(txs))
	for i, t := range txs {
		h := t.HashStateless()
		s.txHashes[i] = h
		leaves[i] = merkle.HashLeaf(h[:])
		bytes += t.EncodedSize()
	}
	s.txBytes = uint32(bytes)
	if len(txs) == 0 {
		s.txRoot = crypto.ZeroHash
	} else {
		s.txRoot = merkle.RootOfHashes(leaves)
	}
	return s
}

// Precompute launches the speculative verification of this bundle on the
// compute pool. The simulator calls it (via compute.Speculative) when the
// carrying message is scheduled, once per recipient on the shared
// pointer, so it must be — and is — idempotent. The header snapshot is
// taken here, on the event loop; the worker closure reads only immutable
// fields.
func (b *Bundle) Precompute(p *compute.Pool) {
	if b.bodyOK || b.spec != nil {
		return
	}
	hdr := b.Header // snapshot on the event loop; memo fields never read by the worker
	txs := b.Txs
	b.spec = compute.Go(p, func() bundleSpec { return computeSpec(hdr, txs) })
}

// joinSpec forces the speculative future (if any), installs the memos it
// carries — transaction hashes and the header hash — and returns the
// spec. It must run on the goroutine that owns the bundle's memos (the
// event loop). Returns false when no future was launched.
func (b *Bundle) joinSpec() (bundleSpec, bool) {
	if b.spec == nil {
		return bundleSpec{}, false
	}
	s := b.spec.Force()
	b.spec = nil // free the future; memos below make it redundant
	b.Header.PrimeHash(s.headerHash)
	for i, t := range b.Txs {
		if i < len(s.txHashes) {
			t.PrimeHash(s.txHashes[i])
		}
	}
	return s, true
}

// StripeCache returns the value stored by SetStripeCache (nil if unset).
func (b *Bundle) StripeCache() any { return b.stripeCache }

// SetStripeCache memoizes the erasure-coded form of this bundle. The
// value must be a pure function of b's contents so the cache stays
// value-identical across nodes.
func (b *Bundle) SetStripeCache(v any) { b.stripeCache = v }

// PackBundle builds and signs a bundle extending parent (nil for a genesis
// bundle) with the given transactions and tip list. The caller's signer
// must belong to the producer.
func PackBundle(signer crypto.Signer, producer wire.NodeID, parent *BundleHeader,
	txs []*types.Transaction, tips TipList) *Bundle {
	return PackBundleStriped(signer, producer, parent, txs, tips, crypto.ZeroHash)
}

// PackBundleStriped is PackBundle with an explicit stripe Merkle root
// committed in the header, for deployments that erasure-code bundles
// (Multi-Zone). The root must be computed over the shards of the encoded
// body before signing.
func PackBundleStriped(signer crypto.Signer, producer wire.NodeID, parent *BundleHeader,
	txs []*types.Transaction, tips TipList, stripeRoot crypto.Hash) *Bundle {
	h := BundleHeader{
		Producer:   producer,
		Height:     1,
		TxRoot:     TxMerkleRoot(txs),
		StripeRoot: stripeRoot,
		TxCount:    uint32(len(txs)),
		TxBytes:    uint32(types.TotalBytes(txs)),
		Tips:       tips.Clone(),
	}
	if parent != nil {
		h.Height = parent.Height + 1
		h.Parent = parent.Hash()
	}
	h.Sig = signer.Sign(h.Hash())
	return &Bundle{Header: h, Txs: txs}
}

// PackBundleStripedPooled is PackBundleStriped with the transaction Merkle
// root fork-joined over the pool. Byte-identical output for any pool.
func PackBundleStripedPooled(p *compute.Pool, signer crypto.Signer, producer wire.NodeID,
	parent *BundleHeader, txs []*types.Transaction, tips TipList, stripeRoot crypto.Hash) *Bundle {
	h := BundleHeader{
		Producer:   producer,
		Height:     1,
		TxRoot:     TxMerkleRootPooled(p, txs),
		StripeRoot: stripeRoot,
		TxCount:    uint32(len(txs)),
		TxBytes:    uint32(types.TotalBytes(txs)),
		Tips:       tips.Clone(),
	}
	if parent != nil {
		h.Height = parent.Height + 1
		h.Parent = parent.Hash()
	}
	h.Sig = signer.Sign(h.Hash())
	return &Bundle{Header: h, Txs: txs}
}

// TxMerkleRoot computes the Merkle root over transaction hashes.
func TxMerkleRoot(txs []*types.Transaction) crypto.Hash {
	if len(txs) == 0 {
		return crypto.ZeroHash
	}
	leaves := make([]crypto.Hash, len(txs))
	for i, t := range txs {
		h := t.Hash()
		leaves[i] = merkle.HashLeaf(h[:])
	}
	return merkle.RootOfHashes(leaves)
}

// txChunk is the fork-join granularity for per-transaction hashing: small
// enough to balance across workers, large enough that the atomic index
// counter is not the bottleneck.
const txChunk = 16

// TxMerkleRootPooled is TxMerkleRoot with the per-transaction hashing
// fork-joined over the pool. Workers fill disjoint slots using the
// stateless hashers; the caller (which must own the transactions' memos —
// the event loop) installs the memos afterwards. Value-identical to
// TxMerkleRoot for any pool, including nil.
func TxMerkleRootPooled(p *compute.Pool, txs []*types.Transaction) crypto.Hash {
	if len(txs) == 0 {
		return crypto.ZeroHash
	}
	if !p.Active() || len(txs) <= txChunk {
		return TxMerkleRoot(txs)
	}
	hs := make([]crypto.Hash, len(txs))
	leaves := make([]crypto.Hash, len(txs))
	chunks := (len(txs) + txChunk - 1) / txChunk
	p.Map(chunks, func(c int) {
		lo := c * txChunk
		hi := lo + txChunk
		if hi > len(txs) {
			hi = len(txs)
		}
		for i := lo; i < hi; i++ {
			h := txs[i].HashStateless()
			hs[i] = h
			leaves[i] = merkle.HashLeaf(h[:])
		}
	})
	for i, t := range txs {
		t.PrimeHash(hs[i])
	}
	return merkle.RootOfHashes(leaves)
}

// VerifyBody checks that the body matches the header's commitments. When a
// speculative future is pending (Precompute ran at message-schedule time),
// it is forced here — the deterministic join point — and its values feed
// the identical checks in the identical order, so error text and outcome
// match the inline path byte for byte.
func (b *Bundle) VerifyBody() error {
	if b.bodyOK {
		return nil
	}
	if s, ok := b.joinSpec(); ok {
		return b.finishVerify(s.txRoot, s.txBytes)
	}
	return b.finishVerify(TxMerkleRoot(b.Txs), uint32(types.TotalBytes(b.Txs)))
}

// VerifyBodyPooled is VerifyBody with the Merkle-root recompute fork-joined
// over the pool. Use it for freshly decoded bundles (reassembly) where no
// speculative future could have been launched. Value-identical to
// VerifyBody for any pool, including nil.
func (b *Bundle) VerifyBodyPooled(p *compute.Pool) error {
	if b.bodyOK {
		return nil
	}
	if s, ok := b.joinSpec(); ok {
		return b.finishVerify(s.txRoot, s.txBytes)
	}
	return b.finishVerify(TxMerkleRootPooled(p, b.Txs), uint32(types.TotalBytes(b.Txs)))
}

// finishVerify runs the three commitment checks in their canonical order
// (count, bytes, root) with the canonical error texts.
func (b *Bundle) finishVerify(txRoot crypto.Hash, txBytes uint32) error {
	if int(b.Header.TxCount) != len(b.Txs) {
		return fmt.Errorf("core: bundle tx count %d, header says %d", len(b.Txs), b.Header.TxCount)
	}
	if txBytes != b.Header.TxBytes {
		return fmt.Errorf("core: bundle tx bytes %d, header says %d", txBytes, b.Header.TxBytes)
	}
	if txRoot != b.Header.TxRoot {
		return fmt.Errorf("core: bundle tx root mismatch")
	}
	b.bodyOK = true
	return nil
}

// EncodedSize returns the wire size of header+body.
func (b *Bundle) EncodedSize() int {
	return b.Header.EncodedSize() + types.SizeTxs(b.Txs)
}

// EncodeTo writes header then body.
func (b *Bundle) EncodeTo(e *wire.Encoder) {
	b.Header.EncodeTo(e)
	types.EncodeTxs(e, b.Txs)
}

// DecodeBundle reads a bundle written by EncodeTo.
func DecodeBundle(d *wire.Decoder) (*Bundle, error) {
	h, err := DecodeBundleHeader(d)
	if err != nil {
		return nil, err
	}
	txs, err := types.DecodeTxs(d)
	if err != nil {
		return nil, err
	}
	return &Bundle{Header: *h, Txs: txs}, d.Err()
}
