package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"predis/internal/crypto"
	"predis/internal/wire"
)

// TestQuickTipListAtLeast checks the tip-list partial order used by the
// bundle-monotonicity rule.
func TestQuickTipListAtLeast(t *testing.T) {
	f := func(base []uint8, bumps []uint8) bool {
		if len(base) == 0 {
			return true
		}
		a := make(TipList, len(base))
		for i, v := range base {
			a[i] = uint64(v)
		}
		// b = a + nonnegative bumps must always be AtLeast a.
		b := a.Clone()
		for i, d := range bumps {
			b[i%len(b)] += uint64(d)
		}
		if !b.AtLeast(a) {
			return false
		}
		// A genuine regression breaks the order.
		r := b.Clone()
		for i := range r {
			if r[i] > 0 {
				r[i]--
				return !r.AtLeast(b)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCuttingRuleSafety is the §III-D availability property driven
// with random dissemination patterns: build random chains at each of n_c
// nodes (each bundle delivered to a random node subset that always
// includes the producer), exchange one round of tip-advertising bundles,
// and check that wherever the leader cuts, at least n_c−f nodes actually
// hold every bundle at or below the cut.
func TestQuickCuttingRuleSafety(t *testing.T) {
	const nc, f = 4, 1
	suite := crypto.NewSimSuite(nc, 77)

	run := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pools := make([]*Mempool, nc)
		for i := range pools {
			mp, err := NewMempool(Params{NC: nc, F: f, BundleSize: 4, Signer: suite.Signer(i)})
			if err != nil {
				t.Fatal(err)
			}
			pools[i] = mp
		}
		tails := make([]*BundleHeader, nc)

		// holders[producer][height] = set of nodes holding that bundle.
		holders := make([]map[uint64]map[int]bool, nc)
		for i := range holders {
			holders[i] = make(map[uint64]map[int]bool)
		}

		deliver := func(b *Bundle, to int) {
			res, _, _, err := pools[to].AddBundle(b, to != int(b.Header.Producer))
			if err == nil && (res == Added || res == Duplicate) {
				if holders[b.Header.Producer][b.Header.Height] == nil {
					holders[b.Header.Producer][b.Header.Height] = make(map[int]bool)
				}
				holders[b.Header.Producer][b.Header.Height][to] = true
			}
		}

		// Random production: 20 bundles from random producers, each
		// delivered IN ORDER to a random subset including the producer.
		for k := 0; k < 20; k++ {
			p := r.Intn(nc)
			tips := pools[p].Tips()
			tips[p]++
			b := PackBundle(suite.Signer(p), wire.NodeID(p), tails[p], nil, tips)
			tails[p] = &b.Header
			deliver(b, p)
			for n := 0; n < nc; n++ {
				if n != p && r.Intn(2) == 0 {
					deliver(b, n)
				}
			}
		}
		// One tip-exchange round: every node emits an empty bundle carrying
		// its tips, delivered to everyone (honest heartbeat round).
		for p := 0; p < nc; p++ {
			tips := pools[p].Tips()
			tips[p]++
			b := PackBundle(suite.Signer(p), wire.NodeID(p), tails[p], nil, tips)
			tails[p] = &b.Header
			for n := 0; n < nc; n++ {
				deliver(b, n)
			}
		}

		// Every node acting as leader must cut only quorum-held prefixes.
		for leader := 0; leader < nc; leader++ {
			cuts := pools[leader].CutChains(wire.NodeID(leader), ZeroCuts(nc))
			for chain, cut := range cuts {
				for h := uint64(1); h <= cut.Height; h++ {
					if len(holders[chain][h]) < nc-f {
						t.Fatalf("seed %d: leader %d cut chain %d at %d but height %d held by only %d nodes",
							seed, leader, chain, cut.Height, h, len(holders[chain][h]))
					}
				}
				// The leader must itself hold the head it references.
				if cut.Height > 0 && pools[leader].Bundle(wire.NodeID(chain), cut.Height) == nil {
					t.Fatalf("seed %d: leader %d cut chain %d at %d without holding the head",
						seed, leader, chain, cut.Height)
				}
			}
		}
		return true
	}
	for seed := int64(1); seed <= 40; seed++ {
		if !run(seed) {
			t.Fatalf("seed %d failed", seed)
		}
	}
}

// TestQuickBlockRootDeterministic: two mempools with the same bundles
// produce identical blocks for identical cuts (Theorem 3.3's other half).
func TestQuickBlockRootDeterministic(t *testing.T) {
	r1 := newRig(t, 4, 1, 50)
	populate(r1, 2)
	blk1, ok1 := r1.pools[0].BuildPredisBlock(1, crypto.ZeroHash, ZeroCuts(4), 0)
	blk2, ok2 := r1.pools[1].BuildPredisBlock(1, crypto.ZeroHash, ZeroCuts(4), 1)
	if !ok1 || !ok2 {
		t.Fatal("no blocks built")
	}
	// Different leaders, same mempool content: the cut heights and roots
	// must agree even though Leader and Sig differ.
	for i := range blk1.Cuts {
		if blk1.Cuts[i].Height != blk2.Cuts[i].Height || blk1.Cuts[i].Head != blk2.Cuts[i].Head {
			t.Fatalf("chain %d cut differs across leaders: %+v vs %+v", i, blk1.Cuts[i], blk2.Cuts[i])
		}
	}
	if blk1.TxRoot != blk2.TxRoot {
		t.Fatal("tx roots differ for identical content")
	}
}
