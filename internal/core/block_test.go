package core

import (
	"errors"
	"testing"

	"predis/internal/crypto"
	"predis/internal/wire"
)

// populate fills every node's mempool: each producer packs `per` bundles of
// one transaction, delivered to everyone. Tip lists therefore advertise
// full receipt.
func populate(r *testRig, per int) {
	for round := 0; round < per; round++ {
		for p := range r.pools {
			b := r.pack(p, 1)
			r.giveAll(b)
		}
	}
	// One extra round of empty bundles so tip lists reflect the last
	// deliveries (the 2·ls effect from §III-F).
	for p := range r.pools {
		b := r.pack(p, 0)
		r.giveAll(b)
	}
}

func TestCutChainsQuorumRule(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	populate(r, 3)
	prev := ZeroCuts(4)
	cuts := r.pools[0].CutChains(0, prev)
	// All transaction bundles (heights ≤ 3) are quorum-proven by the tip
	// exchange round, so every chain cuts at least there. The very last
	// empty bundles may not be provable yet — that is the 2·ls effect of
	// §III-F, not a bug.
	for i, c := range cuts {
		if c.Height < 3 {
			t.Fatalf("chain %d cut at %d, want ≥ 3", i, c.Height)
		}
		if c.Head.IsZero() {
			t.Fatalf("chain %d head hash empty", i)
		}
	}
}

func TestCutChainsRespectsLaggards(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	// Producer 0 packs 3 bundles; only nodes 0 and 1 receive them, and no
	// follow-up bundles advertise receipt. The leader must not cut chain 0
	// above what n_c−f = 3 nodes can prove.
	for i := 0; i < 3; i++ {
		b := r.pack(0, 1)
		r.give(0, b)
		r.give(1, b)
	}
	cuts := r.pools[0].CutChains(0, ZeroCuts(4))
	if cuts[0].Height != 0 {
		t.Fatalf("chain 0 cut at %d, want 0 (only 2 receipts claimable)", cuts[0].Height)
	}
}

func TestCutChainsCountsTipListClaims(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	// Producer 0 packs one bundle; nodes 1 and 2 receive it and then pack
	// their own bundles whose tip lists claim receipt. The leader (0)
	// receives those bundles, so the matrix shows 3 holders: cut at 1.
	b0 := r.pack(0, 1)
	r.give(0, b0)
	r.give(1, b0)
	r.give(2, b0)
	for _, p := range []int{1, 2} {
		b := r.pack(p, 1)
		r.giveAll(b)
	}
	cuts := r.pools[0].CutChains(0, ZeroCuts(4))
	if cuts[0].Height != 1 {
		t.Fatalf("chain 0 cut at %d, want 1", cuts[0].Height)
	}
}

func TestCutChainsClampsToSelfHoldings(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	// Producers 1,2,3 each pack 2 bundles; node 0 only has the first of
	// chain 1. Even if the rest of the network has both, node 0 can only
	// cut what it holds.
	var firstOf1 *Bundle
	for _, p := range []int{1, 2, 3} {
		b1 := r.pack(p, 1)
		b2 := r.pack(p, 1)
		for n := 0; n < 4; n++ {
			if n == 0 && p == 1 {
				continue // node 0 deprived of chain 1
			}
			r.give(n, b1)
			r.give(n, b2)
		}
		if p == 1 {
			firstOf1 = b1
		}
	}
	// Fresh bundles from 2 and 3 advertise full receipt of chain 1.
	for _, p := range []int{2, 3} {
		b := r.pack(p, 0)
		r.giveAll(b)
	}
	cuts := r.pools[0].CutChains(0, ZeroCuts(4))
	if cuts[1].Height != 0 {
		t.Fatalf("chain 1 cut %d, want 0 (node 0 holds nothing)", cuts[1].Height)
	}
	// After node 0 receives the first bundle it can cut height 1.
	r.give(0, firstOf1)
	cuts = r.pools[0].CutChains(0, ZeroCuts(4))
	if cuts[1].Height != 1 {
		t.Fatalf("chain 1 cut %d, want 1", cuts[1].Height)
	}
}

func TestCutChainsSkipsBanned(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	populate(r, 2)
	r.pools[0].Ban(2, nil)
	cuts := r.pools[0].CutChains(0, ZeroCuts(4))
	if cuts[2].Height != 0 {
		t.Fatalf("banned chain cut at %d, want 0", cuts[2].Height)
	}
	if !cuts[2].Head.IsZero() {
		t.Fatal("banned chain head must be zero")
	}
}

func TestBuildValidateCommitRoundtrip(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	populate(r, 3)
	prev := ZeroCuts(4)
	blk, ok := r.pools[0].BuildPredisBlock(1, crypto.ZeroHash, prev, 0)
	if !ok {
		t.Fatal("BuildPredisBlock returned nothing")
	}
	if blk.Height != 1 || blk.Leader != 0 {
		t.Fatalf("block fields wrong: %+v", blk)
	}
	// Every other node validates and reconstructs the same content.
	var wantTxs int
	for n := 1; n < 4; n++ {
		missing, err := r.pools[n].ValidatePredisBlock(blk, crypto.ZeroHash, prev)
		if err != nil || missing != nil {
			t.Fatalf("node %d validate: %v (missing %v)", n, err, missing)
		}
		bundles := r.pools[n].BlockBundles(blk, prev)
		txs := BlockTxs(bundles)
		if wantTxs == 0 {
			wantTxs = len(txs)
		} else if len(txs) != wantTxs {
			t.Fatalf("node %d reconstructed %d txs, want %d (Theorem 3.3)", n, len(txs), wantTxs)
		}
		r.pools[n].ApplyCommit(blk)
		if r.pools[n].ConfirmedHeight(0) != blk.Cuts[0].Height {
			t.Fatalf("node %d confirmed not advanced", n)
		}
		if r.pools[n].HasUnconfirmedPayload() {
			t.Fatalf("node %d still reports unconfirmed payload after full commit", n)
		}
	}
	if wantTxs != 12 { // 4 chains × 3 bundles × 1 tx
		t.Fatalf("block confirmed %d txs, want 12", wantTxs)
	}
}

func TestValidateRejectsBadBlocks(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	populate(r, 2)
	prev := ZeroCuts(4)
	blk, ok := r.pools[0].BuildPredisBlock(1, crypto.ZeroHash, prev, 0)
	if !ok {
		t.Fatal("no block")
	}

	t.Run("wrong parent", func(t *testing.T) {
		_, err := r.pools[1].ValidatePredisBlock(blk, crypto.HashBytes([]byte("x")), prev)
		if !errors.Is(err, ErrBlockParent) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad signature", func(t *testing.T) {
		bad := *blk
		bad.Sig = append([]byte(nil), blk.Sig...)
		bad.Sig[0] ^= 1
		if _, err := r.pools[1].ValidatePredisBlock(&bad, crypto.ZeroHash, prev); !errors.Is(err, ErrBlockSignature) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("tampered cut resigned by non-leader index", func(t *testing.T) {
		bad := *blk
		bad.Cuts = append([]Cut(nil), blk.Cuts...)
		bad.Cuts[0].Height++ // now head/hash invalid
		if _, err := r.pools[1].ValidatePredisBlock(&bad, crypto.ZeroHash, prev); err == nil {
			t.Fatal("tampered block accepted")
		}
	})
	t.Run("wrong cut count", func(t *testing.T) {
		bad := *blk
		bad.Cuts = blk.Cuts[:2]
		if _, err := r.pools[1].ValidatePredisBlock(&bad, crypto.ZeroHash, prev); !errors.Is(err, ErrBlockShape) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("regressed cut", func(t *testing.T) {
		higher := make([]uint64, 4)
		for i := range higher {
			higher[i] = blk.Cuts[i].Height + 5
		}
		if _, err := r.pools[1].ValidatePredisBlock(blk, crypto.ZeroHash, higher); !errors.Is(err, ErrBlockRegressed) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("banned producer", func(t *testing.T) {
		r2 := newRig(t, 4, 1, 50)
		populate(r2, 2)
		blk2, _ := r2.pools[0].BuildPredisBlock(1, crypto.ZeroHash, prev, 0)
		r2.pools[1].Ban(2, nil)
		if _, err := r2.pools[1].ValidatePredisBlock(blk2, crypto.ZeroHash, prev); !errors.Is(err, ErrBlockBanned) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestValidateReportsMissingBundles(t *testing.T) {
	r := newRig(t, 4, 1, 50)
	populate(r, 3)
	prev := ZeroCuts(4)
	blk, _ := r.pools[0].BuildPredisBlock(1, crypto.ZeroHash, prev, 0)

	// A fresh node with an empty mempool must report every chain missing.
	fresh := newRig(t, 4, 1, 50)
	missing, err := fresh.pools[3].ValidatePredisBlock(blk, crypto.ZeroHash, prev)
	if !errors.Is(err, ErrBlockMissing) {
		t.Fatalf("err = %v, want ErrBlockMissing", err)
	}
	if len(missing) != 4 {
		t.Fatalf("missing %d chains, want 4", len(missing))
	}
	for _, m := range missing {
		if m.From != 1 || m.To != blk.Cuts[m.Producer].Height {
			t.Fatalf("missing range %+v inconsistent with cut", m)
		}
	}
}

func TestValidateHeadMismatchAfterEquivocation(t *testing.T) {
	// Leader cuts its (honest) chain; a validator that somehow stored a
	// different bundle at the cut height must reject by head hash.
	r := newRig(t, 4, 1, 50)
	populate(r, 1)
	prev := ZeroCuts(4)
	blk, _ := r.pools[0].BuildPredisBlock(1, crypto.ZeroHash, prev, 0)

	// Build a divergent rig with the same signers but different transaction
	// content, so bundles (and head hashes) differ while signatures verify.
	r2 := newRig(t, 4, 1, 50)
	r2.seq = 10000
	populate(r2, 1)
	if _, err := r2.pools[1].ValidatePredisBlock(blk, crypto.ZeroHash, prev); err == nil {
		t.Fatal("block from a different universe accepted")
	}
}

func TestPredisBlockCodecAndSize(t *testing.T) {
	RegisterMessages()
	r := newRig(t, 4, 1, 50)
	populate(r, 2)
	blk, _ := r.pools[0].BuildPredisBlock(1, crypto.ZeroHash, ZeroCuts(4), 0)
	got, err := wire.Roundtrip(blk)
	if err != nil {
		t.Fatal(err)
	}
	gb := got.(*PredisBlock)
	if gb.Hash() != blk.Hash() {
		t.Fatal("roundtrip changed block hash")
	}
	if len(wire.Marshal(blk)) != blk.WireSize() {
		t.Fatalf("WireSize %d, marshaled %d", blk.WireSize(), len(wire.Marshal(blk)))
	}
}

// TestPredisBlockConstantSize reproduces the §III-F block-size claim: the
// proposal size depends only on n_c, not on the transaction volume it maps
// to. At n_c = 80 a Predis block stays in the low kilobytes even when it
// confirms 50,000 transactions.
func TestPredisBlockConstantSize(t *testing.T) {
	nc := 80
	suite := crypto.NewSimSuite(nc, 9)
	mp, err := NewMempool(Params{NC: nc, F: 26, BundleSize: 50, Signer: suite.Signer(0)})
	if err != nil {
		t.Fatal(err)
	}
	_ = mp
	cuts := make([]Cut, nc)
	for i := range cuts {
		cuts[i] = Cut{Height: 1000, Head: crypto.HashBytes([]byte{byte(i)})}
	}
	blk := &PredisBlock{Height: 5, Leader: 0, Cuts: cuts, Sig: make([]byte, crypto.SignatureSize)}
	size := blk.WireSize()
	if size > 4096 {
		t.Fatalf("Predis block at n_c=80 is %d bytes; paper claims ~2.5 KB, ours must stay Θ(n_c)", size)
	}
	// Doubling the mapped transaction volume (higher cuts) must not change
	// the size at all.
	for i := range cuts {
		cuts[i].Height *= 2
	}
	blk2 := &PredisBlock{Height: 5, Leader: 0, Cuts: cuts, Sig: make([]byte, crypto.SignatureSize)}
	if blk2.WireSize() != size {
		t.Fatal("block size varied with transaction volume")
	}
}
