package core

import (
	"testing"
	"time"

	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/simnet"
	"predis/internal/types"
	"predis/internal/wire"
)

// predisNet wires NC bare Predis components (no consensus engine) into a
// simulated network so the data plane can be tested in isolation.
type predisNet struct {
	net   *simnet.Network
	peers []*Predis
}

func newPredisNet(t *testing.T, nc, f int, faults map[int]FaultMode) *predisNet {
	t.Helper()
	RegisterMessages()
	types.RegisterMessages()
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.UniformLatency(5 * time.Millisecond), Seed: 3,
	})
	suite := crypto.NewSimSuite(nc, 23)
	ids := make([]wire.NodeID, nc)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	pn := &predisNet{net: net}
	for i := 0; i < nc; i++ {
		fault := FaultNone
		if faults != nil {
			fault = faults[i]
		}
		p, err := NewPredis(Options{
			Params: Params{
				NC: nc, F: f, BundleSize: 10,
				BundleInterval: 10 * time.Millisecond,
				Signer:         suite.Signer(i),
			},
			Self:  wire.NodeID(i),
			Peers: ids,
			Fault: fault,
		})
		if err != nil {
			t.Fatal(err)
		}
		pn.peers = append(pn.peers, p)
		net.AddNode(wire.NodeID(i), p)
	}
	return pn
}

func (pn *predisNet) submit(node int, n int, base uint64) {
	for k := 0; k < n; k++ {
		pn.peers[node].SubmitTx(types.NewTransaction(500, base+uint64(k), 512, 0))
	}
}

var _ env.Handler = (*Predis)(nil)

func TestPredisBundleDissemination(t *testing.T) {
	pn := newPredisNet(t, 4, 1, nil)
	pn.net.Start()
	pn.submit(0, 25, 0) // 2 full bundles + 5 queued
	pn.net.Run(500 * time.Millisecond)
	for i, p := range pn.peers {
		if got := p.Mempool().Tips()[0]; got < 2 {
			t.Fatalf("node %d has chain-0 tip %d, want ≥ 2", i, got)
		}
	}
	produced, _, _ := pn.peers[0].Stats()
	if produced < 2 {
		t.Fatalf("producer made %d bundles", produced)
	}
	if pn.peers[0].QueueLen() != 0 {
		// The interval timer flushes the partial bundle.
		t.Fatalf("queue still holds %d txs after interval", pn.peers[0].QueueLen())
	}
}

func TestPredisFetchRepairsPartialSends(t *testing.T) {
	// Node 3 sends each bundle to only n_c−f−1 = 2 random peers (Fig. 6
	// case 2). The deprived peers must fetch the gaps and converge.
	pn := newPredisNet(t, 4, 1, map[int]FaultMode{3: FaultPartial})
	pn.net.Start()
	pn.submit(3, 50, 0)
	pn.submit(0, 10, 1000) // honest traffic keeps tips moving
	pn.net.Run(4 * time.Second)
	tip := pn.peers[3].Mempool().Tips()[3]
	if tip == 0 {
		t.Fatal("faulty producer made no bundles")
	}
	// The faulty chain emits continuously (heartbeats included), so honest
	// nodes trail its tip by the fetch round trip; without fetch repair
	// they would hold only ~2/3 of the chain (random 2-of-3 delivery).
	// Being within a small constant of the tip proves gaps were repaired.
	for i := 0; i < 3; i++ {
		got := pn.peers[i].Mempool().Tips()[3]
		if got+15 < tip {
			t.Fatalf("node %d only reached height %d of %d on the faulty chain", i, got, tip)
		}
	}
}

func TestPredisEvidencePropagation(t *testing.T) {
	pn := newPredisNet(t, 4, 1, nil)
	pn.net.Start()
	// Forge an equivocation by node 3's key and hand both bundles to node
	// 0 only; the ban must spread to every honest node via evidence.
	suite := crypto.NewSimSuite(4, 23)
	tips := make(TipList, 4)
	tips[3] = 1
	mk := func(base uint64) *Bundle {
		txs := []*types.Transaction{types.NewTransaction(9, base, 512, 0)}
		return PackBundle(suite.Signer(3), 3, nil, txs, tips)
	}
	pn.peers[0].Receive(3, &BundleMsg{Bundle: mk(1)})
	pn.peers[0].Receive(3, &BundleMsg{Bundle: mk(2)})
	pn.net.Run(time.Second)
	for i := 0; i < 3; i++ {
		if !pn.peers[i].Mempool().Banned(3) {
			t.Fatalf("node %d did not ban the equivocator", i)
		}
	}
}

func TestPredisBogusEvidenceIgnored(t *testing.T) {
	pn := newPredisNet(t, 4, 1, nil)
	pn.net.Start()
	suite := crypto.NewSimSuite(4, 23)
	tips := make(TipList, 4)
	b := PackBundle(suite.Signer(2), 2, nil, nil, tips)
	// Same header twice is not a conflict.
	pn.peers[0].Receive(1, &ConflictEvidence{A: b.Header, B: b.Header})
	pn.net.Run(100 * time.Millisecond)
	if pn.peers[0].Mempool().Banned(2) {
		t.Fatal("bogus evidence caused a ban")
	}
}

func TestPredisHeartbeatBundlesDriveTips(t *testing.T) {
	pn := newPredisNet(t, 4, 1, nil)
	pn.net.Start()
	// One burst of traffic at node 0, then silence: heartbeat bundles from
	// the others must still advertise receipt so a leader could cut.
	pn.submit(0, 10, 0)
	pn.net.Run(2 * time.Second)
	cuts := pn.peers[0].Mempool().CutChains(0, ZeroCuts(4))
	if cuts[0].Height == 0 {
		t.Fatal("chain 0 cannot be cut: tip exchange never happened")
	}
	// The network must quiesce once nothing is left to confirm: after one
	// commit-equivalent (ApplyCommit), heartbeats stop.
	blk, ok := pn.peers[0].Mempool().BuildPredisBlock(1, crypto.ZeroHash, ZeroCuts(4), 0)
	if !ok {
		t.Fatal("no block to build")
	}
	_ = blk
}

func TestPredisHasPendingWork(t *testing.T) {
	pn := newPredisNet(t, 4, 1, nil)
	pn.net.Start()
	if pn.peers[0].HasPendingWork() {
		t.Fatal("fresh node reports pending work")
	}
	pn.submit(0, 3, 0)
	if !pn.peers[0].HasPendingWork() {
		t.Fatal("queued txs not reported as pending work")
	}
}

func TestPredisSilentFaultProducesNothing(t *testing.T) {
	pn := newPredisNet(t, 4, 1, map[int]FaultMode{0: FaultSilent})
	pn.net.Start()
	pn.submit(0, 50, 0)
	pn.net.Run(time.Second)
	if produced, _, _ := pn.peers[0].Stats(); produced != 0 {
		t.Fatalf("silent node produced %d bundles", produced)
	}
	for i := 1; i < 4; i++ {
		if pn.peers[i].Mempool().Tips()[0] != 0 {
			t.Fatalf("node %d received bundles from the silent node", i)
		}
	}
}
