package core

import (
	"errors"
	"fmt"

	"predis/internal/crypto"
	"predis/internal/wire"
)

// AddResult describes the outcome of Mempool.AddBundle.
type AddResult int

// AddBundle outcomes.
const (
	// Added means the bundle extended its chain (and possibly linked
	// buffered descendants).
	Added AddResult = iota + 1
	// Duplicate means the bundle (or its height) was already present or
	// confirmed; nothing changed.
	Duplicate
	// Buffered means the bundle arrived ahead of a gap and waits for its
	// parent; the caller should fetch the missing range.
	Buffered
	// Conflicting means the bundle equivocates with a stored one; the
	// returned evidence must be broadcast and the producer is now banned.
	Conflicting
)

// Errors returned by AddBundle.
var (
	ErrUnknownProducer = errors.New("core: producer out of range")
	ErrBannedProducer  = errors.New("core: producer is banned")
	ErrBadSignature    = errors.New("core: bundle signature invalid")
	ErrBadBody         = errors.New("core: bundle body does not match header")
	ErrBadParent       = errors.New("core: bundle parent hash does not match chain")
	ErrBadTips         = errors.New("core: bundle tip list not monotone versus parent")
	ErrBadTipsLen      = errors.New("core: bundle tip list has wrong length")
)

// chain holds one producer's bundle chain: a contiguous run of bundles
// (base, tip] plus out-of-order descendants buffered by parent hash.
type chain struct {
	// base: all heights ≤ base have been pruned; bundles[0] has height
	// base+1.
	base    uint64
	bundles []*Bundle
	// confirmed is the highest height included in a committed block.
	confirmed uint64
	// buffered maps parentHash → bundle awaiting that parent.
	buffered map[crypto.Hash]*Bundle
}

func (c *chain) tip() uint64 { return c.base + uint64(len(c.bundles)) }

// at returns the bundle at the given height, or nil when outside (base, tip].
func (c *chain) at(h uint64) *Bundle {
	if h <= c.base || h > c.tip() {
		return nil
	}
	return c.bundles[h-c.base-1]
}

func (c *chain) tipHeader() *BundleHeader {
	if len(c.bundles) == 0 {
		return nil
	}
	return &c.bundles[len(c.bundles)-1].Header
}

// Mempool is a node's Predis mempool: NC parallel bundle chains plus the
// ban list. It is a passive data structure driven from the node's
// serialized executor; it performs no I/O.
type Mempool struct {
	params Params
	chains []*chain
	banned []bool
	// evidence keeps the first conflict evidence per banned producer so
	// it can be served to peers.
	evidence map[wire.NodeID]*ConflictEvidence
	// liveTxBundles counts unconfirmed non-empty bundles across all
	// non-banned chains; it backs HasUnconfirmedPayload.
	liveTxBundles int
	// onLink, when set, observes every bundle the moment it links into a
	// chain (including cascaded out-of-order arrivals). Multi-Zone's
	// distributor ships stripes from this hook.
	onLink func(*Bundle)
}

// SetOnLink installs the bundle-linked observer; pass nil to clear.
func (m *Mempool) SetOnLink(fn func(*Bundle)) { m.onLink = fn }

// NewMempool builds an empty mempool.
func NewMempool(params Params) (*Mempool, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	p := params.withDefaults()
	chains := make([]*chain, p.NC)
	for i := range chains {
		chains[i] = &chain{buffered: make(map[crypto.Hash]*Bundle)}
	}
	return &Mempool{
		params:   p,
		chains:   chains,
		banned:   make([]bool, p.NC),
		evidence: make(map[wire.NodeID]*ConflictEvidence),
	}, nil
}

// Params returns the mempool's configuration.
func (m *Mempool) Params() Params { return m.params }

// Tips returns this node's tip list: the highest contiguous bundle height
// held per chain.
func (m *Mempool) Tips() TipList {
	out := make(TipList, len(m.chains))
	for i, c := range m.chains {
		out[i] = c.tip()
	}
	return out
}

// Confirmed returns the confirmed height of each chain.
func (m *Mempool) Confirmed() []uint64 {
	out := make([]uint64, len(m.chains))
	for i, c := range m.chains {
		out[i] = c.confirmed
	}
	return out
}

// TipHeader returns the latest bundle header on a chain, or nil when the
// chain is empty.
func (m *Mempool) TipHeader(producer wire.NodeID) *BundleHeader {
	if int(producer) >= len(m.chains) {
		return nil
	}
	return m.chains[producer].tipHeader()
}

// Bundle returns the stored bundle at (producer, height), or nil.
func (m *Mempool) Bundle(producer wire.NodeID, height uint64) *Bundle {
	if int(producer) >= len(m.chains) {
		return nil
	}
	return m.chains[producer].at(height)
}

// Banned reports whether a producer is banned.
func (m *Mempool) Banned(producer wire.NodeID) bool {
	return int(producer) < len(m.banned) && m.banned[producer]
}

// Ban registers a producer in the ban list with the evidence that
// justifies it (may be nil when adopted from a peer's Predis-block
// rejection path).
func (m *Mempool) Ban(producer wire.NodeID, ev *ConflictEvidence) {
	if int(producer) >= len(m.banned) {
		return
	}
	if !m.banned[producer] {
		m.banned[producer] = true
		if ev != nil {
			m.evidence[producer] = ev
		}
		// Unconfirmed bundles on a banned chain can never commit; stop
		// counting them as pending work.
		c := m.chains[producer]
		for h := c.confirmed + 1; h <= c.tip(); h++ {
			if b := c.at(h); b != nil && b.Header.TxCount > 0 {
				m.liveTxBundles--
			}
		}
	}
}

// Unban removes a producer from the ban list (§III-E allows banned nodes
// to rejoin after a period).
func (m *Mempool) Unban(producer wire.NodeID) {
	if int(producer) < len(m.banned) {
		m.banned[producer] = false
		delete(m.evidence, producer)
	}
}

// Evidence returns stored conflict evidence for a producer, or nil.
func (m *Mempool) Evidence(producer wire.NodeID) *ConflictEvidence {
	return m.evidence[producer]
}

// MissingRange describes a gap the caller should fetch: bundles
// [From, To] on Producer's chain.
type MissingRange struct {
	Producer wire.NodeID
	From, To uint64
}

// AddBundle validates and stores a bundle (§III-A validity rules). On
// Conflicting, the returned evidence must be multicast; on Buffered, the
// returned MissingRange tells the caller what to fetch. The verify flag
// allows skipping signature/body checks for bundles this node produced
// itself.
func (m *Mempool) AddBundle(b *Bundle, verify bool) (AddResult, *ConflictEvidence, *MissingRange, error) {
	p := b.Header.Producer
	if int(p) >= len(m.chains) {
		return 0, nil, nil, fmt.Errorf("%w: %d", ErrUnknownProducer, p)
	}
	if m.banned[p] {
		return 0, nil, nil, ErrBannedProducer
	}
	if len(b.Header.Tips) != m.params.NC {
		return 0, nil, nil, ErrBadTipsLen
	}
	if b.Header.Height == 0 {
		return 0, nil, nil, fmt.Errorf("core: bundle height 0 invalid")
	}
	if verify {
		if !m.params.Signer.Verify(int(p), b.Header.Hash(), b.Header.Sig) {
			return 0, nil, nil, ErrBadSignature
		}
		if err := b.VerifyBody(); err != nil {
			return 0, nil, nil, fmt.Errorf("%w: %v", ErrBadBody, err)
		}
	}

	c := m.chains[p]
	h := b.Header.Height
	switch {
	case h <= c.tip():
		return m.checkExisting(c, b)
	case h == c.tip()+1:
		res, ev, err := m.link(c, b)
		if err != nil || res != Added {
			return res, ev, nil, err
		}
		// Cascade buffered descendants.
		for {
			next, ok := c.buffered[c.tipHeader().Hash()]
			if !ok {
				break
			}
			delete(c.buffered, c.tipHeader().Hash())
			if res2, _, err2 := m.link(c, next); err2 != nil || res2 != Added {
				break
			}
		}
		return Added, nil, nil, nil
	default: // gap: buffer and report what is missing
		c.buffered[b.Header.Parent] = b
		miss := &MissingRange{Producer: p, From: c.tip() + 1, To: h - 1}
		return Buffered, nil, miss, nil
	}
}

// checkExisting handles a bundle at or below the chain tip: duplicate or
// equivocation.
func (m *Mempool) checkExisting(c *chain, b *Bundle) (AddResult, *ConflictEvidence, *MissingRange, error) {
	existing := c.at(b.Header.Height)
	if existing == nil {
		// Below base: already confirmed and pruned. Treat as duplicate.
		return Duplicate, nil, nil, nil
	}
	if existing.Header.Hash() == b.Header.Hash() {
		return Duplicate, nil, nil, nil
	}
	if existing.Header.Parent == b.Header.Parent {
		// Equivocation: same parent, different header (§III-A). Ban and
		// return evidence.
		ev := &ConflictEvidence{A: existing.Header, B: b.Header}
		m.Ban(b.Header.Producer, ev)
		return Conflicting, ev, nil, nil
	}
	return 0, nil, nil, ErrBadParent
}

// link appends a bundle at exactly tip+1 after structural checks.
func (m *Mempool) link(c *chain, b *Bundle) (AddResult, *ConflictEvidence, error) {
	parent := c.tipHeader()
	if parent == nil {
		// First bundle we hold. If the chain was never pruned, require a
		// genesis (zero parent); after pruning we accept the next height
		// with any parent hash consistency left to the confirmed prefix.
		if c.base == 0 && !b.Header.Parent.IsZero() {
			return 0, nil, ErrBadParent
		}
	} else {
		if b.Header.Parent != parent.Hash() {
			return 0, nil, ErrBadParent
		}
		if !TipList(b.Header.Tips).AtLeast(parent.Tips) {
			return 0, nil, ErrBadTips
		}
	}
	c.bundles = append(c.bundles, b)
	if b.Header.TxCount > 0 {
		m.liveTxBundles++
	}
	if m.onLink != nil {
		m.onLink(b)
	}
	return Added, nil, nil
}

// HasUnconfirmedPayload reports whether any non-banned chain holds
// unconfirmed bundles that carry transactions. It backs the engines'
// leader-suspicion logic and the heartbeat-bundle rule.
func (m *Mempool) HasUnconfirmedPayload() bool { return m.liveTxBundles > 0 }

// MarkConfirmed advances a chain's confirmed height (called at commit) and
// prunes bundles deeper than KeepConfirmed below it.
func (m *Mempool) MarkConfirmed(producer wire.NodeID, height uint64) {
	c := m.chains[producer]
	if height > c.confirmed {
		c.confirmed = height
	}
	keep := uint64(m.params.KeepConfirmed)
	if c.confirmed > keep {
		newBase := c.confirmed - keep
		if newBase > c.base {
			drop := newBase - c.base
			if drop > uint64(len(c.bundles)) {
				drop = uint64(len(c.bundles))
				newBase = c.base + drop
			}
			c.bundles = append([]*Bundle(nil), c.bundles[drop:]...)
			c.base = newBase
		}
	}
}

// ConfirmedHeight returns the confirmed height of one chain.
func (m *Mempool) ConfirmedHeight(producer wire.NodeID) uint64 {
	return m.chains[producer].confirmed
}

// Bases returns each chain's pruning base: heights at or below the base
// have been discarded and can no longer be served to peers.
func (m *Mempool) Bases() []uint64 {
	out := make([]uint64, len(m.chains))
	for i, c := range m.chains {
		out[i] = c.base
	}
	return out
}

// FastForward advances the chains to a snapshot cut. For every producer
// whose cut lies beyond the locally held tip, the chain resets to an
// empty pruned state at the cut (base = confirmed = cut); chains already
// at or past the cut are only marked confirmed. A node whose downtime
// exceeded its peers' bundle retention uses this to resume from a recent
// block's cut heights instead of replaying bodies the network no longer
// holds (§III-D pruning: confirmed bundles eventually leave every hot
// store, exactly like a pruning full node's history gap).
func (m *Mempool) FastForward(cuts []uint64) {
	for i, c := range m.chains {
		if i >= len(cuts) {
			break
		}
		cut := cuts[i]
		if cut > c.tip() {
			// Unconfirmed payload bundles being skipped leave the pending
			// count (banned chains were already discounted by Ban).
			if !m.banned[i] {
				for h := c.confirmed + 1; h <= c.tip(); h++ {
					if b := c.at(h); b != nil && b.Header.TxCount > 0 {
						m.liveTxBundles--
					}
				}
			}
			c.bundles = nil
			c.base = cut
			for ph, b := range c.buffered {
				if b.Header.Height <= cut {
					delete(c.buffered, ph)
				}
			}
		}
		if cut > c.confirmed {
			c.confirmed = cut
		}
	}
}

// Range returns the bundles (from, to] on a chain if all are present,
// otherwise nil.
func (m *Mempool) Range(producer wire.NodeID, from, to uint64) []*Bundle {
	c := m.chains[producer]
	if from > to || to > c.tip() || from < c.base {
		return nil
	}
	out := make([]*Bundle, 0, to-from)
	for h := from + 1; h <= to; h++ {
		b := c.at(h)
		if b == nil {
			return nil
		}
		out = append(out, b)
	}
	return out
}

// BufferedCount returns how many out-of-order bundles are parked on a
// chain (diagnostics).
func (m *Mempool) BufferedCount(producer wire.NodeID) int {
	return len(m.chains[producer].buffered)
}

// TipMatrix assembles the tip-list matrix the cutting rule works from:
// row j is node j's claimed receipt heights. For peers it is the tip list
// of the latest bundle on their chain; for self it is the local tips. Rows
// for chains with no bundles yet are all zero.
func (m *Mempool) TipMatrix(self wire.NodeID) []TipList {
	rows := make([]TipList, m.params.NC)
	localTips := m.Tips()
	for j := range rows {
		if wire.NodeID(j) == self {
			rows[j] = localTips
			continue
		}
		if th := m.chains[j].tipHeader(); th != nil {
			row := th.Tips.Clone()
			// A producer trivially holds its own bundles up to its tip.
			if row[j] < th.Height {
				row[j] = th.Height
			}
			rows[j] = row
		} else {
			rows[j] = make(TipList, m.params.NC)
		}
	}
	return rows
}
