package crypto

import "testing"

func TestSignerSuites(t *testing.T) {
	suites := map[string]*SignerSuite{
		"ed25519": NewEd25519Suite(4, 10),
		"sim":     NewSimSuite(4, 10),
	}
	for name, suite := range suites {
		t.Run(name, func(t *testing.T) {
			if suite.Len() != 4 {
				t.Fatalf("Len = %d", suite.Len())
			}
			h := HashBytes([]byte("digest"))
			for i := 0; i < 4; i++ {
				s := suite.Signer(i)
				if s.Index() != i {
					t.Fatalf("Index = %d, want %d", s.Index(), i)
				}
				sig := s.Sign(h)
				if len(sig) != SignatureSize {
					t.Fatalf("signature size %d", len(sig))
				}
				// Every peer can verify.
				for j := 0; j < 4; j++ {
					if !suite.Signer(j).Verify(i, h, sig) {
						t.Fatalf("node %d cannot verify node %d", j, i)
					}
				}
				// Wrong signer index fails.
				if suite.Signer(0).Verify((i+1)%4, h, sig) {
					t.Fatal("signature verified under wrong index")
				}
				// Wrong digest fails.
				if suite.Signer(0).Verify(i, HashBytes([]byte("other")), sig) {
					t.Fatal("signature verified for wrong digest")
				}
				// Corrupted signature fails.
				bad := append([]byte(nil), sig...)
				bad[5] ^= 1
				if suite.Signer(0).Verify(i, h, bad) {
					t.Fatal("corrupted signature verified")
				}
				// Truncated signature fails.
				if suite.Signer(0).Verify(i, h, sig[:10]) {
					t.Fatal("short signature verified")
				}
			}
		})
	}
}

func TestSimSignerSeedIsolation(t *testing.T) {
	a := NewSimSigner(0, 1)
	b := NewSimSigner(0, 2)
	h := HashBytes([]byte("x"))
	if b.Verify(0, h, a.Sign(h)) {
		t.Fatal("signature verified across different suite seeds")
	}
}

func BenchmarkEd25519SignVerify(b *testing.B) {
	s := NewEd25519Suite(4, 1).Signer(0)
	h := HashBytes([]byte("digest"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sig := s.Sign(h)
		if !s.Verify(0, h, sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkSimSignVerify(b *testing.B) {
	s := NewSimSigner(0, 1)
	h := HashBytes([]byte("digest"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sig := s.Sign(h)
		if !s.Verify(0, h, sig) {
			b.Fatal("verify failed")
		}
	}
}
