package crypto

import (
	"bytes"
	"crypto/ed25519"
	"testing"
	"testing/quick"
)

func TestHashBytesMatchesConcat(t *testing.T) {
	a, b := []byte("hello "), []byte("world")
	whole := HashBytes(append(append([]byte{}, a...), b...))
	parts := HashConcat(a, b)
	if whole != parts {
		t.Fatalf("HashConcat mismatch: %s vs %s", whole, parts)
	}
}

func TestHashZero(t *testing.T) {
	if !ZeroHash.IsZero() {
		t.Fatal("ZeroHash must report IsZero")
	}
	if HashBytes(nil).IsZero() {
		t.Fatal("sha256 of empty input must not be the zero digest")
	}
}

func TestHashStrings(t *testing.T) {
	h := HashBytes([]byte("x"))
	if len(h.String()) != 64 {
		t.Fatalf("String length = %d", len(h.String()))
	}
	if len(h.Short()) != 8 {
		t.Fatalf("Short length = %d", len(h.Short()))
	}
	if h.String()[:8] != h.Short() {
		t.Fatal("Short must prefix String")
	}
}

func TestSignVerify(t *testing.T) {
	kp, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("a bundle header")
	sig := kp.Sign(msg)
	if !Verify(kp.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(kp.Public, []byte("tampered"), sig) {
		t.Fatal("signature over different message accepted")
	}
	sig[0] ^= 1
	if Verify(kp.Public, msg, sig) {
		t.Fatal("corrupted signature accepted")
	}
}

func TestVerifyMalformedInputs(t *testing.T) {
	kp := DeterministicKeyPair(1)
	h := HashBytes([]byte("m"))
	sig := kp.SignHash(h)
	if Verify(kp.Public[:10], h[:], sig) {
		t.Fatal("short public key accepted")
	}
	if Verify(kp.Public, h[:], sig[:10]) {
		t.Fatal("short signature accepted")
	}
	if !VerifyHash(kp.Public, h, sig) {
		t.Fatal("valid hash signature rejected")
	}
}

func TestDeterministicKeyPairStable(t *testing.T) {
	a, b := DeterministicKeyPair(7), DeterministicKeyPair(7)
	if !bytes.Equal(a.Public, b.Public) {
		t.Fatal("same seed must give same key")
	}
	c := DeterministicKeyPair(8)
	if bytes.Equal(a.Public, c.Public) {
		t.Fatal("different seeds must give different keys")
	}
}

func TestDeterministicCrossSigning(t *testing.T) {
	a, b := DeterministicKeyPair(1), DeterministicKeyPair(2)
	h := HashBytes([]byte("msg"))
	if VerifyHash(b.Public, h, a.SignHash(h)) {
		t.Fatal("signature by A verified under B's key")
	}
}

func TestKeyring(t *testing.T) {
	pairs, ring := DeterministicKeySet(4, 100)
	if ring.Len() != 4 {
		t.Fatalf("Len = %d", ring.Len())
	}
	h := HashBytes([]byte("block"))
	for i, p := range pairs {
		sig := p.SignHash(h)
		if !ring.VerifyAt(i, h, sig) {
			t.Fatalf("node %d signature rejected", i)
		}
		if ring.VerifyAt((i+1)%4, h, sig) {
			t.Fatalf("node %d signature accepted for wrong index", i)
		}
	}
	if ring.VerifyAt(-1, h, nil) || ring.VerifyAt(4, h, nil) {
		t.Fatal("out-of-range index must not verify")
	}
	if ring.Key(4) != nil || ring.Key(-1) != nil {
		t.Fatal("out-of-range key must be nil")
	}
}

func TestKeyringFromPublic(t *testing.T) {
	pairs, _ := DeterministicKeySet(2, 0)
	ring := NewKeyringFromPublic([]ed25519.PublicKey{pairs[0].Public, pairs[1].Public})
	h := HashBytes([]byte("m"))
	if !ring.VerifyAt(0, h, pairs[0].SignHash(h)) {
		t.Fatal("keyring from public keys failed verification")
	}
	if ring.VerifyAt(1, h, pairs[0].SignHash(h)) {
		t.Fatal("wrong index verified")
	}
}

func TestSignHashQuick(t *testing.T) {
	kp := DeterministicKeyPair(42)
	f := func(msg []byte) bool {
		h := HashBytes(msg)
		return VerifyHash(kp.Public, h, kp.SignHash(h))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func quickCfg() *quick.Config { return &quick.Config{MaxCount: 20} }
