package crypto

import "testing"

// TestHashBatchMatchesHashBytes: every slot must equal the per-element
// digest, for nil dst (allocated) and caller-provided dst (reused).
func TestHashBatchMatchesHashBytes(t *testing.T) {
	srcs := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("predis"),
		make([]byte, 4096),
	}
	got := HashBatch(nil, srcs)
	if len(got) != len(srcs) {
		t.Fatalf("HashBatch(nil) returned %d digests, want %d", len(got), len(srcs))
	}
	for i, s := range srcs {
		if got[i] != HashBytes(s) {
			t.Fatalf("digest %d differs from HashBytes", i)
		}
	}

	dst := make([]Hash, len(srcs))
	out := HashBatch(dst, srcs)
	if &out[0] != &dst[0] {
		t.Fatal("HashBatch allocated a new slice instead of filling the provided dst")
	}
	for i := range srcs {
		if out[i] != got[i] {
			t.Fatalf("digest %d differs between provided-dst and nil-dst paths", i)
		}
	}
}

// TestHashBatchEmpty: zero inputs yield a zero-length (possibly nil)
// result and touch nothing.
func TestHashBatchEmpty(t *testing.T) {
	if got := HashBatch(nil, nil); len(got) != 0 {
		t.Fatalf("HashBatch(nil, nil) returned %d digests, want 0", len(got))
	}
	dst := make([]Hash, 0, 4)
	if got := HashBatch(dst, [][]byte{}); len(got) != 0 {
		t.Fatalf("HashBatch(dst, empty) returned %d digests, want 0", len(got))
	}
}
