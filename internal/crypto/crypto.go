// Package crypto provides the signing and hashing primitives used across
// the framework: SHA-256 digests, ed25519 key pairs and signatures, and
// deterministic key generation for tests and simulations.
package crypto

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// HashSize is the size of a digest in bytes.
const HashSize = sha256.Size

// SignatureSize is the size of an ed25519 signature in bytes.
const SignatureSize = ed25519.SignatureSize

// PublicKeySize is the size of an ed25519 public key in bytes.
const PublicKeySize = ed25519.PublicKeySize

// Hash is a SHA-256 digest.
type Hash [HashSize]byte

// ZeroHash is the all-zero digest, used as the parent of genesis bundles and
// blocks.
var ZeroHash Hash

// HashBytes returns the SHA-256 digest of b.
func HashBytes(b []byte) Hash { return sha256.Sum256(b) }

// HashBatch digests every input into dst (dst[i] = SHA-256(srcs[i])) and
// returns dst, allocating it when nil. It is the batched kernel entry
// point for Merkle leaf hashing and speculative digest offload: one call
// per stripe set or transaction list instead of one call per element,
// and a natural unit for fork-join over a compute pool (each index
// writes only its own slot).
func HashBatch(dst []Hash, srcs [][]byte) []Hash {
	if dst == nil {
		dst = make([]Hash, len(srcs))
	}
	for i, s := range srcs {
		dst[i] = sha256.Sum256(s)
	}
	return dst
}

// HashConcat returns the SHA-256 digest of the concatenation of the parts
// without heap-materializing the concatenation. Short inputs — the
// Merkle leaf/node combiners that dominate the simulator's hashing
// profile are ≤ 65 bytes — take a stack-buffer fast path instead of
// allocating a sha256.New state per call; both paths digest the
// identical byte stream, so the result is unchanged.
func HashConcat(parts ...[]byte) Hash {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n <= 128 {
		var buf [128]byte
		i := 0
		for _, p := range parts {
			i += copy(buf[i:], p)
		}
		return sha256.Sum256(buf[:n])
	}
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// IsZero reports whether the hash is the zero digest.
func (h Hash) IsZero() bool { return h == ZeroHash }

// Short returns the first 4 bytes as hex, for logs.
func (h Hash) Short() string { return hex.EncodeToString(h[:4]) }

// String returns the full digest as hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// KeyPair bundles an ed25519 key pair.
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// GenerateKeyPair creates a fresh random key pair.
func GenerateKeyPair() (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("crypto: generate key: %w", err)
	}
	return &KeyPair{Public: pub, private: priv}, nil
}

// DeterministicKeyPair derives a key pair from a 64-bit seed. It is intended
// for tests and simulations where reproducibility matters; never use it with
// attacker-predictable seeds in production.
func DeterministicKeyPair(seed uint64) *KeyPair {
	var s [ed25519.SeedSize]byte
	binary.BigEndian.PutUint64(s[:8], seed)
	digest := sha256.Sum256(s[:])
	priv := ed25519.NewKeyFromSeed(digest[:])
	return &KeyPair{Public: priv.Public().(ed25519.PublicKey), private: priv}
}

// Sign signs msg with the private key.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// SignHash signs a digest.
func (k *KeyPair) SignHash(h Hash) []byte { return k.Sign(h[:]) }

// Verify reports whether sig is a valid signature of msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != PublicKeySize || len(sig) != SignatureSize {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// VerifyHash reports whether sig is a valid signature of digest h under pub.
func VerifyHash(pub ed25519.PublicKey, h Hash, sig []byte) bool {
	return Verify(pub, h[:], sig)
}

// Keyring maps node identifiers (dense indices) to public keys so any node
// can verify any peer's signatures. It is immutable after construction.
type Keyring struct {
	keys []ed25519.PublicKey
}

// NewKeyring builds a keyring from the public halves of the given pairs.
func NewKeyring(pairs []*KeyPair) *Keyring {
	keys := make([]ed25519.PublicKey, len(pairs))
	for i, p := range pairs {
		keys[i] = p.Public
	}
	return &Keyring{keys: keys}
}

// NewKeyringFromPublic builds a keyring from raw public keys.
func NewKeyringFromPublic(keys []ed25519.PublicKey) *Keyring {
	cp := make([]ed25519.PublicKey, len(keys))
	copy(cp, keys)
	return &Keyring{keys: cp}
}

// Len returns the number of keys in the ring.
func (r *Keyring) Len() int { return len(r.keys) }

// Key returns the public key for index i, or nil when out of range.
func (r *Keyring) Key(i int) ed25519.PublicKey {
	if i < 0 || i >= len(r.keys) {
		return nil
	}
	return r.keys[i]
}

// VerifyAt reports whether sig is a valid signature of digest h by node i.
func (r *Keyring) VerifyAt(i int, h Hash, sig []byte) bool {
	k := r.Key(i)
	if k == nil {
		return false
	}
	return VerifyHash(k, h, sig)
}

// DeterministicKeySet generates n deterministic key pairs seeded by base+i
// along with the matching keyring.
func DeterministicKeySet(n int, base uint64) ([]*KeyPair, *Keyring) {
	pairs := make([]*KeyPair, n)
	for i := range pairs {
		pairs[i] = DeterministicKeyPair(base + uint64(i))
	}
	return pairs, NewKeyring(pairs)
}
