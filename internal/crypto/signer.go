package crypto

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
)

// Signer abstracts over signature schemes so protocol engines can run with
// real ed25519 signatures or, for large parameter sweeps, a cheap
// hash-based stand-in that preserves signature *size* (and therefore
// bandwidth accounting) while skipping public-key CPU cost.
//
// Both implementations produce SignatureSize-byte signatures, so message
// WireSize is identical under either.
type Signer interface {
	// Index returns the signer's node index in the ring.
	Index() int
	// Sign produces a signature over the digest by this node.
	Sign(h Hash) []byte
	// Verify checks a signature over the digest by node idx.
	Verify(idx int, h Hash, sig []byte) bool
}

// Ed25519Signer signs with a real private key and verifies against a
// keyring. It is the default for correctness tests and the examples.
type Ed25519Signer struct {
	idx  int
	pair *KeyPair
	ring *Keyring
}

var _ Signer = (*Ed25519Signer)(nil)

// NewEd25519Signer builds a signer for node idx.
func NewEd25519Signer(idx int, pair *KeyPair, ring *Keyring) *Ed25519Signer {
	return &Ed25519Signer{idx: idx, pair: pair, ring: ring}
}

// Index implements Signer.
func (s *Ed25519Signer) Index() int { return s.idx }

// Sign implements Signer.
func (s *Ed25519Signer) Sign(h Hash) []byte { return s.pair.SignHash(h) }

// Verify implements Signer.
func (s *Ed25519Signer) Verify(idx int, h Hash, sig []byte) bool {
	return s.ring.VerifyAt(idx, h, sig)
}

// SimSigner is a simulation-only signature scheme: sig = H(secret(idx) ||
// digest) twice to fill 64 bytes. Every SimSigner sharing the same suite
// seed can verify every node's signatures, which models a PKI without
// public-key cost. It is NOT cryptographically secure against the simulated
// adversary and must never leave test/benchmark code; production paths use
// Ed25519Signer.
type SimSigner struct {
	idx  int
	seed uint64
}

var _ Signer = (*SimSigner)(nil)

// NewSimSigner builds a simulation signer for node idx under a suite seed.
func NewSimSigner(idx int, seed uint64) *SimSigner {
	return &SimSigner{idx: idx, seed: seed}
}

// Index implements Signer.
func (s *SimSigner) Index() int { return s.idx }

func (s *SimSigner) tag(idx int, h Hash) [SignatureSize]byte {
	var buf [8 + 8 + HashSize]byte
	binary.BigEndian.PutUint64(buf[0:], s.seed)
	binary.BigEndian.PutUint64(buf[8:], uint64(idx))
	copy(buf[16:], h[:])
	first := sha256.Sum256(buf[:])
	second := sha256.Sum256(first[:])
	var sig [SignatureSize]byte
	copy(sig[:32], first[:])
	copy(sig[32:], second[:])
	return sig
}

// Sign implements Signer.
func (s *SimSigner) Sign(h Hash) []byte {
	sig := s.tag(s.idx, h)
	return sig[:]
}

// Verify implements Signer.
func (s *SimSigner) Verify(idx int, h Hash, sig []byte) bool {
	if len(sig) != SignatureSize {
		return false
	}
	want := s.tag(idx, h)
	return subtle.ConstantTimeCompare(want[:], sig) == 1
}

// SignerSuite creates one signer per node. Kind selects the scheme:
// ed25519 signers share a deterministic keyring; sim signers share the
// seed.
type SignerSuite struct {
	signers []Signer
}

// NewEd25519Suite builds n ed25519 signers over a deterministic key set.
func NewEd25519Suite(n int, seed uint64) *SignerSuite {
	pairs, ring := DeterministicKeySet(n, seed)
	out := make([]Signer, n)
	for i := range out {
		out[i] = NewEd25519Signer(i, pairs[i], ring)
	}
	return &SignerSuite{signers: out}
}

// NewSimSuite builds n simulation signers sharing a suite seed.
func NewSimSuite(n int, seed uint64) *SignerSuite {
	out := make([]Signer, n)
	for i := range out {
		out[i] = NewSimSigner(i, seed)
	}
	return &SignerSuite{signers: out}
}

// Signer returns the signer for node i.
func (s *SignerSuite) Signer(i int) Signer { return s.signers[i] }

// Len returns the number of signers.
func (s *SignerSuite) Len() int { return len(s.signers) }
