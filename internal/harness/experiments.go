package harness

import (
	"fmt"
	"sort"

	"predis/internal/compute"
	"predis/internal/stats"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks durations and sweep sizes so the whole suite runs in
	// roughly a minute; full mode approaches the paper's configurations.
	Quick bool
	// Seed drives every simulation in the experiment.
	Seed int64
	// Obs, when non-nil, receives the observability artifacts (tracer,
	// metrics registry, simnet sampler) from experiments that support
	// them; see ObsSink.
	Obs *ObsSink
	// Workers caps how many independent experiment points run
	// concurrently (wall-clock only; each point owns its own
	// simnet.Network, so per-point results and replay hashes are
	// unaffected). 0 or 1 means sequential.
	Workers int
	// Compute, when active, is the intra-point compute pool: pure
	// crypto/erasure kernels are offloaded to it and joined only at
	// deterministic points, so per-point results, terminal output, and
	// replay hashes are identical for any pool, including nil (fully
	// inline). It composes with Workers: concurrently running points
	// share the one pool.
	Compute *compute.Pool
	// Replay, when non-nil, is attached to the network of experiments
	// that support it (quickstart, recovery, latfloor): every delivery is
	// folded into the trace so external callers (predis-bench -replay,
	// tools/replaydiff) can assert cross-process hash equality. The
	// sweep experiments leave it untouched — their points run
	// concurrently under Workers, so a single shared trace would fold
	// deliveries in nondeterministic order. latfloor drops to sequential
	// execution when Replay is set, for the same reason.
	Replay *ReplayTrace
	// Stream switches mode-aware experiments (quickstart) to streaming
	// commit: producers expose running bundle-chain cursors, consensus
	// orders cursor advances, distribution starts speculatively at seal
	// time, and execution merges per bundle. Off (the default), every
	// experiment is byte-for-byte its historical block-mode self.
	// Experiments that contrast both modes themselves (latfloor) ignore
	// this flag.
	Stream bool
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// Experiment regenerates one figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) ([]*stats.Table, error)
}

// Registry lists every experiment, in figure order.
func Registry() []Experiment {
	return []Experiment{
		{"quickstart", "Quickstart: P-HS + Multi-Zone pipeline with per-stage latency breakdown", Quickstart},
		{"fig4a", "Fig. 4(a): PBFT vs P-PBFT, bundle/batch sizes (WAN, nc=4)", Fig4a},
		{"fig4b", "Fig. 4(b): HotStuff vs P-HS, bundle/batch sizes (WAN, nc=4)", Fig4b},
		{"fig4c", "Fig. 4(c): PBFT vs P-PBFT scalability (nc=4,8,16)", Fig4c},
		{"fig4d", "Fig. 4(d): HotStuff vs P-HS scalability (nc=4,8,16)", Fig4d},
		{"fig5wan", "Fig. 5(a,b): Predis vs Narwhal vs Stratus (WAN)", Fig5WAN},
		{"fig5lan", "Fig. 5(c,d): Predis vs Narwhal vs Stratus (LAN)", Fig5LAN},
		{"fig6", "Fig. 6: Predis under faults (nc=8)", Fig6},
		{"fig7", "Fig. 7: Multi-Zone vs star topology throughput", Fig7},
		{"fig8", "Fig. 8: block propagation latency (star/random/Multi-Zone)", Fig8},
		{"recovery", "Recovery: relayer & leader crash/restart — dip depth and time-to-recover", Recovery},
		{"byzantine", "Byzantine: data-plane adversaries — Eq. 4 delivery sweep, attack windows, self-healing", Byzantine},
		{"contention", "Contention: deterministic parallel execution vs serial under workload skew", Contention},
		// New experiments append at the end: quick_results.txt refreshes
		// add their sections without perturbing the existing ones.
		{"scale", "Scale: 10⁴–10⁵-node population — delivery latency and flow throughput, deep vs shallow trees", Scale},
		{"latfloor", "Latency floor: block vs streaming commit (P-PBFT, LAN+WAN) — confirmed latency, throughput parity, speculation waste", LatencyFloor},
	}
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
}
