package harness

import (
	"time"

	"predis/internal/core"
	"predis/internal/stats"
	"predis/internal/wire"
)

// Fig6 reproduces "Predis under Faults": nc = 8, with f ∈ {0, 1, 2}
// malicious nodes behaving per case 1 (silent: no bundles, no votes) or
// case 2 (refuse to vote, send bundles to only n_c−f−1 random peers).
// The paper reports case-1 throughput ≈ (8−f)/8 of normal and case-2
// throughput between case 1 and normal with higher latency.
func Fig6(o Options) ([]*stats.Table, error) {
	duration := 6 * time.Second
	offered := 16000.0
	if o.Quick {
		duration = 3 * time.Second
		offered = 10000
	}
	cases := []struct {
		name string
		mode core.FaultMode
	}{
		{"normal", core.FaultNone},
		{"case1-silent", core.FaultSilent},
		{"case2-partial", core.FaultPartial},
	}
	tput := &stats.Table{Title: "Fig.6 Predis under faults (nc=8) — throughput (tx/s) vs f", XLabel: "f"}
	lat := &stats.Table{Title: "Fig.6 Predis under faults (nc=8) — latency (ms) vs f", XLabel: "f"}
	// Flatten (case × f) into one worker-pool batch, remembering which
	// case/f each point belongs to so the series assemble in loop order.
	type pointKey struct {
		caseIdx int
		f       int
	}
	var keys []pointKey
	var specs []PointSpec
	for ci, c := range cases {
		for _, f := range []int{0, 1, 2} {
			if c.mode == core.FaultNone && f > 0 {
				continue // "normal" is a single reference point
			}
			faults := make(map[wire.NodeID]core.FaultMode)
			for k := 0; k < f; k++ {
				// Faulty nodes are non-leaders so throughput, not view
				// changes, dominates the measurement (the paper's cases
				// keep the leader honest).
				faults[wire.NodeID(7-k)] = c.mode
			}
			keys = append(keys, pointKey{ci, f})
			specs = append(specs, PointSpec{
				System:   SysPPBFT,
				NC:       8,
				F:        2,
				Offered:  offered,
				Clients:  8,
				Duration: duration,
				Seed:     o.seed(),
				Faults:   faults,
				Compute:  o.Compute,
			})
		}
	}
	results, err := RunPoints(specs, o.workers())
	if err != nil {
		return nil, err
	}
	for ci, c := range cases {
		ts := &stats.Series{Name: c.name}
		ls := &stats.Series{Name: c.name}
		for i, k := range keys {
			if k.caseIdx != ci {
				continue
			}
			res := results[i]
			ts.Add(float64(k.f), res.Throughput)
			ls.Add(float64(k.f), float64(res.Latency.Mean)/float64(time.Millisecond))
		}
		tput.Series = append(tput.Series, ts)
		lat.Series = append(lat.Series, ls)
	}
	return []*stats.Table{tput, lat}, nil
}
