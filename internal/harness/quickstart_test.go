package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"predis/internal/obs"
)

// TestQuickstartAllStagesFire runs the quickstart deployment and asserts
// every pipeline stage recorded at least one span — the property the
// trace-smoke CI target also checks from the CLI side.
func TestQuickstartAllStagesFire(t *testing.T) {
	sink := &ObsSink{}
	tables, err := Quickstart(Options{Quick: true, Seed: 1, Obs: sink})
	if err != nil {
		t.Fatalf("quickstart: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2 (summary + stage breakdown)", len(tables))
	}
	if sink.Trace == nil || sink.Metrics == nil || sink.Sampler == nil {
		t.Fatalf("sink not populated: %+v", sink)
	}
	for _, stage := range obs.Stages() {
		if stage.Optional() {
			continue // mode-dependent (spec_distributed fires only in stream mode)
		}
		if s := sink.Trace.StageSummary(stage); s.Count == 0 {
			t.Errorf("stage %s recorded no spans", stage)
		}
	}
	// The exported Chrome trace parses and carries every stage name.
	var buf bytes.Buffer
	if err := sink.Trace.WriteChrome(&buf, sink.Sampler); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	for _, stage := range obs.Stages() {
		if stage.Optional() {
			continue
		}
		if name := stage.String(); !strings.Contains(buf.String(), `"`+name+`"`) {
			t.Errorf("chrome trace missing stage %q", name)
		}
	}
}

// TestQuickstartDeterministic asserts two same-seed quickstart runs
// produce byte-identical trace and metrics exports.
func TestQuickstartDeterministic(t *testing.T) {
	run := func() (string, string, string) {
		sink := &ObsSink{}
		if _, err := Quickstart(Options{Quick: true, Seed: 3, Obs: sink}); err != nil {
			t.Fatalf("quickstart: %v", err)
		}
		var trace, metrics, stages bytes.Buffer
		if err := sink.Trace.WriteChrome(&trace, sink.Sampler); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		if err := sink.Metrics.WriteCSV(&metrics); err != nil {
			t.Fatalf("metrics csv: %v", err)
		}
		if err := sink.Trace.WriteStageCSV(&stages); err != nil {
			t.Fatalf("stage csv: %v", err)
		}
		return trace.String(), metrics.String(), stages.String()
	}
	t1, m1, s1 := run()
	t2, m2, s2 := run()
	if t1 != t2 {
		t.Errorf("chrome traces differ between same-seed runs")
	}
	if m1 != m2 {
		t.Errorf("metrics CSVs differ between same-seed runs")
	}
	if s1 != s2 {
		t.Errorf("stage CSVs differ between same-seed runs")
	}
}
