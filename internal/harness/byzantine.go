package harness

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/faults"
	"predis/internal/multizone"
	"predis/internal/simnet"
	"predis/internal/stats"
	"predis/internal/types"
	"predis/internal/wire"
)

// This file is the Byzantine data-plane experiment: §IV-B's robustness
// analysis measured instead of assumed. Part one sweeps the malicious
// fraction f/N and the relayer redundancy n_zr and compares the measured
// stripe-delivery probability against Eq. 4's prediction. Part two opens
// scripted attack windows (stripe corruption, withholding, garbage
// frames, leader equivocation) over the full Multi-Zone deployment and
// measures the throughput dip, the time to recover, and the hardening
// counters (rejected stripes, refetches, quarantines, rewires, proven
// equivocations) while the blacklist heals the distribution tree.

// stripePusher sends one prepared stripe to a subscriber at a fixed
// virtual time; a fault schedule may tamper with it in flight.
type stripePusher struct {
	to  wire.NodeID
	msg *multizone.StripeMsg
	at  time.Duration
}

func (p *stripePusher) Start(ctx env.Context) {
	ctx.After(p.at, func() { ctx.Send(p.to, p.msg) })
}
func (p *stripePusher) Receive(from wire.NodeID, m wire.Message) {}

// stripeSink verifies arriving stripes exactly as a full node's receive
// path does: header signature first, then the Merkle proof.
type stripeSink struct {
	striper *multizone.Striper
	signer  crypto.Signer
	ok      bool
}

func (s *stripeSink) Start(ctx env.Context) {}
func (s *stripeSink) Receive(from wire.NodeID, m wire.Message) {
	sm, isStripe := m.(*multizone.StripeMsg)
	if !isStripe {
		return
	}
	if !s.signer.Verify(int(sm.Header.Producer), sm.Header.Hash(), sm.Header.Sig) {
		return
	}
	if s.striper.VerifyStripe(sm) == nil {
		s.ok = true
	}
}

// deliveryTrial runs one tiny simulation: nzr relayers each push the same
// stripe to one subscriber; each relayer is independently malicious
// (stripe-corrupting) with probability pc. It reports whether at least
// one stripe survived verification — Eq. 4's event.
func deliveryTrial(striper *multizone.Striper, signer crypto.Signer,
	msg *multizone.StripeMsg, nzr int, pc float64, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	net := simnet.New(simnet.Config{
		Latency: simnet.UniformLatency(time.Millisecond), Seed: seed,
	})
	sink := &stripeSink{striper: striper, signer: signer}
	const sinkID = wire.NodeID(99)
	net.AddNode(sinkID, sink)
	var actions []faults.Action
	for i := 0; i < nzr; i++ {
		id := wire.NodeID(10 + i)
		net.AddNode(id, &stripePusher{to: sinkID, msg: msg,
			at: time.Duration(i+1) * 5 * time.Millisecond})
		if rng.Float64() < pc {
			actions = append(actions, faults.CorruptStripe{Node: id, From: 0, To: time.Second})
		}
	}
	faults.Install(net, faults.Schedule{Seed: seed, Actions: actions})
	net.Start()
	net.Run(200 * time.Millisecond)
	return sink.ok
}

// byzDeliverySweep is part one: measured delivery probability across the
// (f/N, n_zr) grid beside Eq. 4's prediction.
func byzDeliverySweep(o Options) (*stats.Table, error) {
	multizone.RegisterMessages()
	fracs := []float64{0, 0.125, 0.25, 0.375, 0.5}
	trials := 40
	if o.Quick {
		fracs = []float64{0, 0.25, 0.5}
		trials = 15
	}
	nzrs := []int{1, 2, 3}

	striper, err := multizone.NewStriper(4, 1)
	if err != nil {
		return nil, err
	}
	suite := crypto.NewSimSuite(4, uint64(o.seed())+7)
	txs := make([]*types.Transaction, 20)
	for i := range txs {
		txs[i] = types.NewTransaction(7, uint64(i), 256, time.Duration(i))
	}
	set, err := striper.Encode(txs)
	if err != nil {
		return nil, err
	}
	bundle := core.PackBundleStriped(suite.Signer(1), 1, nil, txs, make(core.TipList, 4), set.Root)
	msg, err := set.Stripe(bundle.Header, 0)
	if err != nil {
		return nil, err
	}

	table := &stats.Table{
		Title: "Byzantine: stripe delivery probability, measured vs Eq. 4 " +
			"(pc = f/N, delivery = 1 - pc^n_zr)",
		XLabel: "f/N",
	}
	for _, nzr := range nzrs {
		measured := &stats.Series{Name: fmt.Sprintf("measured n_zr=%d", nzr)}
		predicted := &stats.Series{Name: fmt.Sprintf("eq4 n_zr=%d", nzr)}
		for fi, frac := range fracs {
			okCount := 0
			for tr := 0; tr < trials; tr++ {
				seed := o.seed()*1_000_003 + int64(nzr)*10_007 + int64(fi)*101 + int64(tr)
				if deliveryTrial(striper, suite.Signer(0), msg, nzr, frac, seed) {
					okCount++
				}
			}
			got := float64(okCount) / float64(trials)
			want := multizone.DeliveryProbability(frac, nzr)
			if math.Abs(got-want) > 0.25 {
				return nil, fmt.Errorf("byzantine: delivery probability off Eq. 4 at f/N=%.3f n_zr=%d: measured %.3f, predicted %.3f",
					frac, nzr, got, want)
			}
			measured.Add(frac, got)
			predicted.Add(frac, want)
		}
		table.Series = append(table.Series, measured, predicted)
	}
	return table, nil
}

// Byzantine is the data-plane adversary experiment. Beside the Eq. 4
// sweep it opens one attack window per adversary kind over the Fig. 7
// deployment and requires the hardening machinery to both detect the
// attack (nonzero counters of the right kind) and outrun it: committed
// throughput must return to within 5% of the pre-attack baseline before
// the run ends.
func Byzantine(o Options) ([]*stats.Table, error) {
	sweep, err := byzDeliverySweep(o)
	if err != nil {
		return nil, err
	}

	spec := recoverySpec{
		nc: 4, f: 1, zones: 2, perZone: 5,
		offered: 6000, duration: 16 * time.Second,
		bucket:    500 * time.Millisecond,
		seed:      o.seed(),
		crashFrom: 6 * time.Second, crashTo: 9 * time.Second,
		pool: o.Compute,
	}
	if o.Quick {
		spec.perZone = 4
		spec.offered = 3000
		spec.duration = 12 * time.Second
		spec.crashFrom, spec.crashTo = 4*time.Second, 6*time.Second
	}
	warm := time.Duration(spec.zones*spec.perZone)*20*time.Millisecond + 700*time.Millisecond
	relayer := wire.NodeID(100) // first joiner of zone 0: claims stripes, relays
	suite := crypto.NewSimSuite(spec.nc, uint64(spec.seed)+7)

	scenarios := []struct {
		name      string
		consensus bool // observe consensus commits instead of zone completions
		starve    int
		actions   []faults.Action
		check     func(recoveryResult) error
	}{
		{
			name: "corrupt-stripes",
			actions: []faults.Action{faults.CorruptStripe{
				Node: relayer, From: spec.crashFrom, To: spec.crashTo}},
			check: func(r recoveryResult) error {
				if r.rejected == 0 || r.refetches == 0 || r.quarantines == 0 {
					return fmt.Errorf("corruption went unpunished: rejected=%d refetches=%d quarantines=%d",
						r.rejected, r.refetches, r.quarantines)
				}
				return nil
			},
		},
		{
			name:   "withhold-stripes",
			starve: 3,
			actions: []faults.Action{faults.WithholdStripes{
				Node: relayer, From: spec.crashFrom, To: spec.crashTo}},
			check: func(r recoveryResult) error {
				if r.rewires == 0 {
					return fmt.Errorf("starved subscribers never rewired")
				}
				return nil
			},
		},
		{
			name: "garbage-wire",
			actions: []faults.Action{faults.GarbageWire{
				Node: relayer, From: spec.crashFrom, To: spec.crashTo}},
			check: func(r recoveryResult) error {
				if r.undecodable == 0 {
					return fmt.Errorf("garbage frames were not counted as undecodable drops")
				}
				return nil
			},
		},
		{
			name:      "equivocate-leader",
			consensus: true,
			actions: []faults.Action{faults.EquivocateLeader{
				Node: 0, Signer: suite.Signer(0),
				Victims: []wire.NodeID{2, 3},
				From:    spec.crashFrom, To: spec.crashTo}},
			check: func(r recoveryResult) error {
				if r.equivocations == 0 {
					return fmt.Errorf("equivocating leader never proven")
				}
				return nil
			},
		},
	}

	timeline := &stats.Table{
		Title:  "Byzantine: committed throughput (tx/s) per 500ms bucket around the attack window",
		XLabel: "t(s)",
	}
	summary := &stats.Table{
		Title: "Byzantine summary (rows: 1=baseline tx/s, 2=dip floor tx/s, " +
			"3=dip depth %, 4=time-to-recover ms, 5=post-attack tx/s as % of baseline)",
		XLabel: "row",
	}
	counters := &stats.Table{
		Title: "Byzantine hardening counters (rows: 1=stripes rejected, 2=refetches, " +
			"3=quarantines, 4=rewires, 5=undecodable frames, 6=proven equivocations)",
		XLabel: "row",
	}
	for _, sc := range scenarios {
		s := spec
		s.victimConsensus = sc.consensus
		s.actions = sc.actions
		s.starveRewire = sc.starve
		s.trace = o.Replay // scenarios run sequentially: folding all is deterministic
		res, err := runRecovery(s)
		if err != nil {
			return nil, fmt.Errorf("byzantine %s: %w", sc.name, err)
		}
		if res.liveHead == 0 {
			return nil, fmt.Errorf("byzantine %s: cluster made no progress", sc.name)
		}
		if err := sc.check(res); err != nil {
			return nil, fmt.Errorf("byzantine %s: %w", sc.name, err)
		}

		ts := &stats.Series{Name: sc.name}
		for i, v := range res.buckets {
			end := time.Duration(i+1) * s.bucket
			if end > s.duration {
				break
			}
			ts.Add(end.Seconds(), v/s.bucket.Seconds())
		}
		timeline.Series = append(timeline.Series, ts)

		baseline, floor, dip, ttr := recoveryMetrics(res.buckets, s.bucket, warm, s.crashFrom, s.crashTo)
		if baseline <= 0 {
			return nil, fmt.Errorf("byzantine %s: no pre-attack baseline", sc.name)
		}
		// Self-healing acceptance: committed throughput after the window
		// (skipping one settle bucket) must come back to within 5% of the
		// pre-attack baseline.
		var tailSum float64
		tailN := 0
		for i := range res.buckets {
			start := time.Duration(i) * s.bucket
			end := start + s.bucket
			if start >= s.crashTo+s.bucket && end <= s.duration {
				tailSum += res.buckets[i] / s.bucket.Seconds()
				tailN++
			}
		}
		if tailN == 0 {
			return nil, fmt.Errorf("byzantine %s: no post-attack buckets", sc.name)
		}
		tailPct := 100 * (tailSum / float64(tailN)) / baseline
		if tailPct < 95 {
			return nil, fmt.Errorf("byzantine %s: throughput stuck at %.1f%% of baseline after the attack window",
				sc.name, tailPct)
		}

		sum := &stats.Series{Name: sc.name}
		sum.Add(1, baseline)
		sum.Add(2, floor)
		sum.Add(3, dip)
		sum.Add(4, ttr)
		sum.Add(5, tailPct)
		summary.Series = append(summary.Series, sum)

		cs := &stats.Series{Name: sc.name}
		cs.Add(1, float64(res.rejected))
		cs.Add(2, float64(res.refetches))
		cs.Add(3, float64(res.quarantines))
		cs.Add(4, float64(res.rewires))
		cs.Add(5, float64(res.undecodable))
		cs.Add(6, float64(res.equivocations))
		counters.Series = append(counters.Series, cs)
	}
	return []*stats.Table{sweep, timeline, summary, counters}, nil
}
