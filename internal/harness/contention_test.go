package harness

import (
	"fmt"
	"sort"
	"testing"

	"predis/internal/compute"
	"predis/internal/workload"
)

// contentionOnce runs one small contention deployment (skewed semantic
// workload, parallel committer) on a pool of the given worker count and
// returns the replay digest plus a rendering of every execution-visible
// output: per-height state roots, agreement flags, and the observer
// machine's counters.
func contentionOnce(t *testing.T, workers int, serial bool) (string, string) {
	t.Helper()
	pool := compute.NewPool(workers)
	defer pool.Close()
	tr := NewReplayTrace()
	res, err := runContention(Options{Quick: true, Seed: 11, Compute: pool, Replay: tr},
		workload.ZipfConfig{
			Accounts: 128, Theta: 0.9, HotFrac: 0.2, RMWFrac: 0.2,
			Amount: contentionAmount, Seed: 11,
		}, serial)
	if err != nil {
		t.Fatal(err)
	}
	heights := make([]uint64, 0, len(res.roots))
	for h := range res.roots {
		heights = append(heights, h)
	}
	sort.Slice(heights, func(i, j int) bool { return heights[i] < heights[j] })
	state := fmt.Sprintf("tps=%.1f agree=%v ledger=%v stats=%+v\n",
		res.tps, res.rootsAgree, res.ledgerOK, res.stats)
	for _, h := range heights {
		root := res.roots[h]
		state += fmt.Sprintf("%d:%x\n", h, root[:8])
	}
	return tr.Sum(), state
}

// TestContentionWorkersInvariant pins the executor's end-to-end
// determinism inside the full deployment: replay digest, per-height
// state roots, abort counts, and level shape are byte-identical for
// worker counts 0, 1, and 4.
func TestContentionWorkersInvariant(t *testing.T) {
	h0, s0 := contentionOnce(t, 0, false)
	for _, w := range []int{1, 4} {
		h, s := contentionOnce(t, w, false)
		if h != h0 {
			t.Fatalf("workers=%d replay digest diverged: %s vs %s", w, h, h0)
		}
		if s != s0 {
			t.Fatalf("workers=%d execution state diverged:\n  inline: %s\n  pooled: %s", w, s0, s)
		}
	}
}

// TestContentionSerialMatchesParallel pins the two-phase committer to
// the serial reference inside the full deployment: same seed, same
// committed sequence, identical per-height state roots.
func TestContentionSerialMatchesParallel(t *testing.T) {
	_, par := contentionOnce(t, 4, false)
	_, ser := contentionOnce(t, 0, true)
	// The serial run executes one tx per level, so the shape counters
	// (Levels/MaxWidth) legitimately differ; compare only the roots.
	cut := func(s string) string {
		i := 0
		for ; i < len(s); i++ {
			if s[i] == '\n' {
				break
			}
		}
		return s[i:]
	}
	if cut(par) != cut(ser) {
		t.Fatalf("serial committer diverged from parallel:\n  parallel: %s\n  serial: %s", par, ser)
	}
	if len(cut(par)) <= 1 {
		t.Fatal("run committed no blocks with roots")
	}
}

// TestContentionFindsParallelism asserts the leveler exposes width on a
// low-conflict workload: mean dependency-level width must exceed 1.
func TestContentionFindsParallelism(t *testing.T) {
	pool := compute.NewPool(0)
	res, err := runContention(Options{Quick: true, Seed: 3, Compute: pool},
		workload.ZipfConfig{Accounts: 4096, Theta: 0, RMWFrac: 0.1,
			Amount: contentionAmount, Seed: 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.rootsAgree || !res.ledgerOK {
		t.Fatalf("roots diverged: agree=%v ledger=%v", res.rootsAgree, res.ledgerOK)
	}
	if res.stats.MeanWidth() <= 1 {
		t.Fatalf("mean level width = %.2f, want > 1 on a conflict-free workload",
			res.stats.MeanWidth())
	}
	if res.stats.Txs == 0 {
		t.Fatal("no semantic transactions executed")
	}
}
