// Replay-hash backstop for the determinism contract enforced statically
// by predis-lint (tools/analyzers). The static suite forbids the usual
// nondeterminism sources (wall clocks, global rand, raw goroutines,
// map-order emission); this runtime check closes the loop: two runs of
// the same experiment with the same seed must produce byte-identical
// delivery traces. Any nondeterminism the analyzers cannot see — a new
// dependency, unsafe tricks, scheduler leakage — shows up here as a
// hash mismatch.
package harness

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"time"

	"predis/internal/simnet"
	"predis/internal/wire"
)

// ReplayTrace folds every simnet delivery into a running SHA-256. The
// digest covers (from, to, message type, wire size, virtual delivery
// time), so two runs agree iff they delivered the same messages in the
// same order at the same virtual instants.
type ReplayTrace struct {
	h hash.Hash
	n uint64
}

// NewReplayTrace returns an empty trace.
func NewReplayTrace() *ReplayTrace {
	return &ReplayTrace{h: sha256.New()}
}

// Attach installs the trace on net, chaining any OnDeliver hook already
// present so observation stays composable.
func (t *ReplayTrace) Attach(net *simnet.Network) {
	prev := net.OnDeliver
	net.OnDeliver = func(from, to wire.NodeID, m wire.Message, at time.Time) {
		t.record(from, to, m, at)
		if prev != nil {
			prev(from, to, m, at)
		}
	}
}

func (t *ReplayTrace) record(from, to wire.NodeID, m wire.Message, at time.Time) {
	var buf [28]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(from))
	binary.LittleEndian.PutUint32(buf[4:], uint32(to))
	binary.LittleEndian.PutUint16(buf[8:], uint16(m.Type()))
	binary.LittleEndian.PutUint64(buf[10:], uint64(m.WireSize()))
	binary.LittleEndian.PutUint64(buf[18:], uint64(at.Sub(simnet.Epoch)))
	t.h.Write(buf[:])
	t.n++
}

// Sum returns the hex digest of everything recorded so far.
func (t *ReplayTrace) Sum() string {
	return hex.EncodeToString(t.h.Sum(nil))
}

// Deliveries returns how many deliveries were folded in.
func (t *ReplayTrace) Deliveries() uint64 { return t.n }
