package harness

import (
	"testing"
)

// TestLatencyFloorHeadline pins the PR's headline claim on the quick
// grid: on LAN at equal offered load, streaming commit cuts mean and p99
// confirmed latency by at least 40% versus block mode, with committed
// throughput within 5%. The simulation is virtual-time deterministic, so
// these are exact regression bounds, not flaky wall-clock measurements.
func TestLatencyFloorHeadline(t *testing.T) {
	tables, err := LatencyFloor(Options{Quick: true, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want 3 (LAN latency, WAN latency, parity)", len(tables))
	}
	lan := tables[0]
	series := make(map[string][]float64)
	var loads []float64
	for _, s := range lan.Series {
		ys := make([]float64, len(s.Points))
		for i, p := range s.Points {
			ys[i] = p.Y
		}
		series[s.Name] = ys
		if loads == nil {
			for _, p := range s.Points {
				loads = append(loads, p.X)
			}
		}
	}
	for _, stat := range []string{"mean", "p99"} {
		block, stream := series["block "+stat], series["stream "+stat]
		if len(block) == 0 || len(block) != len(stream) {
			t.Fatalf("LAN table missing %s series: %v", stat, lan.Series)
		}
		for i := range block {
			if cut := 1 - stream[i]/block[i]; cut < 0.40 {
				t.Errorf("LAN %s @ %.0f tx/s: stream %.1f ms vs block %.1f ms — cut %.1f%% < 40%%",
					stat, loads[i], stream[i], block[i], 100*cut)
			}
		}
	}

	parity := make(map[string][]float64)
	for _, s := range tables[2].Series {
		ys := make([]float64, len(s.Points))
		for i, p := range s.Points {
			ys[i] = p.Y
		}
		parity[s.Name] = ys
	}
	for _, net := range []string{"LAN", "WAN"} {
		block, stream := parity[net+" block tx/s"], parity[net+" stream tx/s"]
		for i := range block {
			if delta := stream[i]/block[i] - 1; delta > 0.05 || delta < -0.05 {
				t.Errorf("%s throughput @ %.0f tx/s: stream %.0f vs block %.0f — %.1f%% off parity",
					net, loads[i], stream[i], block[i], 100*delta)
			}
		}
	}
	// Fault-free runs speculate without waste: no proposal retractions.
	for _, net := range []string{"LAN", "WAN"} {
		for i, v := range parity[net+" stream retractions"] {
			if v != 0 {
				t.Errorf("%s @ %.0f tx/s: %v retractions in a fault-free run", net, loads[i], v)
			}
		}
	}
}
