package harness

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestReplayQuickstartDeterministic runs the quickstart-style experiment
// twice with the same seed and asserts the delivery traces — and the
// measured results — are byte-identical. This is the runtime backstop
// behind the predis-lint determinism analyzers: anything they cannot see
// statically (a wall clock smuggled through a new dependency, goroutine
// scheduling, map-order emission) shows up here as a hash mismatch.
func TestReplayQuickstartDeterministic(t *testing.T) {
	run := func() (string, uint64, string) {
		tr := NewReplayTrace()
		res, err := RunPoint(PointSpec{
			System:   SysPHS,
			NC:       4,
			Offered:  1000,
			Duration: 1500 * time.Millisecond,
			Seed:     42,
			Trace:    tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Sum(), tr.Deliveries(), fmt.Sprintf("%+v", res)
	}

	h1, n1, r1 := run()
	h2, n2, r2 := run()
	if n1 == 0 {
		t.Fatal("replay trace recorded no deliveries")
	}
	if h1 != h2 || n1 != n2 {
		t.Fatalf("same-seed runs diverged: %d deliveries %s vs %d deliveries %s",
			n1, h1, n2, h2)
	}
	if r1 != r2 {
		t.Fatalf("same-seed results diverged:\n  %s\n  %s", r1, r2)
	}
}

// replayHashOnce runs the canonical replay workload once and returns its
// delivery-trace digest (shared by the in-process and cross-process
// determinism tests).
func replayHashOnce(t *testing.T) (string, uint64) {
	t.Helper()
	tr := NewReplayTrace()
	if _, err := RunPoint(PointSpec{
		System:   SysPHS,
		NC:       4,
		Offered:  1000,
		Duration: 1500 * time.Millisecond,
		Seed:     42,
		Trace:    tr,
	}); err != nil {
		t.Fatal(err)
	}
	return tr.Sum(), tr.Deliveries()
}

// replayChildEnv marks a re-exec'd child process that should run the
// replay workload once and print its digest instead of the full test.
const replayChildEnv = "PREDIS_REPLAY_CHILD"

// TestReplayCrossProcessDeterministic re-executes the test binary twice
// — two separate OS processes, hence two different Go map-hash seeds and
// scheduler histories — and asserts both produce the same delivery-trace
// digest as an in-process run. This pins the strongest form of the
// determinism contract: simulations are byte-identical across process
// runs, not merely within one process.
func TestReplayCrossProcessDeterministic(t *testing.T) {
	if os.Getenv(replayChildEnv) == "1" {
		h, n := replayHashOnce(t)
		fmt.Printf("REPLAY %s %d\n", h, n)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	child := func() string {
		cmd := exec.Command(exe, "-test.run=^TestReplayCrossProcessDeterministic$", "-test.v")
		cmd.Env = append(os.Environ(), replayChildEnv+"=1")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("child run failed: %v\n%s", err, out)
		}
		for _, line := range strings.Split(string(out), "\n") {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "REPLAY "); ok {
				return rest
			}
		}
		t.Fatalf("child produced no REPLAY line:\n%s", out)
		return ""
	}
	h0, n0 := replayHashOnce(t)
	local := fmt.Sprintf("%s %d", h0, n0)
	c1 := child()
	c2 := child()
	if n0 == 0 {
		t.Fatal("replay trace recorded no deliveries")
	}
	if c1 != local || c2 != local {
		t.Fatalf("cross-process runs diverged:\n  in-process: %s\n  child 1:    %s\n  child 2:    %s",
			local, c1, c2)
	}
}

// TestReplayRecoveryDeterministic does the same for the crash-recovery
// experiment: the fault injector, catch-up protocol, and Multi-Zone
// relays must all be replay-deterministic under a fixed seed.
func TestReplayRecoveryDeterministic(t *testing.T) {
	run := func() (string, uint64, string) {
		tr := NewReplayTrace()
		res, err := runRecovery(recoverySpec{
			nc: 4, f: 1, zones: 2, perZone: 3,
			offered: 1500, duration: 6 * time.Second,
			bucket: 500 * time.Millisecond, seed: 7,
			crashFrom: 2 * time.Second, crashTo: 3500 * time.Millisecond,
			victimConsensus: false,
			trace:           tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		state := fmt.Sprintf("buckets=%v trace=%q victim=%d live=%d catchingUp=%v",
			res.buckets, res.trace, res.victimHead, res.liveHead, res.catchingUp)
		return tr.Sum(), tr.Deliveries(), state
	}

	h1, n1, s1 := run()
	h2, n2, s2 := run()
	if n1 == 0 {
		t.Fatal("replay trace recorded no deliveries")
	}
	if h1 != h2 || n1 != n2 {
		t.Fatalf("same-seed recovery runs diverged: %d deliveries %s vs %d deliveries %s",
			n1, h1, n2, h2)
	}
	if s1 != s2 {
		t.Fatalf("same-seed recovery state diverged:\n  %s\n  %s", s1, s2)
	}
}
