package harness

import (
	"fmt"
	"testing"
	"time"
)

// TestReplayQuickstartDeterministic runs the quickstart-style experiment
// twice with the same seed and asserts the delivery traces — and the
// measured results — are byte-identical. This is the runtime backstop
// behind the predis-lint determinism analyzers: anything they cannot see
// statically (a wall clock smuggled through a new dependency, goroutine
// scheduling, map-order emission) shows up here as a hash mismatch.
func TestReplayQuickstartDeterministic(t *testing.T) {
	run := func() (string, uint64, string) {
		tr := NewReplayTrace()
		res, err := RunPoint(PointSpec{
			System:   SysPHS,
			NC:       4,
			Offered:  1000,
			Duration: 1500 * time.Millisecond,
			Seed:     42,
			Trace:    tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Sum(), tr.Deliveries(), fmt.Sprintf("%+v", res)
	}

	h1, n1, r1 := run()
	h2, n2, r2 := run()
	if n1 == 0 {
		t.Fatal("replay trace recorded no deliveries")
	}
	if h1 != h2 || n1 != n2 {
		t.Fatalf("same-seed runs diverged: %d deliveries %s vs %d deliveries %s",
			n1, h1, n2, h2)
	}
	if r1 != r2 {
		t.Fatalf("same-seed results diverged:\n  %s\n  %s", r1, r2)
	}
}

// TestReplayRecoveryDeterministic does the same for the crash-recovery
// experiment: the fault injector, catch-up protocol, and Multi-Zone
// relays must all be replay-deterministic under a fixed seed.
func TestReplayRecoveryDeterministic(t *testing.T) {
	run := func() (string, uint64, string) {
		tr := NewReplayTrace()
		res, err := runRecovery(recoverySpec{
			nc: 4, f: 1, zones: 2, perZone: 3,
			offered: 1500, duration: 6 * time.Second,
			bucket: 500 * time.Millisecond, seed: 7,
			crashFrom: 2 * time.Second, crashTo: 3500 * time.Millisecond,
			victimConsensus: false,
			trace:           tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		state := fmt.Sprintf("buckets=%v trace=%q victim=%d live=%d catchingUp=%v",
			res.buckets, res.trace, res.victimHead, res.liveHead, res.catchingUp)
		return tr.Sum(), tr.Deliveries(), state
	}

	h1, n1, s1 := run()
	h2, n2, s2 := run()
	if n1 == 0 {
		t.Fatal("replay trace recorded no deliveries")
	}
	if h1 != h2 || n1 != n2 {
		t.Fatalf("same-seed recovery runs diverged: %d deliveries %s vs %d deliveries %s",
			n1, h1, n2, h2)
	}
	if s1 != s2 {
		t.Fatalf("same-seed recovery state diverged:\n  %s\n  %s", s1, s2)
	}
}
