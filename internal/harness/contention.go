package harness

import (
	"encoding/binary"
	"fmt"
	"time"

	"predis/internal/crypto"
	"predis/internal/exec"
	"predis/internal/ledger"
	"predis/internal/multizone"
	"predis/internal/node"
	"predis/internal/simnet"
	"predis/internal/stats"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

// execGenesis is the genesis balance of every account in the harness's
// execution-plane deployments. Against contentionAmount-sized transfers
// it leaves room for a hot account to drain into deterministic aborts
// within a run.
const execGenesis = 1000

// contentionAmount is the per-transfer amount (and RMW delta).
const contentionAmount = 50

// contentionSpec is one point of the contention sweep: a skew shape for
// the semantic workload.
type contentionSpec struct {
	name string
	zipf workload.ZipfConfig
}

// contentionScenarios sweeps conflict rate from conflict-free to a
// single global hotspot.
func contentionScenarios(seed int64) []contentionSpec {
	return []contentionSpec{
		{"uniform-4096", workload.ZipfConfig{
			Accounts: 4096, Theta: 0, RMWFrac: 0.1,
			Amount: contentionAmount, Seed: uint64(seed)}},
		{"zipf0.9-1024", workload.ZipfConfig{
			Accounts: 1024, Theta: 0.9, RMWFrac: 0.1,
			Amount: contentionAmount, Seed: uint64(seed)}},
		{"zipf1.2-256", workload.ZipfConfig{
			Accounts: 256, Theta: 1.2, RMWFrac: 0.2,
			Amount: contentionAmount, Seed: uint64(seed)}},
		{"hotspot-64", workload.ZipfConfig{
			Accounts: 64, Theta: 0.9, HotFrac: 0.35, RMWFrac: 0.2,
			Amount: contentionAmount, Seed: uint64(seed)}},
	}
}

// contentionResult is one run's outcome.
type contentionResult struct {
	// tps is consensus-side committed throughput.
	tps float64
	// stats aggregates the observer machine's lifetime counters.
	stats exec.Stats
	// roots maps height → state root, recorded from every executing
	// node; rootsAgree is false if any two nodes disagreed at a height.
	roots      map[uint64]crypto.Hash
	rootsAgree bool
	// ledgerOK reports that every persisted ledger entry's StateRoot
	// matches the root the executors computed at that height.
	ledgerOK bool
}

// runContention runs one contention deployment: a P-HS consensus group
// whose four nodes each execute committed blocks on their own account
// machine, plus a small zone of full nodes — one persisting the chain
// with state roots — under a skewed semantic workload. serial selects
// the reference serial committer on every node.
func runContention(o Options, zipf workload.ZipfConfig, serial bool) (contentionResult, error) {
	nc, f := 4, 1
	perZone := 2
	offered := 3000.0
	duration := 5 * time.Second
	if o.Quick {
		offered = 1200
		duration = 2 * time.Second
	}
	seed := o.seed()

	node.RegisterAllMessages()
	multizone.RegisterMessages()

	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: seed,
		Compute: o.Compute,
	})
	if o.Replay != nil {
		o.Replay.Attach(net)
	}

	res := contentionResult{
		roots:      make(map[uint64]crypto.Hash),
		rootsAgree: true,
		ledgerOK:   true,
	}
	// recordRoot cross-checks every executing node's root at a height:
	// the committed sequence is deterministic, so disagreement means the
	// execution plane diverged.
	recordRoot := func(r exec.Result) {
		if prev, ok := res.roots[r.Height]; ok {
			if prev != r.StateRoot {
				res.rootsAgree = false
			}
			return
		}
		res.roots[r.Height] = r.StateRoot
	}

	joinWindow := time.Duration(perZone)*20*time.Millisecond + 200*time.Millisecond
	horizon := joinWindow + duration
	warm := simnet.Epoch.Add(joinWindow + duration/4)
	end := simnet.Epoch.Add(horizon)
	col := workload.NewCollector(warm, end)

	suite := crypto.NewSimSuite(nc, uint64(seed)+7)
	striper, err := multizone.NewStriper(nc, f)
	if err != nil {
		return res, err
	}

	machines := make([]*exec.Machine, nc)
	for i := 0; i < nc; i++ {
		i := i
		machines[i] = exec.NewMachine(execGenesis)
		host, err := multizone.NewConsensusHost(multizone.HostConfig{
			NC: nc, F: f, Self: wire.NodeID(i),
			Signer:         suite.Signer(i),
			Engine:         node.EngineHotStuff,
			BundleSize:     50,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    2 * time.Second,
			Striper:        striper,
			ReplyToClients: true,
			Executor:       machines[i],
			ExecSerial:     serial,
			OnExecute:      recordRoot,
			OnCommit: func(height uint64, txs int) {
				if i == 0 {
					col.RecordNodeCommit(net.Now(), txs)
				}
			},
		})
		if err != nil {
			return res, err
		}
		net.AddNode(wire.NodeID(i), host)
	}

	// One small zone of full nodes; the first persists the chain (with
	// state roots) to an in-memory ledger and executes on its own
	// machine, so the persisted chain is cross-checked against the
	// consensus-side executors.
	led := ledger.New()
	fullID := func(k int) wire.NodeID { return wire.NodeID(100 + k) }
	for k := 0; k < perZone; k++ {
		peers := make([]wire.NodeID, 0, perZone-1)
		for p := 0; p < perZone; p++ {
			if p != k {
				peers = append(peers, fullID(p))
			}
		}
		cfg := multizone.FullNodeConfig{
			Self: fullID(k), Zone: 0, JoinSeq: uint64(k),
			NC: nc, F: f,
			Striper:       striper,
			Signer:        suite.Signer(0),
			ZonePeers:     peers,
			AliveInterval: 300 * time.Millisecond,
			Executor:      exec.NewMachine(execGenesis),
			ExecSerial:    serial,
			OnExecute:     recordRoot,
		}
		if k == 0 {
			cfg.Ledger = led
		}
		fn, err := multizone.NewFullNode(cfg)
		if err != nil {
			return res, err
		}
		net.AddNode(fullID(k), &multizone.Delayed{Inner: fn, Delay: time.Duration(k) * 20 * time.Millisecond})
	}

	targets := make([]wire.NodeID, nc)
	for i := range targets {
		targets[i] = wire.NodeID(i)
	}
	ops := workload.NewZipfOps(zipf)
	clients := nc
	for k := 0; k < clients; k++ {
		net.AddNode(wire.NodeID(5000+k), workload.NewClient(workload.ClientConfig{
			Self:      wire.NodeID(5000 + k),
			Targets:   targets,
			Policy:    workload.RoundRobin,
			Rate:      offered / float64(clients),
			TxSize:    types.DefaultTxSize,
			F:         f,
			Epoch:     simnet.Epoch,
			GenStart:  simnet.Epoch.Add(joinWindow),
			GenStop:   end,
			Collector: col,
			Ops:       ops.Op,
		}))
	}

	net.Start()
	net.Run(horizon)

	res.tps = col.Throughput()
	res.stats = machines[0].Stats()
	for h := uint64(1); h <= uint64(led.Len()); h++ {
		e, err := led.Get(h)
		if err != nil {
			return res, err
		}
		if root, ok := res.roots[e.Height]; !ok || root != e.StateRoot {
			res.ledgerOK = false
		}
	}
	return res, nil
}

// Contention sweeps workload skew against the execution plane, running
// every scenario twice — once with the two-phase parallel committer and
// once with the serial reference — and cross-checks that both produce
// identical state roots at every height. The dependency-level width
// columns report the parallelism the leveler exposes (the meaningful
// measure of the Octopus-style committer even on a single-core host):
// conflict-free workloads collapse to one wide level per block, a
// global hotspot serializes into many narrow ones.
func Contention(o Options) ([]*stats.Table, error) {
	tbl := &stats.Table{
		Title: "Contention: parallel vs serial execution under skew (rows: " +
			"1=parallel tx/s, 2=serial tx/s, 3=mean level width, 4=max width, " +
			"5=abort %, 6=roots agree (1=yes), 7=state-root fingerprint)",
		XLabel: "row",
	}
	for _, spec := range contentionScenarios(o.seed()) {
		par, err := runContention(o, spec.zipf, false)
		if err != nil {
			return nil, fmt.Errorf("contention %s (parallel): %w", spec.name, err)
		}
		ser, err := runContention(o, spec.zipf, true)
		if err != nil {
			return nil, fmt.Errorf("contention %s (serial): %w", spec.name, err)
		}

		// The committed sequence is seed-determined and committer-
		// independent, so the serial run must reproduce the parallel
		// run's root at every common height.
		agree := par.rootsAgree && ser.rootsAgree && par.ledgerOK && ser.ledgerOK
		var lastRoot crypto.Hash
		var lastHeight uint64
		for h, root := range par.roots {
			sroot, ok := ser.roots[h]
			if ok && sroot != root {
				agree = false
			}
			if ok && h > lastHeight {
				lastHeight, lastRoot = h, root
			}
		}

		st := par.stats
		abortPct := 0.0
		if st.Txs > 0 {
			abortPct = 100 * float64(st.Aborted) / float64(st.Txs)
		}
		s := &stats.Series{Name: spec.name}
		s.Add(1, par.tps)
		s.Add(2, ser.tps)
		s.Add(3, st.MeanWidth())
		s.Add(4, float64(st.MaxWidth))
		s.Add(5, abortPct)
		if agree {
			s.Add(6, 1)
		} else {
			s.Add(6, 0)
		}
		s.Add(7, float64(binary.BigEndian.Uint32(lastRoot[:4])))
		tbl.Series = append(tbl.Series, s)
	}
	return []*stats.Table{tbl}, nil
}
