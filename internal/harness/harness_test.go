package harness

import (
	"strings"
	"testing"
	"time"

	"predis/internal/core"
	"predis/internal/stats"
	"predis/internal/wire"
)

func TestRunPointAllSystems(t *testing.T) {
	for _, sys := range []System{SysPBFT, SysPPBFT, SysHotStuff, SysPHS, SysNarwhal, SysStratus} {
		sys := sys
		t.Run(string(sys), func(t *testing.T) {
			res, err := RunPoint(PointSpec{
				System:   sys,
				NC:       4,
				Offered:  2000,
				Duration: 3 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Throughput <= 0 {
				t.Fatalf("%s: zero throughput", sys)
			}
			if res.Latency.Count == 0 {
				t.Fatalf("%s: no latency samples", sys)
			}
			t.Logf("%s: %.0f tx/s, lat=%v", sys, res.Throughput, res.Latency.Mean)
		})
	}
}

func TestRunPointUnknownSystem(t *testing.T) {
	if _, err := RunPoint(PointSpec{System: "bogus"}); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestRunPointWithFaults(t *testing.T) {
	res, err := RunPoint(PointSpec{
		System:   SysPPBFT,
		NC:       8,
		F:        2,
		Offered:  3000,
		Clients:  8,
		Duration: 3 * time.Second,
		Faults:   map[wire.NodeID]core.FaultMode{7: core.FaultSilent},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput with one silent node")
	}
}

func TestLoadSweepShape(t *testing.T) {
	tp, lat, err := LoadSweep(PointSpec{
		System: SysPPBFT, NC: 4, Duration: 2 * time.Second,
	}, []float64{1000, 3000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Points) != 2 || len(lat.Points) != 2 {
		t.Fatalf("sweep points: %d / %d", len(tp.Points), len(lat.Points))
	}
	if tp.Points[1].Y < tp.Points[0].Y {
		t.Log("note: throughput did not grow with load (may be saturated)")
	}
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 15 {
		t.Fatalf("registry has %d experiments, want 15", len(reg))
	}
	seen := make(map[string]bool)
	for _, e := range reg {
		if e.ID == "" || e.Run == nil || e.Title == "" {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if _, err := Lookup(e.ID); err != nil {
			t.Fatalf("Lookup(%s): %v", e.ID, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup of unknown id succeeded")
	}
}

// TestFig6Shape verifies the fault experiment's headline property at small
// scale: case-1 throughput with f silent nodes is close to (8−f)/8 of
// normal.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	normal, err := RunPoint(PointSpec{
		System: SysPPBFT, NC: 8, F: 2, Offered: 8000, Clients: 8, Duration: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	silent1, err := RunPoint(PointSpec{
		System: SysPPBFT, NC: 8, F: 2, Offered: 8000, Clients: 8, Duration: 4 * time.Second,
		Faults: map[wire.NodeID]core.FaultMode{7: core.FaultSilent},
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := silent1.Throughput / normal.Throughput
	t.Logf("normal=%.0f silent(f=1)=%.0f ratio=%.2f (paper predicts ≈ 7/8 = 0.875)", normal.Throughput, silent1.Throughput, ratio)
	if ratio < 0.6 || ratio > 1.05 {
		t.Fatalf("case-1 ratio %.2f far from (8-f)/8", ratio)
	}
}

func TestLatencyAtCoverage(t *testing.T) {
	delays := []time.Duration{
		5 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond,
	}
	cov := latencyAtCoverage(delays, 4)
	if cov[25] != 1*time.Millisecond {
		t.Fatalf("25%% = %v", cov[25])
	}
	if cov[100] != 5*time.Millisecond {
		t.Fatalf("100%% = %v", cov[100])
	}
	// Partial coverage: only 2 of 4 arrived.
	cov2 := latencyAtCoverage(delays[:2], 4)
	if _, ok := cov2[100]; ok {
		t.Fatal("100% coverage reported despite missing arrivals")
	}
	if _, ok := cov2[50]; !ok {
		t.Fatal("50% coverage missing")
	}
}

func TestRandomAdjacency(t *testing.T) {
	adj := randomAdjacency(30, 8, 3)
	for i, ns := range adj {
		if len(ns) < 8 {
			t.Fatalf("node %d degree %d < 8", i, len(ns))
		}
		for _, p := range ns {
			if int(p) == i {
				t.Fatalf("self-loop at %d", i)
			}
			found := false
			for _, q := range adj[p] {
				if int(q) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", i, p)
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	o := Options{Quick: true}
	_ = o
	tbl, err := Fig4c(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl[0].Render()
	if !strings.Contains(out, "PBFT") || !strings.Contains(out, "P-PBFT") {
		t.Fatalf("table missing series:\n%s", out)
	}
	t.Logf("\n%s", out)
}

// TestFig5QuickShape runs the Fig. 5 WAN comparison at reduced scale and
// asserts the paper's ordering: Predis and Stratus beat Narwhal on
// throughput, and Narwhal has the worst latency.
func TestFig5QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	tables, err := Fig5WAN(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tput := tables[0]
	last := func(name string) float64 {
		for _, s := range tput.Series {
			if s.Name == name {
				return s.Points[len(s.Points)-1].Y
			}
		}
		t.Fatalf("series %q missing", name)
		return 0
	}
	predis, narwhal, stratus := last("Predis"), last("Narwhal"), last("Stratus")
	if predis <= narwhal || stratus <= narwhal {
		t.Fatalf("ordering violated: predis=%.0f stratus=%.0f narwhal=%.0f",
			predis, stratus, narwhal)
	}
}

// TestFig7QuickShape asserts the star decline and Multi-Zone flatness.
func TestFig7QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	tables, err := Fig7(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tables[0].Series {
		first := s.Points[0].Y
		last := s.Points[len(s.Points)-1].Y
		switch {
		case s.Name == "star-nc4" && last >= first*0.8:
			t.Fatalf("star did not decline: %v → %v", first, last)
		case s.Name == "multizone-nc4" && last < first*0.8:
			t.Fatalf("multizone declined: %v → %v", first, last)
		}
	}
}

// TestFig8QuickShape asserts Multi-Zone's flat latency and the linear
// growth of the content-shipping topologies.
func TestFig8QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	tables, err := Fig8(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 2 {
		t.Fatalf("expected ≥2 block sizes, got %d", len(tables))
	}
	// Compare at 75% coverage: the very last node's arrival can ride the
	// periodic digest-repair path, which adds seconds of noise unrelated
	// to the topology's propagation behaviour.
	at75 := func(tbl *stats.Table, name string) float64 {
		for _, s := range tbl.Series {
			if s.Name != name {
				continue
			}
			for _, p := range s.Points {
				if p.X == 75 {
					return p.Y
				}
			}
		}
		t.Fatalf("series %q missing 75%% point", name)
		return 0
	}
	star1, star5 := at75(tables[0], "star"), at75(tables[1], "star")
	mz1, mz5 := at75(tables[0], "multizone-3z"), at75(tables[1], "multizone-3z")
	if star5 < 3*star1 {
		t.Fatalf("star latency did not grow with block size: %v → %v", star1, star5)
	}
	if mz5 > 3*mz1 {
		t.Fatalf("multizone latency grew with block size: %v → %v", mz1, mz5)
	}
	if mz5 >= star5 {
		t.Fatalf("multizone (%v ms) not faster than star (%v ms) at 5 MB", mz5, star5)
	}
}

// TestRecoveryQuickShape runs the crash-recovery experiment at reduced
// scale and checks its headline properties: the leader crash produces a
// visible throughput dip that recovers, and both victims end at the live
// chain head (Recovery itself errors otherwise).
func TestRecoveryQuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	tables, err := Recovery(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// timeline + summary, plus one per-stage latency table per scenario.
	if len(tables) != 4 {
		t.Fatalf("expected timeline + summary + 2 stage tables, got %d", len(tables))
	}
	summary := tables[1]
	row := func(name string, x float64) float64 {
		for _, s := range summary.Series {
			if s.Name != name {
				continue
			}
			for _, p := range s.Points {
				if p.X == x {
					return p.Y
				}
			}
		}
		t.Fatalf("summary row %v of %q missing", x, name)
		return 0
	}
	// Leader crash: consensus halts during the view change, so the dip
	// floor is (near) zero and recovery happens after the restart.
	if dip := row("leader-crash", 3); dip < 50 {
		t.Fatalf("leader crash dip depth %.1f%%, want ≥ 50%%", dip)
	}
	if ttr := row("leader-crash", 4); ttr <= 0 {
		t.Fatalf("leader crash never recovered (ttr=%v)", ttr)
	}
	// Both scenarios: victim head reached the live head (small slack).
	for _, sc := range []string{"relayer-crash", "leader-crash"} {
		victim, live := row(sc, 5), row(sc, 6)
		if victim+4 < live {
			t.Fatalf("%s: victim head %v below live head %v", sc, victim, live)
		}
	}
	t.Logf("\n%s", summary.Render())
}

// TestRecoveryDeterministic renders the experiment twice with the same
// seed and demands bit-identical tables: the fault schedule, the crash,
// the catch-up, and every measured bucket replay exactly.
func TestRecoveryDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	render := func() string {
		tables, err := Recovery(Options{Quick: true, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tbl := range tables {
			b.WriteString(tbl.Render())
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("nondeterministic recovery experiment:\n%s---\n%s", a, b)
	}
}
