package harness

import (
	"time"

	"predis/internal/stats"
)

// fig5 compares Predis (P-HS) against the Narwhal and Stratus baselines on
// the same chained-HotStuff substrate, nc = 4, one worker each, 50
// transactions per bundle/microblock (§V-A "Comparison with SOTA").
func fig5(o Options, wan bool, title string) ([]*stats.Table, error) {
	loads := []float64{4000, 8000, 12000, 16000, 20000}
	duration := 6 * time.Second
	if o.Quick {
		loads = []float64{4000, 10000, 16000}
		duration = 3 * time.Second
	}
	systems := []System{SysPHS, SysNarwhal, SysStratus}
	tput := &stats.Table{Title: title + " — throughput (tx/s) vs offered load", XLabel: "offered"}
	lat := &stats.Table{Title: title + " — latency (ms) vs throughput", XLabel: "tput"}
	type sweep struct{ tl, lat *stats.Series }
	sweeps, err := parRun(len(systems), o.workers(), func(i int) (sweep, error) {
		sys := systems[i]
		base := PointSpec{
			System:     sys,
			NC:         4,
			WAN:        wan,
			BundleSize: 50,
			Duration:   duration,
			Seed:       o.seed(),
			Compute:    o.Compute,
		}
		ts, ls, err := LoadSweep(base, loads, 1)
		if err != nil {
			return sweep{}, err
		}
		name := string(sys)
		if sys == SysPHS {
			name = "Predis"
		}
		ts.Name, ls.Name = name, name
		return sweep{ts, ls}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, s := range sweeps {
		tput.Series = append(tput.Series, s.tl)
		lat.Series = append(lat.Series, s.lat)
	}
	return []*stats.Table{tput, lat}, nil
}

// Fig5WAN reproduces Fig. 5(a,b).
func Fig5WAN(o Options) ([]*stats.Table, error) {
	return fig5(o, true, "Fig.5 WAN")
}

// Fig5LAN reproduces Fig. 5(c,d).
func Fig5LAN(o Options) ([]*stats.Table, error) {
	return fig5(o, false, "Fig.5 LAN")
}
