package harness

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"predis/internal/compute"
)

// streamReplayOnce runs one streaming-commit P-PBFT point — eager cuts,
// a 16-slot pipeline, per-bundle execution merges — on a pool of the
// given worker count and returns its replay digest, delivery count, and
// formatted result.
func streamReplayOnce(t *testing.T, workers int) (string, uint64, string) {
	t.Helper()
	pool := compute.NewPool(workers)
	defer pool.Close()
	tr := NewReplayTrace()
	res, err := RunPoint(PointSpec{
		System:   SysPPBFT,
		NC:       4,
		Offered:  1200,
		Duration: 1500 * time.Millisecond,
		Seed:     42,
		Stream:   true,
		Pipeline: 16,
		Trace:    tr,
		Compute:  pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Sum(), tr.Deliveries(), fmt.Sprintf("%+v", res)
}

// TestStreamReplayDeterministic asserts streaming commit keeps the replay
// contract block mode has always had: two same-seed runs are
// byte-identical, and the digest is invariant across compute-pool sizes
// (0 = inline, 1, 4) — speculative pipelining must not let wall-clock
// scheduling leak into the virtual-time schedule.
func TestStreamReplayDeterministic(t *testing.T) {
	type run struct {
		sum   string
		n     uint64
		state string
	}
	runs := make(map[int][]run)
	for _, workers := range []int{0, 1, 4} {
		for i := 0; i < 2; i++ {
			sum, n, state := streamReplayOnce(t, workers)
			runs[workers] = append(runs[workers], run{sum, n, state})
		}
	}
	base := runs[0][0]
	if base.n == 0 {
		t.Fatal("stream point delivered no messages")
	}
	for _, workers := range []int{0, 1, 4} {
		for i, r := range runs[workers] {
			if r != base {
				t.Errorf("workers=%d run=%d diverged:\n got %q n=%d %s\nwant %q n=%d %s",
					workers, i, r.sum, r.n, r.state, base.sum, base.n, base.state)
			}
		}
	}
}

// TestStreamBlockModesDiverge sanity-checks the experiment itself: the
// streaming schedule must actually differ from block mode (otherwise the
// latency-floor comparison would be measuring nothing).
func TestStreamBlockModesDiverge(t *testing.T) {
	tr := NewReplayTrace()
	if _, err := RunPoint(PointSpec{
		System: SysPPBFT, NC: 4, Offered: 1200,
		Duration: 1500 * time.Millisecond, Seed: 42, Trace: tr,
	}); err != nil {
		t.Fatal(err)
	}
	sum, _, _ := streamReplayOnce(t, 0)
	if tr.Sum() == sum {
		t.Fatal("block and stream modes produced identical schedules")
	}
}

// TestStreamQuickstartDeterministic runs the full streaming pipeline —
// speculative Multi-Zone distribution, spec-buffer settlement, per-bundle
// execution on every consensus host — twice per compute-pool size and
// asserts byte-identical observability exports, like the block-mode
// determinism test it mirrors.
func TestStreamQuickstartDeterministic(t *testing.T) {
	run := func(workers int) (string, string, string) {
		pool := compute.NewPool(workers)
		defer pool.Close()
		sink := &ObsSink{}
		if _, err := Quickstart(Options{
			Quick: true, Seed: 3, Stream: true, Obs: sink, Compute: pool,
		}); err != nil {
			t.Fatalf("stream quickstart: %v", err)
		}
		var trace, metrics, stages bytes.Buffer
		if err := sink.Trace.WriteChrome(&trace, sink.Sampler); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		if err := sink.Metrics.WriteCSV(&metrics); err != nil {
			t.Fatalf("metrics csv: %v", err)
		}
		if err := sink.Trace.WriteStageCSV(&stages); err != nil {
			t.Fatalf("stage csv: %v", err)
		}
		return trace.String(), metrics.String(), stages.String()
	}
	t1, m1, s1 := run(0)
	for _, workers := range []int{0, 4} {
		t2, m2, s2 := run(workers)
		if t1 != t2 {
			t.Errorf("workers=%d: chrome traces differ between same-seed stream runs", workers)
		}
		if m1 != m2 {
			t.Errorf("workers=%d: metrics CSVs differ between same-seed stream runs", workers)
		}
		if s1 != s2 {
			t.Errorf("workers=%d: stage CSVs differ between same-seed stream runs", workers)
		}
	}
}
