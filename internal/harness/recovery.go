package harness

import (
	"fmt"
	"time"

	"predis/internal/compute"
	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/faults"
	"predis/internal/multizone"
	"predis/internal/node"
	"predis/internal/obs"
	"predis/internal/simnet"
	"predis/internal/stats"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

// recoverySpec describes one crash-recovery measurement over the full
// Multi-Zone deployment: a P-PBFT consensus group with striped zones of
// full nodes, a declarative fault schedule crashing either the view-0
// consensus leader or the zone's first-joining full node (which, by the
// subscription protocol of §IV-C, claims stripes and relays), and a
// restart inside the run so catch-up is exercised end to end.
type recoverySpec struct {
	nc, f          int
	zones, perZone int
	offered        float64
	duration       time.Duration
	bucket         time.Duration
	seed           int64
	crashFrom      time.Duration
	crashTo        time.Duration
	// victimConsensus selects the scenario: true crashes consensus node 0
	// (the PBFT view-0 leader, forcing a view change and later a replica
	// catch-up); false crashes the first-joined full node of zone 0 (a
	// relayer, forcing stripe re-subscription and zone catch-up).
	victimConsensus bool
	// actions, when non-nil, replaces the default crash window with a
	// custom fault schedule (the Byzantine experiment reuses this rig
	// with adversarial actions instead of a crash).
	actions []faults.Action
	// starveRewire arms FullNodeConfig.StarveRewireAfter on every full
	// node (0 leaves the opt-in withholding detector off).
	starveRewire int
	// trace, when non-nil, accumulates the replay hash of every delivery
	// (see ReplayTrace).
	trace *ReplayTrace
	// obsTrace, when non-nil, records block/bundle lifecycle stages so the
	// experiment can render a per-stage latency breakdown around the
	// crash window.
	obsTrace *obs.Tracer
	// pool, when active, is the intra-point compute pool (replay hashes
	// are pool-invariant).
	pool *compute.Pool
}

// recoveryResult is one run's outcome.
type recoveryResult struct {
	// buckets holds committed tx/s per bucket, observed at a consensus
	// node that never crashes.
	buckets []float64
	// trace is the injector's applied-fault log (deterministic per seed).
	trace string
	// victimHead / liveHead compare the restarted node's chain head with
	// the healthiest live peer at the end of the run (consensus commit
	// heights for the leader scenario, zone block heights for the relayer
	// scenario).
	victimHead, liveHead uint64
	// catchingUp reports whether the victim's catch-up was still in
	// flight when the run ended (relayer scenario only).
	catchingUp bool
	// Byzantine-hardening counters, summed across all full nodes. On a
	// benign schedule (crashes, loss) every one of these is zero:
	// verification never fails without an adversary.
	rejected, refetches, quarantines, rewires uint64
	// undecodable counts frames the network dropped because their body
	// would not decode (garbage-wire attacks; zero on benign runs).
	undecodable uint64
	// equivocations sums proven leader equivocations across the
	// consensus group (zero on benign runs).
	equivocations uint64
}

// runRecovery builds the deployment, installs the fault schedule, runs
// it, and reports the bucketed throughput plus chain-head positions.
func runRecovery(spec recoverySpec) (recoveryResult, error) {
	node.RegisterAllMessages()
	multizone.RegisterMessages()

	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: spec.seed,
		Compute: spec.pool,
	})

	if spec.trace != nil {
		spec.trace.Attach(net)
	}

	nBuckets := int(spec.duration/spec.bucket) + 1
	buckets := make([]float64, nBuckets)
	record := func(at time.Time, txs int) {
		i := int(at.Sub(simnet.Epoch) / spec.bucket)
		if i >= 0 && i < nBuckets {
			buckets[i] += float64(txs)
		}
	}

	suite := crypto.NewSimSuite(spec.nc, uint64(spec.seed)+7)
	striper, err := multizone.NewStriper(spec.nc, spec.f)
	if err != nil {
		return recoveryResult{}, err
	}

	// Consensus group. In the leader scenario the bucket recorder is the
	// last consensus node (which never crashes); in the relayer scenario
	// it is a healthy full node in the victim's zone, so the timeline
	// shows the zone's completion rate through heartbeat expiry, relayer
	// re-election, and catch-up. Per-node last-commit heights feed the
	// leader scenario's head comparison.
	lastCommit := make([]uint64, spec.nc)
	hosts := make([]*multizone.ConsensusHost, 0, spec.nc)
	for i := 0; i < spec.nc; i++ {
		i := i
		host, err := multizone.NewConsensusHost(multizone.HostConfig{
			NC: spec.nc, F: spec.f, Self: wire.NodeID(i),
			Signer:         suite.Signer(i),
			Engine:         node.EnginePBFT,
			BundleSize:     50,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    1 * time.Second,
			Striper:        striper,
			ReplyToClients: true,
			Trace:          spec.obsTrace,
			OnCommit: func(height uint64, txs int) {
				if height > lastCommit[i] {
					lastCommit[i] = height
				}
				if spec.victimConsensus && i == spec.nc-1 {
					record(net.Now(), txs)
				}
			},
		})
		if err != nil {
			return recoveryResult{}, err
		}
		hosts = append(hosts, host)
		net.AddNode(wire.NodeID(i), host)
	}

	// Zones of full nodes joining incrementally, cross-zone backups as in
	// the Fig. 7 deployment.
	fullID := func(z, k int) wire.NodeID { return wire.NodeID(100 + z*100 + k) }
	fulls := make([]*multizone.FullNode, 0, spec.zones*spec.perZone)
	join := 0
	for z := 0; z < spec.zones; z++ {
		for k := 0; k < spec.perZone; k++ {
			id := fullID(z, k)
			peers := make([]wire.NodeID, 0, spec.perZone-1)
			for p := 0; p < spec.perZone; p++ {
				if p != k {
					peers = append(peers, fullID(z, p))
				}
			}
			var backups []wire.NodeID
			if spec.zones > 1 {
				backups = append(backups, fullID((z+1)%spec.zones, k%spec.perZone))
			}
			fcfg := multizone.FullNodeConfig{
				Self: id, Zone: z, JoinSeq: uint64(join),
				NC: spec.nc, F: spec.f,
				Striper:           striper,
				Signer:            suite.Signer(0),
				ZonePeers:         peers,
				BackupPeers:       backups,
				AliveInterval:     200 * time.Millisecond,
				DigestInterval:    1 * time.Second,
				StarveRewireAfter: spec.starveRewire,
				Trace:             spec.obsTrace,
			}
			if !spec.victimConsensus && z == 0 && k == 1 {
				// Zone-side observer: a healthy peer of the crashed relayer.
				fcfg.OnBlockComplete = func(blk *core.PredisBlock, txs int) {
					record(net.Now(), txs)
				}
			}
			fn, err := multizone.NewFullNode(fcfg)
			if err != nil {
				return recoveryResult{}, err
			}
			fulls = append(fulls, fn)
			net.AddNode(id, &multizone.Delayed{Inner: fn, Delay: time.Duration(join) * 20 * time.Millisecond})
			join++
		}
	}

	// Fault schedule: one crash window on the chosen victim unless the
	// caller scripted its own actions (Byzantine scenarios).
	victim := fullID(0, 0) // first joiner of zone 0: claims stripes, relays
	if spec.victimConsensus {
		victim = wire.NodeID(0) // PBFT view-0 leader
	}
	actions := spec.actions
	if actions == nil {
		actions = []faults.Action{
			faults.CrashWindow{Node: victim, From: spec.crashFrom, To: spec.crashTo},
		}
	}
	inj := faults.Install(net, faults.Schedule{Seed: spec.seed, Actions: actions})

	// Load.
	targets := make([]wire.NodeID, spec.nc)
	for i := range targets {
		targets[i] = wire.NodeID(i)
	}
	joinWindow := time.Duration(spec.zones*spec.perZone)*20*time.Millisecond + 200*time.Millisecond
	clients := spec.nc
	for k := 0; k < clients; k++ {
		net.AddNode(wire.NodeID(5000+k), workload.NewClient(workload.ClientConfig{
			Self:     wire.NodeID(5000 + k),
			Targets:  targets,
			Policy:   workload.RoundRobin,
			Rate:     spec.offered / float64(clients),
			TxSize:   types.DefaultTxSize,
			F:        spec.f,
			Epoch:    simnet.Epoch,
			GenStart: simnet.Epoch.Add(joinWindow),
			GenStop:  simnet.Epoch.Add(spec.duration),
			Trace:    spec.obsTrace,
		}))
	}

	net.Start()
	net.Run(spec.duration)

	res := recoveryResult{buckets: buckets, trace: inj.TraceString()}
	for _, fn := range fulls {
		rj, rf, q, rw := fn.ByzStats()
		res.rejected += rj
		res.refetches += rf
		res.quarantines += q
		res.rewires += rw
	}
	res.undecodable = net.Dropped().Undecodable
	for _, h := range hosts {
		// Both engine kinds expose proven-equivocation counts; the
		// interface stays narrow so node.Engine needs no new method.
		if eq, ok := h.Node.Engine().(interface{ Equivocations() uint64 }); ok {
			res.equivocations += eq.Equivocations()
		}
	}
	if spec.victimConsensus {
		res.victimHead = lastCommit[0]
		for i := 1; i < spec.nc; i++ {
			if lastCommit[i] > res.liveHead {
				res.liveHead = lastCommit[i]
			}
		}
	} else {
		for _, fn := range fulls {
			if fn.ID() == victim {
				res.victimHead = fn.LastHeight()
				res.catchingUp = fn.CatchingUp()
				continue
			}
			if fn.LastHeight() > res.liveHead {
				res.liveHead = fn.LastHeight()
			}
		}
	}
	return res, nil
}

// recoveryMetrics reduces a bucketed throughput series to the headline
// numbers: the pre-crash baseline rate, the dip floor during the outage,
// the dip depth as a percent of baseline, and the time from restart until
// throughput first regains 90% of baseline (-1 when it never does).
func recoveryMetrics(buckets []float64, bucket, warm, crashFrom, crashTo time.Duration) (baseline, floor, dipPct, ttrMS float64) {
	rate := func(i int) float64 { return buckets[i] / bucket.Seconds() }
	var sum float64
	n := 0
	for i := range buckets {
		start := time.Duration(i) * bucket
		end := start + bucket
		if start >= warm && end <= crashFrom {
			sum += rate(i)
			n++
		}
	}
	if n > 0 {
		baseline = sum / float64(n)
	}
	floor = baseline
	for i := range buckets {
		start := time.Duration(i) * bucket
		if start >= crashFrom && start < crashTo+2*bucket && rate(i) < floor {
			floor = rate(i)
		}
	}
	if baseline > 0 {
		dipPct = 100 * (1 - floor/baseline)
	}
	ttrMS = -1
	for i := range buckets {
		start := time.Duration(i) * bucket
		end := start + bucket
		if start >= crashTo && end <= time.Duration(len(buckets))*bucket &&
			rate(i) >= 0.9*baseline {
			ttrMS = float64(end-crashTo) / float64(time.Millisecond)
			break
		}
	}
	return baseline, floor, dipPct, ttrMS
}

// Recovery is the crash-recovery experiment (ISSUE 1 tentpole 4): the
// Multi-Zone deployment under a scripted relayer crash and, separately, a
// consensus-leader crash. It reports the committed-throughput timeline
// around each outage and a summary of dip depth, time-to-recover, and the
// restarted node's final chain head versus the live head. Both victims
// must catch back up to the live head (small slack for blocks committed
// in the final instants); a stuck victim is an error, not a data point.
func Recovery(o Options) ([]*stats.Table, error) {
	spec := recoverySpec{
		nc: 4, f: 1, zones: 2, perZone: 5,
		offered: 6000, duration: 16 * time.Second,
		bucket:    500 * time.Millisecond,
		seed:      o.seed(),
		crashFrom: 6 * time.Second, crashTo: 9 * time.Second,
		pool: o.Compute,
	}
	if o.Quick {
		spec.perZone = 4
		spec.offered = 3000
		spec.duration = 10 * time.Second
		spec.crashFrom, spec.crashTo = 4*time.Second, 6*time.Second
	}
	warm := time.Duration(spec.zones*spec.perZone)*20*time.Millisecond + 700*time.Millisecond

	timeline := &stats.Table{
		Title:  "Recovery: committed throughput (tx/s) per 500ms bucket around the crash window",
		XLabel: "t(s)",
	}
	summary := &stats.Table{
		Title: "Recovery summary (rows: 1=baseline tx/s, 2=dip floor tx/s, " +
			"3=dip depth %, 4=time-to-recover ms, 5=victim head, 6=live head, " +
			"7=stripes rejected, 8=refetches, 9=quarantines, 10=rewires — " +
			"rows 7-10 are the Byzantine-hardening counters and must be zero " +
			"on these benign crash scenarios)",
		XLabel: "row",
	}
	scenarios := []struct {
		name      string
		consensus bool
	}{
		{"relayer-crash", false},
		{"leader-crash", true},
	}
	stageTables := make([]*stats.Table, 0, len(scenarios))
	for _, sc := range scenarios {
		s := spec
		s.victimConsensus = sc.consensus
		s.trace = o.Replay // scenarios run sequentially: folding both is deterministic
		s.obsTrace = obs.NewTracer(simnet.Epoch)
		res, err := runRecovery(s)
		if err != nil {
			return nil, fmt.Errorf("recovery %s: %w", sc.name, err)
		}
		if res.liveHead == 0 {
			return nil, fmt.Errorf("recovery %s: cluster made no progress", sc.name)
		}
		// Hard acceptance: the restarted node reaches the live head.
		const slack = 4
		if res.victimHead+slack < res.liveHead {
			return nil, fmt.Errorf("recovery %s: victim stuck at height %d, live head %d",
				sc.name, res.victimHead, res.liveHead)
		}
		if res.catchingUp {
			return nil, fmt.Errorf("recovery %s: catch-up still in flight at end of run", sc.name)
		}
		ts := &stats.Series{Name: sc.name}
		for i, v := range res.buckets {
			end := time.Duration(i+1) * s.bucket
			if end > s.duration {
				break
			}
			ts.Add(end.Seconds(), v/s.bucket.Seconds())
		}
		timeline.Series = append(timeline.Series, ts)

		baseline, floor, dip, ttr := recoveryMetrics(res.buckets, s.bucket, warm, s.crashFrom, s.crashTo)
		sum := &stats.Series{Name: sc.name}
		sum.Add(1, baseline)
		sum.Add(2, floor)
		sum.Add(3, dip)
		sum.Add(4, ttr)
		sum.Add(5, float64(res.victimHead))
		sum.Add(6, float64(res.liveHead))
		sum.Add(7, float64(res.rejected))
		sum.Add(8, float64(res.refetches))
		sum.Add(9, float64(res.quarantines))
		sum.Add(10, float64(res.rewires))
		summary.Series = append(summary.Series, sum)
		if n := res.rejected + res.refetches + res.quarantines + res.rewires +
			res.undecodable + res.equivocations; n != 0 {
			return nil, fmt.Errorf("recovery %s: benign crash moved Byzantine counters (%d)",
				sc.name, n)
		}

		// Per-stage latency breakdown: dissemination stages absorb the
		// outage (stripe_distributed/fullnode_delivered tails stretch while
		// the victim is down) without moving the consensus-side stages.
		st := s.obsTrace.StageTable()
		st.Title = sc.name + " — " + st.Title
		stageTables = append(stageTables, st)
		if o.Obs != nil {
			o.Obs.Trace = s.obsTrace
		}
	}
	return append([]*stats.Table{timeline, summary}, stageTables...), nil
}
