package harness

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"predis/internal/compute"
)

// replayWorkersOnce runs the canonical replay workload once on a pool of
// the given worker count and returns digest, delivery count, and the
// formatted result — everything the compute plane must keep invariant.
func replayWorkersOnce(t *testing.T, workers int) (string, uint64, string) {
	t.Helper()
	pool := compute.NewPool(workers)
	defer pool.Close()
	tr := NewReplayTrace()
	res, err := RunPoint(PointSpec{
		System:   SysPHS,
		NC:       4,
		Offered:  1000,
		Duration: 1500 * time.Millisecond,
		Seed:     42,
		Trace:    tr,
		Compute:  pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Sum(), tr.Deliveries(), fmt.Sprintf("%+v", res)
}

// replayWorkersRecovery runs the crash-recovery experiment (the workload
// that exercises striping, reassembly, and catch-up — every speculative
// offload site) on a pool of the given worker count.
func replayWorkersRecovery(t *testing.T, workers int) (string, uint64, string) {
	t.Helper()
	pool := compute.NewPool(workers)
	defer pool.Close()
	tr := NewReplayTrace()
	res, err := runRecovery(recoverySpec{
		nc: 4, f: 1, zones: 2, perZone: 3,
		offered: 1500, duration: 4 * time.Second,
		bucket: 500 * time.Millisecond, seed: 9,
		crashFrom: 1500 * time.Millisecond, crashTo: 2500 * time.Millisecond,
		victimConsensus: false,
		trace:           tr,
		pool:            pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	state := fmt.Sprintf("buckets=%v victim=%d live=%d", res.buckets, res.victimHead, res.liveHead)
	return tr.Sum(), tr.Deliveries(), state
}

// TestReplayWorkersEquivalent asserts the compute plane's core contract:
// same-seed runs produce byte-identical delivery traces and results for
// any worker count. Worker count 0 is the inline reference; 1 exercises
// the offload/steal machinery with no real parallelism; 4 exercises
// contention and out-of-order completion.
func TestReplayWorkersEquivalent(t *testing.T) {
	type probe struct {
		name string
		run  func(t *testing.T, workers int) (string, uint64, string)
	}
	for _, p := range []probe{
		{"phs", replayWorkersOnce},
		{"recovery", replayWorkersRecovery},
	} {
		t.Run(p.name, func(t *testing.T) {
			h0, n0, r0 := p.run(t, 0)
			if n0 == 0 {
				t.Fatal("replay trace recorded no deliveries")
			}
			for _, w := range []int{1, 4} {
				h, n, r := p.run(t, w)
				if h != h0 || n != n0 {
					t.Fatalf("workers=%d diverged from inline: %d deliveries %s vs %d deliveries %s",
						w, n, h, n0, h0)
				}
				if r != r0 {
					t.Fatalf("workers=%d results diverged:\n  inline: %s\n  pooled: %s", w, r0, r)
				}
			}
		})
	}
}

// replayWorkersChildEnv marks a re-exec'd child that should run the
// canonical workload once on PREDIS_REPLAY_WORKERS workers and print the
// digest instead of the full test.
const replayWorkersChildEnv = "PREDIS_REPLAY_WORKERS"

// TestReplayWorkersCrossProcess re-executes the test binary at -workers
// 0 and 4 — separate processes, separate map-hash seeds, separate
// scheduler histories, different pool shapes — and asserts identical
// delivery-trace digests. This is the strongest form of the worker-count
// invariance contract.
func TestReplayWorkersCrossProcess(t *testing.T) {
	if v := os.Getenv(replayWorkersChildEnv); v != "" {
		workers, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad %s=%q: %v", replayWorkersChildEnv, v, err)
		}
		h, n, _ := replayWorkersOnce(t, workers)
		fmt.Printf("REPLAY %s %d\n", h, n)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	child := func(workers int) string {
		cmd := exec.Command(exe, "-test.run=^TestReplayWorkersCrossProcess$", "-test.v")
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d", replayWorkersChildEnv, workers))
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("child run (workers=%d) failed: %v\n%s", workers, err, out)
		}
		for _, line := range strings.Split(string(out), "\n") {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "REPLAY "); ok {
				return rest
			}
		}
		t.Fatalf("child (workers=%d) produced no REPLAY line:\n%s", workers, out)
		return ""
	}
	h0, n0, _ := replayWorkersOnce(t, 0)
	if n0 == 0 {
		t.Fatal("replay trace recorded no deliveries")
	}
	local := fmt.Sprintf("%s %d", h0, n0)
	c0 := child(0)
	c4 := child(4)
	if c0 != local || c4 != local {
		t.Fatalf("cross-process worker runs diverged:\n  in-process w0: %s\n  child w0:      %s\n  child w4:      %s",
			local, c0, c4)
	}
}
