package harness

import (
	"fmt"
	"time"

	"predis/internal/compute"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/multizone"
	"predis/internal/node"
	"predis/internal/simnet"
	"predis/internal/stats"
	"predis/internal/topology"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

// starHost couples a P-PBFT consensus node with a star-topology source
// that ships every committed block, in full, to its attached full nodes.
type starHost struct {
	n   *node.Node
	src *topology.StarSource
}

var _ env.Handler = (*starHost)(nil)

func (h *starHost) Start(ctx env.Context) {
	h.src.Start(ctx)
	h.n.Start(ctx)
}

func (h *starHost) Receive(from wire.NodeID, m wire.Message) { h.n.Receive(from, m) }

// fig7Spec is one configuration point of Fig. 7.
type fig7Spec struct {
	nc, f     int
	fullNodes int
	zones     int // 0 = star topology
	offered   float64
	duration  time.Duration
	seed      int64
	pool      *compute.Pool
}

// runFig7Point measures consensus throughput with full-node distribution
// attached, for either topology.
func runFig7Point(spec fig7Spec) (float64, error) {
	node.RegisterAllMessages()
	multizone.RegisterMessages()
	topology.RegisterMessages()

	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: spec.seed,
		Compute: spec.pool,
	})
	joinWindow := time.Duration(spec.fullNodes)*20*time.Millisecond + 200*time.Millisecond
	warm := simnet.Epoch.Add(joinWindow + spec.duration/4)
	end := simnet.Epoch.Add(joinWindow + spec.duration)
	col := workload.NewCollector(warm, end)

	suite := crypto.NewSimSuite(spec.nc, uint64(spec.seed)+7)
	fullIDs := make([]wire.NodeID, spec.fullNodes)
	for i := range fullIDs {
		fullIDs[i] = wire.NodeID(100 + i)
	}

	if spec.zones == 0 {
		// Star: attach full nodes round-robin to consensus nodes; each
		// consensus node sends complete blocks to its attachments.
		attached := make([][]wire.NodeID, spec.nc)
		for i, id := range fullIDs {
			attached[i%spec.nc] = append(attached[i%spec.nc], id)
		}
		for i := 0; i < spec.nc; i++ {
			i := i
			src := topology.NewStarSource(attached[i])
			n, err := node.New(node.Config{
				Mode: node.ModePredis, Engine: node.EnginePBFT,
				NC: spec.nc, F: spec.f, Self: wire.NodeID(i),
				Signer:         suite.Signer(i),
				BundleSize:     50,
				BundleInterval: 20 * time.Millisecond,
				ViewTimeout:    2 * time.Second,
				ReplyToClients: true,
				OnCommit: func(height uint64, txs []*types.Transaction) {
					src.Publish(height, wire.NodeID(i), types.TotalBytes(txs))
					if i == 0 {
						col.RecordNodeCommit(net.Now(), len(txs))
					}
				},
			})
			if err != nil {
				return 0, err
			}
			net.AddNode(wire.NodeID(i), &starHost{n: n, src: src})
		}
		for _, id := range fullIDs {
			net.AddNode(id, topology.NewSink(nil))
		}
	} else {
		striper, err := multizone.NewStriper(spec.nc, spec.f)
		if err != nil {
			return 0, err
		}
		for i := 0; i < spec.nc; i++ {
			i := i
			host, err := multizone.NewConsensusHost(multizone.HostConfig{
				NC: spec.nc, F: spec.f, Self: wire.NodeID(i),
				Signer:         suite.Signer(i),
				Engine:         node.EnginePBFT,
				BundleSize:     50,
				BundleInterval: 20 * time.Millisecond,
				ViewTimeout:    2 * time.Second,
				Striper:        striper,
				ReplyToClients: true,
				OnCommit: func(height uint64, txs int) {
					if i == 0 {
						col.RecordNodeCommit(net.Now(), txs)
					}
				},
			})
			if err != nil {
				return 0, err
			}
			net.AddNode(wire.NodeID(i), host)
		}
		// Full nodes spread over the zones, joining incrementally.
		perZone := make([][]wire.NodeID, spec.zones)
		for i, id := range fullIDs {
			z := i % spec.zones
			perZone[z] = append(perZone[z], id)
		}
		for i, id := range fullIDs {
			z := i % spec.zones
			peers := make([]wire.NodeID, 0, len(perZone[z])-1)
			for _, p := range perZone[z] {
				if p != id {
					peers = append(peers, p)
				}
			}
			var backups []wire.NodeID
			if spec.zones > 1 {
				other := perZone[(z+1)%spec.zones]
				if len(other) > 0 {
					backups = append(backups, other[i%len(other)])
				}
			}
			fn, err := multizone.NewFullNode(multizone.FullNodeConfig{
				Self: id, Zone: z, JoinSeq: uint64(i),
				NC: spec.nc, F: spec.f,
				Striper:        striper,
				Signer:         suite.Signer(0),
				ZonePeers:      peers,
				BackupPeers:    backups,
				AliveInterval:  300 * time.Millisecond,
				DigestInterval: 2 * time.Second,
			})
			if err != nil {
				return 0, err
			}
			net.AddNode(id, &multizone.Delayed{Inner: fn, Delay: time.Duration(i) * 20 * time.Millisecond})
		}
	}

	targets := make([]wire.NodeID, spec.nc)
	for i := range targets {
		targets[i] = wire.NodeID(i)
	}
	clients := spec.nc
	for k := 0; k < clients; k++ {
		net.AddNode(wire.NodeID(5000+k), workload.NewClient(workload.ClientConfig{
			Self:      wire.NodeID(5000 + k),
			Targets:   targets,
			Policy:    workload.RoundRobin,
			Rate:      spec.offered / float64(clients),
			TxSize:    types.DefaultTxSize,
			F:         spec.f,
			Epoch:     simnet.Epoch,
			GenStart:  simnet.Epoch.Add(joinWindow),
			GenStop:   end,
			Collector: col,
		}))
	}

	net.Start()
	net.Run(joinWindow + spec.duration)
	return col.Throughput(), nil
}

// Fig7 reproduces "Effect on Throughput": offered load fixed (26,000 tx/s
// in the paper), sweeping the number of full nodes, comparing the star
// topology against Multi-Zone, for two consensus group sizes.
func Fig7(o Options) ([]*stats.Table, error) {
	fullCounts := []int{8, 16, 24, 36, 48}
	ncs := []int{4, 8}
	zones := 4
	offered := 26000.0
	duration := 6 * time.Second
	if o.Quick {
		fullCounts = []int{8, 24}
		ncs = []int{4}
		offered = 12000
		duration = 3 * time.Second
	}
	tbl := &stats.Table{
		Title:  "Fig.7 consensus throughput (tx/s) vs number of full nodes",
		XLabel: "fullNodes",
	}
	// Flatten (nc × fullCount × {star, multizone}) into one batch for the
	// worker pool; each point is an independent simulation.
	var specs []fig7Spec
	for _, nc := range ncs {
		f := (nc - 1) / 3
		for _, n := range fullCounts {
			specs = append(specs,
				fig7Spec{nc: nc, f: f, fullNodes: n, zones: 0,
					offered: offered, duration: duration, seed: o.seed(), pool: o.Compute},
				fig7Spec{nc: nc, f: f, fullNodes: n, zones: zones,
					offered: offered, duration: duration, seed: o.seed(), pool: o.Compute})
		}
	}
	results, err := parRun(len(specs), o.workers(), func(i int) (float64, error) {
		return runFig7Point(specs[i])
	})
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, nc := range ncs {
		star := &stats.Series{Name: fmt.Sprintf("star-nc%d", nc)}
		mz := &stats.Series{Name: fmt.Sprintf("multizone-nc%d", nc)}
		for _, n := range fullCounts {
			star.Add(float64(n), results[idx])
			mz.Add(float64(n), results[idx+1])
			idx += 2
		}
		tbl.Series = append(tbl.Series, star, mz)
	}
	return []*stats.Table{tbl}, nil
}
