// Package harness defines the reproducible experiments behind every figure
// in the paper's evaluation (§V). Each experiment builds a simulated
// deployment, runs it in virtual time, and reports the same series the
// paper plots; bench_test.go and cmd/predis-bench expose them.
package harness

import (
	"fmt"
	"time"

	"predis/internal/compute"
	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/multizone"
	"predis/internal/node"
	"predis/internal/simnet"
	"predis/internal/stats"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

// System names the data production strategies under test, using the
// paper's labels.
type System string

// Systems.
const (
	SysPBFT     System = "PBFT"
	SysPPBFT    System = "P-PBFT"
	SysHotStuff System = "HotStuff"
	SysPHS      System = "P-HS"
	SysNarwhal  System = "Narwhal"
	SysStratus  System = "Stratus"
)

// modeEngine maps a system to its node configuration.
func modeEngine(sys System) (node.Mode, node.EngineKind, error) {
	switch sys {
	case SysPBFT:
		return node.ModeBaseline, node.EnginePBFT, nil
	case SysPPBFT:
		return node.ModePredis, node.EnginePBFT, nil
	case SysHotStuff:
		return node.ModeBaseline, node.EngineHotStuff, nil
	case SysPHS:
		return node.ModePredis, node.EngineHotStuff, nil
	case SysNarwhal:
		return node.ModeNarwhal, node.EngineHotStuff, nil
	case SysStratus:
		return node.ModeStratus, node.EngineHotStuff, nil
	default:
		return 0, 0, fmt.Errorf("harness: unknown system %q", sys)
	}
}

// PointSpec describes one throughput/latency measurement.
type PointSpec struct {
	System     System
	NC, F      int
	BundleSize int // bundle / microblock size (Predis, Narwhal, Stratus)
	BatchSize  int // batch size (baseline PBFT / HotStuff)
	WAN        bool
	Offered    float64 // total offered load, tx/s
	Clients    int
	Duration   time.Duration
	Seed       int64
	Faults     map[wire.NodeID]core.FaultMode
	// BundleInterval overrides the producer's bundle seal interval
	// (default 20ms, the value every experiment used historically).
	BundleInterval time.Duration
	// Stream enables streaming commit (see node.Config.Stream): bundles
	// seal per transaction, cuts are eager, consensus pipelines, and
	// execution merges at bundle joins. Off, the point is byte-for-byte
	// the historical block-mode measurement.
	Stream bool
	// Pipeline is the PBFT in-flight instance window; meaningful with
	// Stream (default 1 = classic single-slot PBFT).
	Pipeline int
	// Trace, when non-nil, folds every delivery into a replay hash so
	// tests can assert two same-seed runs are byte-identical.
	Trace *ReplayTrace
	// Compute, when active, offloads pure crypto/erasure work inside the
	// simulated point; results and replay hashes are identical for any
	// pool, including nil.
	Compute *compute.Pool
}

func (s *PointSpec) withDefaults() PointSpec {
	out := *s
	if out.NC == 0 {
		out.NC = 4
	}
	if out.F == 0 {
		out.F = (out.NC - 1) / 3
	}
	if out.BundleSize == 0 {
		out.BundleSize = 50
	}
	if out.BatchSize == 0 {
		out.BatchSize = 800
	}
	if out.Clients == 0 {
		out.Clients = 4
	}
	if out.Duration == 0 {
		out.Duration = 5 * time.Second
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.BundleInterval == 0 {
		out.BundleInterval = 20 * time.Millisecond
	}
	return out
}

// PointResult is the outcome of one measurement.
type PointResult struct {
	Throughput       float64 // consensus-side committed tx/s
	ClientThroughput float64 // client-confirmed tx/s
	Latency          stats.Summary
	Blocks           int
	ViewOrTimeouts   uint64
	// SpecEvictions counts stream-mode proposal retractions across all
	// nodes — the speculation-waste signal: each one is a block that was
	// speculatively announced (and, under Multi-Zone, speculatively
	// distributed) but did not commit as proposed. Always 0 in block mode.
	SpecEvictions uint64
}

// RunPoint builds the deployment for one spec, runs it, and measures.
func RunPoint(spec PointSpec) (PointResult, error) {
	s := spec.withDefaults()
	mode, engine, err := modeEngine(s.System)
	if err != nil {
		return PointResult{}, err
	}
	node.RegisterAllMessages()
	multizone.RegisterMessages()

	latency := simnet.LANLatency()
	if s.WAN {
		latency = simnet.WANLatency()
	}
	net := simnet.New(simnet.Config{
		Uplink:   simnet.Mbps100,
		Downlink: simnet.Mbps100,
		Latency:  latency,
		Seed:     s.Seed,
		Compute:  s.Compute,
	})
	if s.Trace != nil {
		s.Trace.Attach(net)
	}
	warm := simnet.Epoch.Add(s.Duration / 4)
	end := simnet.Epoch.Add(s.Duration)
	col := workload.NewCollector(warm, end)

	suite := crypto.NewSimSuite(s.NC, uint64(s.Seed)+100)
	nodes := make([]*node.Node, s.NC)
	var evictions uint64
	for i := 0; i < s.NC; i++ {
		i := i
		fault := core.FaultNone
		if s.Faults != nil {
			fault = s.Faults[wire.NodeID(i)]
		}
		cfg := node.Config{
			Mode:           mode,
			Engine:         engine,
			NC:             s.NC,
			F:              s.F,
			Self:           wire.NodeID(i),
			Signer:         suite.Signer(i),
			BatchSize:      s.BatchSize,
			BundleSize:     s.BundleSize,
			BundleInterval: s.BundleInterval,
			ViewTimeout:    2 * time.Second,
			Fault:          fault,
			Stream:         s.Stream,
			Pipeline:       s.Pipeline,
			ReplyToClients: true,
			OnCommit: func(height uint64, txs []*types.Transaction) {
				if i == 0 {
					col.RecordNodeCommit(net.Now(), len(txs))
				}
			},
		}
		if s.Stream {
			// Count retractions as the speculation-waste signal (the
			// simulation runs on one goroutine, so a bare counter is safe).
			cfg.OnBlockEvict = func(*core.PredisBlock) { evictions++ }
		}
		n, err := node.New(cfg)
		if err != nil {
			return PointResult{}, err
		}
		nodes[i] = n
		net.AddNode(wire.NodeID(i), n)
	}

	targets := make([]wire.NodeID, s.NC)
	for i := range targets {
		targets[i] = wire.NodeID(i)
	}
	policy := workload.RoundRobin
	if mode == node.ModeBaseline {
		policy = workload.Broadcast
	}
	perClient := s.Offered / float64(s.Clients)
	for k := 0; k < s.Clients; k++ {
		cl := workload.NewClient(workload.ClientConfig{
			Self:      wire.NodeID(1000 + k),
			Targets:   targets,
			Policy:    policy,
			Rate:      perClient,
			TxSize:    types.DefaultTxSize,
			F:         s.F,
			Epoch:     simnet.Epoch,
			GenStart:  simnet.Epoch.Add(50 * time.Millisecond),
			GenStop:   end,
			Collector: col,
		})
		net.AddNode(wire.NodeID(1000+k), cl)
	}

	net.Start()
	net.Run(s.Duration)

	_, _, committed, blocks := col.Counts()
	_ = committed
	res := PointResult{
		Throughput:       col.Throughput(),
		ClientThroughput: col.ClientThroughput(),
		Latency:          col.Latency(),
		Blocks:           blocks,
		SpecEvictions:    evictions,
	}
	// Engine diagnostics from node 0.
	switch e := nodes[0].Engine().(type) {
	case interface{ Stats() (uint64, uint64) }:
		_, res.ViewOrTimeouts = e.Stats()
	}
	return res, nil
}

// parRun evaluates fn(0..n-1) over up to `workers` goroutines (see
// env.Parallel) and merges the results back in index order, so output
// is identical to a sequential loop regardless of scheduling. On error
// it reports the failure with the lowest index, matching what a
// sequential loop would have surfaced first.
func parRun[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	env.Parallel(n, workers, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunPoints evaluates independent specs on a worker pool, returning
// results in spec order. Each point builds its own simnet.Network, so
// per-point determinism (and replay hashes) are untouched by the
// wall-clock interleaving.
func RunPoints(specs []PointSpec, workers int) ([]PointResult, error) {
	return parRun(len(specs), workers, func(i int) (PointResult, error) {
		return RunPoint(specs[i])
	})
}

// LoadSweep runs a spec across offered loads and returns (throughput,
// latency-ms) pairs — one line of a throughput-latency figure. Points
// are independent simulations, fanned out over `workers` goroutines and
// merged back in load order.
func LoadSweep(base PointSpec, loads []float64, workers int) (*stats.Series, *stats.Series, error) {
	specs := make([]PointSpec, len(loads))
	for i, load := range loads {
		spec := base
		spec.Offered = load
		specs[i] = spec
	}
	results, err := RunPoints(specs, workers)
	if err != nil {
		return nil, nil, err
	}
	tl := &stats.Series{Name: string(base.System)}
	lat := &stats.Series{Name: string(base.System)}
	for i, load := range loads {
		res := results[i]
		ms := float64(res.Latency.Mean) / float64(time.Millisecond)
		tl.Add(load, res.Throughput)
		lat.Add(res.Throughput, ms)
	}
	return tl, lat, nil
}
