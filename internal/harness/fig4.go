package harness

import (
	"time"

	"predis/internal/stats"
)

// fig4Loads picks the offered-load sweep for throughput-latency curves.
func fig4Loads(o Options, predis bool) []float64 {
	if o.Quick {
		if predis {
			return []float64{4000, 12000, 20000}
		}
		return []float64{2000, 5000, 8000}
	}
	if predis {
		return []float64{4000, 8000, 12000, 16000, 20000, 26000}
	}
	return []float64{1000, 2000, 4000, 6000, 8000, 10000}
}

func fig4Duration(o Options) time.Duration {
	if o.Quick {
		return 3 * time.Second
	}
	return 6 * time.Second
}

// fig4SizeVariants runs one engine family with the paper's bundle/batch
// variants: baseline batch ∈ {400, 800}, Predis bundle ∈ {25, 50, 100}.
func fig4SizeVariants(o Options, baseline, predis System, title string) ([]*stats.Table, error) {
	type variant struct {
		sys    System
		bundle int
		batch  int
		label  string
	}
	variants := []variant{
		{baseline, 0, 400, string(baseline) + "-batch400"},
		{baseline, 0, 800, string(baseline) + "-batch800"},
		{predis, 25, 0, string(predis) + "-bundle25"},
		{predis, 50, 0, string(predis) + "-bundle50"},
		{predis, 100, 0, string(predis) + "-bundle100"},
	}
	if o.Quick {
		variants = []variant{
			{baseline, 0, 800, string(baseline) + "-batch800"},
			{predis, 50, 0, string(predis) + "-bundle50"},
		}
	}
	tput := &stats.Table{Title: title + " — throughput (tx/s) vs offered load", XLabel: "offered"}
	lat := &stats.Table{Title: title + " — latency (ms) vs throughput", XLabel: "tput"}
	type sweep struct{ tl, lat *stats.Series }
	sweeps, err := parRun(len(variants), o.workers(), func(i int) (sweep, error) {
		v := variants[i]
		base := PointSpec{
			System:     v.sys,
			NC:         4,
			WAN:        true,
			BundleSize: v.bundle,
			BatchSize:  v.batch,
			Duration:   fig4Duration(o),
			Seed:       o.seed(),
			Compute:    o.Compute,
		}
		ts, ls, err := LoadSweep(base, fig4Loads(o, v.bundle > 0), 1)
		if err != nil {
			return sweep{}, err
		}
		ts.Name, ls.Name = v.label, v.label
		return sweep{ts, ls}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, s := range sweeps {
		tput.Series = append(tput.Series, s.tl)
		lat.Series = append(lat.Series, s.lat)
	}
	return []*stats.Table{tput, lat}, nil
}

// Fig4a reproduces Fig. 4(a): PBFT vs P-PBFT with different bundle and
// batch sizes in the WAN environment, nc = 4.
func Fig4a(o Options) ([]*stats.Table, error) {
	return fig4SizeVariants(o, SysPBFT, SysPPBFT, "Fig.4(a) PBFT family")
}

// Fig4b reproduces Fig. 4(b): HotStuff vs P-HS with different bundle and
// batch sizes.
func Fig4b(o Options) ([]*stats.Table, error) {
	return fig4SizeVariants(o, SysHotStuff, SysPHS, "Fig.4(b) HotStuff family")
}

// fig4Scalability measures saturated throughput for nc ∈ {4,8,16}.
func fig4Scalability(o Options, baseline, predis System, title string) ([]*stats.Table, error) {
	ncs := []int{4, 8, 16}
	if o.Quick {
		ncs = []int{4, 8}
	}
	tbl := &stats.Table{Title: title + " — saturated throughput (tx/s) vs nc", XLabel: "nc"}
	systems := []System{baseline, predis}
	// Flatten (system × nc) into one worker-pool batch; results merge
	// back by index, so series order matches the sequential loop.
	specs := make([]PointSpec, 0, len(systems)*len(ncs))
	for _, sys := range systems {
		for _, nc := range ncs {
			// Offer more than either system can absorb so the measurement
			// reflects capacity, not load.
			offered := 30000.0
			if sys == baseline {
				offered = 12000
			}
			specs = append(specs, PointSpec{
				System:   sys,
				NC:       nc,
				WAN:      true,
				Offered:  offered,
				Clients:  nc,
				Duration: fig4Duration(o),
				Seed:     o.seed(),
				Compute:  o.Compute,
			})
		}
	}
	results, err := RunPoints(specs, o.workers())
	if err != nil {
		return nil, err
	}
	for si, sys := range systems {
		series := &stats.Series{Name: string(sys)}
		for ni, nc := range ncs {
			series.Add(float64(nc), results[si*len(ncs)+ni].Throughput)
		}
		tbl.Series = append(tbl.Series, series)
	}
	return []*stats.Table{tbl}, nil
}

// Fig4c reproduces Fig. 4(c): PBFT vs P-PBFT as nc grows.
func Fig4c(o Options) ([]*stats.Table, error) {
	return fig4Scalability(o, SysPBFT, SysPPBFT, "Fig.4(c) PBFT scalability")
}

// Fig4d reproduces Fig. 4(d): HotStuff vs P-HS as nc grows.
func Fig4d(o Options) ([]*stats.Table, error) {
	return fig4Scalability(o, SysHotStuff, SysPHS, "Fig.4(d) HotStuff scalability")
}
