package harness

import (
	"time"

	"predis/internal/stats"
)

// latfloorSpecs builds the measurement grid for LatencyFloor: for one
// network profile, block mode and streaming commit run over the same
// offered loads on the same P-PBFT deployment. Streaming uses an
// in-flight PBFT window so ordering never gates on the previous commit;
// block mode is the classic single-slot protocol every other experiment
// measures.
func latfloorSpecs(o Options, wan bool, stream bool, loads []float64, duration time.Duration) []PointSpec {
	specs := make([]PointSpec, len(loads))
	for i, load := range loads {
		specs[i] = PointSpec{
			System:   SysPPBFT,
			NC:       4,
			F:        1,
			WAN:      wan,
			Offered:  load,
			Duration: duration,
			Seed:     o.seed(),
			Stream:   stream,
			Compute:  o.Compute,
			// A moderate production batching interval (Fabric defaults to
			// hundreds of ms; 50 ms is generous). Block mode's latency
			// floor includes it — transactions wait for the seal tick —
			// while streaming seals per transaction and never sees it.
			// Both modes run the identical configuration.
			BundleInterval: 50 * time.Millisecond,
		}
		if stream {
			specs[i].Pipeline = 16
		}
	}
	return specs
}

// LatencyFloor contrasts block-granularity commit with streaming commit
// (seal→order→distribute→execute pipelined at bundle granularity) on the
// same P-PBFT deployment, on LAN and WAN, across offered loads. It
// reports mean/p50/p99 confirmed-transaction latency per mode, the
// throughput-parity series, and the speculation-waste counter (stream
// proposals retracted by view changes or fork abandonment). This is the
// experiment behind the streaming-commit claim: the latency floor drops
// from "wait for the next block" to "wait for the next bundle" while
// committed throughput stays equal.
func LatencyFloor(o Options) ([]*stats.Table, error) {
	loads := []float64{500, 1000, 2000, 4000}
	duration := 8 * time.Second
	if o.Quick {
		loads = []float64{1000, 2000}
		duration = 4 * time.Second
	}

	// Grid order: LAN block, LAN stream, WAN block, WAN stream — each a
	// row of len(loads) points.
	grid := [][]PointSpec{
		latfloorSpecs(o, false, false, loads, duration),
		latfloorSpecs(o, false, true, loads, duration),
		latfloorSpecs(o, true, false, loads, duration),
		latfloorSpecs(o, true, true, loads, duration),
	}
	flat := make([]PointSpec, 0, 4*len(loads))
	for _, row := range grid {
		flat = append(flat, row...)
	}
	workers := o.workers()
	if o.Replay != nil {
		// Replay hashes fold every delivery into one running digest, so
		// the points must run (and attach) in a fixed order: sequential.
		workers = 1
		for i := range flat {
			flat[i].Trace = o.Replay
		}
	}
	results, err := RunPoints(flat, workers)
	if err != nil {
		return nil, err
	}
	rows := [][]PointResult{
		results[0*len(loads) : 1*len(loads)],
		results[1*len(loads) : 2*len(loads)],
		results[2*len(loads) : 3*len(loads)],
		results[3*len(loads) : 4*len(loads)],
	}

	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	latTable := func(name string, block, stream []PointResult) *stats.Table {
		t := &stats.Table{
			Title: "Latency floor (" + name + ", P-PBFT nc=4): confirmed " +
				"latency ms vs offered tx/s — block vs streaming commit",
			XLabel: "offered tx/s",
		}
		series := []struct {
			name string
			row  []PointResult
			pick func(stats.Summary) time.Duration
		}{
			{"block mean", block, func(s stats.Summary) time.Duration { return s.Mean }},
			{"stream mean", stream, func(s stats.Summary) time.Duration { return s.Mean }},
			{"block p50", block, func(s stats.Summary) time.Duration { return s.P50 }},
			{"stream p50", stream, func(s stats.Summary) time.Duration { return s.P50 }},
			{"block p99", block, func(s stats.Summary) time.Duration { return s.P99 }},
			{"stream p99", stream, func(s stats.Summary) time.Duration { return s.P99 }},
		}
		for _, sp := range series {
			s := &stats.Series{Name: sp.name}
			for i, load := range loads {
				s.Add(load, ms(sp.pick(sp.row[i].Latency)))
			}
			t.Series = append(t.Series, s)
		}
		return t
	}

	parity := &stats.Table{
		Title: "Latency floor: committed throughput parity and speculation " +
			"waste (retracted stream proposals) vs offered tx/s",
		XLabel: "offered tx/s",
	}
	paritySeries := []struct {
		name string
		row  []PointResult
		pick func(PointResult) float64
	}{
		{"LAN block tx/s", rows[0], func(r PointResult) float64 { return r.Throughput }},
		{"LAN stream tx/s", rows[1], func(r PointResult) float64 { return r.Throughput }},
		{"WAN block tx/s", rows[2], func(r PointResult) float64 { return r.Throughput }},
		{"WAN stream tx/s", rows[3], func(r PointResult) float64 { return r.Throughput }},
		{"LAN stream retractions", rows[1], func(r PointResult) float64 { return float64(r.SpecEvictions) }},
		{"WAN stream retractions", rows[3], func(r PointResult) float64 { return float64(r.SpecEvictions) }},
	}
	for _, sp := range paritySeries {
		s := &stats.Series{Name: sp.name}
		for i, load := range loads {
			s.Add(load, sp.pick(sp.row[i]))
		}
		parity.Series = append(parity.Series, s)
	}

	return []*stats.Table{
		latTable("LAN", rows[0], rows[1]),
		latTable("WAN", rows[2], rows[3]),
		parity,
	}, nil
}
