package harness

import (
	"fmt"
	"sort"
	"time"

	"predis/internal/compute"
	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/gossip"
	"predis/internal/multizone"
	"predis/internal/node"
	"predis/internal/simnet"
	"predis/internal/stats"
	"predis/internal/topology"
	"predis/internal/types"
	"predis/internal/wire"
)

// Fig. 8 measures block propagation latency across ~100 full nodes for
// the star topology, the random topology with FEG gossip, and Multi-Zone
// with 3 and 12 zones, at block sizes from 1 MB to 40 MB. Per the paper's
// setup, star and random ship complete blocks when a block is produced,
// while Multi-Zone pre-distributes bundle stripes continuously and ships
// only the tiny Predis block at production time.

// propPercentiles are the coverage points reported per topology.
var propPercentiles = []float64{25, 50, 75, 90, 100}

// latencyAtCoverage converts per-node arrival delays into latency at each
// coverage percentage.
func latencyAtCoverage(delays []time.Duration, total int) map[float64]time.Duration {
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	out := make(map[float64]time.Duration, len(propPercentiles))
	for _, p := range propPercentiles {
		k := int(float64(total)*p/100+0.5) - 1
		if k < 0 {
			k = 0
		}
		if k >= len(delays) {
			if len(delays) < total {
				continue // coverage never reached
			}
			k = len(delays) - 1
		}
		out[p] = delays[k]
	}
	return out
}

// fig8Spec configures one propagation measurement.
type fig8Spec struct {
	nc, f     int
	fullNodes int
	blockMB   int
	blocks    int
	seed      int64
	pool      *compute.Pool
}

// runFig8Star publishes complete blocks from consensus nodes to attached
// full nodes and reports per-coverage latency averaged over blocks.
func runFig8Star(spec fig8Spec) (map[float64]time.Duration, error) {
	topology.RegisterMessages()
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: spec.seed,
		Compute: spec.pool,
	})
	arrivals := make(map[uint64][]time.Duration)
	published := make(map[uint64]time.Time)

	attached := make([][]wire.NodeID, spec.nc)
	for i := 0; i < spec.fullNodes; i++ {
		id := wire.NodeID(100 + i)
		attached[i%spec.nc] = append(attached[i%spec.nc], id)
		h := uint64(0)
		_ = h
		net.AddNode(id, topology.NewSink(func(height uint64, at time.Time) {
			arrivals[height] = append(arrivals[height], at.Sub(published[height]))
		}))
	}
	sources := make([]*topology.StarSource, spec.nc)
	for i := 0; i < spec.nc; i++ {
		src := topology.NewStarSource(attached[i])
		sources[i] = src
		net.AddNode(wire.NodeID(i), &sourceShell{src: src})
	}
	net.Start()

	size := spec.blockMB << 20
	interval := blockInterval(spec.blockMB)
	for b := 1; b <= spec.blocks; b++ {
		h := uint64(b)
		published[h] = net.Now()
		for i, src := range sources {
			src.Publish(h, wire.NodeID(i), size) // every consensus node ships the complete block
		}
		net.Run(net.Elapsed() + interval)
	}
	net.Run(net.Elapsed() + 4*interval)
	return averageCoverage(arrivals, spec.fullNodes), nil
}

// sourceShell adapts a StarSource to env.Handler.
type sourceShell struct {
	src *topology.StarSource
}

func (s *sourceShell) Start(ctx env.Context)                    { s.src.Start(ctx) }
func (s *sourceShell) Receive(from wire.NodeID, m wire.Message) {}

// runFig8Random disseminates complete blocks over a degree-8 random graph
// with FEG-style gossip (fanout 4 + digest/pull).
func runFig8Random(spec fig8Spec) (map[float64]time.Duration, error) {
	topology.RegisterMessages()
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: spec.seed,
		Compute: spec.pool,
	})
	total := spec.nc + spec.fullNodes
	adj := randomAdjacency(total, 8, spec.seed)
	arrivals := make(map[uint64][]time.Duration)
	published := make(map[uint64]time.Time)

	nodes := make([]*gossip.Node, total)
	for i := 0; i < total; i++ {
		i := i
		var onBlock func(uint64, time.Time)
		if i >= spec.nc { // measure at full nodes only
			onBlock = func(height uint64, at time.Time) {
				arrivals[height] = append(arrivals[height], at.Sub(published[height]))
			}
		}
		nodes[i] = gossip.New(gossip.Config{
			Self:           wire.NodeID(i),
			Neighbors:      adj[i],
			Fanout:         4,
			DigestInterval: 500 * time.Millisecond,
			OnBlock:        onBlock,
		})
		net.AddNode(wire.NodeID(i), nodes[i])
	}
	net.Start()

	size := spec.blockMB << 20
	interval := blockInterval(spec.blockMB)
	for b := 1; b <= spec.blocks; b++ {
		h := uint64(b)
		published[h] = net.Now()
		for i := 0; i < spec.nc; i++ {
			nodes[i].Seed(&topology.BlockData{Height: h, Origin: wire.NodeID(i), Size: uint32(size)})
		}
		net.Run(net.Elapsed() + interval)
	}
	net.Run(net.Elapsed() + 4*interval)
	return averageCoverage(arrivals, spec.fullNodes), nil
}

// randomAdjacency builds a connected degree-d random graph.
func randomAdjacency(n, d int, seed int64) [][]wire.NodeID {
	adj := make([]map[wire.NodeID]bool, n)
	for i := range adj {
		adj[i] = make(map[wire.NodeID]bool)
	}
	link := func(a, b int) {
		if a != b {
			adj[a][wire.NodeID(b)] = true
			adj[b][wire.NodeID(a)] = true
		}
	}
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		for len(adj[i]) < d {
			link(i, next(n))
		}
	}
	out := make([][]wire.NodeID, n)
	for i, set := range adj {
		for id := range set {
			out[i] = append(out[i], id)
		}
		sort.Slice(out[i], func(a, b int) bool { return out[i][a] < out[i][b] })
	}
	return out
}

// runFig8MultiZone streams bundles as stripes continuously and measures
// how long a tiny Predis block plus local reassembly takes to complete a
// block at every full node.
func runFig8MultiZone(spec fig8Spec, zones int) (map[float64]time.Duration, error) {
	node.RegisterAllMessages()
	multizone.RegisterMessages()
	striper, err := multizone.NewStriper(spec.nc, spec.f)
	if err != nil {
		return nil, err
	}
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: spec.seed,
		Compute: spec.pool,
	})
	suite := crypto.NewSimSuite(spec.nc, uint64(spec.seed)+31)

	arrivals := make(map[uint64][]time.Duration)
	published := make(map[uint64]time.Time)

	// Consensus-side sources: produce bundles, exchange them, stripe them
	// to subscribers, and publish Predis blocks.
	sources := make([]*blockSource, spec.nc)
	for i := 0; i < spec.nc; i++ {
		src, err := newBlockSource(blockSourceConfig{
			self: wire.NodeID(i), nc: spec.nc, f: spec.f,
			suite: suite, striper: striper,
			bundleSize: 50,
		})
		if err != nil {
			return nil, err
		}
		sources[i] = src
		net.AddNode(wire.NodeID(i), src)
	}

	// Full nodes over the zones, joining incrementally.
	perZone := make([][]wire.NodeID, zones)
	for i := 0; i < spec.fullNodes; i++ {
		id := wire.NodeID(100 + i)
		perZone[i%zones] = append(perZone[i%zones], id)
	}
	joinSpacing := 15 * time.Millisecond
	for i := 0; i < spec.fullNodes; i++ {
		id := wire.NodeID(100 + i)
		z := i % zones
		peers := make([]wire.NodeID, 0)
		for _, p := range perZone[z] {
			if p != id {
				peers = append(peers, p)
			}
		}
		var backups []wire.NodeID
		if zones > 1 {
			other := perZone[(z+1)%zones]
			if len(other) > 0 {
				backups = append(backups, other[i%len(other)])
			}
		}
		fn, err := multizone.NewFullNode(multizone.FullNodeConfig{
			Self: id, Zone: z, JoinSeq: uint64(i),
			NC: spec.nc, F: spec.f,
			Striper:        striper,
			Signer:         suite.Signer(0),
			ZonePeers:      peers,
			BackupPeers:    backups,
			MaxSubscribers: 24, // §V-B: equalize bandwidth with the random topology
			AliveInterval:  300 * time.Millisecond,
			DigestInterval: 2 * time.Second,
			OnBlockComplete: func(blk *core.PredisBlock, txs int) {
				if pub, ok := published[blk.Height]; ok {
					arrivals[blk.Height] = append(arrivals[blk.Height], net.Now().Sub(pub))
				}
			},
		})
		if err != nil {
			return nil, err
		}
		net.AddNode(id, &multizone.Delayed{Inner: fn, Delay: time.Duration(i) * joinSpacing})
	}
	net.Start()
	// Let the subscription mesh settle.
	settle := time.Duration(spec.fullNodes)*joinSpacing + 2*time.Second
	net.Run(settle)

	bundleBytes := 50 * types.DefaultTxSize
	bundlesPerBlock := (spec.blockMB << 20) / bundleBytes
	perSource := (bundlesPerBlock + spec.nc - 1) / spec.nc
	interval := blockInterval(spec.blockMB)

	for b := 1; b <= spec.blocks; b++ {
		// Pre-distribute the block's bundles (this is continuous traffic in
		// steady state; its cost is *not* part of block propagation).
		for k := 0; k < perSource; k++ {
			for _, src := range sources {
				src.ProduceBundle()
			}
			// Pace production so uplinks are not modeled as infinitely
			// deep queues.
			net.Run(net.Elapsed() + time.Duration(float64(interval)/float64(perSource+1)))
		}
		// One tip-exchange round so the leader can prove availability.
		for _, src := range sources {
			src.ProduceBundle()
		}
		net.Run(net.Elapsed() + 300*time.Millisecond)

		blk, ok := sources[0].BuildBlock()
		if !ok {
			return nil, fmt.Errorf("fig8: leader could not cut a block at height %d", b)
		}
		published[blk.Height] = net.Now()
		sources[0].PublishBlock(blk)
		net.Run(net.Elapsed() + interval/2)
	}
	net.Run(net.Elapsed() + 30*time.Second)
	return averageCoverage(arrivals, spec.fullNodes), nil
}

// averageCoverage averages per-block coverage latencies across blocks.
func averageCoverage(arrivals map[uint64][]time.Duration, total int) map[float64]time.Duration {
	sums := make(map[float64]time.Duration)
	counts := make(map[float64]int)
	for _, delays := range arrivals {
		cov := latencyAtCoverage(delays, total)
		for p, d := range cov {
			sums[p] += d
			counts[p]++
		}
	}
	out := make(map[float64]time.Duration)
	for p, s := range sums {
		out[p] = s / time.Duration(counts[p])
	}
	return out
}

// blockInterval scales the production interval with block size so
// pre-distribution is feasible at 100 Mbps.
func blockInterval(blockMB int) time.Duration {
	switch {
	case blockMB <= 1:
		return 4 * time.Second
	case blockMB <= 5:
		return 12 * time.Second
	case blockMB <= 20:
		return 40 * time.Second
	default:
		return 80 * time.Second
	}
}

// Fig8 reproduces the propagation-latency comparison.
func Fig8(o Options) ([]*stats.Table, error) {
	blockSizes := []int{1, 5, 20, 40}
	fullNodes := 100
	blocks := 3
	zoneVariants := []int{3, 12}
	if o.Quick {
		blockSizes = []int{1, 5}
		fullNodes = 36
		blocks = 1
		zoneVariants = []int{3}
	}
	// Flatten (blockSize × topology-variant) into one batch for the
	// worker pool; each job runs its own simnet.Network and returns one
	// coverage series.
	type job struct {
		mb   int
		name string
		run  func(fig8Spec) (map[float64]time.Duration, error)
	}
	var jobs []job
	for _, mb := range blockSizes {
		jobs = append(jobs,
			job{mb, "star", runFig8Star},
			job{mb, "random-FEG", runFig8Random})
		for _, z := range zoneVariants {
			z := z
			jobs = append(jobs, job{mb, fmt.Sprintf("multizone-%dz", z),
				func(s fig8Spec) (map[float64]time.Duration, error) {
					return runFig8MultiZone(s, z)
				}})
		}
	}
	series, err := parRun(len(jobs), o.workers(), func(i int) (*stats.Series, error) {
		j := jobs[i]
		spec := fig8Spec{nc: 8, f: 2, fullNodes: fullNodes, blockMB: j.mb, blocks: blocks, seed: o.seed(), pool: o.Compute}
		cov, err := j.run(spec)
		if err != nil {
			return nil, err
		}
		return coverageSeries(j.name, cov), nil
	})
	if err != nil {
		return nil, err
	}
	var tables []*stats.Table
	idx := 0
	for _, mb := range blockSizes {
		tbl := &stats.Table{
			Title:  fmt.Sprintf("Fig.8 propagation latency (ms) at %d MB blocks, %d full nodes", mb, fullNodes),
			XLabel: "%nodes",
		}
		perSize := 2 + len(zoneVariants)
		tbl.Series = append(tbl.Series, series[idx:idx+perSize]...)
		idx += perSize
		tables = append(tables, tbl)
	}
	return tables, nil
}

func coverageSeries(name string, cov map[float64]time.Duration) *stats.Series {
	s := &stats.Series{Name: name}
	for _, p := range propPercentiles {
		if d, ok := cov[p]; ok {
			s.Add(p, float64(d)/float64(time.Millisecond))
		}
	}
	return s
}
