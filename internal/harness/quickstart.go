package harness

import (
	"time"

	"predis/internal/crypto"
	"predis/internal/exec"
	"predis/internal/multizone"
	"predis/internal/node"
	"predis/internal/obs"
	"predis/internal/simnet"
	"predis/internal/stats"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

// ObsSink receives the observability artifacts of an experiment run:
// the lifecycle tracer, the metrics registry, and the simnet sampler.
// Pass a zero-value sink via Options.Obs; experiments that support
// observability populate it before returning, and callers (predis-bench)
// export Chrome traces and CSV breakdowns from it. Experiments that do
// not support observability leave the sink untouched.
type ObsSink struct {
	Trace   *obs.Tracer
	Metrics *obs.Registry
	Sampler *obs.Sampler
}

// Quickstart runs the full Predis data-flow pipeline once, end to end:
// a P-HS consensus group (Predis on HotStuff) with a Multi-Zone
// full-node attachment, open-loop clients, and — when Options.Obs is
// set — lifecycle tracing plus NIC/queue sampling. It is the smallest
// deployment in which all seven pipeline stages fire (submit,
// bundle_sealed, block_proposed, prepare_commit, executed,
// stripe_distributed, fullnode_delivered), and it renders the per-stage
// latency breakdown
// the paper's dataflow argument is about: consensus-side stages stay
// flat while dissemination rides on pre-distribution.
func Quickstart(o Options) ([]*stats.Table, error) {
	nc, f := 4, 1
	zones, perZone := 2, 3
	offered := 4000.0
	duration := 6 * time.Second
	if o.Quick {
		offered = 2000
		duration = 3 * time.Second
	}
	seed := o.seed()

	node.RegisterAllMessages()
	multizone.RegisterMessages()

	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: seed,
		Compute: o.Compute,
	})
	if o.Replay != nil {
		o.Replay.Attach(net)
	}

	// Observability: tracer and metrics flow through every layer; the
	// sampler watches the network itself. All three are created even
	// without a sink so the stage table below is always rendered —
	// tracing is passive and cannot perturb the schedule.
	tracer := obs.NewTracer(simnet.Epoch)
	registry := obs.NewRegistry()
	sampler := obs.NewSampler(net, 100*time.Millisecond, registry)

	joinWindow := time.Duration(zones*perZone)*20*time.Millisecond + 200*time.Millisecond
	horizon := joinWindow + duration
	warm := simnet.Epoch.Add(joinWindow + duration/4)
	end := simnet.Epoch.Add(horizon)
	col := workload.NewCollector(warm, end)

	suite := crypto.NewSimSuite(nc, uint64(seed)+7)
	striper, err := multizone.NewStriper(nc, f)
	if err != nil {
		return nil, err
	}

	// Consensus group: P-HS with Multi-Zone distribution hooks. With
	// Options.Stream the same deployment runs in streaming-commit mode:
	// eager cuts, speculative stripe distribution at proposal time, and
	// per-bundle execution merges.
	for i := 0; i < nc; i++ {
		i := i
		host, err := multizone.NewConsensusHost(multizone.HostConfig{
			NC: nc, F: f, Self: wire.NodeID(i),
			Signer:         suite.Signer(i),
			Engine:         node.EngineHotStuff,
			BundleSize:     50,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    2 * time.Second,
			Stream:         o.Stream,
			Striper:        striper,
			ReplyToClients: true,
			Trace:          tracer,
			Metrics:        registry,
			Executor:       exec.NewMachine(execGenesis),
			OnCommit: func(height uint64, txs int) {
				if i == 0 {
					col.RecordNodeCommit(net.Now(), txs)
				}
			},
		})
		if err != nil {
			return nil, err
		}
		net.AddNode(wire.NodeID(i), host)
	}

	// Zones of full nodes joining incrementally, with one cross-zone
	// backup peer each (the Fig. 7 deployment shape, scaled down).
	fullID := func(z, k int) wire.NodeID { return wire.NodeID(100 + z*100 + k) }
	fulls := make([]*multizone.FullNode, 0, zones*perZone)
	join := 0
	for z := 0; z < zones; z++ {
		for k := 0; k < perZone; k++ {
			id := fullID(z, k)
			peers := make([]wire.NodeID, 0, perZone-1)
			for p := 0; p < perZone; p++ {
				if p != k {
					peers = append(peers, fullID(z, p))
				}
			}
			var backups []wire.NodeID
			if zones > 1 {
				backups = append(backups, fullID((z+1)%zones, k%perZone))
			}
			fn, err := multizone.NewFullNode(multizone.FullNodeConfig{
				Self: id, Zone: z, JoinSeq: uint64(join),
				NC: nc, F: f,
				Striper:        striper,
				Signer:         suite.Signer(0),
				ZonePeers:      peers,
				BackupPeers:    backups,
				AliveInterval:  300 * time.Millisecond,
				DigestInterval: 2 * time.Second,
				Trace:          tracer,
			})
			if err != nil {
				return nil, err
			}
			fulls = append(fulls, fn)
			net.AddNode(id, &multizone.Delayed{Inner: fn, Delay: time.Duration(join) * 20 * time.Millisecond})
			join++
		}
	}

	// Open-loop clients, round-robin over consensus nodes (every node
	// packs bundles in Predis).
	targets := make([]wire.NodeID, nc)
	for i := range targets {
		targets[i] = wire.NodeID(i)
	}
	clients := nc
	for k := 0; k < clients; k++ {
		net.AddNode(wire.NodeID(5000+k), workload.NewClient(workload.ClientConfig{
			Self:      wire.NodeID(5000 + k),
			Targets:   targets,
			Policy:    workload.RoundRobin,
			Rate:      offered / float64(clients),
			TxSize:    types.DefaultTxSize,
			F:         f,
			Epoch:     simnet.Epoch,
			GenStart:  simnet.Epoch.Add(joinWindow),
			GenStop:   end,
			Collector: col,
			Trace:     tracer,
		}))
	}

	sampler.Start(horizon)
	net.Start()
	net.Run(horizon)

	if o.Obs != nil {
		o.Obs.Trace = tracer
		o.Obs.Metrics = registry
		o.Obs.Sampler = sampler
	}

	// Headline numbers plus the per-stage latency breakdown.
	lat := col.Latency()
	title := "Quickstart: P-HS + Multi-Zone (rows: 1=committed tx/s, " +
		"2=confirmed tx/s, 3=mean latency ms, 4=p99 latency ms, 5=blocks, " +
		"6=p50 latency ms, 7=p90 latency ms"
	if o.Stream {
		title += ", 8=spec finalized, 9=spec wasted"
	}
	summary := &stats.Table{Title: title + ")", XLabel: "row"}
	name := "P-HS+MZ"
	if o.Stream {
		name = "P-HS+MZ stream"
	}
	sum := &stats.Series{Name: name}
	_, _, _, blocks := col.Counts()
	sum.Add(1, col.Throughput())
	sum.Add(2, col.ClientThroughput())
	sum.Add(3, float64(lat.Mean)/float64(time.Millisecond))
	sum.Add(4, float64(lat.P99)/float64(time.Millisecond))
	sum.Add(5, float64(blocks))
	sum.Add(6, float64(lat.P50)/float64(time.Millisecond))
	sum.Add(7, float64(lat.P90)/float64(time.Millisecond))
	if o.Stream {
		var hits, waste uint64
		for _, fn := range fulls {
			h, w := fn.SpecStats()
			hits += h
			waste += w
		}
		sum.Add(8, float64(hits))
		sum.Add(9, float64(waste))
	}
	summary.Series = append(summary.Series, sum)

	return []*stats.Table{summary, tracer.StageTable()}, nil
}
