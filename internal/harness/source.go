package harness

import (
	"time"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/multizone"
	"predis/internal/types"
	"predis/internal/wire"
)

// blockSource is a consensus node reduced to its data plane for the
// propagation experiment (Fig. 8): it produces bundles on demand,
// exchanges them with the other sources (as Predis consensus nodes do),
// stripes every stored bundle to its Multi-Zone subscribers, and publishes
// Predis blocks over the relayer tree. Consensus ordering itself is not
// exercised — Fig. 8 measures only the distribution layer, and the paper
// does the same by fixing the block production schedule.
type blockSourceConfig struct {
	self       wire.NodeID
	nc, f      int
	suite      *crypto.SignerSuite
	striper    *multizone.Striper
	bundleSize int
}

type blockSource struct {
	cfg  blockSourceConfig
	ctx  env.Context
	mp   *core.Mempool
	dist *multizone.Distributor

	peers []wire.NodeID

	txSeq      uint64
	lastCuts   []uint64
	lastHash   crypto.Hash
	lastHeight uint64
}

var _ env.Handler = (*blockSource)(nil)

func newBlockSource(cfg blockSourceConfig) (*blockSource, error) {
	mp, err := core.NewMempool(core.Params{
		NC: cfg.nc, F: cfg.f, BundleSize: cfg.bundleSize,
		Signer:        cfg.suite.Signer(int(cfg.self)),
		KeepConfirmed: 64,
	})
	if err != nil {
		return nil, err
	}
	s := &blockSource{
		cfg:      cfg,
		mp:       mp,
		dist:     multizone.NewDistributor(cfg.self, cfg.nc, cfg.striper, 0),
		lastCuts: core.ZeroCuts(cfg.nc),
	}
	for i := 0; i < cfg.nc; i++ {
		if wire.NodeID(i) != cfg.self {
			s.peers = append(s.peers, wire.NodeID(i))
		}
	}
	mp.SetOnLink(s.dist.OnBundleStored)
	return s, nil
}

// Start implements env.Handler.
func (s *blockSource) Start(ctx env.Context) {
	s.ctx = ctx
	s.dist.Start(ctx)
}

// Receive implements env.Handler.
func (s *blockSource) Receive(from wire.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *core.BundleMsg:
		if _, _, _, err := s.mp.AddBundle(msg.Bundle, true); err != nil {
			s.ctx.Logf("source: bundle rejected: %v", err)
		}
	case *core.BundleRequest:
		if msg.From == 0 || msg.To < msg.From {
			return
		}
		bundles := s.mp.Range(msg.Producer, msg.From-1, msg.To)
		if len(bundles) > 0 {
			s.ctx.Send(from, &core.BundleResponse{Bundles: bundles})
		}
	case *multizone.ZoneBlock:
		s.applyBlock(msg.Block)
		s.dist.OnBlockCommit(msg.Block)
	default:
		s.dist.Receive(from, m)
	}
}

// ProduceBundle packs one synthetic bundle, stores it (which stripes it to
// subscribers), and sends it to the other sources.
func (s *blockSource) ProduceBundle() {
	txs := make([]*types.Transaction, s.cfg.bundleSize)
	for i := range txs {
		s.txSeq++
		txs[i] = types.NewTransaction(9000+s.cfg.self, s.txSeq, types.DefaultTxSize,
			time.Duration(s.txSeq))
	}
	tips := s.mp.Tips()
	tips[s.cfg.self]++
	parent := s.mp.TipHeader(s.cfg.self)
	root := s.dist.StripeRoot(txs)
	b := core.PackBundleStriped(s.mp.Params().Signer, s.cfg.self, parent, txs, tips, root)
	if _, _, _, err := s.mp.AddBundle(b, false); err != nil {
		s.ctx.Logf("source: own bundle rejected: %v", err)
		return
	}
	env.Multicast(s.ctx, s.peers, &core.BundleMsg{Bundle: b})
}

// BuildBlock cuts the chains and signs a Predis block (leader only).
func (s *blockSource) BuildBlock() (*core.PredisBlock, bool) {
	return s.mp.BuildPredisBlock(s.lastHeight+1, s.lastHash, s.lastCuts, s.cfg.self)
}

// PublishBlock applies the block locally, forwards it to the other
// sources, and pushes it to this source's subscribers.
func (s *blockSource) PublishBlock(blk *core.PredisBlock) {
	s.applyBlock(blk)
	env.Multicast(s.ctx, s.peers, &multizone.ZoneBlock{Block: blk})
	s.dist.OnBlockCommit(blk)
}

func (s *blockSource) applyBlock(blk *core.PredisBlock) {
	if blk.Height != s.lastHeight+1 {
		return
	}
	s.mp.ApplyCommit(blk)
	s.lastCuts = blk.CutHeights()
	s.lastHash = blk.Hash()
	s.lastHeight = blk.Height
}
