package harness

import (
	"fmt"
	"time"

	"predis/internal/compute"
	"predis/internal/env"
	"predis/internal/simnet"
	"predis/internal/stats"
	"predis/internal/topology"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

// The scale experiment (ROADMAP 3a) measures what the rest of the suite
// cannot: population cost. N tree relays at fixed per-node bandwidth
// receive blocks down a k-ary multicast tree while aggregated client
// flows (one generator per 1000 logical clients — see workload.Flow)
// offer transaction load to the root. Sweeping N over 10²..5·10⁴ and the
// tree fan-out over deep/shallow/auto reproduces the Shallow Overlay
// Trees trade-off: deep trees pay latency·depth, shallow trees pay
// k·B/U per level, and the bandwidth-aware optimum sits between.
//
// Two kinds of output: the delivery/throughput/depth tables are
// deterministic (pure virtual-time measurements), while the machine-cost
// table (wall-clock seconds, process peak RSS) is inherently
// nondeterministic and exists to evidence the "node count is cheap now"
// claim — a 10k-node point must finish in seconds, not minutes.

// scaleSpec configures one (N, fanout) population point.
type scaleSpec struct {
	n      int
	fanout int // 0 = bandwidth-aware auto (topology.BestFanout)
	// blockBytes and blocks describe the root's block publications.
	blockBytes int
	blocks     int
	// clientRate is the offered load per logical client (tx/s); the
	// logical client population equals n.
	clientRate float64
	seed       int64
	pool       *compute.Pool
}

// scaleResult is one point's measurement.
type scaleResult struct {
	fanout   int // resolved (auto → concrete k)
	depth    int
	delivery stats.Summary // per-node block delivery latency
	coverage int           // block deliveries observed (want blocks·(n-1))
	txs      uint64        // transactions the root received
	txRate   float64       // tx/s over the generation window
	wall     time.Duration // nondeterministic: host wall-clock
	rssMB    int           // nondeterministic: process peak RSS after the point
}

// scaleRoot is the root handler: a tree relay that also absorbs the
// aggregated flows' transactions.
type scaleRoot struct {
	relay *topology.TreeRelay
	txs   uint64
}

func (r *scaleRoot) Start(ctx env.Context) { r.relay.Start(ctx) }

func (r *scaleRoot) Receive(from wire.NodeID, m wire.Message) {
	switch m.(type) {
	case *types.SubmitTx:
		r.txs++
	default:
		r.relay.Receive(from, m)
	}
}

// scaleFlowBase keeps flow node IDs clear of any relay population size.
const scaleFlowBase = 1 << 20

// runScalePoint builds and runs one population point. Host machine cost
// rides along through env.HostMeter — the sanctioned channel for
// explicitly-nondeterministic measurements.
func runScalePoint(spec scaleSpec) (scaleResult, error) {
	meter := env.NewHostMeter()
	meter.WallStart()
	topology.RegisterMessages()
	types.RegisterMessages()

	const latency = 2 * time.Millisecond
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.UniformLatency(latency),
		Seed:    spec.seed,
		Compute: spec.pool,
	})

	k := spec.fanout
	if k == 0 {
		k = topology.BestFanout(spec.n, spec.blockBytes, float64(simnet.Mbps100), latency)
	}
	order := make([]wire.NodeID, spec.n)
	for i := range order {
		order[i] = wire.NodeID(i)
	}
	tree := topology.NewTree(order, k)

	// Delivery latency sinks into a fixed-memory histogram: at 5·10⁴
	// nodes a sorted-sample summary would hold every delivery.
	var hist stats.Histogram
	published := make(map[uint64]time.Time)
	coverage := 0
	onBlock := func(height uint64, at time.Time) {
		hist.Observe(at.Sub(published[height]))
		coverage++
	}
	root := &scaleRoot{relay: topology.NewTreeRelay(tree, nil)}
	net.AddNode(order[0], root)
	for _, id := range order[1:] {
		net.AddNode(id, topology.NewTreeRelay(tree, onBlock))
	}

	// Aggregated flows: 1000 logical clients per generator, all
	// submitting to the root.
	const clientsPerFlow = 1000
	interval := time.Second
	genStop := simnet.Epoch.Add(time.Duration(spec.blocks) * interval)
	for i, first := 0, 0; first < spec.n; i, first = i+1, first+clientsPerFlow {
		clients := spec.n - first
		if clients > clientsPerFlow {
			clients = clientsPerFlow
		}
		net.AddNode(wire.NodeID(scaleFlowBase+i), workload.NewFlow(workload.FlowConfig{
			Self:        wire.NodeID(scaleFlowBase + i),
			FirstClient: wire.NodeID(scaleFlowBase + first),
			Clients:     clients,
			Targets:     order[:1],
			Policy:      workload.FirstOnly,
			Rate:        spec.clientRate * float64(clients),
			TxSize:      types.DefaultTxSize,
			Epoch:       simnet.Epoch,
			GenStart:    simnet.Epoch,
			GenStop:     genStop,
			Seed:        uint64(spec.seed)*0x9e3779b97f4a7c15 + uint64(i),
		}))
	}
	net.Start()

	for b := 1; b <= spec.blocks; b++ {
		h := uint64(b)
		published[h] = net.Now()
		root.relay.Publish(h, order[0], spec.blockBytes)
		net.Run(net.Elapsed() + interval)
	}
	net.RunUntilIdle(0)

	// Rate over the generation window, not the (topology-dependent) drain
	// time — otherwise a slow tree depresses apparent flow throughput.
	genWindow := genStop.Sub(simnet.Epoch)
	return scaleResult{
		fanout:   k,
		depth:    tree.Depth(),
		delivery: hist.Summary(),
		coverage: coverage,
		txs:      root.txs,
		txRate:   float64(root.txs) / genWindow.Seconds(),
		wall:     meter.WallElapsed(),
		rssMB:    meter.PeakRSSMB(),
	}, nil
}

// scaleFanouts are the swept tree shapes: deep (k=2), two intermediates,
// shallow (k=32), and the bandwidth-aware automatic choice.
var scaleFanouts = []struct {
	label  string
	fanout int
}{
	{"k=2 (deep)", 2},
	{"k=8", 8},
	{"k=32 (shallow)", 32},
	{"k=auto", 0},
}

// Scale reproduces the population sweep.
func Scale(o Options) ([]*stats.Table, error) {
	ns := []int{100, 1000, 10000, 50000}
	blocks := 3
	if o.Quick {
		ns = []int{100, 1000, 10000}
		blocks = 2
	}
	type job struct {
		n       int
		variant int // index into scaleFanouts
	}
	var jobs []job
	for _, n := range ns {
		for v := range scaleFanouts {
			jobs = append(jobs, job{n, v})
		}
	}
	results, err := parRun(len(jobs), o.workers(), func(i int) (scaleResult, error) {
		j := jobs[i]
		return runScalePoint(scaleSpec{
			n:          j.n,
			fanout:     scaleFanouts[j.variant].fanout,
			blockBytes: 256 << 10,
			blocks:     blocks,
			clientRate: 0.2,
			seed:       o.seed(),
			pool:       o.Compute,
		})
	})
	if err != nil {
		return nil, err
	}

	p90 := &stats.Table{Title: "Scale: block delivery p90 (ms) vs population, 256 KB blocks, 100 Mbps, 2 ms", XLabel: "nodes"}
	depth := &stats.Table{Title: "Scale: tree depth (hops) and resolved fan-out", XLabel: "nodes"}
	tput := &stats.Table{Title: "Scale: aggregated-flow throughput at the root (tx/s, 0.2 tx/s per logical client)", XLabel: "nodes"}
	machine := &stats.Table{Title: "Scale: machine cost (nondeterministic) — wall-clock s per point, process peak RSS MB", XLabel: "nodes"}
	rss := &stats.Series{Name: "peak_rss_MB"}
	idx := 0
	for _, n := range ns {
		for v, fo := range scaleFanouts {
			res := results[idx]
			idx++
			if want := blocks * (n - 1); res.coverage != want {
				return nil, fmt.Errorf("scale: n=%d %s covered %d deliveries, want %d",
					n, fo.label, res.coverage, want)
			}
			name := fo.label
			series(p90, name).Add(float64(n), float64(res.delivery.P90)/float64(time.Millisecond))
			series(depth, name).Add(float64(n), float64(res.depth))
			if fo.fanout == 0 {
				// The resolved auto fan-out rides in the depth table as its
				// own series so the choice is visible in the output.
				series(depth, "auto resolved k").Add(float64(n), float64(res.fanout))
			}
			series(tput, name).Add(float64(n), res.txRate)
			series(machine, name+" wall_s").Add(float64(n), res.wall.Seconds())
			if v == len(scaleFanouts)-1 {
				rss.Add(float64(n), float64(res.rssMB))
			}
		}
	}
	machine.Series = append(machine.Series, rss)
	return []*stats.Table{p90, depth, tput, machine}, nil
}

// series returns the named series of t, creating it on first use.
func series(t *stats.Table, name string) *stats.Series {
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	s := &stats.Series{Name: name}
	t.Series = append(t.Series, s)
	return s
}
