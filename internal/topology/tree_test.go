package topology

import (
	"testing"
	"time"

	"predis/internal/simnet"
	"predis/internal/wire"
)

// TestTreeChildrenShareBacking pins the memory contract: every Children
// call returns a subslice of the one Order array, never a copy.
func TestTreeChildrenShareBacking(t *testing.T) {
	order := make([]wire.NodeID, 100)
	for i := range order {
		order[i] = wire.NodeID(i)
	}
	tr := NewTree(order, 3)
	seen := 0
	for p := range order {
		kids := tr.Children(p)
		for i, kid := range kids {
			if want := order[p*3+1+i]; kid != want {
				t.Fatalf("child %d of pos %d = %d, want %d", i, p, kid, want)
			}
			seen++
		}
		if len(kids) > 0 && &kids[0] != &order[p*3+1] {
			t.Fatalf("children of pos %d are a copy, not a shared subslice", p)
		}
	}
	if seen != len(order)-1 {
		t.Fatalf("tree covers %d children, want %d (every non-root exactly once)", seen, len(order)-1)
	}
}

// TestTreeDepth pins depths for known shapes.
func TestTreeDepth(t *testing.T) {
	cases := []struct {
		n, k, depth int
	}{
		{1, 2, 0}, {2, 2, 1}, {3, 2, 1}, {4, 2, 2}, {7, 2, 2}, {8, 2, 3},
		{1000, 1000, 1}, {100, 10, 2}, {111, 10, 2}, {112, 10, 3},
	}
	for _, c := range cases {
		order := make([]wire.NodeID, c.n)
		for i := range order {
			order[i] = wire.NodeID(i)
		}
		if got := NewTree(order, c.k).Depth(); got != c.depth {
			t.Errorf("depth(n=%d, k=%d) = %d, want %d", c.n, c.k, got, c.depth)
		}
	}
}

// TestBestFanoutTradesDepthForBandwidth checks the analytic optimum moves
// the right way: latency-dominated regimes prefer shallow (large k),
// bandwidth-dominated regimes prefer deep (small k).
func TestBestFanoutTradesDepthForBandwidth(t *testing.T) {
	const n = 10000
	up := float64(simnet.Mbps100)
	// Tiny blocks + big latency: serialization is free, depth is the whole
	// cost, so the best tree is shallow.
	shallow := BestFanout(n, 512, up, 50*time.Millisecond)
	// Huge blocks + negligible latency: every extra child at a level costs
	// a full block serialization, so the best tree is deep.
	deep := BestFanout(n, 8<<20, up, 10*time.Microsecond)
	if shallow <= deep {
		t.Fatalf("BestFanout: shallow regime k=%d should exceed deep regime k=%d", shallow, deep)
	}
	if deep < 1 || shallow > n {
		t.Fatalf("fanouts out of range: deep=%d shallow=%d", deep, shallow)
	}
}

// TestTreeRelayDeliversWholePopulation runs a real simulated broadcast:
// every node in a 3-ary tree of 200 nodes must see each published height
// exactly once, children strictly after parents.
func TestTreeRelayDeliversWholePopulation(t *testing.T) {
	RegisterMessages()
	const n = 200
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.UniformLatency(time.Millisecond),
		Seed:    1,
	})
	order := make([]wire.NodeID, n)
	for i := range order {
		order[i] = wire.NodeID(i)
	}
	tr := NewTree(order, 3)
	got := make(map[wire.NodeID][]uint64)
	relays := make([]*TreeRelay, n)
	for i, id := range order {
		id := id
		relays[i] = NewTreeRelay(tr, func(h uint64, at time.Time) {
			got[id] = append(got[id], h)
		})
		net.AddNode(id, relays[i])
	}
	net.Start()
	for h := uint64(1); h <= 3; h++ {
		relays[0].Publish(h, order[0], 32<<10)
		net.RunUntilIdle(0)
	}
	for _, id := range order {
		if len(got[id]) != 3 {
			t.Fatalf("node %d saw heights %v, want exactly [1 2 3]", id, got[id])
		}
		for i, h := range got[id] {
			if h != uint64(i+1) {
				t.Fatalf("node %d height order %v", id, got[id])
			}
		}
	}
	// n-1 edges per height, 3 heights: the tree sends each block exactly
	// once per edge — no duplicate suppression traffic at all.
	if want := uint64(3 * (n - 1)); net.Delivered() != want {
		t.Fatalf("delivered %d messages, want %d (one per edge per height)", net.Delivered(), want)
	}
}
