// k-ary multicast trees for population-scale block distribution.
//
// The Shallow Overlay Trees observation (PAPERS.md) is that at 10⁴–10⁵
// nodes the distribution bottleneck is the product depth × per-hop cost,
// where per-hop cost is k·B/U (serializing the block to k children at
// uplink rate U) plus the propagation latency L. A deep tree (small k)
// minimizes per-hop serialization but pays many latency hops; a shallow
// tree (large k) pays one giant serialization at every level. BestFanout
// picks k minimizing the analytic completion estimate.
//
// Memory: one shared Order slice holds the whole tree. The children of
// the node at position p are Order[p*k+1 : p*k+1+k] — shared subslices of
// the same backing array, so a 50 000-node tree costs one []wire.NodeID
// instead of 50 000 per-node child copies.
package topology

import (
	"time"

	"predis/internal/env"
	"predis/internal/wire"
)

// Tree is a k-ary multicast tree over a node population. Position 0 is
// the root; the node at position p has children at positions
// p·k+1 .. p·k+k (the classic heap layout), so parent/child relations
// need no per-node storage at all.
type Tree struct {
	// Order is the population in tree order (root first). All child
	// lookups are subslices of this one backing array.
	Order []wire.NodeID
	// Fanout is k.
	Fanout int
}

// NewTree builds a k-ary tree over the given population in the given
// order (the order is the layout: breadth-first positions). The slice is
// referenced, not copied; callers must not mutate it afterwards.
func NewTree(order []wire.NodeID, fanout int) *Tree {
	if fanout < 1 {
		fanout = 1
	}
	return &Tree{Order: order, Fanout: fanout}
}

// pos returns the tree position of id, or -1. Linear probe kept out of
// hot paths — relays resolve their position once at Start.
func (t *Tree) pos(id wire.NodeID) int {
	for p, n := range t.Order {
		if n == id {
			return p
		}
	}
	return -1
}

// Children returns the child IDs of the node at position p — a shared
// subslice of Order (zero copy, zero allocation). Callers must not
// mutate it.
//
//predis:hotpath
func (t *Tree) Children(p int) []wire.NodeID {
	lo := p*t.Fanout + 1
	if lo >= len(t.Order) {
		return nil
	}
	hi := lo + t.Fanout
	if hi > len(t.Order) {
		hi = len(t.Order)
	}
	return t.Order[lo:hi]
}

// Depth returns the number of hops from the root to the deepest node.
func (t *Tree) Depth() int {
	if len(t.Order) <= 1 {
		return 0
	}
	depth := 0
	// Last position's depth: walk parents to the root.
	for p := len(t.Order) - 1; p > 0; p = (p - 1) / t.Fanout {
		depth++
	}
	return depth
}

// CompletionEstimate is the analytic full-population completion time of a
// blockBytes broadcast over a k-ary tree of n nodes: every level costs
// k·B/U (serialize to k children) + L (propagate), and there are depth
// levels. It is the objective BestFanout minimizes.
func CompletionEstimate(n, fanout, blockBytes int, uplinkBytesPerSec float64, latency time.Duration) time.Duration {
	if n <= 1 || fanout < 1 {
		return 0
	}
	// Depth of a k-ary tree with n nodes: smallest d with
	// 1 + k + k² + … + k^d ≥ n.
	depth := 0
	level := 1 // nodes at the deepest level so far
	for span := 1; span < n; depth++ {
		level *= fanout
		if level > n {
			level = n // cap so huge fanouts cannot overflow
		}
		span += level
	}
	perHop := latency
	if uplinkBytesPerSec > 0 {
		perHop += time.Duration(float64(fanout) * float64(blockBytes) / uplinkBytesPerSec * float64(time.Second))
	}
	return time.Duration(depth) * perHop
}

// BestFanout returns the fan-out minimizing CompletionEstimate for a
// population of n nodes receiving blockBytes blocks at the given uplink
// rate and one-way latency — the bandwidth-aware shallow-vs-deep choice.
// Candidates are scanned over 2..n-1 (n ≤ 2 degenerates to 1).
func BestFanout(n, blockBytes int, uplinkBytesPerSec float64, latency time.Duration) int {
	if n <= 2 {
		return 1
	}
	best, bestCost := 2, CompletionEstimate(n, 2, blockBytes, uplinkBytesPerSec, latency)
	for k := 3; k < n; k++ {
		cost := CompletionEstimate(n, k, blockBytes, uplinkBytesPerSec, latency)
		if cost < bestCost {
			best, bestCost = k, cost
		}
		// Costs are unimodal in k (serialization grows linearly once
		// depth stops shrinking); stop after the curve turns up for good.
		if k > 2*best+8 {
			break
		}
	}
	return best
}

// TreeRelay is the handler each tree node runs: on the first arrival of a
// height it forwards the same message pointer to its children (the tree
// gives every node a single parent, so no dedupe set is needed beyond
// skipping re-sends of a height) and reports the delivery.
type TreeRelay struct {
	tree *Tree
	ctx  env.Context
	p    int // own position, resolved once at Start
	// maxSeen is the deduplication state: experiments publish heights in
	// ascending order, so one watermark replaces a per-height set.
	maxSeen uint64
	// OnBlock fires on the first arrival of each height.
	OnBlock func(height uint64, at time.Time)
}

var _ env.Handler = (*TreeRelay)(nil)

// NewTreeRelay builds a relay over the shared tree.
func NewTreeRelay(tree *Tree, onBlock func(height uint64, at time.Time)) *TreeRelay {
	return &TreeRelay{tree: tree, OnBlock: onBlock}
}

// Start implements env.Handler.
func (r *TreeRelay) Start(ctx env.Context) {
	r.ctx = ctx
	r.p = r.tree.pos(ctx.ID())
}

// Receive implements env.Handler: forward first arrivals down the tree.
// Dispatch is a single type assertion (the payload pattern), not a type
// switch: topology's other message kinds (Digest, Pull) are dispatched
// by the gossip package, and a switch here would promise exhaustiveness
// this relay deliberately does not have.
//
//predis:hotpath
func (r *TreeRelay) Receive(from wire.NodeID, m wire.Message) {
	bd, ok := m.(*BlockData)
	if !ok {
		return // tree relays carry only block data
	}
	if bd.Height <= r.maxSeen {
		return
	}
	r.maxSeen = bd.Height
	if r.OnBlock != nil {
		r.OnBlock(bd.Height, r.ctx.Now())
	}
	for _, child := range r.tree.Children(r.p) {
		r.ctx.Send(child, m)
	}
}

// Publish injects a block at the root: the root relay records it and
// fans it to its children exactly as if it had arrived from a parent.
func (r *TreeRelay) Publish(height uint64, origin wire.NodeID, size int) {
	r.Receive(origin, &BlockData{Height: height, Origin: origin, Size: uint32(size)})
}
