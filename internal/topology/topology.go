// Package topology implements the two baseline network topologies the
// paper compares Multi-Zone against (§V-B):
//
//   - the star topology, where every full node attaches directly to a
//     consensus node and receives complete blocks from it — consensus
//     bandwidth therefore grows linearly with the full-node count;
//   - helpers shared with the random topology (package gossip), notably
//     the opaque BlockData message that carries a complete block of a
//     given size.
package topology

import (
	"sync"
	"time"

	"predis/internal/env"
	"predis/internal/wire"
)

// Message type tags (shared with package gossip).
const (
	TypeBlockData = wire.TypeRangeGossip + 1
	TypeDigest    = wire.TypeRangeGossip + 2
	TypePull      = wire.TypeRangeGossip + 3
)

// BlockData is a complete block as an opaque payload of a given size. The
// star and random topologies ship whole blocks, so only the size matters
// for propagation behaviour; content is synthetic padding.
type BlockData struct {
	Height uint64
	Origin wire.NodeID
	Size   uint32 // total message body size to emulate, ≥ blockDataMin
}

// blockDataMin is the encoded size of the real fields.
const blockDataMin = 8 + 4 + 4

var _ wire.Message = (*BlockData)(nil)

// Type implements wire.Message.
func (m *BlockData) Type() wire.Type { return TypeBlockData }

// WireSize implements wire.Message.
func (m *BlockData) WireSize() int {
	size := int(m.Size)
	if size < blockDataMin {
		size = blockDataMin
	}
	return wire.FrameOverhead + size
}

// zeroPad is a shared read-only buffer for synthetic block padding, so
// encoding a BlockData does not allocate its payload every time. It is
// never written after initialisation, so concurrent encoders (independent
// simulations under -parallel) can slice it freely.
var zeroPad = make([]byte, 64<<10)

// EncodeBody implements wire.Message.
func (m *BlockData) EncodeBody(e *wire.Encoder) {
	e.U64(m.Height)
	e.Node(m.Origin)
	e.U32(m.Size)
	for pad := int(m.Size) - blockDataMin; pad > 0; {
		n := pad
		if n > len(zeroPad) {
			n = len(zeroPad)
		}
		e.Raw(zeroPad[:n])
		pad -= n
	}
}

func decodeBlockData(d *wire.Decoder) (wire.Message, error) {
	m := &BlockData{Height: d.U64(), Origin: d.Node(), Size: d.U32()}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if pad := int(m.Size) - blockDataMin; pad > 0 {
		d.Raw(pad)
	}
	return m, d.Err()
}

// Digest advertises the blocks a gossip node holds (max contiguous height;
// heights are dense in these experiments).
type Digest struct {
	MaxHeight uint64
}

var _ wire.Message = (*Digest)(nil)

// Type implements wire.Message.
func (m *Digest) Type() wire.Type { return TypeDigest }

// WireSize implements wire.Message.
func (m *Digest) WireSize() int { return wire.FrameOverhead + 8 }

// EncodeBody implements wire.Message.
func (m *Digest) EncodeBody(e *wire.Encoder) { e.U64(m.MaxHeight) }

func decodeDigest(d *wire.Decoder) (wire.Message, error) {
	return &Digest{MaxHeight: d.U64()}, d.Err()
}

// Pull requests blocks by height from a digest sender.
type Pull struct {
	Heights []uint64
}

var _ wire.Message = (*Pull)(nil)

// Type implements wire.Message.
func (m *Pull) Type() wire.Type { return TypePull }

// WireSize implements wire.Message.
func (m *Pull) WireSize() int { return wire.FrameOverhead + wire.SizeU64Slice(m.Heights) }

// EncodeBody implements wire.Message.
func (m *Pull) EncodeBody(e *wire.Encoder) { e.U64Slice(m.Heights) }

func decodePull(d *wire.Decoder) (wire.Message, error) {
	return &Pull{Heights: d.U64Slice()}, d.Err()
}

var registerOnce sync.Once

// RegisterMessages registers topology/gossip message types; idempotent.
func RegisterMessages() {
	registerOnce.Do(func() {
		wire.Register(TypeBlockData, "topo.block", decodeBlockData)
		wire.Register(TypeDigest, "topo.digest", decodeDigest)
		wire.Register(TypePull, "topo.pull", decodePull)
	})
}

// Sink is a full node in the star topology: it records block arrivals and
// nothing else (star full nodes are pure consumers).
type Sink struct {
	ctx env.Context
	// OnBlock fires on the first arrival of each height.
	OnBlock func(height uint64, at time.Time)
	seen    map[uint64]bool
}

var _ env.Handler = (*Sink)(nil)

// NewSink builds a star full node.
func NewSink(onBlock func(height uint64, at time.Time)) *Sink {
	return &Sink{OnBlock: onBlock, seen: make(map[uint64]bool)}
}

// Start implements env.Handler.
func (s *Sink) Start(ctx env.Context) { s.ctx = ctx }

// Receive implements env.Handler.
func (s *Sink) Receive(from wire.NodeID, m wire.Message) {
	bd, ok := m.(*BlockData)
	if !ok {
		return
	}
	if s.seen[bd.Height] {
		return
	}
	s.seen[bd.Height] = true
	if s.OnBlock != nil {
		s.OnBlock(bd.Height, s.ctx.Now())
	}
}

// StarSource fans complete blocks out to attached full nodes; consensus
// nodes in the star topology use one per node.
type StarSource struct {
	ctx      env.Context
	attached []wire.NodeID
}

// NewStarSource builds a source for the given attached full nodes.
func NewStarSource(attached []wire.NodeID) *StarSource {
	return &StarSource{attached: append([]wire.NodeID(nil), attached...)}
}

// Start records the context (call from the host handler's Start).
func (s *StarSource) Start(ctx env.Context) { s.ctx = ctx }

// Publish sends a complete block of the given size to every attached full
// node.
func (s *StarSource) Publish(height uint64, origin wire.NodeID, size int) {
	if s.ctx == nil {
		return
	}
	m := &BlockData{Height: height, Origin: origin, Size: uint32(size)}
	for _, id := range s.attached {
		s.ctx.Send(id, m)
	}
}

// Attached returns the number of attached full nodes.
func (s *StarSource) Attached() int { return len(s.attached) }
