package topology

import (
	"testing"
	"time"

	"predis/internal/env"
	"predis/internal/simnet"
	"predis/internal/wire"
)

func TestTopologyMessageCodecs(t *testing.T) {
	RegisterMessages()
	msgs := []wire.Message{
		&BlockData{Height: 3, Origin: 2, Size: 4096},
		&BlockData{Height: 4, Origin: 1, Size: 0}, // below blockDataMin: clamped
		&Digest{MaxHeight: 41},
		&Pull{Heights: []uint64{7, 9, 11}},
	}
	for _, m := range msgs {
		got, err := wire.Roundtrip(m)
		if err != nil {
			t.Fatalf("%s roundtrip: %v", wire.TypeName(m.Type()), err)
		}
		if got.Type() != m.Type() {
			t.Fatalf("%s roundtrip changed type tag", wire.TypeName(m.Type()))
		}
		if len(wire.Marshal(m)) != m.WireSize() {
			t.Fatalf("%s WireSize mismatch: declared %d, marshaled %d",
				wire.TypeName(m.Type()), m.WireSize(), len(wire.Marshal(m)))
		}
	}
	bd, err := wire.Roundtrip(&BlockData{Height: 8, Origin: 3, Size: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if g := bd.(*BlockData); g.Height != 8 || g.Origin != 3 || g.Size != 1<<16 {
		t.Fatalf("BlockData fields changed: %+v", g)
	}
	p, err := wire.Roundtrip(&Pull{Heights: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g := p.(*Pull); len(g.Heights) != 3 || g.Heights[2] != 3 {
		t.Fatalf("Pull heights changed: %+v", g)
	}
}

func TestStarSourceFanout(t *testing.T) {
	RegisterMessages()
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.UniformLatency(10 * time.Millisecond), Seed: 1,
	})
	const sinks = 6
	arrivals := make(map[wire.NodeID]time.Time)
	for i := 0; i < sinks; i++ {
		id := wire.NodeID(10 + i)
		net.AddNode(id, NewSink(func(height uint64, at time.Time) {
			arrivals[id] = at
		}))
	}
	attached := make([]wire.NodeID, sinks)
	for i := range attached {
		attached[i] = wire.NodeID(10 + i)
	}
	src := NewStarSource(attached)
	if src.Attached() != sinks {
		t.Fatalf("Attached = %d", src.Attached())
	}
	host := &hostShell{src: src}
	net.AddNode(0, host)
	net.Start()
	src.Publish(1, 0, 1<<20) // 1 MB
	net.RunUntilIdle(0)

	if len(arrivals) != sinks {
		t.Fatalf("%d sinks got the block, want %d", len(arrivals), sinks)
	}
	// With a shared uplink, arrivals are strictly serialized: the last
	// sink waits ≈ sinks × size/rate.
	var first, last time.Time
	for _, at := range arrivals {
		if first.IsZero() || at.Before(first) {
			first = at
		}
		if at.After(last) {
			last = at
		}
	}
	perCopy := time.Duration(float64(1<<20) / float64(simnet.Mbps100) * float64(time.Second))
	minSpread := time.Duration(sinks-1) * perCopy
	if spread := last.Sub(first); spread < minSpread*9/10 {
		t.Fatalf("spread %v too small for serialized uplink (want ≥ %v)", spread, minSpread)
	}
}

// hostShell adapts StarSource to env.Handler for the test.
type hostShell struct{ src *StarSource }

func (h *hostShell) Start(ctx env.Context)                    { h.src.Start(ctx) }
func (h *hostShell) Receive(from wire.NodeID, m wire.Message) {}

func TestSinkDedupes(t *testing.T) {
	RegisterMessages()
	count := 0
	s := NewSink(func(h uint64, at time.Time) { count++ })
	net := simnet.New(simnet.Config{})
	net.AddNode(0, s)
	net.Start()
	s.Receive(1, &BlockData{Height: 5, Size: 100})
	s.Receive(2, &BlockData{Height: 5, Size: 100})
	s.Receive(2, &BlockData{Height: 6, Size: 100})
	if count != 2 {
		t.Fatalf("OnBlock fired %d times, want 2", count)
	}
}
