package topology

import (
	"testing"
	"time"

	"predis/internal/env"
	"predis/internal/simnet"
	"predis/internal/wire"
)

func TestStarSourceFanout(t *testing.T) {
	RegisterMessages()
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.UniformLatency(10 * time.Millisecond), Seed: 1,
	})
	const sinks = 6
	arrivals := make(map[wire.NodeID]time.Time)
	for i := 0; i < sinks; i++ {
		id := wire.NodeID(10 + i)
		net.AddNode(id, NewSink(func(height uint64, at time.Time) {
			arrivals[id] = at
		}))
	}
	attached := make([]wire.NodeID, sinks)
	for i := range attached {
		attached[i] = wire.NodeID(10 + i)
	}
	src := NewStarSource(attached)
	if src.Attached() != sinks {
		t.Fatalf("Attached = %d", src.Attached())
	}
	host := &hostShell{src: src}
	net.AddNode(0, host)
	net.Start()
	src.Publish(1, 0, 1<<20) // 1 MB
	net.RunUntilIdle(0)

	if len(arrivals) != sinks {
		t.Fatalf("%d sinks got the block, want %d", len(arrivals), sinks)
	}
	// With a shared uplink, arrivals are strictly serialized: the last
	// sink waits ≈ sinks × size/rate.
	var first, last time.Time
	for _, at := range arrivals {
		if first.IsZero() || at.Before(first) {
			first = at
		}
		if at.After(last) {
			last = at
		}
	}
	perCopy := time.Duration(float64(1<<20) / float64(simnet.Mbps100) * float64(time.Second))
	minSpread := time.Duration(sinks-1) * perCopy
	if spread := last.Sub(first); spread < minSpread*9/10 {
		t.Fatalf("spread %v too small for serialized uplink (want ≥ %v)", spread, minSpread)
	}
}

// hostShell adapts StarSource to env.Handler for the test.
type hostShell struct{ src *StarSource }

func (h *hostShell) Start(ctx env.Context)                    { h.src.Start(ctx) }
func (h *hostShell) Receive(from wire.NodeID, m wire.Message) {}

func TestSinkDedupes(t *testing.T) {
	RegisterMessages()
	count := 0
	s := NewSink(func(h uint64, at time.Time) { count++ })
	net := simnet.New(simnet.Config{})
	net.AddNode(0, s)
	net.Start()
	s.Receive(1, &BlockData{Height: 5, Size: 100})
	s.Receive(2, &BlockData{Height: 5, Size: 100})
	s.Receive(2, &BlockData{Height: 6, Size: 100})
	if count != 2 {
		t.Fatalf("OnBlock fired %d times, want 2", count)
	}
}
