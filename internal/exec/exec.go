// Package exec is the deterministic execution plane: an account state
// machine over the semantic operations carried by types.Transaction
// (transfer / read-modify-write with declared read and write sets) and a
// two-phase parallel committer in the Octopus/DAG style.
//
// Phase one runs on the event loop and is pure bookkeeping: the block's
// committed transactions are grouped into dependency levels by
// read/write-set conflict analysis (RAW, WAR, and WAW conflicts all
// order transactions into later levels; read-read sharing does not).
// The construction guarantees two properties inside any single level:
// no two transactions write the same key, and no transaction reads a
// key a level-mate writes. Every kernel of a level therefore sees
// exactly the pre-level state, and the level's write sets are disjoint
// — so the merge result is independent of execution order and worker
// count.
//
// Phase two executes each level's transactions as pure kernels on the
// compute pool (compute.Pool.Map): each kernel reads an immutable
// Snapshot and buffers its writes into its own output slot. At the
// fork-join's deterministic join point — back on the event loop — the
// buffered writes merge into the block's multi-version state cache
// (MVCache), versioned by level; the cache flushes into the base state
// once per block. The resulting state root is byte-identical for any
// -workers count, including the nil inline pool, and identical to the
// serial reference committer that applies transactions strictly in
// commit order.
//
// Like every protocol component, a Machine is driven from the single
// simulator goroutine; only the kernels handed to Pool.Map run
// elsewhere, and they touch nothing but their Snapshot and their own
// output slot (enforced statically by the purecompute analyzer, which
// also rejects MVCache use inside offloaded closures).
package exec

import (
	"encoding/binary"
	"sort"

	"predis/internal/compute"
	"predis/internal/crypto"
	"predis/internal/types"
)

// WriteOp is one buffered account write.
type WriteOp struct {
	Key, Val uint64
}

// effect is one transaction's buffered outcome: its writes, or a
// deterministic abort (insufficient balance) with no writes.
type effect struct {
	writes  []WriteOp
	aborted bool
}

// Snapshot is the read-only state view offloaded kernels execute
// against: the committed base state plus the multi-version cache of all
// previously merged levels. It is immutable for the duration of a
// Pool.Map fork-join — merges happen only at event-loop join points —
// so workers may read it concurrently.
type Snapshot struct {
	base    map[uint64]uint64
	cache   map[uint64]uint64
	genesis uint64
}

// Get returns the balance of an account, falling back to the genesis
// default for accounts never written.
func (s Snapshot) Get(key uint64) uint64 {
	if v, ok := s.cache[key]; ok {
		return v
	}
	if v, ok := s.base[key]; ok {
		return v
	}
	return s.genesis
}

// MVCache is the multi-version state cache of one block's execution:
// each dependency level's writes merge into it at the level's join
// point, tagged with the level as their version, and the whole cache
// flushes into the base state once at block commit. Only the event loop
// may call its methods; offloaded kernels read through Snapshot (the
// purecompute analyzer rejects MVCache calls inside closures handed to
// the pool).
type MVCache struct {
	vals    map[uint64]uint64
	version map[uint64]int
}

// NewMVCache builds an empty cache.
func NewMVCache() *MVCache {
	return &MVCache{
		vals:    make(map[uint64]uint64),
		version: make(map[uint64]int),
	}
}

// Merge applies one level's buffered writes, recording the level as the
// written keys' version. Call only at the level's join point.
func (c *MVCache) Merge(level int, writes []WriteOp) {
	for _, w := range writes {
		c.vals[w.Key] = w.Val
		c.version[w.Key] = level
	}
}

// Version returns the level that last wrote key, or -1 when the cache
// holds no version for it.
func (c *MVCache) Version(key uint64) int {
	if v, ok := c.version[key]; ok {
		return v
	}
	return -1
}

// Len returns the number of distinct keys written.
func (c *MVCache) Len() int { return len(c.vals) }

// flushInto folds the cached values into the base state.
func (c *MVCache) flushInto(state map[uint64]uint64) {
	for k, v := range c.vals {
		state[k] = v
	}
}

// Result summarizes one block's execution.
type Result struct {
	Height    uint64
	StateRoot crypto.Hash
	// Txs counts the block's semantic (non-opaque) transactions.
	Txs int
	// Applied and Aborted partition Txs; aborts are deterministic
	// (insufficient balance), never scheduling artifacts.
	Applied, Aborted int
	// Levels is the dependency-level count; MaxWidth the widest level.
	// Levels == 1 means the whole block was conflict-free; mean width
	// (Txs/Levels) is the committer's available parallelism, which is
	// the meaningful measure even on a 1-CPU host.
	Levels, MaxWidth int
}

// Stats aggregates execution counters across a machine's lifetime.
type Stats struct {
	Blocks, Txs, Applied, Aborted int
	Levels, MaxWidth              int
}

// MeanWidth returns the lifetime mean dependency-level width.
func (s Stats) MeanWidth() float64 {
	if s.Levels == 0 {
		return 0
	}
	return float64(s.Txs) / float64(s.Levels)
}

// Machine is the account state machine one node maintains. All methods
// run on the event loop; a machine is never shared between nodes (each
// replica executes its own copy of the committed sequence).
type Machine struct {
	genesis uint64
	state   map[uint64]uint64
	height  uint64
	stats   Stats

	// scratch buffers reused across blocks by the leveler.
	rbuf, wbuf []uint64
}

// NewMachine builds a machine whose accounts all start at the genesis
// balance.
func NewMachine(genesis uint64) *Machine {
	return &Machine{genesis: genesis, state: make(map[uint64]uint64)}
}

// Height returns the last executed block height.
func (m *Machine) Height() uint64 { return m.height }

// Balance returns an account's balance (genesis default when never
// written).
func (m *Machine) Balance(key uint64) uint64 {
	if v, ok := m.state[key]; ok {
		return v
	}
	return m.genesis
}

// Touched returns how many accounts have been written since genesis.
func (m *Machine) Touched() int { return len(m.state) }

// Stats returns the lifetime execution counters.
func (m *Machine) Stats() Stats { return m.stats }

// StateRoot returns the commitment to the full account state: the hash
// of the genesis balance followed by every written (account, balance)
// pair in ascending account order. Two machines agree on the root iff
// they agree on every balance.
func (m *Machine) StateRoot() crypto.Hash {
	keys := make([]uint64, 0, len(m.state))
	for k := range m.state {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf := make([]byte, 0, 8+16*len(keys))
	buf = binary.BigEndian.AppendUint64(buf, m.genesis)
	for _, k := range keys {
		buf = binary.BigEndian.AppendUint64(buf, k)
		buf = binary.BigEndian.AppendUint64(buf, m.state[k])
	}
	return crypto.HashBytes(buf)
}

// semantic returns the indices of the block's non-opaque transactions.
func semantic(txs []*types.Transaction) []int {
	out := make([]int, 0, len(txs))
	for i, tx := range txs {
		if !tx.Op.IsNoop() {
			out = append(out, i)
		}
	}
	return out
}

// levelize groups the block's semantic transactions into dependency
// levels. A transaction lands one level past the latest conflicting
// predecessor in commit order: past the last writer of anything it
// reads (RAW), and past both the last writer (WAW) and the last reader
// (WAR) of anything it writes. Within a level, write sets are disjoint
// and no transaction reads a level-mate's writes, so level-internal
// execution order cannot matter.
func (m *Machine) levelize(txs []*types.Transaction, sem []int) [][]int {
	lastRead := make(map[uint64]int, len(sem)*2)
	lastWrite := make(map[uint64]int, len(sem)*2)
	var levels [][]int
	for _, ti := range sem {
		op := &txs[ti].Op
		m.rbuf = op.ReadKeys(m.rbuf[:0])
		m.wbuf = op.WriteKeys(m.wbuf[:0])
		lvl := 0
		for _, k := range m.rbuf {
			if w, ok := lastWrite[k]; ok && w+1 > lvl {
				lvl = w + 1
			}
		}
		for _, k := range m.wbuf {
			if w, ok := lastWrite[k]; ok && w+1 > lvl {
				lvl = w + 1
			}
			if r, ok := lastRead[k]; ok && r+1 > lvl {
				lvl = r + 1
			}
		}
		for _, k := range m.rbuf {
			if r, ok := lastRead[k]; !ok || lvl > r {
				lastRead[k] = lvl
			}
		}
		for _, k := range m.wbuf {
			lastWrite[k] = lvl // strictly increasing per key (WAW ordered)
		}
		for lvl >= len(levels) {
			levels = append(levels, nil)
		}
		levels[lvl] = append(levels[lvl], ti)
	}
	return levels
}

// applyOp executes one semantic operation against the snapshot and
// returns its buffered effect. It is a pure kernel: it reads only snap
// and the op and writes only its own return value, so the compute pool
// may run a level's kernels in any order on any worker count. Both
// committers (parallel and serial) apply ops through this one function,
// so their per-op semantics cannot drift.
func applyOp(snap Snapshot, op *types.Op) effect {
	switch op.Kind {
	case types.OpTransfer:
		if op.From == op.To {
			return effect{} // self-transfer: applies, moves nothing
		}
		from := snap.Get(op.From)
		if from < op.Amount {
			return effect{aborted: true}
		}
		return effect{writes: []WriteOp{
			{Key: op.From, Val: from - op.Amount},
			{Key: op.To, Val: snap.Get(op.To) + op.Amount},
		}}
	case types.OpRMW:
		var fold uint64
		for _, k := range op.Reads {
			fold ^= snap.Get(k) // the read half: observe, don't write
		}
		_ = fold
		writes := make([]WriteOp, 0, len(op.Writes))
		for _, k := range op.Writes {
			writes = append(writes, WriteOp{Key: k, Val: snap.Get(k) + op.Delta})
		}
		return effect{writes: writes}
	}
	return effect{}
}

// ExecuteBlock runs the two-phase parallel committer over one committed
// block: levelize, then execute each level's kernels on the pool (nil
// pool = inline) and merge their buffered writes through the
// multi-version cache at the level's join point. The returned state
// root is byte-identical for any worker count and equal to
// ExecuteBlockSerial's on the same machine state and transaction
// sequence.
func (m *Machine) ExecuteBlock(pool *compute.Pool, height uint64, txs []*types.Transaction) Result {
	sem := semantic(txs)
	levels := m.levelize(txs, sem)
	cache := NewMVCache()
	res := Result{Height: height, Txs: len(sem), Levels: len(levels)}
	m.runLevels(pool, txs, levels, cache, 0, &res)
	m.commit(cache, &res)
	return res
}

// runLevels executes dependency levels against the block's cache, tagging
// merged writes with lvlBase+level so callers that execute a block in
// several leveling units (per-bundle streaming) keep cache versions
// monotonic across units.
func (m *Machine) runLevels(pool *compute.Pool, txs []*types.Transaction, levels [][]int,
	cache *MVCache, lvlBase int, res *Result) {
	for lvl, idxs := range levels {
		if len(idxs) > res.MaxWidth {
			res.MaxWidth = len(idxs)
		}
		snap := Snapshot{base: m.state, cache: cache.vals, genesis: m.genesis}
		out := make([]effect, len(idxs))
		pool.Map(len(idxs), func(i int) {
			out[i] = applyOp(snap, &txs[idxs[i]].Op)
		})
		// Join point: the fork-join completed, merge the level in index
		// order (order is immaterial — write sets are disjoint — but
		// fixed order keeps the loop boring to reason about).
		for i := range out {
			if out[i].aborted {
				res.Aborted++
			} else {
				res.Applied++
			}
			cache.Merge(lvlBase+lvl, out[i].writes)
		}
	}
}

// ExecuteBlockBundles is the streaming-mode committer: it executes one
// committed block's transactions bundle by bundle, levelizing each bundle
// independently and merging its levels into the shared per-block cache at
// bundle joins instead of one block-wide join. Cross-bundle conflicts
// need no analysis — a later bundle's snapshot already contains every
// earlier bundle's merged writes, which serializes bundles exactly as
// commit order does — so the state root equals ExecuteBlock's over the
// flattened transaction sequence, for any worker count.
func (m *Machine) ExecuteBlockBundles(pool *compute.Pool, height uint64, bundles [][]*types.Transaction) Result {
	cache := NewMVCache()
	res := Result{Height: height}
	lvlBase := 0
	for _, txs := range bundles {
		sem := semantic(txs)
		levels := m.levelize(txs, sem)
		res.Txs += len(sem)
		res.Levels += len(levels)
		m.runLevels(pool, txs, levels, cache, lvlBase, &res)
		lvlBase += len(levels)
	}
	m.commit(cache, &res)
	return res
}

// ExecuteBlockSerial is the reference committer: it applies the block's
// semantic transactions strictly in commit order, one level each. It
// exists to pin the parallel committer's semantics (identical state
// roots) and as the contention experiment's baseline.
func (m *Machine) ExecuteBlockSerial(height uint64, txs []*types.Transaction) Result {
	sem := semantic(txs)
	cache := NewMVCache()
	res := Result{Height: height, Txs: len(sem), Levels: len(sem)}
	if len(sem) > 0 {
		res.MaxWidth = 1
	}
	for i, ti := range sem {
		snap := Snapshot{base: m.state, cache: cache.vals, genesis: m.genesis}
		eff := applyOp(snap, &txs[ti].Op)
		if eff.aborted {
			res.Aborted++
		} else {
			res.Applied++
		}
		cache.Merge(i, eff.writes)
	}
	m.commit(cache, &res)
	return res
}

// commit flushes the block's cache into the base state and finalizes
// the result and lifetime stats.
func (m *Machine) commit(cache *MVCache, res *Result) {
	cache.flushInto(m.state)
	m.height = res.Height
	res.StateRoot = m.StateRoot()
	m.stats.Blocks++
	m.stats.Txs += res.Txs
	m.stats.Applied += res.Applied
	m.stats.Aborted += res.Aborted
	m.stats.Levels += res.Levels
	if res.MaxWidth > m.stats.MaxWidth {
		m.stats.MaxWidth = res.MaxWidth
	}
}
