package exec

import (
	"testing"
	"time"

	"predis/internal/compute"
	"predis/internal/crypto"
	"predis/internal/types"
	"predis/internal/wire"
)

const genesis = 1000

func transfer(seq uint64, from, to, amount uint64) *types.Transaction {
	return types.NewTransaction(wire.NodeID(1+seq%4), seq, types.DefaultTxSize, time.Duration(seq)).
		WithOp(types.Op{Kind: types.OpTransfer, From: from, To: to, Amount: amount})
}

func rmw(seq uint64, reads, writes []uint64, delta uint64) *types.Transaction {
	return types.NewTransaction(wire.NodeID(1+seq%4), seq, types.DefaultTxSize, time.Duration(seq)).
		WithOp(types.Op{Kind: types.OpRMW, Reads: reads, Writes: writes, Delta: delta})
}

func opaque(seq uint64) *types.Transaction {
	return types.NewTransaction(wire.NodeID(1+seq%4), seq, types.DefaultTxSize, time.Duration(seq))
}

// levelsOf extracts each transaction's level index for comparison.
func levelsOf(m *Machine, txs []*types.Transaction) map[uint64]int {
	sem := semantic(txs)
	got := map[uint64]int{}
	for lvl, idxs := range m.levelize(txs, sem) {
		for _, ti := range idxs {
			got[txs[ti].Seq] = lvl
		}
	}
	return got
}

func TestLevelizeConflictFree(t *testing.T) {
	m := NewMachine(genesis)
	txs := []*types.Transaction{
		transfer(0, 1, 2, 5),
		transfer(1, 3, 4, 5),
		opaque(2),
		transfer(3, 5, 6, 5),
	}
	lv := levelsOf(m, txs)
	if lv[0] != 0 || lv[1] != 0 || lv[3] != 0 {
		t.Fatalf("disjoint transfers must share level 0: %v", lv)
	}
	if _, ok := lv[2]; ok {
		t.Fatal("opaque tx must not be leveled")
	}
}

func TestLevelizeConflictChain(t *testing.T) {
	m := NewMachine(genesis)
	txs := []*types.Transaction{
		transfer(0, 1, 2, 5),                 // writes {1,2}
		transfer(1, 2, 3, 5),                 // RAW+WAW on 2 -> level 1
		transfer(2, 3, 4, 5),                 // conflicts with seq 1 on 3 -> level 2
		transfer(3, 9, 10, 5),                // independent -> level 0
		rmw(4, []uint64{1}, []uint64{20}, 1), // reads 1 (written at lvl 0) -> level 1
		rmw(5, nil, []uint64{1}, 1),          // writes 1: past writer lvl 0 AND reader lvl 1 -> level 2
	}
	lv := levelsOf(m, txs)
	want := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 0, 4: 1, 5: 2}
	for seq, w := range want {
		if lv[seq] != w {
			t.Fatalf("seq %d level = %d, want %d (all: %v)", seq, lv[seq], w, lv)
		}
	}
}

func TestExecuteBlockTransferSemantics(t *testing.T) {
	m := NewMachine(genesis)
	res := m.ExecuteBlock(nil, 1, []*types.Transaction{
		transfer(0, 1, 2, 300),
		transfer(1, 1, 3, 300), // serial predecessor left 700 -> applies
		transfer(2, 1, 4, 500), // balance now 400 -> deterministic abort
		transfer(3, 7, 7, 999), // self-transfer: applies, moves nothing
		opaque(4),
	})
	if res.Txs != 4 || res.Applied != 3 || res.Aborted != 1 {
		t.Fatalf("result = %+v", res)
	}
	if got := m.Balance(1); got != genesis-600 {
		t.Fatalf("Balance(1) = %d, want %d", got, genesis-600)
	}
	if got := m.Balance(2); got != genesis+300 {
		t.Fatalf("Balance(2) = %d, want %d", got, genesis+300)
	}
	if got := m.Balance(4); got != genesis {
		t.Fatalf("aborted transfer must not move funds: Balance(4) = %d", got)
	}
	if m.Height() != 1 {
		t.Fatalf("Height = %d", m.Height())
	}
}

func TestMVCacheVersioning(t *testing.T) {
	c := NewMVCache()
	if c.Version(7) != -1 || c.Len() != 0 {
		t.Fatal("empty cache must report no versions")
	}
	c.Merge(0, []WriteOp{{Key: 7, Val: 10}, {Key: 8, Val: 11}})
	c.Merge(2, []WriteOp{{Key: 7, Val: 20}})
	if c.Version(7) != 2 || c.Version(8) != 0 || c.Len() != 2 {
		t.Fatalf("versions = %d,%d len %d", c.Version(7), c.Version(8), c.Len())
	}
	state := map[uint64]uint64{8: 1}
	c.flushInto(state)
	if state[7] != 20 || state[8] != 11 {
		t.Fatalf("flush kept stale values: %v", state)
	}
}

// highConflictBlock is a schedule where nearly every transaction
// conflicts with a predecessor: long RAW/WAW chains over a tiny account
// set, interleaved with independent work and deterministic aborts.
func highConflictBlock(n int) []*types.Transaction {
	txs := make([]*types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		seq := uint64(i)
		switch i % 5 {
		case 0:
			txs = append(txs, transfer(seq, 1, 2, 50))
		case 1:
			txs = append(txs, transfer(seq, 2, 3, 120))
		case 2:
			txs = append(txs, rmw(seq, []uint64{1, 3}, []uint64{2}, 7))
		case 3:
			txs = append(txs, transfer(seq, 3, 1, 900)) // aborts once 3 drains
		default:
			txs = append(txs, rmw(seq, nil, []uint64{4, 5}, 3))
		}
	}
	return txs
}

// uniformBlock is a mostly conflict-free schedule across many accounts.
func uniformBlock(n int) []*types.Transaction {
	txs := make([]*types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		seq := uint64(i)
		from := 100 + 2*seq
		txs = append(txs, transfer(seq, from, from+1, 25))
	}
	return txs
}

// foldResults hashes the full observable result sequence — roots and
// every counter — so two executions compare as one value.
func foldResults(rs []Result) crypto.Hash {
	h := crypto.ZeroHash
	for _, r := range rs {
		h = crypto.HashConcat(h[:], r.StateRoot[:], []byte{
			byte(r.Height), byte(r.Txs), byte(r.Applied),
			byte(r.Aborted), byte(r.Levels), byte(r.MaxWidth),
		})
	}
	return h
}

func runBlocks(pool *compute.Pool, serial bool, blocks [][]*types.Transaction) ([]Result, crypto.Hash, *Machine) {
	m := NewMachine(genesis)
	var rs []Result
	for i, blk := range blocks {
		if serial {
			rs = append(rs, m.ExecuteBlockSerial(uint64(i+1), blk))
		} else {
			rs = append(rs, m.ExecuteBlock(pool, uint64(i+1), blk))
		}
	}
	return rs, m.StateRoot(), m
}

// TestWorkerInvariance is the determinism pin: the same block sequence
// executed with the inline pool, one worker, and four workers must
// produce byte-identical state roots and result counters, on both a
// high-conflict and a conflict-free schedule — and all must equal the
// serial reference committer.
func TestWorkerInvariance(t *testing.T) {
	blocks := [][]*types.Transaction{
		highConflictBlock(64),
		uniformBlock(64),
		highConflictBlock(31),
		{opaque(0), opaque(1)}, // all-opaque block
		{},                     // empty block
	}
	serialRes, serialRoot, _ := runBlocks(nil, true, blocks)
	serialFold := foldResults(serialRes)

	for _, workers := range []int{0, 1, 4} {
		pool := compute.NewPool(workers)
		rs, root, m := runBlocks(pool, false, blocks)
		pool.Close()
		if root != serialRoot {
			t.Fatalf("workers=%d: state root %s != serial %s", workers, root.Short(), serialRoot.Short())
		}
		for i := range rs {
			if rs[i].StateRoot != serialRes[i].StateRoot ||
				rs[i].Applied != serialRes[i].Applied ||
				rs[i].Aborted != serialRes[i].Aborted {
				t.Fatalf("workers=%d block %d: %+v != serial %+v", workers, i+1, rs[i], serialRes[i])
			}
		}
		// Parallel runs share one fold too (serial differs only in the
		// Levels/MaxWidth shape counters, checked separately below).
		if workers == 0 {
			serialFold = foldResults(rs)
		} else if f := foldResults(rs); f != serialFold {
			t.Fatalf("workers=%d: result fold diverged", workers)
		}
		if m.Stats().Aborted == 0 {
			t.Fatal("schedule must exercise deterministic aborts")
		}
	}
}

// TestBundleCommitterEquivalence pins the streaming committer: executing
// a block bundle-by-bundle must yield the same state root and
// applied/aborted counts as executing the flattened block at once, and as
// the serial reference, for every worker count.
func TestBundleCommitterEquivalence(t *testing.T) {
	bundles := [][]*types.Transaction{
		highConflictBlock(17),
		uniformBlock(23),
		{},                     // empty bundle (stream heartbeat)
		{opaque(0), opaque(1)}, // all-opaque bundle
		highConflictBlock(9),
	}
	var flat []*types.Transaction
	for _, b := range bundles {
		flat = append(flat, b...)
	}
	ref := NewMachine(genesis)
	refRes := ref.ExecuteBlockSerial(1, flat)

	for _, workers := range []int{0, 1, 4} {
		pool := compute.NewPool(workers)
		whole := NewMachine(genesis)
		wres := whole.ExecuteBlock(pool, 1, flat)
		byBundle := NewMachine(genesis)
		bres := byBundle.ExecuteBlockBundles(pool, 1, bundles)
		pool.Close()
		if bres.StateRoot != wres.StateRoot || bres.StateRoot != refRes.StateRoot {
			t.Fatalf("workers=%d: bundle root %s, block root %s, serial root %s",
				workers, bres.StateRoot.Short(), wres.StateRoot.Short(), refRes.StateRoot.Short())
		}
		if bres.Txs != wres.Txs || bres.Applied != wres.Applied || bres.Aborted != wres.Aborted {
			t.Fatalf("workers=%d: bundle counters %+v != block %+v", workers, bres, wres)
		}
		if byBundle.Height() != 1 {
			t.Fatalf("workers=%d: Height = %d", workers, byBundle.Height())
		}
		// Per-bundle leveling cannot be flatter than whole-block leveling
		// (it forgoes cross-bundle width), and never exceeds the tx count.
		if bres.Levels < wres.Levels || bres.Levels > bres.Txs {
			t.Fatalf("workers=%d: bundle levels %d outside [%d, %d]",
				workers, bres.Levels, wres.Levels, bres.Txs)
		}
	}
}

// TestParallelismAvailable checks the leveler actually finds width: the
// conflict-free schedule must collapse to one wide level, the
// high-conflict one must stay narrow.
func TestParallelismAvailable(t *testing.T) {
	m := NewMachine(genesis)
	res := m.ExecuteBlock(nil, 1, uniformBlock(64))
	if res.Levels != 1 || res.MaxWidth != 64 {
		t.Fatalf("conflict-free block: levels=%d maxWidth=%d, want 1/64", res.Levels, res.MaxWidth)
	}
	m2 := NewMachine(genesis)
	res2 := m2.ExecuteBlock(nil, 1, highConflictBlock(64))
	if res2.Levels < 10 {
		t.Fatalf("high-conflict block leveled too flat: levels=%d", res2.Levels)
	}
	if res2.Levels > res2.Txs {
		t.Fatalf("levels %d exceed txs %d", res2.Levels, res2.Txs)
	}
}

func TestStateRootCommitsToState(t *testing.T) {
	a := NewMachine(genesis)
	b := NewMachine(genesis)
	if a.StateRoot() != b.StateRoot() {
		t.Fatal("fresh machines must agree")
	}
	a.ExecuteBlock(nil, 1, []*types.Transaction{transfer(0, 1, 2, 5)})
	if a.StateRoot() == b.StateRoot() {
		t.Fatal("root must change when state changes")
	}
	b.ExecuteBlockSerial(1, []*types.Transaction{transfer(0, 1, 2, 5)})
	if a.StateRoot() != b.StateRoot() {
		t.Fatal("serial and parallel committers diverged on one transfer")
	}
	c := NewMachine(genesis + 1)
	if c.StateRoot() == b.StateRoot() && c.Touched() == 0 {
		t.Fatal("root must commit to the genesis balance")
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := NewMachine(genesis)
	m.ExecuteBlock(nil, 1, uniformBlock(8))
	m.ExecuteBlock(nil, 2, highConflictBlock(10))
	s := m.Stats()
	if s.Blocks != 2 || s.Txs != 18 || s.Applied+s.Aborted != 18 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeanWidth() <= 1 {
		t.Fatalf("mean width = %f, want > 1 (uniform block is wide)", s.MeanWidth())
	}
	if m.Height() != 2 {
		t.Fatalf("Height = %d", m.Height())
	}
}

func TestRMWDelta(t *testing.T) {
	m := NewMachine(genesis)
	m.ExecuteBlock(nil, 1, []*types.Transaction{
		rmw(0, nil, []uint64{5}, 10),
		rmw(1, []uint64{5}, []uint64{5}, 10), // chained: sees 1010
	})
	if got := m.Balance(5); got != genesis+20 {
		t.Fatalf("Balance(5) = %d, want %d", got, genesis+20)
	}
}
