// Package stats provides the small statistics toolkit the benchmark
// harness uses: duration summaries, percentiles, and plain-text series
// tables that mirror the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary describes a sample of durations.
type Summary struct {
	Count         int
	Min, Max      time.Duration
	Mean          time.Duration
	P50, P90, P99 time.Duration
}

// Percentile returns the p-th percentile (0..100) of a sorted sample using
// the nearest-rank definition: the value at rank ceil(p/100·n), 1-based.
// Empty samples yield zero.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	// Nearest-rank is ceil, not round-half-up: P85 of 12 samples is rank
	// ceil(10.2) = 11, where rounding would understate it as rank 10. The
	// tiny epsilon absorbs float error when p/100·n is an exact integer.
	rank := int(math.Ceil(p/100*float64(len(sorted)) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Summarize computes a Summary; the input is not modified.
func Summarize(sample []time.Duration) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	sorted := append([]time.Duration(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  sum / time.Duration(len(sorted)),
		P50:   Percentile(sorted, 50),
		P90:   Percentile(sorted, 90),
		P99:   Percentile(sorted, 99),
	}
}

// Point is one measurement in a series (e.g. one offered-load step of a
// throughput-latency curve).
type Point struct {
	X float64 // independent variable (offered load, node count, block MB…)
	Y float64 // dependent variable (throughput, latency…)
}

// Series is a named sequence of points, one line in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Table renders series as an aligned text table with one row per X value
// and one column per series, for terminal output and EXPERIMENTS.md.
type Table struct {
	Title  string
	XLabel string
	Series []*Series
}

// Render formats the table.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	// Collect the union of X values in first-seen order.
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range t.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

// Throughput converts a transaction count over a window into tx/s.
func Throughput(txs int, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(txs) / window.Seconds()
}
