package stats

import (
	"math"
	"time"
)

// histGrowth is the geometric bucket ratio: ~5% relative resolution, so a
// reported percentile is within 5% of the exact sample percentile.
const histGrowth = 1.05

// histBuckets spans 1 µs .. ~10⁴ s in histGrowth steps (bucket i covers
// [1µs·r^i, 1µs·r^(i+1))); durations outside the span clamp to the edge
// buckets. ~470 buckets ≈ 4 KB — fixed memory regardless of sample count.
const histBuckets = 472

// Histogram is a streaming duration summary with fixed memory: exact
// Count/Min/Max/Mean plus percentiles read from geometric buckets (≤5%
// relative error). Use it where Summarize's copy-and-sort would hold every
// sample — a 10⁵-node delivery sweep records millions of latencies, and a
// sorted copy per summary call would dominate the experiment's memory.
// The zero value is ready to use.
type Histogram struct {
	counts   [histBuckets]uint32
	count    int
	min, max time.Duration
	sum      float64 // float accumulator: 2⁶³ ns overflows after ~10⁶ × 2.5h
}

// Observe adds one duration to the histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += float64(d)
	h.counts[bucketOf(d)]++
}

// bucketOf maps a duration to its geometric bucket, clamping to the span.
func bucketOf(d time.Duration) int {
	if d < time.Microsecond {
		return 0
	}
	b := int(math.Log(float64(d)/float64(time.Microsecond)) / math.Log(histGrowth))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketUpper returns the upper edge of bucket b — the value reported for
// percentiles landing in b, so the approximation always rounds up (a
// reported latency is never better than reality).
func bucketUpper(b int) time.Duration {
	return time.Duration(float64(time.Microsecond) * math.Pow(histGrowth, float64(b+1)))
}

// Count returns how many durations were observed.
func (h *Histogram) Count() int { return h.count }

// Percentile returns the approximate p-th percentile (0..100): the upper
// edge of the bucket holding the nearest-rank sample, clamped into
// [Min, Max] so edge percentiles are exact.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := int(math.Ceil(p/100*float64(h.count) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	seen := 0
	for b := 0; b < histBuckets; b++ {
		seen += int(h.counts[b])
		if seen >= rank {
			v := bucketUpper(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Summary renders the histogram in the same shape as Summarize:
// Count/Min/Max/Mean are exact, percentiles carry the ≤5% bucket error.
func (h *Histogram) Summary() Summary {
	if h.count == 0 {
		return Summary{}
	}
	return Summary{
		Count: h.count,
		Min:   h.min,
		Max:   h.max,
		Mean:  time.Duration(h.sum / float64(h.count)),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
	}
}
