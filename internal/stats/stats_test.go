package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileEdges(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty sample must yield 0")
	}
	one := []time.Duration{7}
	for _, p := range []float64{-5, 0, 50, 100, 120} {
		if Percentile(one, p) != 7 {
			t.Fatalf("p=%v of singleton = %v", p, Percentile(one, p))
		}
	}
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(sorted, 50); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(sorted, 100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(sorted, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
}

// TestPercentileNearestRank pins the nearest-rank definition
// (rank = ceil(p/100·n)) for odd, even, and single-element samples.
// The P85-of-12 case is the regression the round-half-up bug understated:
// ceil(10.2) = rank 11 (value 11), where int(10.2+0.5) gave rank 10.
func TestPercentileNearestRank(t *testing.T) {
	seq := func(n int) []time.Duration {
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = time.Duration(i + 1)
		}
		return out
	}
	cases := []struct {
		name string
		n    int
		p    float64
		want time.Duration
	}{
		{"single-p50", 1, 50, 1},
		{"single-p99", 1, 99, 1},
		{"odd-p50", 5, 50, 3},    // ceil(2.5) = 3
		{"odd-p90", 5, 90, 5},    // ceil(4.5) = 5
		{"odd-p99", 5, 99, 5},    // ceil(4.95) = 5
		{"even-p50", 4, 50, 2},   // ceil(2.0) = 2 (exact integer stays put)
		{"even-p90", 4, 90, 4},   // ceil(3.6) = 4
		{"even-p99", 4, 99, 4},   // ceil(3.96) = 4
		{"even-p85", 12, 85, 11}, // ceil(10.2) = 11; round-half-up said 10
		{"even-p25", 12, 25, 3},  // ceil(3.0) = 3
		{"ten-p50", 10, 50, 5},   // ceil(5.0) = 5
		{"ten-p90", 10, 90, 9},   // ceil(9.0) = 9
		{"ten-p99", 10, 99, 10},  // ceil(9.9) = 10
		{"hundred-p99", 100, 99, 99},
		{"hundred-p90", 100, 90, 90},
	}
	for _, tc := range cases {
		if got := Percentile(seq(tc.n), tc.p); got != tc.want {
			t.Errorf("%s: Percentile(1..%d, %v) = %v, want %v",
				tc.name, tc.n, tc.p, got, tc.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatal("empty summary must be zero")
	}
	sample := []time.Duration{30, 10, 20}
	s := Summarize(sample)
	if s.Count != 3 || s.Min != 10 || s.Max != 30 || s.Mean != 20 {
		t.Fatalf("summary: %+v", s)
	}
	// Input must not be reordered.
	if sample[0] != 30 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestSummarizeOrderInvariant(t *testing.T) {
	f := func(raw []int16) bool {
		a := make([]time.Duration, len(raw))
		b := make([]time.Duration, len(raw))
		for i, v := range raw {
			d := time.Duration(int(v)) + 40000
			a[i] = d
			b[len(raw)-1-i] = d
		}
		return Summarize(a) == Summarize(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	if Throughput(100, 0) != 0 {
		t.Fatal("zero window must yield 0")
	}
	if got := Throughput(500, 2*time.Second); got != 250 {
		t.Fatalf("Throughput = %v", got)
	}
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Name: "alpha"}
	a.Add(1, 10)
	a.Add(2, 20.5)
	b := &Series{Name: "beta"}
	b.Add(2, 7)
	b.Add(3, 9)
	tbl := &Table{Title: "demo", XLabel: "x", Series: []*Series{a, b}}
	out := tbl.Render()
	for _, want := range []string{"demo", "alpha", "beta", "20.5", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + 3 distinct X values.
	if len(lines) != 5 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1:       "1",
		1.5:     "1.5",
		1.25:    "1.25",
		1.10:    "1.1",
		0:       "0",
		-2.50:   "-2.5",
		1000.00: "1000",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Fatalf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
