package stats

import (
	"math/rand"
	"testing"
	"time"
)

// TestHistogramMatchesSummarize cross-checks the streaming histogram
// against the exact copy-and-sort path at small n: exact fields must match
// exactly, percentiles within the documented 5% bucket error.
func TestHistogramMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 10, 100, 5000} {
		sample := make([]time.Duration, n)
		var h Histogram
		for i := range sample {
			// Log-uniform over 10µs .. ~22min, covering many buckets.
			d := time.Duration(float64(10*time.Microsecond) * pow(2, rng.Float64()*27))
			sample[i] = d
			h.Observe(d)
		}
		exact := Summarize(sample)
		approx := h.Summary()
		if approx.Count != exact.Count || approx.Min != exact.Min || approx.Max != exact.Max {
			t.Fatalf("n=%d: exact fields diverge: %+v vs %+v", n, approx, exact)
		}
		if !within(approx.Mean, exact.Mean, 0.001) {
			t.Fatalf("n=%d: mean %v vs exact %v", n, approx.Mean, exact.Mean)
		}
		for _, p := range []struct {
			name           string
			approx, exact_ time.Duration
		}{
			{"p50", approx.P50, exact.P50},
			{"p90", approx.P90, exact.P90},
			{"p99", approx.P99, exact.P99},
		} {
			if !within(p.approx, p.exact_, histGrowth-1) {
				t.Fatalf("n=%d: %s %v vs exact %v (>%v%% off)",
					n, p.name, p.approx, p.exact_, 100*(histGrowth-1))
			}
			if p.approx < exact.Min || p.approx > exact.Max {
				t.Fatalf("n=%d: %s %v outside [min, max]", n, p.name, p.approx)
			}
		}
	}
}

// TestHistogramEdges pins empty, single-sample, and out-of-span behaviour.
func TestHistogramEdges(t *testing.T) {
	var empty Histogram
	if s := empty.Summary(); s != (Summary{}) {
		t.Fatalf("empty histogram summary = %+v", s)
	}
	var one Histogram
	one.Observe(42 * time.Millisecond)
	s := one.Summary()
	if s.Count != 1 || s.Min != 42*time.Millisecond || s.Max != 42*time.Millisecond {
		t.Fatalf("single-sample summary = %+v", s)
	}
	// Percentiles clamp into [min, max], so one sample is reported exactly.
	if s.P50 != 42*time.Millisecond || s.P99 != 42*time.Millisecond {
		t.Fatalf("single-sample percentiles = %+v", s)
	}
	var clamp Histogram
	clamp.Observe(0)                 // below span
	clamp.Observe(100 * time.Minute) // within span
	clamp.Observe(1e6 * time.Second) // clamps to the last bucket
	if got := clamp.Summary(); got.Min != 0 || got.Max != 1e6*time.Second || got.Count != 3 {
		t.Fatalf("clamped summary = %+v", got)
	}
}

func within(a, b time.Duration, tol float64) bool {
	if b == 0 {
		return a == 0
	}
	r := float64(a)/float64(b) - 1
	if r < 0 {
		r = -r
	}
	return r <= tol
}

func pow(base, exp float64) float64 {
	out := 1.0
	for exp >= 1 {
		out *= base
		exp--
	}
	if exp > 0 {
		// Linear interpolation of the fractional power is fine for test
		// data generation; exactness is not needed here.
		out *= 1 + exp*(base-1)
	}
	return out
}
