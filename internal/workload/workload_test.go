package workload

import (
	"testing"
	"time"

	"predis/internal/env"
	"predis/internal/simnet"
	"predis/internal/types"
	"predis/internal/wire"
)

// capture records every message a node receives.
type capture struct {
	ctx env.Context
	got []wire.Message
}

func (c *capture) Start(ctx env.Context)                    { c.ctx = ctx }
func (c *capture) Receive(from wire.NodeID, m wire.Message) { c.got = append(c.got, m) }

func buildClientNet(t *testing.T, policy TargetPolicy, rate float64) (*simnet.Network, *Client, []*capture, *Collector) {
	t.Helper()
	types.RegisterMessages()
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(time.Millisecond), Seed: 2})
	targets := []*capture{{}, {}, {}, {}}
	ids := make([]wire.NodeID, len(targets))
	for i, c := range targets {
		ids[i] = wire.NodeID(i)
		net.AddNode(wire.NodeID(i), c)
	}
	col := NewCollector(simnet.Epoch, simnet.Epoch.Add(5*time.Second))
	cl := NewClient(ClientConfig{
		Self:      100,
		Targets:   ids,
		Policy:    policy,
		Rate:      rate,
		TxSize:    512,
		F:         1,
		Epoch:     simnet.Epoch,
		GenStart:  simnet.Epoch,
		GenStop:   simnet.Epoch.Add(time.Second),
		Collector: col,
	})
	net.AddNode(100, cl)
	return net, cl, targets, col
}

func TestClientRoundRobinRate(t *testing.T) {
	net, cl, targets, _ := buildClientNet(t, RoundRobin, 400)
	net.Start()
	net.Run(2 * time.Second)
	total := 0
	for _, c := range targets {
		total += len(c.got)
	}
	// Open loop at 400 tx/s for 1s: ~400 messages spread evenly.
	if total < 350 || total > 450 {
		t.Fatalf("delivered %d txs, want ≈400", total)
	}
	for i, c := range targets {
		if len(c.got) < total/8 {
			t.Fatalf("target %d starved: %d of %d", i, len(c.got), total)
		}
	}
	if cl.Submitted() == 0 || cl.PendingCount() == 0 {
		t.Fatal("client bookkeeping empty")
	}
}

func TestClientBroadcast(t *testing.T) {
	net, _, targets, _ := buildClientNet(t, Broadcast, 100)
	net.Start()
	net.Run(2 * time.Second)
	// Every target receives every transaction.
	n := len(targets[0].got)
	if n < 80 {
		t.Fatalf("target 0 got %d", n)
	}
	for i, c := range targets {
		if len(c.got) != n {
			t.Fatalf("target %d got %d, target 0 got %d", i, len(c.got), n)
		}
	}
}

func TestClientFirstOnly(t *testing.T) {
	net, _, targets, _ := buildClientNet(t, FirstOnly, 100)
	net.Start()
	net.Run(2 * time.Second)
	if len(targets[0].got) == 0 {
		t.Fatal("first target got nothing")
	}
	for i := 1; i < len(targets); i++ {
		if len(targets[i].got) != 0 {
			t.Fatalf("target %d got traffic under FirstOnly", i)
		}
	}
}

func TestClientConfirmsAtQuorum(t *testing.T) {
	types.RegisterMessages()
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(time.Millisecond)})
	col := NewCollector(simnet.Epoch, simnet.Epoch.Add(time.Minute))
	cl := NewClient(ClientConfig{
		Self: 100, Targets: []wire.NodeID{0}, Rate: 0, TxSize: 512, F: 1,
		Epoch: simnet.Epoch, GenStart: simnet.Epoch, GenStop: simnet.Epoch,
		Collector: col,
	})
	sink := &capture{}
	net.AddNode(0, sink)
	net.AddNode(100, cl)
	net.Start()
	// Submit one tx manually by driving the client's internals through a
	// simulated reply exchange: inject replies for a fabricated pending tx.
	cl.pending[7] = &pendingTx{submitted: net.Now(), replies: map[wire.NodeID]struct{}{}}
	cl.Receive(1, &types.BlockReply{Height: 1, Replica: 1, Seqs: []uint64{7}})
	if len(cl.pending) != 1 {
		t.Fatal("one reply must not confirm with f=1")
	}
	// Duplicate replica reply does not count twice.
	cl.Receive(1, &types.BlockReply{Height: 1, Replica: 1, Seqs: []uint64{7}})
	if len(cl.pending) != 1 {
		t.Fatal("duplicate reply confirmed the tx")
	}
	cl.Receive(2, &types.BlockReply{Height: 1, Replica: 2, Seqs: []uint64{7}})
	if len(cl.pending) != 0 {
		t.Fatal("f+1 distinct replies must confirm")
	}
	_, confirmed, _, _ := col.Counts()
	if confirmed != 1 {
		t.Fatalf("confirmed = %d", confirmed)
	}
}

func TestCollectorWindowing(t *testing.T) {
	warm := simnet.Epoch.Add(time.Second)
	end := simnet.Epoch.Add(3 * time.Second)
	col := NewCollector(warm, end)
	col.RecordNodeCommit(simnet.Epoch, 100)                        // before warmup: ignored
	col.RecordNodeCommit(warm, 10)                                 // boundary: counted
	col.RecordNodeCommit(warm.Add(time.Second), 20)                // inside
	col.RecordNodeCommit(end, 1000)                                // at end: ignored
	col.RecordConfirm(warm, warm.Add(1500*time.Millisecond))       // inside
	col.RecordConfirm(simnet.Epoch, simnet.Epoch.Add(time.Second)) // boundary (at warm): counted
	col.RecordSubmit(warm.Add(time.Millisecond))
	sub, confirmed, committed, blocks := col.Counts()
	if committed != 30 || blocks != 2 {
		t.Fatalf("committed=%d blocks=%d", committed, blocks)
	}
	if confirmed != 2 || sub != 1 {
		t.Fatalf("confirmed=%d submitted=%d", confirmed, sub)
	}
	if col.Window() != 2*time.Second {
		t.Fatalf("Window = %v", col.Window())
	}
	if got := col.Throughput(); got != 15 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := col.ClientThroughput(); got != 1 {
		t.Fatalf("ClientThroughput = %v", got)
	}
	if col.Latency().Count != 2 {
		t.Fatalf("latency samples = %d", col.Latency().Count)
	}
}
