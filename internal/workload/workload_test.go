package workload

import (
	"testing"
	"time"

	"predis/internal/env"
	"predis/internal/simnet"
	"predis/internal/types"
	"predis/internal/wire"
)

// capture records every message a node receives.
type capture struct {
	ctx env.Context
	got []wire.Message
}

func (c *capture) Start(ctx env.Context)                    { c.ctx = ctx }
func (c *capture) Receive(from wire.NodeID, m wire.Message) { c.got = append(c.got, m) }

func buildClientNet(t *testing.T, policy TargetPolicy, rate float64) (*simnet.Network, *Client, []*capture, *Collector) {
	t.Helper()
	types.RegisterMessages()
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(time.Millisecond), Seed: 2})
	targets := []*capture{{}, {}, {}, {}}
	ids := make([]wire.NodeID, len(targets))
	for i, c := range targets {
		ids[i] = wire.NodeID(i)
		net.AddNode(wire.NodeID(i), c)
	}
	col := NewCollector(simnet.Epoch, simnet.Epoch.Add(5*time.Second))
	cl := NewClient(ClientConfig{
		Self:      100,
		Targets:   ids,
		Policy:    policy,
		Rate:      rate,
		TxSize:    512,
		F:         1,
		Epoch:     simnet.Epoch,
		GenStart:  simnet.Epoch,
		GenStop:   simnet.Epoch.Add(time.Second),
		Collector: col,
	})
	net.AddNode(100, cl)
	return net, cl, targets, col
}

func TestClientRoundRobinRate(t *testing.T) {
	net, cl, targets, _ := buildClientNet(t, RoundRobin, 400)
	net.Start()
	net.Run(2 * time.Second)
	total := 0
	for _, c := range targets {
		total += len(c.got)
	}
	// Open loop at 400 tx/s for 1s: ~400 messages spread evenly.
	if total < 350 || total > 450 {
		t.Fatalf("delivered %d txs, want ≈400", total)
	}
	for i, c := range targets {
		if len(c.got) < total/8 {
			t.Fatalf("target %d starved: %d of %d", i, len(c.got), total)
		}
	}
	if cl.Submitted() == 0 || cl.PendingCount() == 0 {
		t.Fatal("client bookkeeping empty")
	}
}

func TestClientBroadcast(t *testing.T) {
	net, _, targets, _ := buildClientNet(t, Broadcast, 100)
	net.Start()
	net.Run(2 * time.Second)
	// Every target receives every transaction.
	n := len(targets[0].got)
	if n < 80 {
		t.Fatalf("target 0 got %d", n)
	}
	for i, c := range targets {
		if len(c.got) != n {
			t.Fatalf("target %d got %d, target 0 got %d", i, len(c.got), n)
		}
	}
}

func TestClientFirstOnly(t *testing.T) {
	net, _, targets, _ := buildClientNet(t, FirstOnly, 100)
	net.Start()
	net.Run(2 * time.Second)
	if len(targets[0].got) == 0 {
		t.Fatal("first target got nothing")
	}
	for i := 1; i < len(targets); i++ {
		if len(targets[i].got) != 0 {
			t.Fatalf("target %d got traffic under FirstOnly", i)
		}
	}
}

func TestClientConfirmsAtQuorum(t *testing.T) {
	types.RegisterMessages()
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(time.Millisecond)})
	col := NewCollector(simnet.Epoch, simnet.Epoch.Add(time.Minute))
	cl := NewClient(ClientConfig{
		Self: 100, Targets: []wire.NodeID{0}, Rate: 0, TxSize: 512, F: 1,
		Epoch: simnet.Epoch, GenStart: simnet.Epoch, GenStop: simnet.Epoch,
		Collector: col,
	})
	sink := &capture{}
	net.AddNode(0, sink)
	net.AddNode(100, cl)
	net.Start()
	// Submit one tx manually by driving the client's internals through a
	// simulated reply exchange: inject replies for a fabricated pending tx.
	cl.pending[7] = &pendingTx{submitted: net.Now()}
	cl.Receive(1, &types.BlockReply{Height: 1, Replica: 1, Seqs: []uint64{7}})
	if len(cl.pending) != 1 {
		t.Fatal("one reply must not confirm with f=1")
	}
	// Duplicate replica reply does not count twice.
	cl.Receive(1, &types.BlockReply{Height: 1, Replica: 1, Seqs: []uint64{7}})
	if len(cl.pending) != 1 {
		t.Fatal("duplicate reply confirmed the tx")
	}
	cl.Receive(2, &types.BlockReply{Height: 1, Replica: 2, Seqs: []uint64{7}})
	if len(cl.pending) != 0 {
		t.Fatal("f+1 distinct replies must confirm")
	}
	_, confirmed, _, _ := col.Counts()
	if confirmed != 1 {
		t.Fatalf("confirmed = %d", confirmed)
	}
}

// seqLog records, in delivery order, which target received which
// transaction sequence number.
type seqLog struct {
	entries *[]struct {
		target wire.NodeID
		seq    uint64
	}
	self wire.NodeID
	ctx  env.Context
}

func (s *seqLog) Start(ctx env.Context) { s.ctx = ctx }
func (s *seqLog) Receive(from wire.NodeID, m wire.Message) {
	if sub, ok := m.(*types.SubmitTx); ok {
		*s.entries = append(*s.entries, struct {
			target wire.NodeID
			seq    uint64
		}{s.self, sub.Tx.Seq})
	}
}

// buildResubmitNet wires a client with censorship-escape resubmission to
// nTargets silent consensus nodes (no replies, so nothing ever confirms)
// and a shared delivery log.
func buildResubmitNet(t *testing.T, nTargets int, resubmitAfter time.Duration) (*simnet.Network, *Client, *[]struct {
	target wire.NodeID
	seq    uint64
}) {
	t.Helper()
	types.RegisterMessages()
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(time.Millisecond), Seed: 3})
	log := &[]struct {
		target wire.NodeID
		seq    uint64
	}{}
	ids := make([]wire.NodeID, nTargets)
	for i := 0; i < nTargets; i++ {
		ids[i] = wire.NodeID(i)
		net.AddNode(wire.NodeID(i), &seqLog{entries: log, self: wire.NodeID(i)})
	}
	cl := NewClient(ClientConfig{
		Self: 100, Targets: ids, Policy: RoundRobin, Rate: 0, TxSize: 512, F: 1,
		Epoch: simnet.Epoch, GenStart: simnet.Epoch, GenStop: simnet.Epoch,
		ResubmitAfter: resubmitAfter,
	})
	net.AddNode(100, cl)
	return net, cl, log
}

// inject places an unconfirmed transaction in the client's pending set,
// as if it had been submitted to Targets[target] at the epoch — including
// the deadline-index entry submitOne would have pushed.
func inject(cl *Client, seq uint64, target int, done bool) {
	cl.pending[seq] = &pendingTx{
		tx:        types.NewTransaction(100, seq, 512, 0),
		submitted: simnet.Epoch,
		lastSent:  simnet.Epoch,
		target:    target,
		done:      done,
	}
	if cl.cfg.ResubmitAfter > 0 {
		duePush(&cl.dueQ, dueEntry{at: simnet.Epoch.Add(cl.cfg.ResubmitAfter), seq: seq})
	}
}

// TestResubmitRotatesTargetsDeterministically pins §III-E's escape rule:
// every resubmission of a stuck transaction goes to the next consensus
// node in target order, so after at most f+1 attempts an honest packer
// sees it — and the rotation is a fixed, replayable sequence.
func TestResubmitRotatesTargetsDeterministically(t *testing.T) {
	net, cl, log := buildResubmitNet(t, 4, 100*time.Millisecond)
	net.Start()
	inject(cl, 1, 0, false) // last sent to target 0 at epoch
	net.Run(time.Second)

	if cl.Resubmitted() == 0 {
		t.Fatal("no resubmissions happened")
	}
	// The final resubmission may still be in flight when the run ends.
	if got, want := cl.Resubmitted(), uint64(len(*log)); got != want && got != want+1 {
		t.Fatalf("Resubmitted() = %d but %d deliveries", got, want)
	}
	// Rotation: 1, 2, 3, 0, 1, 2, ... (starting after the original
	// target 0), one step per ResubmitAfter interval.
	for i, e := range *log {
		if e.seq != 1 {
			t.Fatalf("delivery %d: seq %d, want 1", i, e.seq)
		}
		if want := wire.NodeID((i + 1) % 4); e.target != want {
			t.Fatalf("delivery %d went to target %d, want %d (rotation broken)",
				i, e.target, want)
		}
	}
	// ~9 resubmissions in 1s at 100ms cadence; exact count is pinned by
	// determinism, but assert the envelope so the test explains itself.
	if n := len(*log); n < 8 || n > 10 {
		t.Fatalf("resubmissions = %d, want ≈9", n)
	}
}

// TestResubmitPerTickCap asserts one tick resubmits at most 8 overdue
// transactions, oldest (lowest sequence) first, bounding the extra load
// a backlog can inject per interval.
func TestResubmitPerTickCap(t *testing.T) {
	net, cl, log := buildResubmitNet(t, 4, time.Millisecond)
	net.Start()
	for seq := uint64(1); seq <= 20; seq++ {
		inject(cl, seq, 0, false)
	}
	// One tick past the overdue threshold: ticks run at 0ms (nothing is
	// overdue yet) and 10ms (everything is); stop before the 20ms tick.
	net.Run(15 * time.Millisecond)

	if got := cl.Resubmitted(); got != 8 {
		t.Fatalf("Resubmitted() = %d after one tick, want 8 (perTick cap)", got)
	}
	seen := map[uint64]bool{}
	for _, e := range *log {
		seen[e.seq] = true
	}
	for seq := uint64(1); seq <= 8; seq++ {
		if !seen[seq] {
			t.Fatalf("oldest-first violated: seq %d not resubmitted, got %v", seq, seen)
		}
	}
	if len(seen) != 8 {
		t.Fatalf("resubmitted %d distinct txs, want the 8 oldest", len(seen))
	}
}

// TestResubmitSkipsConfirmed asserts a transaction that already reached
// its reply quorum is never resubmitted, no matter how old it is.
func TestResubmitSkipsConfirmed(t *testing.T) {
	net, cl, log := buildResubmitNet(t, 4, 50*time.Millisecond)
	net.Start()
	inject(cl, 1, 0, true)  // confirmed: must never move again
	inject(cl, 2, 0, false) // stuck: keeps escaping
	net.Run(500 * time.Millisecond)

	for i, e := range *log {
		if e.seq == 1 {
			t.Fatalf("delivery %d: confirmed tx 1 was resubmitted", i)
		}
	}
	if cl.Resubmitted() == 0 {
		t.Fatal("stuck tx 2 was never resubmitted")
	}
	// The final resubmission may still be in flight when the run ends.
	if got, want := cl.Resubmitted(), uint64(len(*log)); got != want && got != want+1 {
		t.Fatalf("Resubmitted() = %d but %d deliveries", got, want)
	}
}

func TestCollectorWindowing(t *testing.T) {
	warm := simnet.Epoch.Add(time.Second)
	end := simnet.Epoch.Add(3 * time.Second)
	col := NewCollector(warm, end)
	col.RecordNodeCommit(simnet.Epoch, 100)                        // before warmup: ignored
	col.RecordNodeCommit(warm, 10)                                 // boundary: counted
	col.RecordNodeCommit(warm.Add(time.Second), 20)                // inside
	col.RecordNodeCommit(end, 1000)                                // at end: ignored
	col.RecordConfirm(warm, warm.Add(1500*time.Millisecond))       // inside
	col.RecordConfirm(simnet.Epoch, simnet.Epoch.Add(time.Second)) // boundary (at warm): counted
	col.RecordSubmit(warm.Add(time.Millisecond))
	sub, confirmed, committed, blocks := col.Counts()
	if committed != 30 || blocks != 2 {
		t.Fatalf("committed=%d blocks=%d", committed, blocks)
	}
	if confirmed != 2 || sub != 1 {
		t.Fatalf("confirmed=%d submitted=%d", confirmed, sub)
	}
	if col.Window() != 2*time.Second {
		t.Fatalf("Window = %v", col.Window())
	}
	if got := col.Throughput(); got != 15 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := col.ClientThroughput(); got != 1 {
		t.Fatalf("ClientThroughput = %v", got)
	}
	if col.Latency().Count != 2 {
		t.Fatalf("latency samples = %d", col.Latency().Count)
	}
}
