package workload

import "time"

// dueEntry is one resubmission deadline: the transaction identified by seq
// becomes eligible for resubmission at time at (lastSent + ResubmitAfter).
type dueEntry struct {
	at  time.Time
	seq uint64
}

// dueLess orders deadlines by (at, seq); the seq tie-break keeps heap
// behaviour fully deterministic.
func dueLess(a, b dueEntry) bool {
	if !a.at.Equal(b.at) {
		return a.at.Before(b.at)
	}
	return a.seq < b.seq
}

// duePush inserts into the deadline min-heap.
func duePush(h *[]dueEntry, e dueEntry) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !dueLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

// duePop removes and returns the earliest deadline.
func duePop(h *[]dueEntry) dueEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && dueLess(s[c+1], s[c]) {
			c++
		}
		if !dueLess(s[c], s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	*h = s
	return top
}

// seqPush inserts into the ready min-heap (ordered by sequence number, so
// overdue transactions resubmit oldest-first).
func seqPush(h *[]uint64, seq uint64) {
	s := append(*h, seq)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[i] >= s[p] {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

// seqPop removes and returns the smallest ready sequence number.
func seqPop(h *[]uint64) uint64 {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s[c+1] < s[c] {
			c++
		}
		if s[c] >= s[i] {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	*h = s
	return top
}
