// Package workload provides open-loop transaction generators (clients) and
// the measurement collector used by every throughput/latency experiment.
//
// A client is an env.Handler: it generates transactions at a configured
// rate, submits them to consensus nodes, and counts a transaction as
// confirmed once f+1 distinct replicas reply (the standard BFT client
// rule). Latency is submit → (f+1)-th reply, matching §V-A's definition:
// "the time elapsed from when a client sends a transaction to replicas to
// when the client receives a reply".
package workload

import (
	"time"

	"predis/internal/env"
	"predis/internal/obs"
	"predis/internal/stats"
	"predis/internal/types"
	"predis/internal/wire"
)

// Collector aggregates measurements across clients and nodes. All methods
// are called from the simulator's single goroutine, so no locking is
// needed.
type Collector struct {
	// WarmupEnd and MeasureEnd bound the measurement window.
	WarmupEnd, MeasureEnd time.Time

	latencies []time.Duration
	confirmed int
	submitted int

	// nodeCommitted counts transactions committed at the observer node
	// within the window (consensus-side throughput).
	nodeCommitted int
	blocks        int
}

// NewCollector builds a collector measuring inside [warmupEnd, measureEnd].
func NewCollector(warmupEnd, measureEnd time.Time) *Collector {
	return &Collector{WarmupEnd: warmupEnd, MeasureEnd: measureEnd}
}

func (c *Collector) inWindow(at time.Time) bool {
	return !at.Before(c.WarmupEnd) && at.Before(c.MeasureEnd)
}

// RecordSubmit notes a submitted transaction.
func (c *Collector) RecordSubmit(at time.Time) {
	if c.inWindow(at) {
		c.submitted++
	}
}

// RecordConfirm notes a client-confirmed transaction (f+1 replies).
func (c *Collector) RecordConfirm(submitted, done time.Time) {
	if c.inWindow(done) {
		c.confirmed++
		c.latencies = append(c.latencies, done.Sub(submitted))
	}
}

// RecordNodeCommit notes txs committed at the observer node.
func (c *Collector) RecordNodeCommit(at time.Time, txs int) {
	if c.inWindow(at) {
		c.nodeCommitted += txs
		c.blocks++
	}
}

// Window returns the measurement window length.
func (c *Collector) Window() time.Duration { return c.MeasureEnd.Sub(c.WarmupEnd) }

// Throughput returns consensus-side throughput in tx/s.
func (c *Collector) Throughput() float64 {
	return stats.Throughput(c.nodeCommitted, c.Window())
}

// ClientThroughput returns client-confirmed throughput in tx/s.
func (c *Collector) ClientThroughput() float64 {
	return stats.Throughput(c.confirmed, c.Window())
}

// Latency summarizes client-observed latencies.
func (c *Collector) Latency() stats.Summary { return stats.Summarize(c.latencies) }

// Counts returns (submitted, confirmed, node-committed, blocks) within the
// window.
func (c *Collector) Counts() (submitted, confirmed, committed, blocks int) {
	return c.submitted, c.confirmed, c.nodeCommitted, c.blocks
}

// TargetPolicy selects how a client spreads transactions over consensus
// nodes.
type TargetPolicy int

// Target policies.
const (
	// RoundRobin spreads transactions across all targets — the natural
	// policy for Predis, where every consensus node packs bundles.
	RoundRobin TargetPolicy = iota + 1
	// FirstOnly submits everything to the first target — the natural
	// policy for baseline leader-based protocols, where only the leader
	// packs blocks.
	FirstOnly
	// Broadcast submits every transaction to all targets, the behaviour
	// of BFT-SMaRt and HotStuff clients: with rotating leaders every
	// replica needs the command in its pool. Replicas dedupe at commit.
	Broadcast
)

// ClientConfig parameterizes a client.
type ClientConfig struct {
	// Self is the client's node ID (distinct from consensus IDs).
	Self wire.NodeID
	// Targets are the consensus nodes to submit to.
	Targets []wire.NodeID
	// Policy selects the target distribution.
	Policy TargetPolicy
	// Rate is the offered load in tx/s.
	Rate float64
	// TxSize is the transaction wire size (paper: 512 B).
	TxSize uint32
	// F is the fault bound; confirmation needs F+1 matching replies.
	F int
	// Epoch anchors Transaction.Submitted timestamps.
	Epoch time.Time
	// GenStart and GenStop bound transaction generation.
	GenStart, GenStop time.Time
	// Tick is the generation granularity (default 10ms).
	Tick time.Duration
	// ResubmitAfter, when positive, re-sends a still-unconfirmed
	// transaction to a different consensus node after the given age — the
	// paper's censorship-attack counter-measure (§III-E: a transaction is
	// packed after at most f+1 attempts). Zero disables resubmission.
	ResubmitAfter time.Duration
	// Collector receives measurements (may be nil).
	Collector *Collector
	// Trace, when non-nil, receives the submit-stage anchor for every
	// transaction (closed by the receiving consensus node). Nil disables
	// tracing at zero cost.
	Trace *obs.Tracer
	// Ops, when non-nil, attaches a semantic operation to every generated
	// transaction (see types.Op and internal/exec); it must be a pure
	// function of its arguments so generation stays deterministic. Nil
	// keeps transactions opaque payloads.
	Ops func(client wire.NodeID, seq uint64) types.Op
}

// Client is an open-loop transaction generator.
type Client struct {
	cfg  ClientConfig
	ctx  env.Context
	seq  uint64
	next int // round-robin cursor
	frac float64

	pending   map[uint64]*pendingTx
	resubmits uint64

	// Resubmission deadline index (only populated when ResubmitAfter > 0).
	// Every pending transaction has exactly one live entry across the two
	// queues: dueQ orders not-yet-overdue entries by (deadline, seq) and
	// readyQ holds overdue ones by seq, so each tick touches only due
	// entries instead of scanning and sorting the whole pending set.
	// Entries for confirmed transactions go stale in place and are
	// discarded lazily on pop (the pending lookup fails).
	dueQ   []dueEntry
	readyQ []uint64
}

type pendingTx struct {
	tx        *types.Transaction
	submitted time.Time
	lastSent  time.Time
	target    int // index into Targets of the last submission
	resubmits int
	replies   []wire.NodeID // distinct repliers so far (quorum is small: F+1)
	done      bool
}

// addReply records a distinct replier. The quorum is tiny (F+1), so a
// linear scan over a lazily grown slice beats a per-transaction map both
// in allocation count and in lookup cost.
func (p *pendingTx) addReply(id wire.NodeID) {
	for _, r := range p.replies {
		if r == id {
			return
		}
	}
	p.replies = append(p.replies, id)
}

var _ env.Handler = (*Client)(nil)

// NewClient builds a client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * time.Millisecond
	}
	if cfg.Policy == 0 {
		cfg.Policy = RoundRobin
	}
	return &Client{cfg: cfg, pending: make(map[uint64]*pendingTx)}
}

// Submitted returns the number of transactions sent so far.
func (c *Client) Submitted() uint64 { return c.seq }

// PendingCount returns in-flight (unconfirmed) transactions.
func (c *Client) PendingCount() int { return len(c.pending) }

// Resubmitted returns how many censorship-escape resubmissions happened.
func (c *Client) Resubmitted() uint64 { return c.resubmits }

// Start implements env.Handler.
func (c *Client) Start(ctx env.Context) {
	c.ctx = ctx
	delay := c.cfg.GenStart.Sub(ctx.Now())
	if delay < 0 {
		delay = 0
	}
	ctx.After(delay, c.tick)
}

// tick generates the current interval's transactions and re-arms. When
// resubmission is enabled, the ticker also outlives generation so stuck
// transactions keep escaping to other nodes.
func (c *Client) tick() {
	now := c.ctx.Now()
	generating := !now.After(c.cfg.GenStop)
	if generating {
		c.frac += c.cfg.Rate * c.cfg.Tick.Seconds()
		n := int(c.frac)
		c.frac -= float64(n)
		for i := 0; i < n; i++ {
			c.submitOne(now)
		}
	}
	if c.cfg.ResubmitAfter > 0 {
		c.resubmitOverdue(now)
	}
	if generating || (c.cfg.ResubmitAfter > 0 && len(c.pending) > 0) {
		c.ctx.After(c.cfg.Tick, c.tick)
	}
}

// resubmitOverdue re-sends unconfirmed transactions to the next consensus
// node (§III-E): with at most f faulty nodes, f+1 attempts reach an honest
// packer. A few per tick bounds the extra load. The deadline index makes
// each tick O(due + resubmitted · log pending) instead of an O(pending)
// scan-and-sort: entries whose deadline has passed migrate from dueQ to
// readyQ, and the perTick resubmissions pop readyQ in ascending sequence
// order — exactly the "smallest seqs among the overdue, oldest first"
// order the scan produced, and never map order (predis-lint: determinism).
func (c *Client) resubmitOverdue(now time.Time) {
	const perTick = 8
	for len(c.dueQ) > 0 && !c.dueQ[0].at.After(now) {
		e := duePop(&c.dueQ)
		if p, ok := c.pending[e.seq]; ok && !p.done {
			seqPush(&c.readyQ, e.seq)
		}
	}
	count := 0
	for count < perTick && len(c.readyQ) > 0 {
		seq := seqPop(&c.readyQ)
		p, ok := c.pending[seq]
		if !ok || p.done {
			continue // confirmed while waiting in the ready queue
		}
		p.target = (p.target + 1) % len(c.cfg.Targets)
		p.lastSent = now
		p.resubmits++
		c.resubmits++
		target := c.cfg.Targets[p.target]
		c.ctx.Send(target, &types.SubmitTx{Tx: p.tx, Target: target})
		duePush(&c.dueQ, dueEntry{at: now.Add(c.cfg.ResubmitAfter), seq: seq})
		count++
	}
}

func (c *Client) submitOne(now time.Time) {
	c.seq++
	tx := types.NewTransaction(c.cfg.Self, c.seq, c.cfg.TxSize, now.Sub(c.cfg.Epoch))
	if c.cfg.Ops != nil {
		tx.WithOp(c.cfg.Ops(c.cfg.Self, c.seq))
	}
	p := &pendingTx{
		tx:        tx,
		submitted: now,
		lastSent:  now,
	}
	c.pending[c.seq] = p
	if c.cfg.ResubmitAfter > 0 {
		duePush(&c.dueQ, dueEntry{at: now.Add(c.cfg.ResubmitAfter), seq: c.seq})
	}
	// Anchor the submit stage; the first consensus node to receive the
	// transaction closes the span (earliest mark wins, so broadcast and
	// resubmission never distort it).
	c.cfg.Trace.Mark(obs.StageSubmit, obs.TxKey(c.cfg.Self, c.seq), now)
	switch c.cfg.Policy {
	case Broadcast:
		for _, target := range c.cfg.Targets {
			c.ctx.Send(target, &types.SubmitTx{Tx: tx, Target: target})
		}
	case RoundRobin:
		p.target = c.next % len(c.cfg.Targets)
		c.next++
		target := c.cfg.Targets[p.target]
		c.ctx.Send(target, &types.SubmitTx{Tx: tx, Target: target})
	default: // FirstOnly
		c.ctx.Send(c.cfg.Targets[0], &types.SubmitTx{Tx: tx, Target: c.cfg.Targets[0]})
	}
	if c.cfg.Collector != nil {
		c.cfg.Collector.RecordSubmit(now)
	}
}

// Receive implements env.Handler: count replies toward the f+1 quorum.
func (c *Client) Receive(from wire.NodeID, m wire.Message) {
	reply, ok := m.(*types.BlockReply)
	if !ok {
		return
	}
	now := c.ctx.Now()
	for _, seq := range reply.Seqs {
		p, ok := c.pending[seq]
		if !ok || p.done {
			continue
		}
		p.addReply(reply.Replica)
		if len(p.replies) >= c.cfg.F+1 {
			p.done = true
			if c.cfg.Collector != nil {
				c.cfg.Collector.RecordConfirm(p.submitted, now)
			}
			delete(c.pending, seq)
		}
	}
}
