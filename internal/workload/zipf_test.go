package workload

import (
	"testing"

	"predis/internal/types"
	"predis/internal/wire"
)

func TestZipfOpsDeterministic(t *testing.T) {
	cfg := ZipfConfig{Accounts: 256, Theta: 0.9, RMWFrac: 0.2, Amount: 50, Seed: 7}
	a, b := NewZipfOps(cfg), NewZipfOps(cfg)
	for seq := uint64(0); seq < 500; seq++ {
		oa, ob := a.Op(3, seq), b.Op(3, seq)
		if oa.Kind != ob.Kind || oa.From != ob.From || oa.To != ob.To {
			t.Fatalf("seq %d: %+v != %+v", seq, oa, ob)
		}
	}
	other := NewZipfOps(ZipfConfig{Accounts: 256, Theta: 0.9, RMWFrac: 0.2, Amount: 50, Seed: 8})
	diff := 0
	for seq := uint64(0); seq < 500; seq++ {
		if a.Op(3, seq).From != other.Op(3, seq).From {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed must perturb the stream")
	}
}

func TestZipfOpsValidity(t *testing.T) {
	z := NewZipfOps(ZipfConfig{Accounts: 64, Theta: 1.2, HotFrac: 0.3, RMWFrac: 0.25, Amount: 10, Seed: 1})
	rmws := 0
	for client := 1; client <= 4; client++ {
		for seq := uint64(0); seq < 250; seq++ {
			op := z.Op(wire.NodeID(client), seq)
			switch op.Kind {
			case types.OpTransfer:
				if op.From == op.To {
					t.Fatalf("self-transfer generated: %+v", op)
				}
				if op.From >= 64 || op.To >= 64 {
					t.Fatalf("account out of range: %+v", op)
				}
			case types.OpRMW:
				rmws++
				if len(op.Reads) != 1 || len(op.Writes) != 1 {
					t.Fatalf("rmw shape: %+v", op)
				}
			default:
				t.Fatalf("unexpected kind %d", op.Kind)
			}
		}
	}
	if rmws == 0 {
		t.Fatal("RMWFrac 0.25 produced no RMW ops in 1000 draws")
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	count := func(theta float64) int {
		z := NewZipfOps(ZipfConfig{Accounts: 128, Theta: theta, Amount: 1, Seed: 42})
		hot := 0
		for seq := uint64(0); seq < 2000; seq++ {
			op := z.Op(9, seq)
			if op.From < 4 || op.To < 4 {
				hot++
			}
		}
		return hot
	}
	uniform, skewed := count(0), count(1.2)
	if skewed <= uniform*2 {
		t.Fatalf("theta 1.2 must concentrate on hot keys: uniform %d, skewed %d", uniform, skewed)
	}
}
