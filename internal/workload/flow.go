package workload

import (
	"math"
	"time"

	"predis/internal/env"
	"predis/internal/obs"
	"predis/internal/types"
	"predis/internal/wire"
)

// FlowConfig parameterizes an aggregated client flow.
type FlowConfig struct {
	// Self is the flow's wire node ID: every transaction is submitted from
	// (and confirmed back to) this node.
	Self wire.NodeID
	// FirstClient and Clients define the logical client population the
	// flow aggregates: logical IDs FirstClient .. FirstClient+Clients-1.
	// Logical clients exist for addressing only (operation generation and
	// per-client sequence spaces); they own no simulator node, no timer,
	// and no NIC.
	FirstClient wire.NodeID
	Clients     int
	// Targets are the consensus nodes to submit to.
	Targets []wire.NodeID
	// Policy selects the target distribution (default RoundRobin).
	Policy TargetPolicy
	// Rate is the aggregate offered load of the whole flow in tx/s.
	Rate float64
	// TxSize is the transaction wire size (paper: 512 B).
	TxSize uint32
	// F is the fault bound; confirmation needs F+1 matching replies.
	F int
	// Epoch anchors Transaction.Submitted timestamps.
	Epoch time.Time
	// GenStart and GenStop bound transaction generation.
	GenStart, GenStop time.Time
	// Tick is the batching granularity (default 10ms): each tick submits
	// one Poisson draw's worth of transactions in a single event instead
	// of arming one timer per logical client.
	Tick time.Duration
	// Seed drives the flow's splitmix64 stream (Poisson arrivals and
	// logical-client addressing). Two flows with equal config and Seed
	// generate identical transaction sequences.
	Seed uint64
	// Collector receives measurements (may be nil).
	Collector *Collector
	// Trace, when non-nil, receives the submit-stage anchor per
	// transaction.
	Trace *obs.Tracer
	// Ops, when non-nil, attaches a semantic operation addressed by
	// (logical client, per-client seq); it must be a pure function of its
	// arguments so generation stays deterministic.
	Ops func(client wire.NodeID, seq uint64) types.Op
}

// Flow is an aggregated open-loop generator: one env.Handler (one node,
// one timer) standing in for thousands of logical clients. Arrivals are
// Poisson with the configured aggregate rate, drawn from a private
// splitmix64 stream; each transaction is attributed to a splitmix64-chosen
// logical client, so the (client, seq) labeling is deterministic and
// independent of how the population is sharded across flows.
//
// Per-logical-client generators cost one timer event per client per tick
// — 10⁵ clients at 10 ms ticks is 10⁷ events per simulated second before
// any transaction flows. A Flow costs one event per tick total, which is
// what makes 10⁴–10⁵-node populations simulable (ROADMAP 3a).
type Flow struct {
	cfg  FlowConfig
	ctx  env.Context
	rng  uint64 // splitmix64 state
	seq  uint64 // global wire sequence (tx identity is (Self, seq))
	next int    // round-robin cursor

	// clientSeqs holds the per-logical-client sequence counters indexed
	// by client offset; lazily grown nowhere — sized once at build.
	clientSeqs []uint64

	pending map[uint64]*pendingTx
}

var _ env.Handler = (*Flow)(nil)

// NewFlow builds an aggregated flow.
func NewFlow(cfg FlowConfig) *Flow {
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * time.Millisecond
	}
	if cfg.Policy == 0 {
		cfg.Policy = RoundRobin
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	return &Flow{
		cfg:        cfg,
		rng:        cfg.Seed ^ (uint64(cfg.Self)+1)*0x9e3779b97f4a7c15,
		clientSeqs: make([]uint64, cfg.Clients),
		pending:    make(map[uint64]*pendingTx),
	}
}

// Submitted returns the number of transactions sent so far.
func (f *Flow) Submitted() uint64 { return f.seq }

// PendingCount returns in-flight (unconfirmed) transactions.
func (f *Flow) PendingCount() int { return len(f.pending) }

// ClientSeq returns how many transactions logical client
// FirstClient+offset has submitted.
func (f *Flow) ClientSeq(offset int) uint64 { return f.clientSeqs[offset] }

// Start implements env.Handler.
func (f *Flow) Start(ctx env.Context) {
	f.ctx = ctx
	delay := f.cfg.GenStart.Sub(ctx.Now())
	if delay < 0 {
		delay = 0
	}
	ctx.After(delay, f.tick)
}

// tick submits one Poisson draw's worth of transactions and re-arms while
// generation is open. Confirmations arrive through Receive and need no
// ticks, so the flow never keeps an idle network alive.
func (f *Flow) tick() {
	now := f.ctx.Now()
	if now.After(f.cfg.GenStop) {
		return
	}
	n := poisson(&f.rng, f.cfg.Rate*f.cfg.Tick.Seconds())
	for i := 0; i < n; i++ {
		f.submitOne(now)
	}
	f.ctx.After(f.cfg.Tick, f.tick)
}

func (f *Flow) submitOne(now time.Time) {
	// Attribute the transaction to a logical client; the wire identity
	// stays (Self, global seq) so replies route back to the flow's node.
	offset := int(nextRand(&f.rng) % uint64(f.cfg.Clients))
	f.clientSeqs[offset]++
	f.seq++
	tx := types.NewTransaction(f.cfg.Self, f.seq, f.cfg.TxSize, now.Sub(f.cfg.Epoch))
	if f.cfg.Ops != nil {
		tx.WithOp(f.cfg.Ops(f.cfg.FirstClient+wire.NodeID(offset), f.clientSeqs[offset]))
	}
	f.pending[f.seq] = &pendingTx{tx: tx, submitted: now, lastSent: now}
	f.cfg.Trace.Mark(obs.StageSubmit, obs.TxKey(f.cfg.Self, f.seq), now)
	switch f.cfg.Policy {
	case Broadcast:
		for _, target := range f.cfg.Targets {
			f.ctx.Send(target, &types.SubmitTx{Tx: tx, Target: target})
		}
	case RoundRobin:
		target := f.cfg.Targets[f.next%len(f.cfg.Targets)]
		f.next++
		f.ctx.Send(target, &types.SubmitTx{Tx: tx, Target: target})
	default: // FirstOnly
		f.ctx.Send(f.cfg.Targets[0], &types.SubmitTx{Tx: tx, Target: f.cfg.Targets[0]})
	}
	if f.cfg.Collector != nil {
		f.cfg.Collector.RecordSubmit(now)
	}
}

// Receive implements env.Handler: count replies toward the f+1 quorum,
// exactly the Client rule.
func (f *Flow) Receive(from wire.NodeID, m wire.Message) {
	switch reply := m.(type) {
	case *types.BlockReply:
		now := f.ctx.Now()
		for _, seq := range reply.Seqs {
			p, ok := f.pending[seq]
			if !ok || p.done {
				continue
			}
			p.addReply(reply.Replica)
			if len(p.replies) >= f.cfg.F+1 {
				p.done = true
				if f.cfg.Collector != nil {
					f.cfg.Collector.RecordConfirm(p.submitted, now)
				}
				delete(f.pending, seq)
			}
		}
	default:
		// Flows ignore everything that is not a reply.
	}
}

// nextRand advances the stream state by the golden-ratio increment and
// mixes it through the SplitMix64 finalizer (shared with zipf.go) — the
// standard SplitMix64 generator: one multiply-xor chain per draw, fully
// reproducible from a single word of state.
func nextRand(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	return splitmix64(*state)
}

// unit maps one stream draw to a uniform in [0, 1).
func unit(state *uint64) float64 {
	return float64(nextRand(state)>>11) / (1 << 53)
}

// poisson draws from Poisson(lambda) using Knuth's product method on the
// splitmix64 stream, chunking large lambda so exp(-lambda) never
// underflows. Deterministic given the stream state.
func poisson(state *uint64, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	n := 0
	for lambda > 0 {
		chunk := lambda
		if chunk > 30 {
			chunk = 30
		}
		lambda -= chunk
		limit := math.Exp(-chunk)
		p := 1.0
		for {
			p *= unit(state)
			if p <= limit {
				break
			}
			n++
		}
	}
	return n
}
