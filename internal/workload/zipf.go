package workload

import (
	"sort"

	"predis/internal/types"
	"predis/internal/wire"
)

// ZipfConfig parameterizes a deterministic skewed-access operation
// generator for the execution plane (internal/exec). Account popularity
// follows a Zipf distribution with exponent Theta over Accounts keys;
// Theta 0 degrades to uniform. The generator is a pure function of
// (Seed, client, seq), so two runs — and two worker counts — draw
// byte-identical operation streams.
type ZipfConfig struct {
	// Accounts is the key-space size (accounts 0..Accounts-1).
	Accounts int
	// Theta is the Zipf exponent: 0 = uniform, ~0.9 = YCSB-like skew,
	// >1 concentrates most traffic on a handful of keys.
	Theta float64
	// HotFrac, when positive, redirects that fraction of transfers to
	// account 0 — a single globally contended hotspot on top of the
	// Zipf skew.
	HotFrac float64
	// RMWFrac is the fraction of operations emitted as read-modify-write
	// (the rest are transfers).
	RMWFrac float64
	// Amount is the per-transfer amount (and RMW delta). Against the
	// executor's genesis balance it sets how quickly hot accounts drain
	// into deterministic aborts.
	Amount uint64
	// Seed perturbs every draw; same seed, same stream.
	Seed uint64
}

// ZipfOps draws semantic operations from a ZipfConfig.
type ZipfOps struct {
	cfg ZipfConfig
	// cum is the normalized cumulative popularity mass of accounts
	// 0..Accounts-1; a uniform [0,1) draw inverts it to an account.
	cum []float64
}

// NewZipfOps precomputes the inverse-CDF table. Accounts must be >= 2.
func NewZipfOps(cfg ZipfConfig) *ZipfOps {
	if cfg.Accounts < 2 {
		cfg.Accounts = 2
	}
	if cfg.Amount == 0 {
		cfg.Amount = 1
	}
	cum := make([]float64, cfg.Accounts)
	total := 0.0
	for k := 0; k < cfg.Accounts; k++ {
		total += zipfWeight(k, cfg.Theta)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return &ZipfOps{cfg: cfg, cum: cum}
}

// zipfWeight is the unnormalized popularity of rank k: (k+1)^-theta.
func zipfWeight(k int, theta float64) float64 {
	if theta == 0 {
		return 1
	}
	w := 1.0
	base := 1.0 / float64(k+1)
	// Integer exponents cover the experiment grid; fractional thetas
	// interpolate linearly between the bracketing integer powers, which
	// preserves monotonicity — all the generator needs — without
	// importing math.Pow into the hot path.
	lo := int(theta)
	for i := 0; i < lo; i++ {
		w *= base
	}
	if frac := theta - float64(lo); frac > 0 {
		w *= 1 - frac + frac*base
	}
	return w
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix, so
// distinct (seed, client, seq, draw) tuples give independent-looking
// uint64s with no shared state between draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns the i-th unit-interval draw for (client, seq).
func (z *ZipfOps) draw(client wire.NodeID, seq uint64, i uint64) float64 {
	h := splitmix64(z.cfg.Seed ^ splitmix64(uint64(client)<<32^seq) ^ splitmix64(i))
	return float64(h>>11) / float64(1<<53)
}

// account inverts the cumulative table for one draw.
func (z *ZipfOps) account(u float64) uint64 {
	return uint64(sort.SearchFloat64s(z.cum, u))
}

// Op draws the semantic operation for one transaction. It is pure: the
// result depends only on (Seed, client, seq).
func (z *ZipfOps) Op(client wire.NodeID, seq uint64) types.Op {
	if z.draw(client, seq, 0) < z.cfg.RMWFrac {
		r := z.account(z.draw(client, seq, 1))
		w := z.account(z.draw(client, seq, 2))
		return types.Op{
			Kind:   types.OpRMW,
			Reads:  []uint64{r},
			Writes: []uint64{w},
			Delta:  z.cfg.Amount,
		}
	}
	from := z.account(z.draw(client, seq, 3))
	to := z.account(z.draw(client, seq, 4))
	if z.cfg.HotFrac > 0 && z.draw(client, seq, 5) < z.cfg.HotFrac {
		to = 0
	}
	if from == to {
		to = (to + 1) % uint64(z.cfg.Accounts)
	}
	return types.Op{Kind: types.OpTransfer, From: from, To: to, Amount: z.cfg.Amount}
}
