// Package faults turns failure into a first-class, scriptable input to
// every simnet experiment (ISSUE 1 tentpole 1).
//
// A Schedule is a declarative list of fault actions pinned to virtual
// time: crash/restart a node at t, partition two groups for a window,
// drop a fraction of one link's traffic for a window, make a node
// silent (receives but never sends) or slow (sheds a fraction of its
// outbound) for a window. Install compiles the schedule onto a
// simnet.Network: every action becomes a deterministic event on the
// simulator's own heap, and all concurrently-active windows are composed
// through a single partition filter and a single drop filter, so a
// schedule can overlap arbitrarily many faults without the single
// SetPartition/SetDropFilter slots clobbering each other.
//
// Determinism: given the same Schedule (including Seed) and the same
// experiment seed, two runs produce bit-identical event traces — the
// injector draws its probabilistic decisions (loss, slow-node shedding)
// from its own rand.Rand seeded by Schedule.Seed, and consults it only
// from the simulator goroutine in event order.
//
// The injector owns the network's partition and drop-filter slots while
// installed; experiments that need additional ad-hoc filters should
// express them as schedule windows instead.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"predis/internal/simnet"
	"predis/internal/wire"
)

// Action is one scripted fault. Implementations are the exported structs
// below; they compile themselves onto the injector at Install time.
type Action interface {
	compile(inj *Injector)
	// describe renders the action for traces and docs.
	describe() string
}

// Crash fail-stops Node at time At (virtual, relative to the epoch).
type Crash struct {
	Node wire.NodeID
	At   time.Duration
}

// Restart brings Node back up at time At. If the node's handler
// implements env.Restartable its OnRestart hook runs, re-arming timers
// and kicking off catch-up (see simnet.Network.Restart).
type Restart struct {
	Node wire.NodeID
	At   time.Duration
}

// CrashWindow is sugar for Crash{Node, From} + Restart{Node, To}.
type CrashWindow struct {
	Node     wire.NodeID
	From, To time.Duration
}

// PartitionWindow severs all links between group A and group B (both
// directions) during [From, To). Nodes absent from both groups are
// unaffected. Multiple overlapping windows compose: a link is cut while
// any active window cuts it.
type PartitionWindow struct {
	A, B     []wire.NodeID
	From, To time.Duration
}

// LossWindow drops each message on the directed link From→To with
// probability Prob during [Start, End). Use wire.NoNode as a wildcard
// for either endpoint ("any sender" / "any receiver").
type LossWindow struct {
	From, To   wire.NodeID
	Prob       float64
	Start, End time.Duration
}

// Silent makes Node a silent participant during [From, To): it keeps
// receiving but every message it sends is dropped. This is the paper's
// silent-relayer / omission behaviour (§IV-B) as a window rather than a
// hand-wired drop filter.
type Silent struct {
	Node     wire.NodeID
	From, To time.Duration
}

// Slow models a struggling node during [From, To): each of its outbound
// messages is independently dropped with probability DropProb, which in
// a retry-driven protocol manifests as that node serving at a fraction
// of its rate.
type Slow struct {
	Node     wire.NodeID
	From, To time.Duration
	DropProb float64
}

// Schedule is a full fault script.
type Schedule struct {
	// Seed drives every probabilistic draw the injector makes (loss and
	// slow-node shedding). Two installs with equal Seed and Actions
	// behave identically.
	Seed    int64
	Actions []Action
}

// TraceEvent records one applied fault transition.
type TraceEvent struct {
	At   time.Duration
	Desc string
}

// Injector is a compiled schedule bound to a network.
type Injector struct {
	net *simnet.Network
	rng *rand.Rand

	parts     []*partWindow
	losses    []*lossWindow
	mutants   []*mutWindow
	withholds []*withholdWindow
	trace     []TraceEvent

	// Active-window counters let the per-Send filters return immediately
	// when no window of that class is open — the overwhelmingly common
	// case at 10⁴⁺-node scale, where the filters run once per Send. The
	// early exits are draw-identical to scanning: inactive windows never
	// consult the rng.
	activeParts     int
	activeLosses    int
	activeMutants   int
	activeWithholds int
}

type partWindow struct {
	a, b   map[wire.NodeID]bool
	active bool
}

type lossWindow struct {
	from, to wire.NodeID // wire.NoNode = wildcard
	prob     float64
	active   bool
}

// Install compiles the schedule onto net and returns the injector. It
// installs the composite partition and drop filters immediately (they
// pass everything until a window activates) and schedules every action
// on the network's event heap.
func Install(net *simnet.Network, s Schedule) *Injector {
	inj := &Injector{
		net: net,
		rng: rand.New(rand.NewSource(s.Seed ^ 0x7a617465)),
	}
	for _, a := range s.Actions {
		a.compile(inj)
	}
	net.SetPartition(inj.partitioned)
	net.SetDropFilter(inj.drop)
	if len(inj.mutants) > 0 {
		// Only Byzantine schedules install a mutator: a benign schedule
		// leaves the delivery path byte-identical to a build without one.
		net.SetMutator(inj.mutate)
	}
	return inj
}

// Trace returns the applied fault transitions so far, in order. Two runs
// of the same schedule and experiment seed yield identical traces.
func (inj *Injector) Trace() []TraceEvent { return inj.trace }

// TraceString renders the trace one event per line ("t=... desc").
func (inj *Injector) TraceString() string {
	var b strings.Builder
	for _, ev := range inj.trace {
		fmt.Fprintf(&b, "t=%-8s %s\n", ev.At, ev.Desc)
	}
	return b.String()
}

func (inj *Injector) record(at time.Duration, desc string) {
	inj.trace = append(inj.trace, TraceEvent{At: at, Desc: desc})
}

// partitioned implements the composite partition filter.
//
//predis:hotpath
func (inj *Injector) partitioned(from, to wire.NodeID) bool {
	if inj.activeParts == 0 {
		return false
	}
	for _, w := range inj.parts {
		if !w.active {
			continue
		}
		if (w.a[from] && w.b[to]) || (w.b[from] && w.a[to]) {
			return true
		}
	}
	return false
}

// drop implements the composite message-level drop filter.
//
//predis:hotpath
func (inj *Injector) drop(from, to wire.NodeID, m wire.Message) bool {
	if inj.activeLosses > 0 {
		for _, w := range inj.losses {
			if !w.active {
				continue
			}
			if w.from != wire.NoNode && w.from != from {
				continue
			}
			if w.to != wire.NoNode && w.to != to {
				continue
			}
			if w.prob >= 1 || inj.rng.Float64() < w.prob {
				return true
			}
		}
	}
	if inj.activeWithholds > 0 {
		for _, w := range inj.withholds {
			if !w.active || w.from != from {
				continue
			}
			if w.victims != nil && !w.victims[to] {
				continue
			}
			if _, ok := m.(StripeTamperer); ok {
				return true
			}
		}
	}
	return false
}

// --- Action implementations ---

func (c Crash) compile(inj *Injector) {
	inj.net.At(c.At, func() {
		inj.net.Crash(c.Node)
		inj.record(c.At, c.describe())
	})
}

func (c Crash) describe() string { return fmt.Sprintf("crash node %d", c.Node) }

func (r Restart) compile(inj *Injector) {
	inj.net.At(r.At, func() {
		inj.net.Restart(r.Node)
		inj.record(r.At, r.describe())
	})
}

func (r Restart) describe() string { return fmt.Sprintf("restart node %d", r.Node) }

func (w CrashWindow) compile(inj *Injector) {
	Crash{Node: w.Node, At: w.From}.compile(inj)
	Restart{Node: w.Node, At: w.To}.compile(inj)
}

func (w CrashWindow) describe() string {
	return fmt.Sprintf("crash node %d during [%s, %s)", w.Node, w.From, w.To)
}

func (w PartitionWindow) compile(inj *Injector) {
	pw := &partWindow{a: idSet(w.A), b: idSet(w.B)}
	inj.parts = append(inj.parts, pw)
	inj.net.At(w.From, func() {
		pw.active = true
		inj.activeParts++
		inj.record(w.From, fmt.Sprintf("partition %v | %v", fmtIDs(w.A), fmtIDs(w.B)))
	})
	inj.net.At(w.To, func() {
		pw.active = false
		inj.activeParts--
		inj.record(w.To, fmt.Sprintf("heal partition %v | %v", fmtIDs(w.A), fmtIDs(w.B)))
	})
}

func (w PartitionWindow) describe() string {
	return fmt.Sprintf("partition %v | %v during [%s, %s)", fmtIDs(w.A), fmtIDs(w.B), w.From, w.To)
}

func (w LossWindow) compile(inj *Injector) {
	lw := &lossWindow{from: w.From, to: w.To, prob: w.Prob}
	inj.losses = append(inj.losses, lw)
	inj.net.At(w.Start, func() {
		lw.active = true
		inj.activeLosses++
		inj.record(w.Start, fmt.Sprintf("loss %.0f%% on %s", w.Prob*100, fmtLink(w.From, w.To)))
	})
	inj.net.At(w.End, func() {
		lw.active = false
		inj.activeLosses--
		inj.record(w.End, fmt.Sprintf("loss cleared on %s", fmtLink(w.From, w.To)))
	})
}

func (w LossWindow) describe() string {
	return fmt.Sprintf("loss %.0f%% on %s during [%s, %s)", w.Prob*100, fmtLink(w.From, w.To), w.Start, w.End)
}

func (s Silent) compile(inj *Injector) {
	lw := &lossWindow{from: s.Node, to: wire.NoNode, prob: 1}
	inj.losses = append(inj.losses, lw)
	inj.net.At(s.From, func() {
		lw.active = true
		inj.activeLosses++
		inj.record(s.From, fmt.Sprintf("node %d goes silent", s.Node))
	})
	inj.net.At(s.To, func() {
		lw.active = false
		inj.activeLosses--
		inj.record(s.To, fmt.Sprintf("node %d speaks again", s.Node))
	})
}

func (s Silent) describe() string {
	return fmt.Sprintf("node %d silent during [%s, %s)", s.Node, s.From, s.To)
}

func (s Slow) compile(inj *Injector) {
	lw := &lossWindow{from: s.Node, to: wire.NoNode, prob: s.DropProb}
	inj.losses = append(inj.losses, lw)
	inj.net.At(s.From, func() {
		lw.active = true
		inj.activeLosses++
		inj.record(s.From, fmt.Sprintf("node %d slow (drops %.0f%%)", s.Node, s.DropProb*100))
	})
	inj.net.At(s.To, func() {
		lw.active = false
		inj.activeLosses--
		inj.record(s.To, fmt.Sprintf("node %d back to full speed", s.Node))
	})
}

func (s Slow) describe() string {
	return fmt.Sprintf("node %d slow (%.0f%% drop) during [%s, %s)", s.Node, s.DropProb*100, s.From, s.To)
}

// Describe renders the whole schedule, one action per line, in a stable
// order (useful for experiment banners).
func (s Schedule) Describe() string {
	lines := make([]string, 0, len(s.Actions))
	for _, a := range s.Actions {
		lines = append(lines, a.describe())
	}
	return strings.Join(lines, "\n")
}

func idSet(ids []wire.NodeID) map[wire.NodeID]bool {
	m := make(map[wire.NodeID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func fmtIDs(ids []wire.NodeID) []wire.NodeID {
	out := append([]wire.NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func fmtLink(from, to wire.NodeID) string {
	f, t := "*", "*"
	if from != wire.NoNode {
		f = fmt.Sprintf("%d", from)
	}
	if to != wire.NoNode {
		t = fmt.Sprintf("%d", to)
	}
	return f + "→" + t
}
