// Byzantine actions: scripted *malice* rather than unavailability.
//
// The actions in this file corrupt message content (CorruptStripe,
// BogusProof, GarbageWire), suppress it selectively (WithholdStripes), or
// forge it (EquivocateLeader) — the §IV-B adversary of the paper, where a
// malicious full node serves consensus correctly but sabotages the data
// plane it relays for. They compose with the availability windows in
// faults.go: all draws come from the injector's seeded rng on the
// simulator goroutine, so a schedule replays bit-identically, and a
// schedule with no Byzantine action installs no mutator at all, leaving
// the network byte-identical to a pre-Byzantine build.
//
// The injector deliberately does not import the protocol packages it
// attacks (multizone's tests import faults, so faults importing multizone
// would be a cycle). Instead it recognises victims structurally:
// stripe messages implement StripeTamperer and leader proposals implement
// Equivocator, and the injector asserts those interfaces at mutation time.
package faults

import (
	"fmt"
	"sync"
	"time"

	"predis/internal/crypto"
	"predis/internal/wire"
)

// StripeTamperer is implemented by data-plane stripe messages
// (multizone.StripeMsg). The injector identifies stripes by this
// interface instead of by type tag so it needs no dependency on the
// package that defines them.
type StripeTamperer interface {
	wire.Message
	// TamperShard returns a corrupted copy of the stripe with one shard
	// (payload) byte flipped, chosen by i mod the shard length. The copy
	// still decodes; its Merkle proof no longer verifies.
	TamperShard(i int) wire.Message
	// TamperProof returns a copy whose Merkle proof is replaced by
	// valid-length garbage derived deterministically from seed.
	TamperProof(seed uint64) wire.Message
}

// Equivocator is implemented by leader proposal messages (pbft.PrePrepare,
// hotstuff.Proposal). Equivocate returns a conflicting proposal for the
// same slot, correctly signed as the original leader by signer.
type Equivocator interface {
	wire.Message
	Equivocate(signer crypto.Signer) wire.Message
}

// mutWindow is one windowed per-recipient message mutator.
type mutWindow struct {
	active bool
	fn     func(from, to wire.NodeID, m wire.Message) wire.Message
}

// withholdWindow silently drops stripe fan-out from one node to a victim
// set while letting every control message through.
type withholdWindow struct {
	from    wire.NodeID
	victims map[wire.NodeID]bool // nil = all receivers
	active  bool
}

// mutate composes all active mutator windows in schedule order. It is
// installed as the network's mutator only when the schedule contains at
// least one Byzantine action.
//
//predis:hotpath
func (inj *Injector) mutate(from, to wire.NodeID, m wire.Message) wire.Message {
	if inj.activeMutants == 0 {
		return m
	}
	for _, w := range inj.mutants {
		if !w.active {
			continue
		}
		if out := w.fn(from, to, m); out != nil {
			m = out
		}
	}
	return m
}

// window schedules the activation edges of a Byzantine window and records
// them in the trace. counter is the injector's active-window tally for the
// window's class (mutants or withholds), kept so the per-Send filters can
// skip scanning when nothing is open.
func (inj *Injector) window(from, to time.Duration, on, off string, flag *bool, counter *int) {
	inj.net.At(from, func() {
		*flag = true
		*counter++
		inj.record(from, on)
	})
	inj.net.At(to, func() {
		*flag = false
		*counter--
		inj.record(to, off)
	})
}

// CorruptStripe makes Node a stripe-corrupting relayer during [From, To):
// every stripe it sends reaches its receivers with one payload byte
// flipped, so the per-stripe Merkle proof fails verification. Receivers
// must reject the stripe, refetch from an alternate source, and
// eventually quarantine the offender.
type CorruptStripe struct {
	Node     wire.NodeID
	From, To time.Duration
}

func (c CorruptStripe) compile(inj *Injector) {
	w := &mutWindow{fn: func(from, to wire.NodeID, m wire.Message) wire.Message {
		if from != c.Node {
			return nil
		}
		st, ok := m.(StripeTamperer)
		if !ok {
			return nil
		}
		return st.TamperShard(int(inj.rng.Int31()))
	}}
	inj.mutants = append(inj.mutants, w)
	inj.window(c.From, c.To,
		fmt.Sprintf("node %d corrupts stripe payloads", c.Node),
		fmt.Sprintf("node %d stops corrupting stripes", c.Node),
		&w.active, &inj.activeMutants)
}

func (c CorruptStripe) describe() string {
	return fmt.Sprintf("node %d corrupts stripe payloads during [%s, %s)", c.Node, c.From, c.To)
}

// BogusProof makes Node serve stripes whose payload is intact but whose
// Merkle proof is valid-length garbage during [From, To). Receivers that
// verify proofs reject these exactly like corrupted payloads; receivers
// that skip verification would accept and propagate junk.
type BogusProof struct {
	Node     wire.NodeID
	From, To time.Duration
}

func (b BogusProof) compile(inj *Injector) {
	w := &mutWindow{fn: func(from, to wire.NodeID, m wire.Message) wire.Message {
		if from != b.Node {
			return nil
		}
		st, ok := m.(StripeTamperer)
		if !ok {
			return nil
		}
		return st.TamperProof(inj.rng.Uint64())
	}}
	inj.mutants = append(inj.mutants, w)
	inj.window(b.From, b.To,
		fmt.Sprintf("node %d serves bogus proofs", b.Node),
		fmt.Sprintf("node %d stops serving bogus proofs", b.Node),
		&w.active, &inj.activeMutants)
}

func (b BogusProof) describe() string {
	return fmt.Sprintf("node %d serves bogus proofs during [%s, %s)", b.Node, b.From, b.To)
}

// WithholdStripes makes Node keep its control plane alive (heartbeats,
// consensus votes, subscriptions all flow) while silently dropping stripe
// fan-out to Victims during [From, To). Empty Victims withholds from
// everyone. This is the hardest §IV-B behaviour to detect: the offender
// looks healthy on every liveness signal.
type WithholdStripes struct {
	Node     wire.NodeID
	Victims  []wire.NodeID
	From, To time.Duration
}

func (s WithholdStripes) compile(inj *Injector) {
	var victims map[wire.NodeID]bool
	if len(s.Victims) > 0 {
		victims = idSet(s.Victims)
	}
	w := &withholdWindow{from: s.Node, victims: victims}
	inj.withholds = append(inj.withholds, w)
	inj.window(s.From, s.To,
		fmt.Sprintf("node %d withholds stripes from %s", s.Node, victimLabel(s.Victims)),
		fmt.Sprintf("node %d resumes stripe fan-out", s.Node),
		&w.active, &inj.activeWithholds)
}

func (s WithholdStripes) describe() string {
	return fmt.Sprintf("node %d withholds stripes from %s during [%s, %s)",
		s.Node, victimLabel(s.Victims), s.From, s.To)
}

func victimLabel(victims []wire.NodeID) string {
	if len(victims) == 0 {
		return "all subscribers"
	}
	return fmt.Sprintf("%v", fmtIDs(victims))
}

// EquivocateLeader makes Node a two-faced consensus leader during
// [From, To): Victims receive a conflicting, correctly-signed variant of
// every proposal Node sends while everyone else receives the original.
// Signer must sign as Node — simulation signer suites can mint a signer
// for any index, which is exactly the capability a key-compromised
// Byzantine leader has.
type EquivocateLeader struct {
	Node     wire.NodeID
	Signer   crypto.Signer
	Victims  []wire.NodeID
	From, To time.Duration
}

func (e EquivocateLeader) compile(inj *Injector) {
	victims := idSet(e.Victims)
	w := &mutWindow{fn: func(from, to wire.NodeID, m wire.Message) wire.Message {
		if from != e.Node || !victims[to] {
			return nil
		}
		eq, ok := m.(Equivocator)
		if !ok {
			return nil
		}
		return eq.Equivocate(e.Signer)
	}}
	inj.mutants = append(inj.mutants, w)
	inj.window(e.From, e.To,
		fmt.Sprintf("node %d equivocates to %v", e.Node, fmtIDs(e.Victims)),
		fmt.Sprintf("node %d stops equivocating", e.Node),
		&w.active, &inj.activeMutants)
}

func (e EquivocateLeader) describe() string {
	return fmt.Sprintf("node %d equivocates to %v during [%s, %s)",
		e.Node, fmtIDs(e.Victims), e.From, e.To)
}

// GarbageWire makes every frame Node sends undecodable during [From, To):
// receivers get a Garbage message of the same wire size whose body fails
// to decode. A hardened stack counts these as drops at the codec and
// never hands them to a handler.
type GarbageWire struct {
	Node     wire.NodeID
	From, To time.Duration
}

func (g GarbageWire) compile(inj *Injector) {
	RegisterMessages()
	w := &mutWindow{fn: func(from, to wire.NodeID, m wire.Message) wire.Message {
		if from != g.Node {
			return nil
		}
		n := m.WireSize() - wire.FrameOverhead - 4
		if n < 0 {
			n = 0
		}
		return &Garbage{Len: uint32(n)}
	}}
	inj.mutants = append(inj.mutants, w)
	inj.window(g.From, g.To,
		fmt.Sprintf("node %d emits garbage frames", g.Node),
		fmt.Sprintf("node %d emits valid frames again", g.Node),
		&w.active, &inj.activeMutants)
}

func (g GarbageWire) describe() string {
	return fmt.Sprintf("node %d emits garbage frames during [%s, %s)", g.Node, g.From, g.To)
}

// TypeGarbage tags the injector's undecodable frame.
const TypeGarbage = wire.TypeRangeFaults + 1

// Garbage is a deliberately undecodable frame: its body declares one more
// payload byte than it carries, so decoding always fails with a truncation
// error. Len is the payload size, chosen so the frame occupies the same
// wire bytes as the message it replaced (bandwidth and latency charges are
// unchanged; only decodability is destroyed).
type Garbage struct {
	Len uint32
}

// Type implements wire.Message.
func (g *Garbage) Type() wire.Type { return TypeGarbage }

// WireSize implements wire.Message.
func (g *Garbage) WireSize() int { return wire.FrameOverhead + 4 + int(g.Len) }

// EncodeBody implements wire.Message: the length prefix overstates the
// bytes that follow by one, which is what makes the frame undecodable.
func (g *Garbage) EncodeBody(e *wire.Encoder) {
	e.U32(g.Len + 1)
	e.Raw(garbageFill(int(g.Len)))
}

// Defective implements wire.Defective: zero-copy delivery paths that skip
// the codec must treat this frame as a decode failure.
func (g *Garbage) Defective() bool { return true }

func decodeGarbage(d *wire.Decoder) (wire.Message, error) {
	// The declared length always exceeds the remaining body, so VarBytes
	// poisons the decoder and Unmarshal reports truncation.
	return &Garbage{Len: uint32(len(d.VarBytes()))}, nil
}

func garbageFill(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = 0xa5
	}
	return b
}

var registerOnce sync.Once

// RegisterMessages registers the injector's wire messages. Idempotent.
func RegisterMessages() {
	registerOnce.Do(func() {
		wire.Register(TypeGarbage, "faults.Garbage", decodeGarbage)
	})
}
