package faults

import (
	"fmt"
	"testing"
	"time"

	"predis/internal/env"
	"predis/internal/simnet"
	"predis/internal/wire"
)

// tick is a tiny test message.
type tick struct{ Seq uint64 }

const tickType = wire.TypeRangeTest + 0x20

func (t *tick) Type() wire.Type            { return tickType }
func (t *tick) WireSize() int              { return wire.FrameOverhead + 8 }
func (t *tick) EncodeBody(e *wire.Encoder) { e.U64(t.Seq) }

func registerTick() {
	if !wire.Registered(tickType) {
		wire.Register(tickType, "faults-tick", func(d *wire.Decoder) (wire.Message, error) {
			return &tick{Seq: d.U64()}, d.Err()
		})
	}
}

// ticker sends a tick to peer every interval and records receipts. It
// implements env.Restartable by re-arming its send timer.
type ticker struct {
	ctx      env.Context
	peer     wire.NodeID
	interval time.Duration
	seq      uint64
	timer    env.Timer

	got      []uint64
	gotAt    []time.Duration
	restarts int
}

func (tk *ticker) Start(ctx env.Context) {
	tk.ctx = ctx
	tk.arm()
}

func (tk *ticker) arm() {
	tk.timer = tk.ctx.After(tk.interval, func() {
		tk.seq++
		tk.ctx.Send(tk.peer, &tick{Seq: tk.seq})
		tk.arm()
	})
}

func (tk *ticker) Receive(from wire.NodeID, m wire.Message) {
	if t, ok := m.(*tick); ok {
		tk.got = append(tk.got, t.Seq)
		tk.gotAt = append(tk.gotAt, tk.ctx.Now().Sub(simnet.Epoch))
	}
}

func (tk *ticker) OnRestart() {
	tk.restarts++
	if tk.timer != nil {
		tk.timer.Stop()
	}
	tk.arm()
}

func buildPair(seed int64) (*simnet.Network, *ticker, *ticker) {
	registerTick()
	n := simnet.New(simnet.Config{Seed: seed, Latency: simnet.UniformLatency(time.Millisecond)})
	a := &ticker{peer: 1, interval: 10 * time.Millisecond}
	b := &ticker{peer: 0, interval: 10 * time.Millisecond}
	n.AddNode(0, a)
	n.AddNode(1, b)
	return n, a, b
}

func TestCrashWindowSuppressesAndRestartResumes(t *testing.T) {
	n, a, b := buildPair(1)
	Install(n, Schedule{Seed: 1, Actions: []Action{
		CrashWindow{Node: 0, From: 100 * time.Millisecond, To: 200 * time.Millisecond},
	}})
	n.Start()
	n.Run(400 * time.Millisecond)

	if a.restarts != 1 {
		t.Fatalf("node 0 OnRestart ran %d times, want 1", a.restarts)
	}
	// b must receive nothing from a inside the crash window, and traffic
	// must resume after the restart (timer chain re-armed).
	resumed := false
	for _, at := range b.gotAt {
		if at >= 100*time.Millisecond && at < 200*time.Millisecond {
			t.Fatalf("delivery from crashed node at t=%s", at)
		}
		if at >= 200*time.Millisecond {
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("no deliveries after restart: timer chain not re-armed")
	}
}

func TestRestartWithoutCrashIsNoop(t *testing.T) {
	n, a, _ := buildPair(1)
	n.Start()
	n.Run(50 * time.Millisecond)
	n.Restart(0)
	n.Run(100 * time.Millisecond)
	if a.restarts != 0 {
		t.Fatalf("OnRestart ran %d times on a node that never crashed", a.restarts)
	}
}

func TestPartitionWindowsCompose(t *testing.T) {
	n, _, b := buildPair(1)
	// Two overlapping windows cutting the same pair: the link must stay
	// cut until BOTH have ended.
	Install(n, Schedule{Seed: 1, Actions: []Action{
		PartitionWindow{A: []wire.NodeID{0}, B: []wire.NodeID{1},
			From: 50 * time.Millisecond, To: 150 * time.Millisecond},
		PartitionWindow{A: []wire.NodeID{0}, B: []wire.NodeID{1},
			From: 100 * time.Millisecond, To: 250 * time.Millisecond},
	}})
	n.Start()
	n.Run(400 * time.Millisecond)

	healed := false
	for _, at := range b.gotAt {
		if at > 51*time.Millisecond && at < 250*time.Millisecond {
			t.Fatalf("delivery across partition at t=%s", at)
		}
		if at >= 250*time.Millisecond {
			healed = true
		}
	}
	if !healed {
		t.Fatal("partition never healed")
	}
}

func TestSilentNodeStillReceives(t *testing.T) {
	n, a, b := buildPair(1)
	Install(n, Schedule{Seed: 1, Actions: []Action{
		Silent{Node: 0, From: 0, To: 500 * time.Millisecond},
	}})
	n.Start()
	n.Run(300 * time.Millisecond)

	if len(b.got) != 0 {
		t.Fatalf("silent node delivered %d messages", len(b.got))
	}
	if len(a.got) == 0 {
		t.Fatal("silent node should still receive")
	}
}

func TestLossWindowEdges(t *testing.T) {
	n, _, b := buildPair(1)
	Install(n, Schedule{Seed: 1, Actions: []Action{
		LossWindow{From: 0, To: 1, Prob: 1,
			Start: 95 * time.Millisecond, End: 195 * time.Millisecond},
	}})
	n.Start()
	n.Run(300 * time.Millisecond)

	// Ticks sent at t=100..190ms die; ticks sent at 10..90 and >= 200
	// survive. Deliveries land 1ms (latency) after sends.
	for _, at := range b.gotAt {
		if at > 96*time.Millisecond && at < 195*time.Millisecond {
			t.Fatalf("delivery inside loss window at t=%s", at)
		}
	}
	var before, after bool
	for _, at := range b.gotAt {
		if at < 95*time.Millisecond {
			before = true
		}
		if at >= 195*time.Millisecond {
			after = true
		}
	}
	if !before || !after {
		t.Fatalf("expected deliveries on both window edges (before=%v after=%v)", before, after)
	}
}

func TestSlowNodeShedsRoughlyDropProb(t *testing.T) {
	// A Slow window with DropProb p should shed about p of the node's
	// outbound; a paired run without the window gives the baseline count.
	baseline := func() int {
		n, _, b := buildPair(6)
		n.Start()
		n.Run(2 * time.Second)
		return len(b.got)
	}()
	n, _, b := buildPair(6)
	Install(n, Schedule{Seed: 6, Actions: []Action{
		Slow{Node: 0, From: 0, To: 2 * time.Second, DropProb: 0.5},
	}})
	n.Start()
	n.Run(2 * time.Second)
	got := len(b.got)
	if got == 0 || got >= baseline {
		t.Fatalf("slow node delivered %d of %d, want a strict reduction", got, baseline)
	}
	// 200 sends at p=0.5: [25%, 75%] is > 13 sigma, tight enough to fail
	// on a broken filter yet never on an unlucky seed.
	if got < baseline/4 || got > 3*baseline/4 {
		t.Fatalf("slow node delivered %d of %d, want roughly half", got, baseline)
	}
}

func TestOverlappingLossAndSilentWindowsCompose(t *testing.T) {
	// A Silent window (p=1) overlapping a partial-loss window: while both
	// are active nothing flows; after the silent window ends the loss
	// window keeps shedding; after both, traffic is clean again.
	n, _, b := buildPair(13)
	Install(n, Schedule{Seed: 13, Actions: []Action{
		Silent{Node: 0, From: 50 * time.Millisecond, To: 150 * time.Millisecond},
		LossWindow{From: 0, To: 1, Prob: 1,
			Start: 100 * time.Millisecond, End: 250 * time.Millisecond},
	}})
	n.Start()
	n.Run(400 * time.Millisecond)

	var before, after bool
	for _, at := range b.gotAt {
		if at > 51*time.Millisecond && at < 250*time.Millisecond {
			t.Fatalf("delivery at t=%s inside the composed outage", at)
		}
		if at <= 50*time.Millisecond {
			before = true
		}
		if at >= 250*time.Millisecond {
			after = true
		}
	}
	if !before || !after {
		t.Fatalf("expected clean traffic on both edges (before=%v after=%v)", before, after)
	}
}

func TestTraceStringDeterministicUnderParallelism(t *testing.T) {
	// Several identical schedules run in parallel subtests; every trace
	// must match a reference computed up front. Catches any hidden shared
	// state between injectors (a global rng, say) that -parallel exposes.
	run := func() string {
		n, _, _ := buildPair(21)
		inj := Install(n, Schedule{Seed: 21, Actions: []Action{
			CrashWindow{Node: 1, From: 30 * time.Millisecond, To: 90 * time.Millisecond},
			Silent{Node: 0, From: 40 * time.Millisecond, To: 110 * time.Millisecond},
			Slow{Node: 0, From: 100 * time.Millisecond, To: 260 * time.Millisecond, DropProb: 0.4},
			LossWindow{From: wire.NoNode, To: 0, Prob: 0.2,
				Start: 120 * time.Millisecond, End: 300 * time.Millisecond},
		}})
		n.Start()
		n.Run(350 * time.Millisecond)
		return inj.TraceString()
	}
	want := run()
	if want == "" {
		t.Fatal("empty reference trace")
	}
	for i := 0; i < 4; i++ {
		t.Run(fmt.Sprintf("replica-%d", i), func(t *testing.T) {
			t.Parallel()
			if got := run(); got != want {
				t.Fatalf("trace diverged under parallelism:\n%s\n--- vs ---\n%s", got, want)
			}
		})
	}
}

func TestScheduleDeterminism(t *testing.T) {
	run := func() (string, string) {
		n, a, b := buildPair(42)
		inj := Install(n, Schedule{Seed: 42, Actions: []Action{
			CrashWindow{Node: 1, From: 40 * time.Millisecond, To: 120 * time.Millisecond},
			Slow{Node: 0, From: 60 * time.Millisecond, To: 200 * time.Millisecond, DropProb: 0.5},
			LossWindow{From: wire.NoNode, To: 0, Prob: 0.3,
				Start: 150 * time.Millisecond, End: 260 * time.Millisecond},
		}})
		n.Start()
		n.Run(400 * time.Millisecond)
		state := fmt.Sprintf("a=%v@%v b=%v@%v delivered=%d lost=%d",
			a.got, a.gotAt, b.got, b.gotAt, n.Delivered(), n.Lost())
		return inj.TraceString(), state
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Fatalf("traces differ:\n%s\n--- vs ---\n%s", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("delivery state differs:\n%s\n--- vs ---\n%s", s1, s2)
	}
	if len(t1) == 0 {
		t.Fatal("empty trace")
	}
}
