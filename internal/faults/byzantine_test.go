package faults

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/simnet"
	"predis/internal/wire"
)

// fakeStripe is a self-contained StripeTamperer so these tests need no
// dependency on the package that defines real stripes.
type fakeStripe struct {
	Idx   uint8
	Shard []byte
	Proof uint64
}

const fakeStripeType = wire.TypeRangeTest + 0x21

func (s *fakeStripe) Type() wire.Type { return fakeStripeType }
func (s *fakeStripe) WireSize() int   { return wire.FrameOverhead + 1 + 4 + len(s.Shard) + 8 }
func (s *fakeStripe) EncodeBody(e *wire.Encoder) {
	e.U8(s.Idx)
	e.VarBytes(s.Shard)
	e.U64(s.Proof)
}

func (s *fakeStripe) TamperShard(i int) wire.Message {
	cp := &fakeStripe{Idx: s.Idx, Proof: s.Proof, Shard: append([]byte(nil), s.Shard...)}
	if len(cp.Shard) > 0 {
		if i < 0 {
			i = -i
		}
		cp.Shard[i%len(cp.Shard)] ^= 0xff
	}
	return cp
}

func (s *fakeStripe) TamperProof(seed uint64) wire.Message {
	return &fakeStripe{Idx: s.Idx, Shard: s.Shard, Proof: seed}
}

var _ StripeTamperer = (*fakeStripe)(nil)

// fakeProposal is a self-contained Equivocator.
type fakeProposal struct {
	View   uint64
	Forked bool
	Sig    []byte
}

const fakeProposalType = wire.TypeRangeTest + 0x22

func (p *fakeProposal) Type() wire.Type { return fakeProposalType }
func (p *fakeProposal) WireSize() int {
	return wire.FrameOverhead + 8 + 1 + wire.SizeVarBytes(p.Sig)
}
func (p *fakeProposal) EncodeBody(e *wire.Encoder) {
	e.U64(p.View)
	e.Bool(p.Forked)
	e.VarBytes(p.Sig)
}

func (p *fakeProposal) Equivocate(signer crypto.Signer) wire.Message {
	fork := &fakeProposal{View: p.View, Forked: true}
	fork.Sig = signer.Sign(crypto.HashBytes([]byte{byte(p.View)}))
	return fork
}

var _ Equivocator = (*fakeProposal)(nil)

func registerByzFakes() {
	registerTick()
	if !wire.Registered(fakeStripeType) {
		wire.Register(fakeStripeType, "faults-fake-stripe", func(d *wire.Decoder) (wire.Message, error) {
			return &fakeStripe{Idx: d.U8(), Shard: d.VarBytes(), Proof: d.U64()}, d.Err()
		})
		wire.Register(fakeProposalType, "faults-fake-proposal", func(d *wire.Decoder) (wire.Message, error) {
			return &fakeProposal{View: d.U64(), Forked: d.Bool(), Sig: d.VarBytes()}, d.Err()
		})
	}
}

// byzSender emits one stripe, one proposal, and one tick to each peer
// every 10ms.
type byzSender struct {
	ctx   env.Context
	peers []wire.NodeID
	seq   uint64
}

func (s *byzSender) Start(ctx env.Context) {
	s.ctx = ctx
	s.arm()
}

func (s *byzSender) arm() {
	s.ctx.After(10*time.Millisecond, func() {
		s.seq++
		for _, p := range s.peers {
			s.ctx.Send(p, &fakeStripe{Idx: 1, Shard: []byte{1, 2, 3, 4}, Proof: 7})
			s.ctx.Send(p, &fakeProposal{View: s.seq})
			s.ctx.Send(p, &tick{Seq: s.seq})
		}
		s.arm()
	})
}

func (s *byzSender) Receive(wire.NodeID, wire.Message) {}

// byzSink records what arrives and when.
type byzSink struct {
	ctx     env.Context
	stripes []*fakeStripe
	props   []*fakeProposal
	ticks   int
	at      []time.Duration
}

func (k *byzSink) Start(ctx env.Context) { k.ctx = ctx }

func (k *byzSink) Receive(from wire.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *fakeStripe:
		k.stripes = append(k.stripes, msg)
		k.at = append(k.at, k.ctx.Now().Sub(simnet.Epoch))
	case *fakeProposal:
		k.props = append(k.props, msg)
	case *tick:
		k.ticks++
	}
}

func buildByzNet(seed int64, sinks int) (*simnet.Network, *byzSender, []*byzSink) {
	registerByzFakes()
	n := simnet.New(simnet.Config{Seed: seed, Latency: simnet.UniformLatency(time.Millisecond)})
	var peers []wire.NodeID
	outs := make([]*byzSink, sinks)
	for i := 0; i < sinks; i++ {
		peers = append(peers, wire.NodeID(i+1))
	}
	s := &byzSender{peers: peers}
	n.AddNode(0, s)
	for i := range outs {
		outs[i] = &byzSink{}
		n.AddNode(wire.NodeID(i+1), outs[i])
	}
	return n, s, outs
}

func TestCorruptStripeWindowFlipsShardBytes(t *testing.T) {
	n, _, sinks := buildByzNet(7, 1)
	Install(n, Schedule{Seed: 7, Actions: []Action{
		CorruptStripe{Node: 0, From: 50 * time.Millisecond, To: 150 * time.Millisecond},
	}})
	n.Start()
	n.Run(300 * time.Millisecond)

	clean := []byte{1, 2, 3, 4}
	var inWindow, outWindow int
	for i, st := range sinks[0].stripes {
		at := sinks[0].at[i]
		if at > 51*time.Millisecond && at < 150*time.Millisecond {
			if bytes.Equal(st.Shard, clean) {
				t.Fatalf("stripe at t=%s survived the corruption window intact", at)
			}
			if len(st.Shard) != len(clean) {
				t.Fatalf("corruption changed shard length: %d", len(st.Shard))
			}
			inWindow++
		} else if at < 50*time.Millisecond || at > 151*time.Millisecond {
			if !bytes.Equal(st.Shard, clean) {
				t.Fatalf("stripe outside the window was corrupted at t=%s", at)
			}
			outWindow++
		}
	}
	if inWindow == 0 || outWindow == 0 {
		t.Fatalf("want stripes on both sides of the window (in=%d out=%d)", inWindow, outWindow)
	}
	// Control-plane traffic is untouched by a stripe corrupter.
	if sinks[0].ticks == 0 || len(sinks[0].props) == 0 {
		t.Fatal("non-stripe messages should flow normally")
	}
	for _, p := range sinks[0].props {
		if p.Forked {
			t.Fatal("CorruptStripe must not touch proposals")
		}
	}
}

func TestBogusProofWindowReplacesProofOnly(t *testing.T) {
	n, _, sinks := buildByzNet(8, 1)
	Install(n, Schedule{Seed: 8, Actions: []Action{
		BogusProof{Node: 0, From: 0, To: 300 * time.Millisecond},
	}})
	n.Start()
	n.Run(200 * time.Millisecond)

	if len(sinks[0].stripes) == 0 {
		t.Fatal("no stripes delivered")
	}
	for _, st := range sinks[0].stripes {
		if st.Proof == 7 {
			t.Fatal("stripe kept its honest proof inside a BogusProof window")
		}
		if !bytes.Equal(st.Shard, []byte{1, 2, 3, 4}) {
			t.Fatal("BogusProof must leave the shard intact")
		}
	}
}

func TestWithholdStripesIsSelective(t *testing.T) {
	n, _, sinks := buildByzNet(9, 2)
	Install(n, Schedule{Seed: 9, Actions: []Action{
		WithholdStripes{Node: 0, Victims: []wire.NodeID{1},
			From: 0, To: 150 * time.Millisecond},
	}})
	n.Start()
	n.Run(300 * time.Millisecond)

	// The victim gets no stripes inside the window but full control-plane
	// traffic; the non-victim gets everything; fan-out resumes after.
	victim, other := sinks[0], sinks[1]
	var during, after int
	for _, at := range victim.at {
		if at < 150*time.Millisecond {
			during++
		} else {
			after++
		}
	}
	if during != 0 {
		t.Fatalf("victim received %d stripes inside the withhold window", during)
	}
	if after == 0 {
		t.Fatal("stripe fan-out to the victim never resumed")
	}
	if victim.ticks == 0 || len(victim.props) == 0 {
		t.Fatal("withholding must only drop stripes, not control traffic")
	}
	if len(other.stripes) == 0 {
		t.Fatal("non-victim lost stripes")
	}
}

func TestEquivocateLeaderForksOnlyForVictims(t *testing.T) {
	suite := crypto.NewSimSuite(3, 4)
	n, _, sinks := buildByzNet(10, 2)
	Install(n, Schedule{Seed: 10, Actions: []Action{
		EquivocateLeader{Node: 0, Signer: suite.Signer(0),
			Victims: []wire.NodeID{1}, From: 0, To: 300 * time.Millisecond},
	}})
	n.Start()
	n.Run(200 * time.Millisecond)

	victim, other := sinks[0], sinks[1]
	if len(victim.props) == 0 || len(other.props) == 0 {
		t.Fatal("proposals missing")
	}
	for _, p := range victim.props {
		if !p.Forked {
			t.Fatal("victim received an honest proposal inside the window")
		}
		if !suite.Signer(1).Verify(0, crypto.HashBytes([]byte{byte(p.View)}), p.Sig) {
			t.Fatal("forged proposal must carry a valid leader signature")
		}
	}
	for _, p := range other.props {
		if p.Forked {
			t.Fatal("non-victim received a forked proposal")
		}
	}
	// Stripes and ticks pass through an equivocation window untouched.
	if len(victim.stripes) == 0 || victim.ticks == 0 {
		t.Fatal("equivocation must not disturb other traffic")
	}
}

func TestGarbageWireDegradesToCountedDrops(t *testing.T) {
	n, _, sinks := buildByzNet(11, 1)
	Install(n, Schedule{Seed: 11, Actions: []Action{
		GarbageWire{Node: 0, From: 50 * time.Millisecond, To: 150 * time.Millisecond},
	}})
	n.Start()
	n.Run(300 * time.Millisecond)

	// Nothing node 0 sent inside the window is decodable, so nothing is
	// delivered — and nothing panics; the frames become Undecodable drops.
	for _, at := range sinks[0].at {
		if at > 51*time.Millisecond && at < 150*time.Millisecond {
			t.Fatalf("garbage frame delivered as a stripe at t=%s", at)
		}
	}
	d := n.Dropped()
	if d.Undecodable == 0 {
		t.Fatal("garbage frames were not counted as undecodable drops")
	}
	// Every send is delivered or counted in exactly one drop cause; the
	// final tick's burst (3 messages) may still be in flight at the horizon.
	if inflight := n.Sends() - n.Delivered() - d.Total(); inflight > 3 {
		t.Fatalf("accounting broke: sends=%d delivered=%d dropped=%d",
			n.Sends(), n.Delivered(), d.Total())
	}
	if len(sinks[0].stripes) == 0 || sinks[0].ticks == 0 {
		t.Fatal("traffic never resumed after the garbage window")
	}
}

func TestGarbageFrameNeverDecodes(t *testing.T) {
	RegisterMessages()
	for _, n := range []uint32{0, 1, 8, 1024} {
		g := &Garbage{Len: n}
		raw := wire.Marshal(g)
		if len(raw) != g.WireSize() {
			t.Fatalf("Len=%d: frame is %d bytes, WireSize says %d", n, len(raw), g.WireSize())
		}
		if _, err := wire.Roundtrip(g); err == nil {
			t.Fatalf("Len=%d: garbage frame decoded successfully", n)
		}
		if !g.Defective() {
			t.Fatal("Garbage must self-identify as defective")
		}
	}
}

func TestByzantineScheduleTraceDeterminism(t *testing.T) {
	suite := crypto.NewSimSuite(3, 4)
	run := func() (string, string) {
		n, _, sinks := buildByzNet(42, 2)
		inj := Install(n, Schedule{Seed: 42, Actions: []Action{
			CorruptStripe{Node: 0, From: 20 * time.Millisecond, To: 120 * time.Millisecond},
			BogusProof{Node: 0, From: 100 * time.Millisecond, To: 180 * time.Millisecond},
			WithholdStripes{Node: 0, Victims: []wire.NodeID{2},
				From: 60 * time.Millisecond, To: 200 * time.Millisecond},
			EquivocateLeader{Node: 0, Signer: suite.Signer(0),
				Victims: []wire.NodeID{1}, From: 0, To: 250 * time.Millisecond},
			GarbageWire{Node: 0, From: 220 * time.Millisecond, To: 260 * time.Millisecond},
		}})
		n.Start()
		n.Run(400 * time.Millisecond)
		var sum string
		for i, k := range sinks {
			sum += describeSink(i, k)
		}
		sum += describeDrops(n)
		return inj.TraceString(), sum
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Fatalf("traces differ:\n%s\n--- vs ---\n%s", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("delivery state differs:\n%s\n--- vs ---\n%s", s1, s2)
	}
	if len(t1) == 0 {
		t.Fatal("empty trace")
	}
}

func describeSink(i int, k *byzSink) string {
	var forks int
	for _, p := range k.props {
		if p.Forked {
			forks++
		}
	}
	return fmt.Sprintf("sink %d: %d stripes, %d props (%d forked), %d ticks\n",
		i, len(k.stripes), len(k.props), forks, k.ticks)
}

func describeDrops(n *simnet.Network) string {
	d := n.Dropped()
	return fmt.Sprintf("drops: filtered=%d undecodable=%d\n", d.Filtered, d.Undecodable)
}
