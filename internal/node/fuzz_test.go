package node

import (
	"math/rand"
	"testing"
	"time"

	"predis/internal/wire"
)

// TestDecodeRandomGarbageNeverPanics feeds random bytes into the decoder
// of every registered message type in the system. Decoders must reject
// garbage with an error — never panic and never over-allocate (the codec
// validates length prefixes against the remaining buffer).
func TestDecodeRandomGarbageNeverPanics(t *testing.T) {
	RegisterAllMessages()

	// Fuzz whatever is registered in this process — at minimum the full
	// consensus and client planes (the multizone/topology planes have
	// their own codec tests; importing them here would be an import
	// cycle).
	types := wire.RegisteredTypes()
	if len(types) < 20 {
		t.Fatalf("only %d registered types; registration incomplete?", len(types))
	}
	r := rand.New(rand.NewSource(99))
	for _, typ := range types {
		for trial := 0; trial < 200; trial++ {
			bodyLen := r.Intn(512)
			e := wire.NewEncoder(wire.FrameOverhead + bodyLen)
			e.U16(uint16(typ))
			e.U32(uint32(bodyLen))
			body := make([]byte, bodyLen)
			r.Read(body)
			e.Raw(body)
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("decoder for %s panicked on garbage: %v",
							wire.TypeName(typ), p)
					}
				}()
				_, _, _ = wire.Unmarshal(e.Bytes())
			}()
		}
	}
}

// TestDecodeTruncationsOfValidFrames truncates real frames at every length
// and checks decoders fail cleanly.
func TestDecodeTruncationsOfValidFrames(t *testing.T) {
	RegisterAllMessages()
	frames := sampleFrames(t)
	for name, raw := range frames {
		for cut := 0; cut < len(raw); cut++ {
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s truncated at %d panicked: %v", name, cut, p)
					}
				}()
				if _, _, err := wire.Unmarshal(raw[:cut]); err == nil && cut < len(raw) {
					// Some prefixes may decode as a shorter valid frame only
					// if the length prefix says so; Unmarshal enforces it.
					if cut < wire.FrameOverhead {
						t.Fatalf("%s: truncation at %d decoded successfully", name, cut)
					}
				}
			}()
		}
	}
}

// TestDecodeBitFlipsOfValidFrames flips bits across real frames; decoders
// must never panic (errors and silently-different-but-valid decodes are
// both acceptable).
func TestDecodeBitFlipsOfValidFrames(t *testing.T) {
	RegisterAllMessages()
	r := rand.New(rand.NewSource(7))
	for name, raw := range sampleFrames(t) {
		for trial := 0; trial < 300; trial++ {
			mut := append([]byte(nil), raw...)
			flips := 1 + r.Intn(4)
			for k := 0; k < flips; k++ {
				i := r.Intn(len(mut))
				mut[i] ^= 1 << uint(r.Intn(8))
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s bit-flip trial %d panicked: %v", name, trial, p)
					}
				}()
				_, _, _ = wire.Unmarshal(mut)
			}()
		}
	}
}

// sampleFrames captures one marshaled frame per message type from the
// live traffic of a short P-PBFT cluster, so the mutation tests work on
// real frames rather than hand-built ones.
func sampleFrames(t *testing.T) map[string][]byte {
	t.Helper()
	c := buildCluster(t, clusterConfig{
		mode: ModePredis, engine: EnginePBFT,
		nc: 4, f: 1, rate: 300, clients: 2,
		duration: 2 * time.Second,
	})
	frames := make(map[string][]byte)
	c.net.OnDeliver = func(from, to wire.NodeID, m wire.Message, at time.Time) {
		name := wire.TypeName(m.Type())
		if _, ok := frames[name]; !ok {
			frames[name] = wire.Marshal(m)
		}
	}
	c.net.Start()
	c.net.Run(2 * time.Second)
	if len(frames) < 6 {
		t.Fatalf("captured only %d frame kinds: %v", len(frames), frames)
	}
	return frames
}
