package node

import (
	"testing"
	"time"

	"predis/internal/faults"
	"predis/internal/wire"
)

// TestCrashedReplicaCatchesUpAfterRestart crashes a follower mid-run,
// restarts it, and asserts it replays every block it missed: same commit
// count and identical commit digest as the replicas that stayed up.
func TestCrashedReplicaCatchesUpAfterRestart(t *testing.T) {
	cfg := clusterConfig{
		mode: ModePredis, engine: EnginePBFT,
		nc: 4, f: 1, rate: 400, clients: 4,
		duration: 6 * time.Second, copyMsgs: true,
	}
	c := buildCluster(t, cfg)
	faults.Install(c.net, faults.Schedule{Seed: 1, Actions: []faults.Action{
		faults.CrashWindow{Node: 2, From: 1500 * time.Millisecond, To: 3 * time.Second},
	}})
	c.run(cfg.duration)
	c.assertAgreement(t, []int{0, 1, 3})

	// The restarted node must reach the live chain head: its commit count
	// may trail only by blocks still in flight at the horizon.
	restarted := c.nodes[2].Predis()
	live := c.nodes[0].Predis()
	lh, ll := restarted.LastHeight(), live.LastHeight()
	if lh == 0 || ll == 0 {
		t.Fatalf("no commits: restarted=%d live=%d", lh, ll)
	}
	if lh+2 < ll {
		t.Fatalf("restarted node stuck at height %d, live head %d", lh, ll)
	}
	if restarted.CatchingUp() {
		t.Fatalf("catch-up still in flight at height %d (live %d)", lh, ll)
	}
	// Content agreement at matching counts.
	if c.commits[2] == c.commits[0] && c.commitLog[2] != c.commitLog[0] {
		t.Fatal("restarted node executed different content")
	}
	if c.commits[2] == 0 {
		t.Fatal("restarted node committed nothing")
	}
	t.Logf("crash-recovery: live head %d, restarted head %d, commits=%v", ll, lh, c.commits)
}

// TestLeaderCrashRecovery crashes the consensus leader (node 0, view 0);
// the cluster must view-change past it, and after restart the old leader
// must resync its view and catch up to the live head.
func TestLeaderCrashRecovery(t *testing.T) {
	cfg := clusterConfig{
		mode: ModePredis, engine: EnginePBFT,
		nc: 4, f: 1, rate: 400, clients: 4,
		duration: 8 * time.Second, copyMsgs: true,
	}
	c := buildCluster(t, cfg)
	faults.Install(c.net, faults.Schedule{Seed: 1, Actions: []faults.Action{
		faults.CrashWindow{Node: 0, From: 2 * time.Second, To: 4 * time.Second},
	}})
	c.run(cfg.duration)
	c.assertAgreement(t, []int{1, 2, 3})

	restarted := c.nodes[0].Predis()
	live := c.nodes[1].Predis()
	lh, ll := restarted.LastHeight(), live.LastHeight()
	if lh+2 < ll {
		t.Fatalf("old leader stuck at height %d, live head %d", lh, ll)
	}
	if c.commits[0] == c.commits[1] && c.commitLog[0] != c.commitLog[1] {
		t.Fatal("old leader executed different content")
	}
	t.Logf("leader-crash: live head %d, old leader head %d, commits=%v", ll, lh, c.commits)
}

// TestRecoveryDeterministic runs the follower-crash scenario twice with
// identical seeds and asserts bit-identical outcomes (event counts,
// commit digests, fault traces).
func TestRecoveryDeterministic(t *testing.T) {
	run := func() (uint64, [4]int, string) {
		cfg := clusterConfig{
			mode: ModePredis, engine: EnginePBFT,
			nc: 4, f: 1, rate: 400, clients: 4,
			duration: 5 * time.Second, copyMsgs: true,
		}
		c := buildCluster(t, cfg)
		inj := faults.Install(c.net, faults.Schedule{Seed: 9, Actions: []faults.Action{
			faults.CrashWindow{Node: 2, From: 1 * time.Second, To: 2500 * time.Millisecond},
			faults.LossWindow{From: wire.NoNode, To: 1, Prob: 0.05,
				Start: 3 * time.Second, End: 4 * time.Second},
		}})
		c.run(cfg.duration)
		var commits [4]int
		copy(commits[:], c.commits)
		return c.net.Delivered(), commits, inj.TraceString()
	}
	d1, c1, t1 := run()
	d2, c2, t2 := run()
	if d1 != d2 || c1 != c2 || t1 != t2 {
		t.Fatalf("nondeterministic recovery run:\n delivered %d vs %d\n commits %v vs %v\n trace:\n%s---\n%s",
			d1, d2, c1, c2, t1, t2)
	}
	if d1 == 0 {
		t.Fatal("empty run")
	}
}
