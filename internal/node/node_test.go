package node

import (
	"fmt"
	"testing"
	"time"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/simnet"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

// cluster is a full simulated deployment: nc consensus nodes plus clients.
type cluster struct {
	net       *simnet.Network
	nodes     []*Node
	clients   []*workload.Client
	collector *workload.Collector
	// commitLog[i] is a rolling digest of node i's commit sequence, used
	// to assert that all replicas execute identical blocks.
	commitLog []crypto.Hash
	commits   []int
}

type clusterConfig struct {
	mode     Mode
	engine   EngineKind
	nc, f    int
	rate     float64 // offered load per client, tx/s
	clients  int
	duration time.Duration
	fault    map[wire.NodeID]core.FaultMode
	copyMsgs bool
}

func buildCluster(t testing.TB, cfg clusterConfig) *cluster {
	t.Helper()
	RegisterAllMessages()
	net := simnet.New(simnet.Config{
		Uplink:        simnet.Mbps100,
		Downlink:      simnet.Mbps100,
		Latency:       simnet.LANLatency(),
		Seed:          1,
		CopyOnDeliver: cfg.copyMsgs,
	})
	warm := simnet.Epoch.Add(cfg.duration / 4)
	end := simnet.Epoch.Add(cfg.duration)
	col := workload.NewCollector(warm, end)
	c := &cluster{
		net:       net,
		collector: col,
		commitLog: make([]crypto.Hash, cfg.nc),
		commits:   make([]int, cfg.nc),
	}
	suite := crypto.NewSimSuite(cfg.nc, 7)
	for i := 0; i < cfg.nc; i++ {
		i := i
		fault := core.FaultNone
		if cfg.fault != nil {
			fault = cfg.fault[wire.NodeID(i)]
		}
		n, err := New(Config{
			Mode:           cfg.mode,
			Engine:         cfg.engine,
			NC:             cfg.nc,
			F:              cfg.f,
			Self:           wire.NodeID(i),
			Signer:         suite.Signer(i),
			BatchSize:      800,
			BundleSize:     50,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    1 * time.Second,
			Fault:          fault,
			ReplyToClients: true,
			OnCommit: func(height uint64, txs []*types.Transaction) {
				c.commits[i] += len(txs)
				// Fold the block content into the node's commit digest.
				h := c.commitLog[i]
				for _, tx := range txs {
					th := tx.Hash()
					h = crypto.HashConcat(h[:], th[:])
				}
				c.commitLog[i] = h
				if i == 0 {
					col.RecordNodeCommit(net.Now(), len(txs))
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, n)
		net.AddNode(wire.NodeID(i), n)
	}

	targets := make([]wire.NodeID, cfg.nc)
	for i := range targets {
		targets[i] = wire.NodeID(i)
	}
	policy := workload.RoundRobin
	if cfg.mode == ModeBaseline {
		// BFT-SMaRt / HotStuff clients broadcast commands to every
		// replica so rotating leaders all hold the pool.
		policy = workload.Broadcast
	}
	for k := 0; k < cfg.clients; k++ {
		cl := workload.NewClient(workload.ClientConfig{
			Self:      wire.NodeID(1000 + k),
			Targets:   targets,
			Policy:    policy,
			Rate:      cfg.rate,
			TxSize:    types.DefaultTxSize,
			F:         cfg.f,
			Epoch:     simnet.Epoch,
			GenStart:  simnet.Epoch.Add(50 * time.Millisecond),
			GenStop:   end.Add(-cfg.duration / 8),
			Collector: col,
		})
		c.clients = append(c.clients, cl)
		net.AddNode(wire.NodeID(1000+k), cl)
	}
	return c
}

func (c *cluster) run(d time.Duration) {
	c.net.Start()
	c.net.Run(d)
}

// assertAgreement checks that every honest replica executed an identical
// commit sequence (same digest) and made progress.
func (c *cluster) assertAgreement(t *testing.T, honest []int) {
	t.Helper()
	ref := -1
	for _, i := range honest {
		if c.commits[i] == 0 {
			t.Fatalf("node %d committed nothing", i)
		}
		if ref < 0 {
			ref = i
			continue
		}
		// Replicas may trail by in-flight blocks; compare only when the
		// counts match, otherwise compare prefix via count equality.
		if c.commits[i] == c.commits[ref] && c.commitLog[i] != c.commitLog[ref] {
			t.Fatalf("nodes %d and %d executed different content after %d txs",
				ref, i, c.commits[i])
		}
	}
}

func TestPredisPBFTCommitsTransactions(t *testing.T) {
	cfg := clusterConfig{
		mode: ModePredis, engine: EnginePBFT,
		nc: 4, f: 1, rate: 500, clients: 4,
		duration: 4 * time.Second, copyMsgs: true,
	}
	c := buildCluster(t, cfg)
	c.run(cfg.duration)
	c.assertAgreement(t, []int{0, 1, 2, 3})
	sub, confirmed, committed, blocks := c.collector.Counts()
	if confirmed == 0 || committed == 0 || blocks == 0 {
		t.Fatalf("no progress: submitted=%d confirmed=%d committed=%d blocks=%d",
			sub, confirmed, committed, blocks)
	}
	lat := c.collector.Latency()
	if lat.P50 <= 0 || lat.P50 > 2*time.Second {
		t.Fatalf("implausible latency p50 = %v", lat.P50)
	}
	t.Logf("P-PBFT: throughput=%.0f tx/s clientTp=%.0f lat(p50)=%v blocks=%d",
		c.collector.Throughput(), c.collector.ClientThroughput(), lat.P50, blocks)
}

func TestBaselinePBFTCommitsTransactions(t *testing.T) {
	cfg := clusterConfig{
		mode: ModeBaseline, engine: EnginePBFT,
		nc: 4, f: 1, rate: 500, clients: 4,
		duration: 4 * time.Second, copyMsgs: true,
	}
	c := buildCluster(t, cfg)
	c.run(cfg.duration)
	c.assertAgreement(t, []int{0, 1, 2, 3})
	_, confirmed, committed, _ := c.collector.Counts()
	if confirmed == 0 || committed == 0 {
		t.Fatalf("no progress: confirmed=%d committed=%d", confirmed, committed)
	}
	t.Logf("PBFT: throughput=%.0f tx/s lat(p50)=%v",
		c.collector.Throughput(), c.collector.Latency().P50)
}

func TestPredisHotStuffCommitsTransactions(t *testing.T) {
	cfg := clusterConfig{
		mode: ModePredis, engine: EngineHotStuff,
		nc: 4, f: 1, rate: 500, clients: 4,
		duration: 4 * time.Second, copyMsgs: true,
	}
	c := buildCluster(t, cfg)
	c.run(cfg.duration)
	c.assertAgreement(t, []int{0, 1, 2, 3})
	_, confirmed, committed, _ := c.collector.Counts()
	if confirmed == 0 || committed == 0 {
		t.Fatalf("no progress: confirmed=%d committed=%d", confirmed, committed)
	}
	t.Logf("P-HS: throughput=%.0f tx/s lat(p50)=%v",
		c.collector.Throughput(), c.collector.Latency().P50)
}

func TestBaselineHotStuffCommitsTransactions(t *testing.T) {
	cfg := clusterConfig{
		mode: ModeBaseline, engine: EngineHotStuff,
		nc: 4, f: 1, rate: 500, clients: 4,
		duration: 4 * time.Second, copyMsgs: true,
	}
	c := buildCluster(t, cfg)
	c.run(cfg.duration)
	c.assertAgreement(t, []int{0, 1, 2, 3})
	_, confirmed, committed, _ := c.collector.Counts()
	if confirmed == 0 || committed == 0 {
		t.Fatalf("no progress: confirmed=%d committed=%d", confirmed, committed)
	}
	t.Logf("HotStuff: throughput=%.0f tx/s lat(p50)=%v",
		c.collector.Throughput(), c.collector.Latency().P50)
}

// TestPredisThroughputBeatsBaseline is the headline sanity check: under
// identical conditions, P-PBFT must outperform PBFT (the paper reports
// 300%–800%).
func TestPredisThroughputBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	run := func(mode Mode) float64 {
		cfg := clusterConfig{
			mode: mode, engine: EnginePBFT,
			nc: 4, f: 1, rate: 4000, clients: 4,
			duration: 5 * time.Second,
		}
		c := buildCluster(t, cfg)
		c.run(cfg.duration)
		return c.collector.Throughput()
	}
	baseline := run(ModeBaseline)
	predis := run(ModePredis)
	t.Logf("PBFT=%.0f tx/s, P-PBFT=%.0f tx/s (%.1fx)", baseline, predis, predis/baseline)
	if predis < 1.5*baseline {
		t.Fatalf("P-PBFT (%.0f) did not clearly beat PBFT (%.0f)", predis, baseline)
	}
}

// TestSilentFaultStillLive reproduces the liveness side of Fig. 6 case 1:
// with f silent nodes (non-leaders), the system keeps committing.
func TestSilentFaultStillLive(t *testing.T) {
	cfg := clusterConfig{
		mode: ModePredis, engine: EnginePBFT,
		nc: 4, f: 1, rate: 300, clients: 4,
		duration: 4 * time.Second,
		fault:    map[wire.NodeID]core.FaultMode{3: core.FaultSilent},
	}
	c := buildCluster(t, cfg)
	c.run(cfg.duration)
	c.assertAgreement(t, []int{0, 1, 2})
	if c.commits[0] == 0 {
		t.Fatal("no commits with one silent node")
	}
}

// TestPartialSenderFaultStillLive reproduces Fig. 6 case 2: a node that
// sends bundles to too few peers and never votes; missing bundles must be
// fetched and the system keeps committing.
func TestPartialSenderFaultStillLive(t *testing.T) {
	cfg := clusterConfig{
		mode: ModePredis, engine: EnginePBFT,
		nc: 4, f: 1, rate: 300, clients: 4,
		duration: 4 * time.Second,
		fault:    map[wire.NodeID]core.FaultMode{3: core.FaultPartial},
	}
	c := buildCluster(t, cfg)
	c.run(cfg.duration)
	c.assertAgreement(t, []int{0, 1, 2})
}

// TestViewChangeOnSilentLeader makes the view-0 leader silent: replicas
// must suspect it, change view, and resume committing under the next
// leader.
func TestViewChangeOnSilentLeader(t *testing.T) {
	cfg := clusterConfig{
		mode: ModePredis, engine: EnginePBFT,
		nc: 4, f: 1, rate: 300, clients: 4,
		duration: 6 * time.Second,
		fault:    map[wire.NodeID]core.FaultMode{0: core.FaultSilent},
	}
	c := buildCluster(t, cfg)
	c.run(cfg.duration)
	// Honest nodes (1,2,3) must have made progress despite leader silence.
	for _, i := range []int{1, 2, 3} {
		if c.commits[i] == 0 {
			t.Fatalf("node %d made no progress under silent leader", i)
		}
	}
	c.assertAgreement(t, []int{1, 2, 3})
}

func TestEngineKindString(t *testing.T) {
	if EnginePBFT.String() != "PBFT" || EngineHotStuff.String() != "HotStuff" {
		t.Fatal("EngineKind names wrong")
	}
	if fmt.Sprint(EngineKind(9)) == "" {
		t.Fatal("unknown kind must still print")
	}
}

func TestNodeConfigErrors(t *testing.T) {
	suite := crypto.NewSimSuite(4, 1)
	if _, err := New(Config{Mode: 0}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := New(Config{Mode: ModeBaseline, BatchSize: 0}); err == nil {
		t.Fatal("zero batch size accepted")
	}
	if _, err := New(Config{
		Mode: ModePredis, Engine: EnginePBFT, NC: 4, F: 1,
		BundleSize: 50, Signer: suite.Signer(0),
	}); err != nil {
		t.Fatalf("valid predis config rejected: %v", err)
	}
	if _, err := New(Config{
		Mode: ModeBaseline, Engine: EngineKind(9), NC: 4, F: 1,
		BatchSize: 10, Signer: suite.Signer(0),
	}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestNarwhalCommitsTransactions(t *testing.T) {
	cfg := clusterConfig{
		mode: ModeNarwhal, engine: EngineHotStuff,
		nc: 4, f: 1, rate: 500, clients: 4,
		duration: 4 * time.Second, copyMsgs: true,
	}
	c := buildCluster(t, cfg)
	c.run(cfg.duration)
	c.assertAgreement(t, []int{0, 1, 2, 3})
	_, confirmed, committed, _ := c.collector.Counts()
	if confirmed == 0 || committed == 0 {
		t.Fatalf("no progress: confirmed=%d committed=%d", confirmed, committed)
	}
	t.Logf("Narwhal: throughput=%.0f tx/s lat(p50)=%v",
		c.collector.Throughput(), c.collector.Latency().P50)
}

func TestStratusCommitsTransactions(t *testing.T) {
	cfg := clusterConfig{
		mode: ModeStratus, engine: EngineHotStuff,
		nc: 4, f: 1, rate: 500, clients: 4,
		duration: 4 * time.Second, copyMsgs: true,
	}
	c := buildCluster(t, cfg)
	c.run(cfg.duration)
	c.assertAgreement(t, []int{0, 1, 2, 3})
	_, confirmed, committed, _ := c.collector.Counts()
	if confirmed == 0 || committed == 0 {
		t.Fatalf("no progress: confirmed=%d committed=%d", confirmed, committed)
	}
	t.Logf("Stratus: throughput=%.0f tx/s lat(p50)=%v",
		c.collector.Throughput(), c.collector.Latency().P50)
}

// TestPredisLowerLatencyThanNarwhal checks Fig. 5's latency ordering:
// Narwhal (n_c−f certs before the next microblock) must exhibit higher
// client latency than Predis (no certificates at all) at the same load.
func TestPredisLowerLatencyThanNarwhal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	run := func(mode Mode) time.Duration {
		cfg := clusterConfig{
			mode: mode, engine: EngineHotStuff,
			nc: 4, f: 1, rate: 1000, clients: 4,
			duration: 5 * time.Second,
		}
		c := buildCluster(t, cfg)
		c.run(cfg.duration)
		return c.collector.Latency().P50
	}
	predis := run(ModePredis)
	narwhal := run(ModeNarwhal)
	t.Logf("latency p50: Predis=%v Narwhal=%v", predis, narwhal)
	if predis == 0 || narwhal == 0 {
		t.Fatal("missing latency samples")
	}
}

// TestCensorshipResubmission reproduces §III-E's censorship counter-measure:
// transactions sent to a silent node go unconfirmed until the client
// resubmits them to another consensus node, after which everything commits.
func TestCensorshipResubmission(t *testing.T) {
	RegisterAllMessages()
	const nc, f = 4, 1
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: 9,
	})
	end := simnet.Epoch.Add(6 * time.Second)
	col := workload.NewCollector(simnet.Epoch, end)
	suite := crypto.NewSimSuite(nc, 31)
	for i := 0; i < nc; i++ {
		fault := core.FaultNone
		if i == 3 {
			fault = core.FaultSilent // drops every transaction submitted to it
		}
		n, err := New(Config{
			Mode: ModePredis, Engine: EnginePBFT,
			NC: nc, F: f, Self: wire.NodeID(i),
			Signer: suite.Signer(i), BundleSize: 10,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    2 * time.Second,
			Fault:          fault,
			ReplyToClients: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		net.AddNode(wire.NodeID(i), n)
	}
	cl := workload.NewClient(workload.ClientConfig{
		Self:          2000,
		Targets:       []wire.NodeID{0, 1, 2, 3},
		Policy:        workload.RoundRobin, // 1/4 of txs hit the censor
		Rate:          200,
		TxSize:        types.DefaultTxSize,
		F:             f,
		Epoch:         simnet.Epoch,
		GenStart:      simnet.Epoch.Add(50 * time.Millisecond),
		GenStop:       simnet.Epoch.Add(2 * time.Second),
		ResubmitAfter: 800 * time.Millisecond,
		Collector:     col,
	})
	net.AddNode(2000, cl)
	net.Start()
	net.Run(6 * time.Second)

	sub, confirmed, _, _ := col.Counts()
	if cl.Resubmitted() == 0 {
		t.Fatal("no resubmissions happened despite a censoring node")
	}
	// Every submitted transaction must eventually confirm (the quarter
	// that hit the censor escapes via resubmission).
	if confirmed < sub*95/100 {
		t.Fatalf("confirmed %d of %d submitted; censorship not escaped", confirmed, sub)
	}
	t.Logf("submitted=%d confirmed=%d resubmitted=%d", sub, confirmed, cl.Resubmitted())
}

// TestCrashedReplicaDoesNotStallOthers crashes one replica mid-run; the
// remaining 2f+1 keep committing, and after a network-level restart the
// crashed replica's engine resumes participating in new instances.
func TestCrashedReplicaDoesNotStallOthers(t *testing.T) {
	cfg := clusterConfig{
		mode: ModePredis, engine: EnginePBFT,
		nc: 4, f: 1, rate: 400, clients: 4,
		duration: 6 * time.Second,
	}
	c := buildCluster(t, cfg)
	c.net.Start()
	c.net.Run(1500 * time.Millisecond)
	before := c.commits[0]
	if before == 0 {
		t.Fatal("no progress before the crash")
	}
	c.net.Crash(2)
	c.net.Run(3500 * time.Millisecond)
	mid := c.commits[0]
	if mid <= before {
		t.Fatal("progress stalled with one crashed replica (quorum is 3)")
	}
	frozen := c.commits[2]
	c.net.Restart(2)
	c.net.Run(6 * time.Second)
	if c.commits[0] <= mid {
		t.Fatal("no progress after restart")
	}
	if c.commits[2] < frozen {
		t.Fatal("restarted replica lost commits")
	}
	t.Logf("node0 commits: %d → %d → %d; node2 frozen at %d, now %d",
		before, mid, c.commits[0], frozen, c.commits[2])
}

// TestDeterministicReplay runs the same cluster configuration twice and
// requires bit-identical commit sequences: the simulator plus the
// protocols form a deterministic state machine, which is what makes every
// experiment in EXPERIMENTS.md reproducible.
func TestDeterministicReplay(t *testing.T) {
	run := func() ([]int, []crypto.Hash) {
		cfg := clusterConfig{
			mode: ModePredis, engine: EngineHotStuff,
			nc: 4, f: 1, rate: 700, clients: 3,
			duration: 3 * time.Second,
		}
		c := buildCluster(t, cfg)
		c.run(cfg.duration)
		return c.commits, c.commitLog
	}
	c1, d1 := run()
	c2, d2 := run()
	for i := range c1 {
		if c1[i] != c2[i] || d1[i] != d2[i] {
			t.Fatalf("node %d diverged across identical runs: %d/%s vs %d/%s",
				i, c1[i], d1[i].Short(), c2[i], d2[i].Short())
		}
	}
	if c1[0] == 0 {
		t.Fatal("no commits to compare")
	}
}
