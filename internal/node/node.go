// Package node assembles consensus nodes: a BFT engine (PBFT or HotStuff),
// a data production application (the baseline transaction pool or Predis),
// and the message routing between them, behind a single env.Handler so the
// same node runs on the simulator or the TCP runtime.
package node

import (
	"fmt"
	"sort"
	"time"

	"predis/internal/compute"
	"predis/internal/consensus"
	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/exec"
	"predis/internal/hotstuff"
	"predis/internal/microblock"
	"predis/internal/obs"
	"predis/internal/pbft"
	"predis/internal/txpool"
	"predis/internal/types"
	"predis/internal/wire"
)

// Mode selects the data production strategy.
type Mode int

// Modes.
const (
	// ModeBaseline batches full transactions into proposals (vanilla
	// PBFT / HotStuff).
	ModeBaseline Mode = iota + 1
	// ModePredis pre-distributes bundles and proposes Predis blocks
	// (P-PBFT / P-HS).
	ModePredis
	// ModeNarwhal uses the Narwhal-style RBC shared mempool (Fig. 5
	// baseline).
	ModeNarwhal
	// ModeStratus uses the Stratus-style PAB shared mempool (Fig. 5
	// baseline).
	ModeStratus
)

// EngineKind selects the consensus protocol.
type EngineKind int

// Engine kinds.
const (
	EnginePBFT EngineKind = iota + 1
	EngineHotStuff
)

// String returns the protocol name including the Predis prefix convention
// used in the paper (P-PBFT, P-HS).
func (k EngineKind) String() string {
	switch k {
	case EnginePBFT:
		return "PBFT"
	case EngineHotStuff:
		return "HotStuff"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// Config assembles one consensus node.
type Config struct {
	Mode   Mode
	Engine EngineKind
	// NC is the number of consensus nodes (IDs 0..NC-1); F the fault
	// bound.
	NC, F int
	// Self is this node's ID.
	Self wire.NodeID
	// Signer signs bundles, blocks, and votes.
	Signer crypto.Signer
	// BatchSize bounds baseline proposals (txs per block).
	BatchSize int
	// BundleSize bounds Predis bundles (txs per bundle).
	BundleSize int
	// BundleInterval is the Predis producer tick.
	BundleInterval time.Duration
	// ViewTimeout / ReproposeInterval tune the engine.
	ViewTimeout       time.Duration
	ReproposeInterval time.Duration
	// Fault selects Byzantine behaviour (Predis mode; Fig. 6).
	Fault core.FaultMode
	// Stream enables streaming commit mode (Predis mode): producers seal
	// bundles per transaction, leaders cut eagerly at their own tips,
	// PBFT pipelines instances (see Pipeline), HotStuff drains ordered
	// cuts with empty blocks, and execution merges per bundle. Off, every
	// component behaves byte-for-byte as block mode.
	Stream bool
	// Pipeline is the PBFT in-flight instance window; meaningful with
	// Stream. Default 1 (classic single-slot PBFT).
	Pipeline int
	// OnBlockPropose observes stream-mode proposals the moment they are
	// built or validated — before commit. Multi-Zone starts speculative
	// stripe distribution here. The same block may be observed many times.
	OnBlockPropose func(blk *core.PredisBlock)
	// OnBlockEvict observes stream-mode proposal evictions (view change,
	// fork abandonment): the block was speculatively announced and will
	// not commit as-is. Multi-Zone pushes spec discards here.
	OnBlockEvict func(blk *core.PredisBlock)
	// ReplyToClients controls whether commits generate BlockReply
	// messages to transaction submitters (they consume bandwidth, as the
	// paper notes in §III-F).
	ReplyToClients bool
	// OnCommit observes every committed block's transactions (harness
	// measurement hook), with the commit time implied by ctx.Now.
	OnCommit func(height uint64, txs []*types.Transaction)
	// Disseminate overrides Predis bundle dissemination (Multi-Zone).
	Disseminate func(ctx env.Context, b *core.Bundle)
	// StripeRoot commits a stripe Merkle root into bundle headers before
	// signing (Multi-Zone; see core.Options.StripeRoot).
	StripeRoot func(txs []*types.Transaction) crypto.Hash
	// OnBundleStored observes every bundle entering the Predis mempool
	// (Multi-Zone ships stripes from here).
	OnBundleStored func(b *core.Bundle)
	// OnBlockCommit observes committed Predis blocks (Multi-Zone pushes
	// them to relayers from here). Predis mode only.
	OnBlockCommit func(blk *core.PredisBlock)
	// KeepConfirmed bounds retained confirmed bundles per chain.
	KeepConfirmed int
	// Trace, when non-nil, records lifecycle stages (submit arrival here;
	// bundle/consensus stages in the wrapped components). Nil disables
	// tracing at zero cost.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives per-node counters from the wrapped
	// components (Predis mode).
	Metrics *obs.Registry
	// Executor, when non-nil, applies every committed block's semantic
	// operations to this node's account state machine before client
	// replies go out. Each node owns its own machine; determinism of the
	// committed sequence makes the resulting state roots agree.
	Executor *exec.Machine
	// ExecSerial forces the reference serial committer instead of the
	// two-phase parallel one (baseline for the contention experiment).
	ExecSerial bool
	// OnExecute observes each executed block's result (state root,
	// apply/abort counts, dependency-level shape).
	OnExecute func(r exec.Result)
}

// Node is a consensus node handler.
type Node struct {
	cfg    Config
	ctx    env.Context
	engine consensus.Engine
	predis *core.Predis
	pool   *txpool.App
	mb     *microblock.App
}

var _ env.Handler = (*Node)(nil)

// RegisterAllMessages registers every message type a node can handle;
// idempotent, call before building networks.
func RegisterAllMessages() {
	types.RegisterMessages()
	core.RegisterMessages()
	pbft.RegisterMessages()
	hotstuff.RegisterMessages()
	txpool.RegisterMessages()
	microblock.RegisterMessages()
}

// New assembles a node.
func New(cfg Config) (*Node, error) {
	n := &Node{cfg: cfg}
	var app consensus.Application
	switch cfg.Mode {
	case ModeBaseline:
		pool, err := txpool.New(txpool.Options{
			BatchSize: cfg.BatchSize,
			OnCommit:  n.handleCommit,
		})
		if err != nil {
			return nil, err
		}
		n.pool = pool
		app = pool
	case ModePredis:
		peers := make([]wire.NodeID, cfg.NC)
		for i := range peers {
			peers[i] = wire.NodeID(i)
		}
		p, err := core.NewPredis(core.Options{
			Params: core.Params{
				NC: cfg.NC, F: cfg.F,
				BundleSize:     cfg.BundleSize,
				BundleInterval: cfg.BundleInterval,
				KeepConfirmed:  cfg.KeepConfirmed,
				Signer:         cfg.Signer,
			},
			Self:           cfg.Self,
			Peers:          peers,
			Fault:          cfg.Fault,
			Stream:         cfg.Stream,
			StreamDrain:    cfg.Stream && cfg.Engine == EngineHotStuff,
			OnProposal:     cfg.OnBlockPropose,
			OnEvict:        cfg.OnBlockEvict,
			Disseminate:    cfg.Disseminate,
			StripeRoot:     cfg.StripeRoot,
			OnBundleStored: cfg.OnBundleStored,
			Trace:          cfg.Trace,
			Metrics:        cfg.Metrics,
			OnCommit: func(ci core.CommitInfo) {
				if cfg.OnBlockCommit != nil {
					cfg.OnBlockCommit(ci.Block)
				}
				if cfg.Stream {
					// Streaming execution consumes the block at bundle
					// granularity: per-bundle leveling with cache merges
					// at bundle joins.
					n.execCommit(ci.Height, ci.Txs, bundleTxGroups(ci.Bundles))
					return
				}
				n.handleCommit(ci.Height, ci.Txs)
			},
		})
		if err != nil {
			return nil, err
		}
		n.predis = p
		app = p
	case ModeNarwhal, ModeStratus:
		scheme := microblock.SchemeNarwhal
		if cfg.Mode == ModeStratus {
			scheme = microblock.SchemeStratus
		}
		mb, err := microblock.New(microblock.Options{
			Scheme:     scheme,
			NC:         cfg.NC,
			F:          cfg.F,
			Self:       cfg.Self,
			Signer:     cfg.Signer,
			MBSize:     cfg.BundleSize,
			MBInterval: cfg.BundleInterval,
			OnCommit:   n.handleCommit,
		})
		if err != nil {
			return nil, err
		}
		n.mb = mb
		app = mb
	default:
		return nil, fmt.Errorf("node: unknown mode %d", cfg.Mode)
	}

	var (
		engine consensus.Engine
		err    error
	)
	switch cfg.Engine {
	case EnginePBFT:
		engine, err = pbft.New(pbft.Config{
			N: cfg.NC, Self: cfg.Self, App: app, Signer: cfg.Signer,
			ViewTimeout: cfg.ViewTimeout, ReproposeInterval: cfg.ReproposeInterval,
			Pipeline: cfg.Pipeline,
			Trace:    cfg.Trace,
		})
	case EngineHotStuff:
		engine, err = hotstuff.New(hotstuff.Config{
			N: cfg.NC, Self: cfg.Self, App: app, Signer: cfg.Signer,
			ViewTimeout: cfg.ViewTimeout, ReproposeInterval: cfg.ReproposeInterval,
			Trace: cfg.Trace,
		})
	default:
		err = fmt.Errorf("node: unknown engine %d", cfg.Engine)
	}
	if err != nil {
		return nil, err
	}
	n.engine = engine
	if n.predis != nil {
		n.predis.SetEngine(engine)
	}
	if n.mb != nil {
		n.mb.SetEngine(engine)
	}
	return n, nil
}

// Predis exposes the Predis component (nil in baseline mode).
func (n *Node) Predis() *core.Predis { return n.predis }

// Pool exposes the baseline pool (nil in Predis mode).
func (n *Node) Pool() *txpool.App { return n.pool }

// Engine exposes the consensus engine.
func (n *Node) Engine() consensus.Engine { return n.engine }

// Start implements env.Handler.
func (n *Node) Start(ctx env.Context) {
	n.ctx = ctx
	if n.predis != nil {
		n.predis.Start(ctx)
	}
	if n.mb != nil {
		n.mb.Start(ctx)
	}
	n.engine.Start(ctx)
}

var _ env.Restartable = (*Node)(nil)

// OnRestart implements env.Restartable: fan the restart out to the
// engine (timer re-arm + view resync) and the data plane (timer re-arm +
// committed-block catch-up). Components that are not restart-aware are
// skipped; they resume with whatever state they kept.
func (n *Node) OnRestart() {
	if r, ok := n.engine.(env.Restartable); ok {
		r.OnRestart()
	}
	if n.predis != nil {
		n.predis.OnRestart()
	}
}

// Receive implements env.Handler: route by message type range.
func (n *Node) Receive(from wire.NodeID, m wire.Message) {
	switch m.Type() & 0xff00 {
	case wire.TypeRangeCore:
		if n.predis != nil {
			n.predis.Receive(from, m)
		}
	case wire.TypeRangeNarwhal:
		if n.mb != nil {
			n.mb.Receive(from, m)
		}
	case wire.TypeRangePBFT, wire.TypeRangeHotStuff:
		n.engine.Receive(from, m)
	case wire.TypeRangeClient:
		if sub, ok := m.(*types.SubmitTx); ok {
			// submit: client anchor → transaction arrives at a consensus
			// node (first arrival wins; resubmissions are idempotent).
			n.cfg.Trace.SpanSinceMark(obs.StageSubmit,
				obs.TxKey(sub.Tx.Client, sub.Tx.Seq), n.cfg.Self, n.ctx.Now())
			n.Submit(sub.Tx)
		}
	default:
		n.ctx.Logf("node: unroutable message %s from %d", wire.TypeName(m.Type()), from)
	}
}

// Submit injects a transaction into the node's data production path.
func (n *Node) Submit(tx *types.Transaction) {
	switch {
	case n.predis != nil:
		n.predis.SubmitTx(tx)
	case n.mb != nil:
		n.mb.SubmitTx(tx)
	default:
		n.pool.Submit(tx)
		n.engine.Poke()
	}
}

// bundleTxGroups projects a committed block's bundles onto their
// transaction lists, the unit the streaming committer merges at.
func bundleTxGroups(bundles []*core.Bundle) [][]*types.Transaction {
	out := make([][]*types.Transaction, len(bundles))
	for i, b := range bundles {
		out[i] = b.Txs
	}
	return out
}

// handleCommit executes a committed block on the node's state machine
// and fans it out to measurement hooks and client replies.
func (n *Node) handleCommit(height uint64, txs []*types.Transaction) {
	n.execCommit(height, txs, nil)
}

// execCommit is the commit tail shared by block and stream mode: bundles
// non-nil selects the per-bundle streaming committer.
func (n *Node) execCommit(height uint64, txs []*types.Transaction, bundles [][]*types.Transaction) {
	if n.cfg.Executor != nil {
		var r exec.Result
		switch {
		case n.cfg.ExecSerial:
			r = n.cfg.Executor.ExecuteBlockSerial(height, txs)
		case bundles != nil:
			r = n.cfg.Executor.ExecuteBlockBundles(compute.PoolOf(n.ctx), height, bundles)
		default:
			r = n.cfg.Executor.ExecuteBlock(compute.PoolOf(n.ctx), height, txs)
		}
		if n.cfg.Trace != nil && n.ctx != nil {
			now := n.ctx.Now()
			n.cfg.Trace.Span(obs.StageExecuted, obs.BlockKey(height), n.cfg.Self, now, now)
		}
		if n.cfg.OnExecute != nil {
			n.cfg.OnExecute(r)
		}
	}
	if n.cfg.OnCommit != nil {
		n.cfg.OnCommit(height, txs)
	}
	if !n.cfg.ReplyToClients || n.ctx == nil {
		return
	}
	// One batched BlockReply per client (replies are real traffic; §III-F).
	// Send in client-ID order so map iteration never affects the wire.
	byClient := make(map[wire.NodeID][]uint64)
	clients := make([]wire.NodeID, 0, 8)
	for _, tx := range txs {
		if _, ok := byClient[tx.Client]; !ok {
			clients = append(clients, tx.Client)
		}
		byClient[tx.Client] = append(byClient[tx.Client], tx.Seq)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	for _, client := range clients {
		n.ctx.Send(client, &types.BlockReply{
			Height:  height,
			Replica: n.cfg.Self,
			Seqs:    byClient[client],
		})
	}
}
