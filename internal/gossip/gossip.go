// Package gossip implements block dissemination on a random topology with
// a Fair-and-Efficient-Gossip (FEG) flavoured protocol, the paper's
// random-topology baseline for Fig. 8 (Berendea et al., "Fair and
// efficient gossip in Hyperledger Fabric").
//
// Each node keeps a fixed random neighbor set (degree 8 in the paper's
// configuration). New blocks are pushed to `fanout` neighbors; FEG's
// fairness idea is approximated by rotating deterministically through the
// neighbor list instead of sampling uniformly, which spreads forwarding
// load evenly. A periodic digest/pull anti-entropy pass repairs the nodes
// the push phase missed — the paper observes exactly this behaviour
// ("it randomly chooses several nodes and will ignore sending blocks to
// some nodes"), which is why the random topology's tail latency suffers.
package gossip

import (
	"time"

	"predis/internal/env"
	"predis/internal/topology"
	"predis/internal/wire"
)

// Config parameterizes a gossip node.
type Config struct {
	// Self is this node's ID.
	Self wire.NodeID
	// Neighbors is the fixed random neighbor set (degree 8 in §V-B).
	Neighbors []wire.NodeID
	// Fanout is the push fan-out per fresh block (4 in §V-B).
	Fanout int
	// DigestInterval paces anti-entropy; 0 disables pull repair.
	DigestInterval time.Duration
	// OnBlock fires on the first arrival of each block height.
	OnBlock func(height uint64, at time.Time)
}

// Node is one gossip participant.
type Node struct {
	cfg Config
	ctx env.Context

	blocks map[uint64]*topology.BlockData
	max    uint64 // highest contiguous height held
	cursor int    // FEG rotation cursor over neighbors

	// stats
	pushes uint64
	pulls  uint64
	dupes  uint64
}

var _ env.Handler = (*Node)(nil)

// New builds a gossip node.
func New(cfg Config) *Node {
	if cfg.Fanout <= 0 {
		cfg.Fanout = 4
	}
	return &Node{cfg: cfg, blocks: make(map[uint64]*topology.BlockData)}
}

// Stats returns (blocks pushed, blocks served via pull, duplicate
// receives).
func (n *Node) Stats() (pushes, pulls, dupes uint64) { return n.pushes, n.pulls, n.dupes }

// Holds reports whether the node has the block at the given height.
func (n *Node) Holds(height uint64) bool { return n.blocks[height] != nil }

// Start implements env.Handler.
func (n *Node) Start(ctx env.Context) {
	n.ctx = ctx
	if n.cfg.DigestInterval > 0 {
		n.armDigest()
	}
}

func (n *Node) armDigest() {
	n.ctx.After(n.cfg.DigestInterval, func() {
		if len(n.cfg.Neighbors) > 0 && n.max > 0 {
			// One digest per round to a rotating neighbor (anti-entropy).
			target := n.cfg.Neighbors[n.cursor%len(n.cfg.Neighbors)]
			n.cursor++
			n.ctx.Send(target, &topology.Digest{MaxHeight: n.max})
		}
		n.armDigest()
	})
}

// Seed injects a locally produced block (consensus nodes call this) and
// pushes it.
func (n *Node) Seed(bd *topology.BlockData) {
	if n.ctx == nil || n.blocks[bd.Height] != nil {
		return
	}
	n.store(bd)
	n.push(bd, wire.NoNode)
}

// Receive implements env.Handler.
func (n *Node) Receive(from wire.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *topology.BlockData:
		n.onBlock(from, msg)
	case *topology.Digest:
		n.onDigest(from, msg)
	case *topology.Pull:
		n.onPull(from, msg)
	default:
		n.ctx.Logf("gossip: unexpected %s from %d", wire.TypeName(m.Type()), from)
	}
}

func (n *Node) onBlock(from wire.NodeID, bd *topology.BlockData) {
	if n.blocks[bd.Height] != nil {
		n.dupes++
		return
	}
	n.store(bd)
	n.push(bd, from)
}

func (n *Node) store(bd *topology.BlockData) {
	n.blocks[bd.Height] = bd
	for n.blocks[n.max+1] != nil {
		n.max++
	}
	if n.cfg.OnBlock != nil {
		n.cfg.OnBlock(bd.Height, n.ctx.Now())
	}
}

// push forwards a fresh block to `fanout` neighbors chosen by FEG-style
// rotation, skipping the sender.
func (n *Node) push(bd *topology.BlockData, from wire.NodeID) {
	sent := 0
	for i := 0; i < len(n.cfg.Neighbors) && sent < n.cfg.Fanout; i++ {
		target := n.cfg.Neighbors[n.cursor%len(n.cfg.Neighbors)]
		n.cursor++
		if target == from {
			continue
		}
		n.ctx.Send(target, bd)
		n.pushes++
		sent++
	}
}

func (n *Node) onDigest(from wire.NodeID, d *topology.Digest) {
	var missing []uint64
	for h := n.max + 1; h <= d.MaxHeight; h++ {
		if n.blocks[h] == nil {
			missing = append(missing, h)
		}
		if len(missing) >= 16 {
			break
		}
	}
	if len(missing) > 0 {
		n.ctx.Send(from, &topology.Pull{Heights: missing})
	}
}

func (n *Node) onPull(from wire.NodeID, p *topology.Pull) {
	for _, h := range p.Heights {
		if bd := n.blocks[h]; bd != nil {
			n.ctx.Send(from, bd)
			n.pulls++
		}
	}
}
