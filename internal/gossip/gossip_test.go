package gossip

import (
	"math/rand"
	"testing"
	"time"

	"predis/internal/simnet"
	"predis/internal/topology"
	"predis/internal/wire"
)

// randomGraph builds a degree-d undirected random graph over n nodes,
// guaranteed connected via a ring backbone.
func randomGraph(n, d int, seed int64) [][]wire.NodeID {
	r := rand.New(rand.NewSource(seed))
	adj := make([]map[wire.NodeID]bool, n)
	for i := range adj {
		adj[i] = make(map[wire.NodeID]bool)
	}
	link := func(a, b int) {
		if a != b {
			adj[a][wire.NodeID(b)] = true
			adj[b][wire.NodeID(a)] = true
		}
	}
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		for len(adj[i]) < d {
			link(i, r.Intn(n))
		}
	}
	out := make([][]wire.NodeID, n)
	for i, set := range adj {
		for id := range set {
			out[i] = append(out[i], id)
		}
	}
	return out
}

func TestGossipReachesEveryone(t *testing.T) {
	topology.RegisterMessages()
	const n = 40
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: 9,
	})
	adj := randomGraph(n, 8, 3)
	arrived := make([]map[uint64]time.Time, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		i := i
		arrived[i] = make(map[uint64]time.Time)
		nodes[i] = New(Config{
			Self: wire.NodeID(i), Neighbors: adj[i], Fanout: 4,
			DigestInterval: 200 * time.Millisecond,
			OnBlock: func(h uint64, at time.Time) {
				arrived[i][h] = at
			},
		})
		net.AddNode(wire.NodeID(i), nodes[i])
	}
	net.Start()
	// Seed three blocks of 1 MB from node 0.
	for h := uint64(1); h <= 3; h++ {
		nodes[0].Seed(&topology.BlockData{Height: h, Origin: 0, Size: 1 << 20})
		net.Run(time.Duration(h) * 2 * time.Second)
	}
	net.Run(10 * time.Second)
	for i := 0; i < n; i++ {
		for h := uint64(1); h <= 3; h++ {
			if _, ok := arrived[i][h]; !ok {
				t.Fatalf("node %d never received block %d", i, h)
			}
		}
	}
}

func TestGossipDigestRepairsPartition(t *testing.T) {
	topology.RegisterMessages()
	const n = 12
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(5 * time.Millisecond), Seed: 4})
	adj := randomGraph(n, 4, 8)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = New(Config{
			Self: wire.NodeID(i), Neighbors: adj[i], Fanout: 2,
			DigestInterval: 100 * time.Millisecond,
		})
		net.AddNode(wire.NodeID(i), nodes[i])
	}
	net.Start()
	// Cut node 7 off during the push, then heal; digests must repair it.
	net.SetPartition(func(from, to wire.NodeID) bool { return from == 7 || to == 7 })
	nodes[0].Seed(&topology.BlockData{Height: 1, Origin: 0, Size: 4096})
	net.Run(1 * time.Second)
	if nodes[7].Holds(1) {
		t.Fatal("partitioned node received the block")
	}
	net.SetPartition(nil)
	net.Run(5 * time.Second)
	if !nodes[7].Holds(1) {
		t.Fatal("digest/pull repair did not deliver the block")
	}
}

func TestGossipDedupes(t *testing.T) {
	topology.RegisterMessages()
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(time.Millisecond), Seed: 2})
	// Triangle with full fanout: duplicates are inevitable and must be
	// absorbed rather than re-pushed.
	a := New(Config{Self: 0, Neighbors: []wire.NodeID{1, 2}, Fanout: 2})
	b := New(Config{Self: 1, Neighbors: []wire.NodeID{0, 2}, Fanout: 2})
	c := New(Config{Self: 2, Neighbors: []wire.NodeID{0, 1}, Fanout: 2})
	net.AddNode(0, a)
	net.AddNode(1, b)
	net.AddNode(2, c)
	net.Start()
	bd := &topology.BlockData{Height: 1, Origin: 0, Size: 128}
	a.Seed(bd)
	a.Seed(bd) // second seed is a no-op
	net.Run(time.Second)
	if !b.Holds(1) || !c.Holds(1) {
		t.Fatal("block not delivered")
	}
	dupes := uint64(0)
	for _, n := range []*Node{a, b, c} {
		_, _, d := n.Stats()
		dupes += d
	}
	if dupes == 0 {
		t.Fatal("expected duplicate receives in a triangle with full fanout")
	}
}

func TestBlockDataCodec(t *testing.T) {
	topology.RegisterMessages()
	bd := &topology.BlockData{Height: 9, Origin: 3, Size: 5000}
	got, err := wire.Roundtrip(bd)
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*topology.BlockData)
	if g.Height != 9 || g.Origin != 3 || g.Size != 5000 {
		t.Fatalf("roundtrip: %+v", g)
	}
	if len(wire.Marshal(bd)) != bd.WireSize() {
		t.Fatal("BlockData WireSize mismatch")
	}
	// Tiny sizes clamp to the minimum body.
	tiny := &topology.BlockData{Height: 1, Origin: 0, Size: 1}
	if len(wire.Marshal(tiny)) != tiny.WireSize() {
		t.Fatal("tiny BlockData WireSize mismatch")
	}

	dg := &topology.Digest{MaxHeight: 4}
	if got, err := wire.Roundtrip(dg); err != nil || got.(*topology.Digest).MaxHeight != 4 {
		t.Fatalf("Digest roundtrip: %v", err)
	}
	pl := &topology.Pull{Heights: []uint64{1, 2, 3}}
	if got, err := wire.Roundtrip(pl); err != nil || len(got.(*topology.Pull).Heights) != 3 {
		t.Fatalf("Pull roundtrip: %v", err)
	}
}
